// The accmos command-line tool: the packaged entry point of the pipeline.
//
//   accmos info <model.xml>                     model inventory
//   accmos gen <model.xml> [-o out.cpp]         emit simulation code
//   accmos gen <model.xml> --budget=N [...]     coverage-guided test-case
//                                               generation (src/gen)
//   accmos run <model.xml> [options]            simulate and report
//   accmos campaign <model.xml> [--seeds=N] [--steps=M] [--engine=E]
//                   [--workers=W]             multi-seed coverage campaign
//                                             (W workers; 0 = all cores)
//   accmos export-suite <dir>                   write the benchmark models
//
// run options:
//   --engine=accmos|sse|sseac|sserac   (default accmos)
//   --steps=N                          (default 100000)
//   --budget=SECONDS                   wall-clock budget (0 = unlimited)
//   --tests=FILE.csv                   explicit test vectors
//   --seed=N                           random-stimulus seed (default 1)
//   --collect=ACTORPATH                monitor an actor (repeatable)
//   --no-coverage --no-diagnosis       disable instrumentation
//   --stop-on-diagnostic               halt at the first error
//   --show-uncovered                   list every unreached coverage point
//   --opt=-O2                          compiler flag for generated code
//   --no-opt                           skip the model optimization pipeline
//                                      (also: env ACCMOS_NO_OPT=1)
//   --exec-mode=dlopen|process         AccMoS execution backend (default
//                                      dlopen; also: env ACCMOS_EXEC_MODE)
//   --tier=native|auto|interp          tiered execution (docs/EXECUTION.md):
//                                      auto answers runs on the interpreter
//                                      while the compile proceeds in the
//                                      background, then hot-swaps to native;
//                                      interp never compiles (default
//                                      native; also: env ACCMOS_TIER)
//   --batch-lanes=N                    fused batch-kernel lane width for
//                                      multi-seed runs; 0 = scalar only
//                                      (default 8; also: env ACCMOS_BATCH)
//   --timeout=SECONDS                  per-run wall-clock deadline: the
//                                      generated code retires the run
//                                      cooperatively, the process backend
//                                      adds a kill-on-expiry watchdog
//   --step-budget=N                    retire a run after N steps even if
//                                      --steps asked for more
//
// Exit codes (docs/ROBUSTNESS.md):
//   0  success            1  internal error        2  usage error
//   3  run finished with diagnostics               4  model load/parse error
//   5  generated-code compile error                6  generated model crashed
//   7  run timed out (deadline or step budget)
//   8  campaign/testgen completed but contained per-seed failures
//
// gen --budget options (testgen mode; presence of --budget selects it):
//   --budget=N           candidate evaluations (the search budget)
//   --batch=B            candidates per feedback iteration (default 8)
//   --gen-seed=S         generator seed: reproduces the search bit-exactly
//   --target-metric=M    actor|condition|decision|mcdc (default: all)
//   --corpus-dir=DIR     export corpus (.spec/.csv + MANIFEST.tsv)
//   --engine=sse|accmos  evaluation engine (default accmos)
//   --steps=N --workers=W --batch-lanes=N --no-opt --show-uncovered   as
//                        above
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "actors/spec.h"
#include "bench_models/sample_overflow.h"
#include "bench_models/suite.h"
#include "codegen/accmos_engine.h"
#include "codegen/compiler_driver.h"
#include "gen/generator.h"
#include "opt/pipeline.h"
#include "parser/model_io.h"
#include "sim/campaign.h"
#include "sim/failure.h"
#include "sim/simulator.h"

namespace accmos::cli {
namespace {

int usage() {
  std::fprintf(stderr,
               "usage: accmos <info|gen|run|export-suite> <args>\n"
               "  accmos info <model.xml>\n"
               "  accmos gen <model.xml> [-o out.cpp]\n"
               "  accmos gen <model.xml> --budget=N [--batch=B] "
               "[--gen-seed=S]\n"
               "             [--target-metric=actor|condition|decision|mcdc]\n"
               "             [--corpus-dir=DIR] [--engine=sse|accmos] "
               "[--steps=N]\n"
               "             [--workers=W] [--batch-lanes=N] [--no-opt] "
               "[--show-uncovered]\n"
               "  accmos run <model.xml> [--engine=E] [--steps=N] "
               "[--budget=S]\n"
               "             [--tests=F.csv] [--seed=N] [--collect=PATH]...\n"
               "             [--no-coverage] [--no-diagnosis] "
               "[--stop-on-diagnostic] [--opt=-O3] [--no-opt] "
               "[--exec-mode=dlopen|process] [--tier=native|auto|interp] "
               "[--batch-lanes=N] "
               "[--timeout=SEC] [--step-budget=N] [--show-uncovered]\n"
               "  accmos campaign <model.xml> [--seeds=N] [--steps=M] "
               "[--engine=accmos|sse] [--workers=W] [--batch-lanes=N] "
               "[--no-opt] [--exec-mode=dlopen|process] "
               "[--tier=native|auto|interp] [--timeout=SEC] "
               "[--step-budget=N] [--show-uncovered]\n"
               "  accmos export-suite <directory>\n"
               "exit codes: 0 ok, 1 internal, 2 usage, 3 diagnostics, "
               "4 model-load, 5 compile,\n"
               "            6 crash, 7 timeout, 8 campaign with contained "
               "failures\n");
  return 2;
}

bool flagValue(const std::string& arg, const char* name, std::string* out) {
  std::string prefix = std::string(name) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

// Model loading wrapped so mainImpl can give load/parse problems their own
// exit code (4) — distinct from compile (5) and runtime (6/7) failures,
// which can only happen after the model demonstrably loaded.
LoadedModel loadModelCli(const std::string& path) {
  try {
    return loadModelFromFile(path);
  } catch (const ModelLoadError&) {
    throw;
  } catch (const std::exception& e) {
    throw ModelLoadError("cannot load model " + path + ": " + e.what());
  }
}

std::unique_ptr<Model> readModelCli(const std::string& path) {
  try {
    return readModelFromFile(path);
  } catch (const ModelLoadError&) {
    throw;
  } catch (const std::exception& e) {
    throw ModelLoadError("cannot load model " + path + ": " + e.what());
  }
}

void printFailures(const std::vector<RunFailure>& failures) {
  for (const auto& f : failures) {
    std::printf("failure  : %s\n", f.summary().c_str());
  }
}

// --tier=native|auto|interp; returns false (after printing) on a bad value.
bool parseTier(const std::string& v, SimOptions* opt) {
  if (v == "native") {
    opt->tier = Tier::Native;
  } else if (v == "auto") {
    opt->tier = Tier::Auto;
  } else if (v == "interp") {
    opt->tier = Tier::Interp;
  } else {
    std::fprintf(stderr, "tier must be native, auto or interp, not '%s'\n",
                 v.c_str());
    return false;
  }
  return true;
}

// --exec-mode=dlopen|process; returns false (after printing) on a bad value.
bool parseExecMode(const std::string& v, SimOptions* opt) {
  if (v == "dlopen") {
    opt->execMode = ExecMode::Dlopen;
  } else if (v == "process") {
    opt->execMode = ExecMode::Process;
  } else {
    std::fprintf(stderr, "exec mode must be dlopen or process, not '%s'\n",
                 v.c_str());
    return false;
  }
  return true;
}

// Resolves accumulated bitmaps back to the coverage points never reached.
// Rebuilds the plan the engine recorded against: the optimization pipeline
// (when on) must run here exactly as it did before the engine, since slot
// layout follows the optimized actor set.
void printUncovered(const FlatModel& fm, const SimOptions& opt,
                    const CoverageRecorder& bitmaps) {
  FlatModel optimized;
  const FlatModel* model = &fm;
  if (opt.optimize) {
    optimized = optimizeModel(fm, opt);
    model = &optimized;
  }
  CoveragePlan plan = CoveragePlan::build(
      *model, [](const FlatActor& fa) { return covTraitsFor(fa); });
  auto uncovered = listUncovered(*model, plan, bitmaps);
  std::printf("uncovered: %zu point(s)\n", uncovered.size());
  for (const auto& u : uncovered) {
    std::printf("  [%s] %s: %s\n",
                std::string(covMetricName(u.metric)).c_str(),
                u.actorPath.c_str(), u.outcome.c_str());
  }
}

int cmdInfo(const std::string& path) {
  auto model = readModelCli(path);
  Simulator sim(*model);
  const FlatModel& fm = sim.flatModel();
  std::printf("model        : %s\n", model->name().c_str());
  std::printf("actors       : %d (flattened: %zu)\n", model->countActors(),
              fm.actors.size());
  std::printf("subsystems   : %d\n", model->countSubsystems());
  std::printf("signals      : %zu\n", fm.signals.size());
  std::printf("inports      : %zu\n", fm.rootInports.size());
  std::printf("outports     : %zu\n", fm.rootOutports.size());
  std::printf("data stores  : %zu\n", fm.dataStores.size());
  // Type histogram.
  std::vector<std::pair<std::string, int>> hist;
  for (const auto& fa : fm.actors) {
    bool found = false;
    for (auto& [ty, n] : hist) {
      if (ty == fa.type()) {
        ++n;
        found = true;
      }
    }
    if (!found) hist.emplace_back(fa.type(), 1);
  }
  std::sort(hist.begin(), hist.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::printf("actor types  :");
  for (const auto& [ty, n] : hist) std::printf(" %s:%d", ty.c_str(), n);
  std::printf("\n");
  return 0;
}

int cmdGen(const std::string& path, const std::string& outPath) {
  auto model = readModelCli(path);
  Simulator sim(*model);
  SimOptions opt;
  opt.engine = Engine::AccMoS;
  AccMoSEngine engine(sim.flatModel(), opt, TestCaseSpec{});
  if (outPath.empty() || outPath == "-") {
    std::fputs(engine.generatedSource().c_str(), stdout);
  } else {
    std::ofstream out(outPath);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", outPath.c_str());
      return 1;
    }
    out << engine.generatedSource();
    std::printf("wrote %s (%zu bytes)\n", outPath.c_str(),
                engine.generatedSource().size());
  }
  return 0;
}

// accmos gen --budget=N: the coverage-guided test-case generation loop
// (src/gen) instead of source emission.
int cmdTestGen(const std::string& path,
               const std::vector<std::string>& args) {
  SimOptions opt;
  opt.engine = Engine::AccMoS;
  opt.maxSteps = 10000;
  gen::GenOptions gopt;
  bool showUncovered = false;
  std::string v;
  for (const auto& arg : args) {
    if (flagValue(arg, "--budget", &v)) {
      gopt.budget = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flagValue(arg, "--batch", &v)) {
      gopt.batch = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flagValue(arg, "--gen-seed", &v)) {
      gopt.genSeed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flagValue(arg, "--target-metric", &v)) {
      auto m = covMetricFromName(v);
      if (!m) {
        std::fprintf(stderr,
                     "unknown metric '%s' (actor|condition|decision|mcdc)\n",
                     v.c_str());
        return 2;
      }
      gopt.targetMetric = *m;
    } else if (flagValue(arg, "--corpus-dir", &v)) {
      gopt.corpusDir = v;
    } else if (flagValue(arg, "--engine", &v)) {
      if (v == "accmos") opt.engine = Engine::AccMoS;
      else if (v == "sse") opt.engine = Engine::SSE;
      else {
        std::fprintf(stderr, "generation engine must be accmos or sse\n");
        return 2;
      }
    } else if (flagValue(arg, "--steps", &v)) {
      opt.maxSteps = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flagValue(arg, "--workers", &v)) {
      opt.campaign.workers = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flagValue(arg, "--batch-lanes", &v)) {
      opt.batchLanes = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flagValue(arg, "--exec-mode", &v)) {
      if (!parseExecMode(v, &opt)) return 2;
    } else if (flagValue(arg, "--tier", &v)) {
      if (!parseTier(v, &opt)) return 2;
    } else if (flagValue(arg, "--timeout", &v)) {
      opt.runTimeoutSec = std::strtod(v.c_str(), nullptr);
    } else if (flagValue(arg, "--step-budget", &v)) {
      opt.stepBudget = std::strtoull(v.c_str(), nullptr, 10);
    } else if (arg == "--no-opt") {
      opt.optimize = false;
    } else if (arg == "--show-uncovered") {
      showUncovered = true;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return 2;
    }
  }

  LoadedModel loaded = loadModelCli(path);
  if (loaded.stimulus) gopt.base = *loaded.stimulus;
  Simulator sim(*loaded.model);
  gen::GenResult gr = gen::runGeneration(sim.flatModel(), opt, gopt);

  std::string target = gopt.targetMetric
                           ? std::string(covMetricName(*gopt.targetMetric))
                           : std::string("all metrics");
  std::printf("testgen  : budget %zu on %s, gen-seed %llu, target %s\n",
              gopt.budget, std::string(engineName(opt.engine)).c_str(),
              static_cast<unsigned long long>(gopt.genSeed), target.c_str());
  std::printf("optimize : %s\n", gr.optStats.summary().c_str());
  std::printf("%-5s %6s %6s %6s %8s %8s %8s %8s   (cumulative)\n", "iter",
              "eval", "kept", "corpus", "actor", "cond", "dec", "mcdc");
  for (const auto& it : gr.trajectory) {
    std::printf("%-5zu %6zu %6zu %6zu %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
                it.iteration, it.evaluated, it.accepted, it.corpusSize,
                it.cumulative.of(CovMetric::Actor).percent(),
                it.cumulative.of(CovMetric::Condition).percent(),
                it.cumulative.of(CovMetric::Decision).percent(),
                it.cumulative.of(CovMetric::MCDC).percent());
  }
  std::printf("coverage : %s%s\n", gr.finalCoverage.toString().c_str(),
              gr.saturated ? " (saturated before budget)" : "");
  std::printf("corpus   : %zu case(s) kept of %zu evaluated, %zu distinct "
              "diagnostic kind(s)\n",
              gr.corpus.size(), gr.evaluations, gr.diagKinds);
  printFailures(gr.failures);
  if (gr.enginesBuilt > 0) {
    std::printf("codegen  : %zu distinct stimulus shape(s) compiled, "
                "%.3fs compile-wait\n",
                gr.enginesBuilt, gr.compileWaitSeconds);
  }
  if (!gopt.corpusDir.empty()) {
    std::printf("exported : %s (MANIFEST.tsv + entry_*.spec/.csv)\n",
                gopt.corpusDir.c_str());
  }
  if (showUncovered) {
    std::printf("uncovered: %zu point(s)\n", gr.uncovered.size());
    for (const auto& u : gr.uncovered) {
      std::printf("  [%s] %s: %s\n",
                  std::string(covMetricName(u.metric)).c_str(),
                  u.actorPath.c_str(), u.outcome.c_str());
    }
  }
  return gr.failures.empty() ? 0 : 8;
}

int cmdRun(const std::string& path, const std::vector<std::string>& args) {
  SimOptions opt;
  opt.engine = Engine::AccMoS;
  opt.maxSteps = 100000;
  TestCaseSpec tests;
  bool showUncovered = false;
  std::string v;
  for (const auto& arg : args) {
    if (flagValue(arg, "--engine", &v)) {
      if (v == "accmos") opt.engine = Engine::AccMoS;
      else if (v == "sse") opt.engine = Engine::SSE;
      else if (v == "sseac") opt.engine = Engine::SSEac;
      else if (v == "sserac") opt.engine = Engine::SSErac;
      else {
        std::fprintf(stderr, "unknown engine '%s'\n", v.c_str());
        return 2;
      }
    } else if (flagValue(arg, "--steps", &v)) {
      opt.maxSteps = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flagValue(arg, "--budget", &v)) {
      opt.timeBudgetSec = std::strtod(v.c_str(), nullptr);
    } else if (flagValue(arg, "--tests", &v)) {
      tests = TestCaseSpec::fromCsv(v);
    } else if (flagValue(arg, "--seed", &v)) {
      tests.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flagValue(arg, "--collect", &v)) {
      opt.collectList.push_back(v);
    } else if (flagValue(arg, "--opt", &v)) {
      opt.optFlag = v;
    } else if (flagValue(arg, "--batch-lanes", &v)) {
      opt.batchLanes = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flagValue(arg, "--exec-mode", &v)) {
      if (!parseExecMode(v, &opt)) return 2;
    } else if (flagValue(arg, "--tier", &v)) {
      if (!parseTier(v, &opt)) return 2;
    } else if (flagValue(arg, "--timeout", &v)) {
      opt.runTimeoutSec = std::strtod(v.c_str(), nullptr);
    } else if (flagValue(arg, "--step-budget", &v)) {
      opt.stepBudget = std::strtoull(v.c_str(), nullptr, 10);
    } else if (arg == "--no-coverage") {
      opt.coverage = false;
    } else if (arg == "--no-diagnosis") {
      opt.diagnosis = false;
    } else if (arg == "--no-opt") {
      opt.optimize = false;
    } else if (arg == "--stop-on-diagnostic") {
      opt.stopOnDiagnostic = true;
    } else if (arg == "--show-uncovered") {
      showUncovered = true;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (opt.engine == Engine::SSEac || opt.engine == Engine::SSErac) {
    opt.coverage = false;
    opt.diagnosis = false;
  }

  LoadedModel loaded = loadModelCli(path);
  // An embedded <stimulus> is the default; --tests/--seed override it.
  bool explicitTests = false;
  for (const auto& arg : args) {
    explicitTests = explicitTests || arg.rfind("--tests=", 0) == 0 ||
                    arg.rfind("--seed=", 0) == 0;
  }
  if (loaded.stimulus && !explicitTests) tests = *loaded.stimulus;
  Simulator sim(*loaded.model);
  auto res = sim.run(opt, tests);

  std::printf("engine   : %s\n",
              std::string(engineName(opt.engine)).c_str());
  std::printf("optimize : %s\n", res.optStats.summary().c_str());
  std::printf("steps    : %llu%s%s\n",
              static_cast<unsigned long long>(res.stepsExecuted),
              res.stoppedEarly ? " (stopped early)" : "",
              res.timedOut ? " (timed out: deadline/step budget)" : "");
  std::printf("exec     : %.4fs (%.1f ns/step)\n", res.execSeconds,
              res.stepsExecuted > 0
                  ? 1e9 * res.execSeconds /
                        static_cast<double>(res.stepsExecuted)
                  : 0.0);
  if (res.generateSeconds > 0.0 || res.compileSeconds > 0.0) {
    std::printf("codegen  : %.3fs generate + %.3fs compile",
                res.generateSeconds, res.compileSeconds);
    if (res.loadSeconds > 0.0) std::printf(" + %.3fs load", res.loadSeconds);
    if (!res.execMode.empty()) std::printf(" [%s]", res.execMode.c_str());
    std::printf("\n");
  } else if (!res.execMode.empty()) {
    // Interpreter-tier runs have no codegen cost line to carry the mode.
    std::printf("mode     : %s\n", res.execMode.c_str());
  }
  if (res.hasCoverage) {
    std::printf("coverage : %s\n", res.coverage.toString().c_str());
  }
  for (size_t k = 0; k < res.finalOutputs.size(); ++k) {
    std::printf("out[%zu]   : %s\n", k + 1,
                res.finalOutputs[k].toString().c_str());
  }
  for (const auto& c : res.collected) {
    std::printf("monitor  : %s last=%s x%llu\n", c.path.c_str(),
                c.last.toString().c_str(),
                static_cast<unsigned long long>(c.count));
  }
  if (res.diagnostics.empty()) {
    std::printf("diagnosis: clean\n");
  }
  for (const auto& d : res.diagnostics) {
    std::printf("diagnosis: [%s] %s first@%llu x%llu %s\n",
                std::string(diagKindName(d.kind)).c_str(),
                d.actorPath.c_str(),
                static_cast<unsigned long long>(d.firstStep),
                static_cast<unsigned long long>(d.count),
                d.message.c_str());
  }
  if (showUncovered) {
    if (!res.hasCoverage) {
      std::fprintf(stderr,
                   "--show-uncovered needs coverage (an instrumented "
                   "engine, without --no-coverage)\n");
      return 2;
    }
    printUncovered(sim.flatModel(), opt, res.bitmaps);
  }
  // A retired (timed-out) run outranks "finished with diagnostics": its
  // observations stop at the retirement point, so they are not the full
  // story the diagnostics exit code promises.
  if (res.timedOut) return 7;
  return res.diagnostics.empty() ? 0 : 3;
}

int cmdCampaign(const std::string& path,
                const std::vector<std::string>& args) {
  SimOptions opt;
  opt.engine = Engine::AccMoS;
  opt.maxSteps = 100000;
  int numSeeds = 8;
  bool showUncovered = false;
  std::string v;
  for (const auto& arg : args) {
    if (flagValue(arg, "--seeds", &v)) {
      numSeeds = static_cast<int>(std::strtol(v.c_str(), nullptr, 10));
    } else if (flagValue(arg, "--steps", &v)) {
      opt.maxSteps = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flagValue(arg, "--workers", &v)) {
      opt.campaign.workers = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flagValue(arg, "--batch-lanes", &v)) {
      opt.batchLanes = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flagValue(arg, "--engine", &v)) {
      if (v == "accmos") opt.engine = Engine::AccMoS;
      else if (v == "sse") opt.engine = Engine::SSE;
      else {
        std::fprintf(stderr, "campaign engine must be accmos or sse\n");
        return 2;
      }
    } else if (flagValue(arg, "--exec-mode", &v)) {
      if (!parseExecMode(v, &opt)) return 2;
    } else if (flagValue(arg, "--tier", &v)) {
      if (!parseTier(v, &opt)) return 2;
    } else if (flagValue(arg, "--timeout", &v)) {
      opt.runTimeoutSec = std::strtod(v.c_str(), nullptr);
    } else if (flagValue(arg, "--step-budget", &v)) {
      opt.stepBudget = std::strtoull(v.c_str(), nullptr, 10);
    } else if (arg == "--no-opt") {
      opt.optimize = false;
    } else if (arg == "--show-uncovered") {
      showUncovered = true;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return 2;
    }
  }
  LoadedModel loaded = loadModelCli(path);
  TestCaseSpec base = loaded.stimulus.value_or(TestCaseSpec{});
  Simulator sim(*loaded.model);
  std::vector<uint64_t> seeds;
  for (int k = 0; k < numSeeds; ++k) seeds.push_back(1000 + 37 * k);

  CampaignResult cr = runCampaign(sim.flatModel(), opt, base, seeds);
  std::printf("campaign : %d seeds x %llu steps on %s, %zu worker(s)\n",
              numSeeds, static_cast<unsigned long long>(opt.maxSteps),
              std::string(engineName(opt.engine)).c_str(), cr.workersUsed);
  std::printf("optimize : %s\n", cr.optStats.summary().c_str());
  std::printf("%-10s %8s %8s %8s %8s   (cumulative)\n", "seed", "actor",
              "cond", "dec", "mcdc");
  for (const auto& sr : cr.perSeed) {
    std::printf("%-10llu %7.1f%% %7.1f%% %7.1f%% %7.1f%%%s\n",
                static_cast<unsigned long long>(sr.seed),
                sr.cumulative.of(CovMetric::Actor).percent(),
                sr.cumulative.of(CovMetric::Condition).percent(),
                sr.cumulative.of(CovMetric::Decision).percent(),
                sr.cumulative.of(CovMetric::MCDC).percent(),
                sr.failed ? "   FAILED" : "");
  }
  std::printf("exec     : %.3fs total, %.3fs wall", cr.totalExecSeconds,
              cr.wallSeconds);
  if (cr.compileSeconds > 0.0) {
    std::printf(" (+%.3fs one-off generate+compile, %.3fs compile-wait%s%s)",
                cr.generateSeconds + cr.compileSeconds, cr.compileWaitSeconds,
                cr.loadSeconds > 0.0 ? ", dlopen" : "",
                cr.compileCacheHit ? ", cached" : "");
  }
  if (opt.engine == Engine::AccMoS && opt.tier != Tier::Native) {
    std::printf("\ntier     : %s — %zu interp + %zu native seed(s), "
                "first result %.3fs",
                std::string(tierName(opt.tier)).c_str(), cr.interpSeeds,
                cr.nativeSeeds, cr.timeToFirstResultSeconds);
    if (cr.tierSwapIndex >= 0) {
      std::printf(", hot-swap at seed index %lld", cr.tierSwapIndex);
    }
  }
  std::printf("\ndiagnosis: %zu distinct event(s) across the campaign\n",
              cr.diagnostics.size());
  for (const auto& d : cr.diagnostics) {
    std::printf("  [%s] %s earliest@%llu x%llu\n",
                std::string(diagKindName(d.kind)).c_str(),
                d.actorPath.c_str(),
                static_cast<unsigned long long>(d.firstStep),
                static_cast<unsigned long long>(d.count));
  }
  printFailures(cr.failures);
  if (showUncovered) printUncovered(sim.flatModel(), opt, cr.mergedBitmaps);
  // The campaign itself completed — per-seed faults were contained — but
  // the merged result is missing the failed seeds' contributions.
  return cr.failures.empty() ? 0 : 8;
}

int cmdExportSuite(const std::string& dir) {
  std::filesystem::create_directories(dir);
  for (const auto& info : benchmarkSuite()) {
    auto model = buildBenchmarkModel(info.name);
    std::string path = dir + "/" + info.name + ".xml";
    TestCaseSpec stim = benchStimulus(info.name);
    writeModelToFile(*model, path, &stim);
    std::printf("wrote %-24s (%d actors, %d subsystems)\n", path.c_str(),
                info.actors, info.subsystems);
  }
  auto sample = sampleOverflowModel();
  TestCaseSpec sampleStim = sampleOverflowStimulus();
  writeModelToFile(*sample, dir + "/Sample.xml", &sampleStim);
  auto injected = buildCsevWithInjectedErrors();
  TestCaseSpec csevStim = benchStimulus("CSEV");
  writeModelToFile(*injected, dir + "/CSEV_injected.xml", &csevStim);
  std::printf("wrote %s and %s\n", (dir + "/Sample.xml").c_str(),
              (dir + "/CSEV_injected.xml").c_str());
  return 0;
}

int mainImpl(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string cmd = argv[1];
  try {
    if (cmd == "info" && argc == 3) return cmdInfo(argv[2]);
    if (cmd == "gen" && argc >= 3) {
      // --budget selects the coverage-guided test-case generation mode;
      // without it, gen keeps its original meaning (emit simulation code).
      std::vector<std::string> args(argv + 3, argv + argc);
      for (const auto& arg : args) {
        if (arg.rfind("--budget=", 0) == 0) return cmdTestGen(argv[2], args);
      }
      std::string out;
      for (int k = 3; k < argc; ++k) {
        if (std::strcmp(argv[k], "-o") == 0 && k + 1 < argc) out = argv[k + 1];
      }
      return cmdGen(argv[2], out);
    }
    if (cmd == "run" && argc >= 3) {
      std::vector<std::string> args(argv + 3, argv + argc);
      return cmdRun(argv[2], args);
    }
    if (cmd == "campaign" && argc >= 3) {
      std::vector<std::string> args(argv + 3, argv + argc);
      return cmdCampaign(argv[2], args);
    }
    if (cmd == "export-suite" && argc == 3) return cmdExportSuite(argv[2]);
  } catch (const ModelLoadError& e) {
    std::fprintf(stderr, "accmos: %s\n", e.what());
    return 4;
  } catch (const SimTimeoutError& e) {
    std::fprintf(stderr, "accmos: %s\n", e.what());
    return 7;
  } catch (const SimCrashError& e) {
    std::fprintf(stderr, "accmos: %s\n", e.what());
    return 6;
  } catch (const CompileError& e) {
    std::fprintf(stderr, "accmos: %s\n", e.what());
    return 5;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "accmos: %s\n", e.what());
    return 1;
  }
  return usage();
}

}  // namespace
}  // namespace accmos::cli

int main(int argc, char** argv) { return accmos::cli::mainImpl(argc, argv); }
