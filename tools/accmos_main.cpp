// The accmos command-line tool: the packaged entry point of the pipeline.
//
//   accmos info <model.xml>                     model inventory
//   accmos gen <model.xml> [-o out.cpp]         emit simulation code
//   accmos gen <model.xml> --budget=N [...]     coverage-guided test-case
//                                               generation (src/gen)
//   accmos run <model.xml> [options]            simulate and report
//   accmos campaign <model.xml> [--seeds=N] [--steps=M] [--engine=E]
//                   [--workers=W]             multi-seed coverage campaign
//                                             (W workers; 0 = all cores)
//                   [--shards=N]              fan the campaign over N
//                                             shard-worker processes
//                                             sharing one compile cache;
//                                             results bit-identical to
//                                             --shards=0 (docs/CAMPAIGNS.md)
//   accmos shard-worker                       internal: one shard of a
//                                             --shards campaign, spawned
//                                             by the coordinator with the
//                                             frame protocol on fd 0
//   accmos export-suite <dir>                   write the benchmark models
//   accmos serve --socket=PATH                  resident simulation daemon
//                [--pool-budget=BYTES]          (accmosd, docs/SERVICE.md);
//                [--request-workers=N]          0 budget = unbounded pool
//   accmos client <run|campaign> <model.xml> --socket=PATH [options]
//   accmos client <stats|shutdown> --socket=PATH
//                                               run against a daemon: same
//                                               options, output and exit
//                                               codes as local execution
//   accmos --version                            build/ABI/protocol identity
//
// run options:
//   --engine=accmos|sse|sseac|sserac   (default accmos)
//   --steps=N                          (default 100000)
//   --budget=SECONDS                   wall-clock budget (0 = unlimited)
//   --tests=FILE.csv                   explicit test vectors
//   --seed=N                           random-stimulus seed (default 1)
//   --collect=ACTORPATH                monitor an actor (repeatable)
//   --no-coverage --no-diagnosis       disable instrumentation
//   --stop-on-diagnostic               halt at the first error
//   --show-uncovered                   list every unreached coverage point
//   --opt=-O2                          compiler flag for generated code
//   --no-opt                           skip the model optimization pipeline
//                                      (also: env ACCMOS_NO_OPT=1)
//   --exec-mode=dlopen|process         AccMoS execution backend (default
//                                      dlopen; also: env ACCMOS_EXEC_MODE)
//   --tier=native|auto|interp          tiered execution (docs/EXECUTION.md):
//                                      auto answers runs on the interpreter
//                                      while the compile proceeds in the
//                                      background, then hot-swaps to native;
//                                      interp never compiles (default
//                                      native; also: env ACCMOS_TIER)
//   --batch-lanes=N                    fused batch-kernel lane width for
//                                      multi-seed runs; 0 = scalar only
//                                      (default 8; also: env ACCMOS_BATCH)
//   --timeout=SECONDS                  per-run wall-clock deadline: the
//                                      generated code retires the run
//                                      cooperatively, the process backend
//                                      adds a kill-on-expiry watchdog
//   --step-budget=N                    retire a run after N steps even if
//                                      --steps asked for more
//
// Exit codes (docs/ROBUSTNESS.md):
//   0  success            1  internal error        2  usage error
//   3  run finished with diagnostics               4  model load/parse error
//   5  generated-code compile error                6  generated model crashed
//   7  run timed out (deadline or step budget)
//   8  campaign/testgen completed but contained per-seed failures
//   9  campaign interrupted (SIGINT/SIGTERM): partial results were flushed
//
// gen --budget options (testgen mode; presence of --budget selects it):
//   --budget=N           candidate evaluations (the search budget)
//   --batch=B            candidates per feedback iteration (default 8)
//   --gen-seed=S         generator seed: reproduces the search bit-exactly
//   --target-metric=M    actor|condition|decision|mcdc (default: all)
//   --corpus-dir=DIR     export corpus (.spec/.csv + MANIFEST.tsv)
//   --engine=sse|accmos  evaluation engine (default accmos)
//   --steps=N --workers=W --batch-lanes=N --no-opt --show-uncovered   as
//                        above
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "actors/spec.h"
#include "bench_models/sample_overflow.h"
#include "bench_models/suite.h"
#include "codegen/accmos_engine.h"
#include "codegen/compiler_driver.h"
#include "dist/shard.h"
#include "gen/generator.h"
#include "opt/pipeline.h"
#include "parser/model_io.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/protocol.h"
#include "serve/version.h"
#include "sim/campaign.h"
#include "sim/failure.h"
#include "sim/interrupt.h"
#include "sim/simulator.h"

namespace accmos::cli {
namespace {

int usage() {
  std::fprintf(stderr,
               "usage: accmos <info|gen|run|export-suite> <args>\n"
               "  accmos info <model.xml>\n"
               "  accmos gen <model.xml> [-o out.cpp]\n"
               "  accmos gen <model.xml> --budget=N [--batch=B] "
               "[--gen-seed=S]\n"
               "             [--target-metric=actor|condition|decision|mcdc]\n"
               "             [--corpus-dir=DIR] [--engine=sse|accmos] "
               "[--steps=N]\n"
               "             [--workers=W] [--batch-lanes=N] [--no-opt] "
               "[--show-uncovered]\n"
               "  accmos run <model.xml> [--engine=E] [--steps=N] "
               "[--budget=S]\n"
               "             [--tests=F.csv] [--seed=N] [--collect=PATH]...\n"
               "             [--no-coverage] [--no-diagnosis] "
               "[--stop-on-diagnostic] [--opt=-O3] [--no-opt] "
               "[--exec-mode=dlopen|process] [--tier=native|auto|interp] "
               "[--batch-lanes=N] "
               "[--timeout=SEC] [--step-budget=N] [--show-uncovered]\n"
               "  accmos campaign <model.xml> [--seeds=N] [--steps=M] "
               "[--engine=accmos|sse] [--workers=W] [--batch-lanes=N] "
               "[--shards=N] "
               "[--no-opt] [--exec-mode=dlopen|process] "
               "[--tier=native|auto|interp] [--timeout=SEC] "
               "[--step-budget=N] [--show-uncovered]\n"
               "  accmos export-suite <directory>\n"
               "  accmos serve --socket=PATH [--pool-budget=BYTES] "
               "[--request-workers=N]\n"
               "  accmos client <run|campaign> <model.xml> --socket=PATH "
               "[run/campaign options]\n"
               "  accmos client <stats|shutdown> --socket=PATH\n"
               "  accmos --version\n"
               "exit codes: 0 ok, 1 internal, 2 usage, 3 diagnostics, "
               "4 model-load, 5 compile,\n"
               "            6 crash, 7 timeout, 8 campaign with contained "
               "failures, 9 interrupted\n");
  return 2;
}

bool flagValue(const std::string& arg, const char* name, std::string* out) {
  std::string prefix = std::string(name) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

// Model loading wrapped so mainImpl can give load/parse problems their own
// exit code (4) — distinct from compile (5) and runtime (6/7) failures,
// which can only happen after the model demonstrably loaded.
LoadedModel loadModelCli(const std::string& path) {
  try {
    return loadModelFromFile(path);
  } catch (const ModelLoadError&) {
    throw;
  } catch (const std::exception& e) {
    throw ModelLoadError("cannot load model " + path + ": " + e.what());
  }
}

std::unique_ptr<Model> readModelCli(const std::string& path) {
  try {
    return readModelFromFile(path);
  } catch (const ModelLoadError&) {
    throw;
  } catch (const std::exception& e) {
    throw ModelLoadError("cannot load model " + path + ": " + e.what());
  }
}

void printFailures(const std::vector<RunFailure>& failures) {
  for (const auto& f : failures) {
    std::printf("failure  : %s\n", f.summary().c_str());
  }
}

// --tier=native|auto|interp; returns false (after printing) on a bad value.
bool parseTier(const std::string& v, SimOptions* opt) {
  if (v == "native") {
    opt->tier = Tier::Native;
  } else if (v == "auto") {
    opt->tier = Tier::Auto;
  } else if (v == "interp") {
    opt->tier = Tier::Interp;
  } else {
    std::fprintf(stderr, "tier must be native, auto or interp, not '%s'\n",
                 v.c_str());
    return false;
  }
  return true;
}

// --exec-mode=dlopen|process; returns false (after printing) on a bad value.
bool parseExecMode(const std::string& v, SimOptions* opt) {
  if (v == "dlopen") {
    opt->execMode = ExecMode::Dlopen;
  } else if (v == "process") {
    opt->execMode = ExecMode::Process;
  } else {
    std::fprintf(stderr, "exec mode must be dlopen or process, not '%s'\n",
                 v.c_str());
    return false;
  }
  return true;
}

// SIGINT/SIGTERM raise the cooperative interrupt flag (sim/interrupt.h):
// campaign workers finish the seed chunks they already claimed, the CLI
// flushes the partial results and exits with code 9; accmosd drains
// in-flight requests and shuts down like `client shutdown`. Installed only
// for the cooperative commands (campaign, serve) — everything else keeps
// the default terminate-on-signal behaviour.
void onInterruptSignal(int) { requestInterrupt(); }

void installInterruptHandlers() {
  std::signal(SIGINT, onInterruptSignal);
  std::signal(SIGTERM, onInterruptSignal);
}

// Raw file bytes — the model text a client ships to the daemon verbatim
// (the daemon parses it; the pool keys on the exact text).
std::string readFileText(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ModelLoadError("cannot read model " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Resolves accumulated bitmaps back to the coverage points never reached.
// Rebuilds the plan the engine recorded against: the optimization pipeline
// (when on) must run here exactly as it did before the engine, since slot
// layout follows the optimized actor set.
void printUncovered(const FlatModel& fm, const SimOptions& opt,
                    const CoverageRecorder& bitmaps) {
  FlatModel optimized;
  const FlatModel* model = &fm;
  if (opt.optimize) {
    optimized = optimizeModel(fm, opt);
    model = &optimized;
  }
  CoveragePlan plan = CoveragePlan::build(
      *model, [](const FlatActor& fa) { return covTraitsFor(fa); });
  auto uncovered = listUncovered(*model, plan, bitmaps);
  std::printf("uncovered: %zu point(s)\n", uncovered.size());
  for (const auto& u : uncovered) {
    std::printf("  [%s] %s: %s\n",
                std::string(covMetricName(u.metric)).c_str(),
                u.actorPath.c_str(), u.outcome.c_str());
  }
}

int cmdInfo(const std::string& path) {
  auto model = readModelCli(path);
  Simulator sim(*model);
  const FlatModel& fm = sim.flatModel();
  std::printf("model        : %s\n", model->name().c_str());
  std::printf("actors       : %d (flattened: %zu)\n", model->countActors(),
              fm.actors.size());
  std::printf("subsystems   : %d\n", model->countSubsystems());
  std::printf("signals      : %zu\n", fm.signals.size());
  std::printf("inports      : %zu\n", fm.rootInports.size());
  std::printf("outports     : %zu\n", fm.rootOutports.size());
  std::printf("data stores  : %zu\n", fm.dataStores.size());
  // Type histogram.
  std::vector<std::pair<std::string, int>> hist;
  for (const auto& fa : fm.actors) {
    bool found = false;
    for (auto& [ty, n] : hist) {
      if (ty == fa.type()) {
        ++n;
        found = true;
      }
    }
    if (!found) hist.emplace_back(fa.type(), 1);
  }
  std::sort(hist.begin(), hist.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::printf("actor types  :");
  for (const auto& [ty, n] : hist) std::printf(" %s:%d", ty.c_str(), n);
  std::printf("\n");
  return 0;
}

int cmdGen(const std::string& path, const std::string& outPath) {
  auto model = readModelCli(path);
  Simulator sim(*model);
  SimOptions opt;
  opt.engine = Engine::AccMoS;
  AccMoSEngine engine(sim.flatModel(), opt, TestCaseSpec{});
  if (outPath.empty() || outPath == "-") {
    std::fputs(engine.generatedSource().c_str(), stdout);
  } else {
    std::ofstream out(outPath);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", outPath.c_str());
      return 1;
    }
    out << engine.generatedSource();
    std::printf("wrote %s (%zu bytes)\n", outPath.c_str(),
                engine.generatedSource().size());
  }
  return 0;
}

// accmos gen --budget=N: the coverage-guided test-case generation loop
// (src/gen) instead of source emission.
int cmdTestGen(const std::string& path,
               const std::vector<std::string>& args) {
  SimOptions opt;
  opt.engine = Engine::AccMoS;
  opt.maxSteps = 10000;
  gen::GenOptions gopt;
  bool showUncovered = false;
  std::string v;
  for (const auto& arg : args) {
    if (flagValue(arg, "--budget", &v)) {
      gopt.budget = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flagValue(arg, "--batch", &v)) {
      gopt.batch = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flagValue(arg, "--gen-seed", &v)) {
      gopt.genSeed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flagValue(arg, "--target-metric", &v)) {
      auto m = covMetricFromName(v);
      if (!m) {
        std::fprintf(stderr,
                     "unknown metric '%s' (actor|condition|decision|mcdc)\n",
                     v.c_str());
        return 2;
      }
      gopt.targetMetric = *m;
    } else if (flagValue(arg, "--corpus-dir", &v)) {
      gopt.corpusDir = v;
    } else if (flagValue(arg, "--engine", &v)) {
      if (v == "accmos") opt.engine = Engine::AccMoS;
      else if (v == "sse") opt.engine = Engine::SSE;
      else {
        std::fprintf(stderr, "generation engine must be accmos or sse\n");
        return 2;
      }
    } else if (flagValue(arg, "--steps", &v)) {
      opt.maxSteps = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flagValue(arg, "--workers", &v)) {
      opt.campaign.workers = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flagValue(arg, "--batch-lanes", &v)) {
      opt.batchLanes = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flagValue(arg, "--exec-mode", &v)) {
      if (!parseExecMode(v, &opt)) return 2;
    } else if (flagValue(arg, "--tier", &v)) {
      if (!parseTier(v, &opt)) return 2;
    } else if (flagValue(arg, "--timeout", &v)) {
      opt.runTimeoutSec = std::strtod(v.c_str(), nullptr);
    } else if (flagValue(arg, "--step-budget", &v)) {
      opt.stepBudget = std::strtoull(v.c_str(), nullptr, 10);
    } else if (arg == "--no-opt") {
      opt.optimize = false;
    } else if (arg == "--show-uncovered") {
      showUncovered = true;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return 2;
    }
  }

  LoadedModel loaded = loadModelCli(path);
  if (loaded.stimulus) gopt.base = *loaded.stimulus;
  Simulator sim(*loaded.model);
  gen::GenResult gr = gen::runGeneration(sim.flatModel(), opt, gopt);

  std::string target = gopt.targetMetric
                           ? std::string(covMetricName(*gopt.targetMetric))
                           : std::string("all metrics");
  std::printf("testgen  : budget %zu on %s, gen-seed %llu, target %s\n",
              gopt.budget, std::string(engineName(opt.engine)).c_str(),
              static_cast<unsigned long long>(gopt.genSeed), target.c_str());
  std::printf("optimize : %s\n", gr.optStats.summary().c_str());
  std::printf("%-5s %6s %6s %6s %8s %8s %8s %8s   (cumulative)\n", "iter",
              "eval", "kept", "corpus", "actor", "cond", "dec", "mcdc");
  for (const auto& it : gr.trajectory) {
    std::printf("%-5zu %6zu %6zu %6zu %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
                it.iteration, it.evaluated, it.accepted, it.corpusSize,
                it.cumulative.of(CovMetric::Actor).percent(),
                it.cumulative.of(CovMetric::Condition).percent(),
                it.cumulative.of(CovMetric::Decision).percent(),
                it.cumulative.of(CovMetric::MCDC).percent());
  }
  std::printf("coverage : %s%s\n", gr.finalCoverage.toString().c_str(),
              gr.saturated ? " (saturated before budget)" : "");
  std::printf("corpus   : %zu case(s) kept of %zu evaluated, %zu distinct "
              "diagnostic kind(s)\n",
              gr.corpus.size(), gr.evaluations, gr.diagKinds);
  printFailures(gr.failures);
  if (gr.enginesBuilt > 0) {
    std::printf("codegen  : %zu distinct stimulus shape(s) compiled, "
                "%.3fs compile-wait\n",
                gr.enginesBuilt, gr.compileWaitSeconds);
  }
  if (!gopt.corpusDir.empty()) {
    std::printf("exported : %s (MANIFEST.tsv + entry_*.spec/.csv)\n",
                gopt.corpusDir.c_str());
  }
  if (showUncovered) {
    std::printf("uncovered: %zu point(s)\n", gr.uncovered.size());
    for (const auto& u : gr.uncovered) {
      std::printf("  [%s] %s: %s\n",
                  std::string(covMetricName(u.metric)).c_str(),
                  u.actorPath.c_str(), u.outcome.c_str());
    }
  }
  return gr.failures.empty() ? 0 : 8;
}

// Parsed `run` command line, shared between local `accmos run` and
// `accmos client run` so both accept identical options.
struct RunArgs {
  SimOptions opt;
  TestCaseSpec tests;
  bool showUncovered = false;
  bool explicitTests = false;  // --tests/--seed override embedded stimulus
};

// Returns 0 on success, 2 (after printing) on a bad flag.
int parseRunArgs(const std::vector<std::string>& args, RunArgs* ra) {
  SimOptions& opt = ra->opt;
  opt.engine = Engine::AccMoS;
  opt.maxSteps = 100000;
  std::string v;
  for (const auto& arg : args) {
    if (flagValue(arg, "--engine", &v)) {
      if (v == "accmos") opt.engine = Engine::AccMoS;
      else if (v == "sse") opt.engine = Engine::SSE;
      else if (v == "sseac") opt.engine = Engine::SSEac;
      else if (v == "sserac") opt.engine = Engine::SSErac;
      else {
        std::fprintf(stderr, "unknown engine '%s'\n", v.c_str());
        return 2;
      }
    } else if (flagValue(arg, "--steps", &v)) {
      opt.maxSteps = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flagValue(arg, "--budget", &v)) {
      opt.timeBudgetSec = std::strtod(v.c_str(), nullptr);
    } else if (flagValue(arg, "--tests", &v)) {
      ra->tests = TestCaseSpec::fromCsv(v);
      ra->explicitTests = true;
    } else if (flagValue(arg, "--seed", &v)) {
      ra->tests.seed = std::strtoull(v.c_str(), nullptr, 10);
      ra->explicitTests = true;
    } else if (flagValue(arg, "--collect", &v)) {
      opt.collectList.push_back(v);
    } else if (flagValue(arg, "--opt", &v)) {
      opt.optFlag = v;
    } else if (flagValue(arg, "--batch-lanes", &v)) {
      opt.batchLanes = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flagValue(arg, "--exec-mode", &v)) {
      if (!parseExecMode(v, &opt)) return 2;
    } else if (flagValue(arg, "--tier", &v)) {
      if (!parseTier(v, &opt)) return 2;
    } else if (flagValue(arg, "--timeout", &v)) {
      opt.runTimeoutSec = std::strtod(v.c_str(), nullptr);
    } else if (flagValue(arg, "--step-budget", &v)) {
      opt.stepBudget = std::strtoull(v.c_str(), nullptr, 10);
    } else if (arg == "--no-coverage") {
      opt.coverage = false;
    } else if (arg == "--no-diagnosis") {
      opt.diagnosis = false;
    } else if (arg == "--no-opt") {
      opt.optimize = false;
    } else if (arg == "--stop-on-diagnostic") {
      opt.stopOnDiagnostic = true;
    } else if (arg == "--show-uncovered") {
      ra->showUncovered = true;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (opt.engine == Engine::SSEac || opt.engine == Engine::SSErac) {
    opt.coverage = false;
    opt.diagnosis = false;
  }
  return 0;
}

// The run report, shared between local and client execution so the two
// paths print byte-identical output for identical results (the CI daemon
// smoke test diffs them). Returns the exit code.
int printRunResult(const SimulationResult& res, const SimOptions& opt);

int cmdRun(const std::string& path, const std::vector<std::string>& args) {
  RunArgs ra;
  if (int rc = parseRunArgs(args, &ra); rc != 0) return rc;
  const SimOptions& opt = ra.opt;

  LoadedModel loaded = loadModelCli(path);
  // An embedded <stimulus> is the default; --tests/--seed override it.
  if (loaded.stimulus && !ra.explicitTests) ra.tests = *loaded.stimulus;
  Simulator sim(*loaded.model);
  auto res = sim.run(opt, ra.tests);

  int code = printRunResult(res, opt);
  if (ra.showUncovered) {
    if (!res.hasCoverage) {
      std::fprintf(stderr,
                   "--show-uncovered needs coverage (an instrumented "
                   "engine, without --no-coverage)\n");
      return 2;
    }
    printUncovered(sim.flatModel(), opt, res.bitmaps);
  }
  return code;
}

int printRunResult(const SimulationResult& res, const SimOptions& opt) {
  std::printf("engine   : %s\n",
              std::string(engineName(opt.engine)).c_str());
  std::printf("optimize : %s\n", res.optStats.summary().c_str());
  std::printf("steps    : %llu%s%s\n",
              static_cast<unsigned long long>(res.stepsExecuted),
              res.stoppedEarly ? " (stopped early)" : "",
              res.timedOut ? " (timed out: deadline/step budget)" : "");
  std::printf("exec     : %.4fs (%.1f ns/step)\n", res.execSeconds,
              res.stepsExecuted > 0
                  ? 1e9 * res.execSeconds /
                        static_cast<double>(res.stepsExecuted)
                  : 0.0);
  if (res.generateSeconds > 0.0 || res.compileSeconds > 0.0) {
    std::printf("codegen  : %.3fs generate + %.3fs compile",
                res.generateSeconds, res.compileSeconds);
    if (res.loadSeconds > 0.0) std::printf(" + %.3fs load", res.loadSeconds);
    if (!res.execMode.empty()) std::printf(" [%s]", res.execMode.c_str());
    std::printf("\n");
  } else if (!res.execMode.empty()) {
    // Interpreter-tier runs have no codegen cost line to carry the mode.
    std::printf("mode     : %s\n", res.execMode.c_str());
  }
  if (res.hasCoverage) {
    std::printf("coverage : %s\n", res.coverage.toString().c_str());
  }
  for (size_t k = 0; k < res.finalOutputs.size(); ++k) {
    std::printf("out[%zu]   : %s\n", k + 1,
                res.finalOutputs[k].toString().c_str());
  }
  for (const auto& c : res.collected) {
    std::printf("monitor  : %s last=%s x%llu\n", c.path.c_str(),
                c.last.toString().c_str(),
                static_cast<unsigned long long>(c.count));
  }
  if (res.diagnostics.empty()) {
    std::printf("diagnosis: clean\n");
  }
  for (const auto& d : res.diagnostics) {
    std::printf("diagnosis: [%s] %s first@%llu x%llu %s\n",
                std::string(diagKindName(d.kind)).c_str(),
                d.actorPath.c_str(),
                static_cast<unsigned long long>(d.firstStep),
                static_cast<unsigned long long>(d.count),
                d.message.c_str());
  }
  // A retired (timed-out) run outranks "finished with diagnostics": its
  // observations stop at the retirement point, so they are not the full
  // story the diagnostics exit code promises.
  if (res.timedOut) return 7;
  return res.diagnostics.empty() ? 0 : 3;
}

// Parsed `campaign` command line, shared between local `accmos campaign`
// and `accmos client campaign`.
struct CampaignArgs {
  SimOptions opt;
  int numSeeds = 8;
  bool showUncovered = false;
  size_t shards = 0;  // > 0: fan out over shard-worker processes
};

int parseCampaignArgs(const std::vector<std::string>& args,
                      CampaignArgs* ca) {
  SimOptions& opt = ca->opt;
  opt.engine = Engine::AccMoS;
  opt.maxSteps = 100000;
  std::string v;
  for (const auto& arg : args) {
    if (flagValue(arg, "--seeds", &v)) {
      ca->numSeeds = static_cast<int>(std::strtol(v.c_str(), nullptr, 10));
    } else if (flagValue(arg, "--steps", &v)) {
      opt.maxSteps = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flagValue(arg, "--workers", &v)) {
      opt.campaign.workers = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flagValue(arg, "--batch-lanes", &v)) {
      opt.batchLanes = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flagValue(arg, "--shards", &v)) {
      ca->shards = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flagValue(arg, "--engine", &v)) {
      if (v == "accmos") opt.engine = Engine::AccMoS;
      else if (v == "sse") opt.engine = Engine::SSE;
      else {
        std::fprintf(stderr, "campaign engine must be accmos or sse\n");
        return 2;
      }
    } else if (flagValue(arg, "--exec-mode", &v)) {
      if (!parseExecMode(v, &opt)) return 2;
    } else if (flagValue(arg, "--tier", &v)) {
      if (!parseTier(v, &opt)) return 2;
    } else if (flagValue(arg, "--timeout", &v)) {
      opt.runTimeoutSec = std::strtod(v.c_str(), nullptr);
    } else if (flagValue(arg, "--step-budget", &v)) {
      opt.stepBudget = std::strtoull(v.c_str(), nullptr, 10);
    } else if (arg == "--no-opt") {
      opt.optimize = false;
    } else if (arg == "--show-uncovered") {
      ca->showUncovered = true;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return 2;
    }
  }
  return 0;
}

// The campaign seed schedule: deterministic, so a client can reconstruct
// the exact spec batch `accmos campaign --seeds=N` would run locally.
std::vector<uint64_t> campaignSeeds(int numSeeds) {
  std::vector<uint64_t> seeds;
  for (int k = 0; k < numSeeds; ++k) seeds.push_back(1000 + 37 * k);
  return seeds;
}

// The campaign report, shared between local and client execution so the
// two paths print byte-identical tables for identical results (the CI
// daemon smoke test diffs them). Returns the exit code, including 9 for
// an interrupted (partial) campaign.
int printCampaign(const CampaignResult& cr, const SimOptions& opt,
                  int numSeeds) {
  std::printf("campaign : %d seeds x %llu steps on %s, %zu worker(s)\n",
              numSeeds, static_cast<unsigned long long>(opt.maxSteps),
              std::string(engineName(opt.engine)).c_str(), cr.workersUsed);
  std::printf("optimize : %s\n", cr.optStats.summary().c_str());
  std::printf("%-10s %8s %8s %8s %8s   (cumulative)\n", "seed", "actor",
              "cond", "dec", "mcdc");
  for (const auto& sr : cr.perSeed) {
    std::printf("%-10llu %7.1f%% %7.1f%% %7.1f%% %7.1f%%%s\n",
                static_cast<unsigned long long>(sr.seed),
                sr.cumulative.of(CovMetric::Actor).percent(),
                sr.cumulative.of(CovMetric::Condition).percent(),
                sr.cumulative.of(CovMetric::Decision).percent(),
                sr.cumulative.of(CovMetric::MCDC).percent(),
                sr.failed ? "   FAILED" : "");
  }
  std::printf("exec     : %.3fs total, %.3fs wall", cr.totalExecSeconds,
              cr.wallSeconds);
  if (cr.compileSeconds > 0.0) {
    std::printf(" (+%.3fs one-off generate+compile, %.3fs compile-wait%s%s)",
                cr.generateSeconds + cr.compileSeconds, cr.compileWaitSeconds,
                cr.loadSeconds > 0.0 ? ", dlopen" : "",
                cr.compileCacheHit ? ", cached" : "");
  }
  if (opt.engine == Engine::AccMoS && opt.tier != Tier::Native) {
    std::printf("\ntier     : %s — %zu interp + %zu native seed(s), "
                "first result %.3fs",
                std::string(tierName(opt.tier)).c_str(), cr.interpSeeds,
                cr.nativeSeeds, cr.timeToFirstResultSeconds);
    if (cr.tierSwapIndex >= 0) {
      std::printf(", hot-swap at seed index %lld", cr.tierSwapIndex);
    }
  }
  std::printf("\ndiagnosis: %zu distinct event(s) across the campaign\n",
              cr.diagnostics.size());
  for (const auto& d : cr.diagnostics) {
    std::printf("  [%s] %s earliest@%llu x%llu\n",
                std::string(diagKindName(d.kind)).c_str(),
                d.actorPath.c_str(),
                static_cast<unsigned long long>(d.firstStep),
                static_cast<unsigned long long>(d.count));
  }
  printFailures(cr.failures);
  if (cr.interrupted) {
    std::printf("interrupt: stopped early — %zu of %d seed(s) finished; "
                "partial results above are bit-identical to the same "
                "prefix of a full campaign\n",
                cr.perSeed.size(), numSeeds);
    return 9;
  }
  // The campaign itself completed — per-seed faults were contained — but
  // the merged result is missing the failed seeds' contributions.
  return cr.failures.empty() ? 0 : 8;
}

int cmdCampaign(const std::string& path,
                const std::vector<std::string>& args) {
  CampaignArgs ca;
  if (int rc = parseCampaignArgs(args, &ca); rc != 0) return rc;
  LoadedModel loaded = loadModelCli(path);
  TestCaseSpec base = loaded.stimulus.value_or(TestCaseSpec{});
  Simulator sim(*loaded.model);

  // Ctrl-C / SIGTERM stop the campaign cooperatively: finished seeds are
  // flushed below and the exit code says the table is a prefix. With
  // --shards the coordinator forwards the signal to every worker process
  // and merges the contiguous prefix they flush — same contract, same
  // exit code, across process boundaries.
  installInterruptHandlers();
  CampaignResult cr;
  if (ca.shards > 0) {
    std::vector<TestCaseSpec> specs;
    for (uint64_t seed : campaignSeeds(ca.numSeeds)) {
      specs.push_back(base);
      specs.back().seed = seed;
    }
    dist::ShardOptions so;
    so.shards = ca.shards;
    dist::ShardStats st;
    cr = dist::runShardedCampaign(readFileText(path), ca.opt, specs, so, &st);
    int code = printCampaign(cr, ca.opt, ca.numSeeds);
    std::printf("shards   : %zu shard(s), %llu fleet compiler "
                "invocation(s)%s\n",
                st.shards,
                static_cast<unsigned long long>(st.fleetCompilerInvocations),
                st.deadWorkers > 0 ? " — WORKER DEATHS CONTAINED" : "");
    if (ca.showUncovered) {
      printUncovered(sim.flatModel(), ca.opt, cr.mergedBitmaps);
    }
    return code;
  }
  cr = runCampaign(sim.flatModel(), ca.opt, base, campaignSeeds(ca.numSeeds));
  int code = printCampaign(cr, ca.opt, ca.numSeeds);
  if (ca.showUncovered) {
    printUncovered(sim.flatModel(), ca.opt, cr.mergedBitmaps);
  }
  return code;
}

int cmdExportSuite(const std::string& dir) {
  std::filesystem::create_directories(dir);
  for (const auto& info : benchmarkSuite()) {
    auto model = buildBenchmarkModel(info.name);
    std::string path = dir + "/" + info.name + ".xml";
    TestCaseSpec stim = benchStimulus(info.name);
    writeModelToFile(*model, path, &stim);
    std::printf("wrote %-24s (%d actors, %d subsystems)\n", path.c_str(),
                info.actors, info.subsystems);
  }
  auto sample = sampleOverflowModel();
  TestCaseSpec sampleStim = sampleOverflowStimulus();
  writeModelToFile(*sample, dir + "/Sample.xml", &sampleStim);
  auto injected = buildCsevWithInjectedErrors();
  TestCaseSpec csevStim = benchStimulus("CSEV");
  writeModelToFile(*injected, dir + "/CSEV_injected.xml", &csevStim);
  std::printf("wrote %s and %s\n", (dir + "/Sample.xml").c_str(),
              (dir + "/CSEV_injected.xml").c_str());
  return 0;
}

// accmos serve --socket=PATH: run accmosd in the foreground until a
// `client shutdown` request or SIGTERM/SIGINT (graceful either way).
int cmdServe(const std::vector<std::string>& args) {
  serve::ServeOptions sopt;
  std::string v;
  for (const auto& arg : args) {
    if (flagValue(arg, "--socket", &v)) {
      sopt.socketPath = v;
    } else if (flagValue(arg, "--pool-budget", &v)) {
      sopt.poolBudgetBytes = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flagValue(arg, "--request-workers", &v)) {
      sopt.requestWorkers = std::strtoull(v.c_str(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (sopt.socketPath.empty()) {
    std::fprintf(stderr, "serve needs --socket=PATH\n");
    return 2;
  }

  installInterruptHandlers();
  serve::Daemon daemon(sopt);
  std::printf("accmosd  : accmos %s protocol v%u, listening on %s\n",
              serve::kAccmosVersion, serve::kProtocolVersion,
              sopt.socketPath.c_str());
  std::printf("accmosd  : %zu request worker(s), pool budget %llu bytes%s\n",
              daemon.scheduler().workers(),
              static_cast<unsigned long long>(sopt.poolBudgetBytes),
              sopt.poolBudgetBytes == 0 ? " (unbounded)" : "");
  std::fflush(stdout);
  daemon.run();
  serve::PoolStats ps = daemon.poolStats();
  std::printf("accmosd  : shut down cleanly (%llu request(s) served, "
              "pool %llu hit(s) / %llu miss(es) / %llu eviction(s))\n",
              static_cast<unsigned long long>(daemon.scheduler().executed()),
              static_cast<unsigned long long>(ps.hits),
              static_cast<unsigned long long>(ps.misses),
              static_cast<unsigned long long>(ps.evictions));
  return 0;
}

void printServiceLine(const serve::ServiceMeta& meta) {
  std::printf("service  : pool %s (%llu entr%s, %llu byte(s) resident, "
              "%llu hit(s), %llu miss(es), %llu eviction(s))\n",
              meta.poolHit ? "hit" : "miss",
              static_cast<unsigned long long>(meta.pool.entries),
              meta.pool.entries == 1 ? "y" : "ies",
              static_cast<unsigned long long>(meta.pool.residentBytes),
              static_cast<unsigned long long>(meta.pool.hits),
              static_cast<unsigned long long>(meta.pool.misses),
              static_cast<unsigned long long>(meta.pool.evictions));
}

int cmdClientRun(const std::string& socketPath, const std::string& path,
                 const std::vector<std::string>& args) {
  RunArgs ra;
  if (int rc = parseRunArgs(args, &ra); rc != 0) return rc;
  if (ra.opt.engine == Engine::SSEac || ra.opt.engine == Engine::SSErac) {
    std::fprintf(stderr,
                 "the daemon serves instrumented engines only "
                 "(accmos or sse)\n");
    return 2;
  }
  // Load locally too: parse errors keep their local exit code (4) without
  // a round-trip, and the embedded <stimulus> default matches `accmos run`.
  std::string text = readFileText(path);
  LoadedModel loaded = loadModelCli(path);
  if (loaded.stimulus && !ra.explicitTests) ra.tests = *loaded.stimulus;

  serve::ServeClient client(socketPath);
  serve::ServiceMeta meta;
  SimulationResult res = client.run(text, ra.opt, ra.tests, &meta);
  int code = printRunResult(res, ra.opt);
  printServiceLine(meta);
  if (ra.showUncovered) {
    if (!res.hasCoverage) {
      std::fprintf(stderr,
                   "--show-uncovered needs coverage (an instrumented "
                   "engine, without --no-coverage)\n");
      return 2;
    }
    Simulator sim(*loaded.model);
    printUncovered(sim.flatModel(), ra.opt, res.bitmaps);
  }
  return code;
}

int cmdClientCampaign(const std::string& socketPath, const std::string& path,
                      const std::vector<std::string>& args) {
  CampaignArgs ca;
  if (int rc = parseCampaignArgs(args, &ca); rc != 0) return rc;
  if (ca.shards > 0) {
    std::fprintf(stderr,
                 "--shards is a local coordinator mode; the daemon already "
                 "schedules requests across its own workers\n");
    return 2;
  }
  std::string text = readFileText(path);
  LoadedModel loaded = loadModelCli(path);
  TestCaseSpec base = loaded.stimulus.value_or(TestCaseSpec{});

  // The exact spec batch runCampaign() would build locally, so the daemon
  // merge is bit-identical to `accmos campaign` on the same flags.
  std::vector<TestCaseSpec> specs;
  for (uint64_t seed : campaignSeeds(ca.numSeeds)) {
    specs.push_back(base);
    specs.back().seed = seed;
  }

  serve::ServeClient client(socketPath);
  serve::ServiceMeta meta;
  CampaignResult cr = client.campaign(text, ca.opt, specs, &meta);
  int code = printCampaign(cr, ca.opt, ca.numSeeds);
  printServiceLine(meta);
  if (ca.showUncovered) {
    Simulator sim(*loaded.model);
    printUncovered(sim.flatModel(), ca.opt, cr.mergedBitmaps);
  }
  return code;
}

int cmdClientStats(const std::string& socketPath) {
  serve::ServeClient client(socketPath);
  serve::Json s = client.stats();
  std::printf("daemon   : accmos %s (ABI v%llu)\n",
              client.daemonVersion().c_str(),
              static_cast<unsigned long long>(client.daemonAbi()));
  const serve::Json& pool = s.at("pool", "$");
  std::printf("pool     : %llu entr%s, %llu byte(s) resident of %llu "
              "budget, %llu hit(s), %llu miss(es), %llu eviction(s)\n",
              static_cast<unsigned long long>(
                  pool.at("entries", "$.pool").asU64("$.pool.entries")),
              pool.at("entries", "$.pool").asU64("$.pool.entries") == 1
                  ? "y"
                  : "ies",
              static_cast<unsigned long long>(
                  pool.at("residentBytes", "$.pool")
                      .asU64("$.pool.residentBytes")),
              static_cast<unsigned long long>(
                  pool.at("byteBudget", "$.pool").asU64("$.pool.byteBudget")),
              static_cast<unsigned long long>(
                  pool.at("hits", "$.pool").asU64("$.pool.hits")),
              static_cast<unsigned long long>(
                  pool.at("misses", "$.pool").asU64("$.pool.misses")),
              static_cast<unsigned long long>(
                  pool.at("evictions", "$.pool").asU64("$.pool.evictions")));
  const serve::Json& sched = s.at("scheduler", "$");
  std::printf("requests : %llu executed on %llu worker(s), peak %llu "
              "in flight\n",
              static_cast<unsigned long long>(
                  sched.at("executed", "$.scheduler")
                      .asU64("$.scheduler.executed")),
              static_cast<unsigned long long>(
                  sched.at("workers", "$.scheduler")
                      .asU64("$.scheduler.workers")),
              static_cast<unsigned long long>(
                  sched.at("peakInFlight", "$.scheduler")
                      .asU64("$.scheduler.peakInFlight")));
  std::printf("compiler : %llu invocation(s) over the daemon's lifetime\n",
              static_cast<unsigned long long>(
                  s.at("compilerInvocations", "$")
                      .asU64("$.compilerInvocations")));
  return 0;
}

// accmos client <run|campaign|stats|shutdown> [model] --socket=PATH [...]
int cmdClient(const std::vector<std::string>& argsAll) {
  if (argsAll.empty()) return usage();
  const std::string sub = argsAll[0];
  std::string socketPath;
  std::string v;
  std::vector<std::string> rest;
  for (size_t k = 1; k < argsAll.size(); ++k) {
    if (flagValue(argsAll[k], "--socket", &v)) {
      socketPath = v;
    } else {
      rest.push_back(argsAll[k]);
    }
  }
  if (socketPath.empty()) {
    std::fprintf(stderr, "client needs --socket=PATH\n");
    return 2;
  }
  if (sub == "stats" && rest.empty()) return cmdClientStats(socketPath);
  if (sub == "shutdown" && rest.empty()) {
    serve::ServeClient client(socketPath);
    client.shutdown();
    std::printf("accmosd at %s acknowledged shutdown\n", socketPath.c_str());
    return 0;
  }
  if ((sub == "run" || sub == "campaign") && !rest.empty() &&
      rest[0].rfind("--", 0) != 0) {
    std::string path = rest[0];
    rest.erase(rest.begin());
    return sub == "run" ? cmdClientRun(socketPath, path, rest)
                        : cmdClientCampaign(socketPath, path, rest);
  }
  return usage();
}

int mainImpl(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string cmd = argv[1];
  try {
    if (cmd == "--version" || cmd == "version") {
      std::fputs(serve::buildInfo().c_str(), stdout);
      return 0;
    }
    if (cmd == "serve") {
      std::vector<std::string> args(argv + 2, argv + argc);
      return cmdServe(args);
    }
    if (cmd == "client" && argc >= 3) {
      std::vector<std::string> args(argv + 2, argv + argc);
      return cmdClient(args);
    }
    if (cmd == "info" && argc == 3) return cmdInfo(argv[2]);
    if (cmd == "gen" && argc >= 3) {
      // --budget selects the coverage-guided test-case generation mode;
      // without it, gen keeps its original meaning (emit simulation code).
      std::vector<std::string> args(argv + 3, argv + argc);
      for (const auto& arg : args) {
        if (arg.rfind("--budget=", 0) == 0) return cmdTestGen(argv[2], args);
      }
      std::string out;
      for (int k = 3; k < argc; ++k) {
        if (std::strcmp(argv[k], "-o") == 0 && k + 1 < argc) out = argv[k + 1];
      }
      return cmdGen(argv[2], out);
    }
    if (cmd == "run" && argc >= 3) {
      std::vector<std::string> args(argv + 3, argv + argc);
      return cmdRun(argv[2], args);
    }
    if (cmd == "campaign" && argc >= 3) {
      std::vector<std::string> args(argv + 3, argv + argc);
      return cmdCampaign(argv[2], args);
    }
    if (cmd == "shard-worker" && argc == 2) {
      // Internal mode: one shard of a --shards campaign. The coordinator
      // holds the other end of the socketpair on our fd 0; cooperative
      // interrupt handlers make a forwarded SIGTERM flush the prefix.
      installInterruptHandlers();
      return dist::runShardWorker(0);
    }
    if (cmd == "export-suite" && argc == 3) return cmdExportSuite(argv[2]);
  } catch (const ModelLoadError& e) {
    std::fprintf(stderr, "accmos: %s\n", e.what());
    return 4;
  } catch (const SimTimeoutError& e) {
    std::fprintf(stderr, "accmos: %s\n", e.what());
    return 7;
  } catch (const SimCrashError& e) {
    std::fprintf(stderr, "accmos: %s\n", e.what());
    return 6;
  } catch (const CompileError& e) {
    std::fprintf(stderr, "accmos: %s\n", e.what());
    return 5;
  } catch (const serve::ProtocolError& e) {
    // Transport/handshake trouble between `accmos client` and accmosd —
    // an environment problem, not a simulation outcome.
    std::fprintf(stderr, "accmos: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "accmos: %s\n", e.what());
    return 1;
  }
  return usage();
}

}  // namespace
}  // namespace accmos::cli

int main(int argc, char** argv) { return accmos::cli::mainImpl(argc, argv); }
