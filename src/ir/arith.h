// Shared arithmetic semantics.
//
// Every engine — the boxed interpreter, the typed bytecode/closure engines,
// and the C++ code AccMoS generates — must agree bit-for-bit on integer
// wrapping, float->int conversion, and division edge cases, or the
// differential tests (and the paper's claim that generated code detects the
// same errors as SSE) fall apart. These helpers are that single definition;
// the generated-code runtime preamble contains the same functions verbatim
// and the test suite checks them against each other.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

#include "ir/datatype.h"

namespace accmos {

using Int128 = __int128;

// Float -> int64 conversion with defined behaviour on NaN and out-of-range
// values (plain C++ casts would be UB).
inline int64_t f2i(double v) {
  if (std::isnan(v)) return 0;
  if (v >= 9223372036854775808.0) return std::numeric_limits<int64_t>::max();
  if (v <= -9223372036854775808.0) return std::numeric_limits<int64_t>::min();
  return static_cast<int64_t>(v);
}

struct IntResult {
  int64_t value = 0;   // wrapped result, sign-extended two's complement
  bool wrapped = false;
};

// Wraps a 128-bit accumulated integer into data type `t` with
// two's-complement semantics and reports whether wrapping occurred —
// the condition the paper's Fig. 4 diagnostic detects.
inline IntResult wrapStore(DataType t, Int128 acc) {
  IntResult r;
  uint64_t low = static_cast<uint64_t>(static_cast<unsigned __int128>(acc));
  switch (t) {
    case DataType::Bool:
      r.value = acc != 0 ? 1 : 0;
      r.wrapped = acc != 0 && acc != 1;
      return r;
    case DataType::I8: r.value = static_cast<int8_t>(low); break;
    case DataType::I16: r.value = static_cast<int16_t>(low); break;
    case DataType::I32: r.value = static_cast<int32_t>(low); break;
    case DataType::I64: r.value = static_cast<int64_t>(low); break;
    case DataType::U8: r.value = static_cast<uint8_t>(low); break;
    case DataType::U16: r.value = static_cast<uint16_t>(low); break;
    case DataType::U32: r.value = static_cast<uint32_t>(low); break;
    case DataType::U64: r.value = static_cast<int64_t>(low); break;
    default:
      r.value = static_cast<int64_t>(low);
      break;
  }
  // Re-widen the stored pattern per the destination type's signedness and
  // compare with the exact accumulator.
  Int128 back;
  if (isUnsignedInt(t)) {
    back = static_cast<Int128>(static_cast<uint64_t>(r.value) &
                               (dataTypeBits(t) >= 64
                                    ? ~uint64_t{0}
                                    : ((uint64_t{1} << dataTypeBits(t)) - 1)));
  } else {
    back = static_cast<Int128>(r.value);
  }
  r.wrapped = back != acc;
  return r;
}

// Saturating store: clamps the wide accumulator to the destination type's
// range (Simulink's "saturate on overflow" arithmetic mode); `wrapped`
// reports that clamping occurred.
inline IntResult satStore(DataType t, Int128 acc) {
  IntResult r;
  Int128 lo;
  Int128 hi;
  if (isUnsignedInt(t)) {
    lo = 0;
    hi = static_cast<Int128>(uintTypeMax(t));
  } else {
    lo = static_cast<Int128>(intTypeMin(t));
    hi = static_cast<Int128>(intTypeMax(t));
  }
  if (acc < lo) {
    acc = lo;
    r.wrapped = true;
  } else if (acc > hi) {
    acc = hi;
    r.wrapped = true;
  }
  r.value = wrapStore(t, acc).value;
  return r;
}

// Stores a real value into an integer type with Simulink-style
// round-to-nearest, range clamping, and two's-complement wrap — the exact
// behaviour of Value::store and the generated accmos_store_<t>(double).
struct RealStoreResult {
  int64_t value = 0;
  bool wrapped = false;
  bool precisionLoss = false;
};

inline RealStoreResult storeDoubleAsInt(DataType t, double v) {
  RealStoreResult r;
  double rounded = std::nearbyint(v);
  if (rounded != v) r.precisionLoss = true;
  int64_t wide;
  if (std::isnan(v)) {
    wide = 0;
    r.precisionLoss = true;
  } else if (rounded >= 9.2233720368547758e18) {
    wide = std::numeric_limits<int64_t>::max();
    r.wrapped = true;
  } else if (rounded <= -9.2233720368547758e18) {
    wide = std::numeric_limits<int64_t>::min();
    r.wrapped = true;
  } else {
    wide = static_cast<int64_t>(rounded);
  }
  IntResult w = wrapStore(t, static_cast<Int128>(wide));
  r.value = w.value;
  r.wrapped = r.wrapped || w.wrapped;
  return r;
}

// Saturating variant of storeDoubleAsInt (round-to-nearest, clamp to the
// destination range; `wrapped` reports clamping).
inline RealStoreResult storeDoubleAsIntSat(DataType t, double v) {
  RealStoreResult r;
  double rounded = std::nearbyint(v);
  if (rounded != v) r.precisionLoss = true;
  Int128 wide;
  if (std::isnan(v)) {
    wide = 0;
    r.precisionLoss = true;
  } else if (rounded >= 1.7014118346046923e38) {
    wide = static_cast<Int128>(std::numeric_limits<int64_t>::max());
  } else if (rounded <= -1.7014118346046923e38) {
    wide = static_cast<Int128>(std::numeric_limits<int64_t>::min());
  } else {
    wide = static_cast<Int128>(rounded);
  }
  IntResult w = satStore(t, wide);
  r.value = w.value;
  r.wrapped = w.wrapped;
  return r;
}

// Integer division with defined semantics shared by all engines:
// divisor 0 -> result 0 with divByZero flag; otherwise exact 128-bit
// division wrapped into the output type (INT_MIN / -1 wraps, flagged).
struct DivResult {
  int64_t value = 0;
  bool wrapped = false;
  bool divByZero = false;
};

inline DivResult intDiv(DataType t, int64_t a, int64_t b) {
  DivResult r;
  if (b == 0) {
    r.divByZero = true;
    return r;
  }
  IntResult w = wrapStore(t, static_cast<Int128>(a) / b);
  r.value = w.value;
  r.wrapped = w.wrapped;
  return r;
}

inline DivResult intMod(DataType t, int64_t a, int64_t b) {
  DivResult r;
  if (b == 0) {
    r.divByZero = true;
    return r;
  }
  // INT64_MIN % -1 is UB in C++; compute in 128 bits.
  IntResult w = wrapStore(t, static_cast<Int128>(a) % b);
  r.value = w.value;
  r.wrapped = w.wrapped;
  return r;
}

// The deterministic stimulus generator shared by all engines: SplitMix64.
// The generated-code runtime preamble carries an identical copy so a
// compiled simulation sees the same test-case stream as the interpreter.
struct SplitMix64 {
  uint64_t state = 0;

  explicit SplitMix64(uint64_t seed = 0) : state(seed) {}

  uint64_t next() {
    state += 0x9E3779B97F4A7C15ULL;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  // Uniform double in [0, 1).
  double nextUnit() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  double nextUniform(double lo, double hi) {
    return lo + nextUnit() * (hi - lo);
  }
};

// Derives an independent per-port stream from a run seed (same formula in
// the generated runtime).
inline uint64_t portSeed(uint64_t runSeed, int portIndex) {
  SplitMix64 mixer(runSeed ^ (0xA24BAED4963EE407ULL +
                              static_cast<uint64_t>(portIndex) * 0x9FB21C651E98DF25ULL));
  return mixer.next();
}

}  // namespace accmos
