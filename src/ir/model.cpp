#include "ir/model.h"

#include <cstdlib>
#include <sstream>

namespace accmos {

void ParamMap::set(const std::string& key, std::string value) {
  map_[key] = std::move(value);
}

void ParamMap::setDouble(const std::string& key, double value) {
  std::ostringstream os;
  os.precision(17);
  os << value;
  map_[key] = os.str();
}

void ParamMap::setInt(const std::string& key, int64_t value) {
  map_[key] = std::to_string(value);
}

bool ParamMap::has(const std::string& key) const {
  return map_.find(key) != map_.end();
}

std::string ParamMap::getString(const std::string& key,
                                const std::string& def) const {
  auto it = map_.find(key);
  return it == map_.end() ? def : it->second;
}

double ParamMap::getDouble(const std::string& key, double def) const {
  auto it = map_.find(key);
  if (it == map_.end()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

int64_t ParamMap::getInt(const std::string& key, int64_t def) const {
  auto it = map_.find(key);
  if (it == map_.end()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

bool ParamMap::getBool(const std::string& key, bool def) const {
  auto it = map_.find(key);
  if (it == map_.end()) return def;
  const std::string& v = it->second;
  return v == "1" || v == "true" || v == "on" || v == "yes";
}

std::vector<double> ParamMap::getDoubleList(const std::string& key) const {
  std::vector<double> out;
  auto it = map_.find(key);
  if (it == map_.end()) return out;
  std::istringstream is(it->second);
  std::string tok;
  while (std::getline(is, tok, ',')) {
    if (tok.empty()) continue;
    out.push_back(std::strtod(tok.c_str(), nullptr));
  }
  return out;
}

DataType Actor::dtype() const {
  const std::string s = params_.getString("dtype", "f64");
  auto t = dataTypeFromName(s);
  if (!t) throw ModelError("actor '" + name_ + "': unknown dtype '" + s + "'");
  return *t;
}

void Actor::setDtype(DataType t) {
  params_.set("dtype", std::string(dataTypeName(t)));
}

int Actor::width() const {
  int64_t w = params_.getInt("width", 1);
  if (w < 1) throw ModelError("actor '" + name_ + "': width must be >= 1");
  return static_cast<int>(w);
}

void Actor::setWidth(int w) { params_.setInt("width", w); }

System& Actor::makeSubsystem() {
  if (!subsystem_) subsystem_ = std::make_unique<System>(name_);
  return *subsystem_;
}

Actor& System::addActor(const std::string& name, const std::string& type) {
  if (findActor(name) != nullptr) {
    throw ModelError("system '" + name_ + "': duplicate actor '" + name + "'");
  }
  actors_.push_back(std::make_unique<Actor>(name, type));
  return *actors_.back();
}

Actor* System::findActor(const std::string& name) {
  for (auto& a : actors_) {
    if (a->name() == name) return a.get();
  }
  return nullptr;
}

const Actor* System::findActor(const std::string& name) const {
  for (const auto& a : actors_) {
    if (a->name() == name) return a.get();
  }
  return nullptr;
}

void System::connect(const std::string& fromActor, int fromPort,
                     const std::string& toActor, int toPort) {
  lines_.push_back(Line{fromActor, fromPort, toActor, toPort});
}

void System::connect(const std::string& fromActor, const std::string& toActor,
                     int toPort) {
  connect(fromActor, 1, toActor, toPort);
}

int Model::countActors() const {
  int actors = 0;
  int subsystems = 0;
  countIn(*root_, &actors, &subsystems);
  return actors;
}

int Model::countSubsystems() const {
  int actors = 0;
  int subsystems = 0;
  countIn(*root_, &actors, &subsystems);
  return subsystems;
}

void Model::countIn(const System& sys, int* actors, int* subsystems) {
  for (const auto& a : sys.actors()) {
    ++*actors;
    if (a->isSubsystem()) {
      ++*subsystems;
      countIn(*a->subsystem(), actors, subsystems);
    }
  }
}

}  // namespace accmos
