// Scalar data types for signals and parameters.
//
// AccMoS models carry explicit signal types (the paper's diagnosis templates
// dispatch on them: downcast detection compares widths, wrap-on-overflow
// needs the exact integer width). The set mirrors Simulink's built-in types.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <string_view>

namespace accmos {

enum class DataType : uint8_t {
  Bool,
  I8,
  I16,
  I32,
  I64,
  U8,
  U16,
  U32,
  U64,
  F32,
  F64,
};

inline constexpr DataType kAllDataTypes[] = {
    DataType::Bool, DataType::I8,  DataType::I16, DataType::I32,
    DataType::I64,  DataType::U8,  DataType::U16, DataType::U32,
    DataType::U64,  DataType::F32, DataType::F64,
};

// Canonical short name used in model files and generated code comments
// ("i32", "f64", "bool", ...).
std::string_view dataTypeName(DataType t);

// Parses a short name; returns nullopt on unknown names.
std::optional<DataType> dataTypeFromName(std::string_view name);

// C++ type spelled in generated code ("int32_t", "double", ...).
std::string_view dataTypeCpp(DataType t);

// Storage size in bytes of one scalar element.
int dataTypeSize(DataType t);

bool isFloatType(DataType t);
bool isIntType(DataType t);      // signed or unsigned integer, not Bool
bool isSignedInt(DataType t);
bool isUnsignedInt(DataType t);

// Number of value bits (excluding sign bit for signed types); Bool -> 1.
int dataTypeBits(DataType t);

// Integer range as int64 (U64 max saturates to int64 max for range checks
// done in 64-bit arithmetic; exact U64 handling uses unsigned paths).
int64_t intTypeMin(DataType t);
int64_t intTypeMax(DataType t);
uint64_t uintTypeMax(DataType t);

// Wraps a 64-bit computed result into the destination integer type using
// two's-complement semantics; `wrapped` is set when the value changed.
// This is the single definition of integer wrap used by every engine, so
// the interpreter and generated code agree bit-for-bit.
int64_t wrapToInt(DataType t, int64_t wide, bool* wrapped);
uint64_t wrapToUint(DataType t, uint64_t wide, bool* wrapped);

// True when converting `from` to `to` can lose magnitude (downcast in the
// paper's sense: sizeof(out) < sizeof(in) within the same kind, or
// float -> int).
bool isDowncast(DataType from, DataType to);

// True when converting `from` to `to` can silently lose precision
// (e.g. i64 -> f64, f64 -> f32).
bool losesPrecision(DataType from, DataType to);

}  // namespace accmos
