#include "ir/value.h"

#include <bit>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "ir/arith.h"

namespace accmos {

Value::Value(DataType type, int width) : type_(type) {
  if (width < 1) throw std::invalid_argument("Value width must be >= 1");
  width_ = width;
  if (width > kInline) heap_.assign(static_cast<size_t>(width), 0);
}

Value Value::scalarF(DataType type, double v) {
  Value val(type, 1);
  val.setF(0, v);
  return val;
}

Value Value::scalarI(DataType type, int64_t v) {
  Value val(type, 1);
  val.setI(0, v);
  return val;
}

Value Value::scalarBool(bool v) {
  Value val(DataType::Bool, 1);
  val.setI(0, v ? 1 : 0);
  return val;
}

void Value::resize(DataType type, int width) {
  type_ = type;
  width_ = width;
  if (width > kInline) {
    heap_.assign(static_cast<size_t>(width), 0);
  } else {
    heap_.clear();  // keeps capacity for a later spill
    inline_[0] = 0;
    inline_[1] = 0;
  }
}

int64_t Value::i(int idx) const {
  // Slots hold the wrapped two's-complement pattern already sign-extended.
  return static_cast<int64_t>(raw(idx));
}

double Value::f(int idx) const {
  if (type_ == DataType::F32) {
    return std::bit_cast<float>(static_cast<uint32_t>(raw(idx)));
  }
  return std::bit_cast<double>(raw(idx));
}

bool Value::setI(int idx, int64_t v) {
  if (isFloat()) {
    setF(idx, static_cast<double>(v));
    return false;
  }
  bool wrapped = false;
  int64_t out;
  if (isUnsignedInt(type_)) {
    uint64_t u = wrapToUint(type_, static_cast<uint64_t>(v), &wrapped);
    // Also flag negative inputs stored into unsigned types.
    if (v < 0) wrapped = true;
    out = static_cast<int64_t>(u);
  } else {
    out = wrapToInt(type_, v, &wrapped);
  }
  setRaw(idx, static_cast<uint64_t>(out));
  return wrapped;
}

bool Value::setF(int idx, double v) {
  if (type_ == DataType::F32) {
    setRaw(idx, std::bit_cast<uint32_t>(static_cast<float>(v)));
    return false;
  }
  if (type_ == DataType::F64) {
    setRaw(idx, std::bit_cast<uint64_t>(v));
    return false;
  }
  return setI(idx, static_cast<int64_t>(v));
}

double Value::asDouble(int idx) const {
  if (isFloat()) return f(idx);
  if (isUnsignedInt(type_)) {
    return static_cast<double>(static_cast<uint64_t>(raw(idx)));
  }
  return static_cast<double>(i(idx));
}

int64_t Value::asInt(int idx) const {
  if (isFloat()) return f2i(f(idx));
  return i(idx);
}

bool Value::asBool(int idx) const {
  if (isFloat()) return f(idx) != 0.0;
  return raw(idx) != 0;
}

Value::StoreFlags Value::store(int idx, double v) {
  StoreFlags flags;
  if (type_ == DataType::F64) {
    setF(idx, v);
    return flags;
  }
  if (type_ == DataType::F32) {
    float narrowed = static_cast<float>(v);
    if (static_cast<double>(narrowed) != v && std::isfinite(v)) {
      flags.precisionLoss = true;
    }
    setRaw(idx, std::bit_cast<uint32_t>(narrowed));
    return flags;
  }
  // Float -> integer: round to nearest (Simulink default for conversion),
  // then wrap into the destination width. One definition shared with the
  // typed engines and the generated runtime.
  RealStoreResult r = storeDoubleAsInt(type_, v);
  setRaw(idx, static_cast<uint64_t>(r.value));
  flags.wrapped = r.wrapped;
  flags.precisionLoss = flags.precisionLoss || r.precisionLoss;
  return flags;
}

Value::StoreFlags Value::convertFrom(const Value& src) {
  StoreFlags acc;
  int n = std::min(width(), src.width());
  for (int k = 0; k < n; ++k) {
    StoreFlags f;
    if (src.isFloat()) {
      f = store(k, src.f(k));
    } else if (isFloat()) {
      // int -> float: flag precision loss when the value does not
      // round-trip (mirrors the generated conversion template).
      double d = src.asDouble(k);
      setF(k, d);
      if (this->f(k) != d) {
        f.precisionLoss = true;
      } else if (isUnsignedInt(src.type())) {
        if (static_cast<uint64_t>(static_cast<long double>(d)) !=
            static_cast<uint64_t>(src.i(k))) {
          f.precisionLoss = true;
        }
      } else if (static_cast<int64_t>(d) != src.i(k)) {
        f.precisionLoss = true;
      }
    } else {
      f.wrapped = setI(k, src.i(k));
    }
    acc.wrapped = acc.wrapped || f.wrapped;
    acc.precisionLoss = acc.precisionLoss || f.precisionLoss;
  }
  return acc;
}

bool Value::operator==(const Value& other) const {
  if (type_ != other.type_ || width_ != other.width_) return false;
  const uint64_t* a = data();
  const uint64_t* b = other.data();
  for (int k = 0; k < width_; ++k) {
    if (a[k] != b[k]) return false;
  }
  return true;
}

std::string Value::toString() const {
  std::ostringstream os;
  os << dataTypeName(type_) << '[';
  for (int k = 0; k < width(); ++k) {
    if (k > 0) os << ' ';
    if (isFloat()) {
      os << f(k);
    } else if (isUnsignedInt(type_)) {
      os << static_cast<uint64_t>(raw(k));
    } else {
      os << i(k);
    }
  }
  os << ']';
  return os.str();
}

}  // namespace accmos
