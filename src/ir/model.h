// Structural model IR: actors, parameters, systems (subsystem nesting) and
// lines (signal relationships).
//
// Mirrors the two-part layout of a Simulink model file the paper describes
// in §3.1: actors carry only their own information (name, type, operator,
// port counts, parameters); lines separately record the data-flow
// relationships between ports.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "ir/datatype.h"

namespace accmos {

class System;

// A parse/build-time error in a model (unknown type, bad wiring, ...).
class ModelError : public std::runtime_error {
 public:
  explicit ModelError(const std::string& what) : std::runtime_error(what) {}
};

// String-keyed actor parameters with typed getters. Simulink stores block
// parameters as strings; we keep that representation and parse on demand.
class ParamMap {
 public:
  void set(const std::string& key, std::string value);
  void setDouble(const std::string& key, double value);
  void setInt(const std::string& key, int64_t value);

  bool has(const std::string& key) const;
  std::string getString(const std::string& key,
                        const std::string& def = "") const;
  double getDouble(const std::string& key, double def = 0.0) const;
  int64_t getInt(const std::string& key, int64_t def = 0) const;
  bool getBool(const std::string& key, bool def = false) const;
  // Comma/space separated list of doubles, e.g. lookup table data.
  std::vector<double> getDoubleList(const std::string& key) const;

  const std::map<std::string, std::string>& raw() const { return map_; }

 private:
  std::map<std::string, std::string> map_;
};

// One block instance. Subsystem-type actors own a nested System.
class Actor {
 public:
  Actor(std::string name, std::string type)
      : name_(std::move(name)), type_(std::move(type)) {}

  const std::string& name() const { return name_; }
  const std::string& type() const { return type_; }

  ParamMap& params() { return params_; }
  const ParamMap& params() const { return params_; }

  // Declared output data type (the type this actor produces). Defaults to
  // f64, Simulink's default signal type.
  DataType dtype() const;
  void setDtype(DataType t);

  // Declared signal width (vector length) of the outputs.
  int width() const;
  void setWidth(int w);

  // Nested system for Subsystem / EnabledSubsystem actors.
  System* subsystem() { return subsystem_.get(); }
  const System* subsystem() const { return subsystem_.get(); }
  System& makeSubsystem();
  bool isSubsystem() const { return subsystem_ != nullptr; }

 private:
  std::string name_;
  std::string type_;
  ParamMap params_;
  std::unique_ptr<System> subsystem_;
};

// A connection from one actor's output port to another actor's input port.
// Ports are 1-based, matching Simulink's numbering and the model file format.
struct Line {
  std::string fromActor;
  int fromPort = 1;
  std::string toActor;
  int toPort = 1;
};

// A flat container of actors and lines; subsystems nest further Systems.
class System {
 public:
  explicit System(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // Adds an actor; name must be unique within this system.
  Actor& addActor(const std::string& name, const std::string& type);
  Actor* findActor(const std::string& name);
  const Actor* findActor(const std::string& name) const;

  void connect(const std::string& fromActor, int fromPort,
               const std::string& toActor, int toPort);
  // Convenience: output port 1 -> input port `toPort`.
  void connect(const std::string& fromActor, const std::string& toActor,
               int toPort = 1);

  const std::vector<std::unique_ptr<Actor>>& actors() const { return actors_; }
  const std::vector<Line>& lines() const { return lines_; }

 private:
  std::string name_;
  std::vector<std::unique_ptr<Actor>> actors_;
  std::vector<Line> lines_;
};

class Model {
 public:
  explicit Model(std::string name)
      : name_(std::move(name)), root_(std::make_unique<System>("root")) {}

  const std::string& name() const { return name_; }
  System& root() { return *root_; }
  const System& root() const { return *root_; }

  // Total actor count including all nested subsystems (subsystem actors
  // themselves are counted, matching Table 1's #Actor accounting).
  int countActors() const;
  // Total number of subsystem actors at any depth.
  int countSubsystems() const;

 private:
  static void countIn(const System& sys, int* actors, int* subsystems);

  std::string name_;
  std::unique_ptr<System> root_;
};

}  // namespace accmos
