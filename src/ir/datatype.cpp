#include "ir/datatype.h"

#include <array>

namespace accmos {
namespace {

struct TypeInfo {
  DataType type;
  std::string_view name;
  std::string_view cpp;
  int size;
  bool isFloat;
  bool isSigned;  // meaningful for integers only
};

constexpr std::array<TypeInfo, 11> kInfo = {{
    {DataType::Bool, "bool", "bool", 1, false, false},
    {DataType::I8, "i8", "int8_t", 1, false, true},
    {DataType::I16, "i16", "int16_t", 2, false, true},
    {DataType::I32, "i32", "int32_t", 4, false, true},
    {DataType::I64, "i64", "int64_t", 8, false, true},
    {DataType::U8, "u8", "uint8_t", 1, false, false},
    {DataType::U16, "u16", "uint16_t", 2, false, false},
    {DataType::U32, "u32", "uint32_t", 4, false, false},
    {DataType::U64, "u64", "uint64_t", 8, false, false},
    {DataType::F32, "f32", "float", 4, true, true},
    {DataType::F64, "f64", "double", 8, true, true},
}};

const TypeInfo& info(DataType t) { return kInfo[static_cast<size_t>(t)]; }

}  // namespace

std::string_view dataTypeName(DataType t) { return info(t).name; }

std::optional<DataType> dataTypeFromName(std::string_view name) {
  for (const auto& ti : kInfo) {
    if (ti.name == name) return ti.type;
  }
  // Accept Simulink-style spellings too.
  if (name == "double") return DataType::F64;
  if (name == "single" || name == "float") return DataType::F32;
  if (name == "boolean") return DataType::Bool;
  if (name == "int8") return DataType::I8;
  if (name == "int16") return DataType::I16;
  if (name == "int32") return DataType::I32;
  if (name == "int64") return DataType::I64;
  if (name == "uint8") return DataType::U8;
  if (name == "uint16") return DataType::U16;
  if (name == "uint32") return DataType::U32;
  if (name == "uint64") return DataType::U64;
  return std::nullopt;
}

std::string_view dataTypeCpp(DataType t) { return info(t).cpp; }

int dataTypeSize(DataType t) { return info(t).size; }

bool isFloatType(DataType t) { return info(t).isFloat; }

bool isIntType(DataType t) { return !info(t).isFloat && t != DataType::Bool; }

bool isSignedInt(DataType t) { return isIntType(t) && info(t).isSigned; }

bool isUnsignedInt(DataType t) { return isIntType(t) && !info(t).isSigned; }

int dataTypeBits(DataType t) {
  if (t == DataType::Bool) return 1;
  return dataTypeSize(t) * 8;
}

int64_t intTypeMin(DataType t) {
  switch (t) {
    case DataType::I8: return std::numeric_limits<int8_t>::min();
    case DataType::I16: return std::numeric_limits<int16_t>::min();
    case DataType::I32: return std::numeric_limits<int32_t>::min();
    case DataType::I64: return std::numeric_limits<int64_t>::min();
    default: return 0;  // Bool and unsigned types
  }
}

int64_t intTypeMax(DataType t) {
  switch (t) {
    case DataType::Bool: return 1;
    case DataType::I8: return std::numeric_limits<int8_t>::max();
    case DataType::I16: return std::numeric_limits<int16_t>::max();
    case DataType::I32: return std::numeric_limits<int32_t>::max();
    case DataType::I64: return std::numeric_limits<int64_t>::max();
    case DataType::U8: return std::numeric_limits<uint8_t>::max();
    case DataType::U16: return std::numeric_limits<uint16_t>::max();
    case DataType::U32: return std::numeric_limits<uint32_t>::max();
    case DataType::U64: return std::numeric_limits<int64_t>::max();  // clamp
    default: return 0;
  }
}

uint64_t uintTypeMax(DataType t) {
  switch (t) {
    case DataType::Bool: return 1;
    case DataType::U8: return std::numeric_limits<uint8_t>::max();
    case DataType::U16: return std::numeric_limits<uint16_t>::max();
    case DataType::U32: return std::numeric_limits<uint32_t>::max();
    case DataType::U64: return std::numeric_limits<uint64_t>::max();
    default: return static_cast<uint64_t>(intTypeMax(t));
  }
}

int64_t wrapToInt(DataType t, int64_t wide, bool* wrapped) {
  int64_t out = wide;
  switch (t) {
    case DataType::Bool:
      out = wide != 0 ? 1 : 0;
      break;
    case DataType::I8:
      out = static_cast<int8_t>(static_cast<uint64_t>(wide));
      break;
    case DataType::I16:
      out = static_cast<int16_t>(static_cast<uint64_t>(wide));
      break;
    case DataType::I32:
      out = static_cast<int32_t>(static_cast<uint64_t>(wide));
      break;
    case DataType::I64:
      out = wide;
      break;
    case DataType::U8:
      out = static_cast<uint8_t>(static_cast<uint64_t>(wide));
      break;
    case DataType::U16:
      out = static_cast<uint16_t>(static_cast<uint64_t>(wide));
      break;
    case DataType::U32:
      out = static_cast<uint32_t>(static_cast<uint64_t>(wide));
      break;
    case DataType::U64:
      out = wide;  // stored as the two's-complement bit pattern
      break;
    default:
      break;
  }
  if (wrapped != nullptr) *wrapped = (out != wide) && t != DataType::U64;
  return out;
}

uint64_t wrapToUint(DataType t, uint64_t wide, bool* wrapped) {
  uint64_t out = wide & (dataTypeBits(t) >= 64
                             ? ~uint64_t{0}
                             : ((uint64_t{1} << dataTypeBits(t)) - 1));
  if (t == DataType::Bool) out = wide != 0 ? 1 : 0;
  if (wrapped != nullptr) *wrapped = out != wide;
  return out;
}

bool isDowncast(DataType from, DataType to) {
  if (from == to) return false;
  if (isFloatType(from) && !isFloatType(to)) return true;
  if (isFloatType(from) && isFloatType(to)) {
    return dataTypeSize(to) < dataTypeSize(from);
  }
  if (isFloatType(to)) return false;  // int -> float handled by precision
  // integer/bool -> integer/bool: smaller representable range is a downcast.
  if (intTypeMax(to) < intTypeMax(from)) return true;
  if (intTypeMin(to) > intTypeMin(from)) return true;
  return false;
}

bool losesPrecision(DataType from, DataType to) {
  if (from == to) return false;
  if (from == DataType::F64 && to == DataType::F32) return true;
  if (isIntType(from) && isFloatType(to)) {
    // float has 24 mantissa bits, double 53.
    int mantissa = to == DataType::F32 ? 24 : 53;
    return dataTypeBits(from) > mantissa;
  }
  if (isFloatType(from) && !isFloatType(to)) return true;
  return false;
}

}  // namespace accmos
