// Boxed runtime value used by the interpreting engine (the SSE stand-in).
//
// A Value is a typed vector of scalars. Storage is a uniform array of 64-bit
// slots decoded through the runtime DataType — exactly the kind of boxed
// representation an interpretive engine pays for on every access, which is
// the overhead AccMoS's generated code eliminates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/datatype.h"

namespace accmos {

class Value {
 public:
  Value() : Value(DataType::F64, 1) {}
  Value(DataType type, int width);

  static Value scalarF(DataType type, double v);
  static Value scalarI(DataType type, int64_t v);
  static Value scalarBool(bool v);

  DataType type() const { return type_; }
  int width() const { return width_; }
  bool isFloat() const { return isFloatType(type_); }

  void resize(DataType type, int width);

  // Raw typed element access. i() is valid for integer/bool values and
  // returns the sign-extended element; f() is valid for float values.
  int64_t i(int idx) const;
  double f(int idx) const;

  // Stores a scalar into element idx, wrapping/rounding to this Value's
  // type. Returns true when the stored value differs from the input
  // (wrap-on-overflow for integers, out-of-range for bool).
  bool setI(int idx, int64_t v);
  bool setF(int idx, double v);

  // Type-erased reads used by generic actor code.
  double asDouble(int idx) const;   // any type, widened to double
  int64_t asInt(int idx) const;     // floats truncate toward zero
  bool asBool(int idx) const;       // nonzero test

  // Stores `v` (a double) into element idx converting to this type with
  // Simulink-style round-to-nearest for float->int. Sets flags for the
  // diagnosis machinery.
  struct StoreFlags {
    bool wrapped = false;        // integer overflow wrapped
    bool precisionLoss = false;  // fractional part dropped / f64->f32
  };
  StoreFlags store(int idx, double v);

  // Element-wise conversion of src into this Value's type/width.
  StoreFlags convertFrom(const Value& src);

  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  std::string toString() const;

 private:
  // Small-buffer storage: widths up to kInline — the common case, scalar
  // and narrow signals — live inline with no heap allocation. That matters
  // because Values are constructed per signal per step in the interpreter
  // and per outport per run in the batched result decoder. Wider values
  // spill into heap_. The element pointer is computed from width_, never
  // stored, so copy and move stay defaulted.
  static constexpr int kInline = 2;
  uint64_t* data() { return width_ <= kInline ? inline_ : heap_.data(); }
  const uint64_t* data() const {
    return width_ <= kInline ? inline_ : heap_.data();
  }
  uint64_t raw(int idx) const { return data()[idx]; }
  void setRaw(int idx, uint64_t v) { data()[idx] = v; }

  DataType type_;
  int width_ = 1;
  uint64_t inline_[kInline] = {0, 0};
  std::vector<uint64_t> heap_;
};

}  // namespace accmos
