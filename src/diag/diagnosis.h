// Calculation diagnosis (paper §3.2.B): the error classes SSE enables by
// default, generated per actor from a diagnostic template library, plus the
// runtime sink that aggregates triggered events.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "graph/flat_model.h"

namespace accmos {

enum class DiagKind : uint8_t {
  WrapOnOverflow,      // integer result wrapped (paper Fig. 4 line 2)
  SaturateOnOverflow,  // saturating arithmetic clamped an overflow
  DivisionByZero,      // Product '/' or Math mod/rem with zero divisor
  Downcast,         // narrower output than inputs (paper Fig. 4 line 4)
  PrecisionLoss,    // fractional part / mantissa bits silently dropped
  OutOfBounds,      // Selector / IndexVector / lookup index outside range
  NanInf,           // floating computation produced NaN or infinity
  AssertionFailed,  // Assertion actor input was false
  Custom,           // user-defined signal diagnosis (§3.2.B)
};

inline constexpr DiagKind kAllDiagKinds[] = {
    DiagKind::WrapOnOverflow, DiagKind::SaturateOnOverflow,
    DiagKind::DivisionByZero, DiagKind::Downcast,
    DiagKind::PrecisionLoss,  DiagKind::OutOfBounds,
    DiagKind::NanInf,         DiagKind::AssertionFailed,
    DiagKind::Custom,
};

// Number of diagnostic kinds — the row width of the per-actor diagnostic
// tables in generated code and in the binary result ABI.
inline constexpr int kNumDiagKinds =
    static_cast<int>(sizeof(kAllDiagKinds) / sizeof(kAllDiagKinds[0]));

std::string_view diagKindName(DiagKind k);
std::optional<DiagKind> diagKindFromName(std::string_view name);

// Which checks apply to which actor — the instrumentation pass consults
// this (Algorithm 1's diagnoseList) and the codegen emits one diagnostic
// function per (actor, applicable kinds).
class DiagnosisPlan {
 public:
  DiagnosisPlan() = default;

  static DiagnosisPlan build(
      const FlatModel& fm,
      const std::function<std::vector<DiagKind>(const FlatActor&)>& traits);

  const std::vector<DiagKind>& kindsFor(int actorId) const {
    return perActor_[static_cast<size_t>(actorId)];
  }
  bool enabled(int actorId, DiagKind kind) const;

  // Total number of (actor, kind) diagnostic points in the plan.
  int totalChecks() const { return totalChecks_; }

 private:
  std::vector<std::vector<DiagKind>> perActor_;
  int totalChecks_ = 0;
};

// One aggregated diagnostic result line.
struct DiagRecord {
  int actorId = -1;
  std::string actorPath;
  DiagKind kind = DiagKind::Custom;
  std::string message;      // extra detail (custom diagnosis name, ...)
  uint64_t firstStep = 0;   // simulation step of the first occurrence
  uint64_t count = 0;       // total occurrences
};

// Aggregating sink: events are merged per (actor, kind, message) so a
// 50-million-step run with a hot diagnostic stays O(1) in memory.
class DiagnosticSink {
 public:
  void report(int actorId, const std::string& actorPath, DiagKind kind,
              uint64_t step, const std::string& message = "");

  bool any() const { return !records_.empty(); }
  size_t eventKinds() const { return records_.size(); }
  uint64_t totalEvents() const;

  // Earliest step at which any diagnostic (optionally of a given kind /
  // actor path) fired; nullopt when none did.
  std::optional<uint64_t> firstEventStep() const;
  std::optional<uint64_t> firstEventStep(DiagKind kind) const;
  std::optional<uint64_t> firstEventStepFor(const std::string& path) const;

  // Records sorted by firstStep.
  std::vector<DiagRecord> sorted() const;

  void clear();

 private:
  struct Key {
    int actorId;
    DiagKind kind;
    std::string message;
    bool operator<(const Key& o) const {
      return std::tie(actorId, kind, message) <
             std::tie(o.actorId, o.kind, o.message);
    }
  };
  std::map<Key, DiagRecord> records_;
};

}  // namespace accmos
