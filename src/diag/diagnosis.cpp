#include "diag/diagnosis.h"

#include <algorithm>

namespace accmos {

std::string_view diagKindName(DiagKind k) {
  switch (k) {
    case DiagKind::WrapOnOverflow: return "wrap_on_overflow";
    case DiagKind::SaturateOnOverflow: return "saturate_on_overflow";
    case DiagKind::DivisionByZero: return "division_by_zero";
    case DiagKind::Downcast: return "downcast";
    case DiagKind::PrecisionLoss: return "precision_loss";
    case DiagKind::OutOfBounds: return "out_of_bounds";
    case DiagKind::NanInf: return "nan_inf";
    case DiagKind::AssertionFailed: return "assertion_failed";
    case DiagKind::Custom: return "custom";
  }
  return "?";
}

std::optional<DiagKind> diagKindFromName(std::string_view name) {
  for (DiagKind k : kAllDiagKinds) {
    if (diagKindName(k) == name) return k;
  }
  return std::nullopt;
}

DiagnosisPlan DiagnosisPlan::build(
    const FlatModel& fm,
    const std::function<std::vector<DiagKind>(const FlatActor&)>& traits) {
  DiagnosisPlan plan;
  plan.perActor_.resize(fm.actors.size());
  for (const auto& fa : fm.actors) {
    auto kinds = traits(fa);
    plan.totalChecks_ += static_cast<int>(kinds.size());
    plan.perActor_[static_cast<size_t>(fa.id)] = std::move(kinds);
  }
  return plan;
}

bool DiagnosisPlan::enabled(int actorId, DiagKind kind) const {
  const auto& kinds = kindsFor(actorId);
  return std::find(kinds.begin(), kinds.end(), kind) != kinds.end();
}

void DiagnosticSink::report(int actorId, const std::string& actorPath,
                            DiagKind kind, uint64_t step,
                            const std::string& message) {
  Key key{actorId, kind, message};
  auto it = records_.find(key);
  if (it == records_.end()) {
    DiagRecord rec;
    rec.actorId = actorId;
    rec.actorPath = actorPath;
    rec.kind = kind;
    rec.message = message;
    rec.firstStep = step;
    rec.count = 1;
    records_.emplace(std::move(key), std::move(rec));
    return;
  }
  it->second.count += 1;
  it->second.firstStep = std::min(it->second.firstStep, step);
}

uint64_t DiagnosticSink::totalEvents() const {
  uint64_t total = 0;
  for (const auto& [k, r] : records_) total += r.count;
  return total;
}

std::optional<uint64_t> DiagnosticSink::firstEventStep() const {
  std::optional<uint64_t> first;
  for (const auto& [k, r] : records_) {
    if (!first || r.firstStep < *first) first = r.firstStep;
  }
  return first;
}

std::optional<uint64_t> DiagnosticSink::firstEventStep(DiagKind kind) const {
  std::optional<uint64_t> first;
  for (const auto& [k, r] : records_) {
    if (r.kind != kind) continue;
    if (!first || r.firstStep < *first) first = r.firstStep;
  }
  return first;
}

std::optional<uint64_t> DiagnosticSink::firstEventStepFor(
    const std::string& path) const {
  std::optional<uint64_t> first;
  for (const auto& [k, r] : records_) {
    if (r.actorPath != path) continue;
    if (!first || r.firstStep < *first) first = r.firstStep;
  }
  return first;
}

std::vector<DiagRecord> DiagnosticSink::sorted() const {
  std::vector<DiagRecord> out;
  out.reserve(records_.size());
  for (const auto& [k, r] : records_) out.push_back(r);
  std::sort(out.begin(), out.end(), [](const DiagRecord& a, const DiagRecord& b) {
    return std::tie(a.firstStep, a.actorPath) <
           std::tie(b.firstStep, b.actorPath);
  });
  return out;
}

void DiagnosticSink::clear() { records_.clear(); }

}  // namespace accmos
