#include "diag/custom.h"

namespace accmos {

CustomDiagnostic rangeDiagnostic(std::string actorPath, std::string name,
                                 double minValue, double maxValue) {
  CustomDiagnostic d;
  d.actorPath = std::move(actorPath);
  d.name = std::move(name);
  d.kind = CustomDiagnostic::Kind::Range;
  d.minValue = minValue;
  d.maxValue = maxValue;
  return d;
}

CustomDiagnostic suddenChangeDiagnostic(std::string actorPath,
                                        std::string name, double maxDelta) {
  CustomDiagnostic d;
  d.actorPath = std::move(actorPath);
  d.name = std::move(name);
  d.kind = CustomDiagnostic::Kind::SuddenChange;
  d.maxDelta = maxDelta;
  return d;
}

}  // namespace accmos
