// Custom signal diagnosis (paper §3.2.B): user-supplied checks on the
// output of a chosen actor — "detecting sudden signal changes, monitoring
// the output value of a specified actor, etc."
//
// A custom diagnostic is data-driven (Range / SuddenChange) so it can be
// both interpreted and compiled into generated code, or fully custom:
// a C++ callback for the in-process engines plus an equivalent C++ source
// snippet woven into the generated simulation code.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace accmos {

struct CustomDiagnostic {
  enum class Kind {
    Range,         // fire when output leaves [minValue, maxValue]
    SuddenChange,  // fire when |out - prev| > maxDelta between steps
    Expression,    // user callback / C++ snippet
  };

  std::string actorPath;  // flat path of the monitored actor
  std::string name;       // label shown in the diagnostic record
  Kind kind = Kind::Range;

  double minValue = 0.0;  // Range
  double maxValue = 0.0;
  double maxDelta = 0.0;  // SuddenChange

  // Expression (in-process engines): return true to fire. `cur` is the
  // current output element 0 as double, `prev` the previous step's value
  // (0.0 on the first step), `step` the step index.
  std::function<bool(double cur, double prev, uint64_t step)> callback;

  // Expression (generated code): a C++ boolean expression over the
  // variables `cur`, `prev` (double) and `step` (uint64_t). When empty the
  // generated code skips this check.
  std::string cppCondition;
};

// Convenience constructors.
CustomDiagnostic rangeDiagnostic(std::string actorPath, std::string name,
                                 double minValue, double maxValue);
CustomDiagnostic suddenChangeDiagnostic(std::string actorPath,
                                        std::string name, double maxDelta);

}  // namespace accmos
