// Shared lookup-table semantics used by the Lookup1D/Lookup2D actor specs
// and the typed fast-mode engines; the generated runtime's accmos_lut1/2
// mirror these.
#pragma once

#include <vector>

namespace accmos {

// 1-D clipping lookup. outcome: 0 below range, 1 interior, 2 above.
double accmosLut1(const std::vector<double>& xs, const std::vector<double>& ys,
                  double v, bool nearest, int& outcome);

// Clamping bilinear lookup; z is row-major over x (z[ix*ny+iy]).
double accmosLut2(const std::vector<double>& xs, const std::vector<double>& ys,
                  const std::vector<double>& zs, double u, double v,
                  bool& clipped);

}  // namespace accmos
