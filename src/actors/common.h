// Shared helpers for the actor template library implementations.
#pragma once

#include <cmath>
#include <string>
#include <vector>

#include "actors/spec.h"

namespace accmos {

// ---- interpreter-side element access (scalar inputs broadcast) -----------

inline double inD(EvalContext& ctx, int port, int elem) {
  const Value& v = ctx.in(port);
  return v.asDouble(v.width() == 1 ? 0 : elem);
}

inline int64_t inI(EvalContext& ctx, int port, int elem) {
  const Value& v = ctx.in(port);
  return v.asInt(v.width() == 1 ? 0 : elem);
}

inline bool inB(EvalContext& ctx, int port, int elem) {
  const Value& v = ctx.in(port);
  return v.asBool(v.width() == 1 ? 0 : elem);
}

// ---- flag accumulation across vector elements -----------------------------

struct ArithFlags {
  bool wrap = false;
  bool sat = false;  // saturating arithmetic clamped
  bool prec = false;
  bool nan = false;
};

// Simulink's per-block "saturate on overflow" arithmetic option; supported
// by Sum, Product, DataTypeConversion and DiscreteIntegrator.
inline bool saturating(const FlatActor& fa) {
  return fa.src->params().getBool("saturate", false);
}

// Stores `v` into output element with the real-domain conversion rules.
inline void storeReal(EvalContext& ctx, int port, int elem, double v,
                      ArithFlags& fl) {
  Value& out = ctx.out(port);
  if (!std::isfinite(v)) fl.nan = true;
  auto sf = out.store(elem, v);
  fl.wrap = fl.wrap || sf.wrapped;
  fl.prec = fl.prec || sf.precisionLoss;
}

// Stores a wide integer result with wrap detection.
inline void storeInt(EvalContext& ctx, int port, int elem, Int128 acc,
                     ArithFlags& fl) {
  IntResult r = wrapStore(ctx.out(port).type(), acc);
  ctx.out(port).setI(elem, r.value);
  fl.wrap = fl.wrap || r.wrapped;
}

// Reports the accumulated arithmetic diagnostics for the current actor;
// one event per (actor, kind) per step, matching the generated code. The
// downcast check is static (paper Fig. 4 line 4) and fires on every
// execution when the plan includes it.
inline void reportArith(EvalContext& ctx, const ArithFlags& fl) {
  if (fl.wrap) ctx.reportDiag(DiagKind::WrapOnOverflow);
  if (fl.sat) ctx.reportDiag(DiagKind::SaturateOnOverflow);
  if (fl.prec) ctx.reportDiag(DiagKind::PrecisionLoss);
  if (fl.nan) ctx.reportDiag(DiagKind::NanInf);
  ctx.reportDiag(DiagKind::Downcast);
}

// The static downcast check of paper Fig. 4 (sizeof(out) < sizeof(in)):
// fires on every execution when the plan includes it.
inline void reportDowncast(EvalContext& ctx) {
  ctx.reportDiag(DiagKind::Downcast);
}

// ---- diagnosis trait helpers ----------------------------------------------

// The standard arithmetic diagnosis set for a calculation actor: wrap for
// integer outputs, NaN/Inf for float outputs, downcast and precision loss
// from the input/output type relationship (paper §3.2.B: "the type and
// number of diagnoses vary depending on the actor type and its operator").
std::vector<DiagKind> arithDiags(const FlatModel& fm, const FlatActor& fa);

// True when the flattened actor computes in the real (double) domain.
inline bool realDomain(const FlatModel& fm, const FlatActor& fa) {
  return isFloatType(fm.signal(fa.outputs[0]).type);
}

// ---- codegen-side helpers --------------------------------------------------

// Declares one int flag variable per enabled diagnostic kind; returns the
// variable names (empty string when that kind is not in the plan). Order:
// wrap, precision, nan.
struct EmitFlags {
  std::string wrap;
  std::string sat;
  std::string prec;
  std::string nan;

  std::vector<std::pair<DiagKind, std::string>> asDiagCall() const;
};

EmitFlags declareArithFlags(EmitContext& ctx);

// storeOutStmt variant honouring the actor's saturate-on-overflow option:
// integer outputs go through accmos_sat_<t> and flag flags.sat when `sat`.
std::string storeOutSat(EmitContext& ctx, const std::string& idx,
                        const std::string& expr, const EmitFlags& flags,
                        bool sat);

// Emits `for (int i = 0; i < width; ++i) {`.
void beginElemLoop(EmitContext& ctx, int width);
void endElemLoop(EmitContext& ctx);

// Emits the NaN/Inf check on a double expression into flags.nan (no-op when
// the NaN diagnostic is off or the output is not float).
std::string nanCheckStmt(const EmitFlags& flags, const std::string& expr);

// Finishes an actor's emit: diagnostic function call + downcast flag.
void finishEmit(EmitContext& ctx, const EmitFlags& flags);

// ---- misc -------------------------------------------------------------------

// Parses a Sum/Product ops string ("++-", "**/"); throws on bad characters.
std::vector<char> parseOps(const Actor& a, const std::string& def,
                           const std::string& allowed);

// Formats a double as a round-trippable C++ literal ("1.5", "1e30", ...).
std::string fmtD(double v);

// Formats an int64 literal with the LL suffix.
std::string fmtI(int64_t v);

}  // namespace accmos
