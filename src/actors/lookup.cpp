// Lookup tables: Lookup1D (linear interpolation / nearest) and Lookup2D
// (bilinear). Inputs outside the breakpoint range clip and raise the
// array-out-of-bounds diagnostic (§3.2.B).
#include <cmath>
#include <sstream>

#include "actors/common.h"
#include "actors/lut.h"

namespace accmos {
namespace {

std::string tableLiteral(const std::vector<double>& v) {
  std::ostringstream os;
  os << "{";
  for (size_t k = 0; k < v.size(); ++k) {
    if (k > 0) os << ", ";
    os << fmtD(v[k]);
  }
  os << "}";
  return os.str();
}

}  // namespace

// Shared 1-D lookup semantic; the generated runtime carries an identical
// accmos_lut1() implementation.
double accmosLut1(const std::vector<double>& xs, const std::vector<double>& ys,
                  double v, bool nearest, int& outcome) {
  int n = static_cast<int>(xs.size());
  if (v <= xs[0]) {
    outcome = v < xs[0] ? 0 : 1;
    return ys[0];
  }
  if (v >= xs[static_cast<size_t>(n - 1)]) {
    outcome = v > xs[static_cast<size_t>(n - 1)] ? 2 : 1;
    return ys[static_cast<size_t>(n - 1)];
  }
  outcome = 1;
  int k = 0;
  while (k + 2 < n && v >= xs[static_cast<size_t>(k + 1)]) ++k;
  double x0 = xs[static_cast<size_t>(k)];
  double x1 = xs[static_cast<size_t>(k + 1)];
  double y0 = ys[static_cast<size_t>(k)];
  double y1 = ys[static_cast<size_t>(k + 1)];
  if (nearest) return (v - x0 <= x1 - v) ? y0 : y1;
  return y0 + (y1 - y0) * (v - x0) / (x1 - x0);
}

double accmosLut2(const std::vector<double>& xs, const std::vector<double>& ys,
                  const std::vector<double>& zs, double u, double v,
                  bool& clipped) {
  int nx = static_cast<int>(xs.size());
  int ny = static_cast<int>(ys.size());
  if (u < xs[0]) { u = xs[0]; clipped = true; }
  if (u > xs[static_cast<size_t>(nx - 1)]) { u = xs[static_cast<size_t>(nx - 1)]; clipped = true; }
  if (v < ys[0]) { v = ys[0]; clipped = true; }
  if (v > ys[static_cast<size_t>(ny - 1)]) { v = ys[static_cast<size_t>(ny - 1)]; clipped = true; }
  int ix = 0;
  while (ix + 2 < nx && u >= xs[static_cast<size_t>(ix + 1)]) ++ix;
  int iy = 0;
  while (iy + 2 < ny && v >= ys[static_cast<size_t>(iy + 1)]) ++iy;
  double x0 = xs[static_cast<size_t>(ix)], x1 = xs[static_cast<size_t>(ix + 1)];
  double y0 = ys[static_cast<size_t>(iy)], y1 = ys[static_cast<size_t>(iy + 1)];
  double tx = (u - x0) / (x1 - x0);
  double ty = (v - y0) / (y1 - y0);
  double z00 = zs[static_cast<size_t>(ix * ny + iy)];
  double z01 = zs[static_cast<size_t>(ix * ny + iy + 1)];
  double z10 = zs[static_cast<size_t>((ix + 1) * ny + iy)];
  double z11 = zs[static_cast<size_t>((ix + 1) * ny + iy + 1)];
  double a = z00 + (z10 - z00) * tx;
  double b = z01 + (z11 - z01) * tx;
  return a + (b - a) * ty;
}

namespace {

class Lookup1DSpec : public ActorSpec {
 public:
  std::string type() const override { return "Lookup1D"; }

  ActorCatalog::PortLayout ports(const Actor&) const override {
    return {1, 1};
  }

  // Outcomes: clipped below / interior / clipped above.
  int decisionOutcomes(const Actor&) const override { return 3; }

  std::vector<DiagKind> diagnostics(const FlatModel& fm,
                                    const FlatActor& fa) const override {
    auto kinds = arithDiags(fm, fa);
    kinds.push_back(DiagKind::OutOfBounds);
    return kinds;
  }

  void eval(EvalContext& ctx) const override {
    const Actor& a = *ctx.fa().src;
    auto xs = a.params().getDoubleList("x");
    auto ys = a.params().getDoubleList("y");
    bool nearest = a.params().getString("method", "interp") == "nearest";
    ArithFlags fl;
    bool oob = false;
    for (int i = 0; i < ctx.out().width(); ++i) {
      int outcome = 1;
      double r = accmosLut1(xs, ys, inD(ctx, 0, i), nearest, outcome);
      ctx.decision(outcome);
      oob = oob || outcome != 1;
      storeReal(ctx, 0, i, r, fl);
    }
    if (oob) ctx.reportDiag(DiagKind::OutOfBounds);
    reportArith(ctx, fl);
  }

  void emit(EmitContext& ctx) const override {
    const Actor& a = *ctx.fa().src;
    auto xs = a.params().getDoubleList("x");
    auto ys = a.params().getDoubleList("y");
    bool nearest = a.params().getString("method", "interp") == "nearest";
    std::string xt = ctx.sink().freshVar("lutx");
    std::string yt = ctx.sink().freshVar("luty");
    ctx.line("static const double " + xt + "[" + std::to_string(xs.size()) +
             "] = " + tableLiteral(xs) + ";");
    ctx.line("static const double " + yt + "[" + std::to_string(ys.size()) +
             "] = " + tableLiteral(ys) + ";");
    EmitFlags flags = declareArithFlags(ctx);
    std::string oob;
    if (ctx.sink().diagOn(DiagKind::OutOfBounds)) {
      oob = ctx.sink().freshVar("oob");
      ctx.line("int " + oob + " = 0;");
    }
    beginElemLoop(ctx, ctx.outWidth());
    std::string o = ctx.sink().freshVar("o");
    std::string r = ctx.sink().freshVar("r");
    ctx.line("int " + o + " = 1;");
    ctx.line("double " + r + " = accmos_lut1(" + xt + ", " + yt + ", " +
             std::to_string(xs.size()) + ", " +
             ctx.inElem(0, "i", DataType::F64) + ", " +
             (nearest ? "1" : "0") + ", &" + o + ");");
    ctx.line(ctx.sink().covDecisionStmt(o));
    if (!oob.empty()) ctx.line("if (" + o + " != 1) " + oob + " = 1;");
    ctx.line(ctx.storeOutStmt("i", r, flags.wrap, flags.prec));
    endElemLoop(ctx);
    auto call = flags.asDiagCall();
    if (!oob.empty()) call.emplace_back(DiagKind::OutOfBounds, oob);
    if (ctx.sink().diagOn(DiagKind::Downcast)) {
      call.emplace_back(DiagKind::Downcast, "1");
    }
    ctx.sink().diagCall(call);
  }

  void validate(const FlatModel& fm, const FlatActor& fa) const override {
    ActorSpec::validate(fm, fa);
    auto xs = fa.src->params().getDoubleList("x");
    auto ys = fa.src->params().getDoubleList("y");
    if (xs.size() < 2 || xs.size() != ys.size()) {
      throw ModelError("actor '" + fa.path +
                       "': Lookup1D needs matching x/y tables of size >= 2");
    }
    for (size_t k = 1; k < xs.size(); ++k) {
      if (xs[k] <= xs[k - 1]) {
        throw ModelError("actor '" + fa.path +
                         "': Lookup1D x table must be strictly increasing");
      }
    }
  }
};

class Lookup2DSpec : public ActorSpec {
 public:
  std::string type() const override { return "Lookup2D"; }

  // Ports: row input (x), column input (y).
  ActorCatalog::PortLayout ports(const Actor&) const override {
    return {2, 1};
  }

  int decisionOutcomes(const Actor&) const override { return 2; }

  std::vector<DiagKind> diagnostics(const FlatModel& fm,
                                    const FlatActor& fa) const override {
    auto kinds = arithDiags(fm, fa);
    kinds.push_back(DiagKind::OutOfBounds);
    return kinds;
  }

  void eval(EvalContext& ctx) const override {
    const Actor& a = *ctx.fa().src;
    auto xs = a.params().getDoubleList("x");
    auto ys = a.params().getDoubleList("y");
    auto zs = a.params().getDoubleList("z");
    double u = inD(ctx, 0, 0);
    double v = inD(ctx, 1, 0);
    bool clipped = false;
    double r = accmosLut2(xs, ys, zs, u, v, clipped);
    ctx.decision(clipped ? 0 : 1);
    if (clipped) ctx.reportDiag(DiagKind::OutOfBounds);
    ArithFlags fl;
    storeReal(ctx, 0, 0, r, fl);
    reportArith(ctx, fl);
  }

  void emit(EmitContext& ctx) const override {
    const Actor& a = *ctx.fa().src;
    auto xs = a.params().getDoubleList("x");
    auto ys = a.params().getDoubleList("y");
    auto zs = a.params().getDoubleList("z");
    std::string xt = ctx.sink().freshVar("lutx");
    std::string yt = ctx.sink().freshVar("luty");
    std::string zt = ctx.sink().freshVar("lutz");
    ctx.line("static const double " + xt + "[" + std::to_string(xs.size()) +
             "] = " + tableLiteral(xs) + ";");
    ctx.line("static const double " + yt + "[" + std::to_string(ys.size()) +
             "] = " + tableLiteral(ys) + ";");
    ctx.line("static const double " + zt + "[" + std::to_string(zs.size()) +
             "] = " + tableLiteral(zs) + ";");
    EmitFlags flags = declareArithFlags(ctx);
    std::string c = ctx.sink().freshVar("clip");
    std::string r = ctx.sink().freshVar("r");
    ctx.line("int " + c + " = 0;");
    ctx.line("double " + r + " = accmos_lut2(" + xt + ", " +
             std::to_string(xs.size()) + ", " + yt + ", " +
             std::to_string(ys.size()) + ", " + zt + ", " +
             ctx.inElem(0, "0", DataType::F64) + ", " +
             ctx.inElem(1, "0", DataType::F64) + ", &" + c + ");");
    ctx.line(ctx.sink().covDecisionStmt(c + " ? 0 : 1"));
    ctx.line(ctx.storeOutStmt("0", r, flags.wrap, flags.prec));
    auto call = flags.asDiagCall();
    if (ctx.sink().diagOn(DiagKind::OutOfBounds)) {
      call.emplace_back(DiagKind::OutOfBounds, c);
    }
    if (ctx.sink().diagOn(DiagKind::Downcast)) {
      call.emplace_back(DiagKind::Downcast, "1");
    }
    ctx.sink().diagCall(call);
  }

  void validate(const FlatModel& fm, const FlatActor& fa) const override {
    auto xs = fa.src->params().getDoubleList("x");
    auto ys = fa.src->params().getDoubleList("y");
    auto zs = fa.src->params().getDoubleList("z");
    if (xs.size() < 2 || ys.size() < 2 || zs.size() != xs.size() * ys.size()) {
      throw ModelError("actor '" + fa.path +
                       "': Lookup2D needs x,y >= 2 and z of size |x|*|y|");
    }
    if (fm.signal(fa.inputs[0]).width != 1 ||
        fm.signal(fa.inputs[1]).width != 1 ||
        fm.signal(fa.outputs[0]).width != 1) {
      throw ModelError("actor '" + fa.path + "': Lookup2D is scalar-only");
    }
  }

};

}  // namespace

void registerLookupActors(std::vector<std::unique_ptr<ActorSpec>>& out) {
  out.push_back(std::make_unique<Lookup1DSpec>());
  out.push_back(std::make_unique<Lookup2DSpec>());
}

}  // namespace accmos
