// Continuous-model support (the paper's §5 future work): a continuous-time
// integrator solved by explicit fixed-step methods — forward Euler and the
// Adams-Bashforth family (the "Adams solver" the paper proposes adopting).
//
// dy/dt = u is advanced once per simulation step with step size h:
//   euler: y += h * u[n]
//   ab2:   y += h * (3 u[n] - u[n-1]) / 2
//   ab3:   y += h * (23 u[n] - 16 u[n-1] + 5 u[n-2]) / 12
// Multistep methods self-start: the first step falls back to Euler, the
// second (for ab3) to AB2. Being explicit in past derivatives, the actor
// stays delay-class — feedback ODEs (oscillators, RC networks) need no
// algebraic-loop treatment.
//
// State layout (width w output): [ y(w) | u1(w) | u2(w) | n(1) ].
#include "actors/common.h"

namespace accmos {
namespace {

int methodOrder(const Actor& a) {
  std::string m = a.params().getString("method", "euler");
  if (m == "euler") return 1;
  if (m == "ab2") return 2;
  if (m == "ab3") return 3;
  throw ModelError("actor '" + a.name() +
                   "': unknown ContinuousIntegrator method '" + m +
                   "' (euler|ab2|ab3)");
}

class ContinuousIntegratorSpec : public ActorSpec {
 public:
  std::string type() const override { return "ContinuousIntegrator"; }

  ActorCatalog::PortLayout ports(const Actor&) const override {
    return {1, 1};
  }
  bool isDelayClass(const Actor&) const override { return true; }

  std::optional<StateSpec> state(const FlatModel& fm,
                                 const FlatActor& fa) const override {
    int w = fm.signal(fa.outputs[0]).width;
    StateSpec s;
    s.type = DataType::F64;
    s.width = 3 * w + 1;
    double init = fa.src->params().getDouble("initial", 0.0);
    s.initial.assign(static_cast<size_t>(w), init);
    s.initial.resize(static_cast<size_t>(3 * w + 1), 0.0);
    return s;
  }

  std::vector<DiagKind> diagnostics(const FlatModel& fm,
                                    const FlatActor& fa) const override {
    return arithDiags(fm, fa);
  }

  void validate(const FlatModel& fm, const FlatActor& fa) const override {
    ActorSpec::validate(fm, fa);
    if (!isFloatType(fm.signal(fa.outputs[0]).type)) {
      throw ModelError("actor '" + fa.path +
                       "': ContinuousIntegrator output must be float");
    }
    methodOrder(*fa.src);  // validates the method name
    if (fa.src->params().getDouble("h", 0.01) <= 0.0) {
      throw ModelError("actor '" + fa.path +
                       "': solver step size h must be positive");
    }
  }

  void eval(EvalContext& ctx) const override {
    Value& out = ctx.out();
    const Value& st = ctx.state();
    for (int i = 0; i < out.width(); ++i) out.setF(i, st.f(i));
  }

  void update(EvalContext& ctx) const override {
    const Actor& a = *ctx.fa().src;
    int order = methodOrder(a);
    double h = a.params().getDouble("h", 0.01);
    Value& st = ctx.state();
    int w = ctx.out().width();
    int n = static_cast<int>(st.f(3 * w));
    ArithFlags fl;
    for (int i = 0; i < w; ++i) {
      double u = inD(ctx, 0, i);
      double u1 = st.f(w + i);
      double u2 = st.f(2 * w + i);
      double dy;
      if (order == 1 || n == 0) {
        dy = h * u;
      } else if (order == 2 || n == 1) {
        dy = h * (3.0 * u - u1) / 2.0;
      } else {
        dy = h * (23.0 * u - 16.0 * u1 + 5.0 * u2) / 12.0;
      }
      double y = st.f(i) + dy;
      if (!std::isfinite(y)) fl.nan = true;
      st.setF(i, y);
      st.setF(2 * w + i, u1);
      st.setF(w + i, u);
    }
    if (n < 2) st.setF(3 * w, static_cast<double>(n + 1));
    reportArith(ctx, fl);
  }

  void emit(EmitContext& ctx) const override {
    const Actor& a = *ctx.fa().src;
    int order = methodOrder(a);
    std::string h = fmtD(a.params().getDouble("h", 0.01));
    int w = ctx.outWidth();
    std::string st = ctx.state();
    beginElemLoop(ctx, w);
    ctx.line(ctx.out() + "[i] = " + st + "[i];");
    endElemLoop(ctx);

    EmitFlags flags;
    if (ctx.sink().diagOn(DiagKind::NanInf)) {
      flags.nan = ctx.sink().freshVar("nf");
      ctx.sink().updateLinePre("int " + flags.nan + " = 0;");
    }
    std::string n = ctx.sink().freshVar("n");
    ctx.sink().updateLinePre("int " + n + " = (int)" + st + "[" +
                             std::to_string(3 * w) + "];");
    ctx.sink().updateLine("for (int i = 0; i < " + std::to_string(w) +
                          "; ++i) {");
    ctx.sink().updateLine("double _u = " + ctx.inElem(0, "i", DataType::F64) +
                          ";");
    ctx.sink().updateLine("double _u1 = " + st + "[" + std::to_string(w) +
                          " + i];");
    ctx.sink().updateLine("double _u2 = " + st + "[" + std::to_string(2 * w) +
                          " + i];");
    ctx.sink().updateLine("(void)_u1; (void)_u2;");
    std::string dy;
    if (order == 1) {
      dy = h + " * _u";
    } else if (order == 2) {
      dy = "(" + n + " == 0 ? " + h + " * _u : " + h +
           " * (3.0 * _u - _u1) / 2.0)";
    } else {
      dy = "(" + n + " == 0 ? " + h + " * _u : (" + n + " == 1 ? " + h +
           " * (3.0 * _u - _u1) / 2.0 : " + h +
           " * (23.0 * _u - 16.0 * _u1 + 5.0 * _u2) / 12.0))";
    }
    ctx.sink().updateLine("double _y = " + st + "[i] + " + dy + ";");
    if (!flags.nan.empty()) {
      ctx.sink().updateLine("if (!accmos_isfinite(_y)) " + flags.nan +
                            " = 1;");
    }
    ctx.sink().updateLine(st + "[i] = _y;");
    ctx.sink().updateLine(st + "[" + std::to_string(2 * w) + " + i] = _u1;");
    ctx.sink().updateLine(st + "[" + std::to_string(w) + " + i] = _u;");
    ctx.sink().updateLine("}");
    ctx.sink().updateLine("if (" + n + " < 2) " + st + "[" +
                          std::to_string(3 * w) + "] = (double)(" + n +
                          " + 1);");
    ctx.sink().diagCallInUpdate(flags.asDiagCall());
  }
};

}  // namespace

void registerContinuousActors(std::vector<std::unique_ptr<ActorSpec>>& out) {
  out.push_back(std::make_unique<ContinuousIntegratorSpec>());
}

}  // namespace accmos
