// Boolean and bit-level actors: RelationalOperator, LogicalOperator,
// CompareToConstant, CompareToZero, BitwiseOperator, ShiftArithmetic.
//
// LogicalOperator is the model's "combination condition" (Algorithm 1): it
// carries condition coverage (every input seen true and false), decision
// coverage (output outcomes) and masking MC/DC (an input shown to
// independently determine the output).
#include "actors/common.h"

namespace accmos {
namespace {

const char* kRelOps[] = {"==", "!=", "<", "<=", ">", ">="};

class RelationalOperatorSpec : public ActorSpec {
 public:
  std::string type() const override { return "RelationalOperator"; }

  ActorCatalog::PortLayout ports(const Actor&) const override {
    return {2, 1};
  }
  DataType outputType(const Actor&, int) const override {
    return DataType::Bool;
  }
  int decisionOutcomes(const Actor&) const override { return 2; }

  void eval(EvalContext& ctx) const override {
    std::string o = ctx.fa().src->params().getString("op", "<");
    bool real = ctx.in(0).isFloat() || ctx.in(1).isFloat();
    Value& out = ctx.out();
    for (int i = 0; i < out.width(); ++i) {
      bool r;
      if (real) {
        r = apply(o, inD(ctx, 0, i), inD(ctx, 1, i));
      } else {
        r = apply(o, inI(ctx, 0, i), inI(ctx, 1, i));
      }
      ctx.decision(r ? 0 : 1);
      out.setI(i, r ? 1 : 0);
    }
  }

  void emit(EmitContext& ctx) const override {
    std::string o = ctx.fa().src->params().getString("op", "<");
    bool real = isFloatType(ctx.inType(0)) || isFloatType(ctx.inType(1));
    DataType domain = real ? DataType::F64 : DataType::I64;
    beginElemLoop(ctx, ctx.outWidth());
    std::string r = ctx.sink().freshVar("r");
    ctx.line("int " + r + " = (" + ctx.inElem(0, "i", domain) + " " +
             cppOp(o) + " " + ctx.inElem(1, "i", domain) + ");");
    ctx.line(ctx.sink().covDecisionStmt(r + " ? 0 : 1"));
    ctx.line(ctx.out() + "[i] = (bool)" + r + ";");
    endElemLoop(ctx);
  }

  void validate(const FlatModel& fm, const FlatActor& fa) const override {
    ActorSpec::validate(fm, fa);
    checkOp(fa, fa.src->params().getString("op", "<"));
  }

  static void checkOp(const FlatActor& fa, const std::string& o) {
    for (const char* k : kRelOps) {
      if (o == k || (o == "~=" && std::string(k) == "!=")) return;
    }
    throw ModelError("actor '" + fa.path + "': unknown relational op '" + o +
                     "'");
  }

  static std::string cppOp(const std::string& o) {
    return o == "~=" ? "!=" : o;
  }

  template <typename T>
  static bool apply(const std::string& o, T a, T b) {
    if (o == "==") return a == b;
    if (o == "!=" || o == "~=") return a != b;
    if (o == "<") return a < b;
    if (o == "<=") return a <= b;
    if (o == ">") return a > b;
    return a >= b;
  }
};

class CompareBase : public ActorSpec {
 public:
  ActorCatalog::PortLayout ports(const Actor&) const override {
    return {1, 1};
  }
  DataType outputType(const Actor&, int) const override {
    return DataType::Bool;
  }
  int decisionOutcomes(const Actor&) const override { return 2; }

  void eval(EvalContext& ctx) const override {
    std::string o = ctx.fa().src->params().getString("op", ">");
    double c = constant(*ctx.fa().src);
    Value& out = ctx.out();
    for (int i = 0; i < out.width(); ++i) {
      bool r = RelationalOperatorSpec::apply(o, inD(ctx, 0, i), c);
      ctx.decision(r ? 0 : 1);
      out.setI(i, r ? 1 : 0);
    }
  }

  void emit(EmitContext& ctx) const override {
    std::string o = ctx.fa().src->params().getString("op", ">");
    beginElemLoop(ctx, ctx.outWidth());
    std::string r = ctx.sink().freshVar("r");
    ctx.line("int " + r + " = (" + ctx.inElem(0, "i", DataType::F64) + " " +
             RelationalOperatorSpec::cppOp(o) + " " +
             fmtD(constant(*ctx.fa().src)) + ");");
    ctx.line(ctx.sink().covDecisionStmt(r + " ? 0 : 1"));
    ctx.line(ctx.out() + "[i] = (bool)" + r + ";");
    endElemLoop(ctx);
  }

  void validate(const FlatModel& fm, const FlatActor& fa) const override {
    ActorSpec::validate(fm, fa);
    RelationalOperatorSpec::checkOp(fa,
                                    fa.src->params().getString("op", ">"));
  }

 protected:
  virtual double constant(const Actor& a) const = 0;
};

class CompareToConstantSpec : public CompareBase {
 public:
  std::string type() const override { return "CompareToConstant"; }

 protected:
  double constant(const Actor& a) const override {
    return a.params().getDouble("value", 0.0);
  }
};

class CompareToZeroSpec : public CompareBase {
 public:
  std::string type() const override { return "CompareToZero"; }

 protected:
  double constant(const Actor&) const override { return 0.0; }
};

class LogicalOperatorSpec : public ActorSpec {
 public:
  std::string type() const override { return "LogicalOperator"; }

  ActorCatalog::PortLayout ports(const Actor& a) const override {
    return {numInputs(a), 1};
  }
  DataType outputType(const Actor&, int) const override {
    return DataType::Bool;
  }

  int decisionOutcomes(const Actor&) const override { return 2; }
  int numConditions(const Actor& a) const override { return numInputs(a); }
  bool isCombinationCondition(const Actor& a) const override {
    return numInputs(a) >= 2;
  }

  void eval(EvalContext& ctx) const override {
    std::string o = op(*ctx.fa().src);
    int n = ctx.numInputs();
    Value& out = ctx.out();
    bool vals[16];
    for (int i = 0; i < out.width(); ++i) {
      for (int p = 0; p < n; ++p) vals[p] = inB(ctx, p, i);
      bool r = combine(o, vals, n);
      for (int p = 0; p < n; ++p) ctx.condition(p, vals[p]);
      ctx.decision(r ? 0 : 1);
      markMcdc(ctx, o, vals, n);
      out.setI(i, r ? 1 : 0);
    }
  }

  void emit(EmitContext& ctx) const override {
    std::string o = op(*ctx.fa().src);
    int n = ctx.numInputs();
    beginElemLoop(ctx, ctx.outWidth());
    std::vector<std::string> b(static_cast<size_t>(n));
    for (int p = 0; p < n; ++p) {
      b[static_cast<size_t>(p)] = ctx.sink().freshVar("b");
      ctx.line("int " + b[static_cast<size_t>(p)] + " = (" +
               ctx.in(p) + "[" + (ctx.inWidth(p) == 1 ? "0" : "i") +
               "] != 0);");
    }
    std::string r = ctx.sink().freshVar("r");
    ctx.line("int " + r + " = " + combineExpr(o, b) + ";");
    for (int p = 0; p < n; ++p) {
      ctx.line(ctx.sink().covConditionStmt(p, b[static_cast<size_t>(p)]));
    }
    ctx.line(ctx.sink().covDecisionStmt(r + " ? 0 : 1"));
    emitMcdc(ctx, o, b);
    ctx.line(ctx.out() + "[i] = (bool)" + r + ";");
    endElemLoop(ctx);
  }

  void validate(const FlatModel& fm, const FlatActor& fa) const override {
    ActorSpec::validate(fm, fa);
    std::string o = op(*fa.src);
    static const char* kOps[] = {"AND", "OR", "NAND", "NOR",
                                 "XOR", "NXOR", "NOT"};
    bool ok = false;
    for (const char* k : kOps) ok = ok || o == k;
    if (!ok) {
      throw ModelError("actor '" + fa.path + "': unknown logical op '" + o +
                       "'");
    }
    int n = numInputs(*fa.src);
    if (n < 1 || n > 16) {
      throw ModelError("actor '" + fa.path +
                       "': LogicalOperator supports 1..16 inputs");
    }
    if (o == "NOT" && n != 1) {
      throw ModelError("actor '" + fa.path + "': NOT takes exactly 1 input");
    }
  }

 private:
  static std::string op(const Actor& a) {
    return a.params().getString("op", "AND");
  }
  static int numInputs(const Actor& a) {
    if (op(a) == "NOT") return 1;
    return static_cast<int>(a.params().getInt("inputs", 2));
  }

  static bool combine(const std::string& o, const bool* vals, int n) {
    if (o == "NOT") return !vals[0];
    if (o == "AND" || o == "NAND") {
      bool r = true;
      for (int p = 0; p < n; ++p) r = r && vals[p];
      return o == "AND" ? r : !r;
    }
    if (o == "OR" || o == "NOR") {
      bool r = false;
      for (int p = 0; p < n; ++p) r = r || vals[p];
      return o == "OR" ? r : !r;
    }
    // XOR / NXOR: parity.
    bool r = false;
    for (int p = 0; p < n; ++p) r = r != vals[p];
    return o == "XOR" ? r : !r;
  }

  // Masking MC/DC: for AND-family, input p is independent when all other
  // inputs are true; for OR-family, when all others are false; for parity
  // and NOT every evaluation demonstrates independence.
  static void markMcdc(EvalContext& ctx, const std::string& o,
                       const bool* vals, int n) {
    for (int p = 0; p < n; ++p) {
      bool independent;
      if (o == "AND" || o == "NAND") {
        independent = true;
        for (int q = 0; q < n; ++q) {
          if (q != p) independent = independent && vals[q];
        }
      } else if (o == "OR" || o == "NOR") {
        independent = true;
        for (int q = 0; q < n; ++q) {
          if (q != p) independent = independent && !vals[q];
        }
      } else {
        independent = true;
      }
      if (independent) ctx.mcdc(p, vals[p]);
    }
  }

  static std::string combineExpr(const std::string& o,
                                 const std::vector<std::string>& b) {
    if (o == "NOT") return "!" + b[0];
    std::string joiner = (o == "AND" || o == "NAND") ? " && "
                         : (o == "OR" || o == "NOR") ? " || "
                                                     : " ^ ";
    std::string expr = b[0];
    for (size_t p = 1; p < b.size(); ++p) expr += joiner + b[p];
    expr = "(" + expr + ")";
    if (o == "NAND" || o == "NOR" || o == "NXOR") expr = "!" + expr;
    return expr;
  }

  void emitMcdc(EmitContext& ctx, const std::string& o,
                const std::vector<std::string>& b) const {
    int n = static_cast<int>(b.size());
    for (int p = 0; p < n; ++p) {
      std::string stmt =
          ctx.sink().covMcdcStmt(p, b[static_cast<size_t>(p)]);
      if (stmt.empty()) continue;
      if (o == "XOR" || o == "NXOR" || o == "NOT" || n == 1) {
        ctx.line(stmt);
        continue;
      }
      std::string guard;
      for (int q = 0; q < n; ++q) {
        if (q == p) continue;
        std::string term = (o == "OR" || o == "NOR")
                               ? "!" + b[static_cast<size_t>(q)]
                               : b[static_cast<size_t>(q)];
        guard += (guard.empty() ? "" : " && ") + term;
      }
      ctx.line("if (" + guard + ") { " + stmt + " }");
    }
  }
};

class BitwiseOperatorSpec : public ActorSpec {
 public:
  std::string type() const override { return "BitwiseOperator"; }

  ActorCatalog::PortLayout ports(const Actor& a) const override {
    return {numInputs(a), 1};
  }

  void eval(EvalContext& ctx) const override {
    std::string o = op(*ctx.fa().src);
    int n = ctx.numInputs();
    Value& out = ctx.out();
    for (int i = 0; i < out.width(); ++i) {
      uint64_t acc = static_cast<uint64_t>(inI(ctx, 0, i));
      if (o == "NOT") {
        acc = ~acc;
      } else {
        for (int p = 1; p < n; ++p) {
          uint64_t v = static_cast<uint64_t>(inI(ctx, p, i));
          if (o == "AND") acc &= v;
          else if (o == "OR") acc |= v;
          else acc ^= v;
        }
      }
      // Mask to the output width without flagging: bit patterns, not
      // arithmetic values.
      out.setI(i, wrapStore(out.type(), static_cast<Int128>(
                                            static_cast<int64_t>(acc)))
                      .value);
    }
  }

  void emit(EmitContext& ctx) const override {
    std::string o = op(*ctx.fa().src);
    int n = ctx.numInputs();
    beginElemLoop(ctx, ctx.outWidth());
    std::string acc = ctx.sink().freshVar("acc");
    ctx.line("uint64_t " + acc + " = (uint64_t)" +
             ctx.inElem(0, "i", DataType::I64) + ";");
    if (o == "NOT") {
      ctx.line(acc + " = ~" + acc + ";");
    } else {
      std::string cop = o == "AND" ? "&=" : (o == "OR" ? "|=" : "^=");
      for (int p = 1; p < n; ++p) {
        ctx.line(acc + " " + cop + " (uint64_t)" +
                 ctx.inElem(p, "i", DataType::I64) + ";");
      }
    }
    ctx.line(ctx.storeOutStmt("i", "(__int128)(int64_t)" + acc, "", ""));
    endElemLoop(ctx);
  }

  void validate(const FlatModel& fm, const FlatActor& fa) const override {
    ActorSpec::validate(fm, fa);
    DataType t = fm.signal(fa.outputs[0]).type;
    if (isFloatType(t)) {
      throw ModelError("actor '" + fa.path +
                       "': BitwiseOperator needs an integer output type");
    }
    std::string o = op(*fa.src);
    if (o != "AND" && o != "OR" && o != "XOR" && o != "NOT") {
      throw ModelError("actor '" + fa.path + "': unknown bitwise op '" + o +
                       "'");
    }
  }

 private:
  static std::string op(const Actor& a) {
    return a.params().getString("op", "AND");
  }
  static int numInputs(const Actor& a) {
    if (op(a) == "NOT") return 1;
    return static_cast<int>(a.params().getInt("inputs", 2));
  }
};

class ShiftArithmeticSpec : public ActorSpec {
 public:
  std::string type() const override { return "ShiftArithmetic"; }

  ActorCatalog::PortLayout ports(const Actor&) const override {
    return {1, 1};
  }

  std::vector<DiagKind> diagnostics(const FlatModel&,
                                    const FlatActor& fa) const override {
    if (fa.src->params().getString("direction", "left") == "left") {
      return {DiagKind::WrapOnOverflow};
    }
    return {};
  }

  void eval(EvalContext& ctx) const override {
    const Actor& a = *ctx.fa().src;
    int bits = static_cast<int>(a.params().getInt("bits", 1));
    bool left = a.params().getString("direction", "left") == "left";
    Value& out = ctx.out();
    ArithFlags fl;
    for (int i = 0; i < out.width(); ++i) {
      int64_t v = inI(ctx, 0, i);
      if (left) {
        IntResult r = wrapStore(out.type(), static_cast<Int128>(v) << bits);
        fl.wrap = fl.wrap || r.wrapped;
        out.setI(i, r.value);
      } else {
        out.setI(i, v >> bits);
      }
    }
    reportArith(ctx, fl);
  }

  void emit(EmitContext& ctx) const override {
    const Actor& a = *ctx.fa().src;
    int bits = static_cast<int>(a.params().getInt("bits", 1));
    bool left = a.params().getString("direction", "left") == "left";
    EmitFlags flags = declareArithFlags(ctx);
    beginElemLoop(ctx, ctx.outWidth());
    if (left) {
      ctx.line(ctx.storeOutStmt("i",
                                "(__int128)" + ctx.inElem(0, "i", DataType::I64) +
                                    " << " + std::to_string(bits),
                                flags.wrap, flags.prec));
    } else {
      ctx.line(ctx.storeOutStmt("i",
                                "(__int128)(" + ctx.inElem(0, "i", DataType::I64) +
                                    " >> " + std::to_string(bits) + ")",
                                flags.wrap, flags.prec));
    }
    endElemLoop(ctx);
    finishEmit(ctx, flags);
  }

  void validate(const FlatModel& fm, const FlatActor& fa) const override {
    ActorSpec::validate(fm, fa);
    DataType t = fm.signal(fa.outputs[0]).type;
    if (isFloatType(t)) {
      throw ModelError("actor '" + fa.path +
                       "': ShiftArithmetic needs an integer output type");
    }
    int64_t bits = fa.src->params().getInt("bits", 1);
    if (bits < 0 || bits > 63) {
      throw ModelError("actor '" + fa.path + "': shift bits must be in 0..63");
    }
  }
};

}  // namespace

void registerLogicActors(std::vector<std::unique_ptr<ActorSpec>>& out) {
  out.push_back(std::make_unique<RelationalOperatorSpec>());
  out.push_back(std::make_unique<CompareToConstantSpec>());
  out.push_back(std::make_unique<CompareToZeroSpec>());
  out.push_back(std::make_unique<LogicalOperatorSpec>());
  out.push_back(std::make_unique<BitwiseOperatorSpec>());
  out.push_back(std::make_unique<ShiftArithmeticSpec>());
}

}  // namespace accmos
