// Discrete (stateful) actors: UnitDelay, Delay, Memory, TappedDelay,
// DiscreteIntegrator, DiscreteDerivative, DiscreteFilter, ZeroOrderHold,
// and the data-store family (DataStoreMemory/Read/Write — the paper's case
// study models the CSEV `quantity` accumulator with one).
//
// Delay-class actors output from state only and latch inputs in the update
// phase; they break feedback cycles.
#include "actors/common.h"

namespace accmos {
namespace {

std::vector<double> initList(const Actor& a, int width) {
  std::vector<double> init = a.params().getDoubleList("initial");
  if (init.empty()) init.push_back(a.params().getDouble("initial", 0.0));
  init.resize(static_cast<size_t>(width), init.back());
  return init;
}

void checkInMatchesOut(const FlatModel& fm, const FlatActor& fa) {
  DataType inT = fm.signal(fa.inputs[0]).type;
  DataType outT = fm.signal(fa.outputs[0]).type;
  if (inT != outT) {
    throw ModelError("actor '" + fa.path + "': input type " +
                     std::string(dataTypeName(inT)) +
                     " must match output type " +
                     std::string(dataTypeName(outT)));
  }
}

// ---------------------------------------------------------------------------

class UnitDelayBase : public ActorSpec {
 public:
  ActorCatalog::PortLayout ports(const Actor&) const override {
    return {1, 1};
  }
  bool isDelayClass(const Actor&) const override { return true; }

  std::optional<StateSpec> state(const FlatModel& fm,
                                 const FlatActor& fa) const override {
    StateSpec s;
    s.type = fm.signal(fa.outputs[0]).type;
    s.width = fm.signal(fa.outputs[0]).width;
    s.initial = initList(*fa.src, s.width);
    return s;
  }

  void eval(EvalContext& ctx) const override {
    Value& out = ctx.out();
    const Value& st = ctx.state();
    for (int i = 0; i < out.width(); ++i) {
      if (out.isFloat()) {
        out.setF(i, st.f(i));
      } else {
        out.setI(i, st.i(i));
      }
    }
  }

  void update(EvalContext& ctx) const override {
    const Value& in = ctx.in(0);
    Value& st = ctx.state();
    for (int i = 0; i < st.width(); ++i) {
      int src = in.width() == 1 ? 0 : i;
      if (st.isFloat()) {
        st.setF(i, in.f(src));
      } else {
        st.setI(i, in.i(src));
      }
    }
  }

  void emit(EmitContext& ctx) const override {
    beginElemLoop(ctx, ctx.outWidth());
    ctx.line(ctx.out() + "[i] = " + ctx.state() + "[i];");
    endElemLoop(ctx);
    std::string src = ctx.inWidth(0) == 1 ? "[0]" : "[i]";
    ctx.sink().updateLine("for (int i = 0; i < " +
                          std::to_string(ctx.outWidth()) + "; ++i) " +
                          ctx.state() + "[i] = " + ctx.in(0) + src + ";");
  }

  void validate(const FlatModel& fm, const FlatActor& fa) const override {
    ActorSpec::validate(fm, fa);
    checkInMatchesOut(fm, fa);
  }
};

class UnitDelaySpec : public UnitDelayBase {
 public:
  std::string type() const override { return "UnitDelay"; }
};

class MemorySpec : public UnitDelayBase {
 public:
  std::string type() const override { return "Memory"; }
};

// N-step delay implemented as a shifting line (length * width state).
class DelaySpec : public ActorSpec {
 public:
  std::string type() const override { return "Delay"; }

  ActorCatalog::PortLayout ports(const Actor&) const override {
    return {1, 1};
  }
  bool isDelayClass(const Actor&) const override { return true; }

  std::optional<StateSpec> state(const FlatModel& fm,
                                 const FlatActor& fa) const override {
    int w = fm.signal(fa.outputs[0]).width;
    int n = length(*fa.src);
    StateSpec s;
    s.type = fm.signal(fa.outputs[0]).type;
    s.width = w * n;
    auto one = initList(*fa.src, w);
    for (int k = 0; k < n; ++k) {
      s.initial.insert(s.initial.end(), one.begin(), one.end());
    }
    return s;
  }

  void eval(EvalContext& ctx) const override {
    // Oldest slot [0, w) is the delayed output.
    Value& out = ctx.out();
    const Value& st = ctx.state();
    for (int i = 0; i < out.width(); ++i) {
      if (out.isFloat()) {
        out.setF(i, st.f(i));
      } else {
        out.setI(i, st.i(i));
      }
    }
  }

  void update(EvalContext& ctx) const override {
    int w = ctx.out().width();
    int n = length(*ctx.fa().src);
    Value& st = ctx.state();
    const Value& in = ctx.in(0);
    for (int k = 0; k + w < w * n; ++k) {
      if (st.isFloat()) {
        st.setF(k, st.f(k + w));
      } else {
        st.setI(k, st.i(k + w));
      }
    }
    for (int i = 0; i < w; ++i) {
      int src = in.width() == 1 ? 0 : i;
      int dst = w * (n - 1) + i;
      if (st.isFloat()) {
        st.setF(dst, in.f(src));
      } else {
        st.setI(dst, in.i(src));
      }
    }
  }

  void emit(EmitContext& ctx) const override {
    int w = ctx.outWidth();
    int n = length(*ctx.fa().src);
    beginElemLoop(ctx, w);
    ctx.line(ctx.out() + "[i] = " + ctx.state() + "[i];");
    endElemLoop(ctx);
    std::string src = ctx.inWidth(0) == 1 ? "[0]" : "[i]";
    ctx.sink().updateLine("for (int k = 0; k + " + std::to_string(w) +
                          " < " + std::to_string(w * n) + "; ++k) " +
                          ctx.state() + "[k] = " + ctx.state() + "[k + " +
                          std::to_string(w) + "];");
    ctx.sink().updateLine("for (int i = 0; i < " + std::to_string(w) +
                          "; ++i) " + ctx.state() + "[" +
                          std::to_string(w * (n - 1)) + " + i] = " +
                          ctx.in(0) + src + ";");
  }

  void validate(const FlatModel& fm, const FlatActor& fa) const override {
    ActorSpec::validate(fm, fa);
    checkInMatchesOut(fm, fa);
    if (length(*fa.src) < 1 || length(*fa.src) > 4096) {
      throw ModelError("actor '" + fa.path + "': Delay length must be 1..4096");
    }
  }

 private:
  static int length(const Actor& a) {
    return static_cast<int>(a.params().getInt("length", 1));
  }
};

// Scalar input; output vector of the last N inputs, most recent last.
class TappedDelaySpec : public ActorSpec {
 public:
  std::string type() const override { return "TappedDelay"; }

  ActorCatalog::PortLayout ports(const Actor&) const override {
    return {1, 1};
  }
  bool isDelayClass(const Actor&) const override { return true; }
  int outputWidth(const Actor& a, int) const override {
    return static_cast<int>(a.params().getInt("taps", 2));
  }

  std::optional<StateSpec> state(const FlatModel& fm,
                                 const FlatActor& fa) const override {
    StateSpec s;
    s.type = fm.signal(fa.outputs[0]).type;
    s.width = fm.signal(fa.outputs[0]).width;
    s.initial = initList(*fa.src, s.width);
    return s;
  }

  void eval(EvalContext& ctx) const override {
    Value& out = ctx.out();
    const Value& st = ctx.state();
    for (int i = 0; i < out.width(); ++i) {
      if (out.isFloat()) {
        out.setF(i, st.f(i));
      } else {
        out.setI(i, st.i(i));
      }
    }
  }

  void update(EvalContext& ctx) const override {
    Value& st = ctx.state();
    const Value& in = ctx.in(0);
    int n = st.width();
    for (int k = 0; k + 1 < n; ++k) {
      if (st.isFloat()) {
        st.setF(k, st.f(k + 1));
      } else {
        st.setI(k, st.i(k + 1));
      }
    }
    if (st.isFloat()) {
      st.setF(n - 1, in.f(0));
    } else {
      st.setI(n - 1, in.i(0));
    }
  }

  void emit(EmitContext& ctx) const override {
    int n = ctx.outWidth();
    beginElemLoop(ctx, n);
    ctx.line(ctx.out() + "[i] = " + ctx.state() + "[i];");
    endElemLoop(ctx);
    ctx.sink().updateLine("for (int k = 0; k + 1 < " + std::to_string(n) +
                          "; ++k) " + ctx.state() + "[k] = " + ctx.state() +
                          "[k + 1];");
    ctx.sink().updateLine(ctx.state() + "[" + std::to_string(n - 1) + "] = " +
                          ctx.in(0) + "[0];");
  }

  void validate(const FlatModel& fm, const FlatActor& fa) const override {
    checkInMatchesOut(fm, fa);
    if (fm.signal(fa.inputs[0]).width != 1) {
      throw ModelError("actor '" + fa.path +
                       "': TappedDelay input must be scalar");
    }
  }
};

// Forward-Euler discrete integrator: y[n] = y[n-1] + K * u[n-1].
class DiscreteIntegratorSpec : public ActorSpec {
 public:
  std::string type() const override { return "DiscreteIntegrator"; }

  ActorCatalog::PortLayout ports(const Actor&) const override {
    return {1, 1};
  }
  bool isDelayClass(const Actor&) const override { return true; }

  std::optional<StateSpec> state(const FlatModel& fm,
                                 const FlatActor& fa) const override {
    StateSpec s;
    s.type = fm.signal(fa.outputs[0]).type;
    s.width = fm.signal(fa.outputs[0]).width;
    s.initial = initList(*fa.src, s.width);
    return s;
  }

  std::vector<DiagKind> diagnostics(const FlatModel& fm,
                                    const FlatActor& fa) const override {
    // An integrator accumulates without bound — the canonical source of the
    // paper's long-horizon wrap-on-overflow errors.
    return arithDiags(fm, fa);
  }

  void eval(EvalContext& ctx) const override {
    Value& out = ctx.out();
    const Value& st = ctx.state();
    for (int i = 0; i < out.width(); ++i) {
      if (out.isFloat()) {
        out.setF(i, st.f(i));
      } else {
        out.setI(i, st.i(i));
      }
    }
  }

  void update(EvalContext& ctx) const override {
    double k = ctx.fa().src->params().getDouble("gain", 1.0);
    Value& st = ctx.state();
    ArithFlags fl;
    if (st.isFloat()) {
      for (int i = 0; i < st.width(); ++i) {
        double v = st.f(i) + k * inD(ctx, 0, i);
        if (!std::isfinite(v)) fl.nan = true;
        auto sf = st.store(i, v);
        fl.wrap = fl.wrap || sf.wrapped;
        fl.prec = fl.prec || sf.precisionLoss;
      }
    } else {
      int64_t ki = f2i(k);
      bool sat = saturating(ctx.fa());
      for (int i = 0; i < st.width(); ++i) {
        Int128 acc = static_cast<Int128>(st.i(i)) +
                     static_cast<Int128>(ki) * inI(ctx, 0, i);
        IntResult r = sat ? satStore(st.type(), acc)
                          : wrapStore(st.type(), acc);
        fl.wrap = fl.wrap || (!sat && r.wrapped);
        fl.sat = fl.sat || (sat && r.wrapped);
        st.setI(i, r.value);
      }
    }
    reportArith(ctx, fl);
  }

  void emit(EmitContext& ctx) const override {
    double k = ctx.fa().src->params().getDouble("gain", 1.0);
    beginElemLoop(ctx, ctx.outWidth());
    ctx.line(ctx.out() + "[i] = " + ctx.state() + "[i];");
    endElemLoop(ctx);
    // The update phase carries the wrap diagnosis; flags are declared in
    // that scope, not the eval scope.
    bool real = isFloatType(ctx.outType());
    bool sat = saturating(ctx.fa());
    EmitFlags flags;
    if (!real && ctx.sink().diagOn(DiagKind::WrapOnOverflow)) {
      flags.wrap = ctx.sink().freshVar("wf");
      ctx.sink().updateLinePre("int " + flags.wrap + " = 0;");
    }
    if (!real && ctx.sink().diagOn(DiagKind::SaturateOnOverflow)) {
      flags.sat = ctx.sink().freshVar("sf");
      ctx.sink().updateLinePre("int " + flags.sat + " = 0;");
    }
    if (real && ctx.sink().diagOn(DiagKind::NanInf)) {
      flags.nan = ctx.sink().freshVar("nf");
      ctx.sink().updateLinePre("int " + flags.nan + " = 0;");
    }
    ctx.sink().updateLine("for (int i = 0; i < " +
                          std::to_string(ctx.outWidth()) + "; ++i) {");
    if (real) {
      std::string expr = ctx.state() + "[i] + " + fmtD(k) + " * " +
                         ctx.inElem(0, "i", DataType::F64);
      std::string stmt = "{ double _s = " + expr + ";";
      if (!flags.nan.empty()) {
        stmt += " if (!accmos_isfinite(_s)) " + flags.nan + " = 1;";
      }
      stmt += " " + ctx.state() + "[i] = (" +
              std::string(dataTypeCpp(ctx.outType())) + ")_s; }";
      ctx.sink().updateLine(stmt);
    } else {
      std::string fn = sat ? "accmos_sat_" : "accmos_store_";
      const std::string& flagVar = sat ? flags.sat : flags.wrap;
      std::string stmt = "{ accmos_wrapres _w = " + fn +
                         std::string(dataTypeName(ctx.outType())) +
                         "((__int128)" + ctx.state() + "[i] + (__int128)" +
                         fmtI(f2i(k)) + " * " +
                         ctx.inElem(0, "i", DataType::I64) + "); " +
                         ctx.state() + "[i] = (" +
                         std::string(dataTypeCpp(ctx.outType())) +
                         ")_w.value;";
      if (!flagVar.empty()) stmt += " " + flagVar + " |= _w.wrapped;";
      stmt += " }";
      ctx.sink().updateLine(stmt);
    }
    ctx.sink().updateLine("}");
    // The diagnostic call runs after the update loop.
    ctx.sink().diagCallInUpdate(flags.asDiagCall());
  }
};

// y[n] = u[n] - u[n-1] (per-step difference).
class DiscreteDerivativeSpec : public ActorSpec {
 public:
  std::string type() const override { return "DiscreteDerivative"; }

  ActorCatalog::PortLayout ports(const Actor&) const override {
    return {1, 1};
  }

  std::optional<StateSpec> state(const FlatModel& fm,
                                 const FlatActor& fa) const override {
    StateSpec s;
    s.type = DataType::F64;
    s.width = fm.signal(fa.outputs[0]).width;
    s.initial = initList(*fa.src, s.width);
    return s;
  }

  std::vector<DiagKind> diagnostics(const FlatModel& fm,
                                    const FlatActor& fa) const override {
    return arithDiags(fm, fa);
  }

  void eval(EvalContext& ctx) const override {
    ArithFlags fl;
    for (int i = 0; i < ctx.out().width(); ++i) {
      storeReal(ctx, 0, i, inD(ctx, 0, i) - ctx.state().f(i), fl);
    }
    reportArith(ctx, fl);
  }

  void update(EvalContext& ctx) const override {
    Value& st = ctx.state();
    for (int i = 0; i < st.width(); ++i) st.setF(i, inD(ctx, 0, i));
  }

  void emit(EmitContext& ctx) const override {
    EmitFlags flags = declareArithFlags(ctx);
    beginElemLoop(ctx, ctx.outWidth());
    ctx.line(ctx.storeOutStmt("i",
                              ctx.inElem(0, "i", DataType::F64) + " - " +
                                  ctx.state() + "[i]",
                              flags.wrap, flags.prec));
    endElemLoop(ctx);
    finishEmit(ctx, flags);
    ctx.sink().updateLine("for (int i = 0; i < " +
                          std::to_string(ctx.outWidth()) + "; ++i) " +
                          ctx.state() + "[i] = " +
                          ctx.inElem(0, "i", DataType::F64) + ";");
  }
};

// First/second-order IIR filter: y = (b0*u + b1*u1 + b2*u2 - a1*y1 - a2*y2).
// num = b coefficients, den = 1, a1, a2... (den[0] must be 1).
class DiscreteFilterSpec : public ActorSpec {
 public:
  std::string type() const override { return "DiscreteFilter"; }

  ActorCatalog::PortLayout ports(const Actor&) const override {
    return {1, 1};
  }

  std::optional<StateSpec> state(const FlatModel&,
                                 const FlatActor& fa) const override {
    auto [b, a] = coeffs(*fa.src);
    StateSpec s;
    s.type = DataType::F64;
    // u history (len b-1) then y history (len a-1).
    s.width = static_cast<int>(b.size() - 1 + a.size() - 1);
    if (s.width == 0) s.width = 1;  // degenerate pure-gain filter
    s.initial = {0.0};
    return s;
  }

  std::vector<DiagKind> diagnostics(const FlatModel& fm,
                                    const FlatActor& fa) const override {
    return arithDiags(fm, fa);
  }

  void eval(EvalContext& ctx) const override {
    auto [b, a] = coeffs(*ctx.fa().src);
    int nb = static_cast<int>(b.size()) - 1;
    int na = static_cast<int>(a.size()) - 1;
    double u = inD(ctx, 0, 0);
    Value& st = ctx.state();
    double y = b[0] * u;
    for (int k = 0; k < nb; ++k) y += b[static_cast<size_t>(k + 1)] * st.f(k);
    for (int k = 0; k < na; ++k) {
      y -= a[static_cast<size_t>(k + 1)] * st.f(nb + k);
    }
    ArithFlags fl;
    storeReal(ctx, 0, 0, y, fl);
    reportArith(ctx, fl);
  }

  void update(EvalContext& ctx) const override {
    auto [b, a] = coeffs(*ctx.fa().src);
    int nb = static_cast<int>(b.size()) - 1;
    int na = static_cast<int>(a.size()) - 1;
    Value& st = ctx.state();
    // Recompute y from the unmodified state (update runs after all evals,
    // before any state of this actor changed) to latch the y-history.
    double u = inD(ctx, 0, 0);
    double y = b[0] * u;
    for (int k = 0; k < nb; ++k) y += b[static_cast<size_t>(k + 1)] * st.f(k);
    for (int k = 0; k < na; ++k) {
      y -= a[static_cast<size_t>(k + 1)] * st.f(nb + k);
    }
    for (int k = nb - 1; k > 0; --k) st.setF(k, st.f(k - 1));
    if (nb > 0) st.setF(0, u);
    for (int k = na - 1; k > 0; --k) st.setF(nb + k, st.f(nb + k - 1));
    if (na > 0) st.setF(nb, y);
  }

  void emit(EmitContext& ctx) const override {
    auto [b, a] = coeffs(*ctx.fa().src);
    int nb = static_cast<int>(b.size()) - 1;
    int na = static_cast<int>(a.size()) - 1;
    EmitFlags flags = declareArithFlags(ctx);
    std::string y = ctx.sink().freshVar("y");
    std::string expr = fmtD(b[0]) + " * " + ctx.inElem(0, "0", DataType::F64);
    for (int k = 0; k < nb; ++k) {
      expr += " + " + fmtD(b[static_cast<size_t>(k + 1)]) + " * " +
              ctx.state() + "[" + std::to_string(k) + "]";
    }
    for (int k = 0; k < na; ++k) {
      expr += " - " + fmtD(a[static_cast<size_t>(k + 1)]) + " * " +
              ctx.state() + "[" + std::to_string(nb + k) + "]";
    }
    ctx.line("double " + y + " = " + expr + ";");
    if (!flags.nan.empty()) ctx.line(nanCheckStmt(flags, y));
    ctx.line(ctx.storeOutStmt("0", y, flags.wrap, flags.prec));
    finishEmit(ctx, flags);
    for (int k = nb - 1; k > 0; --k) {
      ctx.sink().updateLine(ctx.state() + "[" + std::to_string(k) + "] = " +
                            ctx.state() + "[" + std::to_string(k - 1) + "];");
    }
    if (nb > 0) {
      ctx.sink().updateLine(ctx.state() + "[0] = " +
                            ctx.inElem(0, "0", DataType::F64) + ";");
    }
    for (int k = na - 1; k > 0; --k) {
      ctx.sink().updateLine(ctx.state() + "[" + std::to_string(nb + k) +
                            "] = " + ctx.state() + "[" +
                            std::to_string(nb + k - 1) + "];");
    }
    if (na > 0) {
      // Recompute y in the update phase: the eval-scope variable is not
      // visible there (each phase has its own scope).
      std::string uy = ctx.sink().freshVar("uy");
      std::string uexpr = fmtD(b[0]) + " * " +
                          ctx.inElem(0, "0", DataType::F64);
      for (int k = 0; k < nb; ++k) {
        uexpr += " + " + fmtD(b[static_cast<size_t>(k + 1)]) + " * " +
                 ctx.state() + "[" + std::to_string(k) + "]";
      }
      for (int k = 0; k < na; ++k) {
        uexpr += " - " + fmtD(a[static_cast<size_t>(k + 1)]) + " * " +
                 ctx.state() + "[" + std::to_string(nb + k) + "]";
      }
      ctx.sink().updateLinePre("double " + uy + " = " + uexpr + ";");
      ctx.sink().updateLine(ctx.state() + "[" + std::to_string(nb) + "] = " +
                            uy + ";");
    }
  }

  void validate(const FlatModel& fm, const FlatActor& fa) const override {
    if (fm.signal(fa.inputs[0]).width != 1 ||
        fm.signal(fa.outputs[0]).width != 1) {
      throw ModelError("actor '" + fa.path +
                       "': DiscreteFilter is scalar-only");
    }
    if (!isFloatType(fm.signal(fa.outputs[0]).type)) {
      throw ModelError("actor '" + fa.path +
                       "': DiscreteFilter output must be float");
    }
    auto [b, a] = coeffs(*fa.src);
    if (a.empty() || a[0] != 1.0) {
      throw ModelError("actor '" + fa.path +
                       "': DiscreteFilter den[0] must be 1");
    }
    if (b.size() > 5 || a.size() > 5) {
      throw ModelError("actor '" + fa.path +
                       "': DiscreteFilter supports order <= 4");
    }
  }

 private:
  static std::pair<std::vector<double>, std::vector<double>> coeffs(
      const Actor& a) {
    std::vector<double> num = a.params().getDoubleList("num");
    std::vector<double> den = a.params().getDoubleList("den");
    if (num.empty()) num = {1.0};
    if (den.empty()) den = {1.0};
    return {num, den};
  }

};

// Holds the input sampled every `sample` steps.
class ZeroOrderHoldSpec : public ActorSpec {
 public:
  std::string type() const override { return "ZeroOrderHold"; }

  ActorCatalog::PortLayout ports(const Actor&) const override {
    return {1, 1};
  }

  std::optional<StateSpec> state(const FlatModel& fm,
                                 const FlatActor& fa) const override {
    StateSpec s;
    s.type = fm.signal(fa.outputs[0]).type;
    s.width = fm.signal(fa.outputs[0]).width;
    s.initial = initList(*fa.src, s.width);
    return s;
  }

  void eval(EvalContext& ctx) const override {
    int64_t n = std::max<int64_t>(1, ctx.fa().src->params().getInt("sample", 1));
    Value& out = ctx.out();
    Value& st = ctx.state();
    bool sampleStep = ctx.step() % static_cast<uint64_t>(n) == 0;
    for (int i = 0; i < out.width(); ++i) {
      if (sampleStep) {
        const Value& in = ctx.in(0);
        int src = in.width() == 1 ? 0 : i;
        if (st.isFloat()) {
          st.setF(i, in.f(src));
        } else {
          st.setI(i, in.i(src));
        }
      }
      if (out.isFloat()) {
        out.setF(i, st.f(i));
      } else {
        out.setI(i, st.i(i));
      }
    }
  }

  void emit(EmitContext& ctx) const override {
    int64_t n = std::max<int64_t>(1, ctx.fa().src->params().getInt("sample", 1));
    std::string src = ctx.inWidth(0) == 1 ? "[0]" : "[i]";
    ctx.line("if (step % " + std::to_string(n) + "ULL == 0) {");
    beginElemLoop(ctx, ctx.outWidth());
    ctx.line(ctx.state() + "[i] = " + ctx.in(0) + src + ";");
    endElemLoop(ctx);
    ctx.line("}");
    beginElemLoop(ctx, ctx.outWidth());
    ctx.line(ctx.out() + "[i] = " + ctx.state() + "[i];");
    endElemLoop(ctx);
  }

  void validate(const FlatModel& fm, const FlatActor& fa) const override {
    ActorSpec::validate(fm, fa);
    checkInMatchesOut(fm, fa);
  }
};

// ---------------------------------------------------------------------------
// Data store family.
// ---------------------------------------------------------------------------

class DataStoreMemorySpec : public ActorSpec {
 public:
  std::string type() const override { return "DataStoreMemory"; }
  ActorCatalog::PortLayout ports(const Actor&) const override {
    return {0, 0};
  }
  bool countsForActorCoverage(const Actor&) const override { return false; }
  void eval(EvalContext&) const override {}
  void emit(EmitContext&) const override {}
};

class DataStoreReadSpec : public ActorSpec {
 public:
  std::string type() const override { return "DataStoreRead"; }
  ActorCatalog::PortLayout ports(const Actor&) const override {
    return {0, 1};
  }

  void eval(EvalContext& ctx) const override {
    const Value& st = ctx.store();
    Value& out = ctx.out();
    for (int i = 0; i < out.width(); ++i) {
      if (out.isFloat()) {
        out.setF(i, st.f(i));
      } else {
        out.setI(i, st.i(i));
      }
    }
  }

  void emit(EmitContext& ctx) const override {
    beginElemLoop(ctx, ctx.outWidth());
    ctx.line(ctx.out() + "[i] = " + ctx.store() + "[i];");
    endElemLoop(ctx);
  }

  void validate(const FlatModel& fm, const FlatActor& fa) const override {
    const DataStoreInfo& ds = fm.dataStores[static_cast<size_t>(fa.dataStore)];
    if (fm.signal(fa.outputs[0]).type != ds.type ||
        fm.signal(fa.outputs[0]).width != ds.width) {
      throw ModelError("actor '" + fa.path +
                       "': DataStoreRead type/width must match store '" +
                       ds.name + "' (declare dtype/width on the actor)");
    }
  }
};

class DataStoreWriteSpec : public ActorSpec {
 public:
  std::string type() const override { return "DataStoreWrite"; }
  ActorCatalog::PortLayout ports(const Actor&) const override {
    return {1, 0};
  }

  void eval(EvalContext& ctx) const override {
    const Value& in = ctx.in(0);
    Value& st = ctx.store();
    for (int i = 0; i < st.width(); ++i) {
      int src = in.width() == 1 ? 0 : i;
      if (st.isFloat()) {
        st.setF(i, in.f(src));
      } else {
        st.setI(i, in.i(src));
      }
    }
  }

  void emit(EmitContext& ctx) const override {
    const DataStoreInfo& ds =
        ctx.fm().dataStores[static_cast<size_t>(ctx.fa().dataStore)];
    std::string src = ctx.inWidth(0) == 1 ? "[0]" : "[i]";
    ctx.line("for (int i = 0; i < " + std::to_string(ds.width) + "; ++i) " +
             ctx.store() + "[i] = " + ctx.in(0) + src + ";");
  }

  void validate(const FlatModel& fm, const FlatActor& fa) const override {
    const DataStoreInfo& ds = fm.dataStores[static_cast<size_t>(fa.dataStore)];
    if (fm.signal(fa.inputs[0]).type != ds.type) {
      throw ModelError("actor '" + fa.path +
                       "': DataStoreWrite input type must match store '" +
                       ds.name + "'");
    }
    int iw = fm.signal(fa.inputs[0]).width;
    if (iw != 1 && iw != ds.width) {
      throw ModelError("actor '" + fa.path +
                       "': DataStoreWrite input width incompatible with "
                       "store '" + ds.name + "'");
    }
  }
};

}  // namespace

void registerDiscreteActors(std::vector<std::unique_ptr<ActorSpec>>& out) {
  out.push_back(std::make_unique<UnitDelaySpec>());
  out.push_back(std::make_unique<MemorySpec>());
  out.push_back(std::make_unique<DelaySpec>());
  out.push_back(std::make_unique<TappedDelaySpec>());
  out.push_back(std::make_unique<DiscreteIntegratorSpec>());
  out.push_back(std::make_unique<DiscreteDerivativeSpec>());
  out.push_back(std::make_unique<DiscreteFilterSpec>());
  out.push_back(std::make_unique<ZeroOrderHoldSpec>());
  out.push_back(std::make_unique<DataStoreMemorySpec>());
  out.push_back(std::make_unique<DataStoreReadSpec>());
  out.push_back(std::make_unique<DataStoreWriteSpec>());
}

}  // namespace accmos
