// Source actors: Inport, Constant, Step, Ramp, SineWave, PulseGenerator,
// Clock, Counter, RandomNumber, Ground.
//
// Time is measured in steps (the models are discrete; the paper's
// evaluation drives them with a fixed step count), so rate parameters are
// expressed per step.
#include <cmath>

#include "actors/common.h"

namespace accmos {
namespace {

class SourceBase : public ActorSpec {
 public:
  ActorCatalog::PortLayout ports(const Actor&) const override {
    return {0, 1};
  }
};

// ---------------------------------------------------------------------------

class InportSpec : public SourceBase {
 public:
  std::string type() const override { return "Inport"; }

  // The engine (or generated main loop) writes the test-case value into the
  // output signal before the step runs; the actor itself is a placeholder.
  void eval(EvalContext&) const override {}

  void emit(EmitContext&) const override {}
};

class GroundSpec : public SourceBase {
 public:
  std::string type() const override { return "Ground"; }

  void eval(EvalContext& ctx) const override {
    Value& out = ctx.out();
    for (int i = 0; i < out.width(); ++i) out.setI(i, 0);
  }

  void emit(EmitContext& ctx) const override {
    beginElemLoop(ctx, ctx.outWidth());
    ctx.line(ctx.out() + "[i] = 0;");
    endElemLoop(ctx);
  }
};

class ConstantSpec : public SourceBase {
 public:
  std::string type() const override { return "Constant"; }

  void eval(EvalContext& ctx) const override {
    Value& out = ctx.out();
    auto vals = values(*ctx.fa().src, out.width());
    ArithFlags fl;
    for (int i = 0; i < out.width(); ++i) storeReal(ctx, 0, i, vals[i], fl);
  }

  void emit(EmitContext& ctx) const override {
    auto vals = values(*ctx.fa().src, ctx.outWidth());
    for (int i = 0; i < ctx.outWidth(); ++i) {
      ctx.line(ctx.storeOutStmt(std::to_string(i), fmtD(vals[i]), "", ""));
    }
  }

 private:
  static std::vector<double> values(const Actor& a, int width) {
    std::vector<double> vals = a.params().getDoubleList("value");
    if (vals.empty()) vals.push_back(a.params().getDouble("value", 0.0));
    vals.resize(static_cast<size_t>(width), vals.back());
    return vals;
  }
};

class StepSpec : public SourceBase {
 public:
  std::string type() const override { return "Step"; }

  void eval(EvalContext& ctx) const override {
    const Actor& a = *ctx.fa().src;
    double v = static_cast<double>(ctx.step()) >=
                       a.params().getDouble("stepTime", 1.0)
                   ? a.params().getDouble("after", 1.0)
                   : a.params().getDouble("before", 0.0);
    ArithFlags fl;
    for (int i = 0; i < ctx.out().width(); ++i) storeReal(ctx, 0, i, v, fl);
  }

  void emit(EmitContext& ctx) const override {
    const Actor& a = *ctx.fa().src;
    std::string expr = "((double)step >= " +
                       fmtD(a.params().getDouble("stepTime", 1.0)) + " ? " +
                       fmtD(a.params().getDouble("after", 1.0)) + " : " +
                       fmtD(a.params().getDouble("before", 0.0)) + ")";
    beginElemLoop(ctx, ctx.outWidth());
    ctx.line(ctx.storeOutStmt("i", expr, "", ""));
    endElemLoop(ctx);
  }
};

class RampSpec : public SourceBase {
 public:
  std::string type() const override { return "Ramp"; }

  void eval(EvalContext& ctx) const override {
    const Actor& a = *ctx.fa().src;
    double start = a.params().getDouble("start", 0.0);
    double t = static_cast<double>(ctx.step());
    double v = a.params().getDouble("initial", 0.0);
    if (t >= start) v += a.params().getDouble("slope", 1.0) * (t - start);
    ArithFlags fl;
    for (int i = 0; i < ctx.out().width(); ++i) storeReal(ctx, 0, i, v, fl);
    reportArith(ctx, fl);
  }

  void emit(EmitContext& ctx) const override {
    const Actor& a = *ctx.fa().src;
    std::string start = fmtD(a.params().getDouble("start", 0.0));
    std::string expr = "((double)step >= " + start + " ? " +
                       fmtD(a.params().getDouble("initial", 0.0)) + " + " +
                       fmtD(a.params().getDouble("slope", 1.0)) +
                       " * ((double)step - " + start + ") : " +
                       fmtD(a.params().getDouble("initial", 0.0)) + ")";
    EmitFlags flags = declareArithFlags(ctx);
    beginElemLoop(ctx, ctx.outWidth());
    ctx.line(ctx.storeOutStmt("i", expr, flags.wrap, flags.prec));
    endElemLoop(ctx);
    finishEmit(ctx, flags);
  }

  std::vector<DiagKind> diagnostics(const FlatModel& fm,
                                    const FlatActor& fa) const override {
    // A ramp grows without bound: integer outputs eventually wrap — the
    // cumulative-error class the paper's motivation targets.
    return arithDiags(fm, fa);
  }
};

class SineWaveSpec : public SourceBase {
 public:
  std::string type() const override { return "SineWave"; }

  void eval(EvalContext& ctx) const override {
    const Actor& a = *ctx.fa().src;
    double t = static_cast<double>(ctx.step());
    double v = a.params().getDouble("amplitude", 1.0) *
                   std::sin(2.0 * M_PI * a.params().getDouble("freq", 0.01) * t +
                            a.params().getDouble("phase", 0.0)) +
               a.params().getDouble("bias", 0.0);
    ArithFlags fl;
    for (int i = 0; i < ctx.out().width(); ++i) storeReal(ctx, 0, i, v, fl);
    reportArith(ctx, fl);
  }

  void emit(EmitContext& ctx) const override {
    const Actor& a = *ctx.fa().src;
    std::string expr =
        fmtD(a.params().getDouble("amplitude", 1.0)) + " * sin(" +
        fmtD(2.0 * M_PI * a.params().getDouble("freq", 0.01)) +
        " * (double)step + " + fmtD(a.params().getDouble("phase", 0.0)) +
        ") + " + fmtD(a.params().getDouble("bias", 0.0));
    EmitFlags flags = declareArithFlags(ctx);
    beginElemLoop(ctx, ctx.outWidth());
    ctx.line(ctx.storeOutStmt("i", expr, flags.wrap, flags.prec));
    endElemLoop(ctx);
    finishEmit(ctx, flags);
  }

  std::vector<DiagKind> diagnostics(const FlatModel& fm,
                                    const FlatActor& fa) const override {
    if (realDomain(fm, fa)) return {};  // bounded, cannot overflow
    return arithDiags(fm, fa);
  }
};

class PulseGeneratorSpec : public SourceBase {
 public:
  std::string type() const override { return "PulseGenerator"; }

  void eval(EvalContext& ctx) const override {
    const Actor& a = *ctx.fa().src;
    int64_t period = std::max<int64_t>(1, a.params().getInt("period", 10));
    int64_t on = onSteps(a, period);
    double v = static_cast<int64_t>(ctx.step() % static_cast<uint64_t>(period)) < on
                   ? a.params().getDouble("amplitude", 1.0)
                   : 0.0;
    ArithFlags fl;
    for (int i = 0; i < ctx.out().width(); ++i) storeReal(ctx, 0, i, v, fl);
  }

  void emit(EmitContext& ctx) const override {
    const Actor& a = *ctx.fa().src;
    int64_t period = std::max<int64_t>(1, a.params().getInt("period", 10));
    std::string expr = "((int64_t)(step % " + std::to_string(period) +
                       "ULL) < " + std::to_string(onSteps(a, period)) + " ? " +
                       fmtD(a.params().getDouble("amplitude", 1.0)) + " : 0.0)";
    beginElemLoop(ctx, ctx.outWidth());
    ctx.line(ctx.storeOutStmt("i", expr, "", ""));
    endElemLoop(ctx);
  }

 private:
  static int64_t onSteps(const Actor& a, int64_t period) {
    double duty = a.params().getDouble("duty", 0.5);
    int64_t on = static_cast<int64_t>(std::nearbyint(duty * static_cast<double>(period)));
    return std::clamp<int64_t>(on, 0, period);
  }
};

class ClockSpec : public SourceBase {
 public:
  std::string type() const override { return "Clock"; }

  void eval(EvalContext& ctx) const override {
    ArithFlags fl;
    double t = static_cast<double>(ctx.step());
    for (int i = 0; i < ctx.out().width(); ++i) storeReal(ctx, 0, i, t, fl);
    reportArith(ctx, fl);
  }

  void emit(EmitContext& ctx) const override {
    EmitFlags flags = declareArithFlags(ctx);
    beginElemLoop(ctx, ctx.outWidth());
    ctx.line(ctx.storeOutStmt("i", "(double)step", flags.wrap, flags.prec));
    endElemLoop(ctx);
    finishEmit(ctx, flags);
  }

  std::vector<DiagKind> diagnostics(const FlatModel& fm,
                                    const FlatActor& fa) const override {
    if (realDomain(fm, fa)) return {};
    return arithDiags(fm, fa);
  }
};

class CounterSpec : public SourceBase {
 public:
  std::string type() const override { return "Counter"; }

  void eval(EvalContext& ctx) const override {
    int64_t max = std::max<int64_t>(1, ctx.fa().src->params().getInt("max", 256));
    ArithFlags fl;
    Int128 v = static_cast<int64_t>(ctx.step() % static_cast<uint64_t>(max));
    for (int i = 0; i < ctx.out().width(); ++i) storeInt(ctx, 0, i, v, fl);
    reportArith(ctx, fl);
  }

  void emit(EmitContext& ctx) const override {
    int64_t max = std::max<int64_t>(1, ctx.fa().src->params().getInt("max", 256));
    EmitFlags flags = declareArithFlags(ctx);
    beginElemLoop(ctx, ctx.outWidth());
    ctx.line(ctx.storeOutStmt(
        "i", "(__int128)(int64_t)(step % " + std::to_string(max) + "ULL)",
        flags.wrap, flags.prec));
    endElemLoop(ctx);
    finishEmit(ctx, flags);
  }

  void validate(const FlatModel& fm, const FlatActor& fa) const override {
    ActorSpec::validate(fm, fa);
    DataType t = fm.signal(fa.outputs[0]).type;
    if (isFloatType(t)) {
      throw ModelError("actor '" + fa.path + "': Counter output must be an "
                       "integer type");
    }
  }

  std::vector<DiagKind> diagnostics(const FlatModel& fm,
                                    const FlatActor& fa) const override {
    return arithDiags(fm, fa);
  }
};

class RandomNumberSpec : public SourceBase {
 public:
  std::string type() const override { return "RandomNumber"; }

  std::optional<StateSpec> state(const FlatModel&,
                                 const FlatActor& fa) const override {
    StateSpec s;
    s.type = DataType::U64;
    s.width = 1;
    s.initial = {
        static_cast<double>(fa.src->params().getInt("seed", 1) & 0xFFFFFFFF)};
    return s;
  }

  void eval(EvalContext& ctx) const override {
    const Actor& a = *ctx.fa().src;
    double lo = a.params().getDouble("min", 0.0);
    double hi = a.params().getDouble("max", 1.0);
    SplitMix64 rng(static_cast<uint64_t>(ctx.state().i(0)));
    ArithFlags fl;
    for (int i = 0; i < ctx.out().width(); ++i) {
      storeReal(ctx, 0, i, rng.nextUniform(lo, hi), fl);
    }
    ctx.state().setI(0, static_cast<int64_t>(rng.state));
  }

  void emit(EmitContext& ctx) const override {
    const Actor& a = *ctx.fa().src;
    std::string lo = fmtD(a.params().getDouble("min", 0.0));
    std::string hi = fmtD(a.params().getDouble("max", 1.0));
    beginElemLoop(ctx, ctx.outWidth());
    ctx.line(ctx.storeOutStmt("i",
                              lo + " + accmos_sm64_unit(&" + ctx.state() +
                                  "[0]) * (" + hi + " - " + lo + ")",
                              "", ""));
    endElemLoop(ctx);
  }
};

}  // namespace

void registerSourceActors(std::vector<std::unique_ptr<ActorSpec>>& out) {
  out.push_back(std::make_unique<InportSpec>());
  out.push_back(std::make_unique<GroundSpec>());
  out.push_back(std::make_unique<ConstantSpec>());
  out.push_back(std::make_unique<StepSpec>());
  out.push_back(std::make_unique<RampSpec>());
  out.push_back(std::make_unique<SineWaveSpec>());
  out.push_back(std::make_unique<PulseGeneratorSpec>());
  out.push_back(std::make_unique<ClockSpec>());
  out.push_back(std::make_unique<CounterSpec>());
  out.push_back(std::make_unique<RandomNumberSpec>());
}

}  // namespace accmos
