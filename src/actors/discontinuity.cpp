// Discontinuity actors: Saturation, SaturationDynamic, DeadZone, Relay,
// Quantizer, RateLimiter, WrapToZero. These are the decision-rich actors
// that drive the decision-coverage rows of the paper's Table 3.
#include <cmath>

#include "actors/common.h"

namespace accmos {
namespace {

class DiscontinuityBase : public ActorSpec {
 public:
  ActorCatalog::PortLayout ports(const Actor&) const override {
    return {1, 1};
  }
  std::vector<DiagKind> diagnostics(const FlatModel& fm,
                                    const FlatActor& fa) const override {
    return arithDiags(fm, fa);
  }
};

class SaturationSpec : public DiscontinuityBase {
 public:
  std::string type() const override { return "Saturation"; }

  // Outcomes: below lower limit / within / above upper limit.
  int decisionOutcomes(const Actor&) const override { return 3; }

  void eval(EvalContext& ctx) const override {
    const Actor& a = *ctx.fa().src;
    double lo = a.params().getDouble("min", -1.0);
    double hi = a.params().getDouble("max", 1.0);
    ArithFlags fl;
    for (int i = 0; i < ctx.out().width(); ++i) {
      double v = inD(ctx, 0, i);
      int outcome = v < lo ? 0 : (v > hi ? 2 : 1);
      ctx.decision(outcome);
      storeReal(ctx, 0, i, outcome == 0 ? lo : (outcome == 2 ? hi : v), fl);
    }
    reportArith(ctx, fl);
  }

  void emit(EmitContext& ctx) const override {
    const Actor& a = *ctx.fa().src;
    std::string lo = fmtD(a.params().getDouble("min", -1.0));
    std::string hi = fmtD(a.params().getDouble("max", 1.0));
    EmitFlags flags = declareArithFlags(ctx);
    beginElemLoop(ctx, ctx.outWidth());
    std::string v = ctx.sink().freshVar("v");
    ctx.line("double " + v + " = " + ctx.inElem(0, "i", DataType::F64) + ";");
    std::string o = ctx.sink().freshVar("o");
    ctx.line("int " + o + " = " + v + " < " + lo + " ? 0 : (" + v + " > " +
             hi + " ? 2 : 1);");
    ctx.line(ctx.sink().covDecisionStmt(o));
    ctx.line(ctx.storeOutStmt("i",
                              o + " == 0 ? " + lo + " : (" + o + " == 2 ? " +
                                  hi + " : " + v + ")",
                              flags.wrap, flags.prec));
    endElemLoop(ctx);
    finishEmit(ctx, flags);
  }

  void validate(const FlatModel& fm, const FlatActor& fa) const override {
    ActorSpec::validate(fm, fa);
    if (fa.src->params().getDouble("min", -1.0) >
        fa.src->params().getDouble("max", 1.0)) {
      throw ModelError("actor '" + fa.path + "': Saturation min > max");
    }
  }
};

// Saturation with runtime limits: ports are (value, lower, upper).
class SaturationDynamicSpec : public ActorSpec {
 public:
  std::string type() const override { return "SaturationDynamic"; }

  ActorCatalog::PortLayout ports(const Actor&) const override {
    return {3, 1};
  }
  int decisionOutcomes(const Actor&) const override { return 3; }

  std::vector<DiagKind> diagnostics(const FlatModel& fm,
                                    const FlatActor& fa) const override {
    return arithDiags(fm, fa);
  }

  void eval(EvalContext& ctx) const override {
    ArithFlags fl;
    for (int i = 0; i < ctx.out().width(); ++i) {
      double v = inD(ctx, 0, i);
      double lo = inD(ctx, 1, i);
      double hi = inD(ctx, 2, i);
      int outcome = v < lo ? 0 : (v > hi ? 2 : 1);
      ctx.decision(outcome);
      storeReal(ctx, 0, i, outcome == 0 ? lo : (outcome == 2 ? hi : v), fl);
    }
    reportArith(ctx, fl);
  }

  void emit(EmitContext& ctx) const override {
    EmitFlags flags = declareArithFlags(ctx);
    beginElemLoop(ctx, ctx.outWidth());
    std::string v = ctx.sink().freshVar("v");
    std::string lo = ctx.sink().freshVar("lo");
    std::string hi = ctx.sink().freshVar("hi");
    ctx.line("double " + v + " = " + ctx.inElem(0, "i", DataType::F64) + ";");
    ctx.line("double " + lo + " = " + ctx.inElem(1, "i", DataType::F64) + ";");
    ctx.line("double " + hi + " = " + ctx.inElem(2, "i", DataType::F64) + ";");
    std::string o = ctx.sink().freshVar("o");
    ctx.line("int " + o + " = " + v + " < " + lo + " ? 0 : (" + v + " > " +
             hi + " ? 2 : 1);");
    ctx.line(ctx.sink().covDecisionStmt(o));
    ctx.line(ctx.storeOutStmt("i",
                              o + " == 0 ? " + lo + " : (" + o + " == 2 ? " +
                                  hi + " : " + v + ")",
                              flags.wrap, flags.prec));
    endElemLoop(ctx);
    finishEmit(ctx, flags);
  }
};

class DeadZoneSpec : public DiscontinuityBase {
 public:
  std::string type() const override { return "DeadZone"; }

  int decisionOutcomes(const Actor&) const override { return 3; }

  void eval(EvalContext& ctx) const override {
    const Actor& a = *ctx.fa().src;
    double lo = a.params().getDouble("start", -0.5);
    double hi = a.params().getDouble("end", 0.5);
    ArithFlags fl;
    for (int i = 0; i < ctx.out().width(); ++i) {
      double v = inD(ctx, 0, i);
      int outcome = v < lo ? 0 : (v > hi ? 2 : 1);
      ctx.decision(outcome);
      storeReal(ctx, 0, i,
                outcome == 0 ? v - lo : (outcome == 2 ? v - hi : 0.0), fl);
    }
    reportArith(ctx, fl);
  }

  void emit(EmitContext& ctx) const override {
    const Actor& a = *ctx.fa().src;
    std::string lo = fmtD(a.params().getDouble("start", -0.5));
    std::string hi = fmtD(a.params().getDouble("end", 0.5));
    EmitFlags flags = declareArithFlags(ctx);
    beginElemLoop(ctx, ctx.outWidth());
    std::string v = ctx.sink().freshVar("v");
    ctx.line("double " + v + " = " + ctx.inElem(0, "i", DataType::F64) + ";");
    std::string o = ctx.sink().freshVar("o");
    ctx.line("int " + o + " = " + v + " < " + lo + " ? 0 : (" + v + " > " +
             hi + " ? 2 : 1);");
    ctx.line(ctx.sink().covDecisionStmt(o));
    ctx.line(ctx.storeOutStmt("i",
                              o + " == 0 ? " + v + " - " + lo + " : (" + o +
                                  " == 2 ? " + v + " - " + hi + " : 0.0)",
                              flags.wrap, flags.prec));
    endElemLoop(ctx);
    finishEmit(ctx, flags);
  }
};

// Hysteresis relay; per-element on/off state.
class RelaySpec : public DiscontinuityBase {
 public:
  std::string type() const override { return "Relay"; }

  int decisionOutcomes(const Actor&) const override { return 2; }

  std::optional<StateSpec> state(const FlatModel& fm,
                                 const FlatActor& fa) const override {
    StateSpec s;
    s.type = DataType::Bool;
    s.width = fm.signal(fa.outputs[0]).width;
    s.initial = {fa.src->params().getBool("initialOn", false) ? 1.0 : 0.0};
    return s;
  }

  void eval(EvalContext& ctx) const override {
    const Actor& a = *ctx.fa().src;
    double onPoint = a.params().getDouble("onPoint", 1.0);
    double offPoint = a.params().getDouble("offPoint", -1.0);
    double onValue = a.params().getDouble("onValue", 1.0);
    double offValue = a.params().getDouble("offValue", 0.0);
    Value& st = ctx.state();
    ArithFlags fl;
    for (int i = 0; i < ctx.out().width(); ++i) {
      double v = inD(ctx, 0, i);
      bool on = st.asBool(i);
      if (v >= onPoint) on = true;
      else if (v <= offPoint) on = false;
      st.setI(i, on ? 1 : 0);
      ctx.decision(on ? 0 : 1);
      storeReal(ctx, 0, i, on ? onValue : offValue, fl);
    }
    reportArith(ctx, fl);
  }

  void emit(EmitContext& ctx) const override {
    const Actor& a = *ctx.fa().src;
    EmitFlags flags = declareArithFlags(ctx);
    beginElemLoop(ctx, ctx.outWidth());
    std::string v = ctx.sink().freshVar("v");
    ctx.line("double " + v + " = " + ctx.inElem(0, "i", DataType::F64) + ";");
    ctx.line("if (" + v + " >= " + fmtD(a.params().getDouble("onPoint", 1.0)) +
             ") " + ctx.state() + "[i] = 1; else if (" + v + " <= " +
             fmtD(a.params().getDouble("offPoint", -1.0)) + ") " + ctx.state() +
             "[i] = 0;");
    ctx.line(ctx.sink().covDecisionStmt(ctx.state() + "[i] ? 0 : 1"));
    ctx.line(ctx.storeOutStmt("i",
                              ctx.state() + "[i] ? " +
                                  fmtD(a.params().getDouble("onValue", 1.0)) +
                                  " : " +
                                  fmtD(a.params().getDouble("offValue", 0.0)),
                              flags.wrap, flags.prec));
    endElemLoop(ctx);
    finishEmit(ctx, flags);
  }
};

class QuantizerSpec : public DiscontinuityBase {
 public:
  std::string type() const override { return "Quantizer"; }

  void eval(EvalContext& ctx) const override {
    double q = ctx.fa().src->params().getDouble("interval", 0.5);
    ArithFlags fl;
    for (int i = 0; i < ctx.out().width(); ++i) {
      double v = inD(ctx, 0, i);
      storeReal(ctx, 0, i, q * std::nearbyint(v / q), fl);
    }
    reportArith(ctx, fl);
  }

  void emit(EmitContext& ctx) const override {
    std::string q = fmtD(ctx.fa().src->params().getDouble("interval", 0.5));
    EmitFlags flags = declareArithFlags(ctx);
    beginElemLoop(ctx, ctx.outWidth());
    ctx.line(ctx.storeOutStmt("i",
                              q + " * nearbyint(" +
                                  ctx.inElem(0, "i", DataType::F64) + " / " +
                                  q + ")",
                              flags.wrap, flags.prec));
    endElemLoop(ctx);
    finishEmit(ctx, flags);
  }

  void validate(const FlatModel& fm, const FlatActor& fa) const override {
    ActorSpec::validate(fm, fa);
    if (fa.src->params().getDouble("interval", 0.5) <= 0.0) {
      throw ModelError("actor '" + fa.path +
                       "': Quantizer interval must be positive");
    }
  }
};

// Limits the per-step change of the signal; previous output kept as state.
class RateLimiterSpec : public DiscontinuityBase {
 public:
  std::string type() const override { return "RateLimiter"; }

  int decisionOutcomes(const Actor&) const override { return 3; }

  std::optional<StateSpec> state(const FlatModel& fm,
                                 const FlatActor& fa) const override {
    StateSpec s;
    s.type = DataType::F64;
    s.width = fm.signal(fa.outputs[0]).width;
    s.initial = {fa.src->params().getDouble("initial", 0.0)};
    return s;
  }

  void eval(EvalContext& ctx) const override {
    const Actor& a = *ctx.fa().src;
    double rising = a.params().getDouble("rising", 1.0);
    double falling = a.params().getDouble("falling", -1.0);
    Value& st = ctx.state();
    ArithFlags fl;
    for (int i = 0; i < ctx.out().width(); ++i) {
      double v = inD(ctx, 0, i);
      double prev = st.f(i);
      double delta = v - prev;
      double r;
      int outcome;
      if (delta > rising) {
        r = prev + rising;
        outcome = 0;
      } else if (delta < falling) {
        r = prev + falling;
        outcome = 2;
      } else {
        r = v;
        outcome = 1;
      }
      ctx.decision(outcome);
      st.setF(i, r);
      storeReal(ctx, 0, i, r, fl);
    }
    reportArith(ctx, fl);
  }

  void emit(EmitContext& ctx) const override {
    const Actor& a = *ctx.fa().src;
    std::string rising = fmtD(a.params().getDouble("rising", 1.0));
    std::string falling = fmtD(a.params().getDouble("falling", -1.0));
    EmitFlags flags = declareArithFlags(ctx);
    beginElemLoop(ctx, ctx.outWidth());
    std::string v = ctx.sink().freshVar("v");
    std::string d = ctx.sink().freshVar("d");
    std::string r = ctx.sink().freshVar("r");
    std::string o = ctx.sink().freshVar("o");
    ctx.line("double " + v + " = " + ctx.inElem(0, "i", DataType::F64) + ";");
    ctx.line("double " + d + " = " + v + " - " + ctx.state() + "[i];");
    ctx.line("double " + r + "; int " + o + ";");
    ctx.line("if (" + d + " > " + rising + ") { " + r + " = " + ctx.state() +
             "[i] + " + rising + "; " + o + " = 0; } else if (" + d + " < " +
             falling + ") { " + r + " = " + ctx.state() + "[i] + " + falling +
             "; " + o + " = 2; } else { " + r + " = " + v + "; " + o +
             " = 1; }");
    ctx.line(ctx.sink().covDecisionStmt(o));
    ctx.line(ctx.state() + "[i] = " + r + ";");
    ctx.line(ctx.storeOutStmt("i", r, flags.wrap, flags.prec));
    endElemLoop(ctx);
    finishEmit(ctx, flags);
  }
};

class WrapToZeroSpec : public DiscontinuityBase {
 public:
  std::string type() const override { return "WrapToZero"; }

  int decisionOutcomes(const Actor&) const override { return 2; }

  void eval(EvalContext& ctx) const override {
    double thr = ctx.fa().src->params().getDouble("threshold", 255.0);
    ArithFlags fl;
    for (int i = 0; i < ctx.out().width(); ++i) {
      double v = inD(ctx, 0, i);
      bool wrap = v > thr;
      ctx.decision(wrap ? 0 : 1);
      storeReal(ctx, 0, i, wrap ? 0.0 : v, fl);
    }
    reportArith(ctx, fl);
  }

  void emit(EmitContext& ctx) const override {
    std::string thr =
        fmtD(ctx.fa().src->params().getDouble("threshold", 255.0));
    EmitFlags flags = declareArithFlags(ctx);
    beginElemLoop(ctx, ctx.outWidth());
    std::string v = ctx.sink().freshVar("v");
    ctx.line("double " + v + " = " + ctx.inElem(0, "i", DataType::F64) + ";");
    std::string w = ctx.sink().freshVar("w");
    ctx.line("int " + w + " = (" + v + " > " + thr + ");");
    ctx.line(ctx.sink().covDecisionStmt(w + " ? 0 : 1"));
    ctx.line(ctx.storeOutStmt("i", w + " ? 0.0 : " + v, flags.wrap,
                              flags.prec));
    endElemLoop(ctx);
    finishEmit(ctx, flags);
  }
};

}  // namespace

void registerDiscontinuityActors(
    std::vector<std::unique_ptr<ActorSpec>>& out) {
  out.push_back(std::make_unique<SaturationSpec>());
  out.push_back(std::make_unique<SaturationDynamicSpec>());
  out.push_back(std::make_unique<DeadZoneSpec>());
  out.push_back(std::make_unique<RelaySpec>());
  out.push_back(std::make_unique<QuantizerSpec>());
  out.push_back(std::make_unique<RateLimiterSpec>());
  out.push_back(std::make_unique<WrapToZeroSpec>());
}

}  // namespace accmos
