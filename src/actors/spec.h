// The actor template library (paper §3.3 "Actor Translation" and §3.4:
// "specialized code template libraries have been crafted for over fifty
// commonly used actors").
//
// Each actor type is described by one ActorSpec with three backends:
//   - eval():   boxed-value semantics for the interpreting engine (SSE),
//   - emit():   the C++ code template AccMoS expands into simulation code,
// plus structural metadata (ports, output types, state), coverage traits
// (Algorithm 1's isBranchActor / containBooleanLogic / isCombinationCondition)
// and diagnosis traits (which checks apply to a given type+operator — e.g.
// Product '/' needs division-by-zero, '*' does not).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cov/coverage.h"
#include "diag/diagnosis.h"
#include "graph/catalog.h"
#include "graph/flat_model.h"
#include "ir/arith.h"
#include "ir/value.h"

namespace accmos {

// `name` mapped to a valid C identifier fragment: alphanumerics kept,
// everything else '_', 'm' prefixed when empty or digit-leading. Lossy —
// distinct names can sanitize identically ("A.B" and "A_B"), so generated
// symbols built from user-controlled names must also carry a unique index.
std::string sanitizeIdent(const std::string& name);

// The generated-code global for data store `index`. The index makes the
// symbol collision-free even when two store names sanitize identically; the
// sanitized name keeps the source readable.
std::string dataStoreSymbol(int index, const std::string& name);

// Per-actor persistent state (delay lines, integrator accumulators,
// hysteresis flags, RNG streams).
struct StateSpec {
  DataType type = DataType::F64;
  int width = 1;
  std::vector<double> initial;  // broadcast when shorter than width
};

// ---------------------------------------------------------------------------
// Interpreter-side evaluation context.
// ---------------------------------------------------------------------------

class EvalContext {
 public:
  EvalContext(const FlatModel& fm, std::vector<Value>& signals,
              std::vector<Value>& stores)
      : fm_(&fm), signals_(&signals), stores_(&stores) {}

  // Per-actor cursor, set by the engine before each eval/update call.
  void setActor(const FlatActor* fa, Value* state) {
    fa_ = fa;
    state_ = state;
  }
  void setStep(uint64_t step) { step_ = step; }
  void setInstrumentation(const CoveragePlan* covPlan, CoverageRecorder* cov,
                          const DiagnosisPlan* diagPlan, DiagnosticSink* diag) {
    covPlan_ = covPlan;
    cov_ = cov;
    diagPlan_ = diagPlan;
    diag_ = diag;
  }
  void setStopFlag(bool* stop) { stop_ = stop; }
  void setTestInput(const Value* v) { testInput_ = v; }

  const FlatModel& fm() const { return *fm_; }
  const FlatActor& fa() const { return *fa_; }
  uint64_t step() const { return step_; }

  const Value& in(int port) const {
    return (*signals_)[static_cast<size_t>(fa_->inputs[static_cast<size_t>(port)])];
  }
  Value& out(int port = 0) {
    return (*signals_)[static_cast<size_t>(fa_->outputs[static_cast<size_t>(port)])];
  }
  Value& state() { return *state_; }
  Value& store() { return (*stores_)[static_cast<size_t>(fa_->dataStore)]; }
  const Value* testInput() const { return testInput_; }

  int numInputs() const { return static_cast<int>(fa_->inputs.size()); }

  // Coverage marks (no-ops when coverage collection is off — the fast
  // simulation modes the paper compares against cannot collect coverage).
  void decision(int outcome) {
    if (cov_ != nullptr) cov_->markDecision(covPlan_->info(fa_->id), outcome);
  }
  void condition(int idx, bool value) {
    if (cov_ != nullptr) {
      cov_->markCondition(covPlan_->info(fa_->id), idx, value);
    }
  }
  void mcdc(int idx, bool value) {
    if (cov_ != nullptr) cov_->markMcdc(covPlan_->info(fa_->id), idx, value);
  }

  // Calculation diagnosis; filtered by the diagnosis plan.
  bool diagOn(DiagKind kind) const {
    return diag_ != nullptr && diagPlan_->enabled(fa_->id, kind);
  }
  void reportDiag(DiagKind kind, const std::string& message = "") {
    if (diagOn(kind)) diag_->report(fa_->id, fa_->path, kind, step_, message);
  }

  void requestStop() {
    if (stop_ != nullptr) *stop_ = true;
  }

 private:
  const FlatModel* fm_;
  std::vector<Value>* signals_;
  std::vector<Value>* stores_;
  const FlatActor* fa_ = nullptr;
  Value* state_ = nullptr;
  uint64_t step_ = 0;
  const CoveragePlan* covPlan_ = nullptr;
  CoverageRecorder* cov_ = nullptr;
  const DiagnosisPlan* diagPlan_ = nullptr;
  DiagnosticSink* diag_ = nullptr;
  bool* stop_ = nullptr;
  const Value* testInput_ = nullptr;
};

// ---------------------------------------------------------------------------
// Codegen-side emission context.
// ---------------------------------------------------------------------------

// Implemented by codegen::Emitter; specs talk to it through this interface
// so the actor library does not depend on the codegen module.
class EmitSink {
 public:
  virtual ~EmitSink() = default;

  // Appends one statement line to the current actor's compute code.
  virtual void line(const std::string& stmt) = 0;

  // Appends a statement to the current actor's state-update section, which
  // the synthesized model function runs after all actors computed their
  // outputs (the two-phase step of delay-class actors). updateLinePre
  // prepends to the section (declarations that must precede loops already
  // emitted). diagCallInUpdate mirrors diagCall but places the call in the
  // update section.
  virtual void updateLine(const std::string& stmt) = 0;
  virtual void updateLinePre(const std::string& stmt) = 0;
  virtual void diagCallInUpdate(
      const std::vector<std::pair<DiagKind, std::string>>& flags) = 0;

  // Registers a per-actor diagnostic function (the paper's Fig. 4 shape:
  // implementation elsewhere, call at a specific location) and emits the
  // call. `flags` pairs a diagnostic kind with the int variable holding
  // whether it fired this step.
  virtual void diagCall(
      const std::vector<std::pair<DiagKind, std::string>>& flags) = 0;

  // Instrumentation statements (empty strings when the metric is off).
  // Decision: `outcomeExpr` is an int expression selecting the outcome slot.
  // Condition: marks the true/false slot of condition `condIdx` from the
  // runtime value of `boolExpr`. MC/DC: marks independence of condition
  // `condIdx` shown with value `valExpr`; the caller guards the statement
  // with the masking condition.
  virtual std::string covDecisionStmt(const std::string& outcomeExpr) = 0;
  virtual std::string covConditionStmt(int condIdx,
                                       const std::string& boolExpr) = 0;
  virtual std::string covMcdcStmt(int condIdx, const std::string& valExpr) = 0;

  virtual bool covOn() const = 0;
  virtual bool diagOn(DiagKind kind) const = 0;

  // Fresh local variable name unique within the model function.
  virtual std::string freshVar(const std::string& hint) = 0;
};

class EmitContext {
 public:
  EmitContext(const FlatModel& fm, const FlatActor& fa, EmitSink& sink)
      : fm_(&fm), fa_(&fa), sink_(&sink) {}

  const FlatModel& fm() const { return *fm_; }
  const FlatActor& fa() const { return *fa_; }
  EmitSink& sink() { return *sink_; }

  // Variable names used by the emitter's declarations.
  std::string in(int port) const {
    return "s" + std::to_string(fa_->inputs[static_cast<size_t>(port)]);
  }
  std::string out(int port = 0) const {
    return "s" + std::to_string(fa_->outputs[static_cast<size_t>(port)]);
  }
  std::string state() const { return "st" + std::to_string(fa_->id); }
  std::string store() const {
    return dataStoreSymbol(
        fa_->dataStore,
        fm_->dataStores[static_cast<size_t>(fa_->dataStore)].name);
  }

  DataType inType(int port) const {
    return fm_->signal(fa_->inputs[static_cast<size_t>(port)]).type;
  }
  int inWidth(int port) const {
    return fm_->signal(fa_->inputs[static_cast<size_t>(port)]).width;
  }
  DataType outType(int port = 0) const {
    return fm_->signal(fa_->outputs[static_cast<size_t>(port)]).type;
  }
  int outWidth(int port = 0) const {
    return fm_->signal(fa_->outputs[static_cast<size_t>(port)]).width;
  }
  int numInputs() const { return static_cast<int>(fa_->inputs.size()); }

  void line(const std::string& stmt) { sink_->line(stmt); }

  // Reads input `port` element `idx` widened to the compute domain of type
  // `domain` ("double" or "int64_t"), with defined float->int conversion.
  std::string inElem(int port, const std::string& idx, DataType domain) const;

  // `expr` is a value in the compute domain; emits the statement storing it
  // into output element `idx`, appending wrap/precision flag updates to the
  // given flag variables when non-empty.
  std::string storeOutStmt(const std::string& idx, const std::string& expr,
                           const std::string& wrapFlagVar,
                           const std::string& precFlagVar, int port = 0) const;

 private:
  const FlatModel* fm_;
  const FlatActor* fa_;
  EmitSink* sink_;
};

// ---------------------------------------------------------------------------
// The spec itself.
// ---------------------------------------------------------------------------

class ActorSpec {
 public:
  virtual ~ActorSpec() = default;

  virtual std::string type() const = 0;

  // Structure.
  virtual ActorCatalog::PortLayout ports(const Actor& a) const = 0;
  virtual bool isDelayClass(const Actor&) const { return false; }
  virtual DataType outputType(const Actor& a, int /*port*/) const {
    return a.dtype();
  }
  virtual int outputWidth(const Actor& a, int /*port*/) const {
    return a.width();
  }
  virtual std::optional<StateSpec> state(const FlatModel&,
                                         const FlatActor&) const {
    return std::nullopt;
  }
  // Post-flatten structural validation (width/type consistency, parameter
  // sanity). Throws ModelError.
  virtual void validate(const FlatModel&, const FlatActor&) const;

  // Coverage traits (Algorithm 1 lines 4-10).
  virtual bool countsForActorCoverage(const Actor&) const { return true; }
  virtual int decisionOutcomes(const Actor&) const { return 0; }
  virtual int numConditions(const Actor&) const { return 0; }
  virtual bool isCombinationCondition(const Actor&) const { return false; }
  virtual bool isBranchActor(const Actor&) const { return false; }

  // Diagnosis traits: which checks apply to this instance (depends on type,
  // operator and port types — Algorithm 1 line 15 / §3.2.B).
  virtual std::vector<DiagKind> diagnostics(const FlatModel&,
                                            const FlatActor&) const {
    return {};
  }

  // Interpreter semantics.
  virtual void eval(EvalContext& ctx) const = 0;
  // State latch phase for delay-class / stateful actors.
  virtual void update(EvalContext&) const {}

  // Code template expansion (paper §3.3).
  virtual void emit(EmitContext& ctx) const = 0;
};

// ---------------------------------------------------------------------------
// Registry of all built-in actor specs; doubles as the flattener's catalog.
// ---------------------------------------------------------------------------

class Registry : public ActorCatalog {
 public:
  static const Registry& instance();

  const ActorSpec* find(const std::string& type) const;
  const ActorSpec& get(const std::string& type) const;  // throws ModelError
  const ActorSpec& get(const FlatActor& fa) const { return get(fa.type()); }
  std::vector<std::string> typeNames() const;

  // ActorCatalog.
  PortLayout ports(const Actor& actor) const override;
  bool isDelayClass(const Actor& actor) const override;
  DataType outputType(const Actor& actor, int port) const override;
  int outputWidth(const Actor& actor, int port) const override;

 private:
  Registry();
  std::vector<std::unique_ptr<ActorSpec>> specs_;
  const ActorSpec* lookup(const std::string& type) const;
};

// Trait adaptors used to build the plans from the registry.
CovTraits covTraitsFor(const FlatActor& fa);
std::vector<DiagKind> diagKindsFor(const FlatModel& fm, const FlatActor& fa);

// Validates every actor of a flattened model against its spec.
void validateFlatModel(const FlatModel& fm);

// Registration hook used by the per-category translation units.
void registerSourceActors(std::vector<std::unique_ptr<ActorSpec>>& out);
void registerSinkActors(std::vector<std::unique_ptr<ActorSpec>>& out);
void registerMathActors(std::vector<std::unique_ptr<ActorSpec>>& out);
void registerLogicActors(std::vector<std::unique_ptr<ActorSpec>>& out);
void registerRoutingActors(std::vector<std::unique_ptr<ActorSpec>>& out);
void registerDiscreteActors(std::vector<std::unique_ptr<ActorSpec>>& out);
void registerDiscontinuityActors(std::vector<std::unique_ptr<ActorSpec>>& out);
void registerLookupActors(std::vector<std::unique_ptr<ActorSpec>>& out);
void registerConversionActors(std::vector<std::unique_ptr<ActorSpec>>& out);
void registerContinuousActors(std::vector<std::unique_ptr<ActorSpec>>& out);

}  // namespace accmos
