#include "actors/spec.h"

#include <algorithm>
#include <cctype>

namespace accmos {

std::string sanitizeIdent(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '_');
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0])) != 0) {
    out.insert(out.begin(), 'm');
  }
  return out;
}

std::string dataStoreSymbol(int index, const std::string& name) {
  return "ds" + std::to_string(index) + "_" + sanitizeIdent(name);
}

void ActorSpec::validate(const FlatModel& fm, const FlatActor& fa) const {
  // Default structural check: element-wise actors need every input to be
  // either scalar (broadcast) or exactly the output width.
  if (fa.outputs.empty()) return;
  int w = fm.signal(fa.outputs[0]).width;
  for (size_t p = 0; p < fa.inputs.size(); ++p) {
    int iw = fm.signal(fa.inputs[p]).width;
    if (iw != 1 && iw != w) {
      throw ModelError("actor '" + fa.path + "': input " +
                       std::to_string(p + 1) + " width " + std::to_string(iw) +
                       " incompatible with output width " + std::to_string(w));
    }
  }
}

// ---------------------------------------------------------------------------
// EmitContext helpers.
// ---------------------------------------------------------------------------

std::string EmitContext::inElem(int port, const std::string& idx,
                                DataType domain) const {
  DataType t = inType(port);
  // Scalar inputs broadcast over vector outputs.
  std::string elem = in(port) + "[" +
                     (inWidth(port) == 1 ? std::string("0") : idx) + "]";
  if (isFloatType(domain)) {
    if (isFloatType(t)) return "(double)" + elem;
    if (t == DataType::U64) return "(double)(uint64_t)" + elem;
    return "(double)" + elem;
  }
  // Integer domain.
  if (isFloatType(t)) return "accmos_f2i(" + elem + ")";
  return "(int64_t)" + elem;
}

std::string EmitContext::storeOutStmt(const std::string& idx,
                                      const std::string& expr,
                                      const std::string& wrapFlagVar,
                                      const std::string& precFlagVar,
                                      int port) const {
  DataType t = outType(port);
  std::string elem = out(port) + "[" + idx + "]";
  std::string ct(dataTypeCpp(t));
  if (t == DataType::F64) {
    return elem + " = (" + expr + ");";
  }
  if (t == DataType::F32) {
    std::string s = "{ double _v = (" + expr + "); " + elem + " = (float)_v;";
    if (!precFlagVar.empty()) {
      s += " if (accmos_isfinite(_v) && (double)" + elem + " != _v) " +
           precFlagVar + " = 1;";
    }
    return s + " }";
  }
  // Integer/bool output. The expression may be a wide integer (__int128)
  // or a double; the runtime helpers handle both via overloads mirroring
  // wrapStore()/Value::store().
  std::string s = "{ accmos_wrapres _w = accmos_store_" +
                  std::string(dataTypeName(t)) + "(" + expr + "); " + elem +
                  " = (" + ct + ")_w.value;";
  if (!wrapFlagVar.empty()) s += " " + wrapFlagVar + " |= _w.wrapped;";
  if (!precFlagVar.empty()) s += " " + precFlagVar + " |= _w.prec;";
  return s + " }";
}

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

Registry::Registry() {
  registerSourceActors(specs_);
  registerSinkActors(specs_);
  registerMathActors(specs_);
  registerLogicActors(specs_);
  registerRoutingActors(specs_);
  registerDiscreteActors(specs_);
  registerDiscontinuityActors(specs_);
  registerLookupActors(specs_);
  registerConversionActors(specs_);
  registerContinuousActors(specs_);
}

const Registry& Registry::instance() {
  static const Registry reg;
  return reg;
}

const ActorSpec* Registry::lookup(const std::string& type) const {
  for (const auto& s : specs_) {
    if (s->type() == type) return s.get();
  }
  return nullptr;
}

const ActorSpec* Registry::find(const std::string& type) const {
  return lookup(type);
}

const ActorSpec& Registry::get(const std::string& type) const {
  const ActorSpec* s = lookup(type);
  if (s == nullptr) throw ModelError("unknown actor type '" + type + "'");
  return *s;
}

std::vector<std::string> Registry::typeNames() const {
  std::vector<std::string> names;
  names.reserve(specs_.size());
  for (const auto& s : specs_) names.push_back(s->type());
  std::sort(names.begin(), names.end());
  return names;
}

ActorCatalog::PortLayout Registry::ports(const Actor& actor) const {
  return get(actor.type()).ports(actor);
}

bool Registry::isDelayClass(const Actor& actor) const {
  return get(actor.type()).isDelayClass(actor);
}

DataType Registry::outputType(const Actor& actor, int port) const {
  return get(actor.type()).outputType(actor, port);
}

int Registry::outputWidth(const Actor& actor, int port) const {
  return get(actor.type()).outputWidth(actor, port);
}

// ---------------------------------------------------------------------------
// Plan adaptors.
// ---------------------------------------------------------------------------

CovTraits covTraitsFor(const FlatActor& fa) {
  const ActorSpec& spec = Registry::instance().get(fa);
  CovTraits t;
  t.countsForActorCoverage = spec.countsForActorCoverage(*fa.src);
  t.decisionOutcomes = spec.decisionOutcomes(*fa.src);
  t.numConditions = spec.numConditions(*fa.src);
  t.mcdc = spec.isCombinationCondition(*fa.src);
  return t;
}

std::vector<DiagKind> diagKindsFor(const FlatModel& fm, const FlatActor& fa) {
  return Registry::instance().get(fa).diagnostics(fm, fa);
}

void validateFlatModel(const FlatModel& fm) {
  for (const auto& fa : fm.actors) {
    Registry::instance().get(fa).validate(fm, fa);
  }
}

}  // namespace accmos
