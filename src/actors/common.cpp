#include "actors/common.h"

#include <cstdio>

namespace accmos {

std::string fmtD(double v) {
  if (std::isnan(v)) return "(0.0/0.0)";
  if (std::isinf(v)) return v > 0 ? "(1.0/0.0)" : "(-1.0/0.0)";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  std::string s(buf);
  // Ensure the literal parses as double, not int.
  if (s.find_first_of(".eEnN") == std::string::npos) s += ".0";
  return s;
}

std::string fmtI(int64_t v) {
  if (v == std::numeric_limits<int64_t>::min()) {
    return "(-9223372036854775807LL - 1)";
  }
  return std::to_string(v) + "LL";
}

std::vector<DiagKind> arithDiags(const FlatModel& fm, const FlatActor& fa) {
  std::vector<DiagKind> kinds;
  if (fa.outputs.empty()) return kinds;
  DataType outT = fm.signal(fa.outputs[0]).type;
  if (isIntType(outT) || outT == DataType::Bool) {
    kinds.push_back(saturating(fa) ? DiagKind::SaturateOnOverflow
                                   : DiagKind::WrapOnOverflow);
  } else {
    kinds.push_back(DiagKind::NanInf);
  }
  bool downcast = false;
  bool precision = false;
  for (int sig : fa.inputs) {
    DataType inT = fm.signal(sig).type;
    downcast = downcast || isDowncast(inT, outT);
    precision = precision || losesPrecision(inT, outT);
  }
  if (downcast) kinds.push_back(DiagKind::Downcast);
  if (precision) kinds.push_back(DiagKind::PrecisionLoss);
  return kinds;
}

std::vector<std::pair<DiagKind, std::string>> EmitFlags::asDiagCall() const {
  std::vector<std::pair<DiagKind, std::string>> out;
  if (!wrap.empty()) out.emplace_back(DiagKind::WrapOnOverflow, wrap);
  if (!sat.empty()) out.emplace_back(DiagKind::SaturateOnOverflow, sat);
  if (!prec.empty()) out.emplace_back(DiagKind::PrecisionLoss, prec);
  if (!nan.empty()) out.emplace_back(DiagKind::NanInf, nan);
  return out;
}

EmitFlags declareArithFlags(EmitContext& ctx) {
  EmitFlags flags;
  EmitSink& sink = ctx.sink();
  if (sink.diagOn(DiagKind::WrapOnOverflow)) {
    flags.wrap = sink.freshVar("wf");
    ctx.line("int " + flags.wrap + " = 0;");
  }
  if (sink.diagOn(DiagKind::SaturateOnOverflow)) {
    flags.sat = sink.freshVar("sf");
    ctx.line("int " + flags.sat + " = 0;");
  }
  if (sink.diagOn(DiagKind::PrecisionLoss)) {
    flags.prec = sink.freshVar("pf");
    ctx.line("int " + flags.prec + " = 0;");
  }
  if (sink.diagOn(DiagKind::NanInf)) {
    flags.nan = sink.freshVar("nf");
    ctx.line("int " + flags.nan + " = 0;");
  }
  return flags;
}

std::string storeOutSat(EmitContext& ctx, const std::string& idx,
                        const std::string& expr, const EmitFlags& flags,
                        bool sat) {
  DataType t = ctx.outType();
  if (!sat || isFloatType(t)) {
    return ctx.storeOutStmt(idx, expr, flags.wrap, flags.prec);
  }
  std::string elem = ctx.out() + "[" + idx + "]";
  std::string s = "{ accmos_wrapres _w = accmos_sat_" +
                  std::string(dataTypeName(t)) + "(" + expr + "); " + elem +
                  " = (" + std::string(dataTypeCpp(t)) + ")_w.value;";
  if (!flags.sat.empty()) s += " " + flags.sat + " |= _w.wrapped;";
  if (!flags.prec.empty()) s += " " + flags.prec + " |= _w.prec;";
  return s + " }";
}

void beginElemLoop(EmitContext& ctx, int width) {
  ctx.line("for (int i = 0; i < " + std::to_string(width) + "; ++i) {");
}

void endElemLoop(EmitContext& ctx) { ctx.line("}"); }

std::string nanCheckStmt(const EmitFlags& flags, const std::string& expr) {
  if (flags.nan.empty()) return "";
  return "if (!accmos_isfinite(" + expr + ")) " + flags.nan + " = 1;";
}

void finishEmit(EmitContext& ctx, const EmitFlags& flags) {
  auto call = flags.asDiagCall();
  if (ctx.sink().diagOn(DiagKind::Downcast)) {
    // Static property (paper Fig. 4 line 4): fires on every execution.
    call.emplace_back(DiagKind::Downcast, "1");
  }
  ctx.sink().diagCall(call);
}

std::vector<char> parseOps(const Actor& a, const std::string& def,
                           const std::string& allowed) {
  std::string ops = a.params().getString("ops", def);
  if (ops.empty()) ops = def;
  std::vector<char> out;
  for (char c : ops) {
    if (allowed.find(c) == std::string::npos) {
      throw ModelError("actor '" + a.name() + "': bad ops character '" +
                       std::string(1, c) + "' (allowed: " + allowed + ")");
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace accmos
