// DataTypeConversion: the actor whose generated diagnosis exercises the
// downcast / precision-loss / wrap templates (paper Fig. 4 and the second
// injected error of the CSEV case study, where a product's int16 output
// narrows int32 voltage*current).
#include "actors/common.h"

namespace accmos {
namespace {

class DataTypeConversionSpec : public ActorSpec {
 public:
  std::string type() const override { return "DataTypeConversion"; }

  ActorCatalog::PortLayout ports(const Actor&) const override {
    return {1, 1};
  }

  std::vector<DiagKind> diagnostics(const FlatModel& fm,
                                    const FlatActor& fa) const override {
    std::vector<DiagKind> kinds;
    DataType inT = fm.signal(fa.inputs[0]).type;
    DataType outT = fm.signal(fa.outputs[0]).type;
    if (isIntType(outT) || outT == DataType::Bool) {
      kinds.push_back(saturating(fa) ? DiagKind::SaturateOnOverflow
                                     : DiagKind::WrapOnOverflow);
    }
    if (isDowncast(inT, outT)) kinds.push_back(DiagKind::Downcast);
    if (losesPrecision(inT, outT)) kinds.push_back(DiagKind::PrecisionLoss);
    return kinds;
  }

  void eval(EvalContext& ctx) const override {
    ArithFlags fl;
    if (saturating(ctx.fa()) && !ctx.out().isFloat()) {
      // Saturating conversion: clamp into the target range.
      Value& out = ctx.out();
      const Value& in = ctx.in(0);
      for (int i = 0; i < out.width(); ++i) {
        int src = in.width() == 1 ? 0 : i;
        RealStoreResult r;
        if (in.isFloat()) {
          r = storeDoubleAsIntSat(out.type(), in.f(src));
        } else {
          IntResult w = satStore(out.type(), static_cast<Int128>(in.i(src)));
          r.value = w.value;
          r.wrapped = w.wrapped;
        }
        out.setI(i, r.value);
        fl.sat = fl.sat || r.wrapped;
        fl.prec = fl.prec || r.precisionLoss;
      }
    } else {
      auto flags = ctx.out().convertFrom(ctx.in(0));
      fl.wrap = flags.wrapped;
      fl.prec = flags.precisionLoss;
    }
    reportArith(ctx, fl);
  }

  void emit(EmitContext& ctx) const override {
    DataType inT = ctx.inType(0);
    DataType outT = ctx.outType();
    EmitFlags flags = declareArithFlags(ctx);
    beginElemLoop(ctx, ctx.outWidth());
    if (isFloatType(outT) && !isFloatType(inT)) {
      // int -> float: flag precision loss when the integer does not
      // round-trip (mirrors Value::convertFrom).
      bool uns = isUnsignedInt(inT);
      std::string x = ctx.sink().freshVar("x");
      std::string v = ctx.sink().freshVar("v");
      std::string elem =
          ctx.in(0) + "[" + (ctx.inWidth(0) == 1 ? "0" : "i") + "]";
      if (uns) {
        ctx.line("uint64_t " + x + " = (uint64_t)" + elem + ";");
      } else {
        ctx.line("int64_t " + x + " = " + ctx.inElem(0, "i", DataType::I64) +
                 ";");
      }
      ctx.line("double " + v + " = (double)" + x + ";");
      ctx.line(ctx.out() + "[i] = (" + std::string(dataTypeCpp(outT)) + ")" +
               v + ";");
      if (!flags.prec.empty()) {
        ctx.line("if ((double)" + ctx.out() + "[i] != " + v + ") " +
                 flags.prec + " = 1;");
        if (uns) {
          ctx.line("else if ((uint64_t)(long double)" + v + " != " + x + ") " +
                   flags.prec + " = 1;");
        } else {
          ctx.line("else if ((int64_t)" + v + " != " + x + ") " + flags.prec +
                   " = 1;");
        }
      }
    } else if (isFloatType(outT)) {
      // float -> float.
      ctx.line(ctx.storeOutStmt("i", ctx.inElem(0, "i", DataType::F64),
                                flags.wrap, flags.prec));
    } else if (isFloatType(inT)) {
      // float -> int: round-to-nearest; wrap or saturate per the actor's
      // arithmetic option.
      ctx.line(storeOutSat(ctx, "i",
                           "(double)(" + ctx.in(0) + "[" +
                               (ctx.inWidth(0) == 1 ? "0" : "i") + "])",
                           flags, saturating(ctx.fa())));
    } else {
      // int -> int: two's-complement wrap or saturating clamp.
      ctx.line(storeOutSat(ctx, "i",
                           "(__int128)" + ctx.inElem(0, "i", DataType::I64),
                           flags, saturating(ctx.fa())));
    }
    endElemLoop(ctx);
    finishEmit(ctx, flags);
  }
};

}  // namespace

void registerConversionActors(std::vector<std::unique_ptr<ActorSpec>>& out) {
  out.push_back(std::make_unique<DataTypeConversionSpec>());
}

}  // namespace accmos
