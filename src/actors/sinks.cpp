// Sink actors: Outport, Terminator, Scope, Display, Assertion,
// StopSimulation.
#include "actors/common.h"

namespace accmos {
namespace {

class OutportSpec : public ActorSpec {
 public:
  std::string type() const override { return "Outport"; }
  ActorCatalog::PortLayout ports(const Actor&) const override {
    return {1, 0};
  }
  // The engine reads the input signal as a model output after each step.
  void eval(EvalContext&) const override {}
  void emit(EmitContext&) const override {}
};

class TerminatorSpec : public ActorSpec {
 public:
  std::string type() const override { return "Terminator"; }
  ActorCatalog::PortLayout ports(const Actor&) const override {
    return {1, 0};
  }
  void eval(EvalContext&) const override {}
  void emit(EmitContext&) const override {}
};

// Scope and Display are signal monitors: the engines auto-collect their
// input signals (paper Fig. 3's outputCollect path).
class ScopeSpec : public ActorSpec {
 public:
  std::string type() const override { return "Scope"; }
  ActorCatalog::PortLayout ports(const Actor& a) const override {
    return {static_cast<int>(a.params().getInt("inputs", 1)), 0};
  }
  void eval(EvalContext&) const override {}
  void emit(EmitContext&) const override {}
};

class DisplaySpec : public ActorSpec {
 public:
  std::string type() const override { return "Display"; }
  ActorCatalog::PortLayout ports(const Actor&) const override {
    return {1, 0};
  }
  void eval(EvalContext&) const override {}
  void emit(EmitContext&) const override {}
};

class AssertionSpec : public ActorSpec {
 public:
  std::string type() const override { return "Assertion"; }
  ActorCatalog::PortLayout ports(const Actor&) const override {
    return {1, 0};
  }

  std::vector<DiagKind> diagnostics(const FlatModel&,
                                    const FlatActor&) const override {
    return {DiagKind::AssertionFailed};
  }

  void eval(EvalContext& ctx) const override {
    const Value& v = ctx.in(0);
    bool ok = true;
    for (int i = 0; i < v.width(); ++i) ok = ok && v.asBool(i);
    if (!ok) {
      ctx.reportDiag(DiagKind::AssertionFailed,
                     ctx.fa().src->params().getString("message"));
      if (ctx.fa().src->params().getBool("stopOnFail", false)) {
        ctx.requestStop();
      }
    }
  }

  void emit(EmitContext& ctx) const override {
    std::string ok = ctx.sink().freshVar("ok");
    ctx.line("int " + ok + " = 1;");
    beginElemLoop(ctx, ctx.inWidth(0));
    ctx.line(ok + " &= (" + ctx.in(0) + "[i] != 0);");
    endElemLoop(ctx);
    if (ctx.sink().diagOn(DiagKind::AssertionFailed)) {
      ctx.sink().diagCall({{DiagKind::AssertionFailed, "!" + ok}});
    }
    if (ctx.fa().src->params().getBool("stopOnFail", false)) {
      ctx.line("if (!" + ok + ") accmos_stop = 1;");
    }
  }
};

class StopSimulationSpec : public ActorSpec {
 public:
  std::string type() const override { return "StopSimulation"; }
  ActorCatalog::PortLayout ports(const Actor&) const override {
    return {1, 0};
  }

  void eval(EvalContext& ctx) const override {
    const Value& v = ctx.in(0);
    for (int i = 0; i < v.width(); ++i) {
      if (v.asBool(i)) {
        ctx.requestStop();
        return;
      }
    }
  }

  void emit(EmitContext& ctx) const override {
    beginElemLoop(ctx, ctx.inWidth(0));
    ctx.line("if (" + ctx.in(0) + "[i] != 0) accmos_stop = 1;");
    endElemLoop(ctx);
  }
};

}  // namespace

void registerSinkActors(std::vector<std::unique_ptr<ActorSpec>>& out) {
  out.push_back(std::make_unique<OutportSpec>());
  out.push_back(std::make_unique<TerminatorSpec>());
  out.push_back(std::make_unique<ScopeSpec>());
  out.push_back(std::make_unique<DisplaySpec>());
  out.push_back(std::make_unique<AssertionSpec>());
  out.push_back(std::make_unique<StopSimulationSpec>());
}

}  // namespace accmos
