// Calculation actors: Sum, Product, Gain, Bias, Abs, Sign, UnaryMinus,
// Sqrt, Math, Trigonometry, MinMax, Rounding, Polynomial, DotProduct,
// SumOfElements, ProductOfElements.
//
// Integer semantics: Simulink accumulates in the output type, so every
// partial operation wraps (and flags) at the output width — that fold is
// exactly what the paper's wrap-on-overflow diagnosis observes.
#include <cmath>

#include "actors/common.h"

namespace accmos {
namespace {

// Folds one partial integer result into the output type, accumulating the
// wrap (or saturate) flag (shared by Sum/Product/DotProduct/...).
int64_t foldInt(DataType t, Int128 acc, ArithFlags& fl, bool sat = false) {
  if (sat) {
    IntResult r = satStore(t, acc);
    fl.sat = fl.sat || r.wrapped;
    return r.value;
  }
  IntResult r = wrapStore(t, acc);
  fl.wrap = fl.wrap || r.wrapped;
  return r.value;
}

// Emits the generated-code equivalent: acc = wrap(expr), flag |= wrapped
// (or the saturating store when the actor uses saturate-on-overflow).
std::string foldIntStmt(EmitContext& ctx, const std::string& accVar,
                        const std::string& expr, const EmitFlags& flags,
                        bool sat) {
  DataType t = ctx.outType();
  std::string fn = sat ? "accmos_sat_" : "accmos_store_";
  const std::string& flagVar = sat ? flags.sat : flags.wrap;
  std::string s = "{ accmos_wrapres _w = " + fn +
                  std::string(dataTypeName(t)) + "((__int128)" + expr + "); " +
                  accVar + " = _w.value;";
  if (!flagVar.empty()) s += " " + flagVar + " |= _w.wrapped;";
  return s + " }";
}

// ---------------------------------------------------------------------------

class SumSpec : public ActorSpec {
 public:
  std::string type() const override { return "Sum"; }

  ActorCatalog::PortLayout ports(const Actor& a) const override {
    return {static_cast<int>(parseOps(a, "++", "+-").size()), 1};
  }

  std::vector<DiagKind> diagnostics(const FlatModel& fm,
                                    const FlatActor& fa) const override {
    return arithDiags(fm, fa);
  }

  void eval(EvalContext& ctx) const override {
    auto ops = parseOps(*ctx.fa().src, "++", "+-");
    Value& out = ctx.out();
    ArithFlags fl;
    if (out.isFloat()) {
      for (int i = 0; i < out.width(); ++i) {
        double acc = 0.0;
        for (size_t p = 0; p < ops.size(); ++p) {
          double v = inD(ctx, static_cast<int>(p), i);
          acc = ops[p] == '+' ? acc + v : acc - v;
        }
        storeReal(ctx, 0, i, acc, fl);
      }
    } else {
      DataType t = out.type();
      bool sat = saturating(ctx.fa());
      for (int i = 0; i < out.width(); ++i) {
        int64_t acc = 0;
        for (size_t p = 0; p < ops.size(); ++p) {
          Int128 wide = static_cast<Int128>(acc);
          int64_t v = inI(ctx, static_cast<int>(p), i);
          wide = ops[p] == '+' ? wide + v : wide - v;
          acc = foldInt(t, wide, fl, sat);
        }
        out.setI(i, acc);
      }
    }
    reportArith(ctx, fl);
  }

  void emit(EmitContext& ctx) const override {
    auto ops = parseOps(*ctx.fa().src, "++", "+-");
    EmitFlags flags = declareArithFlags(ctx);
    bool real = isFloatType(ctx.outType());
    beginElemLoop(ctx, ctx.outWidth());
    if (real) {
      std::string expr = "0.0";
      for (size_t p = 0; p < ops.size(); ++p) {
        expr += std::string(" ") + ops[p] + " " +
                ctx.inElem(static_cast<int>(p), "i", DataType::F64);
      }
      ctx.line(nanCheckStmt(flags, expr).empty()
                   ? ctx.storeOutStmt("i", expr, flags.wrap, flags.prec)
                   : "{ double _s = " + expr + "; " +
                         nanCheckStmt(flags, "_s") + " " +
                         ctx.storeOutStmt("i", "_s", flags.wrap, flags.prec) +
                         " }");
    } else {
      std::string acc = ctx.sink().freshVar("acc");
      bool sat = saturating(ctx.fa());
      ctx.line("int64_t " + acc + " = 0;");
      for (size_t p = 0; p < ops.size(); ++p) {
        std::string term = ctx.inElem(static_cast<int>(p), "i", DataType::I64);
        ctx.line(foldIntStmt(ctx, acc,
                             acc + (ops[p] == '+' ? " + " : " - ") + term,
                             flags, sat));
      }
      ctx.line(ctx.out() + "[i] = (" + std::string(dataTypeCpp(ctx.outType())) +
               ")" + acc + ";");
    }
    endElemLoop(ctx);
    finishEmit(ctx, flags);
  }
};

class ProductSpec : public ActorSpec {
 public:
  std::string type() const override { return "Product"; }

  ActorCatalog::PortLayout ports(const Actor& a) const override {
    return {static_cast<int>(parseOps(a, "**", "*/").size()), 1};
  }

  std::vector<DiagKind> diagnostics(const FlatModel& fm,
                                    const FlatActor& fa) const override {
    auto kinds = arithDiags(fm, fa);
    auto ops = parseOps(*fa.src, "**", "*/");
    for (char c : ops) {
      if (c == '/') {
        kinds.push_back(DiagKind::DivisionByZero);
        break;
      }
    }
    return kinds;
  }

  void eval(EvalContext& ctx) const override {
    auto ops = parseOps(*ctx.fa().src, "**", "*/");
    Value& out = ctx.out();
    ArithFlags fl;
    bool divZero = false;
    if (out.isFloat()) {
      for (int i = 0; i < out.width(); ++i) {
        double acc = 1.0;
        for (size_t p = 0; p < ops.size(); ++p) {
          double v = inD(ctx, static_cast<int>(p), i);
          if (ops[p] == '/') {
            if (v == 0.0) divZero = true;
            acc /= v;
          } else {
            acc *= v;
          }
        }
        storeReal(ctx, 0, i, acc, fl);
      }
    } else {
      DataType t = out.type();
      bool sat = saturating(ctx.fa());
      for (int i = 0; i < out.width(); ++i) {
        int64_t acc = 1;
        for (size_t p = 0; p < ops.size(); ++p) {
          int64_t v = inI(ctx, static_cast<int>(p), i);
          if (ops[p] == '/') {
            if (v == 0) {
              divZero = true;
              acc = 0;
            } else {
              acc = foldInt(t, static_cast<Int128>(acc) / v, fl, sat);
            }
          } else {
            acc = foldInt(t, static_cast<Int128>(acc) * v, fl, sat);
          }
        }
        out.setI(i, acc);
      }
    }
    if (divZero) ctx.reportDiag(DiagKind::DivisionByZero);
    reportArith(ctx, fl);
  }

  void emit(EmitContext& ctx) const override {
    auto ops = parseOps(*ctx.fa().src, "**", "*/");
    EmitFlags flags = declareArithFlags(ctx);
    std::string dz;
    if (ctx.sink().diagOn(DiagKind::DivisionByZero)) {
      dz = ctx.sink().freshVar("dz");
      ctx.line("int " + dz + " = 0;");
    }
    bool real = isFloatType(ctx.outType());
    beginElemLoop(ctx, ctx.outWidth());
    if (real) {
      std::string acc = ctx.sink().freshVar("acc");
      ctx.line("double " + acc + " = 1.0;");
      for (size_t p = 0; p < ops.size(); ++p) {
        std::string term = ctx.inElem(static_cast<int>(p), "i", DataType::F64);
        if (ops[p] == '/') {
          if (!dz.empty()) {
            ctx.line("if ((" + term + ") == 0.0) " + dz + " = 1;");
          }
          ctx.line(acc + " /= " + term + ";");
        } else {
          ctx.line(acc + " *= " + term + ";");
        }
      }
      if (!flags.nan.empty()) ctx.line(nanCheckStmt(flags, acc));
      ctx.line(ctx.storeOutStmt("i", acc, flags.wrap, flags.prec));
    } else {
      std::string acc = ctx.sink().freshVar("acc");
      bool sat = saturating(ctx.fa());
      ctx.line("int64_t " + acc + " = 1;");
      for (size_t p = 0; p < ops.size(); ++p) {
        std::string term = ctx.inElem(static_cast<int>(p), "i", DataType::I64);
        if (ops[p] == '/') {
          std::string den = ctx.sink().freshVar("den");
          ctx.line("int64_t " + den + " = " + term + ";");
          std::string body = foldIntStmt(
              ctx, acc, acc + " / " + den, flags, sat);
          ctx.line("if (" + den + " == 0) { " + acc + " = 0;" +
                   (dz.empty() ? "" : " " + dz + " = 1;") + " } else " + body);
        } else {
          ctx.line(foldIntStmt(ctx, acc, acc + " * (__int128)" + term, flags,
                               sat));
        }
      }
      ctx.line(ctx.out() + "[i] = (" + std::string(dataTypeCpp(ctx.outType())) +
               ")" + acc + ";");
    }
    endElemLoop(ctx);
    auto call = flags.asDiagCall();
    if (!dz.empty()) call.emplace_back(DiagKind::DivisionByZero, dz);
    if (ctx.sink().diagOn(DiagKind::Downcast)) {
      call.emplace_back(DiagKind::Downcast, "1");
    }
    ctx.sink().diagCall(call);
  }
};

// Element-wise single-input actor helper.
class UnaryBase : public ActorSpec {
 public:
  ActorCatalog::PortLayout ports(const Actor&) const override {
    return {1, 1};
  }
  std::vector<DiagKind> diagnostics(const FlatModel& fm,
                                    const FlatActor& fa) const override {
    return arithDiags(fm, fa);
  }
};

class GainSpec : public UnaryBase {
 public:
  std::string type() const override { return "Gain"; }

  void eval(EvalContext& ctx) const override {
    double g = ctx.fa().src->params().getDouble("gain", 1.0);
    Value& out = ctx.out();
    ArithFlags fl;
    if (out.isFloat()) {
      for (int i = 0; i < out.width(); ++i) {
        storeReal(ctx, 0, i, inD(ctx, 0, i) * g, fl);
      }
    } else {
      int64_t gi = f2i(g);
      for (int i = 0; i < out.width(); ++i) {
        out.setI(i, foldInt(out.type(),
                            static_cast<Int128>(inI(ctx, 0, i)) * gi, fl));
      }
    }
    reportArith(ctx, fl);
  }

  void emit(EmitContext& ctx) const override {
    double g = ctx.fa().src->params().getDouble("gain", 1.0);
    EmitFlags flags = declareArithFlags(ctx);
    beginElemLoop(ctx, ctx.outWidth());
    if (isFloatType(ctx.outType())) {
      std::string expr = ctx.inElem(0, "i", DataType::F64) + " * " + fmtD(g);
      if (!flags.nan.empty()) {
        ctx.line("{ double _s = " + expr + "; " + nanCheckStmt(flags, "_s") +
                 " " + ctx.storeOutStmt("i", "_s", flags.wrap, flags.prec) +
                 " }");
      } else {
        ctx.line(ctx.storeOutStmt("i", expr, flags.wrap, flags.prec));
      }
    } else {
      ctx.line(ctx.storeOutStmt("i",
                                "(__int128)" + ctx.inElem(0, "i", DataType::I64) +
                                    " * " + fmtI(f2i(g)),
                                flags.wrap, flags.prec));
    }
    endElemLoop(ctx);
    finishEmit(ctx, flags);
  }
};

class BiasSpec : public UnaryBase {
 public:
  std::string type() const override { return "Bias"; }

  void eval(EvalContext& ctx) const override {
    double b = ctx.fa().src->params().getDouble("bias", 0.0);
    Value& out = ctx.out();
    ArithFlags fl;
    if (out.isFloat()) {
      for (int i = 0; i < out.width(); ++i) {
        storeReal(ctx, 0, i, inD(ctx, 0, i) + b, fl);
      }
    } else {
      int64_t bi = f2i(b);
      for (int i = 0; i < out.width(); ++i) {
        out.setI(i, foldInt(out.type(),
                            static_cast<Int128>(inI(ctx, 0, i)) + bi, fl));
      }
    }
    reportArith(ctx, fl);
  }

  void emit(EmitContext& ctx) const override {
    double b = ctx.fa().src->params().getDouble("bias", 0.0);
    EmitFlags flags = declareArithFlags(ctx);
    beginElemLoop(ctx, ctx.outWidth());
    if (isFloatType(ctx.outType())) {
      ctx.line(ctx.storeOutStmt(
          "i", ctx.inElem(0, "i", DataType::F64) + " + " + fmtD(b), flags.wrap,
          flags.prec));
    } else {
      ctx.line(ctx.storeOutStmt("i",
                                "(__int128)" + ctx.inElem(0, "i", DataType::I64) +
                                    " + " + fmtI(f2i(b)),
                                flags.wrap, flags.prec));
    }
    endElemLoop(ctx);
    finishEmit(ctx, flags);
  }
};

class AbsSpec : public UnaryBase {
 public:
  std::string type() const override { return "Abs"; }

  // Simulink gives Abs decision coverage: negative vs non-negative input.
  int decisionOutcomes(const Actor&) const override { return 2; }

  void eval(EvalContext& ctx) const override {
    Value& out = ctx.out();
    ArithFlags fl;
    if (out.isFloat()) {
      for (int i = 0; i < out.width(); ++i) {
        double v = inD(ctx, 0, i);
        ctx.decision(v < 0.0 ? 0 : 1);
        storeReal(ctx, 0, i, std::fabs(v), fl);
      }
    } else {
      for (int i = 0; i < out.width(); ++i) {
        int64_t v = inI(ctx, 0, i);
        ctx.decision(v < 0 ? 0 : 1);
        Int128 wide = static_cast<Int128>(v);
        out.setI(i, foldInt(out.type(), wide < 0 ? -wide : wide, fl));
      }
    }
    reportArith(ctx, fl);
  }

  void emit(EmitContext& ctx) const override {
    EmitFlags flags = declareArithFlags(ctx);
    beginElemLoop(ctx, ctx.outWidth());
    if (isFloatType(ctx.outType())) {
      std::string v = ctx.sink().freshVar("v");
      ctx.line("double " + v + " = " + ctx.inElem(0, "i", DataType::F64) + ";");
      ctx.line(ctx.sink().covDecisionStmt(v + " < 0.0 ? 0 : 1"));
      ctx.line(ctx.storeOutStmt("i", "fabs(" + v + ")", flags.wrap,
                                flags.prec));
    } else {
      std::string v = ctx.sink().freshVar("v");
      ctx.line("int64_t " + v + " = " + ctx.inElem(0, "i", DataType::I64) + ";");
      ctx.line(ctx.sink().covDecisionStmt(v + " < 0 ? 0 : 1"));
      ctx.line(ctx.storeOutStmt(
          "i", "(" + v + " < 0 ? -(__int128)" + v + " : (__int128)" + v + ")",
          flags.wrap, flags.prec));
    }
    endElemLoop(ctx);
    finishEmit(ctx, flags);
  }
};

class SignSpec : public UnaryBase {
 public:
  std::string type() const override { return "Sign"; }

  int decisionOutcomes(const Actor&) const override { return 3; }

  void eval(EvalContext& ctx) const override {
    Value& out = ctx.out();
    ArithFlags fl;
    for (int i = 0; i < out.width(); ++i) {
      double v = inD(ctx, 0, i);
      int outcome = v < 0.0 ? 0 : (v == 0.0 ? 1 : 2);
      ctx.decision(outcome);
      storeReal(ctx, 0, i, v < 0.0 ? -1.0 : (v == 0.0 ? 0.0 : 1.0), fl);
    }
    reportArith(ctx, fl);
  }

  void emit(EmitContext& ctx) const override {
    EmitFlags flags = declareArithFlags(ctx);
    beginElemLoop(ctx, ctx.outWidth());
    std::string v = ctx.sink().freshVar("v");
    ctx.line("double " + v + " = " + ctx.inElem(0, "i", DataType::F64) + ";");
    ctx.line(ctx.sink().covDecisionStmt(v + " < 0.0 ? 0 : (" + v +
                                        " == 0.0 ? 1 : 2)"));
    ctx.line(ctx.storeOutStmt(
        "i", "(" + v + " < 0.0 ? -1.0 : (" + v + " == 0.0 ? 0.0 : 1.0))",
        flags.wrap, flags.prec));
    endElemLoop(ctx);
    finishEmit(ctx, flags);
  }
};

class UnaryMinusSpec : public UnaryBase {
 public:
  std::string type() const override { return "UnaryMinus"; }

  void eval(EvalContext& ctx) const override {
    Value& out = ctx.out();
    ArithFlags fl;
    if (out.isFloat()) {
      for (int i = 0; i < out.width(); ++i) {
        storeReal(ctx, 0, i, -inD(ctx, 0, i), fl);
      }
    } else {
      for (int i = 0; i < out.width(); ++i) {
        out.setI(i, foldInt(out.type(),
                            -static_cast<Int128>(inI(ctx, 0, i)), fl));
      }
    }
    reportArith(ctx, fl);
  }

  void emit(EmitContext& ctx) const override {
    EmitFlags flags = declareArithFlags(ctx);
    beginElemLoop(ctx, ctx.outWidth());
    if (isFloatType(ctx.outType())) {
      ctx.line(ctx.storeOutStmt("i", "-" + ctx.inElem(0, "i", DataType::F64),
                                flags.wrap, flags.prec));
    } else {
      ctx.line(ctx.storeOutStmt(
          "i", "-(__int128)" + ctx.inElem(0, "i", DataType::I64), flags.wrap,
          flags.prec));
    }
    endElemLoop(ctx);
    finishEmit(ctx, flags);
  }
};

class SqrtSpec : public UnaryBase {
 public:
  std::string type() const override { return "Sqrt"; }

  void eval(EvalContext& ctx) const override {
    ArithFlags fl;
    for (int i = 0; i < ctx.out().width(); ++i) {
      storeReal(ctx, 0, i, std::sqrt(inD(ctx, 0, i)), fl);
    }
    reportArith(ctx, fl);
  }

  void emit(EmitContext& ctx) const override {
    EmitFlags flags = declareArithFlags(ctx);
    beginElemLoop(ctx, ctx.outWidth());
    std::string expr = "sqrt(" + ctx.inElem(0, "i", DataType::F64) + ")";
    if (!flags.nan.empty()) {
      ctx.line("{ double _s = " + expr + "; " + nanCheckStmt(flags, "_s") +
               " " + ctx.storeOutStmt("i", "_s", flags.wrap, flags.prec) +
               " }");
    } else {
      ctx.line(ctx.storeOutStmt("i", expr, flags.wrap, flags.prec));
    }
    endElemLoop(ctx);
    finishEmit(ctx, flags);
  }

  std::vector<DiagKind> diagnostics(const FlatModel& fm,
                                    const FlatActor& fa) const override {
    auto kinds = arithDiags(fm, fa);
    if (!realDomain(fm, fa)) kinds.push_back(DiagKind::NanInf);
    return kinds;
  }
};

// The generic one/two-input elementary function actor ("the code generated
// for a Math actor varies depending on the operator it takes, e.g. exp or
// log" — paper §3.3). Always computes in the real domain.
class MathSpec : public ActorSpec {
 public:
  std::string type() const override { return "Math"; }

  ActorCatalog::PortLayout ports(const Actor& a) const override {
    return {isBinary(op(a)) ? 2 : 1, 1};
  }

  std::vector<DiagKind> diagnostics(const FlatModel& fm,
                                    const FlatActor& fa) const override {
    auto kinds = arithDiags(fm, fa);
    if (!realDomain(fm, fa)) kinds.push_back(DiagKind::NanInf);
    std::string o = op(*fa.src);
    if (o == "reciprocal" || o == "mod" || o == "rem") {
      kinds.push_back(DiagKind::DivisionByZero);
    }
    return kinds;
  }

  void eval(EvalContext& ctx) const override {
    std::string o = op(*ctx.fa().src);
    ArithFlags fl;
    bool divZero = false;
    for (int i = 0; i < ctx.out().width(); ++i) {
      double a = inD(ctx, 0, i);
      double b = isBinary(o) ? inD(ctx, 1, i) : 0.0;
      double r = apply(o, a, b, divZero);
      storeReal(ctx, 0, i, r, fl);
    }
    if (divZero) ctx.reportDiag(DiagKind::DivisionByZero);
    reportArith(ctx, fl);
  }

  void emit(EmitContext& ctx) const override {
    std::string o = op(*ctx.fa().src);
    EmitFlags flags = declareArithFlags(ctx);
    std::string dz;
    if (ctx.sink().diagOn(DiagKind::DivisionByZero)) {
      dz = ctx.sink().freshVar("dz");
      ctx.line("int " + dz + " = 0;");
    }
    beginElemLoop(ctx, ctx.outWidth());
    std::string a = ctx.inElem(0, "i", DataType::F64);
    std::string b = isBinary(o) ? ctx.inElem(1, "i", DataType::F64) : "0.0";
    std::string expr;
    if (o == "exp") expr = "exp(" + a + ")";
    else if (o == "log") expr = "log(" + a + ")";
    else if (o == "log10") expr = "log10(" + a + ")";
    else if (o == "sqrt") expr = "sqrt(" + a + ")";
    else if (o == "square") expr = "(" + a + ") * (" + a + ")";
    else if (o == "pow") expr = "pow(" + a + ", " + b + ")";
    else if (o == "hypot") expr = "hypot(" + a + ", " + b + ")";
    else if (o == "reciprocal") expr = "1.0 / (" + a + ")";
    else if (o == "mod") expr = "accmos_fmod_floor(" + a + ", " + b + ")";
    else if (o == "rem") expr = "fmod(" + a + ", " + b + ")";
    else expr = a;
    if (!dz.empty() && (o == "reciprocal" || o == "mod" || o == "rem")) {
      std::string den = o == "reciprocal" ? a : b;
      ctx.line("if ((" + den + ") == 0.0) " + dz + " = 1;");
    }
    ctx.line("{ double _s = " + expr + "; " +
             (flags.nan.empty() ? "" : nanCheckStmt(flags, "_s") + " ") +
             ctx.storeOutStmt("i", "_s", flags.wrap, flags.prec) + " }");
    endElemLoop(ctx);
    auto call = flags.asDiagCall();
    if (!dz.empty()) call.emplace_back(DiagKind::DivisionByZero, dz);
    if (ctx.sink().diagOn(DiagKind::Downcast)) {
      call.emplace_back(DiagKind::Downcast, "1");
    }
    ctx.sink().diagCall(call);
  }

  void validate(const FlatModel& fm, const FlatActor& fa) const override {
    ActorSpec::validate(fm, fa);
    static const char* kOps[] = {"exp",  "log",        "log10", "sqrt",
                                 "square", "pow",      "hypot", "reciprocal",
                                 "mod",  "rem"};
    std::string o = op(*fa.src);
    for (const char* k : kOps) {
      if (o == k) return;
    }
    throw ModelError("actor '" + fa.path + "': unknown Math op '" + o + "'");
  }

 private:
  static std::string op(const Actor& a) {
    return a.params().getString("op", "exp");
  }
  static bool isBinary(const std::string& o) {
    return o == "pow" || o == "mod" || o == "rem" || o == "hypot";
  }
  static double apply(const std::string& o, double a, double b,
                      bool& divZero) {
    if (o == "exp") return std::exp(a);
    if (o == "log") return std::log(a);
    if (o == "log10") return std::log10(a);
    if (o == "sqrt") return std::sqrt(a);
    if (o == "square") return a * a;
    if (o == "pow") return std::pow(a, b);
    if (o == "hypot") return std::hypot(a, b);
    if (o == "reciprocal") {
      if (a == 0.0) divZero = true;
      return 1.0 / a;
    }
    if (o == "mod") {
      if (b == 0.0) divZero = true;
      double m = std::fmod(a, b);
      if (m != 0.0 && ((m < 0.0) != (b < 0.0))) m += b;
      return m;
    }
    if (o == "rem") {
      if (b == 0.0) divZero = true;
      return std::fmod(a, b);
    }
    return a;
  }
};

class TrigonometrySpec : public ActorSpec {
 public:
  std::string type() const override { return "Trigonometry"; }

  ActorCatalog::PortLayout ports(const Actor& a) const override {
    return {op(a) == "atan2" ? 2 : 1, 1};
  }

  std::vector<DiagKind> diagnostics(const FlatModel& fm,
                                    const FlatActor& fa) const override {
    auto kinds = arithDiags(fm, fa);
    if (!realDomain(fm, fa)) kinds.push_back(DiagKind::NanInf);
    return kinds;
  }

  void eval(EvalContext& ctx) const override {
    std::string o = op(*ctx.fa().src);
    ArithFlags fl;
    for (int i = 0; i < ctx.out().width(); ++i) {
      double a = inD(ctx, 0, i);
      double b = o == "atan2" ? inD(ctx, 1, i) : 0.0;
      storeReal(ctx, 0, i, apply(o, a, b), fl);
    }
    reportArith(ctx, fl);
  }

  void emit(EmitContext& ctx) const override {
    std::string o = op(*ctx.fa().src);
    EmitFlags flags = declareArithFlags(ctx);
    beginElemLoop(ctx, ctx.outWidth());
    std::string a = ctx.inElem(0, "i", DataType::F64);
    std::string expr;
    if (o == "atan2") {
      expr = "atan2(" + a + ", " + ctx.inElem(1, "i", DataType::F64) + ")";
    } else {
      expr = o + "(" + a + ")";
    }
    ctx.line("{ double _s = " + expr + "; " +
             (flags.nan.empty() ? "" : nanCheckStmt(flags, "_s") + " ") +
             ctx.storeOutStmt("i", "_s", flags.wrap, flags.prec) + " }");
    endElemLoop(ctx);
    finishEmit(ctx, flags);
  }

  void validate(const FlatModel& fm, const FlatActor& fa) const override {
    ActorSpec::validate(fm, fa);
    static const char* kOps[] = {"sin",  "cos",  "tan",  "asin", "acos",
                                 "atan", "atan2", "sinh", "cosh", "tanh"};
    std::string o = op(*fa.src);
    for (const char* k : kOps) {
      if (o == k) return;
    }
    throw ModelError("actor '" + fa.path + "': unknown Trigonometry op '" + o +
                     "'");
  }

 private:
  static std::string op(const Actor& a) {
    return a.params().getString("op", "sin");
  }
  static double apply(const std::string& o, double a, double b) {
    if (o == "sin") return std::sin(a);
    if (o == "cos") return std::cos(a);
    if (o == "tan") return std::tan(a);
    if (o == "asin") return std::asin(a);
    if (o == "acos") return std::acos(a);
    if (o == "atan") return std::atan(a);
    if (o == "atan2") return std::atan2(a, b);
    if (o == "sinh") return std::sinh(a);
    if (o == "cosh") return std::cosh(a);
    return std::tanh(a);
  }
};

class MinMaxSpec : public ActorSpec {
 public:
  std::string type() const override { return "MinMax"; }

  ActorCatalog::PortLayout ports(const Actor& a) const override {
    return {static_cast<int>(a.params().getInt("inputs", 2)), 1};
  }

  // Decision coverage: which input wins (first index on ties).
  int decisionOutcomes(const Actor& a) const override {
    return static_cast<int>(a.params().getInt("inputs", 2));
  }

  std::vector<DiagKind> diagnostics(const FlatModel& fm,
                                    const FlatActor& fa) const override {
    return arithDiags(fm, fa);
  }

  void eval(EvalContext& ctx) const override {
    bool isMin = ctx.fa().src->params().getString("op", "max") == "min";
    int n = ctx.numInputs();
    ArithFlags fl;
    for (int i = 0; i < ctx.out().width(); ++i) {
      double best = inD(ctx, 0, i);
      int arg = 0;
      for (int p = 1; p < n; ++p) {
        double v = inD(ctx, p, i);
        if (isMin ? v < best : v > best) {
          best = v;
          arg = p;
        }
      }
      ctx.decision(arg);
      storeReal(ctx, 0, i, best, fl);
    }
    reportArith(ctx, fl);
  }

  void emit(EmitContext& ctx) const override {
    bool isMin = ctx.fa().src->params().getString("op", "max") == "min";
    int n = ctx.numInputs();
    EmitFlags flags = declareArithFlags(ctx);
    beginElemLoop(ctx, ctx.outWidth());
    std::string best = ctx.sink().freshVar("best");
    std::string arg = ctx.sink().freshVar("arg");
    ctx.line("double " + best + " = " + ctx.inElem(0, "i", DataType::F64) +
             "; int " + arg + " = 0;");
    for (int p = 1; p < n; ++p) {
      std::string v = ctx.inElem(p, "i", DataType::F64);
      ctx.line("if (" + v + (isMin ? " < " : " > ") + best + ") { " + best +
               " = " + v + "; " + arg + " = " + std::to_string(p) + "; }");
    }
    ctx.line(ctx.sink().covDecisionStmt(arg));
    ctx.line(ctx.storeOutStmt("i", best, flags.wrap, flags.prec));
    endElemLoop(ctx);
    finishEmit(ctx, flags);
  }
};

class RoundingSpec : public UnaryBase {
 public:
  std::string type() const override { return "Rounding"; }

  void eval(EvalContext& ctx) const override {
    std::string o = ctx.fa().src->params().getString("op", "round");
    ArithFlags fl;
    for (int i = 0; i < ctx.out().width(); ++i) {
      double v = inD(ctx, 0, i);
      double r;
      if (o == "floor") r = std::floor(v);
      else if (o == "ceil") r = std::ceil(v);
      else if (o == "fix") r = std::trunc(v);
      else r = std::nearbyint(v);
      storeReal(ctx, 0, i, r, fl);
    }
    reportArith(ctx, fl);
  }

  void emit(EmitContext& ctx) const override {
    std::string o = ctx.fa().src->params().getString("op", "round");
    std::string fn = o == "floor" ? "floor"
                     : o == "ceil" ? "ceil"
                     : o == "fix" ? "trunc"
                                  : "nearbyint";
    EmitFlags flags = declareArithFlags(ctx);
    beginElemLoop(ctx, ctx.outWidth());
    ctx.line(ctx.storeOutStmt(
        "i", fn + "(" + ctx.inElem(0, "i", DataType::F64) + ")", flags.wrap,
        flags.prec));
    endElemLoop(ctx);
    finishEmit(ctx, flags);
  }
};

class PolynomialSpec : public UnaryBase {
 public:
  std::string type() const override { return "Polynomial"; }

  void eval(EvalContext& ctx) const override {
    auto coeffs = ctx.fa().src->params().getDoubleList("coeffs");
    if (coeffs.empty()) coeffs.push_back(0.0);
    ArithFlags fl;
    for (int i = 0; i < ctx.out().width(); ++i) {
      double x = inD(ctx, 0, i);
      double acc = coeffs[0];
      for (size_t k = 1; k < coeffs.size(); ++k) acc = acc * x + coeffs[k];
      storeReal(ctx, 0, i, acc, fl);
    }
    reportArith(ctx, fl);
  }

  void emit(EmitContext& ctx) const override {
    auto coeffs = ctx.fa().src->params().getDoubleList("coeffs");
    if (coeffs.empty()) coeffs.push_back(0.0);
    EmitFlags flags = declareArithFlags(ctx);
    beginElemLoop(ctx, ctx.outWidth());
    std::string x = ctx.sink().freshVar("x");
    std::string acc = ctx.sink().freshVar("acc");
    ctx.line("double " + x + " = " + ctx.inElem(0, "i", DataType::F64) + ";");
    ctx.line("double " + acc + " = " + fmtD(coeffs[0]) + ";");
    for (size_t k = 1; k < coeffs.size(); ++k) {
      ctx.line(acc + " = " + acc + " * " + x + " + " + fmtD(coeffs[k]) + ";");
    }
    if (!flags.nan.empty()) ctx.line(nanCheckStmt(flags, acc));
    ctx.line(ctx.storeOutStmt("i", acc, flags.wrap, flags.prec));
    endElemLoop(ctx);
    finishEmit(ctx, flags);
  }
};

// Reduction actors: vector input -> scalar output.
class ReductionBase : public ActorSpec {
 public:
  ActorCatalog::PortLayout ports(const Actor&) const override {
    return {numIn(), 1};
  }
  int outputWidth(const Actor&, int) const override { return 1; }
  void validate(const FlatModel&, const FlatActor&) const override {
    // Any input width is fine.
  }
  std::vector<DiagKind> diagnostics(const FlatModel& fm,
                                    const FlatActor& fa) const override {
    return arithDiags(fm, fa);
  }

 protected:
  virtual int numIn() const { return 1; }
};

class SumOfElementsSpec : public ReductionBase {
 public:
  std::string type() const override { return "SumOfElements"; }

  void eval(EvalContext& ctx) const override {
    const Value& v = ctx.in(0);
    Value& out = ctx.out();
    ArithFlags fl;
    if (out.isFloat()) {
      double acc = 0.0;
      for (int i = 0; i < v.width(); ++i) acc += v.asDouble(i);
      storeReal(ctx, 0, 0, acc, fl);
    } else {
      int64_t acc = 0;
      for (int i = 0; i < v.width(); ++i) {
        acc = foldInt(out.type(), static_cast<Int128>(acc) + v.asInt(i), fl);
      }
      out.setI(0, acc);
    }
    reportArith(ctx, fl);
  }

  void emit(EmitContext& ctx) const override {
    EmitFlags flags = declareArithFlags(ctx);
    std::string acc = ctx.sink().freshVar("acc");
    if (isFloatType(ctx.outType())) {
      ctx.line("double " + acc + " = 0.0;");
      beginElemLoop(ctx, ctx.inWidth(0));
      ctx.line(acc + " += " + ctx.inElem(0, "i", DataType::F64) + ";");
      endElemLoop(ctx);
      if (!flags.nan.empty()) ctx.line(nanCheckStmt(flags, acc));
      ctx.line(ctx.storeOutStmt("0", acc, flags.wrap, flags.prec));
    } else {
      ctx.line("int64_t " + acc + " = 0;");
      beginElemLoop(ctx, ctx.inWidth(0));
      ctx.line(foldIntStmt(ctx, acc,
                           acc + " + " + ctx.inElem(0, "i", DataType::I64),
                           flags, false));
      endElemLoop(ctx);
      ctx.line(ctx.out() + "[0] = (" + std::string(dataTypeCpp(ctx.outType())) +
               ")" + acc + ";");
    }
    finishEmit(ctx, flags);
  }
};

class ProductOfElementsSpec : public ReductionBase {
 public:
  std::string type() const override { return "ProductOfElements"; }

  void eval(EvalContext& ctx) const override {
    const Value& v = ctx.in(0);
    Value& out = ctx.out();
    ArithFlags fl;
    if (out.isFloat()) {
      double acc = 1.0;
      for (int i = 0; i < v.width(); ++i) acc *= v.asDouble(i);
      storeReal(ctx, 0, 0, acc, fl);
    } else {
      int64_t acc = 1;
      for (int i = 0; i < v.width(); ++i) {
        acc = foldInt(out.type(), static_cast<Int128>(acc) * v.asInt(i), fl);
      }
      out.setI(0, acc);
    }
    reportArith(ctx, fl);
  }

  void emit(EmitContext& ctx) const override {
    EmitFlags flags = declareArithFlags(ctx);
    std::string acc = ctx.sink().freshVar("acc");
    if (isFloatType(ctx.outType())) {
      ctx.line("double " + acc + " = 1.0;");
      beginElemLoop(ctx, ctx.inWidth(0));
      ctx.line(acc + " *= " + ctx.inElem(0, "i", DataType::F64) + ";");
      endElemLoop(ctx);
      if (!flags.nan.empty()) ctx.line(nanCheckStmt(flags, acc));
      ctx.line(ctx.storeOutStmt("0", acc, flags.wrap, flags.prec));
    } else {
      ctx.line("int64_t " + acc + " = 1;");
      beginElemLoop(ctx, ctx.inWidth(0));
      ctx.line(foldIntStmt(ctx, acc,
                           acc + " * (__int128)" +
                               ctx.inElem(0, "i", DataType::I64),
                           flags, false));
      endElemLoop(ctx);
      ctx.line(ctx.out() + "[0] = (" + std::string(dataTypeCpp(ctx.outType())) +
               ")" + acc + ";");
    }
    finishEmit(ctx, flags);
  }
};

class DotProductSpec : public ReductionBase {
 public:
  std::string type() const override { return "DotProduct"; }

  void eval(EvalContext& ctx) const override {
    const Value& a = ctx.in(0);
    Value& out = ctx.out();
    ArithFlags fl;
    int w = a.width();
    if (out.isFloat()) {
      double acc = 0.0;
      for (int i = 0; i < w; ++i) acc += inD(ctx, 0, i) * inD(ctx, 1, i);
      storeReal(ctx, 0, 0, acc, fl);
    } else {
      int64_t acc = 0;
      DataType t = out.type();
      for (int i = 0; i < w; ++i) {
        int64_t prod = foldInt(
            t, static_cast<Int128>(inI(ctx, 0, i)) * inI(ctx, 1, i), fl);
        acc = foldInt(t, static_cast<Int128>(acc) + prod, fl);
      }
      out.setI(0, acc);
    }
    reportArith(ctx, fl);
  }

  void emit(EmitContext& ctx) const override {
    EmitFlags flags = declareArithFlags(ctx);
    std::string acc = ctx.sink().freshVar("acc");
    if (isFloatType(ctx.outType())) {
      ctx.line("double " + acc + " = 0.0;");
      beginElemLoop(ctx, ctx.inWidth(0));
      ctx.line(acc + " += " + ctx.inElem(0, "i", DataType::F64) + " * " +
               ctx.inElem(1, "i", DataType::F64) + ";");
      endElemLoop(ctx);
      if (!flags.nan.empty()) ctx.line(nanCheckStmt(flags, acc));
      ctx.line(ctx.storeOutStmt("0", acc, flags.wrap, flags.prec));
    } else {
      std::string prod = ctx.sink().freshVar("prod");
      ctx.line("int64_t " + acc + " = 0;");
      beginElemLoop(ctx, ctx.inWidth(0));
      ctx.line("int64_t " + prod + " = 0;");
      ctx.line(foldIntStmt(ctx, prod,
                           "(__int128)" + ctx.inElem(0, "i", DataType::I64) +
                               " * " + ctx.inElem(1, "i", DataType::I64),
                           flags, false));
      ctx.line(foldIntStmt(ctx, acc, acc + " + " + prod, flags, false));
      endElemLoop(ctx);
      ctx.line(ctx.out() + "[0] = (" + std::string(dataTypeCpp(ctx.outType())) +
               ")" + acc + ";");
    }
    finishEmit(ctx, flags);
  }

  void validate(const FlatModel& fm, const FlatActor& fa) const override {
    if (fm.signal(fa.inputs[0]).width != fm.signal(fa.inputs[1]).width) {
      throw ModelError("actor '" + fa.path +
                       "': DotProduct inputs must have equal width");
    }
  }

 protected:
  int numIn() const override { return 2; }
};

}  // namespace

void registerMathActors(std::vector<std::unique_ptr<ActorSpec>>& out) {
  out.push_back(std::make_unique<SumSpec>());
  out.push_back(std::make_unique<ProductSpec>());
  out.push_back(std::make_unique<GainSpec>());
  out.push_back(std::make_unique<BiasSpec>());
  out.push_back(std::make_unique<AbsSpec>());
  out.push_back(std::make_unique<SignSpec>());
  out.push_back(std::make_unique<UnaryMinusSpec>());
  out.push_back(std::make_unique<SqrtSpec>());
  out.push_back(std::make_unique<MathSpec>());
  out.push_back(std::make_unique<TrigonometrySpec>());
  out.push_back(std::make_unique<MinMaxSpec>());
  out.push_back(std::make_unique<RoundingSpec>());
  out.push_back(std::make_unique<PolynomialSpec>());
  out.push_back(std::make_unique<SumOfElementsSpec>());
  out.push_back(std::make_unique<ProductOfElementsSpec>());
  out.push_back(std::make_unique<DotProductSpec>());
}

}  // namespace accmos
