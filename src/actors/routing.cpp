// Signal routing actors: Switch, MultiportSwitch, Mux, Demux, Selector,
// IndexVector.
//
// Switch and MultiportSwitch are the model's branch actors (Algorithm 1's
// isBranchActor): they carry condition coverage on the control predicate and
// decision coverage on the selected path.
#include "actors/common.h"

namespace accmos {
namespace {

// Copies input element -> output element of identical type (validated), so
// routing never converts.
void checkSameType(const FlatModel& fm, const FlatActor& fa, int port) {
  DataType inT = fm.signal(fa.inputs[static_cast<size_t>(port)]).type;
  DataType outT = fm.signal(fa.outputs[0]).type;
  if (inT != outT) {
    throw ModelError("actor '" + fa.path + "': data input " +
                     std::to_string(port + 1) + " type " +
                     std::string(dataTypeName(inT)) +
                     " must match output type " +
                     std::string(dataTypeName(outT)));
  }
}

void copyElem(EvalContext& ctx, int port, int elem) {
  const Value& in = ctx.in(port);
  Value& out = ctx.out();
  int src = in.width() == 1 ? 0 : elem;
  if (out.isFloat()) {
    out.setF(elem, in.f(src));
  } else {
    out.setI(elem, in.i(src));
  }
}

class SwitchSpec : public ActorSpec {
 public:
  std::string type() const override { return "Switch"; }

  // Ports: data1, control, data2 (Simulink layout).
  ActorCatalog::PortLayout ports(const Actor&) const override {
    return {3, 1};
  }

  bool isBranchActor(const Actor&) const override { return true; }
  int numConditions(const Actor&) const override { return 1; }
  int decisionOutcomes(const Actor&) const override { return 2; }

  void eval(EvalContext& ctx) const override {
    bool c = control(ctx);
    ctx.condition(0, c);
    ctx.decision(c ? 0 : 1);
    for (int i = 0; i < ctx.out().width(); ++i) copyElem(ctx, c ? 0 : 2, i);
  }

  void emit(EmitContext& ctx) const override {
    const Actor& a = *ctx.fa().src;
    std::string crit = a.params().getString("criteria", ">0");
    std::string ctrl = ctx.inElem(1, "0", DataType::F64);
    std::string cond;
    if (crit == ">0") cond = ctrl + " > 0.0";
    else if (crit == "~=0") cond = ctrl + " != 0.0";
    else cond = ctrl + " >= " + fmtD(a.params().getDouble("threshold", 0.0));
    std::string c = ctx.sink().freshVar("c");
    ctx.line("int " + c + " = (" + cond + ");");
    ctx.line(ctx.sink().covConditionStmt(0, c));
    ctx.line(ctx.sink().covDecisionStmt(c + " ? 0 : 1"));
    beginElemLoop(ctx, ctx.outWidth());
    ctx.line(ctx.out() + "[i] = " + c + " ? " + elem(ctx, 0) + " : " +
             elem(ctx, 2) + ";");
    endElemLoop(ctx);
  }

  void validate(const FlatModel& fm, const FlatActor& fa) const override {
    ActorSpec::validate(fm, fa);
    checkSameType(fm, fa, 0);
    checkSameType(fm, fa, 2);
    if (fm.signal(fa.inputs[1]).width != 1) {
      throw ModelError("actor '" + fa.path +
                       "': Switch control must be scalar");
    }
    std::string crit = fa.src->params().getString("criteria", ">0");
    if (crit != ">0" && crit != "~=0" && crit != ">=") {
      throw ModelError("actor '" + fa.path + "': unknown Switch criteria '" +
                       crit + "'");
    }
  }

 private:
  static std::string elem(EmitContext& ctx, int port) {
    return ctx.in(port) + "[" + (ctx.inWidth(port) == 1 ? "0" : "i") + "]";
  }

  static bool control(EvalContext& ctx) {
    const Actor& a = *ctx.fa().src;
    std::string crit = a.params().getString("criteria", ">0");
    double v = ctx.in(1).asDouble(0);
    if (crit == ">0") return v > 0.0;
    if (crit == "~=0") return v != 0.0;
    return v >= a.params().getDouble("threshold", 0.0);
  }
};

class MultiportSwitchSpec : public ActorSpec {
 public:
  std::string type() const override { return "MultiportSwitch"; }

  ActorCatalog::PortLayout ports(const Actor& a) const override {
    return {1 + cases(a), 1};
  }

  bool isBranchActor(const Actor&) const override { return true; }
  int decisionOutcomes(const Actor& a) const override { return cases(a); }

  std::vector<DiagKind> diagnostics(const FlatModel&,
                                    const FlatActor&) const override {
    return {DiagKind::OutOfBounds};
  }

  void eval(EvalContext& ctx) const override {
    int n = cases(*ctx.fa().src);
    int64_t c = ctx.in(0).asInt(0);
    if (c < 1 || c > n) {
      ctx.reportDiag(DiagKind::OutOfBounds);
      c = c < 1 ? 1 : n;
    }
    ctx.decision(static_cast<int>(c) - 1);
    for (int i = 0; i < ctx.out().width(); ++i) {
      copyElem(ctx, static_cast<int>(c), i);
    }
  }

  void emit(EmitContext& ctx) const override {
    int n = cases(*ctx.fa().src);
    std::string c = ctx.sink().freshVar("c");
    ctx.line("int64_t " + c + " = " + ctx.inElem(0, "0", DataType::I64) + ";");
    std::string oob;
    if (ctx.sink().diagOn(DiagKind::OutOfBounds)) {
      oob = ctx.sink().freshVar("oob");
      ctx.line("int " + oob + " = (" + c + " < 1 || " + c + " > " +
               std::to_string(n) + ");");
    }
    ctx.line("if (" + c + " < 1) " + c + " = 1; else if (" + c + " > " +
             std::to_string(n) + ") " + c + " = " + std::to_string(n) + ";");
    ctx.line(ctx.sink().covDecisionStmt("(int)" + c + " - 1"));
    beginElemLoop(ctx, ctx.outWidth());
    std::string expr = elem(ctx, n);  // last case as fallback
    for (int k = n - 1; k >= 1; --k) {
      expr = c + " == " + std::to_string(k) + " ? " + elem(ctx, k) + " : (" +
             expr + ")";
    }
    ctx.line(ctx.out() + "[i] = " + expr + ";");
    endElemLoop(ctx);
    if (!oob.empty()) {
      ctx.sink().diagCall({{DiagKind::OutOfBounds, oob}});
    }
  }

  void validate(const FlatModel& fm, const FlatActor& fa) const override {
    ActorSpec::validate(fm, fa);
    int n = cases(*fa.src);
    if (n < 1 || n > 64) {
      throw ModelError("actor '" + fa.path +
                       "': MultiportSwitch supports 1..64 cases");
    }
    for (int p = 1; p <= n; ++p) checkSameType(fm, fa, p);
    if (fm.signal(fa.inputs[0]).width != 1) {
      throw ModelError("actor '" + fa.path +
                       "': MultiportSwitch control must be scalar");
    }
  }

 private:
  static int cases(const Actor& a) {
    return static_cast<int>(a.params().getInt("cases", 2));
  }
  static std::string elem(EmitContext& ctx, int port) {
    return ctx.in(port) + "[" + (ctx.inWidth(port) == 1 ? "0" : "i") + "]";
  }
};

class MuxSpec : public ActorSpec {
 public:
  std::string type() const override { return "Mux"; }

  ActorCatalog::PortLayout ports(const Actor& a) const override {
    return {static_cast<int>(a.params().getInt("inputs", 2)), 1};
  }

  void eval(EvalContext& ctx) const override {
    Value& out = ctx.out();
    int pos = 0;
    for (int p = 0; p < ctx.numInputs(); ++p) {
      const Value& in = ctx.in(p);
      for (int i = 0; i < in.width(); ++i, ++pos) {
        if (out.isFloat()) {
          out.setF(pos, in.f(i));
        } else {
          out.setI(pos, in.i(i));
        }
      }
    }
  }

  void emit(EmitContext& ctx) const override {
    int pos = 0;
    for (int p = 0; p < ctx.numInputs(); ++p) {
      int w = ctx.inWidth(p);
      ctx.line("for (int i = 0; i < " + std::to_string(w) + "; ++i) " +
               ctx.out() + "[" + std::to_string(pos) + " + i] = " + ctx.in(p) +
               "[i];");
      pos += w;
    }
  }

  void validate(const FlatModel& fm, const FlatActor& fa) const override {
    int sum = 0;
    for (size_t p = 0; p < fa.inputs.size(); ++p) {
      checkSameType(fm, fa, static_cast<int>(p));
      sum += fm.signal(fa.inputs[p]).width;
    }
    if (sum != fm.signal(fa.outputs[0]).width) {
      throw ModelError("actor '" + fa.path + "': Mux output width must be " +
                       std::to_string(sum) + " (sum of input widths)");
    }
  }
};

class DemuxSpec : public ActorSpec {
 public:
  std::string type() const override { return "Demux"; }

  ActorCatalog::PortLayout ports(const Actor& a) const override {
    return {1, static_cast<int>(a.params().getInt("outputs", 2))};
  }

  void eval(EvalContext& ctx) const override {
    const Value& in = ctx.in(0);
    int pos = 0;
    for (size_t p = 0; p < ctx.fa().outputs.size(); ++p) {
      Value& out = ctx.out(static_cast<int>(p));
      for (int i = 0; i < out.width(); ++i, ++pos) {
        if (out.isFloat()) {
          out.setF(i, in.f(pos));
        } else {
          out.setI(i, in.i(pos));
        }
      }
    }
  }

  void emit(EmitContext& ctx) const override {
    int pos = 0;
    for (size_t p = 0; p < ctx.fa().outputs.size(); ++p) {
      int w = ctx.outWidth(static_cast<int>(p));
      ctx.line("for (int i = 0; i < " + std::to_string(w) + "; ++i) " +
               ctx.out(static_cast<int>(p)) + "[i] = " + ctx.in(0) + "[" +
               std::to_string(pos) + " + i];");
      pos += w;
    }
  }

  void validate(const FlatModel& fm, const FlatActor& fa) const override {
    int sum = 0;
    DataType inT = fm.signal(fa.inputs[0]).type;
    for (int sig : fa.outputs) {
      sum += fm.signal(sig).width;
      if (fm.signal(sig).type != inT) {
        throw ModelError("actor '" + fa.path +
                         "': Demux outputs must match the input type");
      }
    }
    if (sum != fm.signal(fa.inputs[0]).width) {
      throw ModelError("actor '" + fa.path +
                       "': Demux output widths must sum to the input width");
    }
  }
};

class SelectorSpec : public ActorSpec {
 public:
  std::string type() const override { return "Selector"; }

  ActorCatalog::PortLayout ports(const Actor&) const override {
    return {1, 1};
  }
  int outputWidth(const Actor& a, int) const override {
    return static_cast<int>(indices(a).size());
  }

  void eval(EvalContext& ctx) const override {
    auto idx = indices(*ctx.fa().src);
    const Value& in = ctx.in(0);
    Value& out = ctx.out();
    for (size_t k = 0; k < idx.size(); ++k) {
      int src = static_cast<int>(idx[k]) - 1;
      if (out.isFloat()) {
        out.setF(static_cast<int>(k), in.f(src));
      } else {
        out.setI(static_cast<int>(k), in.i(src));
      }
    }
  }

  void emit(EmitContext& ctx) const override {
    auto idx = indices(*ctx.fa().src);
    for (size_t k = 0; k < idx.size(); ++k) {
      ctx.line(ctx.out() + "[" + std::to_string(k) + "] = " + ctx.in(0) + "[" +
               std::to_string(static_cast<int>(idx[k]) - 1) + "];");
    }
  }

  void validate(const FlatModel& fm, const FlatActor& fa) const override {
    checkSameType(fm, fa, 0);
    auto idx = indices(*fa.src);
    if (idx.empty()) {
      throw ModelError("actor '" + fa.path + "': Selector needs 'indices'");
    }
    int w = fm.signal(fa.inputs[0]).width;
    for (double d : idx) {
      int i = static_cast<int>(d);
      if (i < 1 || i > w) {
        throw ModelError("actor '" + fa.path + "': Selector index " +
                         std::to_string(i) + " outside input width " +
                         std::to_string(w));
      }
    }
  }

 private:
  static std::vector<double> indices(const Actor& a) {
    return a.params().getDoubleList("indices");
  }
};

// Dynamic vector indexing: the array-out-of-bounds diagnosis of §3.2.B.
class IndexVectorSpec : public ActorSpec {
 public:
  std::string type() const override { return "IndexVector"; }

  // Ports: index (scalar int), vector.
  ActorCatalog::PortLayout ports(const Actor&) const override {
    return {2, 1};
  }
  int outputWidth(const Actor&, int) const override { return 1; }

  std::vector<DiagKind> diagnostics(const FlatModel&,
                                    const FlatActor&) const override {
    return {DiagKind::OutOfBounds};
  }

  void eval(EvalContext& ctx) const override {
    const Value& vec = ctx.in(1);
    int64_t idx = ctx.in(0).asInt(0);
    if (idx < 1 || idx > vec.width()) {
      ctx.reportDiag(DiagKind::OutOfBounds);
      idx = idx < 1 ? 1 : vec.width();
    }
    Value& out = ctx.out();
    if (out.isFloat()) {
      out.setF(0, vec.f(static_cast<int>(idx) - 1));
    } else {
      out.setI(0, vec.i(static_cast<int>(idx) - 1));
    }
  }

  void emit(EmitContext& ctx) const override {
    int w = ctx.inWidth(1);
    std::string c = ctx.sink().freshVar("idx");
    ctx.line("int64_t " + c + " = " + ctx.inElem(0, "0", DataType::I64) + ";");
    std::string oob;
    if (ctx.sink().diagOn(DiagKind::OutOfBounds)) {
      oob = ctx.sink().freshVar("oob");
      ctx.line("int " + oob + " = (" + c + " < 1 || " + c + " > " +
               std::to_string(w) + ");");
    }
    ctx.line("if (" + c + " < 1) " + c + " = 1; else if (" + c + " > " +
             std::to_string(w) + ") " + c + " = " + std::to_string(w) + ";");
    ctx.line(ctx.out() + "[0] = " + ctx.in(1) + "[" + c + " - 1];");
    if (!oob.empty()) {
      ctx.sink().diagCall({{DiagKind::OutOfBounds, oob}});
    }
  }

  void validate(const FlatModel& fm, const FlatActor& fa) const override {
    checkSameType(fm, fa, 1);
    if (fm.signal(fa.inputs[0]).width != 1) {
      throw ModelError("actor '" + fa.path +
                       "': IndexVector index must be scalar");
    }
  }
};

}  // namespace

void registerRoutingActors(std::vector<std::unique_ptr<ActorSpec>>& out) {
  out.push_back(std::make_unique<SwitchSpec>());
  out.push_back(std::make_unique<MultiportSwitchSpec>());
  out.push_back(std::make_unique<MuxSpec>());
  out.push_back(std::make_unique<DemuxSpec>());
  out.push_back(std::make_unique<SelectorSpec>());
  out.push_back(std::make_unique<IndexVectorSpec>());
}

}  // namespace accmos
