#include "parser/model_io.h"

#include <fstream>
#include <sstream>

#include "xml/xml.h"

namespace accmos {
namespace {

void writeSystem(const System& sys, xml::Element& parent) {
  xml::Element& e = parent.addChild("system");
  e.setAttr("name", sys.name());
  for (const auto& a : sys.actors()) {
    xml::Element& ae = e.addChild("actor");
    ae.setAttr("name", a->name());
    ae.setAttr("type", a->type());
    for (const auto& [key, value] : a->params().raw()) {
      xml::Element& pe = ae.addChild("param");
      pe.setAttr("name", key);
      pe.setAttr("value", value);
    }
    if (a->isSubsystem()) writeSystem(*a->subsystem(), ae);
  }
  for (const auto& l : sys.lines()) {
    xml::Element& le = e.addChild("line");
    le.setAttr("from", l.fromActor);
    le.setAttr("fromPort", std::to_string(l.fromPort));
    le.setAttr("to", l.toActor);
    le.setAttr("toPort", std::to_string(l.toPort));
  }
}

void readSystem(const xml::Element& e, System& sys) {
  for (const xml::Element* ae : e.childrenNamed("actor")) {
    std::string name = ae->attr("name");
    std::string type = ae->attr("type");
    if (name.empty() || type.empty()) {
      throw ModelError("actor element needs 'name' and 'type' attributes");
    }
    Actor& a = sys.addActor(name, type);
    for (const xml::Element* pe : ae->childrenNamed("param")) {
      if (!pe->hasAttr("name")) {
        throw ModelError("param element in actor '" + name +
                         "' needs a 'name' attribute");
      }
      a.params().set(pe->attr("name"), pe->attr("value"));
    }
    const xml::Element* nested = ae->child("system");
    if (nested != nullptr) {
      readSystem(*nested, a.makeSubsystem());
    }
  }
  for (const xml::Element* le : e.childrenNamed("line")) {
    if (!le->hasAttr("from") || !le->hasAttr("to")) {
      throw ModelError("line element needs 'from' and 'to' attributes");
    }
    sys.connect(le->attr("from"), static_cast<int>(le->attrInt("fromPort", 1)),
                le->attr("to"), static_cast<int>(le->attrInt("toPort", 1)));
  }
}

void writeStimulus(const TestCaseSpec& spec, xml::Element& parent) {
  xml::Element& e = parent.addChild("stimulus");
  e.setAttr("seed", std::to_string(spec.seed));
  for (const auto& ps : spec.ports) {
    xml::Element& pe = e.addChild("port");
    if (!ps.sequence.empty()) {
      std::ostringstream os;
      os.precision(17);
      for (size_t k = 0; k < ps.sequence.size(); ++k) {
        if (k > 0) os << ',';
        os << ps.sequence[k];
      }
      pe.setAttr("sequence", os.str());
    } else {
      std::ostringstream lo;
      lo.precision(17);
      lo << ps.min;
      std::ostringstream hi;
      hi.precision(17);
      hi << ps.max;
      pe.setAttr("min", lo.str());
      pe.setAttr("max", hi.str());
    }
  }
}

TestCaseSpec readStimulus(const xml::Element& e) {
  TestCaseSpec spec;
  spec.seed = static_cast<uint64_t>(e.attrInt("seed", 1));
  for (const xml::Element* pe : e.childrenNamed("port")) {
    PortStimulus ps;
    if (pe->hasAttr("sequence")) {
      std::istringstream is(pe->attr("sequence"));
      std::string tok;
      while (std::getline(is, tok, ',')) {
        if (!tok.empty()) {
          ps.sequence.push_back(std::strtod(tok.c_str(), nullptr));
        }
      }
      if (ps.sequence.empty()) {
        throw ModelError("<port sequence> must contain values");
      }
    } else {
      ps.min = pe->attrDouble("min", 0.0);
      ps.max = pe->attrDouble("max", 1.0);
    }
    spec.ports.push_back(std::move(ps));
  }
  return spec;
}

}  // namespace

std::string writeModelToString(const Model& model,
                               const TestCaseSpec* stimulus) {
  xml::Element root("model");
  root.setAttr("name", model.name());
  writeSystem(model.root(), root);
  if (stimulus != nullptr) writeStimulus(*stimulus, root);
  return xml::serialize(root);
}

void writeModelToFile(const Model& model, const std::string& path,
                      const TestCaseSpec* stimulus) {
  std::ofstream out(path);
  if (!out) throw ModelError("cannot write model file '" + path + "'");
  out << writeModelToString(model, stimulus);
}

LoadedModel loadModelFromString(const std::string& text) {
  auto doc = xml::parse(text);
  if (doc->name() != "model") {
    throw ModelError("root element must be <model>, got <" + doc->name() +
                     ">");
  }
  std::string name = doc->attr("name");
  if (name.empty()) throw ModelError("<model> needs a 'name' attribute");
  LoadedModel loaded;
  loaded.model = std::make_unique<Model>(name);
  const xml::Element* rootSys = doc->child("system");
  if (rootSys == nullptr) {
    throw ModelError("<model> needs a root <system> element");
  }
  readSystem(*rootSys, loaded.model->root());
  const xml::Element* stim = doc->child("stimulus");
  if (stim != nullptr) loaded.stimulus = readStimulus(*stim);
  return loaded;
}

LoadedModel loadModelFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ModelError("cannot open model file '" + path + "'");
  std::ostringstream os;
  os << in.rdbuf();
  return loadModelFromString(os.str());
}

std::unique_ptr<Model> readModelFromString(const std::string& text) {
  return loadModelFromString(text).model;
}

std::unique_ptr<Model> readModelFromFile(const std::string& path) {
  return loadModelFromFile(path).model;
}

}  // namespace accmos
