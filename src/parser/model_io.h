// Model file format (XML) reader/writer.
//
// The format mirrors the two-part structure the paper describes for
// Simulink model files (§3.1): actors carry only their own information
// (type, parameters), and <line> elements separately record the data-flow
// relationships connecting ports.
//
//   <model name="M">
//     <system name="root">
//       <actor name="In1" type="Inport"><param name="port" value="1"/></actor>
//       <actor name="Sub" type="Subsystem">
//         <system> ... </system>
//       </actor>
//       <line from="In1" fromPort="1" to="Sub" toPort="1"/>
//     </system>
//   </model>
// A model file may also embed its stimulus (test-case spec) so exported
// models are self-contained:
//
//   <stimulus seed="7">
//     <port min="0" max="50"/>
//     <port sequence="1,2,3"/>
//   </stimulus>
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "ir/model.h"
#include "sim/testcase.h"

namespace accmos {

// Serializes a model to XML text / a file; `stimulus` (optional) is
// embedded as a <stimulus> element.
std::string writeModelToString(const Model& model,
                               const TestCaseSpec* stimulus = nullptr);
void writeModelToFile(const Model& model, const std::string& path,
                      const TestCaseSpec* stimulus = nullptr);

// Parses XML text / a file into a Model. Throws ModelError (semantic) or
// xml::ParseError (syntactic) on bad input.
std::unique_ptr<Model> readModelFromString(const std::string& text);
std::unique_ptr<Model> readModelFromFile(const std::string& path);

// A model plus its embedded stimulus, if any.
struct LoadedModel {
  std::unique_ptr<Model> model;
  std::optional<TestCaseSpec> stimulus;
};
LoadedModel loadModelFromString(const std::string& text);
LoadedModel loadModelFromFile(const std::string& path);

}  // namespace accmos
