#include "bench_models/sample_overflow.h"

namespace accmos {

std::unique_ptr<Model> sampleOverflowModel() {
  auto model = std::make_unique<Model>("Sample");
  System& root = model->root();

  Actor& inA = root.addActor("InA", "Inport");
  inA.params().setInt("port", 1);
  inA.setDtype(DataType::I32);
  Actor& inB = root.addActor("InB", "Inport");
  inB.params().setInt("port", 2);
  inB.setDtype(DataType::I32);

  // Each input runs through its own accumulation subsystem.
  for (const char* name : {"AccumA", "AccumB"}) {
    Actor& sub = root.addActor(name, "Subsystem");
    System& sys = sub.makeSubsystem();
    Actor& in = sys.addActor("In1", "Inport");
    in.params().setInt("port", 1);
    in.setDtype(DataType::I32);
    Actor& acc = sys.addActor("Acc", "DiscreteIntegrator");
    acc.setDtype(DataType::I32);
    acc.params().setDouble("gain", 1.0);
    sys.connect("In1", 1, "Acc", 1);
    Actor& out = sys.addActor("Out1", "Outport");
    out.params().setInt("port", 1);
    sys.connect("Acc", 1, "Out1", 1);
  }
  root.connect("InA", 1, "AccumA", 1);
  root.connect("InB", 1, "AccumB", 1);

  // The combining Sum actor — the paper's highlighted overflow site.
  Actor& sum = root.addActor("Sum", "Sum");
  sum.params().set("ops", "++");
  sum.setDtype(DataType::I32);
  root.connect("AccumA", 1, "Sum", 1);
  root.connect("AccumB", 1, "Sum", 2);

  Actor& out = root.addActor("Out1", "Outport");
  out.params().setInt("port", 1);
  root.connect("Sum", 1, "Out1", 1);
  return model;
}

TestCaseSpec sampleOverflowStimulus() {
  TestCaseSpec spec;
  spec.seed = 7;
  spec.ports.push_back(PortStimulus{0.0, 1000.0, {}});
  spec.ports.push_back(PortStimulus{0.0, 1000.0, {}});
  return spec;
}

}  // namespace accmos
