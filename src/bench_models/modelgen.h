// Deterministic construction helpers for the benchmark models.
//
// The paper's ten benchmark models are proprietary industrial designs; per
// the substitution rule we rebuild them programmatically with the same
// actor/subsystem counts (Table 1) and a functionality-flavoured mix of
// computational, control, stateful and lookup subsystems — the structural
// property the paper's analysis ties the acceleration ratios to ("models
// containing more computational actors achieve higher ratios").
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/arith.h"
#include "ir/model.h"

namespace accmos {

struct Wire {
  std::string actor;
  int port = 1;
};

class ModelBuilder {
 public:
  ModelBuilder(const std::string& name, uint64_t seed);

  Model& model() { return *model_; }
  std::unique_ptr<Model> take() { return std::move(model_); }
  System& root() { return model_->root(); }
  SplitMix64& rng() { return rng_; }

  // Root I/O. Inports/outports are numbered in creation order.
  Wire addInport(DataType t = DataType::F64);
  void addOutport(Wire w);

  // Round-robin pool of f64 wires available for consumption.
  Wire pool();
  void pushPool(Wire w);

  // Rotating raw f64 root inport (guaranteed full-range uniform stimulus —
  // the logic patterns compare these against rare thresholds).
  Wire rawInport();

  // Subsystem patterns. innerActors counts the actors inside the subsystem
  // (inport/outport proxies included); the subsystem actor itself adds one
  // more. Returns total actors added (root helpers included).
  int addCompSubsystem(int innerActors);
  int addLogicSubsystem(int innerActors);
  int addStateSubsystem(int innerActors);
  int addLookupSubsystem(int innerActors);
  // Enabled subsystem gated by `pool() > threshold` (adds one root
  // CompareToConstant); rare thresholds drive the Table 3 coverage-vs-time
  // dynamics.
  int addEnabledCompSubsystem(int innerActors, double threshold);

  // Smallest possible subsystem (Inport -> Gain -> Outport): used when the
  // remaining actor budget per subsystem is tight.
  int addMiniSubsystem();

  // Exactly n root-level actors: a Gain/Bias chain ending in a Terminator.
  void addRootFiller(int n);

  std::string uniqueName(const std::string& base);

  int actorCount() const { return model_->countActors(); }
  int subsystemCount() const { return model_->countSubsystems(); }

  // Minimum innerActors for each pattern.
  static constexpr int kMinComp = 4;
  static constexpr int kMinMini = 3;
  static constexpr int kMinLogic = 10;
  static constexpr int kMinState = 6;
  static constexpr int kMinLookup = 4;

 private:
  // Creates the subsystem actor + nested system with one inner Inport per
  // source wire; returns the inner inport wires.
  Actor& makeSubsystem(const std::string& base, const std::vector<Wire>& srcs,
                       bool enabled, double threshold,
                       std::vector<Wire>* innerIns, int* rootExtras);

  // Fills a computational op chain inside `sys` from `cur`, adding exactly
  // `n` actors; returns the final wire.
  Wire compChain(System& sys, Wire cur, Wire aux, int n);

  std::unique_ptr<Model> model_;
  SplitMix64 rng_;
  std::vector<Wire> pool_;
  size_t poolNext_ = 0;
  std::vector<Wire> rawInports_;
  size_t rawNext_ = 0;
  int nextInport_ = 1;
  int nextOutport_ = 1;
  int nameCounter_ = 0;
};

}  // namespace accmos
