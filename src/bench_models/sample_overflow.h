// The motivating model of the paper's Figure 1: "essentially conducts an
// accumulation operation on the two inputs, subsequently combining the
// results to produce an output. This process leads to an integer overflow
// error occurring at the Sum actor" — the long-horizon cumulative error
// class AccMoS is built to find quickly.
#pragma once

#include <memory>

#include "ir/model.h"
#include "sim/testcase.h"

namespace accmos {

// Two int32 inputs are accumulated (DiscreteIntegrator) inside an
// Accumulate subsystem each, then combined by the Sum actor that overflows.
// `inputScale` controls how fast the accumulators grow: with the default
// stimulus (uniform [0, inputScale)) the first wrap occurs after roughly
// 2^31 / inputScale steps.
std::unique_ptr<Model> sampleOverflowModel();

// Matching stimulus: both inputs uniform in [0, 1000).
TestCaseSpec sampleOverflowStimulus();

}  // namespace accmos
