#include "bench_models/suite.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "bench_models/modelgen.h"

namespace accmos {
namespace {

// Builds the CSEV charging signature at the root: the `quantity` data-store
// accumulator and the mode-dependent charging-power computation the paper's
// case study injects errors into.
void csevSignature(ModelBuilder& b, bool injectErrors) {
  System& root = b.root();

  // Mode and charge-current inports are integer-typed so the healthy model
  // stays conversion-free (a float->int conversion would legitimately fire
  // the downcast diagnostic every step).
  Wire mode = b.addInport(DataType::I32);    // charging mode 1..3
  Wire charge = b.addInport(DataType::I32);  // charged energy per step

  Actor& dsm = root.addActor("QuantityStore", "DataStoreMemory");
  dsm.params().set("store", "quantity");
  dsm.setDtype(DataType::I32);

  Actor& rd = root.addActor("QuantityRead", "DataStoreRead");
  rd.params().set("store", "quantity");
  rd.setDtype(DataType::I32);

  Wire chargeIn = charge;
  if (injectErrors) {
    // Error 1: a mis-scaled charge makes `quantity` wrap during ongoing
    // simulation (continuous charging), paper §4.
    Actor& g = root.addActor("ChargeScale", "Gain");
    g.params().setDouble("gain", 1000.0);
    g.setDtype(DataType::I32);
    root.connect(charge.actor, charge.port, "ChargeScale", 1);
    chargeIn = Wire{"ChargeScale", 1};
  }
  Actor& add = root.addActor("QuantityAdd", "Sum");
  add.params().set("ops", "++");
  add.setDtype(DataType::I32);
  root.connect("QuantityRead", 1, "QuantityAdd", 1);
  root.connect(chargeIn.actor, chargeIn.port, "QuantityAdd", 2);

  Actor& wr = root.addActor("QuantityWrite", "DataStoreWrite");
  wr.params().set("store", "quantity");
  root.connect("QuantityAdd", 1, "QuantityWrite", 1);

  // Charging power: rated voltage/current selected by mode.
  auto addConst = [&](const std::string& name, int v) {
    Actor& c = root.addActor(name, "Constant");
    c.params().setInt("value", v);
    c.setDtype(DataType::I32);
  };
  addConst("V1", 220);
  addConst("V2", 380);
  addConst("V3", 800);
  addConst("I1", 16);
  addConst("I2", 32);
  addConst("I3", 250);

  Actor& vsel = root.addActor("Voltage", "MultiportSwitch");
  vsel.params().setInt("cases", 3);
  vsel.setDtype(DataType::I32);
  root.connect(mode.actor, mode.port, "Voltage", 1);
  root.connect("V1", 1, "Voltage", 2);
  root.connect("V2", 1, "Voltage", 3);
  root.connect("V3", 1, "Voltage", 4);

  Actor& isel = root.addActor("Current", "MultiportSwitch");
  isel.params().setInt("cases", 3);
  isel.setDtype(DataType::I32);
  root.connect(mode.actor, mode.port, "Current", 1);
  root.connect("I1", 1, "Current", 2);
  root.connect("I2", 1, "Current", 3);
  root.connect("I3", 1, "Current", 4);

  // Error 2: the product's output type is short int while voltage and
  // current are int (paper §4) — present only in the injected variant.
  Actor& power = root.addActor("ChargingPower", "Product");
  power.params().set("ops", "**");
  power.setDtype(injectErrors ? DataType::I16 : DataType::I32);
  root.connect("Voltage", 1, "ChargingPower", 1);
  root.connect("Current", 1, "ChargingPower", 2);

  Actor& conv = root.addActor("PowerF64", "DataTypeConversion");
  conv.setDtype(DataType::F64);
  root.connect("ChargingPower", 1, "PowerF64", 1);
  b.pushPool(Wire{"PowerF64", 1});
}

// TCP three-way-handshake state machine (LISTEN=1, SYN_RCVD=2,
// ESTABLISHED=3) driven by thresholded packet-flag inputs.
void tcpSignature(ModelBuilder& b) {
  System& root = b.root();
  Wire syn = b.pool();
  Wire ack = b.pool();
  Wire fin = b.pool();

  auto addCmp = [&](const std::string& name, Wire src, double thr) {
    Actor& c = root.addActor(name, "CompareToConstant");
    c.params().set("op", ">");
    c.params().setDouble("value", thr);
    root.connect(src.actor, src.port, name, 1);
  };
  addCmp("FlagSyn", syn, 0.7);
  addCmp("FlagAck", ack, 0.5);
  addCmp("FlagFin", fin, 0.97);

  Actor& st = root.addActor("ConnState", "UnitDelay");
  st.setDtype(DataType::U8);
  st.params().setDouble("initial", 1.0);

  auto addConst = [&](const std::string& name, int v) {
    Actor& c = root.addActor(name, "Constant");
    c.params().setInt("value", v);
    c.setDtype(DataType::U8);
  };
  addConst("StListen", 1);
  addConst("StSyn", 2);
  addConst("StEst", 3);

  auto addSwitch = [&](const std::string& name, const std::string& onTrue,
                       const std::string& flag, const std::string& onFalse) {
    Actor& s = root.addActor(name, "Switch");
    s.params().set("criteria", "~=0");
    s.setDtype(DataType::U8);
    root.connect(onTrue, 1, name, 1);
    root.connect(flag, 1, name, 2);
    root.connect(onFalse, 1, name, 3);
  };
  // From LISTEN: SYN received -> SYN_RCVD.
  addSwitch("NextFromListen", "StSyn", "FlagSyn", "StListen");
  // From SYN_RCVD: ACK received -> ESTABLISHED.
  addSwitch("NextFromSyn", "StEst", "FlagAck", "StSyn");
  // From ESTABLISHED: FIN tears the connection down.
  addSwitch("NextFromEst", "StListen", "FlagFin", "StEst");

  Actor& next = root.addActor("NextState", "MultiportSwitch");
  next.params().setInt("cases", 3);
  next.setDtype(DataType::U8);
  root.connect("ConnState", 1, "NextState", 1);
  root.connect("NextFromListen", 1, "NextState", 2);
  root.connect("NextFromSyn", 1, "NextState", 3);
  root.connect("NextFromEst", 1, "NextState", 4);
  root.connect("NextState", 1, "ConnState", 1);

  Actor& est = root.addActor("Established", "CompareToConstant");
  est.params().set("op", "==");
  est.params().setDouble("value", 3.0);
  root.connect("ConnState", 1, "Established", 1);

  Actor& conv = root.addActor("EstF64", "DataTypeConversion");
  conv.setDtype(DataType::F64);
  root.connect("Established", 1, "EstF64", 1);
  b.pushPool(Wire{"EstF64", 1});
}

// Adds a periodic root source feeding the pool (LED duty cycles, solar
// irradiation, ...).
void pulseSource(ModelBuilder& b) {
  Actor& p = b.root().addActor("Pulse", "PulseGenerator");
  p.params().setInt("period", 20);
  p.params().setDouble("duty", 0.3);
  b.pushPool(Wire{"Pulse", 1});
}

void sineSource(ModelBuilder& b) {
  Actor& s = b.root().addActor("Irradiance", "SineWave");
  s.params().setDouble("amplitude", 0.5);
  s.params().setDouble("freq", 0.0001);
  s.params().setDouble("bias", 0.5);
  b.pushPool(Wire{"Irradiance", 1});
}

using SignatureFn = std::function<void(ModelBuilder&)>;

std::unique_ptr<Model> buildGeneric(const BenchModelInfo& info,
                                    const SignatureFn& signature) {
  ModelBuilder b(info.name, info.seed);
  for (int k = 0; k < info.inports; ++k) b.addInport(DataType::F64);
  if (signature) signature(b);

  // One signal monitor per model (paper Fig. 3 path).
  {
    Wire w = b.pool();
    b.root().addActor("Monitor", "Scope");
    b.root().connect(w.actor, w.port, "Monitor", 1);
  }

  int enabledLeft = info.enabledSubsystems;
  const double thresholds[] = {0.95,   0.995,    0.999,     0.9995,
                               0.9999, 0.999995, 0.9999990, 0.9999997};
  int thrIdx = 0;

  int subsLeft = info.subsystems - b.subsystemCount();
  double cum[4] = {info.comp, info.comp + info.logic,
                   info.comp + info.logic + info.state, 1.0};
  // Guarantee at least two control subsystems per model (every Table 1
  // system has branching logic) even when the average subsystem is small.
  int forcedLogic = std::min(2, subsLeft / 3);
  for (int f = 0; f < forcedLogic; ++f) {
    int budget = info.actors - b.actorCount() - info.outports;
    int remaining = subsLeft - f;
    // Leave ~5 actors per later subsystem so tight models stay in budget.
    int inner = budget - 5 * (remaining - 1);
    inner = std::clamp(inner, ModelBuilder::kMinLogic,
                       ModelBuilder::kMinLogic + 6);
    b.addLogicSubsystem(inner);
  }
  subsLeft -= forcedLogic;
  for (int i = 0; i < subsLeft; ++i) {
    int remainingSubs = subsLeft - i;
    int budget = info.actors - b.actorCount() - info.outports;
    int inner = budget / remainingSubs - 2;
    double avg = static_cast<double>(budget) / remainingSubs;
    double r = (static_cast<double>(i) + 0.5) / subsLeft;
    // Enabled subsystems first while the budget allows their extra root
    // compare actor (they drive the Table 3 coverage dynamics).
    if (enabledLeft > 0 && avg >= 6.0) {
      --enabledLeft;
      b.addEnabledCompSubsystem(std::max(inner - 1, ModelBuilder::kMinComp),
                                thresholds[thrIdx++ % 8]);
    } else if (r < cum[0] && inner >= ModelBuilder::kMinComp) {
      b.addCompSubsystem(inner);
    } else if (r < cum[1] && inner >= ModelBuilder::kMinLogic) {
      b.addLogicSubsystem(inner);
    } else if (r < cum[2] && inner >= ModelBuilder::kMinState) {
      b.addStateSubsystem(inner);
    } else if (inner >= ModelBuilder::kMinLookup) {
      b.addLookupSubsystem(inner);
    } else {
      b.addMiniSubsystem();
    }
  }

  for (int k = 0; k < info.outports; ++k) b.addOutport(b.pool());

  int deficit = info.actors - b.actorCount();
  if (deficit < 0) {
    throw ModelError("model generator overshot actor budget for " +
                     info.name + " by " + std::to_string(-deficit));
  }
  b.addRootFiller(deficit);
  if (b.actorCount() != info.actors ||
      b.subsystemCount() != info.subsystems) {
    throw ModelError("model generator missed Table 1 counts for " +
                     info.name);
  }
  return b.take();
}

const BenchModelInfo* findInfo(const std::string& name) {
  for (const auto& info : benchmarkSuite()) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

std::unique_ptr<Model> buildCsev(bool injectErrors) {
  const BenchModelInfo& info = *findInfo("CSEV");
  return buildGeneric(info, [injectErrors](ModelBuilder& b) {
    csevSignature(b, injectErrors);
  });
}

}  // namespace

const std::vector<BenchModelInfo>& benchmarkSuite() {
  static const std::vector<BenchModelInfo> kSuite = {
      // name, functionality, actors, subsystems, comp, logic, state, lookup,
      // enabled, inports, outports, seed
      {"CPUT", "AutoSAR CPU task dispatch system", 275, 27, 0.25, 0.45, 0.20,
       0.10, 3, 4, 2, 11},
      {"CSEV", "Charging system of electric vehicle", 152, 17, 0.40, 0.30,
       0.20, 0.10, 2, 4, 2, 12},
      {"FMTM", "Factory Multi-point Temperature Monitor", 276, 42, 0.30, 0.35,
       0.15, 0.20, 8, 6, 2, 13},
      {"LANS", "LAN Switch controller", 570, 39, 0.80, 0.10, 0.05, 0.05, 2, 5,
       2, 14},
      {"LEDLC", "LED light controller", 170, 31, 0.70, 0.15, 0.10, 0.05, 3, 4,
       2, 15},
      {"RAC", "Robotic arm controller", 667, 57, 0.45, 0.20, 0.25, 0.10, 4, 6,
       3, 16},
      {"SPV", "Solar PV panel output control", 131, 16, 0.75, 0.10, 0.05,
       0.10, 1, 3, 2, 17},
      {"TCP", "TCP three-way handshake protocol", 330, 42, 0.60, 0.30, 0.05,
       0.05, 3, 5, 2, 18},
      {"TWC", "Train wheel speed controller", 214, 13, 0.35, 0.20, 0.30, 0.15,
       2, 4, 2, 19},
      {"UTPC", "Underwater thruster power control", 214, 21, 0.40, 0.15, 0.15,
       0.30, 2, 4, 2, 20},
  };
  return kSuite;
}

std::unique_ptr<Model> buildBenchmarkModel(const std::string& name) {
  const BenchModelInfo* info = findInfo(name);
  if (info == nullptr) {
    throw ModelError("unknown benchmark model '" + name + "'");
  }
  if (name == "CSEV") return buildCsev(false);
  if (name == "TCP") return buildGeneric(*info, tcpSignature);
  if (name == "LEDLC") return buildGeneric(*info, pulseSource);
  if (name == "SPV") return buildGeneric(*info, sineSource);
  return buildGeneric(*info, nullptr);
}

std::unique_ptr<Model> buildCsevWithInjectedErrors() { return buildCsev(true); }

TestCaseSpec benchStimulus(const std::string& name) {
  TestCaseSpec spec;
  spec.seed = 0xACC0 + std::hash<std::string>{}(name) % 1000;
  spec.defaultPort.min = 0.0;
  spec.defaultPort.max = 1.0;
  if (name == "CSEV") {
    const BenchModelInfo* info = findInfo(name);
    // Ports: f64 inports first, then mode (1..3) and per-step charge.
    spec.ports.assign(static_cast<size_t>(info->inports), PortStimulus{});
    spec.ports.push_back(PortStimulus{0.5, 3.49, {}});   // mode 1..3
    spec.ports.push_back(PortStimulus{0.0, 50.0, {}});    // charge
  }
  return spec;
}

}  // namespace accmos
