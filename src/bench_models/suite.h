// The ten benchmark models of the paper's Table 1, rebuilt synthetically
// with matching actor/subsystem counts and functionality-flavoured
// structure (see modelgen.h for the substitution rationale).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/model.h"
#include "sim/testcase.h"

namespace accmos {

struct BenchModelInfo {
  std::string name;
  std::string functionality;  // Table 1 description
  int actors;                 // Table 1 #Actor
  int subsystems;             // Table 1 #SubSystem
  // Structure mix used by the generic builder (fractions sum to 1).
  double comp = 0.5;
  double logic = 0.25;
  double state = 0.15;
  double lookup = 0.10;
  int enabledSubsystems = 2;
  int inports = 4;
  int outports = 2;
  uint64_t seed = 1;
};

// The Table 1 inventory.
const std::vector<BenchModelInfo>& benchmarkSuite();

// Builds one benchmark model by name (CPUT, CSEV, FMTM, LANS, LEDLC, RAC,
// SPV, TCP, TWC, UTPC). Throws ModelError for unknown names.
std::unique_ptr<Model> buildBenchmarkModel(const std::string& name);

// The CSEV model with the two errors of the paper's case study injected:
// (1) the `quantity` accumulator overflows during continued charging, and
// (2) the charging-power product narrows int32 voltage*current into int16.
std::unique_ptr<Model> buildCsevWithInjectedErrors();

// The random stimulus used by the benches for a given model (matching
// port ranges, fixed seed).
TestCaseSpec benchStimulus(const std::string& name);

}  // namespace accmos
