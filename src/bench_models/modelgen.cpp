#include "bench_models/modelgen.h"

#include <cmath>

namespace accmos {

ModelBuilder::ModelBuilder(const std::string& name, uint64_t seed)
    : model_(std::make_unique<Model>(name)), rng_(seed) {}

std::string ModelBuilder::uniqueName(const std::string& base) {
  return base + std::to_string(nameCounter_++);
}

Wire ModelBuilder::addInport(DataType t) {
  std::string name = "In" + std::to_string(nextInport_);
  Actor& a = root().addActor(name, "Inport");
  a.params().setInt("port", nextInport_);
  a.setDtype(t);
  ++nextInport_;
  Wire w{name, 1};
  if (t == DataType::F64) {
    pushPool(w);
    rawInports_.push_back(w);
  }
  return w;
}

Wire ModelBuilder::rawInport() {
  if (rawInports_.empty()) {
    throw ModelError("model builder has no f64 inports yet");
  }
  Wire w = rawInports_[rawNext_ % rawInports_.size()];
  ++rawNext_;
  return w;
}

void ModelBuilder::addOutport(Wire w) {
  std::string name = "Out" + std::to_string(nextOutport_);
  Actor& a = root().addActor(name, "Outport");
  a.params().setInt("port", nextOutport_);
  ++nextOutport_;
  root().connect(w.actor, w.port, name, 1);
}

Wire ModelBuilder::pool() {
  if (pool_.empty()) {
    throw ModelError("model builder pool is empty — add inports first");
  }
  Wire w = pool_[poolNext_ % pool_.size()];
  ++poolNext_;
  return w;
}

void ModelBuilder::pushPool(Wire w) { pool_.push_back(std::move(w)); }

Actor& ModelBuilder::makeSubsystem(const std::string& base,
                                   const std::vector<Wire>& srcs,
                                   bool enabled, double threshold,
                                   std::vector<Wire>* innerIns,
                                   int* rootExtras) {
  *rootExtras = 0;
  std::string name = uniqueName(base);
  Actor& sub = root().addActor(name, enabled ? "EnabledSubsystem"
                                             : "Subsystem");
  System& sys = sub.makeSubsystem();
  innerIns->clear();
  int dataInputs = static_cast<int>(srcs.size());
  for (int k = 1; k <= dataInputs; ++k) {
    std::string in = "In" + std::to_string(k);
    Actor& proxy = sys.addActor(in, "Inport");
    proxy.params().setInt("port", k);
    const Wire& src = srcs[static_cast<size_t>(k - 1)];
    root().connect(src.actor, src.port, name, k);
    innerIns->push_back(Wire{in, 1});
  }
  if (enabled) {
    // Root-level rare condition driving the enable port.
    std::string cmp = uniqueName("En");
    Actor& c = root().addActor(cmp, "CompareToConstant");
    c.params().set("op", ">");
    c.params().setDouble("value", threshold);
    Wire src = pool();
    root().connect(src.actor, src.port, cmp, 1);
    root().connect(cmp, 1, name, dataInputs + 1);
    *rootExtras = 1;
  }
  return sub;
}

Wire ModelBuilder::compChain(System& sys, Wire cur, Wire aux, int n) {
  // Mostly plain arithmetic: these are the "computational actors" whose
  // interpretive overhead dominates SSE and which compiled code reduces to
  // a handful of instructions (the paper's explanation for the largest
  // speedups). Contraction gains plus an occasional Saturation keep long
  // simulations bounded and diagnostic-free.
  int added = 0;
  while (added < n) {
    int pick = static_cast<int>(rng_.next() % 16);
    if (n - added == 1 && pick >= 14) pick = 0;
    std::string name;
    switch (pick) {
      case 0:
      case 1:
      case 2: {
        name = uniqueName("Gain");
        Actor& a = sys.addActor(name, "Gain");
        a.params().setDouble("gain", 0.3 + rng_.nextUnit() * 0.6);
        sys.connect(cur.actor, cur.port, name, 1);
        added += 1;
        break;
      }
      case 3:
      case 4: {
        name = uniqueName("Bias");
        Actor& a = sys.addActor(name, "Bias");
        a.params().setDouble("bias", rng_.nextUniform(-0.5, 0.5));
        sys.connect(cur.actor, cur.port, name, 1);
        added += 1;
        break;
      }
      case 5:
      case 6:
      case 7: {
        name = uniqueName("Add");
        Actor& a = sys.addActor(name, "Sum");
        a.params().set("ops", rng_.next() % 2 == 0 ? "++" : "+-");
        sys.connect(cur.actor, cur.port, name, 1);
        sys.connect(aux.actor, aux.port, name, 2);
        added += 1;
        break;
      }
      case 8:
      case 9: {
        name = uniqueName("Mul");
        Actor& a = sys.addActor(name, "Product");
        a.params().set("ops", "**");
        sys.connect(cur.actor, cur.port, name, 1);
        sys.connect(aux.actor, aux.port, name, 2);
        added += 1;
        break;
      }
      case 10: {
        name = uniqueName("Max");
        Actor& a = sys.addActor(name, "MinMax");
        a.params().set("op", rng_.next() % 2 == 0 ? "max" : "min");
        a.params().setInt("inputs", 2);
        sys.connect(cur.actor, cur.port, name, 1);
        sys.connect(aux.actor, aux.port, name, 2);
        added += 1;
        break;
      }
      case 11: {
        name = uniqueName("Poly");
        Actor& a = sys.addActor(name, "Polynomial");
        a.params().set("coeffs", "0.2,0.5,0.1");
        sys.connect(cur.actor, cur.port, name, 1);
        added += 1;
        break;
      }
      case 12: {
        name = uniqueName("Abs");
        sys.addActor(name, "Abs");
        sys.connect(cur.actor, cur.port, name, 1);
        added += 1;
        break;
      }
      case 13: {
        name = uniqueName("Quant");
        Actor& a = sys.addActor(name, "Quantizer");
        a.params().setDouble("interval", 0.125);
        sys.connect(cur.actor, cur.port, name, 1);
        added += 1;
        break;
      }
      case 14: {
        // Bounding element: keeps arithmetic chains finite over millions of
        // steps without a libm call.
        name = uniqueName("Clamp");
        Actor& a = sys.addActor(name, "Saturation");
        a.params().setDouble("min", -4.0);
        a.params().setDouble("max", 4.0);
        sys.connect(cur.actor, cur.port, name, 1);
        added += 1;
        break;
      }
      default: {
        name = uniqueName("Sin");
        Actor& a = sys.addActor(name, "Trigonometry");
        a.params().set("op", rng_.next() % 2 == 0 ? "sin" : "cos");
        sys.connect(cur.actor, cur.port, name, 1);
        added += 1;
        break;
      }
    }
    cur = Wire{name, 1};
  }
  return cur;
}

int ModelBuilder::addCompSubsystem(int innerActors) {
  int inner = std::max(innerActors, kMinComp);
  std::vector<Wire> ins;
  int extras = 0;
  Actor& sub = makeSubsystem("Comp", {pool(), pool()}, false, 0.0, &ins, &extras);
  System& sys = *sub.subsystem();
  Wire cur = compChain(sys, ins[0], ins[1], inner - 3);
  Actor& out = sys.addActor("Out1", "Outport");
  out.params().setInt("port", 1);
  sys.connect(cur.actor, cur.port, "Out1", 1);
  pushPool(Wire{sub.name(), 1});
  return inner + 1 + extras;
}

int ModelBuilder::addLogicSubsystem(int innerActors) {
  int inner = std::max(innerActors, kMinLogic);
  std::vector<Wire> ins;
  int extras = 0;
  // Data from the pool plus two raw full-range inports: the rare-threshold
  // comparisons must see the whole [0,1) stimulus range to fire eventually.
  Actor& sub = makeSubsystem("Ctrl", {pool(), rawInport(), rawInport()},
                             false, 0.0, &ins, &extras);
  System& sys = *sub.subsystem();

  int added = 3;  // the three inport proxies
  Wire cur = ins[0];
  Wire aux = ins[1];
  Wire raw1 = ins[1];
  Wire raw2 = ins[2];
  // Rounds of compare/logic/switch (6 actors each) until the budget allows
  // only padding.
  // Condition rarities spread across decades: common branches saturate
  // immediately, the rare ones only after millions of steps — which is why
  // the faster engine keeps gaining coverage within the same wall-clock
  // budget (the paper's Table 3 dynamics). The AND of two conditions
  // multiplies the rarities, making MC/DC independence pairs rarer still.
  static const double kRareHi[] = {0.6,    0.9,     0.99,
                                   0.999,  0.9999,  0.99999};
  static const double kRareLo[] = {0.4, 0.1, 0.02, 0.005, 0.001, 0.0002};
  int round = 0;
  while (inner - added >= 6 + 1) {  // +1 for the outport
    double t1 = kRareHi[static_cast<size_t>(rng_.next() % 6)];
    std::string c1 = uniqueName("Cmp");
    Actor& a1 = sys.addActor(c1, "CompareToConstant");
    a1.params().set("op", ">");
    a1.params().setDouble("value", t1);
    sys.connect(raw1.actor, raw1.port, c1, 1);

    std::string c2 = uniqueName("Cmp");
    Actor& a2 = sys.addActor(c2, "CompareToConstant");
    a2.params().set("op", "<");
    a2.params().setDouble("value",
                          kRareLo[static_cast<size_t>(rng_.next() % 6)]);
    sys.connect(raw2.actor, raw2.port, c2, 1);
    ++round;

    std::string c3 = uniqueName("Rel");
    Actor& a3 = sys.addActor(c3, "RelationalOperator");
    a3.params().set("op", "<");
    sys.connect(cur.actor, cur.port, c3, 1);
    sys.connect(raw1.actor, raw1.port, c3, 2);

    std::string l1 = uniqueName("And");
    Actor& a4 = sys.addActor(l1, "LogicalOperator");
    a4.params().set("op", rng_.next() % 2 == 0 ? "AND" : "OR");
    a4.params().setInt("inputs", 2);
    sys.connect(c1, 1, l1, 1);
    sys.connect(c2, 1, l1, 2);

    std::string l2 = uniqueName("Or");
    Actor& a5 = sys.addActor(l2, "LogicalOperator");
    a5.params().set("op", rng_.next() % 3 == 0 ? "XOR" : "OR");
    a5.params().setInt("inputs", 2);
    sys.connect(l1, 1, l2, 1);
    sys.connect(c3, 1, l2, 2);

    std::string sw = uniqueName("Sw");
    Actor& a6 = sys.addActor(sw, "Switch");
    a6.params().set("criteria", "~=0");
    sys.connect(cur.actor, cur.port, sw, 1);
    sys.connect(l2, 1, sw, 2);
    sys.connect(raw2.actor, raw2.port, sw, 3);

    cur = Wire{sw, 1};
    added += 6;
  }
  cur = compChain(sys, cur, aux, inner - added - 1);
  Actor& out = sys.addActor("Out1", "Outport");
  out.params().setInt("port", 1);
  sys.connect(cur.actor, cur.port, "Out1", 1);
  pushPool(Wire{sub.name(), 1});
  return inner + 1 + extras;
}

int ModelBuilder::addStateSubsystem(int innerActors) {
  int inner = std::max(innerActors, kMinState);
  std::vector<Wire> ins;
  int extras = 0;
  Actor& sub = makeSubsystem("Filt", {pool()}, false, 0.0, &ins, &extras);
  System& sys = *sub.subsystem();

  // Stable first-order low-pass: y = 0.5 u + 0.45 y[n-1].
  Actor& g1 = sys.addActor("Gu", "Gain");
  g1.params().setDouble("gain", 0.5);
  sys.connect(ins[0].actor, ins[0].port, "Gu", 1);
  Actor& mix = sys.addActor("Mix", "Sum");
  mix.params().set("ops", "++");
  sys.connect("Gu", 1, "Mix", 1);
  Actor& ud = sys.addActor("Prev", "UnitDelay");
  (void)ud;
  sys.connect("Mix", 1, "Prev", 1);
  Actor& g2 = sys.addActor("Gy", "Gain");
  g2.params().setDouble("gain", 0.45);
  sys.connect("Prev", 1, "Gy", 1);
  sys.connect("Gy", 1, "Mix", 2);
  int added = 1 + 4;  // inport + the loop
  Wire cur{"Mix", 1};

  // Additional stateful stages while budget allows.
  struct Stage {
    const char* type;
    int cost;
  };
  const Stage stages[] = {
      {"RateLimiter", 1}, {"ZeroOrderHold", 1}, {"Delay", 1},
      {"DiscreteFilter", 1}, {"DiscreteDerivative", 1}, {"Memory", 1},
  };
  size_t next = 0;
  while (inner - added - 1 >= 1 && next < 12) {
    const Stage& st = stages[next % 6];
    ++next;
    if (inner - added - 1 < st.cost) break;
    std::string name = uniqueName(st.type);
    Actor& a = sys.addActor(name, st.type);
    if (std::string(st.type) == "RateLimiter") {
      a.params().setDouble("rising", 0.2);
      a.params().setDouble("falling", -0.2);
    } else if (std::string(st.type) == "ZeroOrderHold") {
      a.params().setInt("sample", 4);
    } else if (std::string(st.type) == "Delay") {
      a.params().setInt("length", 3);
    } else if (std::string(st.type) == "DiscreteFilter") {
      a.params().set("num", "0.3,0.2");
      a.params().set("den", "1,-0.5");
    }
    sys.connect(cur.actor, cur.port, name, 1);
    cur = Wire{name, 1};
    added += st.cost;
  }
  cur = compChain(sys, cur, ins[0], inner - added - 1);
  Actor& out = sys.addActor("Out1", "Outport");
  out.params().setInt("port", 1);
  sys.connect(cur.actor, cur.port, "Out1", 1);
  pushPool(Wire{sub.name(), 1});
  return inner + 1 + extras;
}

int ModelBuilder::addLookupSubsystem(int innerActors) {
  int inner = std::max(innerActors, kMinLookup);
  std::vector<Wire> ins;
  int extras = 0;
  Actor& sub = makeSubsystem("Map", {pool()}, false, 0.0, &ins, &extras);
  System& sys = *sub.subsystem();

  // Bound the lookup input so the healthy models never clip the table
  // (a clipped lookup legitimately raises the out-of-bounds diagnostic).
  Actor& bound = sys.addActor("Bound", "Trigonometry");
  bound.params().set("op", "tanh");
  sys.connect(ins[0].actor, ins[0].port, "Bound", 1);
  Actor& lut = sys.addActor("Lut", "Lookup1D");
  lut.params().set("x", "-2,-1,0,1,2");
  lut.params().set("y", "0.1,0.4,0.5,0.8,1.0");
  sys.connect("Bound", 1, "Lut", 1);
  int added = 3;
  Wire cur{"Lut", 1};

  const char* extrasList[] = {"Saturation", "DeadZone", "WrapToZero", "Relay",
                              "Sign"};
  size_t next = 0;
  while (inner - added - 1 >= 1 && next < 5) {
    std::string type = extrasList[next++];
    std::string name = uniqueName(type);
    Actor& a = sys.addActor(name, type);
    if (type == "Saturation") {
      a.params().setDouble("min", -0.8);
      a.params().setDouble("max", 0.8);
    } else if (type == "DeadZone") {
      a.params().setDouble("start", -0.1);
      a.params().setDouble("end", 0.1);
    } else if (type == "WrapToZero") {
      a.params().setDouble("threshold", 0.9);
    } else if (type == "Relay") {
      a.params().setDouble("onPoint", 0.6);
      a.params().setDouble("offPoint", 0.2);
    }
    sys.connect(cur.actor, cur.port, name, 1);
    cur = Wire{name, 1};
    added += 1;
  }
  cur = compChain(sys, cur, ins[0], inner - added - 1);
  Actor& out = sys.addActor("Out1", "Outport");
  out.params().setInt("port", 1);
  sys.connect(cur.actor, cur.port, "Out1", 1);
  pushPool(Wire{sub.name(), 1});
  return inner + 1 + extras;
}

int ModelBuilder::addEnabledCompSubsystem(int innerActors, double threshold) {
  int inner = std::max(innerActors, kMinComp);
  std::vector<Wire> ins;
  int extras = 0;
  Actor& sub = makeSubsystem("Gated", {pool(), pool()}, true, threshold,
                             &ins, &extras);
  System& sys = *sub.subsystem();
  Wire cur = compChain(sys, ins[0], ins[1], inner - 3);
  Actor& out = sys.addActor("Out1", "Outport");
  out.params().setInt("port", 1);
  sys.connect(cur.actor, cur.port, "Out1", 1);
  // Gated outputs hold their last value while disabled; they are usable
  // wires but we do not return them to the pool to keep downstream
  // consumers always-fresh.
  return inner + 1 + extras;
}

int ModelBuilder::addMiniSubsystem() {
  std::vector<Wire> ins;
  int extras = 0;
  Actor& sub = makeSubsystem("Mini", {pool()}, false, 0.0, &ins, &extras);
  System& sys = *sub.subsystem();
  Actor& g = sys.addActor("G", "Gain");
  g.params().setDouble("gain", 0.8);
  sys.connect(ins[0].actor, ins[0].port, "G", 1);
  Actor& out = sys.addActor("Out1", "Outport");
  out.params().setInt("port", 1);
  sys.connect("G", 1, "Out1", 1);
  pushPool(Wire{sub.name(), 1});
  return 4;
}

void ModelBuilder::addRootFiller(int n) {
  if (n <= 0) return;
  Wire cur = pool();
  for (int k = 0; k < n - 1; ++k) {
    std::string name = uniqueName(k % 2 == 0 ? "FGain" : "FBias");
    Actor& a = root().addActor(name, k % 2 == 0 ? "Gain" : "Bias");
    if (k % 2 == 0) {
      a.params().setDouble("gain", 0.7);
    } else {
      a.params().setDouble("bias", 0.1);
    }
    root().connect(cur.actor, cur.port, name, 1);
    cur = Wire{name, 1};
  }
  std::string term = uniqueName("Term");
  root().addActor(term, "Terminator");
  root().connect(cur.actor, cur.port, term, 1);
}

}  // namespace accmos
