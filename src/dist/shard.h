// Sharded campaigns: the deterministic seed-order merge taken across
// process boundaries (docs/CAMPAIGNS.md, "Sharded campaigns").
//
// A coordinator splits a campaign's spec list into contiguous shards and
// fans them over N `accmos shard-worker` processes, each running the
// existing parallel/batched/tiered campaign engine (SpecEvaluator) on its
// sub-range. Workers stream per-spec SimulationResults back over the
// length-prefixed JSON frame protocol (src/serve/protocol.h) on a
// socketpair; the coordinator concatenates them in shard order and runs
// the very same spec-order merge a single process runs (mergeSpecResults),
// so the final CampaignResult is bit-identical to `runCampaignSpecs` for
// any shard count x worker count x lane count.
//
// All shards point at one coordinator-owned compile-cache directory (the
// shared artifact store); the cross-process single-flight claim in
// CompilerDriver makes a cold campaign pay exactly one compiler
// invocation fleet-wide.
//
// Fault containment mirrors the in-process campaign contract:
//  * A worker-process death (crash, kill, transport loss) surfaces as
//    contained per-spec RunFailures for that shard's unanswered specs —
//    never a coordinator abort; other shards are unaffected.
//  * SIGINT/SIGTERM propagate cooperatively: the coordinator forwards the
//    signal to every worker, each flushes the contiguous prefix it
//    finished, and the merged result covers the longest contiguous global
//    prefix — bit-identical to the same prefix of an uninterrupted
//    campaign (CLI exit code 9, docs/ROBUSTNESS.md).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/campaign.h"
#include "sim/options.h"
#include "sim/testcase.h"

namespace accmos::dist {

struct ShardOptions {
  // Worker processes to spawn; clamped to [1, specs.size()].
  size_t shards = 1;
  // The accmos binary to exec as `<workerPath> shard-worker`. Empty means
  // self (/proc/self/exe) — right for the CLI; tests that are not the
  // accmos binary themselves pass the CLI path explicitly.
  std::string workerPath;
  // Shared artifact store every shard compiles against (exported to the
  // workers as ACCMOS_CACHE_DIR). Empty means the coordinator's own
  // resolved cache dir, so the fleet always agrees on one store.
  std::string cacheDir;
};

// Fleet-level bookkeeping a CampaignResult has no fields for.
struct ShardStats {
  size_t shards = 0;               // worker processes actually spawned
  size_t deadWorkers = 0;          // workers that died without finishing
  // Compiler invocations summed across every worker process plus the
  // coordinator — the "exactly one cold compile fleet-wide" assertion.
  uint64_t fleetCompilerInvocations = 0;
};

// Contiguous split: shard i covers [i*n/N, (i+1)*n/N) of n specs —
// every spec in exactly one shard, shards ordered, sizes within one.
std::vector<std::pair<size_t, size_t>> shardRanges(size_t specCount,
                                                   size_t shards);

// The coordinator. Spawns the workers, streams, merges; throws ModelError
// for an unusable configuration (empty specs, uninstrumented engine) and
// serve::ProtocolError only when a worker cannot even be spawned. Worker
// failures after spawn are contained (see above). `opt.campaign.workers`
// is each shard's INNER parallelism.
CampaignResult runShardedCampaign(const std::string& modelText,
                                  const SimOptions& opt,
                                  const std::vector<TestCaseSpec>& specs,
                                  const ShardOptions& sopt,
                                  ShardStats* stats = nullptr);

// The worker side of the protocol, speaking both directions on `fd`
// (the coordinator dup2()s its socketpair end onto fd 0 before exec).
// Reads one ShardRequest frame, evaluates the shard's specs in blocks on
// one SpecEvaluator, streams ShardPartial frames, finishes with a
// ShardDone frame. Returns the process exit code: 0 on a clean finish
// (including a cooperative interrupt — the coordinator owns the exit
// semantics), nonzero when the request itself was unusable.
int runShardWorker(int fd);

}  // namespace accmos::dist
