#include "dist/shard.h"

#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "codegen/compiler_driver.h"
#include "opt/pipeline.h"
#include "parser/model_io.h"
#include "serve/protocol.h"
#include "sim/interrupt.h"
#include "sim/simulator.h"

namespace accmos::dist {
namespace {

using serve::Json;
using serve::ProtocolError;

// Specs evaluated per partial frame on the worker side. Small enough that
// an interrupt flushes promptly and the coordinator sees steady progress,
// large enough that framing overhead stays negligible next to the runs.
constexpr size_t kBlockSpecs = 128;

void checkInstrumented(const SimOptions& opt) {
  if (opt.engine != Engine::SSE && opt.engine != Engine::AccMoS) {
    throw ModelError(
        "sharded campaigns need an instrumented engine (SSE or AccMoS)");
  }
  if (!opt.coverage) {
    throw ModelError("sharded campaigns accumulate coverage; enable it");
  }
}

std::string selfExePath() {
  char buf[4096];
  ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) {
    throw ProtocolError("cannot resolve /proc/self/exe for shard workers");
  }
  buf[n] = '\0';
  return buf;
}

// Contained stand-in for a spec whose worker process died before
// answering it — the cross-process analogue of a contained crash.
SimulationResult workerDeathResult(uint64_t seed, size_t shard,
                                   const std::string& detail) {
  SimulationResult r;
  r.failed = true;
  r.failure.kind = FailureKind::Crash;
  r.failure.seed = seed;
  r.failure.backend = "shard-worker";
  r.failure.message = "shard " + std::to_string(shard) +
                      " worker process died before answering this spec" +
                      (detail.empty() ? "" : " (" + detail + ")");
  return r;
}

struct WorkerProc {
  pid_t pid = -1;
  int fd = -1;           // coordinator's socketpair end
  size_t begin = 0;      // global spec range [begin, end)
  size_t end = 0;
  std::vector<SimulationResult> results;  // shard-local, size end-begin
  size_t received = 0;   // contiguous shard-local prefix received
  bool gotDone = false;
  serve::ShardDone done;
  std::string error;     // transport/protocol trouble or in-band error
};

// Drains one worker's frame stream: contiguous partials, then done. Any
// deviation — out-of-order partial, garbage, transport loss, EOF before
// done — lands in w.error; the caller contains it per-shard.
void drainWorker(WorkerProc& w) {
  try {
    std::string text;
    while (serve::readFrame(w.fd, &text)) {
      Json j = serve::parseJson(text);
      const std::string& op = j.at("op", "$").asString("$.op");
      if (op == "partial") {
        serve::ShardPartial p = serve::shardPartialFromJson(j, "$");
        if (p.first != w.received ||
            w.received + p.results.size() > w.results.size()) {
          throw ProtocolError("shard worker sent a non-contiguous partial");
        }
        for (size_t i = 0; i < p.results.size(); ++i) {
          w.results[p.first + i] = std::move(p.results[i]);
        }
        w.received += p.results.size();
      } else if (op == "done") {
        w.done = serve::shardDoneFromJson(j, "$");
        // The done frame may only confirm what the partials delivered.
        if (w.done.completed > w.received) {
          throw ProtocolError(
              "shard worker claimed more completed specs than it sent");
        }
        w.gotDone = true;
      } else if (op == "error") {
        throw ProtocolError("shard worker reported: " +
                            j.at("error", "$").asString("$.error"));
      } else {
        throw ProtocolError("unexpected shard frame op \"" + op + "\"");
      }
    }
  } catch (const std::exception& e) {
    w.error = e.what();
    w.gotDone = false;
  }
}

std::string describeExit(int status) {
  if (WIFEXITED(status)) {
    return "exit status " + std::to_string(WEXITSTATUS(status));
  }
  if (WIFSIGNALED(status)) {
    return std::string("killed by signal ") + std::to_string(WTERMSIG(status));
  }
  return "unknown wait status";
}

}  // namespace

std::vector<std::pair<size_t, size_t>> shardRanges(size_t specCount,
                                                    size_t shards) {
  if (shards == 0) shards = 1;
  if (shards > specCount) shards = specCount == 0 ? 1 : specCount;
  std::vector<std::pair<size_t, size_t>> out;
  out.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    out.emplace_back(i * specCount / shards, (i + 1) * specCount / shards);
  }
  return out;
}

CampaignResult runShardedCampaign(const std::string& modelText,
                                  const SimOptions& opt,
                                  const std::vector<TestCaseSpec>& specs,
                                  const ShardOptions& sopt,
                                  ShardStats* stats) {
  checkInstrumented(opt);
  if (specs.empty()) {
    throw ModelError("sharded campaign needs at least one test case");
  }
  for (const auto& spec : specs) spec.validate();

  const auto wall0 = std::chrono::steady_clock::now();

  // The coordinator never runs a spec, but it needs the (identically
  // optimized) model for the merge: the coverage plan the bitmaps are
  // decoded against must be the one the workers recorded against, and
  // flatten + optimize are deterministic on the same text and options.
  LoadedModel loaded = loadModelFromString(modelText);
  Simulator sim(*loaded.model);
  OptStats optStats;
  FlatModel optimized;
  const FlatModel* model = &sim.flatModel();
  if (opt.optimize) {
    optimized = optimizeModel(sim.flatModel(), opt, &optStats);
    model = &optimized;
  }

  const std::string workerPath =
      sopt.workerPath.empty() ? selfExePath() : sopt.workerPath;
  const std::string cacheDir =
      sopt.cacheDir.empty() ? CompilerDriver::cacheDir() : sopt.cacheDir;

  auto ranges = shardRanges(specs.size(), sopt.shards);
  std::vector<WorkerProc> workers(ranges.size());

  // Spawn first, then feed: each worker gets one end of a socketpair as
  // its fd 0 and speaks the frame protocol both ways on it (the framing
  // layer uses send/recv, which need a socket — a plain pipe won't do).
  for (size_t i = 0; i < ranges.size(); ++i) {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      throw ProtocolError(std::string("socketpair() failed: ") +
                          ::strerror(errno));
    }
    pid_t pid = ::fork();
    if (pid < 0) {
      ::close(sv[0]);
      ::close(sv[1]);
      throw ProtocolError(std::string("fork() failed: ") + ::strerror(errno));
    }
    if (pid == 0) {
      // Child: the socketpair end becomes fd 0; stdout/stderr stay
      // inherited so a worker's diagnostics reach the operator. Every
      // shard points at the coordinator's store — the fleet shares one
      // cache and the cross-process single-flight claim applies.
      ::close(sv[0]);
      if (::dup2(sv[1], 0) < 0) ::_exit(127);
      if (sv[1] != 0) ::close(sv[1]);
      ::setenv("ACCMOS_CACHE_DIR", cacheDir.c_str(), 1);
      ::execl(workerPath.c_str(), workerPath.c_str(), "shard-worker",
              static_cast<char*>(nullptr));
      ::_exit(127);
    }
    ::close(sv[1]);
    workers[i].pid = pid;
    workers[i].fd = sv[0];
    workers[i].begin = ranges[i].first;
    workers[i].end = ranges[i].second;
    workers[i].results.resize(ranges[i].second - ranges[i].first);
  }

  // One request frame per worker. Written before any reader starts: the
  // workers read their request at startup, so these writes cannot
  // deadlock against unread response frames.
  for (size_t i = 0; i < workers.size(); ++i) {
    serve::ShardRequest req;
    req.modelText = modelText;
    req.options = opt;
    req.specs.assign(specs.begin() + workers[i].begin,
                     specs.begin() + workers[i].end);
    req.shardIndex = i;
    req.shardCount = workers.size();
    try {
      serve::writeFrame(workers[i].fd, serve::toJson(req).write());
    } catch (const std::exception& e) {
      // A worker that died before reading its request is contained like
      // any other worker death — the drain below sees EOF immediately.
      workers[i].error = e.what();
    }
  }

  // Drain every worker concurrently while the main thread watches the
  // cooperative interrupt flag: on SIGINT/SIGTERM the signal is forwarded
  // once to every worker, which flush their contiguous prefixes and send
  // their done frames — graceful interruption composes across processes.
  std::atomic<size_t> draining{workers.size()};
  std::vector<std::thread> readers;
  readers.reserve(workers.size());
  for (auto& w : workers) {
    readers.emplace_back([&w, &draining] {
      drainWorker(w);
      draining.fetch_sub(1);
    });
  }
  bool forwarded = false;
  while (draining.load() > 0) {
    if (!forwarded && interruptRequested()) {
      for (const auto& w : workers) {
        if (w.pid > 0) ::kill(w.pid, SIGTERM);
      }
      forwarded = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  for (auto& t : readers) t.join();

  size_t deadWorkers = 0;
  for (auto& w : workers) {
    ::close(w.fd);
    int status = 0;
    ::waitpid(w.pid, &status, 0);
    if (!w.gotDone) {
      // Worker death containment: the specs it never answered become
      // contained per-shard RunFailures — perSeed[k] still describes
      // specs[k], other shards merge untouched, the coordinator never
      // aborts. Anything it DID stream stays bit-identical.
      ++deadWorkers;
      std::string detail = describeExit(status);
      if (!w.error.empty()) detail += "; " + w.error;
      for (size_t k = w.received; k < w.results.size(); ++k) {
        w.results[k] =
            workerDeathResult(specs[w.begin + k].seed,
                              static_cast<size_t>(&w - workers.data()),
                              detail);
      }
      w.received = w.results.size();
      w.done.completed = w.results.size();
      w.done.interrupted = false;
      w.gotDone = true;
    }
  }

  // Concatenate in shard order up to the first shard that stopped early
  // (cooperative interrupt): the global completed set must be a
  // contiguous prefix of the spec order for the partial merge to be
  // bit-identical to the same prefix of a full campaign.
  std::vector<SimulationResult> all(specs.size());
  size_t completed = 0;
  bool truncated = false;
  for (auto& w : workers) {
    const size_t local = std::min(w.done.completed, w.received);
    if (!truncated) {
      for (size_t k = 0; k < local; ++k) {
        all[w.begin + k] = std::move(w.results[k]);
      }
      completed = w.begin + local;
      if (local < w.results.size()) truncated = true;
    }
  }

  CampaignResult out =
      mergeSpecResults(*model, specs, all, completed, optStats);

  // Fleet bookkeeping: one-off costs sum across shards; the cache flag
  // holds only if every shard that built engines was served by the store.
  out.workersUsed = workers.size();
  bool anyBuilt = false;
  bool allHits = true;
  double firstResult = -1.0;
  for (const auto& w : workers) {
    out.generateSeconds += w.done.generateSeconds;
    out.compileSeconds += w.done.compileSeconds;
    out.loadSeconds += w.done.loadSeconds;
    out.compileWaitSeconds += w.done.compileWaitSeconds;
    if (w.done.generateSeconds > 0.0 || w.done.compileSeconds > 0.0 ||
        w.done.compileCacheHit) {
      anyBuilt = true;
      allHits = allHits && w.done.compileCacheHit;
    }
    if (w.done.timeToFirstResultSeconds >= 0.0 &&
        (firstResult < 0.0 ||
         w.done.timeToFirstResultSeconds < firstResult)) {
      firstResult = w.done.timeToFirstResultSeconds;
    }
  }
  out.compileCacheHit = anyBuilt && allHits;
  if (firstResult >= 0.0) out.timeToFirstResultSeconds = firstResult;
  out.wallSeconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - wall0)
                        .count();

  if (stats != nullptr) {
    stats->shards = workers.size();
    stats->deadWorkers = deadWorkers;
    stats->fleetCompilerInvocations = CompilerDriver::compilerInvocations();
    for (const auto& w : workers) {
      stats->fleetCompilerInvocations += w.done.compilerInvocations;
    }
  }
  return out;
}

int runShardWorker(int fd) {
  std::string text;
  try {
    if (!serve::readFrame(fd, &text)) return 1;
  } catch (const std::exception&) {
    return 1;
  }

  serve::ShardRequest req;
  try {
    Json j = serve::parseJson(text);
    const std::string& op = j.at("op", "$").asString("$.op");
    if (op != "shard") {
      throw ProtocolError("expected a shard frame, got op \"" + op + "\"");
    }
    req = serve::shardRequestFromJson(j, "$");
  } catch (const std::exception& e) {
    Json err = Json::object();
    err.set("op", Json::str("error"));
    err.set("error", Json::str(e.what()));
    try {
      serve::writeFrame(fd, err.write());
    } catch (const std::exception&) {
    }
    return 1;
  }

  // Test hook: die unceremoniously when told to, so the worker-death
  // containment path is exercisable without a real crash.
  if (const char* abortShard = std::getenv("ACCMOS_SHARD_ABORT");
      abortShard != nullptr &&
      std::string(abortShard) == std::to_string(req.shardIndex)) {
    ::_exit(134);
  }

  try {
    LoadedModel loaded = loadModelFromString(req.modelText);
    Simulator sim(*loaded.model);
    OptStats optStats;
    FlatModel optimized;
    const FlatModel* model = &sim.flatModel();
    if (req.options.optimize) {
      optimized = optimizeModel(sim.flatModel(), req.options, &optStats);
      model = &optimized;
    }
    SpecEvaluator evaluator(*model, req.options);

    // Evaluate in blocks so partial results stream out and a cooperative
    // interrupt (the coordinator forwards SIGINT/SIGTERM; the CLI
    // installed the handlers) flushes promptly. Per-spec results do not
    // depend on batch boundaries, so blocking changes nothing observable.
    size_t completed = 0;
    bool interrupted = false;
    for (size_t b0 = 0; b0 < req.specs.size() && !interrupted;
         b0 += kBlockSpecs) {
      if (interruptRequested()) break;
      const size_t b1 = std::min(req.specs.size(), b0 + kBlockSpecs);
      std::vector<TestCaseSpec> block(req.specs.begin() + b0,
                                      req.specs.begin() + b1);
      std::vector<uint8_t> done;
      std::vector<SimulationResult> rs = evaluator.evaluate(block, &done);
      size_t n = 0;
      while (n < done.size() && done[n] != 0) ++n;
      serve::ShardPartial p;
      p.first = b0;
      p.results.assign(std::make_move_iterator(rs.begin()),
                       std::make_move_iterator(rs.begin() + n));
      serve::writeFrame(fd, serve::toJson(p).write());
      completed = b0 + n;
      if (n < block.size()) interrupted = true;
    }

    serve::ShardDone d;
    d.completed = completed;
    d.interrupted = completed < req.specs.size();
    d.generateSeconds = evaluator.generateSeconds();
    d.compileSeconds = evaluator.compileSeconds();
    d.loadSeconds = evaluator.loadSeconds();
    d.compileWaitSeconds = evaluator.compileWaitSeconds();
    d.compileCacheHit =
        evaluator.enginesBuilt() > 0 && evaluator.allCompileCacheHits();
    d.timeToFirstResultSeconds = evaluator.timeToFirstResultSeconds();
    d.compilerInvocations = CompilerDriver::compilerInvocations();
    serve::writeFrame(fd, serve::toJson(d).write());
    return 0;
  } catch (const std::exception& e) {
    Json err = Json::object();
    err.set("op", Json::str("error"));
    err.set("error", Json::str(e.what()));
    try {
      serve::writeFrame(fd, err.write());
    } catch (const std::exception&) {
    }
    return 1;
  }
}

}  // namespace accmos::dist
