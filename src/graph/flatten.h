// Model preprocessing: subsystem flattening, signal resolution, and
// execution-order scheduling (paper §3.1).
#pragma once

#include "graph/catalog.h"
#include "graph/flat_model.h"

namespace accmos {

// Flattens `model` into a scheduled FlatModel.
//
// Throws ModelError on:
//  - unknown actor types,
//  - unconnected or multiply-driven input ports,
//  - algebraic loops (cycles not broken by a delay-class actor); the error
//    message lists the actors on the cycle,
//  - malformed subsystems (missing/duplicate Inport/Outport indices,
//    nested enabled subsystems).
FlatModel flatten(const Model& model, const ActorCatalog& catalog);

}  // namespace accmos
