// Flattened, scheduled form of a model — the output of the paper's Model
// Preprocessing step (§3.1).
//
// Subsystems are inlined, every actor gets a unique path
// (MODEL_SUBSYSTEM_ACTOR, the paper's index-key convention), all signal
// relationships are resolved to dense signal IDs, and actors are ordered by
// a topological sort of the directed computation graph (the paper's
// data-flow labelling / schedule-convert module).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/model.h"

namespace accmos {

struct SignalInfo {
  DataType type = DataType::F64;
  int width = 1;
  int producerActor = -1;  // flat actor id
  int producerPort = 0;    // 0-based output port on the producer
  std::string name;        // producer path + ":" + 1-based port
};

struct FlatActor {
  int id = -1;
  std::string path;         // MODEL_SUB_ACTOR unique key
  const Actor* src = nullptr;
  std::vector<int> inputs;   // signal id per 0-based input port
  std::vector<int> outputs;  // signal id per 0-based output port
  int enableSignal = -1;     // gating signal when inside an enabled subsystem
  bool delayClass = false;   // output depends on state, not current inputs
  int dataStore = -1;        // store index for DataStore{Read,Write,Memory}

  const std::string& type() const { return src->type(); }
};

// A named global variable shared by DataStoreRead/Write actors (the paper's
// case study uses one: the CSEV `quantity` accumulator).
struct DataStoreInfo {
  std::string name;
  DataType type = DataType::F64;
  int width = 1;
  double initial = 0.0;
};

struct FlatModel {
  std::string modelName;
  std::vector<FlatActor> actors;
  std::vector<SignalInfo> signals;
  // Execution order (flat actor ids). Every actor appears exactly once.
  std::vector<int> schedule;
  // Root-level Inport/Outport actor ids ordered by their `port` parameter.
  std::vector<int> rootInports;
  std::vector<int> rootOutports;
  std::vector<DataStoreInfo> dataStores;
  // Actors synthesized by the optimization pipeline (src/opt): a FlatActor's
  // `src` normally points into the source Model, so replacements (e.g.
  // folded Constants) are owned here. shared_ptr keeps FlatModel copyable
  // without rewriting the raw pointers.
  std::vector<std::shared_ptr<const Actor>> synthesized;

  const FlatActor& actor(int id) const {
    return actors[static_cast<size_t>(id)];
  }
  const SignalInfo& signal(int id) const {
    return signals[static_cast<size_t>(id)];
  }
  // Flat actor with the given path; nullptr when absent.
  const FlatActor* findByPath(const std::string& path) const;
};

}  // namespace accmos
