#include "graph/flatten.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace accmos {
namespace {

bool isSubsystemType(const Actor& a) {
  return a.type() == "Subsystem" || a.type() == "EnabledSubsystem";
}

bool isEnabledSubsystem(const Actor& a) {
  return a.type() == "EnabledSubsystem";
}

// Identifies one actor inside one system instance. Every System object is a
// unique instance (no block libraries), so pointers are stable keys.
struct PortRef {
  const System* system = nullptr;
  const Actor* actor = nullptr;
  int port = 1;  // 1-based

  bool operator<(const PortRef& o) const {
    return std::tie(system, actor, port) < std::tie(o.system, o.actor, o.port);
  }
};

class Flattener {
 public:
  Flattener(const Model& model, const ActorCatalog& catalog)
      : model_(model), catalog_(catalog) {
    out_.modelName = model.name();
  }

  FlatModel run() {
    indexSystem(model_.root(), nullptr, nullptr);
    collectDataStores();
    instantiate(model_.root(), model_.name(), false);
    resolveAllInputs();
    collectRootPorts();
    scheduleActors();
    return std::move(out_);
  }

 private:
  struct SystemCtx {
    const System* parentSystem = nullptr;  // system containing `owner`
    const Actor* owner = nullptr;          // subsystem actor owning this system
  };

  // ---- indexing -------------------------------------------------------

  void indexSystem(const System& sys, const System* parent,
                   const Actor* owner) {
    ctx_[&sys] = SystemCtx{parent, owner};
    for (const auto& a : sys.actors()) {
      if (a->isSubsystem()) {
        if (!isSubsystemType(*a)) {
          throw ModelError("actor '" + a->name() +
                           "' has a nested system but type '" + a->type() +
                           "'");
        }
        indexSystem(*a->subsystem(), &sys, a.get());
      } else if (isSubsystemType(*a)) {
        throw ModelError("subsystem actor '" + a->name() +
                         "' has no nested system");
      }
    }
  }

  void collectDataStores() {
    collectStoresIn(model_.root());
  }

  void collectStoresIn(const System& sys) {
    for (const auto& a : sys.actors()) {
      if (a->type() == "DataStoreMemory") {
        DataStoreInfo info;
        info.name = a->params().getString("store", a->name());
        info.type = a->dtype();
        info.width = a->width();
        info.initial = a->params().getDouble("initial", 0.0);
        for (const auto& existing : out_.dataStores) {
          if (existing.name == info.name) {
            throw ModelError("duplicate data store '" + info.name + "'");
          }
        }
        out_.dataStores.push_back(std::move(info));
      }
      if (a->isSubsystem()) collectStoresIn(*a->subsystem());
    }
  }

  int storeIndex(const Actor& a) const {
    std::string name = a.params().getString("store");
    if (name.empty()) {
      throw ModelError("actor '" + a.name() + "' needs a 'store' parameter");
    }
    for (size_t k = 0; k < out_.dataStores.size(); ++k) {
      if (out_.dataStores[k].name == name) return static_cast<int>(k);
    }
    throw ModelError("actor '" + a.name() + "' references unknown data store '" +
                     name + "'");
  }

  // ---- instantiation --------------------------------------------------

  bool isProxyPort(const System& sys, const Actor& a) const {
    // Inport/Outport inside a nested system are wiring proxies; at the root
    // they are the model's real I/O actors.
    if (a.type() != "Inport" && a.type() != "Outport") return false;
    return ctx_.at(&sys).owner != nullptr;
  }

  void instantiate(const System& sys, const std::string& pathPrefix,
                   bool inEnabled) {
    for (const auto& a : sys.actors()) {
      if (a->isSubsystem()) {
        bool subEnabled = inEnabled;
        if (isEnabledSubsystem(*a)) {
          if (inEnabled) {
            throw ModelError("nested enabled subsystems are not supported ('" +
                             a->name() + "')");
          }
          // The enable signal is resolved after all outputs exist.
          pendingEnables_.push_back(a.get());
          subEnabled = true;
        }
        instantiate(*a->subsystem(), pathPrefix + "_" + a->name(), subEnabled);
        continue;
      }
      if (isProxyPort(sys, *a)) continue;

      FlatActor fa;
      fa.id = static_cast<int>(out_.actors.size());
      fa.path = pathPrefix + "_" + a->name();
      fa.src = a.get();
      fa.delayClass = catalog_.isDelayClass(*a);
      if (a->type() == "DataStoreRead" || a->type() == "DataStoreWrite" ||
          a->type() == "DataStoreMemory") {
        fa.dataStore = storeIndex(*a);
      }
      auto layout = catalog_.ports(*a);
      fa.inputs.assign(static_cast<size_t>(layout.numInputs), -1);
      for (int p = 0; p < layout.numOutputs; ++p) {
        SignalInfo sig;
        sig.type = catalog_.outputType(*a, p);
        sig.width = catalog_.outputWidth(*a, p);
        sig.producerActor = fa.id;
        sig.producerPort = p;
        sig.name = fa.path + ":" + std::to_string(p + 1);
        fa.outputs.push_back(static_cast<int>(out_.signals.size()));
        out_.signals.push_back(std::move(sig));
      }
      flatByActor_[a.get()] = fa.id;
      systemOf_[a.get()] = &sys;
      out_.actors.push_back(std::move(fa));
    }
  }

  // ---- signal resolution ----------------------------------------------

  // Finds the line driving (toActor, toPort) in `sys`; errors on 0 or >1.
  const Line& drivingLine(const System& sys, const std::string& toActor,
                          int toPort) const {
    const Line* found = nullptr;
    for (const auto& l : sys.lines()) {
      if (l.toActor == toActor && l.toPort == toPort) {
        if (found != nullptr) {
          throw ModelError("input port " + std::to_string(toPort) +
                           " of actor '" + toActor + "' in system '" +
                           sys.name() + "' is driven by multiple lines");
        }
        found = &l;
      }
    }
    if (found == nullptr) {
      throw ModelError("input port " + std::to_string(toPort) + " of actor '" +
                       toActor + "' in system '" + sys.name() +
                       "' is unconnected");
    }
    return *found;
  }

  // Resolves the signal produced at (sys, actorName, outPort), tracing
  // through subsystem boundaries and Inport/Outport proxies.
  int resolveOutput(const System& sys, const std::string& actorName,
                    int outPort) {
    PortRefKey key{&sys, actorName, outPort};
    auto memo = resolved_.find(key);
    if (memo != resolved_.end()) {
      if (memo->second == kInProgress) {
        throw ModelError("cyclic port wiring through '" + actorName + "'");
      }
      return memo->second;
    }
    resolved_[key] = kInProgress;
    int sig = resolveOutputUncached(sys, actorName, outPort);
    resolved_[key] = sig;
    return sig;
  }

  int resolveOutputUncached(const System& sys, const std::string& actorName,
                            int outPort) {
    const Actor* a = sys.findActor(actorName);
    if (a == nullptr) {
      throw ModelError("line references unknown actor '" + actorName +
                       "' in system '" + sys.name() + "'");
    }
    if (a->isSubsystem()) {
      // Output comes from the inner Outport proxy with port == outPort.
      const Actor* proxy = findPortProxy(*a->subsystem(), "Outport", outPort);
      if (proxy == nullptr) {
        throw ModelError("subsystem '" + a->name() + "' has no Outport " +
                         std::to_string(outPort));
      }
      const Line& l = drivingLine(*a->subsystem(), proxy->name(), 1);
      return resolveOutput(*a->subsystem(), l.fromActor, l.fromPort);
    }
    if (isProxyPort(sys, *a)) {
      if (a->type() == "Outport") {
        throw ModelError("Outport proxy '" + a->name() +
                         "' used as a signal source");
      }
      // Inner Inport k aliases input port k of the owning subsystem actor.
      int portIdx = static_cast<int>(a->params().getInt("port", 1));
      const SystemCtx& c = ctx_.at(&sys);
      const Line& l = drivingLine(*c.parentSystem, c.owner->name(), portIdx);
      return resolveOutput(*c.parentSystem, l.fromActor, l.fromPort);
    }
    // Concrete actor.
    int flatId = flatByActor_.at(a);
    const FlatActor& fa = out_.actors[static_cast<size_t>(flatId)];
    if (outPort < 1 || outPort > static_cast<int>(fa.outputs.size())) {
      throw ModelError("actor '" + fa.path + "' has no output port " +
                       std::to_string(outPort));
    }
    return fa.outputs[static_cast<size_t>(outPort - 1)];
  }

  static const Actor* findPortProxy(const System& sys, const std::string& type,
                                    int portIdx) {
    const Actor* found = nullptr;
    for (const auto& a : sys.actors()) {
      if (a->type() == type && a->params().getInt("port", 1) == portIdx) {
        if (found != nullptr) {
          throw ModelError("duplicate " + type + " index " +
                           std::to_string(portIdx) + " in system '" +
                           sys.name() + "'");
        }
        found = a.get();
      }
    }
    return found;
  }

  // Every line must target an existing actor and a valid input port;
  // silently dropped wiring is a modeling error.
  void checkLines(const System& sys) {
    for (const auto& l : sys.lines()) {
      const Actor* to = sys.findActor(l.toActor);
      if (to == nullptr) {
        throw ModelError("line targets unknown actor '" + l.toActor +
                         "' in system '" + sys.name() + "'");
      }
      int maxPort;
      if (to->isSubsystem()) {
        maxPort = 0;
        for (const auto& a : to->subsystem()->actors()) {
          if (a->type() == "Inport") {
            maxPort = std::max(
                maxPort, static_cast<int>(a->params().getInt("port", 1)));
          }
        }
        if (isEnabledSubsystem(*to)) ++maxPort;
      } else if (isProxyPort(sys, *to) || to->type() == "Outport") {
        maxPort = 1;
      } else {
        maxPort = catalog_.ports(*to).numInputs;
      }
      if (l.toPort < 1 || l.toPort > maxPort) {
        throw ModelError("line targets nonexistent input port " +
                         std::to_string(l.toPort) + " of actor '" +
                         l.toActor + "' in system '" + sys.name() + "'");
      }
    }
    for (const auto& a : sys.actors()) {
      if (a->isSubsystem()) checkLines(*a->subsystem());
    }
  }

  void resolveAllInputs() {
    checkLines(model_.root());
    for (auto& fa : out_.actors) {
      const System& sys = *systemOf_.at(fa.src);
      for (size_t p = 0; p < fa.inputs.size(); ++p) {
        const Line& l = drivingLine(sys, fa.src->name(), static_cast<int>(p) + 1);
        fa.inputs[p] = resolveOutput(sys, l.fromActor, l.fromPort);
      }
    }
    // Enabled subsystems: resolve enable ports, then assign the enable
    // signal to every flat actor instantiated inside.
    for (const Actor* sub : pendingEnables_) {
      const System& inner = *sub->subsystem();
      const System& parent = *ctx_.at(&inner).parentSystem;
      int enablePort = enablePortIndex(*sub);
      const Line& l = drivingLine(parent, sub->name(), enablePort);
      int enableSig = resolveOutput(parent, l.fromActor, l.fromPort);
      assignEnable(inner, enableSig);
    }
  }

  // The enable port is numbered after all data Inports of the subsystem.
  int enablePortIndex(const Actor& sub) const {
    int maxPort = 0;
    for (const auto& a : sub.subsystem()->actors()) {
      if (a->type() == "Inport") {
        maxPort = std::max(maxPort,
                           static_cast<int>(a->params().getInt("port", 1)));
      }
    }
    return maxPort + 1;
  }

  void assignEnable(const System& sys, int enableSig) {
    for (const auto& a : sys.actors()) {
      if (a->isSubsystem()) {
        assignEnable(*a->subsystem(), enableSig);
        continue;
      }
      auto it = flatByActor_.find(a.get());
      if (it != flatByActor_.end()) {
        out_.actors[static_cast<size_t>(it->second)].enableSignal = enableSig;
      }
    }
  }

  // ---- root ports -----------------------------------------------------

  void collectRootPorts() {
    std::map<int, int> ins;
    std::map<int, int> outs;
    for (const auto& fa : out_.actors) {
      const System& sys = *systemOf_.at(fa.src);
      if (ctx_.at(&sys).owner != nullptr) continue;
      int portIdx = static_cast<int>(fa.src->params().getInt("port", 1));
      if (fa.type() == "Inport") {
        if (!ins.emplace(portIdx, fa.id).second) {
          throw ModelError("duplicate root Inport index " +
                           std::to_string(portIdx));
        }
      } else if (fa.type() == "Outport") {
        if (!outs.emplace(portIdx, fa.id).second) {
          throw ModelError("duplicate root Outport index " +
                           std::to_string(portIdx));
        }
      }
    }
    for (const auto& [idx, id] : ins) out_.rootInports.push_back(id);
    for (const auto& [idx, id] : outs) out_.rootOutports.push_back(id);
  }

  // ---- scheduling -----------------------------------------------------

  void scheduleActors() {
    const size_t n = out_.actors.size();
    std::vector<std::vector<int>> succ(n);
    std::vector<int> indeg(n, 0);

    auto addEdge = [&](int from, int to) {
      if (from == to) return;
      succ[static_cast<size_t>(from)].push_back(to);
      ++indeg[static_cast<size_t>(to)];
    };

    for (const auto& fa : out_.actors) {
      if (!fa.delayClass) {
        for (int sig : fa.inputs) {
          addEdge(out_.signals[static_cast<size_t>(sig)].producerActor, fa.id);
        }
      }
      if (fa.enableSignal >= 0) {
        addEdge(out_.signals[static_cast<size_t>(fa.enableSignal)].producerActor,
                fa.id);
      }
    }

    // Kahn's algorithm with deterministic id-ordered selection.
    std::set<int> ready;
    for (size_t k = 0; k < n; ++k) {
      if (indeg[k] == 0) ready.insert(static_cast<int>(k));
    }
    while (!ready.empty()) {
      int id = *ready.begin();
      ready.erase(ready.begin());
      out_.schedule.push_back(id);
      for (int s : succ[static_cast<size_t>(id)]) {
        if (--indeg[static_cast<size_t>(s)] == 0) ready.insert(s);
      }
    }
    if (out_.schedule.size() != n) {
      std::ostringstream os;
      os << "algebraic loop detected involving:";
      for (size_t k = 0; k < n; ++k) {
        if (indeg[k] > 0) os << " '" << out_.actors[k].path << "'";
      }
      os << " (insert a UnitDelay/Memory actor to break the loop)";
      throw ModelError(os.str());
    }
  }

  // ---- state ----------------------------------------------------------

  struct PortRefKey {
    const System* system;
    std::string actor;
    int port;
    bool operator<(const PortRefKey& o) const {
      return std::tie(system, actor, port) <
             std::tie(o.system, o.actor, o.port);
    }
  };
  static constexpr int kInProgress = -2;

  const Model& model_;
  const ActorCatalog& catalog_;
  FlatModel out_;
  std::map<const System*, SystemCtx> ctx_;
  std::map<const Actor*, int> flatByActor_;
  std::map<const Actor*, const System*> systemOf_;
  std::map<PortRefKey, int> resolved_;
  std::vector<const Actor*> pendingEnables_;
};

}  // namespace

const FlatActor* FlatModel::findByPath(const std::string& path) const {
  for (const auto& fa : actors) {
    if (fa.path == path) return &fa;
  }
  return nullptr;
}

FlatModel flatten(const Model& model, const ActorCatalog& catalog) {
  return Flattener(model, catalog).run();
}

}  // namespace accmos
