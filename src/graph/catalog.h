// Interface the flattener uses to query actor-type metadata without
// depending on the concrete actor template library (which lives above the
// graph layer).
#pragma once

#include "ir/model.h"

namespace accmos {

class ActorCatalog {
 public:
  virtual ~ActorCatalog() = default;

  struct PortLayout {
    int numInputs = 0;
    int numOutputs = 0;
  };

  // Port layout for a concrete (non-subsystem) actor instance; parameters
  // may affect it (e.g. a Sum with ops "++-" has three inputs).
  // Throws ModelError for unknown actor types.
  virtual PortLayout ports(const Actor& actor) const = 0;

  // Delay-class actors produce this step's output from state alone; their
  // inputs are consumed in the update phase. They break feedback cycles.
  virtual bool isDelayClass(const Actor& actor) const = 0;

  // Data type / width of the given 0-based output port.
  virtual DataType outputType(const Actor& actor, int port) const = 0;
  virtual int outputWidth(const Actor& actor, int port) const = 0;
};

}  // namespace accmos
