// Per-pass statistics of the model optimization pipeline (src/opt). Kept
// dependency-free so SimulationResult/CampaignResult can embed it without
// pulling the pass implementations into every consumer.
#pragma once

#include <string>

namespace accmos {

struct OptStats {
  bool ran = false;  // false when SimOptions::optimize was off

  int actorsBefore = 0;
  int actorsAfter = 0;
  int signalsBefore = 0;
  int signalsAfter = 0;

  int actorsFolded = 0;        // replaced by synthesized Constant actors
  int identitiesBypassed = 0;  // consumers rewired around identity actors
  int actorsEliminated = 0;    // removed as dead (with their signals)
  int signalsEliminated = 0;
  int stateUpdatesHoisted = 0;  // delay-class actors moved to schedule front

  std::string summary() const {
    if (!ran) return "optimization off";
    return "folded " + std::to_string(actorsFolded) + ", bypassed " +
           std::to_string(identitiesBypassed) + ", eliminated " +
           std::to_string(actorsEliminated) + " actor(s) / " +
           std::to_string(signalsEliminated) + " signal(s), hoisted " +
           std::to_string(stateUpdatesHoisted) + " state update(s) (" +
           std::to_string(actorsBefore) + " -> " +
           std::to_string(actorsAfter) + " actors)";
  }
};

}  // namespace accmos
