#include "opt/passes.h"

#include "actors/common.h"
#include "actors/spec.h"

namespace accmos::opt {
namespace {

// The runtime Value an un-gated Constant/Ground producer yields: its
// parameter list stored through the output signal's type — exactly the
// conversion its eval() applies.
bool producerConstValue(const FlatModel& fm, int sigId, Value* out) {
  const SignalInfo& si = fm.signal(sigId);
  if (si.producerActor < 0) return false;
  const FlatActor& p = fm.actor(si.producerActor);
  if (p.enableSignal >= 0) return false;
  Value v(si.type, si.width);
  if (p.type() == "Ground") {
    for (int i = 0; i < si.width; ++i) v.setI(i, 0);
  } else if (p.type() == "Constant") {
    std::vector<double> vals = p.src->params().getDoubleList("value");
    if (vals.empty()) vals.push_back(p.src->params().getDouble("value", 0.0));
    vals.resize(static_cast<size_t>(si.width), vals.back());
    for (int i = 0; i < si.width; ++i) v.store(i, vals[i]);
  } else {
    return false;
  }
  *out = std::move(v);
  return true;
}

// Every element of the constant, read in the consumer's compute domain
// (double for float outputs, int64 otherwise — mirroring inD()/inI()),
// equals `want`.
bool allElems(const Value& v, bool floatDomain, double want) {
  for (int i = 0; i < v.width(); ++i) {
    if (floatDomain) {
      if (v.asDouble(i) != want) return false;
    } else {
      if (v.asInt(i) != static_cast<int64_t>(want)) return false;
    }
  }
  return true;
}

// The signal `in` can stand in for `out` bit-exactly at every consumer:
// identical type and width (no broadcast, no conversion).
bool sameShape(const FlatModel& fm, int in, int out) {
  const SignalInfo& a = fm.signal(in);
  const SignalInfo& b = fm.signal(out);
  return a.type == b.type && a.width == b.width;
}

// Returns the input signal this actor provably forwards unchanged, or -1.
//
// Float-domain guards: x + 0.0 is NOT an identity ((-0.0) + 0.0 == +0.0
// flips the sign bit), so Sum bypasses are integer-only; x * 1.0 IS exact
// for every finite and infinite double including -0.0, so Gain-of-1 and
// Product bypasses apply to floats too.
int forwardedInput(const FlatModel& fm, const FlatActor& fa) {
  if (fa.outputs.size() != 1 || fa.inputs.empty()) return -1;
  const int out = fa.outputs[0];
  const bool floatOut = isFloatType(fm.signal(out).type);
  const std::string& ty = fa.type();

  if (ty == "Gain") {
    if (fa.src->params().getDouble("gain", 1.0) != 1.0) return -1;
    return sameShape(fm, fa.inputs[0], out) ? fa.inputs[0] : -1;
  }
  if (ty == "Sum") {
    auto ops = parseOps(*fa.src, "++", "+-");
    if (floatOut) return -1;
    if (ops.size() == 1 && ops[0] == '+' &&
        sameShape(fm, fa.inputs[0], out)) {
      return fa.inputs[0];
    }
    if (ops.size() == 2) {
      // Keep the '+' operand, drop a constant-zero operand (x + 0 and
      // x - 0 are both exact in wrap-around integer arithmetic).
      for (int keep = 0; keep < 2; ++keep) {
        int drop = 1 - keep;
        if (ops[static_cast<size_t>(keep)] != '+') continue;
        if (!sameShape(fm, fa.inputs[static_cast<size_t>(keep)], out)) {
          continue;
        }
        Value c;
        if (producerConstValue(fm, fa.inputs[static_cast<size_t>(drop)],
                               &c) &&
            allElems(c, false, 0.0)) {
          return fa.inputs[static_cast<size_t>(keep)];
        }
      }
    }
    return -1;
  }
  if (ty == "Product") {
    auto ops = parseOps(*fa.src, "**", "*/");
    if (ops.size() == 1 && ops[0] == '*' &&
        sameShape(fm, fa.inputs[0], out)) {
      return fa.inputs[0];  // acc = 1 * x: exact for int and float
    }
    if (ops.size() == 2) {
      for (int keep = 0; keep < 2; ++keep) {
        int drop = 1 - keep;
        if (ops[static_cast<size_t>(keep)] != '*') continue;
        if (!sameShape(fm, fa.inputs[static_cast<size_t>(keep)], out)) {
          continue;
        }
        Value c;
        if (producerConstValue(fm, fa.inputs[static_cast<size_t>(drop)],
                               &c) &&
            allElems(c, floatOut, 1.0)) {
          return fa.inputs[static_cast<size_t>(keep)];  // x*1 or x/1: exact
        }
      }
    }
    return -1;
  }
  return -1;
}

}  // namespace

void simplifyIdentities(FlatModel& fm, const SimOptions& opt,
                        OptStats& stats) {
  (void)opt;  // the bypassed actor still evaluates, so no instrumentation
              // guard is needed — only consumers are rewired
  const Registry& reg = Registry::instance();

  // fwd maps a signal to the signal it is provably identical to; resolve()
  // collapses chains built up as the schedule is walked in order.
  std::vector<int> fwd(fm.signals.size());
  for (size_t k = 0; k < fwd.size(); ++k) fwd[k] = static_cast<int>(k);
  auto resolve = [&](int s) {
    while (fwd[static_cast<size_t>(s)] != s) s = fwd[static_cast<size_t>(s)];
    return s;
  };

  for (int id : fm.schedule) {
    const FlatActor& fa = fm.actors[static_cast<size_t>(id)];
    if (fa.delayClass || fa.enableSignal >= 0 || fa.dataStore >= 0) continue;
    if (reg.get(fa).state(fm, fa).has_value()) continue;
    int in = forwardedInput(fm, fa);
    if (in < 0) continue;
    fwd[static_cast<size_t>(fa.outputs[0])] = resolve(in);
    stats.identitiesBypassed += 1;
  }
  if (stats.identitiesBypassed == 0) return;

  // Rewire consumers through the forwarding map. Scope/Display inputs stay
  // as wired: the engines collect those exact signals, and rewiring them
  // would change the reported monitor paths.
  for (auto& fa : fm.actors) {
    if (fa.type() == "Scope" || fa.type() == "Display") continue;
    for (int& in : fa.inputs) in = resolve(in);
    if (fa.enableSignal >= 0) fa.enableSignal = resolve(fa.enableSignal);
  }
}

}  // namespace accmos::opt
