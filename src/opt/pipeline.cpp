#include "opt/pipeline.h"

#include "actors/spec.h"
#include "opt/passes.h"

namespace accmos {

FlatModel optimizeModel(const FlatModel& fm, const SimOptions& opt,
                        OptStats* stats) {
  FlatModel out = fm;
  OptStats st;
  st.ran = true;
  st.actorsBefore = static_cast<int>(out.actors.size());
  st.signalsBefore = static_cast<int>(out.signals.size());

  // Pass order: folding first (it propagates transitively in schedule
  // order), then identity bypasses (which may orphan their actors), then
  // liveness + compaction to sweep everything unobservable away. One round
  // suffices — identity bypasses create no new constants.
  opt::constantFold(out, opt, st);
  opt::simplifyIdentities(out, opt, st);
  std::vector<char> live = opt::liveActors(out, opt);
  opt::compactModel(out, live, st);

  st.actorsAfter = static_cast<int>(out.actors.size());
  st.signalsAfter = static_cast<int>(out.signals.size());

  // Safety net: the optimized model must satisfy every structural invariant
  // the engines rely on.
  validateFlatModel(out);

  if (stats != nullptr) *stats = st;
  return out;
}

}  // namespace accmos
