#include "opt/passes.h"

#include <cstdio>
#include <memory>

#include "actors/spec.h"

namespace accmos::opt {
namespace {

// Formats one folded element so ParamMap::getDoubleList (strtod) parses the
// identical value back. fmtD() is unsuitable here: it renders NaN/Inf as
// C++ expressions ("(0.0/0.0)") that strtod cannot read. %.17g round-trips
// every finite double; "inf"/"nan" are valid strtod spellings, and the
// re-evaluation check below rejects any element that does not survive the
// round trip bit-exactly (e.g. a NaN payload the parser does not
// reproduce).
std::string paramNum(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// True when eval() is a pure function of the current input signals: no
// state, no data store, no enable gate (a gated actor skips evaluation and
// holds its previous output, so its output is not step-invariant), and not
// delay-class (output comes from state). Step-dependent actors are all
// zero-input sources or stateful, so requiring inputs plus these conditions
// also excludes them.
bool pureCombinational(const FlatModel& fm, const FlatActor& fa,
                       const ActorSpec& spec) {
  return !fa.delayClass && fa.enableSignal < 0 && fa.dataStore < 0 &&
         !spec.state(fm, fa).has_value();
}

}  // namespace

void constantFold(FlatModel& fm, const SimOptions& opt, OptStats& stats) {
  const Registry& reg = Registry::instance();
  const ActorSpec& constSpec = reg.get("Constant");

  // Scratch signal storage shaped exactly like the interpreter's; the
  // sandboxed EvalContext has no instrumentation or stop flag attached, so
  // coverage marks, diagnostics and requestStop() are no-ops during
  // folding.
  std::vector<Value> sig;
  sig.reserve(fm.signals.size());
  for (const auto& s : fm.signals) sig.emplace_back(s.type, s.width);
  std::vector<Value> stores;  // never touched: foldable actors have none
  EvalContext ctx(fm, sig, stores);

  std::vector<char> isConst(fm.signals.size(), 0);

  for (int id : fm.schedule) {
    FlatActor& fa = fm.actors[static_cast<size_t>(id)];
    const ActorSpec& spec = reg.get(fa);
    if (!pureCombinational(fm, fa, spec)) continue;

    bool seed = fa.inputs.empty() &&
                (fa.type() == "Constant" || fa.type() == "Ground");
    if (!seed) {
      if (fa.inputs.empty() || fa.outputs.empty()) continue;
      bool allConst = true;
      for (int in : fa.inputs) {
        allConst = allConst && isConst[static_cast<size_t>(in)] != 0;
      }
      if (!allConst) continue;
    }

    // Evaluate with the actor's real semantics into the scratch signals.
    ctx.setActor(&fa, nullptr);
    try {
      spec.eval(ctx);
    } catch (const ModelError&) {
      continue;  // conservatively treat as non-constant
    }
    for (int out : fa.outputs) isConst[static_cast<size_t>(out)] = 1;
    if (seed) continue;

    // Rewrite to a synthesized Constant only when provably
    // observation-equivalent.
    if (fa.outputs.size() != 1) continue;
    if (opt.diagnosis && !diagKindsFor(fm, fa).empty()) continue;
    if (opt.coverage) {
      // Constant's coverage traits are the defaults; any other trait set
      // would change the plan layout or drop instrumentation marks.
      CovTraits t = covTraitsFor(fa);
      if (!t.countsForActorCoverage || t.decisionOutcomes != 0 ||
          t.numConditions != 0 || t.mcdc) {
        continue;
      }
    }

    const int out = fa.outputs[0];
    const SignalInfo& info = fm.signals[static_cast<size_t>(out)];
    const Value folded = sig[static_cast<size_t>(out)];
    std::string list;
    for (int i = 0; i < folded.width(); ++i) {
      if (i > 0) list += ",";
      list += paramNum(folded.isFloat() ? folded.f(i)
                                        : static_cast<double>(folded.i(i)));
    }

    auto synth = std::make_shared<Actor>(fa.src->name(), "Constant");
    synth->setDtype(info.type);
    synth->setWidth(info.width);
    synth->params().set("value", list);

    // Re-evaluate the synthesized Constant and require a bit-identical
    // Value; this single check subsumes every representability concern
    // (parameter round-trip, float->int store semantics, NaN payloads).
    FlatActor cand = fa;
    cand.src = synth.get();
    cand.inputs.clear();
    ctx.setActor(&cand, nullptr);
    constSpec.eval(ctx);
    bool exact = sig[static_cast<size_t>(out)] == folded;
    sig[static_cast<size_t>(out)] = folded;
    if (!exact) continue;

    fa.src = synth.get();
    fa.inputs.clear();
    fm.synthesized.push_back(std::move(synth));
    stats.actorsFolded += 1;
  }
}

}  // namespace accmos::opt
