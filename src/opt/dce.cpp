#include "opt/passes.h"

#include "actors/spec.h"

namespace accmos::opt {

std::vector<char> liveActors(const FlatModel& fm, const SimOptions& opt) {
  std::vector<char> live(fm.actors.size(), 0);
  std::vector<int> work;
  auto mark = [&](int id) {
    if (id < 0) return;
    if (live[static_cast<size_t>(id)] != 0) return;
    live[static_cast<size_t>(id)] = 1;
    work.push_back(id);
  };

  // Observation roots. Root Inports are unconditional: stimulus streams are
  // addressed by port *position*, so removing one would shift every later
  // port's random stream. Instrumented actors are roots so coverage and
  // diagnosis results are provably unchanged — an eliminated actor never
  // carried an enabled metric or check.
  for (int id : fm.rootInports) mark(id);
  for (int id : fm.rootOutports) mark(id);
  for (const auto& fa : fm.actors) {
    const std::string& ty = fa.type();
    if (ty == "Scope" || ty == "Display" || ty == "Assertion" ||
        ty == "StopSimulation") {
      mark(fa.id);
    }
    if (fa.dataStore >= 0) mark(fa.id);
    if (opt.coverage) {
      CovTraits t = covTraitsFor(fa);
      if (t.countsForActorCoverage || t.decisionOutcomes > 0 ||
          t.numConditions > 0 || t.mcdc) {
        mark(fa.id);
      }
    }
    if (opt.diagnosis && !diagKindsFor(fm, fa).empty()) mark(fa.id);
  }
  for (const auto& path : opt.collectList) {
    const FlatActor* fa = fm.findByPath(path);
    if (fa != nullptr) mark(fa->id);
  }
  for (const auto& cd : opt.customDiagnostics) {
    const FlatActor* fa = fm.findByPath(cd.actorPath);
    if (fa != nullptr) mark(fa->id);
  }

  // Backward propagation: a live actor keeps the producers of its inputs
  // (delay-class actors consume theirs in the update phase — same edges)
  // and of its enable gate.
  while (!work.empty()) {
    int id = work.back();
    work.pop_back();
    const FlatActor& fa = fm.actor(id);
    for (int in : fa.inputs) {
      mark(fm.signal(in).producerActor);
    }
    if (fa.enableSignal >= 0) {
      mark(fm.signal(fa.enableSignal).producerActor);
    }
  }
  return live;
}

}  // namespace accmos::opt
