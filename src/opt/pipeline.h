// Model-level optimization pipeline, run between flattening and engine
// construction (paper §3.1 sits upstream; both the AccMoS code generator
// and the SSE interpreter consume the optimized FlatModel unchanged).
//
// The pipeline is controlled by SimOptions::optimize (CLI --no-opt,
// environment ACCMOS_NO_OPT=1). It never changes observable behaviour:
// outputs, coverage bitmaps, diagnostics, collected signals and stop
// behaviour are bit-identical to the unoptimized model — instrumented
// actors are liveness roots and folding evaluates through the actors' own
// eval() semantics. See docs/OPTIMIZATION.md.
#pragma once

#include "graph/flat_model.h"
#include "opt/stats.h"
#include "sim/options.h"

namespace accmos {

// Returns an optimized copy of `fm`: constant folding, identity
// simplification, dead-actor/dead-signal elimination, schedule compaction.
// The input model is not modified; `stats` (optional) receives per-pass
// counts. The result is re-validated before returning.
FlatModel optimizeModel(const FlatModel& fm, const SimOptions& opt,
                        OptStats* stats = nullptr);

}  // namespace accmos
