// The individual optimization passes. Each operates on a FlatModel in
// place; optimizeModel (pipeline.h) runs them in the standard order on a
// copy. Exposed separately so tests can exercise one pass at a time.
//
// Semantics contract (see docs/OPTIMIZATION.md): for any model and any
// SimOptions, running the optimized FlatModel on any engine produces
// bit-identical outputs, coverage bitmaps, diagnostics, collected signals
// and stop behaviour to running the original. Every pass is individually
// guarded to uphold this — folding re-evaluates through the real ActorSpec
// eval (the shared ir/arith.h semantics), liveness roots include every
// instrumented actor, and identity bypasses are restricted to rewirings
// that are exact at the bit level.
#pragma once

#include <vector>

#include "graph/flat_model.h"
#include "opt/stats.h"
#include "sim/options.h"

namespace accmos::opt {

// Constant folding/propagation: evaluates actors whose inputs are all
// compile-time constants using the actors' own eval() (so folded values are
// bit-identical to what the runtime would compute, wrap/saturate semantics
// included) and replaces them with synthesized Constant actors that keep
// the original id, path and output signal. An actor is only rewritten when
// the replacement is provably observation-equivalent: no diagnosis kinds
// when diagnosis is on, coverage traits identical to Constant's when
// coverage is on, and the synthesized Constant must re-evaluate to the
// exact folded Value (which rejects values a parameter string cannot
// round-trip, e.g. NaN payloads the parser does not reproduce).
void constantFold(FlatModel& fm, const SimOptions& opt, OptStats& stats);

// Algebraic identity simplification: rewires consumers around actors that
// provably forward one input unchanged — Gain with gain == 1, single-input
// Sum '+' (integer only: (-0.0) + 0.0 flips the sign bit in IEEE),
// single-input Product '*', two-input Sum "++" with a constant-zero operand
// (integer only), two-input Product "**" with a constant-one operand. The
// bypassed actor itself is untouched — it still evaluates, so its coverage
// marks and diagnostics are unchanged; dead-code elimination removes it
// later only when nothing observes it.
void simplifyIdentities(FlatModel& fm, const SimOptions& opt,
                        OptStats& stats);

// Dead-actor liveness: backward reachability from the observation roots —
// root Inports (stimulus streams are positional), root Outports, Scope/
// Display/Assertion/StopSimulation sinks, data-store actors, collectList
// and custom-diagnostic targets, and (crucially) every actor carrying
// enabled coverage or diagnosis instrumentation. Returns one flag per
// actor id.
std::vector<char> liveActors(const FlatModel& fm, const SimOptions& opt);

// Schedule compaction: drops non-live actors and their signals, renumbers
// the survivors densely *preserving relative order* (so coverage/diagnosis
// plan layouts are unchanged — eliminated actors contributed zero slots),
// and partitions the schedule so un-gated delay-class actors run first
// (their eval reads state only, never current inputs).
void compactModel(FlatModel& fm, const std::vector<char>& live,
                  OptStats& stats);

}  // namespace accmos::opt
