#include "opt/passes.h"

#include <algorithm>

namespace accmos::opt {

void compactModel(FlatModel& fm, const std::vector<char>& live,
                  OptStats& stats) {
  // Dense renumbering that PRESERVES relative order. Coverage and diagnosis
  // plans assign slots by walking actors in id order, so an order-preserving
  // renumber over survivors — none of which carried instrumentation slots if
  // removed (liveActors made them roots) — leaves every bitmap layout and
  // diagnostic index mapping consistent between the optimized and
  // unoptimized runs.
  std::vector<int> actorMap(fm.actors.size(), -1);
  std::vector<int> sigMap(fm.signals.size(), -1);

  int nextActor = 0;
  for (const auto& fa : fm.actors) {
    if (live[static_cast<size_t>(fa.id)] != 0) {
      actorMap[static_cast<size_t>(fa.id)] = nextActor++;
    }
  }
  // A signal survives iff its producer does; every input of a live actor is
  // produced by a live actor (backward liveness), so no dangling reads.
  // Producer-less signals (none today) are conservatively kept.
  int nextSig = 0;
  for (size_t s = 0; s < fm.signals.size(); ++s) {
    int p = fm.signals[s].producerActor;
    if (p < 0 || live[static_cast<size_t>(p)] != 0) {
      sigMap[s] = nextSig++;
    }
  }

  stats.actorsEliminated +=
      static_cast<int>(fm.actors.size()) - nextActor;
  stats.signalsEliminated +=
      static_cast<int>(fm.signals.size()) - nextSig;

  if (nextActor != static_cast<int>(fm.actors.size()) ||
      nextSig != static_cast<int>(fm.signals.size())) {
    std::vector<FlatActor> actors;
    actors.reserve(static_cast<size_t>(nextActor));
    for (auto& fa : fm.actors) {
      if (actorMap[static_cast<size_t>(fa.id)] < 0) continue;
      FlatActor out = std::move(fa);
      out.id = actorMap[static_cast<size_t>(out.id)];
      for (int& in : out.inputs) in = sigMap[static_cast<size_t>(in)];
      for (int& o : out.outputs) o = sigMap[static_cast<size_t>(o)];
      if (out.enableSignal >= 0) {
        out.enableSignal = sigMap[static_cast<size_t>(out.enableSignal)];
      }
      actors.push_back(std::move(out));
    }
    fm.actors = std::move(actors);

    std::vector<SignalInfo> signals;
    signals.reserve(static_cast<size_t>(nextSig));
    for (size_t s = 0; s < fm.signals.size(); ++s) {
      if (sigMap[s] < 0) continue;
      SignalInfo out = std::move(fm.signals[s]);
      if (out.producerActor >= 0) {
        out.producerActor = actorMap[static_cast<size_t>(out.producerActor)];
      }
      signals.push_back(std::move(out));
    }
    fm.signals = std::move(signals);

    std::vector<int> schedule;
    schedule.reserve(static_cast<size_t>(nextActor));
    for (int id : fm.schedule) {
      if (actorMap[static_cast<size_t>(id)] >= 0) {
        schedule.push_back(actorMap[static_cast<size_t>(id)]);
      }
    }
    fm.schedule = std::move(schedule);

    for (int& id : fm.rootInports) id = actorMap[static_cast<size_t>(id)];
    for (int& id : fm.rootOutports) id = actorMap[static_cast<size_t>(id)];
  }

  // Partition the step: un-gated delay-class actors first. Their eval reads
  // state only (the scheduler gives them no input edges), so any position is
  // topologically valid; grouping them gives the step loop a branch-free
  // state-driven prologue. Gated ones stay put — their enable signal must be
  // computed before they run. The update phase is untouched.
  auto hoist = [&](int id) {
    const FlatActor& fa = fm.actor(id);
    return fa.delayClass && fa.enableSignal < 0;
  };
  int hoisted = 0;
  for (int id : fm.schedule) {
    if (hoist(id)) ++hoisted;
  }
  if (hoisted > 0) {
    std::stable_partition(fm.schedule.begin(), fm.schedule.end(), hoist);
    stats.stateUpdatesHoisted += hoisted;
  }
}

}  // namespace accmos::opt
