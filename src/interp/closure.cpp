// Named entry points for the two fast simulation modes over the shared
// compiled-program core (interp/bytecode.cpp).
#include "interp/compiled.h"

namespace accmos {

SimulationResult runAccelerator(const FlatModel& fm, const SimOptions& opt,
                                const TestCaseSpec& tests) {
  return runCompiled(fm, CompiledMode::Accelerator, opt, tests);
}

SimulationResult runRapidAccelerator(const FlatModel& fm,
                                     const SimOptions& opt,
                                     const TestCaseSpec& tests) {
  return runCompiled(fm, CompiledMode::RapidAccelerator, opt, tests);
}

}  // namespace accmos
