// The compiled in-process engines — stand-ins for Simulink's two fast
// simulation modes (paper §2):
//
//  - SSEac (Accelerator): the model is lowered to a flat array of typed
//    operations dispatched through function pointers (the MEX-compilation
//    analogue), but every step performs a full data transfer of all signals
//    to a host mirror and every operation goes through an engine-service
//    callback — the "frequent synchronization with Simulink" the paper
//    identifies as its bottleneck.
//  - SSErac (Rapid Accelerator): the same typed operations run in a fused
//    loop with no per-op service and only root-I/O synchronization.
//
// Per the paper, neither mode can collect coverage or run diagnostics; the
// facade enforces that. Numeric results are bit-identical to the
// interpreter and to AccMoS-generated code (shared wrap-exact core).
#pragma once

#include <memory>

#include "graph/flat_model.h"
#include "sim/options.h"
#include "sim/result.h"
#include "sim/testcase.h"

namespace accmos {

enum class CompiledMode {
  Accelerator,       // per-op service + full host mirror sync
  RapidAccelerator,  // fused loop, root-I/O sync only
};

class CompiledProgram {
 public:
  // Lowers the flattened model. Throws ModelError for constructs the
  // lowering does not support (none of the built-in actor types).
  CompiledProgram(const FlatModel& fm, CompiledMode mode);
  ~CompiledProgram();

  CompiledProgram(const CompiledProgram&) = delete;
  CompiledProgram& operator=(const CompiledProgram&) = delete;

  SimulationResult run(const SimOptions& opt, const TestCaseSpec& tests);

  // Total engine-service callbacks performed (Accelerator mode telemetry).
  uint64_t serviceCalls() const;

 public:
  // Implementation detail exposed for the lowering helpers in bytecode.cpp.
  struct Impl;

 private:
  std::unique_ptr<Impl> impl_;
};

SimulationResult runCompiled(const FlatModel& fm, CompiledMode mode,
                             const SimOptions& opt, const TestCaseSpec& tests);

// Named entry points matching the paper's mode names.
SimulationResult runAccelerator(const FlatModel& fm, const SimOptions& opt,
                                const TestCaseSpec& tests);
SimulationResult runRapidAccelerator(const FlatModel& fm,
                                     const SimOptions& opt,
                                     const TestCaseSpec& tests);

}  // namespace accmos
