#include "interp/interpreter.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "actors/spec.h"

namespace accmos {
namespace {

using Clock = std::chrono::steady_clock;

double seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

Interpreter::Interpreter(const FlatModel& fm, const SimOptions& opt)
    : fm_(fm), opt_(opt) {
  validateFlatModel(fm_);
  if (opt_.coverage) {
    covPlan_ = CoveragePlan::build(
        fm_, [](const FlatActor& fa) { return covTraitsFor(fa); });
  }
  if (opt_.diagnosis) {
    diagPlan_ = DiagnosisPlan::build(fm_, [&](const FlatActor& fa) {
      return diagKindsFor(fm_, fa);
    });
  }

  const Registry& reg = Registry::instance();
  signals_.reserve(fm_.signals.size());
  for (const auto& sig : fm_.signals) {
    signals_.emplace_back(sig.type, sig.width);
  }
  states_.resize(fm_.actors.size());
  hasState_.assign(fm_.actors.size(), false);
  for (const auto& fa : fm_.actors) {
    auto st = reg.get(fa).state(fm_, fa);
    if (st) {
      hasState_[static_cast<size_t>(fa.id)] = true;
      updateList_.push_back(fa.id);
    }
  }
  for (const auto& ds : fm_.dataStores) {
    stores_.emplace_back(ds.type, ds.width);
  }

  // Signal monitor: explicit collect list plus Scope/Display inputs.
  auto addSignal = [&](int sig) {
    if (std::find(collectSignals_.begin(), collectSignals_.end(), sig) ==
        collectSignals_.end()) {
      collectSignals_.push_back(sig);
    }
  };
  for (const auto& fa : fm_.actors) {
    bool listed = std::find(opt_.collectList.begin(), opt_.collectList.end(),
                            fa.path) != opt_.collectList.end();
    if (listed) {
      for (int sig : fa.outputs) addSignal(sig);
    }
    if (fa.type() == "Scope" || fa.type() == "Display") {
      for (int sig : fa.inputs) addSignal(sig);
    }
  }

  for (const auto& cd : opt_.customDiagnostics) {
    const FlatActor* fa = fm_.findByPath(cd.actorPath);
    if (fa == nullptr) {
      throw ModelError("custom diagnostic '" + cd.name +
                       "' references unknown actor path '" + cd.actorPath +
                       "'");
    }
    if (fa->outputs.empty()) {
      throw ModelError("custom diagnostic '" + cd.name + "': actor '" +
                       cd.actorPath + "' has no outputs to monitor");
    }
    CustomSlot slot;
    slot.diag = cd;
    slot.actorId = fa->id;
    slot.signalId = fa->outputs[0];
    custom_.push_back(std::move(slot));
  }
}

void Interpreter::resetState() {
  const Registry& reg = Registry::instance();
  for (size_t k = 0; k < fm_.signals.size(); ++k) {
    signals_[k].resize(fm_.signals[k].type, fm_.signals[k].width);
  }
  for (const auto& fa : fm_.actors) {
    if (!hasState_[static_cast<size_t>(fa.id)]) continue;
    auto st = reg.get(fa).state(fm_, fa);
    Value& v = states_[static_cast<size_t>(fa.id)];
    v.resize(st->type, st->width);
    for (int i = 0; i < st->width; ++i) {
      double init = st->initial.empty()
                        ? 0.0
                        : st->initial[std::min(st->initial.size() - 1,
                                               static_cast<size_t>(i))];
      v.store(i, init);
    }
  }
  for (size_t k = 0; k < fm_.dataStores.size(); ++k) {
    const auto& ds = fm_.dataStores[k];
    stores_[k].resize(ds.type, ds.width);
    for (int i = 0; i < ds.width; ++i) stores_[k].store(i, ds.initial);
  }
  for (auto& slot : custom_) {
    slot.prev = 0.0;
    slot.hasPrev = false;
  }
}

SimulationResult Interpreter::run(const TestCaseSpec& tests) {
  resetState();
  const Registry& reg = Registry::instance();
  SimulationResult result;

  CoverageRecorder cov(covPlan_);
  DiagnosticSink sink;
  bool stop = false;

  EvalContext ctx(fm_, signals_, stores_);
  ctx.setInstrumentation(opt_.coverage ? &covPlan_ : nullptr,
                         opt_.coverage ? &cov : nullptr,
                         opt_.diagnosis ? &diagPlan_ : nullptr,
                         opt_.diagnosis ? &sink : nullptr);
  ctx.setStopFlag(&stop);

  // Pre-resolve specs to avoid a registry lookup per actor per step (SSE
  // would cache block methods too).
  std::vector<const ActorSpec*> specs(fm_.actors.size());
  for (const auto& fa : fm_.actors) {
    specs[static_cast<size_t>(fa.id)] = &reg.get(fa);
  }

  // Collected-signal bookkeeping.
  std::vector<CollectedSignal> collected;
  for (int sig : collectSignals_) {
    CollectedSignal cs;
    cs.path = fm_.signal(sig).name;
    cs.last = Value(fm_.signal(sig).type, fm_.signal(sig).width);
    collected.push_back(std::move(cs));
  }

  StimulusStream stim(tests, fm_);

  auto start = Clock::now();
  uint64_t step = 0;
  for (; step < opt_.maxSteps; ++step) {
    ctx.setStep(step);
    stim.fill(step, signals_);

    // Output phase, in execution order.
    for (int id : fm_.schedule) {
      const FlatActor& fa = fm_.actors[static_cast<size_t>(id)];
      if (fa.enableSignal >= 0 &&
          !signals_[static_cast<size_t>(fa.enableSignal)].asBool(0)) {
        continue;
      }
      ctx.setActor(&fa, &states_[static_cast<size_t>(id)]);
      specs[static_cast<size_t>(id)]->eval(ctx);
      if (opt_.coverage) cov.markActor(covPlan_.info(id));
    }

    // Update phase (state latch).
    for (int id : updateList_) {
      const FlatActor& fa = fm_.actors[static_cast<size_t>(id)];
      if (fa.enableSignal >= 0 &&
          !signals_[static_cast<size_t>(fa.enableSignal)].asBool(0)) {
        continue;
      }
      ctx.setActor(&fa, &states_[static_cast<size_t>(id)]);
      specs[static_cast<size_t>(id)]->update(ctx);
    }

    // Engine services: signal monitor and custom diagnostics.
    for (size_t k = 0; k < collected.size(); ++k) {
      collected[k].last = signals_[static_cast<size_t>(collectSignals_[k])];
      collected[k].count += 1;
    }
    for (auto& slot : custom_) {
      double cur = signals_[static_cast<size_t>(slot.signalId)].asDouble(0);
      bool fire = false;
      switch (slot.diag.kind) {
        case CustomDiagnostic::Kind::Range:
          fire = cur < slot.diag.minValue || cur > slot.diag.maxValue;
          break;
        case CustomDiagnostic::Kind::SuddenChange:
          fire = slot.hasPrev &&
                 std::fabs(cur - slot.prev) > slot.diag.maxDelta;
          break;
        case CustomDiagnostic::Kind::Expression:
          fire = slot.diag.callback &&
                 slot.diag.callback(cur, slot.hasPrev ? slot.prev : 0.0, step);
          break;
      }
      if (fire) {
        sink.report(slot.actorId,
                    fm_.actor(slot.actorId).path, DiagKind::Custom, step,
                    slot.diag.name);
      }
      slot.prev = cur;
      slot.hasPrev = true;
    }

    if (stop) {
      ++step;
      result.stoppedEarly = true;
      break;
    }
    if (opt_.stopOnDiagnostic && sink.any()) {
      ++step;
      result.stoppedEarly = true;
      break;
    }
    if (opt_.timeBudgetSec > 0.0 && (step & 1023) == 1023 &&
        seconds(start, Clock::now()) >= opt_.timeBudgetSec) {
      ++step;
      break;
    }
  }
  result.execSeconds = seconds(start, Clock::now());
  result.stepsExecuted = step;

  if (opt_.coverage) {
    result.hasCoverage = true;
    result.coverage = makeReport(covPlan_, cov);
    result.bitmaps = cov;
  }
  result.diagnostics = sink.sorted();
  result.collected = std::move(collected);
  for (int id : fm_.rootOutports) {
    const FlatActor& fa = fm_.actor(id);
    result.finalOutputs.push_back(
        signals_[static_cast<size_t>(fa.inputs[0])]);
  }
  return result;
}

SimulationResult runInterpreter(const FlatModel& fm, const SimOptions& opt,
                                const TestCaseSpec& tests) {
  Interpreter interp(fm, opt);
  return interp.run(tests);
}

}  // namespace accmos
