// Lowering and execution for the compiled fast-mode engines (see
// interp/compiled.h). One typed kernel per actor shape; all arithmetic goes
// through the shared wrap-exact core so outputs match the interpreter and
// AccMoS-generated code bit-for-bit.
#include "interp/compiled.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>

#include "actors/common.h"
#include "actors/lut.h"
#include "actors/spec.h"

namespace accmos {
namespace {

struct SigRef {
  int off = 0;
  int width = 1;
  DataType type = DataType::F64;
  bool isF = true;
};

struct Rt {
  std::vector<double> f;
  std::vector<int64_t> iv;
  uint64_t step = 0;
  bool stop = false;
};

struct Op;
using KernelFn = void (*)(const Op&, Rt&);

struct Op {
  KernelFn fn = nullptr;
  int actorId = -1;
  std::vector<SigRef> in;
  std::vector<SigRef> out;
  SigRef state;
  bool hasState = false;
  SigRef enable;
  bool hasEnable = false;
  bool real = true;                  // compute domain
  bool sat = false;                  // saturate-on-overflow arithmetic
  std::vector<double> dp;            // double params
  std::vector<int64_t> ip;           // int params
  std::vector<double> t1, t2, t3;    // tables / coefficient lists
  double (*ufn)(double) = nullptr;   // unary real function
  double (*bfn)(double, double) = nullptr;  // binary real function
};

// ---- element access ---------------------------------------------------------

inline int srcIdx(const SigRef& r, int i) {
  return r.off + (r.width == 1 ? 0 : i);
}

inline double rdD(const Rt& rt, const SigRef& r, int i) {
  int k = srcIdx(r, i);
  if (r.isF) return rt.f[static_cast<size_t>(k)];
  if (r.type == DataType::U64) {
    return static_cast<double>(
        static_cast<uint64_t>(rt.iv[static_cast<size_t>(k)]));
  }
  if (isUnsignedInt(r.type)) {
    return static_cast<double>(
        static_cast<uint64_t>(rt.iv[static_cast<size_t>(k)]));
  }
  return static_cast<double>(rt.iv[static_cast<size_t>(k)]);
}

inline int64_t rdI(const Rt& rt, const SigRef& r, int i) {
  int k = srcIdx(r, i);
  if (r.isF) return f2i(rt.f[static_cast<size_t>(k)]);
  return rt.iv[static_cast<size_t>(k)];
}

inline bool rdB(const Rt& rt, const SigRef& r, int i) {
  int k = srcIdx(r, i);
  if (r.isF) return rt.f[static_cast<size_t>(k)] != 0.0;
  return rt.iv[static_cast<size_t>(k)] != 0;
}

inline void wrReal(Rt& rt, const SigRef& r, int i, double v) {
  if (r.isF) {
    rt.f[static_cast<size_t>(r.off + i)] =
        r.type == DataType::F32 ? static_cast<double>(static_cast<float>(v))
                                : v;
  } else {
    rt.iv[static_cast<size_t>(r.off + i)] = storeDoubleAsInt(r.type, v).value;
  }
}

inline void wrInt(Rt& rt, const SigRef& r, int i, Int128 acc) {
  rt.iv[static_cast<size_t>(r.off + i)] = wrapStore(r.type, acc).value;
}

inline void copyElem(Rt& rt, const SigRef& dst, int di, const SigRef& src,
                     int si) {
  if (dst.isF) {
    rt.f[static_cast<size_t>(dst.off + di)] =
        rt.f[static_cast<size_t>(src.off + si)];
  } else {
    rt.iv[static_cast<size_t>(dst.off + di)] =
        rt.iv[static_cast<size_t>(src.off + si)];
  }
}

// ---- kernels ----------------------------------------------------------------

void kConst(const Op& op, Rt& rt) {
  const SigRef& o = op.out[0];
  for (int i = 0; i < o.width; ++i) {
    if (o.isF) {
      rt.f[static_cast<size_t>(o.off + i)] = op.dp[static_cast<size_t>(i)];
    } else {
      rt.iv[static_cast<size_t>(o.off + i)] = op.ip[static_cast<size_t>(i)];
    }
  }
}

void kUnaryReal(const Op& op, Rt& rt) {
  const SigRef& o = op.out[0];
  for (int i = 0; i < o.width; ++i) {
    wrReal(rt, o, i, op.ufn(rdD(rt, op.in[0], i)));
  }
}

void kBinaryReal(const Op& op, Rt& rt) {
  const SigRef& o = op.out[0];
  for (int i = 0; i < o.width; ++i) {
    wrReal(rt, o, i, op.bfn(rdD(rt, op.in[0], i), rdD(rt, op.in[1], i)));
  }
}

inline int64_t foldK(DataType t, Int128 acc, bool sat) {
  return sat ? satStore(t, acc).value : wrapStore(t, acc).value;
}

void kSum(const Op& op, Rt& rt) {
  const SigRef& o = op.out[0];
  size_t n = op.in.size();
  if (op.real) {
    for (int i = 0; i < o.width; ++i) {
      double acc = 0.0;
      for (size_t p = 0; p < n; ++p) {
        double v = rdD(rt, op.in[p], i);
        acc = op.ip[p] > 0 ? acc + v : acc - v;
      }
      wrReal(rt, o, i, acc);
    }
  } else {
    for (int i = 0; i < o.width; ++i) {
      int64_t acc = 0;
      for (size_t p = 0; p < n; ++p) {
        Int128 wide = static_cast<Int128>(acc);
        int64_t v = rdI(rt, op.in[p], i);
        wide = op.ip[p] > 0 ? wide + v : wide - v;
        acc = foldK(o.type, wide, op.sat);
      }
      rt.iv[static_cast<size_t>(o.off + i)] = acc;
    }
  }
}

void kProduct(const Op& op, Rt& rt) {
  const SigRef& o = op.out[0];
  size_t n = op.in.size();
  if (op.real) {
    for (int i = 0; i < o.width; ++i) {
      double acc = 1.0;
      for (size_t p = 0; p < n; ++p) {
        double v = rdD(rt, op.in[p], i);
        acc = op.ip[p] > 0 ? acc * v : acc / v;
      }
      wrReal(rt, o, i, acc);
    }
  } else {
    for (int i = 0; i < o.width; ++i) {
      int64_t acc = 1;
      for (size_t p = 0; p < n; ++p) {
        int64_t v = rdI(rt, op.in[p], i);
        if (op.ip[p] > 0) {
          acc = foldK(o.type, static_cast<Int128>(acc) * v, op.sat);
        } else if (v == 0) {
          acc = 0;
        } else {
          acc = foldK(o.type, static_cast<Int128>(acc) / v, op.sat);
        }
      }
      rt.iv[static_cast<size_t>(o.off + i)] = acc;
    }
  }
}

void kGain(const Op& op, Rt& rt) {
  const SigRef& o = op.out[0];
  if (op.real) {
    for (int i = 0; i < o.width; ++i) {
      wrReal(rt, o, i, rdD(rt, op.in[0], i) * op.dp[0]);
    }
  } else {
    for (int i = 0; i < o.width; ++i) {
      wrInt(rt, o, i, static_cast<Int128>(rdI(rt, op.in[0], i)) * op.ip[0]);
    }
  }
}

void kBias(const Op& op, Rt& rt) {
  const SigRef& o = op.out[0];
  if (op.real) {
    for (int i = 0; i < o.width; ++i) {
      wrReal(rt, o, i, rdD(rt, op.in[0], i) + op.dp[0]);
    }
  } else {
    for (int i = 0; i < o.width; ++i) {
      wrInt(rt, o, i, static_cast<Int128>(rdI(rt, op.in[0], i)) + op.ip[0]);
    }
  }
}

void kAbs(const Op& op, Rt& rt) {
  const SigRef& o = op.out[0];
  if (op.real) {
    for (int i = 0; i < o.width; ++i) {
      wrReal(rt, o, i, std::fabs(rdD(rt, op.in[0], i)));
    }
  } else {
    for (int i = 0; i < o.width; ++i) {
      Int128 v = static_cast<Int128>(rdI(rt, op.in[0], i));
      wrInt(rt, o, i, v < 0 ? -v : v);
    }
  }
}

void kSign(const Op& op, Rt& rt) {
  const SigRef& o = op.out[0];
  for (int i = 0; i < o.width; ++i) {
    double v = rdD(rt, op.in[0], i);
    wrReal(rt, o, i, v < 0.0 ? -1.0 : (v == 0.0 ? 0.0 : 1.0));
  }
}

void kNeg(const Op& op, Rt& rt) {
  const SigRef& o = op.out[0];
  if (op.real) {
    for (int i = 0; i < o.width; ++i) wrReal(rt, o, i, -rdD(rt, op.in[0], i));
  } else {
    for (int i = 0; i < o.width; ++i) {
      wrInt(rt, o, i, -static_cast<Int128>(rdI(rt, op.in[0], i)));
    }
  }
}

void kMinMax(const Op& op, Rt& rt) {
  const SigRef& o = op.out[0];
  bool isMin = op.ip[0] != 0;
  for (int i = 0; i < o.width; ++i) {
    double best = rdD(rt, op.in[0], i);
    for (size_t p = 1; p < op.in.size(); ++p) {
      double v = rdD(rt, op.in[p], i);
      if (isMin ? v < best : v > best) best = v;
    }
    wrReal(rt, o, i, best);
  }
}

void kPoly(const Op& op, Rt& rt) {
  const SigRef& o = op.out[0];
  for (int i = 0; i < o.width; ++i) {
    double x = rdD(rt, op.in[0], i);
    double acc = op.dp[0];
    for (size_t k = 1; k < op.dp.size(); ++k) acc = acc * x + op.dp[k];
    wrReal(rt, o, i, acc);
  }
}

void kDot(const Op& op, Rt& rt) {
  const SigRef& o = op.out[0];
  int w = op.in[0].width;
  if (op.real) {
    double acc = 0.0;
    for (int i = 0; i < w; ++i) {
      acc += rdD(rt, op.in[0], i) * rdD(rt, op.in[1], i);
    }
    wrReal(rt, o, 0, acc);
  } else {
    int64_t acc = 0;
    for (int i = 0; i < w; ++i) {
      int64_t prod = wrapStore(o.type, static_cast<Int128>(rdI(rt, op.in[0], i)) *
                                           rdI(rt, op.in[1], i))
                         .value;
      acc = wrapStore(o.type, static_cast<Int128>(acc) + prod).value;
    }
    rt.iv[static_cast<size_t>(o.off)] = acc;
  }
}

void kSumElem(const Op& op, Rt& rt) {
  const SigRef& o = op.out[0];
  int w = op.in[0].width;
  if (op.real) {
    double acc = 0.0;
    for (int i = 0; i < w; ++i) acc += rdD(rt, op.in[0], i);
    wrReal(rt, o, 0, acc);
  } else {
    int64_t acc = 0;
    for (int i = 0; i < w; ++i) {
      acc = wrapStore(o.type, static_cast<Int128>(acc) + rdI(rt, op.in[0], i))
                .value;
    }
    rt.iv[static_cast<size_t>(o.off)] = acc;
  }
}

void kProdElem(const Op& op, Rt& rt) {
  const SigRef& o = op.out[0];
  int w = op.in[0].width;
  if (op.real) {
    double acc = 1.0;
    for (int i = 0; i < w; ++i) acc *= rdD(rt, op.in[0], i);
    wrReal(rt, o, 0, acc);
  } else {
    int64_t acc = 1;
    for (int i = 0; i < w; ++i) {
      acc = wrapStore(o.type, static_cast<Int128>(acc) * rdI(rt, op.in[0], i))
                .value;
    }
    rt.iv[static_cast<size_t>(o.off)] = acc;
  }
}

template <typename T>
inline bool relApply(int opIdx, T a, T b) {
  switch (opIdx) {
    case 0: return a == b;
    case 1: return a != b;
    case 2: return a < b;
    case 3: return a <= b;
    case 4: return a > b;
    default: return a >= b;
  }
}

void kRel(const Op& op, Rt& rt) {
  const SigRef& o = op.out[0];
  int opIdx = static_cast<int>(op.ip[0]);
  bool real = op.ip[1] != 0;
  for (int i = 0; i < o.width; ++i) {
    bool r = real ? relApply(opIdx, rdD(rt, op.in[0], i), rdD(rt, op.in[1], i))
                  : relApply(opIdx, rdI(rt, op.in[0], i), rdI(rt, op.in[1], i));
    rt.iv[static_cast<size_t>(o.off + i)] = r ? 1 : 0;
  }
}

void kCmpConst(const Op& op, Rt& rt) {
  const SigRef& o = op.out[0];
  int opIdx = static_cast<int>(op.ip[0]);
  for (int i = 0; i < o.width; ++i) {
    bool r = relApply(opIdx, rdD(rt, op.in[0], i), op.dp[0]);
    rt.iv[static_cast<size_t>(o.off + i)] = r ? 1 : 0;
  }
}

void kLogic(const Op& op, Rt& rt) {
  const SigRef& o = op.out[0];
  int kind = static_cast<int>(op.ip[0]);  // 0 AND 1 OR 2 NAND 3 NOR 4 XOR 5 NXOR 6 NOT
  size_t n = op.in.size();
  for (int i = 0; i < o.width; ++i) {
    bool r;
    if (kind == 6) {
      r = !rdB(rt, op.in[0], i);
    } else if (kind == 0 || kind == 2) {
      r = true;
      for (size_t p = 0; p < n; ++p) r = r && rdB(rt, op.in[p], i);
      if (kind == 2) r = !r;
    } else if (kind == 1 || kind == 3) {
      r = false;
      for (size_t p = 0; p < n; ++p) r = r || rdB(rt, op.in[p], i);
      if (kind == 3) r = !r;
    } else {
      r = false;
      for (size_t p = 0; p < n; ++p) r = r != rdB(rt, op.in[p], i);
      if (kind == 5) r = !r;
    }
    rt.iv[static_cast<size_t>(o.off + i)] = r ? 1 : 0;
  }
}

void kBitwise(const Op& op, Rt& rt) {
  const SigRef& o = op.out[0];
  int kind = static_cast<int>(op.ip[0]);  // 0 AND 1 OR 2 XOR 3 NOT
  for (int i = 0; i < o.width; ++i) {
    uint64_t acc = static_cast<uint64_t>(rdI(rt, op.in[0], i));
    if (kind == 3) {
      acc = ~acc;
    } else {
      for (size_t p = 1; p < op.in.size(); ++p) {
        uint64_t v = static_cast<uint64_t>(rdI(rt, op.in[p], i));
        if (kind == 0) acc &= v;
        else if (kind == 1) acc |= v;
        else acc ^= v;
      }
    }
    wrInt(rt, o, i, static_cast<Int128>(static_cast<int64_t>(acc)));
  }
}

void kShift(const Op& op, Rt& rt) {
  const SigRef& o = op.out[0];
  bool left = op.ip[0] != 0;
  int bits = static_cast<int>(op.ip[1]);
  for (int i = 0; i < o.width; ++i) {
    int64_t v = rdI(rt, op.in[0], i);
    if (left) {
      wrInt(rt, o, i, static_cast<Int128>(v) << bits);
    } else {
      rt.iv[static_cast<size_t>(o.off + i)] =
          wrapStore(o.type, static_cast<Int128>(v >> bits)).value;
    }
  }
}

void kSwitch(const Op& op, Rt& rt) {
  const SigRef& o = op.out[0];
  double c = rdD(rt, op.in[1], 0);
  int crit = static_cast<int>(op.ip[0]);  // 0 ">0", 1 "~=0", 2 ">="
  bool sel = crit == 0 ? c > 0.0 : (crit == 1 ? c != 0.0 : c >= op.dp[0]);
  const SigRef& src = sel ? op.in[0] : op.in[2];
  for (int i = 0; i < o.width; ++i) {
    copyElem(rt, o, i, src, src.width == 1 ? 0 : i);
  }
}

void kMpSwitch(const Op& op, Rt& rt) {
  const SigRef& o = op.out[0];
  int n = static_cast<int>(op.in.size()) - 1;
  int64_t c = rdI(rt, op.in[0], 0);
  if (c < 1) c = 1;
  if (c > n) c = n;
  const SigRef& src = op.in[static_cast<size_t>(c)];
  for (int i = 0; i < o.width; ++i) {
    copyElem(rt, o, i, src, src.width == 1 ? 0 : i);
  }
}

void kMux(const Op& op, Rt& rt) {
  const SigRef& o = op.out[0];
  int pos = 0;
  for (const auto& in : op.in) {
    for (int i = 0; i < in.width; ++i, ++pos) copyElem(rt, o, pos, in, i);
  }
}

void kDemux(const Op& op, Rt& rt) {
  int pos = 0;
  for (const auto& out : op.out) {
    for (int i = 0; i < out.width; ++i, ++pos) {
      copyElem(rt, out, i, op.in[0], pos);
    }
  }
}

void kSelector(const Op& op, Rt& rt) {
  const SigRef& o = op.out[0];
  for (size_t k = 0; k < op.ip.size(); ++k) {
    copyElem(rt, o, static_cast<int>(k), op.in[0],
             static_cast<int>(op.ip[k]) - 1);
  }
}

void kIndexVector(const Op& op, Rt& rt) {
  int64_t idx = rdI(rt, op.in[0], 0);
  int w = op.in[1].width;
  if (idx < 1) idx = 1;
  if (idx > w) idx = w;
  copyElem(rt, op.out[0], 0, op.in[1], static_cast<int>(idx) - 1);
}

void kCopyStateToOut(const Op& op, Rt& rt) {
  const SigRef& o = op.out[0];
  for (int i = 0; i < o.width; ++i) copyElem(rt, o, i, op.state, i);
}

void kLatchInToState(const Op& op, Rt& rt) {
  for (int i = 0; i < op.state.width; ++i) {
    copyElem(rt, op.state, i, op.in[0], op.in[0].width == 1 ? 0 : i);
  }
}

void kDelayUpdate(const Op& op, Rt& rt) {
  int w = static_cast<int>(op.ip[0]);
  int n = static_cast<int>(op.ip[1]);
  for (int k = 0; k + w < w * n; ++k) copyElem(rt, op.state, k, op.state, k + w);
  for (int i = 0; i < w; ++i) {
    copyElem(rt, op.state, w * (n - 1) + i, op.in[0],
             op.in[0].width == 1 ? 0 : i);
  }
}

void kTappedUpdate(const Op& op, Rt& rt) {
  int n = op.state.width;
  for (int k = 0; k + 1 < n; ++k) copyElem(rt, op.state, k, op.state, k + 1);
  copyElem(rt, op.state, n - 1, op.in[0], 0);
}

void kIntegratorUpdate(const Op& op, Rt& rt) {
  if (op.real) {
    for (int i = 0; i < op.state.width; ++i) {
      double v = rdD(rt, op.state, i) + op.dp[0] * rdD(rt, op.in[0], i);
      wrReal(rt, op.state, i, v);
    }
  } else {
    for (int i = 0; i < op.state.width; ++i) {
      Int128 acc = static_cast<Int128>(rt.iv[static_cast<size_t>(op.state.off + i)]) +
                   static_cast<Int128>(op.ip[0]) * rdI(rt, op.in[0], i);
      rt.iv[static_cast<size_t>(op.state.off + i)] =
          foldK(op.state.type, acc, op.sat);
    }
  }
}

// Continuous integrator update (Euler / Adams-Bashforth); state layout
// [y(w) | u1(w) | u2(w) | n(1)]. The eval phase is kCopyStateToOut.
void kContIntegratorUpdate(const Op& op, Rt& rt) {
  int w = op.out[0].width;
  int order = static_cast<int>(op.ip[0]);
  double h = op.dp[0];
  auto st = [&](int k) -> double& {
    return rt.f[static_cast<size_t>(op.state.off + k)];
  };
  int n = static_cast<int>(st(3 * w));
  for (int i = 0; i < w; ++i) {
    double u = rdD(rt, op.in[0], i);
    double u1 = st(w + i);
    double u2 = st(2 * w + i);
    double dy;
    if (order == 1 || n == 0) {
      dy = h * u;
    } else if (order == 2 || n == 1) {
      dy = h * (3.0 * u - u1) / 2.0;
    } else {
      dy = h * (23.0 * u - 16.0 * u1 + 5.0 * u2) / 12.0;
    }
    st(i) += dy;
    st(2 * w + i) = u1;
    st(w + i) = u;
  }
  if (n < 2) st(3 * w) = static_cast<double>(n + 1);
}

void kContIntegratorOut(const Op& op, Rt& rt) {
  // y occupies the first w state slots; the full state is wider.
  for (int i = 0; i < op.out[0].width; ++i) {
    rt.f[static_cast<size_t>(op.out[0].off + i)] =
        rt.f[static_cast<size_t>(op.state.off + i)];
  }
}

void kDerivative(const Op& op, Rt& rt) {
  const SigRef& o = op.out[0];
  for (int i = 0; i < o.width; ++i) {
    wrReal(rt, o, i,
           rdD(rt, op.in[0], i) - rt.f[static_cast<size_t>(op.state.off + i)]);
  }
}

void kDerivativeUpdate(const Op& op, Rt& rt) {
  for (int i = 0; i < op.state.width; ++i) {
    rt.f[static_cast<size_t>(op.state.off + i)] = rdD(rt, op.in[0], i);
  }
}

double filterY(const Op& op, const Rt& rt) {
  int nb = static_cast<int>(op.t1.size()) - 1;
  int na = static_cast<int>(op.t2.size()) - 1;
  double u = rdD(rt, op.in[0], 0);
  double y = op.t1[0] * u;
  for (int k = 0; k < nb; ++k) {
    y += op.t1[static_cast<size_t>(k + 1)] *
         rt.f[static_cast<size_t>(op.state.off + k)];
  }
  for (int k = 0; k < na; ++k) {
    y -= op.t2[static_cast<size_t>(k + 1)] *
         rt.f[static_cast<size_t>(op.state.off + nb + k)];
  }
  return y;
}

void kFilter(const Op& op, Rt& rt) { wrReal(rt, op.out[0], 0, filterY(op, rt)); }

void kFilterUpdate(const Op& op, Rt& rt) {
  int nb = static_cast<int>(op.t1.size()) - 1;
  int na = static_cast<int>(op.t2.size()) - 1;
  double u = rdD(rt, op.in[0], 0);
  double y = filterY(op, rt);
  auto st = [&](int k) -> double& {
    return rt.f[static_cast<size_t>(op.state.off + k)];
  };
  for (int k = nb - 1; k > 0; --k) st(k) = st(k - 1);
  if (nb > 0) st(0) = u;
  for (int k = na - 1; k > 0; --k) st(nb + k) = st(nb + k - 1);
  if (na > 0) st(nb) = y;
}

void kZoh(const Op& op, Rt& rt) {
  uint64_t n = static_cast<uint64_t>(op.ip[0]);
  if (rt.step % n == 0) {
    for (int i = 0; i < op.state.width; ++i) {
      copyElem(rt, op.state, i, op.in[0], op.in[0].width == 1 ? 0 : i);
    }
  }
  for (int i = 0; i < op.out[0].width; ++i) {
    copyElem(rt, op.out[0], i, op.state, i);
  }
}

void kSaturation(const Op& op, Rt& rt) {
  const SigRef& o = op.out[0];
  for (int i = 0; i < o.width; ++i) {
    double v = rdD(rt, op.in[0], i);
    wrReal(rt, o, i, v < op.dp[0] ? op.dp[0] : (v > op.dp[1] ? op.dp[1] : v));
  }
}

void kSaturationDyn(const Op& op, Rt& rt) {
  const SigRef& o = op.out[0];
  for (int i = 0; i < o.width; ++i) {
    double v = rdD(rt, op.in[0], i);
    double lo = rdD(rt, op.in[1], i);
    double hi = rdD(rt, op.in[2], i);
    wrReal(rt, o, i, v < lo ? lo : (v > hi ? hi : v));
  }
}

void kDeadZone(const Op& op, Rt& rt) {
  const SigRef& o = op.out[0];
  for (int i = 0; i < o.width; ++i) {
    double v = rdD(rt, op.in[0], i);
    wrReal(rt, o, i,
           v < op.dp[0] ? v - op.dp[0] : (v > op.dp[1] ? v - op.dp[1] : 0.0));
  }
}

void kRelay(const Op& op, Rt& rt) {
  const SigRef& o = op.out[0];
  for (int i = 0; i < o.width; ++i) {
    double v = rdD(rt, op.in[0], i);
    int64_t& st = rt.iv[static_cast<size_t>(op.state.off + i)];
    if (v >= op.dp[0]) st = 1;
    else if (v <= op.dp[1]) st = 0;
    wrReal(rt, o, i, st != 0 ? op.dp[2] : op.dp[3]);
  }
}

void kQuantizer(const Op& op, Rt& rt) {
  const SigRef& o = op.out[0];
  for (int i = 0; i < o.width; ++i) {
    double v = rdD(rt, op.in[0], i);
    wrReal(rt, o, i, op.dp[0] * std::nearbyint(v / op.dp[0]));
  }
}

void kRateLimiter(const Op& op, Rt& rt) {
  const SigRef& o = op.out[0];
  for (int i = 0; i < o.width; ++i) {
    double v = rdD(rt, op.in[0], i);
    double& prev = rt.f[static_cast<size_t>(op.state.off + i)];
    double delta = v - prev;
    double r = delta > op.dp[0] ? prev + op.dp[0]
               : delta < op.dp[1] ? prev + op.dp[1]
                                  : v;
    prev = r;
    wrReal(rt, o, i, r);
  }
}

void kWrapToZero(const Op& op, Rt& rt) {
  const SigRef& o = op.out[0];
  for (int i = 0; i < o.width; ++i) {
    double v = rdD(rt, op.in[0], i);
    wrReal(rt, o, i, v > op.dp[0] ? 0.0 : v);
  }
}

void kLut1(const Op& op, Rt& rt) {
  const SigRef& o = op.out[0];
  bool nearest = op.ip[0] != 0;
  for (int i = 0; i < o.width; ++i) {
    int outcome = 1;
    wrReal(rt, o, i,
           accmosLut1(op.t1, op.t2, rdD(rt, op.in[0], i), nearest, outcome));
  }
}

void kLut2(const Op& op, Rt& rt) {
  bool clipped = false;
  wrReal(rt, op.out[0], 0,
         accmosLut2(op.t1, op.t2, op.t3, rdD(rt, op.in[0], 0),
                    rdD(rt, op.in[1], 0), clipped));
}

void kConvert(const Op& op, Rt& rt) {
  const SigRef& o = op.out[0];
  const SigRef& in = op.in[0];
  for (int i = 0; i < o.width; ++i) {
    if (in.isF) {
      if (op.sat && !o.isF) {
        rt.iv[static_cast<size_t>(o.off + i)] =
            storeDoubleAsIntSat(o.type, rdD(rt, in, i)).value;
      } else {
        wrReal(rt, o, i, rdD(rt, in, i));
      }
    } else if (o.isF) {
      double d = rdD(rt, in, i);
      rt.f[static_cast<size_t>(o.off + i)] =
          o.type == DataType::F32 ? static_cast<double>(static_cast<float>(d))
                                  : d;
    } else if (op.sat) {
      rt.iv[static_cast<size_t>(o.off + i)] =
          satStore(o.type, static_cast<Int128>(rdI(rt, in, i))).value;
    } else {
      wrInt(rt, o, i, static_cast<Int128>(rdI(rt, in, i)));
    }
  }
}

void kAssertion(const Op& op, Rt& rt) {
  if (op.ip[0] == 0) return;  // no stopOnFail: fast modes cannot diagnose
  for (int i = 0; i < op.in[0].width; ++i) {
    if (!rdB(rt, op.in[0], i)) {
      rt.stop = true;
      return;
    }
  }
}

void kStopSim(const Op& op, Rt& rt) {
  for (int i = 0; i < op.in[0].width; ++i) {
    if (rdB(rt, op.in[0], i)) {
      rt.stop = true;
      return;
    }
  }
}

void kDataStoreRead(const Op& op, Rt& rt) {
  for (int i = 0; i < op.out[0].width; ++i) {
    copyElem(rt, op.out[0], i, op.state, i);
  }
}

void kDataStoreWrite(const Op& op, Rt& rt) {
  for (int i = 0; i < op.state.width; ++i) {
    copyElem(rt, op.state, i, op.in[0], op.in[0].width == 1 ? 0 : i);
  }
}

// ---- sources ---------------------------------------------------------------

void kStep(const Op& op, Rt& rt) {
  double v = static_cast<double>(rt.step) >= op.dp[0] ? op.dp[2] : op.dp[1];
  for (int i = 0; i < op.out[0].width; ++i) wrReal(rt, op.out[0], i, v);
}

void kRamp(const Op& op, Rt& rt) {
  double t = static_cast<double>(rt.step);
  double v = op.dp[2];
  if (t >= op.dp[0]) v += op.dp[1] * (t - op.dp[0]);
  for (int i = 0; i < op.out[0].width; ++i) wrReal(rt, op.out[0], i, v);
}

void kSine(const Op& op, Rt& rt) {
  double t = static_cast<double>(rt.step);
  double v = op.dp[0] * std::sin(2.0 * M_PI * op.dp[1] * t + op.dp[2]) + op.dp[3];
  for (int i = 0; i < op.out[0].width; ++i) wrReal(rt, op.out[0], i, v);
}

void kPulse(const Op& op, Rt& rt) {
  int64_t period = op.ip[0];
  int64_t on = op.ip[1];
  double v = static_cast<int64_t>(rt.step % static_cast<uint64_t>(period)) < on
                 ? op.dp[0]
                 : 0.0;
  for (int i = 0; i < op.out[0].width; ++i) wrReal(rt, op.out[0], i, v);
}

void kClock(const Op& op, Rt& rt) {
  double t = static_cast<double>(rt.step);
  for (int i = 0; i < op.out[0].width; ++i) wrReal(rt, op.out[0], i, t);
}

void kCounter(const Op& op, Rt& rt) {
  Int128 v = static_cast<int64_t>(rt.step % static_cast<uint64_t>(op.ip[0]));
  for (int i = 0; i < op.out[0].width; ++i) wrInt(rt, op.out[0], i, v);
}

void kRandom(const Op& op, Rt& rt) {
  SplitMix64 rng(static_cast<uint64_t>(rt.iv[static_cast<size_t>(op.state.off)]));
  for (int i = 0; i < op.out[0].width; ++i) {
    wrReal(rt, op.out[0], i, rng.nextUniform(op.dp[0], op.dp[1]));
  }
  rt.iv[static_cast<size_t>(op.state.off)] = static_cast<int64_t>(rng.state);
}

void kGround(const Op& op, Rt& rt) {
  const SigRef& o = op.out[0];
  for (int i = 0; i < o.width; ++i) {
    if (o.isF) rt.f[static_cast<size_t>(o.off + i)] = 0.0;
    else rt.iv[static_cast<size_t>(o.off + i)] = 0;
  }
}

// Unary real function table (Math / Trigonometry / Rounding / Sqrt).
double fExp(double a) { return std::exp(a); }
double fLog(double a) { return std::log(a); }
double fLog10(double a) { return std::log10(a); }
double fSqrt(double a) { return std::sqrt(a); }
double fSquare(double a) { return a * a; }
double fRecip(double a) { return 1.0 / a; }
double fSin(double a) { return std::sin(a); }
double fCos(double a) { return std::cos(a); }
double fTan(double a) { return std::tan(a); }
double fAsin(double a) { return std::asin(a); }
double fAcos(double a) { return std::acos(a); }
double fAtan(double a) { return std::atan(a); }
double fSinh(double a) { return std::sinh(a); }
double fCosh(double a) { return std::cosh(a); }
double fTanh(double a) { return std::tanh(a); }
double fFloor(double a) { return std::floor(a); }
double fCeil(double a) { return std::ceil(a); }
double fTrunc(double a) { return std::trunc(a); }
double fRound(double a) { return std::nearbyint(a); }
double fPow(double a, double b) { return std::pow(a, b); }
double fHypot(double a, double b) { return std::hypot(a, b); }
double fAtan2(double a, double b) { return std::atan2(a, b); }
double fRem(double a, double b) { return std::fmod(a, b); }
double fModFloor(double a, double b) {
  double m = std::fmod(a, b);
  if (m != 0.0 && ((m < 0.0) != (b < 0.0))) m += b;
  return m;
}

// The Accelerator-mode engine service: an opaque per-operation callback
// simulating the block-level synchronization with the Simulink process.
__attribute__((noinline)) void engineService(volatile uint64_t* counter) {
  *counter += 1;
  asm volatile("" ::: "memory");
}

}  // namespace

// ---------------------------------------------------------------------------
// Lowering.
// ---------------------------------------------------------------------------

struct CompiledProgram::Impl {
  const FlatModel* fm;
  CompiledMode mode;
  std::vector<SigRef> sigRefs;    // per signal id
  std::vector<SigRef> stateRefs;  // per actor id (valid if stateValid)
  std::vector<bool> stateValid;
  std::vector<SigRef> storeRefs;  // per data store
  std::vector<Op> evalOps;
  std::vector<Op> updateOps;
  int fSlots = 0;
  int iSlots = 0;
  volatile uint64_t serviceCalls = 0;

  // Initial values for states/stores (applied at run()).
  struct InitItem {
    SigRef ref;
    std::vector<double> vals;
  };
  std::vector<InitItem> inits;
};

namespace {

int relOpIdx(const std::string& o) {
  if (o == "==") return 0;
  if (o == "!=" || o == "~=") return 1;
  if (o == "<") return 2;
  if (o == "<=") return 3;
  if (o == ">") return 4;
  return 5;
}

SigRef allocRef(CompiledProgram::Impl& im, DataType t, int width) {
  SigRef r;
  r.type = t;
  r.width = width;
  r.isF = isFloatType(t);
  if (r.isF) {
    r.off = im.fSlots;
    im.fSlots += width;
  } else {
    r.off = im.iSlots;
    im.iSlots += width;
  }
  return r;
}

// Builds the eval/update ops for one actor; returns false when the actor
// needs no runtime op (Inport/Outport/Scope/...).
void lowerActor(CompiledProgram::Impl& im, const FlatActor& fa) {
  const FlatModel& fm = *im.fm;
  const Actor& a = *fa.src;
  const std::string& ty = fa.type();

  Op op;
  op.actorId = fa.id;
  for (int sig : fa.inputs) op.in.push_back(im.sigRefs[static_cast<size_t>(sig)]);
  for (int sig : fa.outputs) {
    op.out.push_back(im.sigRefs[static_cast<size_t>(sig)]);
  }
  if (fa.enableSignal >= 0) {
    op.enable = im.sigRefs[static_cast<size_t>(fa.enableSignal)];
    op.hasEnable = true;
  }
  if (im.stateValid[static_cast<size_t>(fa.id)]) {
    op.state = im.stateRefs[static_cast<size_t>(fa.id)];
    op.hasState = true;
  }
  if (!fa.outputs.empty()) {
    op.real = isFloatType(fm.signal(fa.outputs[0]).type);
  }

  Op upd = op;  // shares refs; fn decides

  auto pushEval = [&](KernelFn fn) {
    op.fn = fn;
    im.evalOps.push_back(op);
  };
  auto pushUpdate = [&](KernelFn fn) {
    upd.fn = fn;
    im.updateOps.push_back(upd);
  };

  if (ty == "Inport" || ty == "Outport" || ty == "Terminator" ||
      ty == "Scope" || ty == "Display" || ty == "DataStoreMemory") {
    return;
  }
  if (ty == "Ground") { pushEval(kGround); return; }
  if (ty == "Constant") {
    std::vector<double> vals = a.params().getDoubleList("value");
    if (vals.empty()) vals.push_back(a.params().getDouble("value", 0.0));
    vals.resize(static_cast<size_t>(op.out[0].width), vals.back());
    for (double v : vals) {
      if (op.real) {
        op.dp.push_back(op.out[0].type == DataType::F32
                            ? static_cast<double>(static_cast<float>(v))
                            : v);
      } else {
        op.ip.push_back(storeDoubleAsInt(op.out[0].type, v).value);
      }
    }
    pushEval(kConst);
    return;
  }
  if (ty == "Step") {
    op.dp = {a.params().getDouble("stepTime", 1.0),
             a.params().getDouble("before", 0.0),
             a.params().getDouble("after", 1.0)};
    pushEval(kStep);
    return;
  }
  if (ty == "Ramp") {
    op.dp = {a.params().getDouble("start", 0.0),
             a.params().getDouble("slope", 1.0),
             a.params().getDouble("initial", 0.0)};
    pushEval(kRamp);
    return;
  }
  if (ty == "SineWave") {
    op.dp = {a.params().getDouble("amplitude", 1.0),
             a.params().getDouble("freq", 0.01),
             a.params().getDouble("phase", 0.0),
             a.params().getDouble("bias", 0.0)};
    pushEval(kSine);
    return;
  }
  if (ty == "PulseGenerator") {
    int64_t period = std::max<int64_t>(1, a.params().getInt("period", 10));
    double duty = a.params().getDouble("duty", 0.5);
    int64_t on = static_cast<int64_t>(
        std::nearbyint(duty * static_cast<double>(period)));
    on = std::clamp<int64_t>(on, 0, period);
    op.ip = {period, on};
    op.dp = {a.params().getDouble("amplitude", 1.0)};
    pushEval(kPulse);
    return;
  }
  if (ty == "Clock") { pushEval(kClock); return; }
  if (ty == "Counter") {
    op.ip = {std::max<int64_t>(1, a.params().getInt("max", 256))};
    pushEval(kCounter);
    return;
  }
  if (ty == "RandomNumber") {
    op.dp = {a.params().getDouble("min", 0.0), a.params().getDouble("max", 1.0)};
    pushEval(kRandom);
    return;
  }
  if (ty == "Sum") {
    for (char c : parseOps(a, "++", "+-")) op.ip.push_back(c == '+' ? 1 : -1);
    op.sat = a.params().getBool("saturate", false);
    pushEval(kSum);
    return;
  }
  if (ty == "Product") {
    for (char c : parseOps(a, "**", "*/")) op.ip.push_back(c == '*' ? 1 : -1);
    op.sat = a.params().getBool("saturate", false);
    pushEval(kProduct);
    return;
  }
  if (ty == "Gain") {
    double g = a.params().getDouble("gain", 1.0);
    op.dp = {g};
    op.ip = {f2i(g)};
    pushEval(kGain);
    return;
  }
  if (ty == "Bias") {
    double b = a.params().getDouble("bias", 0.0);
    op.dp = {b};
    op.ip = {f2i(b)};
    pushEval(kBias);
    return;
  }
  if (ty == "Abs") { pushEval(kAbs); return; }
  if (ty == "Sign") { pushEval(kSign); return; }
  if (ty == "UnaryMinus") { pushEval(kNeg); return; }
  if (ty == "Sqrt") { op.ufn = fSqrt; pushEval(kUnaryReal); return; }
  if (ty == "Math") {
    std::string o = a.params().getString("op", "exp");
    if (o == "exp") op.ufn = fExp;
    else if (o == "log") op.ufn = fLog;
    else if (o == "log10") op.ufn = fLog10;
    else if (o == "sqrt") op.ufn = fSqrt;
    else if (o == "square") op.ufn = fSquare;
    else if (o == "reciprocal") op.ufn = fRecip;
    else if (o == "pow") op.bfn = fPow;
    else if (o == "hypot") op.bfn = fHypot;
    else if (o == "mod") op.bfn = fModFloor;
    else if (o == "rem") op.bfn = fRem;
    pushEval(op.ufn != nullptr ? kUnaryReal : kBinaryReal);
    return;
  }
  if (ty == "Trigonometry") {
    std::string o = a.params().getString("op", "sin");
    if (o == "sin") op.ufn = fSin;
    else if (o == "cos") op.ufn = fCos;
    else if (o == "tan") op.ufn = fTan;
    else if (o == "asin") op.ufn = fAsin;
    else if (o == "acos") op.ufn = fAcos;
    else if (o == "atan") op.ufn = fAtan;
    else if (o == "sinh") op.ufn = fSinh;
    else if (o == "cosh") op.ufn = fCosh;
    else if (o == "tanh") op.ufn = fTanh;
    else if (o == "atan2") op.bfn = fAtan2;
    pushEval(op.ufn != nullptr ? kUnaryReal : kBinaryReal);
    return;
  }
  if (ty == "MinMax") {
    op.ip = {a.params().getString("op", "max") == "min" ? 1 : 0};
    pushEval(kMinMax);
    return;
  }
  if (ty == "Rounding") {
    std::string o = a.params().getString("op", "round");
    op.ufn = o == "floor" ? fFloor : o == "ceil" ? fCeil : o == "fix" ? fTrunc
                                                                      : fRound;
    pushEval(kUnaryReal);
    return;
  }
  if (ty == "Polynomial") {
    op.dp = a.params().getDoubleList("coeffs");
    if (op.dp.empty()) op.dp.push_back(0.0);
    pushEval(kPoly);
    return;
  }
  if (ty == "DotProduct") { pushEval(kDot); return; }
  if (ty == "SumOfElements") { pushEval(kSumElem); return; }
  if (ty == "ProductOfElements") { pushEval(kProdElem); return; }
  if (ty == "RelationalOperator") {
    op.ip = {relOpIdx(a.params().getString("op", "<")),
             isFloatType(op.in[0].type) || isFloatType(op.in[1].type) ? 1 : 0};
    pushEval(kRel);
    return;
  }
  if (ty == "CompareToConstant") {
    op.ip = {relOpIdx(a.params().getString("op", ">"))};
    op.dp = {a.params().getDouble("value", 0.0)};
    pushEval(kCmpConst);
    return;
  }
  if (ty == "CompareToZero") {
    op.ip = {relOpIdx(a.params().getString("op", ">"))};
    op.dp = {0.0};
    pushEval(kCmpConst);
    return;
  }
  if (ty == "LogicalOperator") {
    std::string o = a.params().getString("op", "AND");
    int kind = o == "AND" ? 0 : o == "OR" ? 1 : o == "NAND" ? 2
               : o == "NOR" ? 3 : o == "XOR" ? 4 : o == "NXOR" ? 5 : 6;
    op.ip = {kind};
    pushEval(kLogic);
    return;
  }
  if (ty == "BitwiseOperator") {
    std::string o = a.params().getString("op", "AND");
    op.ip = {o == "AND" ? 0 : o == "OR" ? 1 : o == "XOR" ? 2 : 3};
    pushEval(kBitwise);
    return;
  }
  if (ty == "ShiftArithmetic") {
    op.ip = {a.params().getString("direction", "left") == "left" ? 1 : 0,
             a.params().getInt("bits", 1)};
    pushEval(kShift);
    return;
  }
  if (ty == "Switch") {
    std::string crit = a.params().getString("criteria", ">0");
    op.ip = {crit == ">0" ? 0 : crit == "~=0" ? 1 : 2};
    op.dp = {a.params().getDouble("threshold", 0.0)};
    pushEval(kSwitch);
    return;
  }
  if (ty == "MultiportSwitch") { pushEval(kMpSwitch); return; }
  if (ty == "Mux") { pushEval(kMux); return; }
  if (ty == "Demux") { pushEval(kDemux); return; }
  if (ty == "Selector") {
    for (double d : a.params().getDoubleList("indices")) {
      op.ip.push_back(static_cast<int64_t>(d));
    }
    pushEval(kSelector);
    return;
  }
  if (ty == "IndexVector") { pushEval(kIndexVector); return; }
  if (ty == "UnitDelay" || ty == "Memory") {
    pushEval(kCopyStateToOut);
    pushUpdate(kLatchInToState);
    return;
  }
  if (ty == "Delay") {
    int w = op.out[0].width;
    int n = static_cast<int>(a.params().getInt("length", 1));
    pushEval(kCopyStateToOut);
    upd.ip = {w, n};
    pushUpdate(kDelayUpdate);
    return;
  }
  if (ty == "TappedDelay") {
    pushEval(kCopyStateToOut);
    pushUpdate(kTappedUpdate);
    return;
  }
  if (ty == "DiscreteIntegrator") {
    double k = a.params().getDouble("gain", 1.0);
    pushEval(kCopyStateToOut);
    upd.dp = {k};
    upd.ip = {f2i(k)};
    upd.sat = a.params().getBool("saturate", false);
    pushUpdate(kIntegratorUpdate);
    return;
  }
  if (ty == "ContinuousIntegrator") {
    std::string m = a.params().getString("method", "euler");
    pushEval(kContIntegratorOut);
    upd.ip = {m == "euler" ? 1 : m == "ab2" ? 2 : 3};
    upd.dp = {a.params().getDouble("h", 0.01)};
    pushUpdate(kContIntegratorUpdate);
    return;
  }
  if (ty == "DiscreteDerivative") {
    pushEval(kDerivative);
    pushUpdate(kDerivativeUpdate);
    return;
  }
  if (ty == "DiscreteFilter") {
    std::vector<double> b = a.params().getDoubleList("num");
    std::vector<double> den = a.params().getDoubleList("den");
    if (b.empty()) b = {1.0};
    if (den.empty()) den = {1.0};
    op.t1 = b;
    op.t2 = den;
    upd.t1 = b;
    upd.t2 = den;
    pushEval(kFilter);
    pushUpdate(kFilterUpdate);
    return;
  }
  if (ty == "ZeroOrderHold") {
    op.ip = {std::max<int64_t>(1, a.params().getInt("sample", 1))};
    pushEval(kZoh);
    return;
  }
  if (ty == "DataStoreRead" || ty == "DataStoreWrite") {
    op.state = im.storeRefs[static_cast<size_t>(fa.dataStore)];
    op.hasState = true;
    pushEval(ty == "DataStoreRead" ? kDataStoreRead : kDataStoreWrite);
    return;
  }
  if (ty == "Saturation") {
    op.dp = {a.params().getDouble("min", -1.0), a.params().getDouble("max", 1.0)};
    pushEval(kSaturation);
    return;
  }
  if (ty == "SaturationDynamic") { pushEval(kSaturationDyn); return; }
  if (ty == "DeadZone") {
    op.dp = {a.params().getDouble("start", -0.5), a.params().getDouble("end", 0.5)};
    pushEval(kDeadZone);
    return;
  }
  if (ty == "Relay") {
    op.dp = {a.params().getDouble("onPoint", 1.0),
             a.params().getDouble("offPoint", -1.0),
             a.params().getDouble("onValue", 1.0),
             a.params().getDouble("offValue", 0.0)};
    pushEval(kRelay);
    return;
  }
  if (ty == "Quantizer") {
    op.dp = {a.params().getDouble("interval", 0.5)};
    pushEval(kQuantizer);
    return;
  }
  if (ty == "RateLimiter") {
    op.dp = {a.params().getDouble("rising", 1.0),
             a.params().getDouble("falling", -1.0)};
    pushEval(kRateLimiter);
    return;
  }
  if (ty == "WrapToZero") {
    op.dp = {a.params().getDouble("threshold", 255.0)};
    pushEval(kWrapToZero);
    return;
  }
  if (ty == "Lookup1D") {
    op.t1 = a.params().getDoubleList("x");
    op.t2 = a.params().getDoubleList("y");
    op.ip = {a.params().getString("method", "interp") == "nearest" ? 1 : 0};
    pushEval(kLut1);
    return;
  }
  if (ty == "Lookup2D") {
    op.t1 = a.params().getDoubleList("x");
    op.t2 = a.params().getDoubleList("y");
    op.t3 = a.params().getDoubleList("z");
    pushEval(kLut2);
    return;
  }
  if (ty == "DataTypeConversion") {
    op.sat = a.params().getBool("saturate", false);
    pushEval(kConvert);
    return;
  }
  if (ty == "Assertion") {
    op.ip = {a.params().getBool("stopOnFail", false) ? 1 : 0};
    pushEval(kAssertion);
    return;
  }
  if (ty == "StopSimulation") { pushEval(kStopSim); return; }

  throw ModelError("fast-mode lowering: unsupported actor type '" + ty + "'");
}

}  // namespace

CompiledProgram::CompiledProgram(const FlatModel& fm, CompiledMode mode)
    : impl_(std::make_unique<Impl>()) {
  validateFlatModel(fm);
  Impl& im = *impl_;
  im.fm = &fm;
  im.mode = mode;

  im.sigRefs.resize(fm.signals.size());
  for (size_t k = 0; k < fm.signals.size(); ++k) {
    im.sigRefs[k] = allocRef(im, fm.signals[k].type, fm.signals[k].width);
  }
  const Registry& reg = Registry::instance();
  im.stateRefs.resize(fm.actors.size());
  im.stateValid.assign(fm.actors.size(), false);
  for (const auto& fa : fm.actors) {
    auto st = reg.get(fa).state(fm, fa);
    if (st) {
      SigRef ref = allocRef(im, st->type, st->width);
      im.stateRefs[static_cast<size_t>(fa.id)] = ref;
      im.stateValid[static_cast<size_t>(fa.id)] = true;
      Impl::InitItem item;
      item.ref = ref;
      for (int i = 0; i < st->width; ++i) {
        item.vals.push_back(
            st->initial.empty()
                ? 0.0
                : st->initial[std::min(st->initial.size() - 1,
                                       static_cast<size_t>(i))]);
      }
      im.inits.push_back(std::move(item));
    }
  }
  for (const auto& ds : fm.dataStores) {
    SigRef ref = allocRef(im, ds.type, ds.width);
    im.storeRefs.push_back(ref);
    Impl::InitItem item;
    item.ref = ref;
    item.vals.assign(static_cast<size_t>(ds.width), ds.initial);
    im.inits.push_back(std::move(item));
  }

  for (int id : fm.schedule) {
    lowerActor(im, fm.actors[static_cast<size_t>(id)]);
  }
}

CompiledProgram::~CompiledProgram() = default;

uint64_t CompiledProgram::serviceCalls() const { return impl_->serviceCalls; }

SimulationResult CompiledProgram::run(const SimOptions& opt,
                                      const TestCaseSpec& tests) {
  Impl& im = *impl_;
  const FlatModel& fm = *im.fm;
  Rt rt;
  rt.f.assign(static_cast<size_t>(im.fSlots), 0.0);
  rt.iv.assign(static_cast<size_t>(im.iSlots), 0);
  for (const auto& init : im.inits) {
    for (int i = 0; i < init.ref.width; ++i) {
      wrReal(rt, init.ref, i, init.vals[static_cast<size_t>(i)]);
    }
  }

  // Stimulus streams mirror StimulusStream.
  struct PortState {
    SigRef ref;
    PortStimulus stim;
    SplitMix64 rng{0};
  };
  std::vector<PortState> portStates;
  for (size_t k = 0; k < fm.rootInports.size(); ++k) {
    PortState ps;
    ps.ref = im.sigRefs[static_cast<size_t>(
        fm.actor(fm.rootInports[k]).outputs[0])];
    ps.stim = tests.port(static_cast<int>(k));
    ps.rng = SplitMix64(portSeed(tests.seed, static_cast<int>(k)));
    portStates.push_back(std::move(ps));
  }

  // Host mirrors (the data transfer with the Simulink process).
  std::vector<double> hostF;
  std::vector<int64_t> hostI;
  std::vector<double> hostIo;
  const bool accel = im.mode == CompiledMode::Accelerator;
  if (accel) {
    hostF.resize(rt.f.size());
    hostI.resize(rt.iv.size());
  } else {
    size_t ioSlots = 0;
    for (int id : fm.rootInports) {
      ioSlots += static_cast<size_t>(
          fm.signal(fm.actor(id).outputs[0]).width);
    }
    for (int id : fm.rootOutports) {
      ioSlots += static_cast<size_t>(fm.signal(fm.actor(id).inputs[0]).width);
    }
    hostIo.resize(std::max<size_t>(1, ioSlots));
  }

  SimulationResult result;
  auto start = std::chrono::steady_clock::now();
  uint64_t step = 0;
  for (; step < opt.maxSteps; ++step) {
    rt.step = step;
    for (auto& ps : portStates) {
      for (int i = 0; i < ps.ref.width; ++i) {
        double v = !ps.stim.sequence.empty()
                       ? ps.stim.sequence[static_cast<size_t>(
                             step % ps.stim.sequence.size())]
                       : ps.rng.nextUniform(ps.stim.min, ps.stim.max);
        wrReal(rt, ps.ref, i, v);
      }
    }
    if (accel) {
      // Block-level synchronization with the host (the paper's "frequent
      // synchronization with Simulink and data transfer requirements"):
      // every operation hands its outputs back to the engine mirror and
      // goes through an engine-service callback.
      auto syncOp = [&](const Op& op) {
        for (const SigRef& o : op.out) {
          if (o.isF) {
            std::memcpy(hostF.data() + o.off, rt.f.data() + o.off,
                        static_cast<size_t>(o.width) * sizeof(double));
          } else {
            std::memcpy(hostI.data() + o.off, rt.iv.data() + o.off,
                        static_cast<size_t>(o.width) * sizeof(int64_t));
          }
        }
        engineService(&im.serviceCalls);
      };
      for (const Op& op : im.evalOps) {
        if (op.hasEnable && !rdB(rt, op.enable, 0)) continue;
        op.fn(op, rt);
        syncOp(op);
      }
      for (const Op& op : im.updateOps) {
        if (op.hasEnable && !rdB(rt, op.enable, 0)) continue;
        op.fn(op, rt);
        syncOp(op);
      }
    } else {
      for (const Op& op : im.evalOps) {
        if (op.hasEnable && !rdB(rt, op.enable, 0)) continue;
        op.fn(op, rt);
      }
      for (const Op& op : im.updateOps) {
        if (op.hasEnable && !rdB(rt, op.enable, 0)) continue;
        op.fn(op, rt);
      }
      // Root-I/O-only synchronization.
      size_t pos = 0;
      for (int id : fm.rootInports) {
        const SigRef& r =
            im.sigRefs[static_cast<size_t>(fm.actor(id).outputs[0])];
        for (int i = 0; i < r.width; ++i) hostIo[pos++] = rdD(rt, r, i);
      }
      for (int id : fm.rootOutports) {
        const SigRef& r =
            im.sigRefs[static_cast<size_t>(fm.actor(id).inputs[0])];
        for (int i = 0; i < r.width; ++i) hostIo[pos++] = rdD(rt, r, i);
      }
    }
    if (rt.stop) {
      ++step;
      result.stoppedEarly = true;
      break;
    }
    if (opt.timeBudgetSec > 0.0 && (step & 1023) == 1023 &&
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                .count() >= opt.timeBudgetSec) {
      ++step;
      break;
    }
  }
  result.execSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.stepsExecuted = step;

  for (int id : fm.rootOutports) {
    const FlatActor& fa = fm.actor(id);
    const SigRef& r = im.sigRefs[static_cast<size_t>(fa.inputs[0])];
    Value v(r.type, r.width);
    for (int i = 0; i < r.width; ++i) {
      if (r.isF) {
        v.setF(i, rt.f[static_cast<size_t>(r.off + i)]);
      } else {
        v.setI(i, rt.iv[static_cast<size_t>(r.off + i)]);
      }
    }
    result.finalOutputs.push_back(std::move(v));
  }
  return result;
}

SimulationResult runCompiled(const FlatModel& fm, CompiledMode mode,
                             const SimOptions& opt,
                             const TestCaseSpec& tests) {
  CompiledProgram prog(fm, mode);
  return prog.run(opt, tests);
}

}  // namespace accmos
