// The interpreting simulation engine — the stand-in for Simulink's SSE.
//
// Faithful to what makes SSE slow (paper §1/§4): boxed values, virtual
// dispatch per actor per step, per-step engine services (signal monitor,
// diagnostics, coverage) running through generic paths. This is the
// baseline AccMoS's generated code is measured against.
#pragma once

#include "cov/coverage.h"
#include "diag/diagnosis.h"
#include "graph/flat_model.h"
#include "sim/options.h"
#include "sim/result.h"
#include "sim/testcase.h"

namespace accmos {

class Interpreter {
 public:
  // Prepares plans, state storage and the schedule for `fm`.
  // `fm` must outlive the Interpreter.
  Interpreter(const FlatModel& fm, const SimOptions& opt);

  // Runs from a fresh initial state with the given stimulus.
  SimulationResult run(const TestCaseSpec& tests);

  const CoveragePlan& coveragePlan() const { return covPlan_; }
  const DiagnosisPlan& diagnosisPlan() const { return diagPlan_; }

 private:
  struct CustomSlot {
    CustomDiagnostic diag;
    int actorId;
    int signalId;
    double prev = 0.0;
    bool hasPrev = false;
  };

  void resetState();

  const FlatModel& fm_;
  SimOptions opt_;
  CoveragePlan covPlan_;
  DiagnosisPlan diagPlan_;
  std::vector<Value> signals_;
  std::vector<Value> states_;       // indexed by actor id (may be empty Value)
  std::vector<bool> hasState_;
  std::vector<Value> stores_;
  std::vector<int> updateList_;     // actors whose spec has an update phase
  std::vector<int> collectSignals_; // monitored signal ids
  std::vector<CustomSlot> custom_;
};

// Convenience: flatten + validate + run in one call.
SimulationResult runInterpreter(const FlatModel& fm, const SimOptions& opt,
                                const TestCaseSpec& tests);

}  // namespace accmos
