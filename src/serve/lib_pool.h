// The accmosd model-library pool: loaded, compiled, ready-to-run models
// kept resident between requests (docs/SERVICE.md, "Pool semantics").
//
// An entry owns everything a request would otherwise rebuild per process —
// the parsed model, the flattened/optimized FlatModel, and a warm
// SpecEvaluator whose per-shape TieredEngines hold the dlopen'd libraries.
// A repeat request for the same (model text, options) key therefore skips
// generation, compilation AND dlopen entirely; the regression handles are
// CompilerDriver::compilerInvocations() and ModelLib::loadCount(), both
// required unchanged across a warm hit by tests/test_serve.cpp.
//
// Eviction is LRU under a byte budget: entries are charged their resident
// footprint (model text + generated sources + on-disk artifact sizes, via
// SpecEvaluator::residentBytes), and when the pool exceeds its budget the
// least-recently-used idle entry is dropped. Entries serving an in-flight
// request (users > 0) are never evicted — a lease pins its entry. An
// evicted model transparently reloads on next use (a miss), and the
// content-addressed compile cache makes that reload cheap: the compiler
// is not re-invoked, only the dlopen is repaid.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "graph/flat_model.h"
#include "ir/model.h"
#include "opt/stats.h"
#include "sim/campaign.h"
#include "sim/options.h"

namespace accmos::serve {

// Snapshot for `accmos client stats` and eviction decisions.
struct PoolStats {
  uint64_t entries = 0;
  uint64_t residentBytes = 0;
  uint64_t byteBudget = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
};

// One resident model. Constructed from the model XML text a client shipped
// plus the request's canonical options (worker count normalized out — the
// worker count never changes observations, so one entry serves requests
// with any workers value via SpecEvaluator::setWorkers).
class PoolEntry {
 public:
  PoolEntry(std::string modelText, const SimOptions& opt);

  PoolEntry(const PoolEntry&) = delete;
  PoolEntry& operator=(const PoolEntry&) = delete;

  // The model the evaluator runs (optimized when the options asked for it).
  const FlatModel& activeModel() const { return *active_; }
  const OptStats& optStats() const { return optStats_; }
  SpecEvaluator& evaluator() { return *evaluator_; }

  // Serializes requests on THIS entry: SpecEvaluator::evaluate calls must
  // not overlap on one evaluator. Requests for different entries run
  // concurrently on the scheduler.
  std::mutex& runMutex() { return runMutex_; }

  // Resident footprint charged against the pool budget.
  size_t residentBytes() const;

 private:
  std::string modelText_;
  std::unique_ptr<Model> model_;
  FlatModel fm_;
  FlatModel optimized_;
  const FlatModel* active_ = nullptr;
  OptStats optStats_;
  std::unique_ptr<SpecEvaluator> evaluator_;
  std::mutex runMutex_;

  friend class ModelLibPool;
  uint64_t lastUse_ = 0;  // pool LRU tick, guarded by the pool mutex
  uint32_t users_ = 0;    // in-flight leases, guarded by the pool mutex
};

class ModelLibPool;

// RAII lease: pins the entry against eviction for the request's lifetime.
class PoolLease {
 public:
  PoolLease() = default;
  PoolLease(PoolLease&& other) noexcept;
  PoolLease& operator=(PoolLease&& other) noexcept;
  ~PoolLease();

  PoolEntry* operator->() const { return entry_.get(); }
  PoolEntry& operator*() const { return *entry_; }
  explicit operator bool() const { return entry_ != nullptr; }

  // Was this lease served from a resident entry (no model rebuild)?
  bool poolHit() const { return hit_; }

 private:
  friend class ModelLibPool;
  PoolLease(ModelLibPool* pool, std::shared_ptr<PoolEntry> entry, bool hit)
      : pool_(pool), entry_(std::move(entry)), hit_(hit) {}

  ModelLibPool* pool_ = nullptr;
  std::shared_ptr<PoolEntry> entry_;
  bool hit_ = false;
};

class ModelLibPool {
 public:
  explicit ModelLibPool(uint64_t byteBudget);

  // The pool key: FNV-1a over the model text and the wire-canonical
  // options with the worker count normalized out.
  static std::string key(const std::string& modelText, const SimOptions& opt);

  // Returns a lease on the resident entry for (modelText, opt), building
  // it on a miss. Construction (parse + flatten + optimize) happens under
  // the pool lock; engine compilation does NOT happen here — TieredEngines
  // build lazily inside the request, off the pool lock. Throws whatever
  // the model pipeline throws (ModelError and friends) on a bad model.
  PoolLease acquire(const std::string& modelText, const SimOptions& opt);

  PoolStats stats() const;

 private:
  friend class PoolLease;
  void release(const std::shared_ptr<PoolEntry>& entry);

  // Drop LRU idle entries until the pool fits its budget (caller holds
  // mutex_). Entries with users > 0 are skipped; `keep` is never evicted
  // (the entry just acquired may alone exceed the budget — it still has
  // to serve its request).
  void evictToBudgetLocked(const PoolEntry* keep);

  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<PoolEntry>> entries_;
  uint64_t byteBudget_ = 0;
  uint64_t tick_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace accmos::serve
