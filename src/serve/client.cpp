#include "serve/client.h"

#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "codegen/compiler_driver.h"
#include "codegen/run_abi.h"
#include "serve/protocol.h"
#include "serve/version.h"
#include "sim/failure.h"

namespace accmos::serve {

namespace {

Json helloRequest() {
  Json j = Json::object();
  j.set("op", Json::str("hello"));
  j.set("protocol", Json::u64(kProtocolVersion));
  j.set("abi", Json::u64(ACCMOS_ABI_VERSION));
  j.set("version", Json::str(kAccmosVersion));
  j.set("cacheSchema", Json::str(kCacheSchema));
  return j;
}

// Rehydrate a daemon-side failure into the closest local exception, so
// `accmos client` surfaces the same typed errors — and hence the same
// documented exit codes — as local execution (docs/ROBUSTNESS.md).
[[noreturn]] void throwDaemonError(const Json& resp) {
  std::string kind = "internal";
  std::string message = "daemon reported an error";
  if (const Json* k = resp.find("kind")) kind = k->asString("$.kind");
  if (const Json* e = resp.find("error")) message = e->asString("$.error");
  if (kind == "timeout") throw SimTimeoutError(message);
  if (kind == "crash") throw SimCrashError(message, 0);
  if (kind == "compile") throw CompileError(message);
  if (kind == "model-load") throw ModelLoadError(message);
  if (kind == "protocol") throw ProtocolError(message);
  throw ModelError(message);
}

ServiceMeta serviceMetaFromJson(const Json& resp) {
  ServiceMeta meta;
  const Json* service = resp.find("service");
  if (service == nullptr) return meta;
  meta.poolHit = service->at("poolHit", "$.service").asBool("$.service.poolHit");
  const Json& pool = service->at("pool", "$.service");
  const std::string w = "$.service.pool";
  meta.pool.entries = pool.at("entries", w).asU64(w + ".entries");
  meta.pool.residentBytes = pool.at("residentBytes", w).asU64(w + ".residentBytes");
  meta.pool.byteBudget = pool.at("byteBudget", w).asU64(w + ".byteBudget");
  meta.pool.hits = pool.at("hits", w).asU64(w + ".hits");
  meta.pool.misses = pool.at("misses", w).asU64(w + ".misses");
  meta.pool.evictions = pool.at("evictions", w).asU64(w + ".evictions");
  return meta;
}

}  // namespace

ServeClient::ServeClient(const std::string& socketPath) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socketPath.empty() || socketPath.size() >= sizeof(addr.sun_path)) {
    throw ProtocolError("bad daemon socket path: \"" + socketPath + "\"");
  }
  ::strncpy(addr.sun_path, socketPath.c_str(), sizeof(addr.sun_path) - 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    throw ProtocolError(std::string("socket() failed: ") + ::strerror(errno));
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const std::string err = ::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw ProtocolError("cannot reach accmosd at " + socketPath + ": " + err +
                        " (is the daemon running? start one with " +
                        "`accmos serve --socket=" + socketPath + "`)");
  }

  try {
    Json resp = request(helloRequest());
    daemonVersion_ = resp.at("version", "$").asString("$.version");
    daemonAbi_ = resp.at("abi", "$").asU64("$.abi");
  } catch (...) {
    ::close(fd_);
    fd_ = -1;
    throw;
  }
}

ServeClient::~ServeClient() {
  if (fd_ >= 0) ::close(fd_);
}

Json ServeClient::request(const Json& req) {
  writeFrame(fd_, req.write());
  std::string text;
  if (!readFrame(fd_, &text)) {
    throw ProtocolError("daemon closed the connection mid-request");
  }
  Json resp = parseJson(text);
  if (!resp.at("ok", "$").asBool("$.ok")) throwDaemonError(resp);
  return resp;
}

SimulationResult ServeClient::run(const std::string& modelText,
                                  const SimOptions& opt,
                                  const TestCaseSpec& spec,
                                  ServiceMeta* meta) {
  Json req = Json::object();
  req.set("op", Json::str("run"));
  req.set("model", Json::str(modelText));
  req.set("options", toJson(opt));
  req.set("spec", toJson(spec));
  Json resp = request(req);
  if (meta != nullptr) *meta = serviceMetaFromJson(resp);
  return simResultFromJson(resp.at("result", "$"), "$.result");
}

CampaignResult ServeClient::campaign(const std::string& modelText,
                                     const SimOptions& opt,
                                     const std::vector<TestCaseSpec>& specs,
                                     ServiceMeta* meta) {
  Json req = Json::object();
  req.set("op", Json::str("campaign"));
  req.set("model", Json::str(modelText));
  req.set("options", toJson(opt));
  Json arr = Json::array();
  for (const auto& s : specs) arr.push(toJson(s));
  req.set("specs", std::move(arr));
  Json resp = request(req);
  if (meta != nullptr) *meta = serviceMetaFromJson(resp);
  return campaignResultFromJson(resp.at("result", "$"), "$.result");
}

Json ServeClient::stats() {
  Json req = Json::object();
  req.set("op", Json::str("stats"));
  return request(req);
}

void ServeClient::shutdown() {
  Json req = Json::object();
  req.set("op", Json::str("shutdown"));
  request(req);
}

}  // namespace accmos::serve
