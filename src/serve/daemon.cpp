#include "serve/daemon.h"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <utility>

#include "codegen/compiler_driver.h"
#include "codegen/run_abi.h"
#include "serve/protocol.h"
#include "serve/version.h"
#include "sim/failure.h"
#include "sim/interrupt.h"

namespace accmos::serve {

namespace {

Json errorResponse(const std::string& kind, const std::string& message) {
  Json j = Json::object();
  j.set("ok", Json::boolean(false));
  j.set("kind", Json::str(kind));
  j.set("error", Json::str(message));
  return j;
}

// The exception → wire-kind mapping; the client rehydrates these into the
// closest local exception so `accmos client` exits with the same
// documented code the local CLI would (docs/ROBUSTNESS.md).
std::string classify(const std::exception& e) {
  if (dynamic_cast<const SimTimeoutError*>(&e) != nullptr) return "timeout";
  if (dynamic_cast<const SimCrashError*>(&e) != nullptr) return "crash";
  if (dynamic_cast<const CompileError*>(&e) != nullptr) return "compile";
  if (dynamic_cast<const ModelLoadError*>(&e) != nullptr) return "model-load";
  if (dynamic_cast<const JsonError*>(&e) != nullptr) return "protocol";
  if (dynamic_cast<const ModelError*>(&e) != nullptr) return "model";
  return "internal";
}

Json helloResponse() {
  Json j = Json::object();
  j.set("ok", Json::boolean(true));
  j.set("op", Json::str("hello"));
  j.set("protocol", Json::u64(kProtocolVersion));
  j.set("abi", Json::u64(ACCMOS_ABI_VERSION));
  j.set("version", Json::str(kAccmosVersion));
  j.set("cacheSchema", Json::str(kCacheSchema));
  return j;
}

Json toJson(const PoolStats& s) {
  Json j = Json::object();
  j.set("entries", Json::u64(s.entries));
  j.set("residentBytes", Json::u64(s.residentBytes));
  j.set("byteBudget", Json::u64(s.byteBudget));
  j.set("hits", Json::u64(s.hits));
  j.set("misses", Json::u64(s.misses));
  j.set("evictions", Json::u64(s.evictions));
  return j;
}

}  // namespace

Daemon::Daemon(const ServeOptions& opt)
    : opt_(opt),
      pool_(opt.poolBudgetBytes),
      scheduler_(opt.requestWorkers) {
  if (opt_.socketPath.empty()) {
    throw ProtocolError("accmosd needs a socket path (--socket=PATH)");
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (opt_.socketPath.size() >= sizeof(addr.sun_path)) {
    throw ProtocolError("socket path too long: " + opt_.socketPath);
  }
  ::strncpy(addr.sun_path, opt_.socketPath.c_str(), sizeof(addr.sun_path) - 1);

  listenFd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listenFd_ < 0) {
    throw ProtocolError(std::string("socket() failed: ") + ::strerror(errno));
  }
  // accmosd owns its socket path: a stale file from a previous instance
  // is replaced rather than failing startup.
  ::unlink(opt_.socketPath.c_str());
  if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(listenFd_, 64) < 0) {
    const std::string err = ::strerror(errno);
    ::close(listenFd_);
    listenFd_ = -1;
    throw ProtocolError("cannot listen on " + opt_.socketPath + ": " + err);
  }
}

Daemon::~Daemon() {
  shutdown();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(connMutex_);
    threads.swap(connThreads_);
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
  if (listenFd_ >= 0) ::close(listenFd_);
  ::unlink(opt_.socketPath.c_str());
}

void Daemon::shutdown() {
  if (stopping_.exchange(true)) return;
  // Cut idle connections loose: their blocked readFrame() sees EOF. A
  // connection mid-request finishes writing its response first — its fd
  // shutdown only stops further reads from mattering.
  std::lock_guard<std::mutex> lock(connMutex_);
  for (int fd : connFds_) ::shutdown(fd, SHUT_RD);
}

void Daemon::run() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    // A cooperative interrupt (SIGTERM/SIGINT handler) stops the service
    // exactly like `client shutdown`; in-flight campaigns observe the
    // same flag and return their partial prefix.
    if (interruptRequested()) {
      shutdown();
      break;
    }
    pollfd pfd{listenFd_, POLLIN, 0};
    int n = ::poll(&pfd, 1, 200);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0 || (pfd.revents & POLLIN) == 0) continue;
    int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) continue;
    std::lock_guard<std::mutex> lock(connMutex_);
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      break;
    }
    connFds_.push_back(fd);
    connThreads_.emplace_back([this, fd] { handleConnection(fd); });
  }
  shutdown();
  // Join connection threads: every in-flight request completes and flushes
  // its response before run() returns.
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(connMutex_);
    threads.swap(connThreads_);
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
  // Close the listener before returning: a stopped daemon must refuse new
  // connections outright. Left open (until the destructor), a late connect
  // would park in the listen backlog and hang its handshake — nobody will
  // ever accept it.
  if (listenFd_ >= 0) {
    ::close(listenFd_);
    listenFd_ = -1;
  }
}

void Daemon::handleConnection(int fd) {
  try {
    // Versioned hello handshake first: refuse a client speaking a
    // different protocol before either side mis-parses a frame.
    std::string text;
    if (!readFrame(fd, &text)) {
      ::close(fd);
      return;
    }
    bool helloOk = false;
    try {
      Json hello = parseJson(text);
      const std::string& op = hello.at("op", "$").asString("$.op");
      uint64_t protocol = hello.at("protocol", "$").asU64("$.protocol");
      if (op != "hello") {
        writeFrame(fd, errorResponse("protocol",
                                     "expected a hello frame, got op \"" +
                                         op + "\"")
                           .write());
      } else if (protocol != kProtocolVersion) {
        writeFrame(fd,
                   errorResponse(
                       "protocol",
                       "protocol version mismatch: daemon speaks v" +
                           std::to_string(kProtocolVersion) +
                           ", client sent v" + std::to_string(protocol))
                       .write());
      } else {
        writeFrame(fd, helloResponse().write());
        helloOk = true;
      }
    } catch (const JsonError& e) {
      writeFrame(fd, errorResponse("protocol", e.what()).write());
    }

    while (helloOk && readFrame(fd, &text)) {
      bool wantShutdown = false;
      writeFrame(fd, dispatch(text, &wantShutdown));
      if (wantShutdown) {
        shutdown();
        break;
      }
    }
  } catch (const ProtocolError&) {
    // Peer vanished or spoke garbage at the framing layer; nothing left
    // to tell it. The daemon itself is unaffected.
  }
  // Deregister BEFORE closing: once closed, the fd number can be reused
  // by a new connection and must no longer be on shutdown()'s cut list.
  {
    std::lock_guard<std::mutex> lock(connMutex_);
    for (auto it = connFds_.begin(); it != connFds_.end(); ++it) {
      if (*it == fd) {
        connFds_.erase(it);
        break;
      }
    }
  }
  ::close(fd);
}

// Parses one request frame and produces the response frame text. Run and
// campaign work executes on the shared scheduler (bounded concurrency);
// stats and shutdown answer inline so an overloaded daemon still responds
// to its operator.
std::string Daemon::dispatch(const std::string& requestText,
                             bool* wantShutdown) {
  std::string op = "?";
  try {
    Json req = parseJson(requestText);
    op = req.at("op", "$").asString("$.op");

    if (op == "stats") {
      Json j = Json::object();
      j.set("ok", Json::boolean(true));
      j.set("op", Json::str("stats"));
      j.set("version", Json::str(kAccmosVersion));
      j.set("pool", toJson(pool_.stats()));
      Json sched = Json::object();
      sched.set("workers", Json::u64(scheduler_.workers()));
      sched.set("executed", Json::u64(scheduler_.executed()));
      sched.set("peakInFlight", Json::u64(scheduler_.peakInFlight()));
      j.set("scheduler", std::move(sched));
      j.set("compilerInvocations",
            Json::u64(CompilerDriver::compilerInvocations()));
      return j.write();
    }

    if (op == "shutdown") {
      *wantShutdown = true;
      Json j = Json::object();
      j.set("ok", Json::boolean(true));
      j.set("op", Json::str("shutdown"));
      return j.write();
    }

    if (op != "run" && op != "campaign") {
      return errorResponse("protocol", "unknown op \"" + op + "\"").write();
    }

    const std::string& modelText = req.at("model", "$").asString("$.model");
    SimOptions simOpt =
        optionsFromJson(req.at("options", "$"), "$.options");
    std::vector<TestCaseSpec> specs;
    if (op == "run") {
      specs.push_back(specFromJson(req.at("spec", "$"), "$.spec"));
    } else {
      const auto& arr = req.at("specs", "$").asArray("$.specs");
      for (size_t i = 0; i < arr.size(); ++i) {
        specs.push_back(
            specFromJson(arr[i], "$.specs[" + std::to_string(i) + "]"));
      }
    }

    auto fut = scheduler_.submit([this, op, modelText, simOpt,
                                  specs = std::move(specs)]() -> std::string {
      PoolLease lease = pool_.acquire(modelText, simOpt);
      // One request at a time per entry (SpecEvaluator::evaluate must not
      // overlap on one evaluator); different models proceed in parallel.
      std::lock_guard<std::mutex> entryLock(lease->runMutex());
      lease->evaluator().setWorkers(simOpt.campaign.workers);

      Json resp = Json::object();
      resp.set("ok", Json::boolean(true));
      resp.set("op", Json::str(op));
      if (op == "run") {
        std::vector<SimulationResult> rs = lease->evaluator().evaluate(specs);
        rs[0].optStats = lease->optStats();
        resp.set("result", toJson(rs[0]));
      } else {
        CampaignResult cr =
            runCampaignSpecsOn(lease->activeModel(), lease->evaluator(),
                               simOpt, specs, lease->optStats());
        resp.set("result", toJson(cr));
      }
      Json service = Json::object();
      service.set("poolHit", Json::boolean(lease.poolHit()));
      service.set("pool", toJson(pool_.stats()));
      resp.set("service", std::move(service));
      return resp.write();
    });
    return fut.get();
  } catch (const std::exception& e) {
    return errorResponse(classify(e), e.what()).write();
  }
}

}  // namespace accmos::serve
