#include "serve/json.h"

#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace accmos::serve {

Json Json::boolean(bool v) {
  Json j;
  j.kind_ = Kind::Bool;
  j.bool_ = v;
  return j;
}

Json Json::u64(uint64_t v) {
  Json j;
  j.kind_ = Kind::U64;
  j.u64_ = v;
  return j;
}

Json Json::i64(int64_t v) {
  if (v >= 0) return u64(static_cast<uint64_t>(v));
  Json j;
  j.kind_ = Kind::I64;
  j.i64_ = v;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.kind_ = Kind::Double;
  j.dbl_ = v;
  return j;
}

Json Json::str(std::string v) {
  Json j;
  j.kind_ = Kind::String;
  j.str_ = std::move(v);
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::Array;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::Object;
  return j;
}

namespace {

const char* kindName(Json::Kind k) {
  switch (k) {
    case Json::Kind::Null: return "null";
    case Json::Kind::Bool: return "bool";
    case Json::Kind::U64:
    case Json::Kind::I64:
    case Json::Kind::Double: return "number";
    case Json::Kind::String: return "string";
    case Json::Kind::Array: return "array";
    case Json::Kind::Object: return "object";
  }
  return "?";
}

[[noreturn]] void kindError(const std::string& where, const char* wanted,
                            Json::Kind got) {
  throw JsonError(where + ": expected " + wanted + ", got " + kindName(got));
}

}  // namespace

bool Json::asBool(const std::string& where) const {
  if (kind_ != Kind::Bool) kindError(where, "bool", kind_);
  return bool_;
}

uint64_t Json::asU64(const std::string& where) const {
  if (kind_ == Kind::U64) return u64_;
  if (kind_ == Kind::Double && dbl_ >= 0.0 &&
      dbl_ == static_cast<double>(static_cast<uint64_t>(dbl_))) {
    return static_cast<uint64_t>(dbl_);
  }
  kindError(where, "unsigned integer", kind_);
}

int64_t Json::asI64(const std::string& where) const {
  if (kind_ == Kind::I64) return i64_;
  if (kind_ == Kind::U64 &&
      u64_ <= static_cast<uint64_t>(std::numeric_limits<int64_t>::max())) {
    return static_cast<int64_t>(u64_);
  }
  if (kind_ == Kind::Double &&
      dbl_ == static_cast<double>(static_cast<int64_t>(dbl_))) {
    return static_cast<int64_t>(dbl_);
  }
  kindError(where, "integer", kind_);
}

double Json::asDouble(const std::string& where) const {
  switch (kind_) {
    case Kind::Double: return dbl_;
    case Kind::U64: return static_cast<double>(u64_);
    case Kind::I64: return static_cast<double>(i64_);
    default: kindError(where, "number", kind_);
  }
}

const std::string& Json::asString(const std::string& where) const {
  if (kind_ != Kind::String) kindError(where, "string", kind_);
  return str_;
}

const std::vector<Json>& Json::asArray(const std::string& where) const {
  if (kind_ != Kind::Array) kindError(where, "array", kind_);
  return arr_;
}

Json& Json::set(const std::string& key, Json value) {
  if (kind_ != Kind::Object) kindError("set('" + key + "')", "object", kind_);
  for (auto& [k, v] : obj_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  obj_.emplace_back(key, std::move(value));
  return *this;
}

const Json* Json::find(const std::string& key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(const std::string& key, const std::string& where) const {
  if (kind_ != Kind::Object) kindError(where, "object", kind_);
  const Json* v = find(key);
  if (v == nullptr) throw JsonError(where + ": missing key '" + key + "'");
  return *v;
}

const std::vector<std::pair<std::string, Json>>& Json::members(
    const std::string& where) const {
  if (kind_ != Kind::Object) kindError(where, "object", kind_);
  return obj_;
}

Json& Json::push(Json value) {
  if (kind_ != Kind::Array) kindError("push()", "array", kind_);
  arr_.push_back(std::move(value));
  return *this;
}

namespace {

void writeEscaped(const std::string& s, std::string& out) {
  out.push_back('"');
  for (char c : s) {
    unsigned char u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", u);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void writeValue(const Json& j, std::string& out) {
  switch (j.kind()) {
    case Json::Kind::Null:
      out += "null";
      return;
    case Json::Kind::Bool:
      out += j.asBool("write") ? "true" : "false";
      return;
    case Json::Kind::U64: {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%" PRIu64, j.asU64("write"));
      out += buf;
      return;
    }
    case Json::Kind::I64: {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%" PRId64, j.asI64("write"));
      out += buf;
      return;
    }
    case Json::Kind::Double: {
      // %.17g round-trips every finite double exactly through strtod.
      // Non-finite timings never travel (Value payloads go as bit
      // patterns), but render something parse-able rather than invalid
      // JSON if one ever does.
      double v = j.asDouble("write");
      char buf[40];
      if (v != v) {
        out += "\"nan\"";
        return;
      }
      std::snprintf(buf, sizeof(buf), "%.17g", v);
      // Ensure the literal re-parses as a double flavour, not an integer:
      // flavour is part of the round-trip contract for timing fields.
      if (std::strpbrk(buf, ".eE") == nullptr) {
        std::strcat(buf, ".0");
      }
      out += buf;
      return;
    }
    case Json::Kind::String:
      writeEscaped(j.asString("write"), out);
      return;
    case Json::Kind::Array: {
      out.push_back('[');
      const auto& arr = j.asArray("write");
      for (size_t k = 0; k < arr.size(); ++k) {
        if (k > 0) out.push_back(',');
        writeValue(arr[k], out);
      }
      out.push_back(']');
      return;
    }
    case Json::Kind::Object: {
      out.push_back('{');
      const auto& obj = j.members("write");
      for (size_t k = 0; k < obj.size(); ++k) {
        if (k > 0) out.push_back(',');
        writeEscaped(obj[k].first, out);
        out.push_back(':');
        writeValue(obj[k].second, out);
      }
      out.push_back('}');
      return;
    }
  }
}

// Recursive-descent parser over the raw bytes; every failure is anchored
// to the 1-based line and the absolute byte offset of the offending byte.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse() {
    Json v = parseValue(0);
    skipWs();
    if (pos_ != text_.size()) fail("trailing data after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    size_t line = 1;
    for (size_t k = 0; k < pos_ && k < text_.size(); ++k) {
      if (text_[k] == '\n') ++line;
    }
    throw JsonError("json parse error at line " + std::to_string(line) +
                    ", byte " + std::to_string(pos_) + ": " + msg);
  }

  void skipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool literal(const char* lit) {
    size_t n = std::strlen(lit);
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Json parseValue(int depth) {
    if (depth > 64) fail("nesting too deep");
    skipWs();
    char c = peek();
    switch (c) {
      case '{': return parseObject(depth);
      case '[': return parseArray(depth);
      case '"': return Json::str(parseString());
      case 't':
        if (literal("true")) return Json::boolean(true);
        fail("invalid literal");
      case 'f':
        if (literal("false")) return Json::boolean(false);
        fail("invalid literal");
      case 'n':
        if (literal("null")) return Json::null();
        fail("invalid literal");
      default:
        return parseNumber();
    }
  }

  Json parseObject(int depth) {
    expect('{');
    Json obj = Json::object();
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skipWs();
      if (peek() != '"') fail("expected object key string");
      std::string key = parseString();
      skipWs();
      expect(':');
      obj.set(key, parseValue(depth + 1));
      skipWs();
      char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return obj;
      }
      fail("expected ',' or '}' in object");
    }
  }

  Json parseArray(int depth) {
    expect('[');
    Json arr = Json::array();
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push(parseValue(depth + 1));
      skipWs();
      char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return arr;
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else { --pos_; fail("invalid \\u escape digit"); }
          }
          // The protocol only ships ASCII control escapes; encode the
          // code point as UTF-8 for completeness.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          --pos_;
          fail("invalid escape character");
      }
    }
  }

  Json parseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool digits = false;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
      digits = true;
    }
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (!digits) {
      pos_ = start;
      fail("invalid number");
    }
    std::string lit = text_.substr(start, pos_ - start);
    if (integral) {
      errno = 0;
      if (lit[0] == '-') {
        char* end = nullptr;
        long long v = std::strtoll(lit.c_str(), &end, 10);
        if (errno == 0 && end != nullptr && *end == '\0') {
          return Json::i64(static_cast<int64_t>(v));
        }
      } else {
        char* end = nullptr;
        unsigned long long v = std::strtoull(lit.c_str(), &end, 10);
        if (errno == 0 && end != nullptr && *end == '\0') {
          return Json::u64(static_cast<uint64_t>(v));
        }
      }
      // Out of 64-bit range: fall through to double.
    }
    char* end = nullptr;
    double v = std::strtod(lit.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      fail("invalid number literal '" + lit + "'");
    }
    return Json::number(v);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

std::string Json::write() const {
  std::string out;
  writeValue(*this, out);
  return out;
}

Json parseJson(const std::string& text) { return Parser(text).parse(); }

}  // namespace accmos::serve
