#include "serve/lib_pool.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "actors/spec.h"
#include "graph/flatten.h"
#include "opt/pipeline.h"
#include "parser/model_io.h"
#include "serve/protocol.h"

namespace accmos::serve {

namespace {

uint64_t fnv1a64(const std::string& data, uint64_t h = 0xcbf29ce484222325ull) {
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string hex16(uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

}  // namespace

PoolEntry::PoolEntry(std::string modelText, const SimOptions& opt)
    : modelText_(std::move(modelText)) {
  LoadedModel loaded = loadModelFromString(modelText_);
  model_ = std::move(loaded.model);
  fm_ = flatten(*model_, Registry::instance());
  active_ = &fm_;
  if (opt.optimize) {
    optimized_ = optimizeModel(fm_, opt, &optStats_);
    active_ = &optimized_;
  }
  evaluator_ = std::make_unique<SpecEvaluator>(*active_, opt);
}

size_t PoolEntry::residentBytes() const {
  return modelText_.size() + evaluator_->residentBytes();
}

PoolLease::PoolLease(PoolLease&& other) noexcept
    : pool_(other.pool_), entry_(std::move(other.entry_)), hit_(other.hit_) {
  other.pool_ = nullptr;
  other.entry_.reset();
}

PoolLease& PoolLease::operator=(PoolLease&& other) noexcept {
  if (this != &other) {
    if (pool_ != nullptr && entry_ != nullptr) pool_->release(entry_);
    pool_ = other.pool_;
    entry_ = std::move(other.entry_);
    hit_ = other.hit_;
    other.pool_ = nullptr;
    other.entry_.reset();
  }
  return *this;
}

PoolLease::~PoolLease() {
  if (pool_ != nullptr && entry_ != nullptr) pool_->release(entry_);
}

ModelLibPool::ModelLibPool(uint64_t byteBudget) : byteBudget_(byteBudget) {}

std::string ModelLibPool::key(const std::string& modelText,
                              const SimOptions& opt) {
  // The options travel through their wire-canonical JSON form so the key
  // covers exactly the knobs that can change what an entry computes; the
  // worker count is normalized out (scheduling, never observations — one
  // entry serves any workers value).
  SimOptions normalized = opt;
  normalized.campaign.workers = 0;
  uint64_t h = fnv1a64(toJson(normalized).write());
  h = fnv1a64(modelText, h);
  return hex16(h);
}

PoolLease ModelLibPool::acquire(const std::string& modelText,
                                const SimOptions& opt) {
  const std::string k = key(modelText, opt);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(k);
  bool hit = it != entries_.end();
  if (hit) {
    ++hits_;
  } else {
    ++misses_;
    auto entry = std::make_shared<PoolEntry>(modelText, opt);
    it = entries_.emplace(k, std::move(entry)).first;
  }
  it->second->lastUse_ = ++tick_;
  ++it->second->users_;
  evictToBudgetLocked(it->second.get());
  return PoolLease(this, it->second, hit);
}

void ModelLibPool::release(const std::shared_ptr<PoolEntry>& entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (entry->users_ > 0) --entry->users_;
  // The entry's footprint typically grew during the request (engines
  // compiled and loaded lazily), so re-check the budget on the way out.
  evictToBudgetLocked(nullptr);
}

void ModelLibPool::evictToBudgetLocked(const PoolEntry* keep) {
  if (byteBudget_ == 0) return;  // 0 = unbounded
  for (;;) {
    uint64_t resident = 0;
    for (const auto& [k, e] : entries_) resident += e->residentBytes();
    if (resident <= byteBudget_) return;
    // LRU idle victim.
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second->users_ > 0 || it->second.get() == keep) continue;
      if (victim == entries_.end() ||
          it->second->lastUse_ < victim->second->lastUse_) {
        victim = it;
      }
    }
    if (victim == entries_.end()) return;  // everything pinned; over budget
    entries_.erase(victim);
    ++evictions_;
  }
}

PoolStats ModelLibPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  PoolStats s;
  s.entries = entries_.size();
  for (const auto& [k, e] : entries_) s.residentBytes += e->residentBytes();
  s.byteBudget = byteBudget_;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  return s;
}

}  // namespace accmos::serve
