// Minimal JSON document model for the accmosd wire protocol (src/serve).
//
// Deliberately small and owned by this repo: the protocol needs (1) exact
// round-trips for every field of SimulationResult/CampaignResult — 64-bit
// counters kept as integers, never squeezed through a double — and (2)
// line/byte-anchored parse errors in the results_parser tradition, so a
// malformed frame names the offending position instead of failing
// somewhere downstream. Third-party JSON libraries give neither guarantee
// and the container bakes none in.
//
// Number handling: a number literal parses to one of three flavours —
// unsigned 64-bit, signed 64-bit, or double — chosen by what the literal
// fits exactly. The writer emits integers as integers and doubles with
// %.17g (enough digits to round-trip IEEE-754 doubles bit-exactly through
// strtod). Values that must survive bit-for-bit regardless of flavour
// (NaN payloads, -0.0) travel as decimal uint64 bit patterns at the
// protocol layer, not as JSON doubles.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ir/model.h"

namespace accmos::serve {

// Malformed JSON text or a type/shape mismatch while reading a document.
// Parse errors carry "line L, byte B" (1-based line, 0-based absolute byte
// offset); shape errors carry the JSON path being read ("$.options.engine").
class JsonError : public ModelError {
 public:
  explicit JsonError(const std::string& what) : ModelError(what) {}
};

class Json {
 public:
  enum class Kind : uint8_t { Null, Bool, U64, I64, Double, String, Array, Object };

  Json() = default;  // null
  static Json null() { return Json(); }
  static Json boolean(bool v);
  static Json u64(uint64_t v);
  static Json i64(int64_t v);
  static Json number(double v);
  static Json str(std::string v);
  static Json array();
  static Json object();

  Kind kind() const { return kind_; }
  bool isNull() const { return kind_ == Kind::Null; }
  bool isNumber() const {
    return kind_ == Kind::U64 || kind_ == Kind::I64 || kind_ == Kind::Double;
  }

  // Checked accessors: throw JsonError naming `where` on a kind mismatch.
  // Integer flavours convert when the value fits the requested range;
  // doubles are accepted for asDouble from any numeric flavour.
  bool asBool(const std::string& where) const;
  uint64_t asU64(const std::string& where) const;
  int64_t asI64(const std::string& where) const;
  double asDouble(const std::string& where) const;
  const std::string& asString(const std::string& where) const;
  const std::vector<Json>& asArray(const std::string& where) const;

  // Object access. Members keep insertion order so serialization is
  // deterministic (round-trip tests compare rendered text).
  Json& set(const std::string& key, Json value);      // object only
  const Json* find(const std::string& key) const;     // nullptr when absent
  // Required member: throws JsonError("missing key ...") when absent.
  const Json& at(const std::string& key, const std::string& where) const;
  const std::vector<std::pair<std::string, Json>>& members(
      const std::string& where) const;

  Json& push(Json value);  // array only

  // Renders compactly (no whitespace beyond what strings carry).
  std::string write() const;

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  uint64_t u64_ = 0;
  int64_t i64_ = 0;
  double dbl_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

// Parses one JSON document (the whole string must be consumed apart from
// trailing whitespace). Throws JsonError with the 1-based line and the
// absolute byte offset of the problem.
Json parseJson(const std::string& text);

}  // namespace accmos::serve
