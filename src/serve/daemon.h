// accmosd: the resident simulation service (docs/SERVICE.md).
//
// A Daemon owns a unix-domain listening socket, a model-library pool
// (lib_pool.h) and a request scheduler (scheduler.h). Each accepted
// connection gets a lightweight frame-parsing thread; simulation work is
// executed on the shared scheduler so daemon load stays bounded by the
// worker count regardless of client count. Results are computed by the
// same campaign/evaluator machinery the CLI uses locally — bit-identical
// by construction, with PR 7 fault containment (quarantine, deadlines,
// degradation ladder) keeping a hostile model from taking the daemon or
// other clients' requests down.
//
// Shutdown is graceful from three directions — `client shutdown`, SIGTERM/
// SIGINT (the CLI installs handlers that raise the cooperative interrupt
// flag), or shutdown() from another thread: the listener closes, in-flight
// requests finish (an interrupted campaign returns its partial prefix with
// `interrupted` set), idle connections are dropped, and run() returns.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/lib_pool.h"
#include "serve/scheduler.h"

namespace accmos::serve {

struct ServeOptions {
  std::string socketPath;
  // Concurrent request slots on the shared scheduler (0 = one per
  // hardware thread). Campaign-internal worker pools are the request's
  // own `workers` option; this bounds how many requests run at once.
  size_t requestWorkers = 0;
  // Model-library pool byte budget (0 = unbounded). The default keeps a
  // healthy working set while guaranteeing the pool cannot grow without
  // bound under model-diverse traffic.
  uint64_t poolBudgetBytes = 512ull << 20;
};

class Daemon {
 public:
  // Binds and listens on opt.socketPath (an existing socket file is
  // replaced — accmosd owns its path). Throws ProtocolError when the
  // socket cannot be created.
  explicit Daemon(const ServeOptions& opt);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  // Serves until shutdown() is called (by `client shutdown`, another
  // thread, or a SIGTERM/SIGINT raising the cooperative interrupt flag),
  // then drains connections and returns.
  void run();

  // Thread-safe, idempotent: stop accepting, wake the accept loop, cut
  // idle connections loose. In-flight requests still complete.
  void shutdown();

  const ServeOptions& options() const { return opt_; }
  PoolStats poolStats() const { return pool_.stats(); }
  const Scheduler& scheduler() const { return scheduler_; }

 private:
  void handleConnection(int fd);
  std::string dispatch(const std::string& requestText, bool* wantShutdown);

  ServeOptions opt_;
  int listenFd_ = -1;
  ModelLibPool pool_;
  Scheduler scheduler_;
  std::atomic<bool> stopping_{false};

  std::mutex connMutex_;
  std::vector<int> connFds_;
  std::vector<std::thread> connThreads_;
};

}  // namespace accmos::serve
