// Build/protocol identity: what `accmos --version` prints and what the
// client/daemon hello handshake exchanges. One header so the CLI, the
// daemon and the client can never disagree about what they are.
#pragma once

#include <cstdint>
#include <string>

#include "codegen/run_abi.h"

namespace accmos::serve {

// Tool version. Bumped by hand when the observable surface moves; the
// wire-protocol and cache-schema constants below are the compatibility
// gates, this string is for humans and logs.
inline constexpr const char* kAccmosVersion = "0.9.0";

// Wire protocol of the accmosd unix-socket service (docs/SERVICE.md).
// A client and daemon with different protocol versions refuse each other
// at the hello handshake instead of mis-parsing frames.
inline constexpr uint32_t kProtocolVersion = 1;

// Compile-cache schema: the on-disk layout under $ACCMOS_CACHE_DIR
// (<key>.bin + "<size> <fnv1a64-hex>" sidecar in <key>.meta, FNV-1a-keyed
// content addressing). Operators comparing caches across binaries need to
// know when the layout moved; bump when compiler_driver.cpp changes it.
inline constexpr const char* kCacheSchema = "fnv1a64-bin+meta-v1";

// Multi-line build identity for `accmos --version`.
inline std::string buildInfo() {
  std::string out;
  out += "accmos " + std::string(kAccmosVersion) +
         " (AccMoS reproduction: code-generated Simulink model simulation)\n";
  out += "run ABI    : v" + std::to_string(ACCMOS_ABI_VERSION) +
         " (accmos_run/accmos_run_batch, src/codegen/run_abi.h)\n";
  out += "protocol   : v" + std::to_string(kProtocolVersion) +
         " (accmosd length-prefixed JSON over unix socket)\n";
  out += "cache      : " + std::string(kCacheSchema) +
         " (content-addressed, $ACCMOS_CACHE_DIR)\n";
#if defined(__VERSION__)
  out += "compiler   : " + std::string(__VERSION__) + "\n";
#endif
  return out;
}

}  // namespace accmos::serve
