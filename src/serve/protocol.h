// Wire protocol of the accmosd resident service (docs/SERVICE.md).
//
// Two layers live here:
//
//  * Codecs — toJson/fromJson pairs for every struct that crosses the
//    socket: SimOptions, TestCaseSpec, SimulationResult, CampaignResult and
//    their members. The contract is *exact* round-trips: a result decoded
//    by the client is bit-identical to the one the daemon computed —
//    including NaN payloads and -0.0 in Values (which travel as decimal
//    uint64 bit patterns, never as JSON doubles), 64-bit counters
//    (integer JSON flavours, never squeezed through a double), coverage
//    bitmaps, diagnostics, and contained RunFailure records. Shape errors
//    throw JsonError naming the JSON path ("$.result.perSeed[3].seed").
//
//  * Frames — length-prefixed messages over a connected stream socket:
//    a 4-byte big-endian payload length followed by that many bytes of
//    JSON text. Framing keeps the parser trivial (one document per frame,
//    no streaming) and makes a truncated peer detectable instead of a
//    hang. Transport faults throw ProtocolError.
//
// Message envelopes (hello/run/campaign/stats/shutdown) are built by the
// daemon and client from these pieces; the op grammar is documented in
// docs/SERVICE.md and exercised end-to-end by tests/test_serve.cpp.
#pragma once

#include <string>

#include "serve/json.h"
#include "sim/campaign.h"
#include "sim/options.h"
#include "sim/result.h"
#include "sim/testcase.h"

namespace accmos::serve {

// Transport-level failure: short read/write, oversize frame, socket error.
// Distinct from JsonError (malformed or mis-shaped payload) so callers can
// tell "the peer vanished" from "the peer spoke garbage".
class ProtocolError : public ModelError {
 public:
  explicit ProtocolError(const std::string& what) : ModelError(what) {}
};

// ---- Codecs ------------------------------------------------------------
// Every fromJson takes `where`, the JSON path of `j` in the enclosing
// document, and extends it downward for error anchoring.

Json toJson(const Value& v);
Value valueFromJson(const Json& j, const std::string& where);

Json toJson(const CoverageRecorder& rec);
CoverageRecorder recorderFromJson(const Json& j, const std::string& where);

Json toJson(const CoverageReport& rep);
CoverageReport reportFromJson(const Json& j, const std::string& where);

Json toJson(const DiagRecord& d);
DiagRecord diagFromJson(const Json& j, const std::string& where);

Json toJson(const RunFailure& f);
RunFailure runFailureFromJson(const Json& j, const std::string& where);

Json toJson(const OptStats& s);
OptStats optStatsFromJson(const Json& j, const std::string& where);

Json toJson(const CollectedSignal& c);
CollectedSignal collectedFromJson(const Json& j, const std::string& where);

Json toJson(const SimulationResult& r);
SimulationResult simResultFromJson(const Json& j, const std::string& where);

Json toJson(const CampaignSeedResult& r);
CampaignSeedResult seedResultFromJson(const Json& j, const std::string& where);

Json toJson(const CampaignResult& r);
CampaignResult campaignResultFromJson(const Json& j, const std::string& where);

Json toJson(const PortStimulus& p);
PortStimulus portStimulusFromJson(const Json& j, const std::string& where);

Json toJson(const TestCaseSpec& s);
TestCaseSpec specFromJson(const Json& j, const std::string& where);

// SimOptions travel without workDir/keepGeneratedCode (daemon-local
// concerns — the daemon decides where its scratch space lives) and reject
// CustomDiagnostic::Kind::Expression in both directions: its std::function
// callback cannot travel, and accepting the cppCondition string alone
// would hand remote clients arbitrary code injection into generated
// simulators. toJson throws ProtocolError naming the diagnostic.
Json toJson(const SimOptions& o);
SimOptions optionsFromJson(const Json& j, const std::string& where);

// ---- Shard messages (src/dist sharded campaigns) -----------------------
// The coordinator ↔ shard-worker wire pieces (docs/CAMPAIGNS.md, "Sharded
// campaigns"). A coordinator sends one ShardRequest frame down each
// worker's socketpair; the worker answers with a stream of ShardPartial
// frames (op "partial") — per-spec SimulationResults for consecutive
// shard-local spec indices — and one final ShardDone frame (op "done")
// carrying the one-off cost bookkeeping. Results travel whole (bitmaps,
// diagnostics, failures) precisely so the coordinator can run the very
// same spec-order merge a single process runs: bit-identity is inherited
// from the codecs' exact round-trip contract, not re-proven per field.

struct ShardRequest {
  std::string modelText;            // full model XML; each shard flattens
                                    // and optimizes it identically
  SimOptions options;               // per-shard options (campaign.workers
                                    // is the shard's INNER parallelism)
  std::vector<TestCaseSpec> specs;  // this shard's contiguous sub-range
  size_t shardIndex = 0;
  size_t shardCount = 1;
};
Json toJson(const ShardRequest& r);
ShardRequest shardRequestFromJson(const Json& j, const std::string& where);

struct ShardPartial {
  size_t first = 0;  // shard-local spec index of results[0]
  std::vector<SimulationResult> results;
};
Json toJson(const ShardPartial& p);
ShardPartial shardPartialFromJson(const Json& j, const std::string& where);

struct ShardDone {
  // Contiguous completed prefix of the shard's spec list; < specs.size()
  // exactly when the worker was interrupted (SIGINT/SIGTERM forwarded by
  // the coordinator).
  size_t completed = 0;
  bool interrupted = false;
  double generateSeconds = 0.0;
  double compileSeconds = 0.0;
  double loadSeconds = 0.0;
  double compileWaitSeconds = 0.0;
  bool compileCacheHit = false;
  double timeToFirstResultSeconds = -1.0;
  uint64_t compilerInvocations = 0;  // this worker process's count
};
Json toJson(const ShardDone& d);
ShardDone shardDoneFromJson(const Json& j, const std::string& where);

// ---- Observation canonicalization --------------------------------------
// The observation-only view of a campaign: everything that is contractually
// bit-identical across workers, lanes, exec modes and tiers — per-seed
// steps/coverage/diagnostic counts, merged bitmaps, deduplicated
// diagnostics, failure records, opt stats — with timing and tier-placement
// fields (execSeconds, execMode, tierSwapIndex, interp/nativeSeeds,
// workersUsed) excluded. Client-vs-local bit-identity asserts compare the
// rendered text of this view; under ACCMOS_TIER=auto the excluded fields
// legitimately differ run to run while this view may not.
Json campaignObservations(const CampaignResult& r);

// ---- Frames ------------------------------------------------------------

// Upper bound on one frame's payload; a length prefix beyond it is treated
// as a corrupt stream, not an allocation request.
inline constexpr uint32_t kMaxFrameBytes = 1u << 28;

// Writes one length-prefixed frame. Throws ProtocolError on any socket
// error (including the peer closing mid-write) or an oversize payload.
void writeFrame(int fd, const std::string& payload);

// Reads one frame. Returns false on a clean EOF at a frame boundary (the
// peer hung up between messages); throws ProtocolError on a truncated
// frame, an oversize length prefix, or a socket error.
bool readFrame(int fd, std::string* payload);

}  // namespace accmos::serve
