#include "serve/scheduler.h"

#include <algorithm>
#include <utility>

#include "ir/model.h"

namespace accmos::serve {

Scheduler::Scheduler(size_t workers) {
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  threads_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { workerLoop(); });
  }
}

Scheduler::~Scheduler() {
  stop();
  for (auto& t : threads_) t.join();
}

std::future<std::string> Scheduler::submit(std::function<std::string()> job) {
  Job j;
  j.fn = std::move(job);
  std::future<std::string> fut = j.result.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      throw ModelError("scheduler is shutting down; request refused");
    }
    queue_.push_back(std::move(j));
  }
  cv_.notify_one();
  return fut;
}

void Scheduler::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
}

uint64_t Scheduler::executed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return executed_;
}

uint64_t Scheduler::peakInFlight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return peakInFlight_;
}

void Scheduler::workerLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      job = std::move(queue_.front());
      queue_.pop_front();
      ++inFlight_;
      peakInFlight_ = std::max(peakInFlight_, inFlight_);
    }
    std::string out;
    std::exception_ptr err;
    try {
      out = job.fn();
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --inFlight_;
      ++executed_;
    }
    // Settle the promise only after the counters are updated: a client
    // whose response has arrived must find itself in `executed`.
    if (err) {
      job.result.set_exception(err);
    } else {
      job.result.set_value(std::move(out));
    }
  }
}

}  // namespace accmos::serve
