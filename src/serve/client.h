// Client side of the accmosd protocol: connect, handshake, and issue
// run/campaign/stats/shutdown requests (docs/SERVICE.md). Backs the
// `accmos client` subcommand and the serve test/bench suites.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/json.h"
#include "serve/lib_pool.h"
#include "sim/campaign.h"
#include "sim/options.h"
#include "sim/result.h"
#include "sim/testcase.h"

namespace accmos::serve {

// What the daemon reports about how it served a request — the client's
// window into pool behaviour ("was my model already warm?").
struct ServiceMeta {
  bool poolHit = false;
  PoolStats pool;
};

class ServeClient {
 public:
  // Connects to the daemon's unix socket and performs the versioned hello
  // handshake. Throws ProtocolError when the socket cannot be reached or
  // the daemon speaks a different protocol version.
  explicit ServeClient(const std::string& socketPath);
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  // Daemon identity from the hello response.
  const std::string& daemonVersion() const { return daemonVersion_; }
  uint64_t daemonAbi() const { return daemonAbi_; }

  // One simulation of `modelText` (model XML) under `spec`. The result is
  // bit-identical to local execution of the same model/options/spec.
  SimulationResult run(const std::string& modelText, const SimOptions& opt,
                       const TestCaseSpec& spec, ServiceMeta* meta = nullptr);

  // A heterogeneous spec campaign, merged daemon-side by the same
  // deterministic seed-order merge the local CLI uses.
  CampaignResult campaign(const std::string& modelText, const SimOptions& opt,
                          const std::vector<TestCaseSpec>& specs,
                          ServiceMeta* meta = nullptr);

  // Raw stats document (pool, scheduler, compiler counters).
  Json stats();

  // Ask the daemon to shut down gracefully (in-flight requests finish).
  void shutdown();

 private:
  Json request(const Json& req);

  int fd_ = -1;
  std::string daemonVersion_;
  uint64_t daemonAbi_ = 0;
};

}  // namespace accmos::serve
