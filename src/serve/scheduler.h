// The accmosd request scheduler: one shared worker pool multiplexing
// run/campaign/stats requests from every connected client.
//
// Connection threads only parse frames; the actual simulation work is
// submitted here, so total daemon load is bounded by the worker count no
// matter how many clients connect, and a queue of pending requests drains
// in FIFO order. Each submitted job yields a future the connection thread
// waits on — responses stay in per-connection request order by
// construction. Campaign jobs fan out further through SpecEvaluator's own
// worker pool; the scheduler bounds how many such requests are in flight,
// not their internal parallelism.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace accmos::serve {

class Scheduler {
 public:
  // workers == 0 selects one worker per hardware thread.
  explicit Scheduler(size_t workers);
  // Stops accepting new work, drains already-queued jobs, joins workers —
  // a `client shutdown` never strands an accepted request.
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Enqueues a job; the future carries its return value or exception.
  // Throws ModelError after stop() — the daemon refuses work it could
  // never run.
  std::future<std::string> submit(std::function<std::string()> job);

  // Stop accepting work and wake idle workers; running jobs complete.
  void stop();

  size_t workers() const { return threads_.size(); }
  // Completed jobs. Updated BEFORE a job's future is satisfied, so any
  // observer who already received a response sees that request counted —
  // `accmos client stats` straight after a campaign reads a stable number.
  uint64_t executed() const;
  // High-water mark of concurrently running jobs — the bounded-concurrency
  // regression handle (tests assert it never exceeds workers()).
  uint64_t peakInFlight() const;

 private:
  void workerLoop();

  // A job and the promise its submitter waits on. Not a packaged_task:
  // the worker settles the promise itself, after bookkeeping, so the
  // executed/inFlight counters are already updated when the waiter wakes.
  struct Job {
    std::function<std::string()> fn;
    std::promise<std::string> result;
  };

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Job> queue_;
  std::vector<std::thread> threads_;
  bool stopping_ = false;
  uint64_t executed_ = 0;
  uint64_t inFlight_ = 0;
  uint64_t peakInFlight_ = 0;
};

}  // namespace accmos::serve
