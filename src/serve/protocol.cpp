#include "serve/protocol.h"

#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <bit>

#include "ir/datatype.h"

namespace accmos::serve {

namespace {

// ---- small shape helpers ----------------------------------------------

std::string sub(const std::string& where, const char* key) {
  return where + "." + key;
}

std::string idx(const std::string& where, size_t i) {
  return where + "[" + std::to_string(i) + "]";
}

bool getBool(const Json& j, const std::string& where, const char* key) {
  return j.at(key, where).asBool(sub(where, key));
}
uint64_t getU64(const Json& j, const std::string& where, const char* key) {
  return j.at(key, where).asU64(sub(where, key));
}
int64_t getI64(const Json& j, const std::string& where, const char* key) {
  return j.at(key, where).asI64(sub(where, key));
}
double getDouble(const Json& j, const std::string& where, const char* key) {
  return j.at(key, where).asDouble(sub(where, key));
}
const std::string& getString(const Json& j, const std::string& where,
                             const char* key) {
  return j.at(key, where).asString(sub(where, key));
}
const std::vector<Json>& getArray(const Json& j, const std::string& where,
                                  const char* key) {
  return j.at(key, where).asArray(sub(where, key));
}

int getInt(const Json& j, const std::string& where, const char* key) {
  return static_cast<int>(getI64(j, where, key));
}

[[noreturn]] void badEnum(const std::string& where, const std::string& got) {
  throw JsonError("unknown name \"" + got + "\" at " + where);
}

}  // namespace

// ---- Value -------------------------------------------------------------
// Exact element transport: each slot travels as its 64-bit two's-complement
// / IEEE-754 bit pattern rendered as a decimal uint64. Value::i() exposes
// the raw slot for every type (sign-extended for ints, the bit pattern for
// floats), so NaN payloads, -0.0 and wrapped unsigned values all survive.

Json toJson(const Value& v) {
  Json j = Json::object();
  j.set("t", Json::str(std::string(dataTypeName(v.type()))));
  j.set("w", Json::u64(static_cast<uint64_t>(v.width())));
  Json bits = Json::array();
  for (int k = 0; k < v.width(); ++k) {
    bits.push(Json::u64(static_cast<uint64_t>(v.i(k))));
  }
  j.set("bits", std::move(bits));
  return j;
}

Value valueFromJson(const Json& j, const std::string& where) {
  const std::string& tname = getString(j, where, "t");
  auto type = dataTypeFromName(tname);
  if (!type) badEnum(sub(where, "t"), tname);
  uint64_t width = getU64(j, where, "w");
  const auto& bits = getArray(j, where, "bits");
  if (width < 1 || bits.size() != width) {
    throw JsonError("width/bits mismatch at " + where);
  }
  Value v(*type, static_cast<int>(width));
  for (size_t k = 0; k < bits.size(); ++k) {
    uint64_t raw = bits[k].asU64(idx(sub(where, "bits"), k));
    if (*type == DataType::F64) {
      v.setF(static_cast<int>(k), std::bit_cast<double>(raw));
    } else if (*type == DataType::F32) {
      v.setF(static_cast<int>(k),
             static_cast<double>(
                 std::bit_cast<float>(static_cast<uint32_t>(raw))));
    } else {
      v.setI(static_cast<int>(k), static_cast<int64_t>(raw));
    }
  }
  return v;
}

// ---- Coverage ----------------------------------------------------------
// Bitmaps travel as '0'/'1' strings per metric — compact, diffable, and
// the decoded recorder compares equal byte-for-byte.

Json toJson(const CoverageRecorder& rec) {
  Json j = Json::object();
  for (CovMetric m : kAllCovMetrics) {
    const auto& bits = rec.bits(m);
    std::string s(bits.size(), '0');
    for (size_t i = 0; i < bits.size(); ++i) {
      if (bits[i] != 0) s[i] = '1';
    }
    j.set(std::string(covMetricName(m)), Json::str(std::move(s)));
  }
  return j;
}

CoverageRecorder recorderFromJson(const Json& j, const std::string& where) {
  CoverageRecorder rec;
  for (CovMetric m : kAllCovMetrics) {
    const std::string key(covMetricName(m));
    const std::string& s = j.at(key, where).asString(where + "." + key);
    auto& bits = rec.bits(m);
    bits.assign(s.size(), 0);
    for (size_t i = 0; i < s.size(); ++i) {
      if (s[i] == '1') {
        bits[i] = 1;
      } else if (s[i] != '0') {
        throw JsonError("bitmap byte " + std::to_string(i) + " at " + where +
                        "." + key + " is not '0'/'1'");
      }
    }
  }
  return rec;
}

Json toJson(const CoverageReport& rep) {
  Json j = Json::object();
  for (CovMetric m : kAllCovMetrics) {
    const auto& e = rep.of(m);
    Json entry = Json::object();
    entry.set("covered", Json::i64(e.covered));
    entry.set("total", Json::i64(e.total));
    j.set(std::string(covMetricName(m)), std::move(entry));
  }
  return j;
}

CoverageReport reportFromJson(const Json& j, const std::string& where) {
  CoverageReport rep;
  for (CovMetric m : kAllCovMetrics) {
    const std::string key(covMetricName(m));
    const Json& entry = j.at(key, where);
    const std::string ewhere = where + "." + key;
    auto& e = rep.entries[static_cast<size_t>(m)];
    e.covered = getInt(entry, ewhere, "covered");
    e.total = getInt(entry, ewhere, "total");
  }
  return rep;
}

// ---- Diagnostics / failures / opt stats --------------------------------

Json toJson(const DiagRecord& d) {
  Json j = Json::object();
  j.set("actorId", Json::i64(d.actorId));
  j.set("actorPath", Json::str(d.actorPath));
  j.set("kind", Json::str(std::string(diagKindName(d.kind))));
  j.set("message", Json::str(d.message));
  j.set("firstStep", Json::u64(d.firstStep));
  j.set("count", Json::u64(d.count));
  return j;
}

DiagRecord diagFromJson(const Json& j, const std::string& where) {
  DiagRecord d;
  d.actorId = getInt(j, where, "actorId");
  d.actorPath = getString(j, where, "actorPath");
  const std::string& kname = getString(j, where, "kind");
  auto kind = diagKindFromName(kname);
  if (!kind) badEnum(sub(where, "kind"), kname);
  d.kind = *kind;
  d.message = getString(j, where, "message");
  d.firstStep = getU64(j, where, "firstStep");
  d.count = getU64(j, where, "count");
  return d;
}

Json toJson(const RunFailure& f) {
  Json j = Json::object();
  j.set("kind", Json::str(failureKindName(f.kind)));
  j.set("seed", Json::u64(f.seed));
  j.set("index", Json::u64(static_cast<uint64_t>(f.index)));
  j.set("signal", Json::i64(f.signal));
  j.set("retries", Json::i64(f.retries));
  j.set("backend", Json::str(f.backend));
  j.set("message", Json::str(f.message));
  return j;
}

RunFailure runFailureFromJson(const Json& j, const std::string& where) {
  RunFailure f;
  const std::string& kname = getString(j, where, "kind");
  bool found = false;
  for (FailureKind k :
       {FailureKind::Timeout, FailureKind::Crash, FailureKind::CompileError,
        FailureKind::AbiMismatch}) {
    if (kname == failureKindName(k)) {
      f.kind = k;
      found = true;
      break;
    }
  }
  if (!found) badEnum(sub(where, "kind"), kname);
  f.seed = getU64(j, where, "seed");
  f.index = static_cast<size_t>(getU64(j, where, "index"));
  f.signal = getInt(j, where, "signal");
  f.retries = getInt(j, where, "retries");
  f.backend = getString(j, where, "backend");
  f.message = getString(j, where, "message");
  return f;
}

Json toJson(const OptStats& s) {
  Json j = Json::object();
  j.set("ran", Json::boolean(s.ran));
  j.set("actorsBefore", Json::i64(s.actorsBefore));
  j.set("actorsAfter", Json::i64(s.actorsAfter));
  j.set("signalsBefore", Json::i64(s.signalsBefore));
  j.set("signalsAfter", Json::i64(s.signalsAfter));
  j.set("actorsFolded", Json::i64(s.actorsFolded));
  j.set("identitiesBypassed", Json::i64(s.identitiesBypassed));
  j.set("actorsEliminated", Json::i64(s.actorsEliminated));
  j.set("signalsEliminated", Json::i64(s.signalsEliminated));
  j.set("stateUpdatesHoisted", Json::i64(s.stateUpdatesHoisted));
  return j;
}

OptStats optStatsFromJson(const Json& j, const std::string& where) {
  OptStats s;
  s.ran = getBool(j, where, "ran");
  s.actorsBefore = getInt(j, where, "actorsBefore");
  s.actorsAfter = getInt(j, where, "actorsAfter");
  s.signalsBefore = getInt(j, where, "signalsBefore");
  s.signalsAfter = getInt(j, where, "signalsAfter");
  s.actorsFolded = getInt(j, where, "actorsFolded");
  s.identitiesBypassed = getInt(j, where, "identitiesBypassed");
  s.actorsEliminated = getInt(j, where, "actorsEliminated");
  s.signalsEliminated = getInt(j, where, "signalsEliminated");
  s.stateUpdatesHoisted = getInt(j, where, "stateUpdatesHoisted");
  return s;
}

Json toJson(const CollectedSignal& c) {
  Json j = Json::object();
  j.set("path", Json::str(c.path));
  j.set("last", toJson(c.last));
  j.set("count", Json::u64(c.count));
  return j;
}

CollectedSignal collectedFromJson(const Json& j, const std::string& where) {
  CollectedSignal c;
  c.path = getString(j, where, "path");
  c.last = valueFromJson(j.at("last", where), sub(where, "last"));
  c.count = getU64(j, where, "count");
  return c;
}

// ---- SimulationResult --------------------------------------------------

Json toJson(const SimulationResult& r) {
  Json j = Json::object();
  j.set("stepsExecuted", Json::u64(r.stepsExecuted));
  j.set("stoppedEarly", Json::boolean(r.stoppedEarly));
  j.set("timedOut", Json::boolean(r.timedOut));
  j.set("failed", Json::boolean(r.failed));
  j.set("failure", toJson(r.failure));
  j.set("execSeconds", Json::number(r.execSeconds));
  j.set("generateSeconds", Json::number(r.generateSeconds));
  j.set("compileSeconds", Json::number(r.compileSeconds));
  j.set("loadSeconds", Json::number(r.loadSeconds));
  j.set("execMode", Json::str(r.execMode));
  j.set("hasCoverage", Json::boolean(r.hasCoverage));
  j.set("coverage", toJson(r.coverage));
  j.set("bitmaps", toJson(r.bitmaps));
  Json diags = Json::array();
  for (const auto& d : r.diagnostics) diags.push(toJson(d));
  j.set("diagnostics", std::move(diags));
  Json coll = Json::array();
  for (const auto& c : r.collected) coll.push(toJson(c));
  j.set("collected", std::move(coll));
  Json outs = Json::array();
  for (const auto& v : r.finalOutputs) outs.push(toJson(v));
  j.set("finalOutputs", std::move(outs));
  j.set("optStats", toJson(r.optStats));
  return j;
}

SimulationResult simResultFromJson(const Json& j, const std::string& where) {
  SimulationResult r;
  r.stepsExecuted = getU64(j, where, "stepsExecuted");
  r.stoppedEarly = getBool(j, where, "stoppedEarly");
  r.timedOut = getBool(j, where, "timedOut");
  r.failed = getBool(j, where, "failed");
  r.failure = runFailureFromJson(j.at("failure", where), sub(where, "failure"));
  r.execSeconds = getDouble(j, where, "execSeconds");
  r.generateSeconds = getDouble(j, where, "generateSeconds");
  r.compileSeconds = getDouble(j, where, "compileSeconds");
  r.loadSeconds = getDouble(j, where, "loadSeconds");
  r.execMode = getString(j, where, "execMode");
  r.hasCoverage = getBool(j, where, "hasCoverage");
  r.coverage = reportFromJson(j.at("coverage", where), sub(where, "coverage"));
  r.bitmaps = recorderFromJson(j.at("bitmaps", where), sub(where, "bitmaps"));
  {
    const auto& arr = getArray(j, where, "diagnostics");
    const std::string awhere = sub(where, "diagnostics");
    for (size_t i = 0; i < arr.size(); ++i) {
      r.diagnostics.push_back(diagFromJson(arr[i], idx(awhere, i)));
    }
  }
  {
    const auto& arr = getArray(j, where, "collected");
    const std::string awhere = sub(where, "collected");
    for (size_t i = 0; i < arr.size(); ++i) {
      r.collected.push_back(collectedFromJson(arr[i], idx(awhere, i)));
    }
  }
  {
    const auto& arr = getArray(j, where, "finalOutputs");
    const std::string awhere = sub(where, "finalOutputs");
    for (size_t i = 0; i < arr.size(); ++i) {
      r.finalOutputs.push_back(valueFromJson(arr[i], idx(awhere, i)));
    }
  }
  r.optStats = optStatsFromJson(j.at("optStats", where), sub(where, "optStats"));
  return r;
}

// ---- CampaignResult ----------------------------------------------------

Json toJson(const CampaignSeedResult& r) {
  Json j = Json::object();
  j.set("seed", Json::u64(r.seed));
  j.set("steps", Json::u64(r.steps));
  j.set("execSeconds", Json::number(r.execSeconds));
  j.set("coverage", toJson(r.coverage));
  j.set("cumulative", toJson(r.cumulative));
  j.set("diagnosticKinds", Json::u64(static_cast<uint64_t>(r.diagnosticKinds)));
  j.set("execMode", Json::str(r.execMode));
  j.set("failed", Json::boolean(r.failed));
  return j;
}

CampaignSeedResult seedResultFromJson(const Json& j, const std::string& where) {
  CampaignSeedResult r;
  r.seed = getU64(j, where, "seed");
  r.steps = getU64(j, where, "steps");
  r.execSeconds = getDouble(j, where, "execSeconds");
  r.coverage = reportFromJson(j.at("coverage", where), sub(where, "coverage"));
  r.cumulative =
      reportFromJson(j.at("cumulative", where), sub(where, "cumulative"));
  r.diagnosticKinds = static_cast<size_t>(getU64(j, where, "diagnosticKinds"));
  r.execMode = getString(j, where, "execMode");
  r.failed = getBool(j, where, "failed");
  return r;
}

Json toJson(const CampaignResult& r) {
  Json j = Json::object();
  Json perSeed = Json::array();
  for (const auto& s : r.perSeed) perSeed.push(toJson(s));
  j.set("perSeed", std::move(perSeed));
  j.set("cumulative", toJson(r.cumulative));
  j.set("mergedBitmaps", toJson(r.mergedBitmaps));
  Json diags = Json::array();
  for (const auto& d : r.diagnostics) diags.push(toJson(d));
  j.set("diagnostics", std::move(diags));
  j.set("totalExecSeconds", Json::number(r.totalExecSeconds));
  j.set("wallSeconds", Json::number(r.wallSeconds));
  j.set("generateSeconds", Json::number(r.generateSeconds));
  j.set("compileSeconds", Json::number(r.compileSeconds));
  j.set("loadSeconds", Json::number(r.loadSeconds));
  j.set("compileCacheHit", Json::boolean(r.compileCacheHit));
  j.set("compileWaitSeconds", Json::number(r.compileWaitSeconds));
  j.set("timeToFirstResultSeconds", Json::number(r.timeToFirstResultSeconds));
  j.set("tierSwapIndex", Json::i64(r.tierSwapIndex));
  j.set("interpSeeds", Json::u64(static_cast<uint64_t>(r.interpSeeds)));
  j.set("nativeSeeds", Json::u64(static_cast<uint64_t>(r.nativeSeeds)));
  j.set("workersUsed", Json::u64(static_cast<uint64_t>(r.workersUsed)));
  Json fails = Json::array();
  for (const auto& f : r.failures) fails.push(toJson(f));
  j.set("failures", std::move(fails));
  j.set("optStats", toJson(r.optStats));
  j.set("interrupted", Json::boolean(r.interrupted));
  return j;
}

CampaignResult campaignResultFromJson(const Json& j, const std::string& where) {
  CampaignResult r;
  {
    const auto& arr = getArray(j, where, "perSeed");
    const std::string awhere = sub(where, "perSeed");
    for (size_t i = 0; i < arr.size(); ++i) {
      r.perSeed.push_back(seedResultFromJson(arr[i], idx(awhere, i)));
    }
  }
  r.cumulative =
      reportFromJson(j.at("cumulative", where), sub(where, "cumulative"));
  r.mergedBitmaps = recorderFromJson(j.at("mergedBitmaps", where),
                                     sub(where, "mergedBitmaps"));
  {
    const auto& arr = getArray(j, where, "diagnostics");
    const std::string awhere = sub(where, "diagnostics");
    for (size_t i = 0; i < arr.size(); ++i) {
      r.diagnostics.push_back(diagFromJson(arr[i], idx(awhere, i)));
    }
  }
  r.totalExecSeconds = getDouble(j, where, "totalExecSeconds");
  r.wallSeconds = getDouble(j, where, "wallSeconds");
  r.generateSeconds = getDouble(j, where, "generateSeconds");
  r.compileSeconds = getDouble(j, where, "compileSeconds");
  r.loadSeconds = getDouble(j, where, "loadSeconds");
  r.compileCacheHit = getBool(j, where, "compileCacheHit");
  r.compileWaitSeconds = getDouble(j, where, "compileWaitSeconds");
  r.timeToFirstResultSeconds = getDouble(j, where, "timeToFirstResultSeconds");
  r.tierSwapIndex = getI64(j, where, "tierSwapIndex");
  r.interpSeeds = static_cast<size_t>(getU64(j, where, "interpSeeds"));
  r.nativeSeeds = static_cast<size_t>(getU64(j, where, "nativeSeeds"));
  r.workersUsed = static_cast<size_t>(getU64(j, where, "workersUsed"));
  {
    const auto& arr = getArray(j, where, "failures");
    const std::string awhere = sub(where, "failures");
    for (size_t i = 0; i < arr.size(); ++i) {
      r.failures.push_back(runFailureFromJson(arr[i], idx(awhere, i)));
    }
  }
  r.optStats = optStatsFromJson(j.at("optStats", where), sub(where, "optStats"));
  r.interrupted = getBool(j, where, "interrupted");
  return r;
}

// ---- Stimulus / options ------------------------------------------------

Json toJson(const PortStimulus& p) {
  Json j = Json::object();
  j.set("min", Json::number(p.min));
  j.set("max", Json::number(p.max));
  Json seq = Json::array();
  for (double v : p.sequence) seq.push(Json::number(v));
  j.set("sequence", std::move(seq));
  return j;
}

PortStimulus portStimulusFromJson(const Json& j, const std::string& where) {
  PortStimulus p;
  p.min = getDouble(j, where, "min");
  p.max = getDouble(j, where, "max");
  const auto& seq = getArray(j, where, "sequence");
  const std::string swhere = sub(where, "sequence");
  p.sequence.reserve(seq.size());
  for (size_t i = 0; i < seq.size(); ++i) {
    p.sequence.push_back(seq[i].asDouble(idx(swhere, i)));
  }
  return p;
}

Json toJson(const TestCaseSpec& s) {
  Json j = Json::object();
  j.set("seed", Json::u64(s.seed));
  Json ports = Json::array();
  for (const auto& p : s.ports) ports.push(toJson(p));
  j.set("ports", std::move(ports));
  j.set("defaultPort", toJson(s.defaultPort));
  return j;
}

TestCaseSpec specFromJson(const Json& j, const std::string& where) {
  TestCaseSpec s;
  s.seed = getU64(j, where, "seed");
  const auto& ports = getArray(j, where, "ports");
  const std::string pwhere = sub(where, "ports");
  for (size_t i = 0; i < ports.size(); ++i) {
    s.ports.push_back(portStimulusFromJson(ports[i], idx(pwhere, i)));
  }
  s.defaultPort = portStimulusFromJson(j.at("defaultPort", where),
                                       sub(where, "defaultPort"));
  return s;
}

namespace {

const char* customKindName(CustomDiagnostic::Kind k) {
  switch (k) {
    case CustomDiagnostic::Kind::Range:
      return "range";
    case CustomDiagnostic::Kind::SuddenChange:
      return "sudden-change";
    case CustomDiagnostic::Kind::Expression:
      return "expression";
  }
  return "?";
}

}  // namespace

Json toJson(const SimOptions& o) {
  Json j = Json::object();
  j.set("engine", Json::str(std::string(engineName(o.engine))));
  j.set("maxSteps", Json::u64(o.maxSteps));
  j.set("timeBudgetSec", Json::number(o.timeBudgetSec));
  j.set("stopOnDiagnostic", Json::boolean(o.stopOnDiagnostic));
  j.set("runTimeoutSec", Json::number(o.runTimeoutSec));
  j.set("stepBudget", Json::u64(o.stepBudget));
  j.set("coverage", Json::boolean(o.coverage));
  j.set("diagnosis", Json::boolean(o.diagnosis));
  j.set("optimize", Json::boolean(o.optimize));
  Json coll = Json::array();
  for (const auto& p : o.collectList) coll.push(Json::str(p));
  j.set("collectList", std::move(coll));
  Json customs = Json::array();
  for (const auto& c : o.customDiagnostics) {
    if (c.kind == CustomDiagnostic::Kind::Expression) {
      throw ProtocolError(
          "custom diagnostic \"" + c.name + "\" on " + c.actorPath +
          " is an Expression check; callbacks cannot travel over the " +
          "accmosd protocol — evaluate it locally or restate it as a " +
          "range/sudden-change diagnostic");
    }
    Json cj = Json::object();
    cj.set("actorPath", Json::str(c.actorPath));
    cj.set("name", Json::str(c.name));
    cj.set("kind", Json::str(customKindName(c.kind)));
    cj.set("minValue", Json::number(c.minValue));
    cj.set("maxValue", Json::number(c.maxValue));
    cj.set("maxDelta", Json::number(c.maxDelta));
    customs.push(std::move(cj));
  }
  j.set("customDiagnostics", std::move(customs));
  j.set("execMode", Json::str(std::string(execModeName(o.execMode))));
  j.set("batchLanes", Json::u64(static_cast<uint64_t>(o.batchLanes)));
  j.set("tier", Json::str(std::string(tierName(o.tier))));
  j.set("optFlag", Json::str(o.optFlag));
  j.set("compileCache", Json::boolean(o.compileCache));
  j.set("workers", Json::u64(static_cast<uint64_t>(o.campaign.workers)));
  return j;
}

SimOptions optionsFromJson(const Json& j, const std::string& where) {
  SimOptions o;
  const std::string& ename = getString(j, where, "engine");
  bool found = false;
  for (Engine e : {Engine::AccMoS, Engine::SSE, Engine::SSEac, Engine::SSErac}) {
    if (ename == engineName(e)) {
      o.engine = e;
      found = true;
      break;
    }
  }
  if (!found) badEnum(sub(where, "engine"), ename);
  o.maxSteps = getU64(j, where, "maxSteps");
  o.timeBudgetSec = getDouble(j, where, "timeBudgetSec");
  o.stopOnDiagnostic = getBool(j, where, "stopOnDiagnostic");
  o.runTimeoutSec = getDouble(j, where, "runTimeoutSec");
  o.stepBudget = getU64(j, where, "stepBudget");
  o.coverage = getBool(j, where, "coverage");
  o.diagnosis = getBool(j, where, "diagnosis");
  o.optimize = getBool(j, where, "optimize");
  {
    const auto& arr = getArray(j, where, "collectList");
    const std::string awhere = sub(where, "collectList");
    for (size_t i = 0; i < arr.size(); ++i) {
      o.collectList.push_back(arr[i].asString(idx(awhere, i)));
    }
  }
  {
    const auto& arr = getArray(j, where, "customDiagnostics");
    const std::string awhere = sub(where, "customDiagnostics");
    for (size_t i = 0; i < arr.size(); ++i) {
      const Json& cj = arr[i];
      const std::string cwhere = idx(awhere, i);
      CustomDiagnostic c;
      c.actorPath = getString(cj, cwhere, "actorPath");
      c.name = getString(cj, cwhere, "name");
      const std::string& kname = getString(cj, cwhere, "kind");
      if (kname == "range") {
        c.kind = CustomDiagnostic::Kind::Range;
      } else if (kname == "sudden-change") {
        c.kind = CustomDiagnostic::Kind::SuddenChange;
      } else {
        // "expression" is deliberately rejected here too: accepting a
        // C++ condition string from the wire would let any client inject
        // code into the daemon's generated simulators.
        badEnum(sub(cwhere, "kind"), kname);
      }
      c.minValue = getDouble(cj, cwhere, "minValue");
      c.maxValue = getDouble(cj, cwhere, "maxValue");
      c.maxDelta = getDouble(cj, cwhere, "maxDelta");
      o.customDiagnostics.push_back(std::move(c));
    }
  }
  const std::string& mname = getString(j, where, "execMode");
  if (mname == execModeName(ExecMode::Dlopen)) {
    o.execMode = ExecMode::Dlopen;
  } else if (mname == execModeName(ExecMode::Process)) {
    o.execMode = ExecMode::Process;
  } else {
    badEnum(sub(where, "execMode"), mname);
  }
  o.batchLanes = static_cast<size_t>(getU64(j, where, "batchLanes"));
  const std::string& tname = getString(j, where, "tier");
  if (tname == tierName(Tier::Native)) {
    o.tier = Tier::Native;
  } else if (tname == tierName(Tier::Auto)) {
    o.tier = Tier::Auto;
  } else if (tname == tierName(Tier::Interp)) {
    o.tier = Tier::Interp;
  } else {
    badEnum(sub(where, "tier"), tname);
  }
  o.optFlag = getString(j, where, "optFlag");
  o.compileCache = getBool(j, where, "compileCache");
  o.campaign.workers = static_cast<size_t>(getU64(j, where, "workers"));
  // Daemon-local knobs never travel: scratch placement and artifact
  // retention are the daemon operator's call, not the client's.
  o.workDir.clear();
  o.keepGeneratedCode = false;
  return o;
}

// ---- Shard messages ----------------------------------------------------

Json toJson(const ShardRequest& r) {
  Json j = Json::object();
  j.set("op", Json::str("shard"));
  j.set("model", Json::str(r.modelText));
  j.set("options", toJson(r.options));
  Json specs = Json::array();
  for (const auto& s : r.specs) specs.push(toJson(s));
  j.set("specs", std::move(specs));
  j.set("shardIndex", Json::u64(static_cast<uint64_t>(r.shardIndex)));
  j.set("shardCount", Json::u64(static_cast<uint64_t>(r.shardCount)));
  return j;
}

ShardRequest shardRequestFromJson(const Json& j, const std::string& where) {
  ShardRequest r;
  r.modelText = getString(j, where, "model");
  r.options = optionsFromJson(j.at("options", where), sub(where, "options"));
  const auto& arr = getArray(j, where, "specs");
  const std::string awhere = sub(where, "specs");
  r.specs.reserve(arr.size());
  for (size_t i = 0; i < arr.size(); ++i) {
    r.specs.push_back(specFromJson(arr[i], idx(awhere, i)));
  }
  r.shardIndex = static_cast<size_t>(getU64(j, where, "shardIndex"));
  r.shardCount = static_cast<size_t>(getU64(j, where, "shardCount"));
  return r;
}

Json toJson(const ShardPartial& p) {
  Json j = Json::object();
  j.set("op", Json::str("partial"));
  j.set("first", Json::u64(static_cast<uint64_t>(p.first)));
  Json results = Json::array();
  for (const auto& r : p.results) results.push(toJson(r));
  j.set("results", std::move(results));
  return j;
}

ShardPartial shardPartialFromJson(const Json& j, const std::string& where) {
  ShardPartial p;
  p.first = static_cast<size_t>(getU64(j, where, "first"));
  const auto& arr = getArray(j, where, "results");
  const std::string awhere = sub(where, "results");
  p.results.reserve(arr.size());
  for (size_t i = 0; i < arr.size(); ++i) {
    p.results.push_back(simResultFromJson(arr[i], idx(awhere, i)));
  }
  return p;
}

Json toJson(const ShardDone& d) {
  Json j = Json::object();
  j.set("op", Json::str("done"));
  j.set("completed", Json::u64(static_cast<uint64_t>(d.completed)));
  j.set("interrupted", Json::boolean(d.interrupted));
  j.set("generateSeconds", Json::number(d.generateSeconds));
  j.set("compileSeconds", Json::number(d.compileSeconds));
  j.set("loadSeconds", Json::number(d.loadSeconds));
  j.set("compileWaitSeconds", Json::number(d.compileWaitSeconds));
  j.set("compileCacheHit", Json::boolean(d.compileCacheHit));
  j.set("timeToFirstResultSeconds", Json::number(d.timeToFirstResultSeconds));
  j.set("compilerInvocations", Json::u64(d.compilerInvocations));
  return j;
}

ShardDone shardDoneFromJson(const Json& j, const std::string& where) {
  ShardDone d;
  d.completed = static_cast<size_t>(getU64(j, where, "completed"));
  d.interrupted = getBool(j, where, "interrupted");
  d.generateSeconds = getDouble(j, where, "generateSeconds");
  d.compileSeconds = getDouble(j, where, "compileSeconds");
  d.loadSeconds = getDouble(j, where, "loadSeconds");
  d.compileWaitSeconds = getDouble(j, where, "compileWaitSeconds");
  d.compileCacheHit = getBool(j, where, "compileCacheHit");
  d.timeToFirstResultSeconds =
      getDouble(j, where, "timeToFirstResultSeconds");
  d.compilerInvocations = getU64(j, where, "compilerInvocations");
  return d;
}

// ---- Observation canonicalization --------------------------------------

Json campaignObservations(const CampaignResult& r) {
  Json j = Json::object();
  Json perSeed = Json::array();
  for (const auto& s : r.perSeed) {
    Json row = Json::object();
    row.set("seed", Json::u64(s.seed));
    row.set("steps", Json::u64(s.steps));
    row.set("coverage", toJson(s.coverage));
    row.set("cumulative", toJson(s.cumulative));
    row.set("diagnosticKinds",
            Json::u64(static_cast<uint64_t>(s.diagnosticKinds)));
    row.set("failed", Json::boolean(s.failed));
    perSeed.push(std::move(row));
  }
  j.set("perSeed", std::move(perSeed));
  j.set("cumulative", toJson(r.cumulative));
  j.set("mergedBitmaps", toJson(r.mergedBitmaps));
  Json diags = Json::array();
  for (const auto& d : r.diagnostics) diags.push(toJson(d));
  j.set("diagnostics", std::move(diags));
  Json fails = Json::array();
  for (const auto& f : r.failures) {
    // Failure records minus the backend/retry detail: which ladder rung
    // finally contained a fault is an execution-policy observation, the
    // (kind, seed, index, signal) tuple is the workload observation.
    Json fj = Json::object();
    fj.set("kind", Json::str(failureKindName(f.kind)));
    fj.set("seed", Json::u64(f.seed));
    fj.set("index", Json::u64(static_cast<uint64_t>(f.index)));
    fails.push(std::move(fj));
  }
  j.set("failures", std::move(fails));
  j.set("optStats", toJson(r.optStats));
  j.set("interrupted", Json::boolean(r.interrupted));
  return j;
}

// ---- Frames ------------------------------------------------------------

namespace {

void sendAll(int fd, const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw ProtocolError(std::string("frame write failed: ") +
                          ::strerror(errno));
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
}

// Returns bytes read; stops short only on EOF. eofAtStartOk lets the
// caller treat "peer hung up between frames" as a clean end of stream.
size_t recvAll(int fd, void* data, size_t len) {
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < len) {
    ssize_t n = ::recv(fd, p + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw ProtocolError(std::string("frame read failed: ") +
                          ::strerror(errno));
    }
    if (n == 0) break;  // EOF
    got += static_cast<size_t>(n);
  }
  return got;
}

}  // namespace

void writeFrame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) {
    throw ProtocolError("frame payload of " + std::to_string(payload.size()) +
                        " bytes exceeds the " +
                        std::to_string(kMaxFrameBytes) + "-byte limit");
  }
  const uint32_t len = static_cast<uint32_t>(payload.size());
  unsigned char hdr[4] = {static_cast<unsigned char>(len >> 24),
                          static_cast<unsigned char>(len >> 16),
                          static_cast<unsigned char>(len >> 8),
                          static_cast<unsigned char>(len)};
  sendAll(fd, hdr, sizeof hdr);
  sendAll(fd, payload.data(), payload.size());
}

bool readFrame(int fd, std::string* payload) {
  unsigned char hdr[4];
  size_t got = recvAll(fd, hdr, sizeof hdr);
  if (got == 0) return false;  // clean EOF at a frame boundary
  if (got < sizeof hdr) {
    throw ProtocolError("peer closed mid-frame (truncated length prefix)");
  }
  const uint32_t len = (static_cast<uint32_t>(hdr[0]) << 24) |
                       (static_cast<uint32_t>(hdr[1]) << 16) |
                       (static_cast<uint32_t>(hdr[2]) << 8) |
                       static_cast<uint32_t>(hdr[3]);
  if (len > kMaxFrameBytes) {
    throw ProtocolError("frame length prefix of " + std::to_string(len) +
                        " bytes exceeds the " +
                        std::to_string(kMaxFrameBytes) +
                        "-byte limit (corrupt stream?)");
  }
  payload->resize(len);
  if (len > 0 && recvAll(fd, payload->data(), len) < len) {
    throw ProtocolError("peer closed mid-frame (got fewer than " +
                        std::to_string(len) + " payload bytes)");
  }
  return true;
}

}  // namespace accmos::serve
