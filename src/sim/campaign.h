// Test campaigns: run a model under many stimulus seeds and accumulate the
// union of coverage — the workflow the paper motivates coverage collection
// with ("validating that test cases are comprehensive enough to cover
// different parts of models", §3.2.A).
//
// With Engine::AccMoS the model is generated and compiled once and the
// binary re-run per seed, which is exactly how a generated simulator
// amortizes over a test campaign.
//
// Campaigns scale across cores: `SimOptions::campaign.workers` fans the
// seeds out over a worker pool (N concurrent executions of the one
// compiled binary, or one interpreter instance per worker for SSE).
// Per-seed results are collected and then merged in seed order, so the
// outcome — per-seed reports, merged bitmaps, deduplicated diagnostics —
// is bit-identical to the sequential run for any worker count.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/flat_model.h"
#include "opt/stats.h"
#include "sim/options.h"
#include "sim/result.h"
#include "sim/testcase.h"

namespace accmos {

struct CampaignSeedResult {
  uint64_t seed = 0;
  uint64_t steps = 0;
  double execSeconds = 0.0;
  CoverageReport coverage;          // this seed alone
  CoverageReport cumulative;        // union up to and including this seed
  size_t diagnosticKinds = 0;       // distinct (actor, kind) events
};

struct CampaignResult {
  std::vector<CampaignSeedResult> perSeed;
  CoverageReport cumulative;
  CoverageRecorder mergedBitmaps;
  // All diagnostics observed across seeds (deduplicated per actor/kind/
  // message; firstStep is the earliest across seeds, count the sum).
  std::vector<DiagRecord> diagnostics;
  double totalExecSeconds = 0.0;      // sum of per-seed execution time
  double wallSeconds = 0.0;           // wall clock for the whole campaign
  double generateSeconds = 0.0;       // AccMoS one-off costs
  double compileSeconds = 0.0;
  bool compileCacheHit = false;       // AccMoS: binary came from the cache
  size_t workersUsed = 1;
  // The optimization pipeline runs once per campaign (not per seed);
  // ran == false when SimOptions::optimize was off.
  OptStats optStats;
};

// Runs `opt.maxSteps` steps per seed for each seed in `seeds`, using
// `baseTests` for the port ranges/sequences (the seed field is overridden).
// Only the instrumented engines (SSE, AccMoS) are supported; throws
// ModelError otherwise or when coverage is disabled.
CampaignResult runCampaign(const FlatModel& fm, const SimOptions& opt,
                           const TestCaseSpec& baseTests,
                           const std::vector<uint64_t>& seeds);

}  // namespace accmos
