// Test campaigns: run a model under many stimulus seeds and accumulate the
// union of coverage — the workflow the paper motivates coverage collection
// with ("validating that test cases are comprehensive enough to cover
// different parts of models", §3.2.A).
//
// With Engine::AccMoS the model is generated and compiled once and the
// binary re-run per seed, which is exactly how a generated simulator
// amortizes over a test campaign.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/flat_model.h"
#include "sim/options.h"
#include "sim/result.h"
#include "sim/testcase.h"

namespace accmos {

struct CampaignSeedResult {
  uint64_t seed = 0;
  uint64_t steps = 0;
  double execSeconds = 0.0;
  CoverageReport coverage;          // this seed alone
  CoverageReport cumulative;        // union up to and including this seed
  size_t diagnosticKinds = 0;       // distinct (actor, kind) events
};

struct CampaignResult {
  std::vector<CampaignSeedResult> perSeed;
  CoverageReport cumulative;
  CoverageRecorder mergedBitmaps;
  // All diagnostics observed across seeds (deduplicated per actor/kind/
  // message; firstStep is the earliest across seeds, count the sum).
  std::vector<DiagRecord> diagnostics;
  double totalExecSeconds = 0.0;
  double generateSeconds = 0.0;  // AccMoS one-off costs
  double compileSeconds = 0.0;
};

// Runs `opt.maxSteps` steps per seed for each seed in `seeds`, using
// `baseTests` for the port ranges/sequences (the seed field is overridden).
// Only the instrumented engines (SSE, AccMoS) are supported; throws
// ModelError otherwise or when coverage is disabled.
CampaignResult runCampaign(const FlatModel& fm, const SimOptions& opt,
                           const TestCaseSpec& baseTests,
                           const std::vector<uint64_t>& seeds);

}  // namespace accmos
