// Test campaigns: run a model under many stimulus seeds and accumulate the
// union of coverage — the workflow the paper motivates coverage collection
// with ("validating that test cases are comprehensive enough to cover
// different parts of models", §3.2.A).
//
// With Engine::AccMoS the model is generated and compiled once and the
// simulator re-run per seed — in-process accmos_run() calls into one
// dlopen'd library by default, child processes in ExecMode::Process —
// which is exactly how a generated simulator amortizes over a campaign.
//
// Campaigns scale across cores: `SimOptions::campaign.workers` fans the
// seeds out over a worker pool (N concurrent executions of the one
// compiled binary, or one interpreter instance per worker for SSE).
// With the dlopen backend and batching on (SimOptions::batchLanes), each
// worker claims lane-width chunks of seeds and fuses them through the
// library's accmos_run_batch kernel (docs/EXECUTION.md). Per-seed results
// are collected and then merged in seed order, so the outcome — per-seed
// reports, merged bitmaps, deduplicated diagnostics — is bit-identical to
// the sequential scalar run for any worker count and any lane width.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/flat_model.h"
#include "opt/stats.h"
#include "sim/failure.h"
#include "sim/options.h"
#include "sim/result.h"
#include "sim/testcase.h"

namespace accmos {

struct CampaignSeedResult {
  uint64_t seed = 0;
  uint64_t steps = 0;
  double execSeconds = 0.0;
  CoverageReport coverage;          // this seed alone
  CoverageReport cumulative;        // union up to and including this seed
  size_t diagnosticKinds = 0;       // distinct (actor, kind) events
  // Execution backend that answered this seed: "interp" when the
  // interpreter tier served it (SimOptions::tier), "dlopen" /
  // "dlopen-batch" / "process" for native runs; empty for SSE campaigns.
  std::string execMode;
  // This seed's run was contained as a failure (timeout, crash, compile
  // failure): it contributed nothing to the merge, and the matching
  // RunFailure sits in CampaignResult::failures. The row is kept so
  // perSeed[k] always describes specs[k].
  bool failed = false;
};

struct CampaignResult {
  std::vector<CampaignSeedResult> perSeed;
  CoverageReport cumulative;
  CoverageRecorder mergedBitmaps;
  // All diagnostics observed across seeds (deduplicated per actor/kind/
  // message; firstStep is the earliest across seeds, count the sum).
  std::vector<DiagRecord> diagnostics;
  double totalExecSeconds = 0.0;      // sum of per-seed execution time
  double wallSeconds = 0.0;           // wall clock for the whole campaign
  double generateSeconds = 0.0;       // AccMoS one-off costs
  double compileSeconds = 0.0;
  double loadSeconds = 0.0;           // AccMoS dlopen mode: library loads
  bool compileCacheHit = false;       // AccMoS: every binary came cached
  // Tiered execution (SimOptions::tier, docs/EXECUTION.md). Wall seconds
  // workers actually BLOCKED on the compiler: equals compileSeconds under
  // Tier::Native (the synchronous build), near zero under Tier::Auto
  // (the compile overlaps interpreted runs on the background pool).
  double compileWaitSeconds = 0.0;
  // Wall seconds from campaign start until the first per-seed result was
  // available — the cold-start latency tiering attacks.
  double timeToFirstResultSeconds = 0.0;
  // First spec index answered by the compiled simulator when earlier
  // specs ran interpreted — where the hot-swap landed in merge order.
  // -1 when no swap happened (all-native, all-interp, or SSE).
  long long tierSwapIndex = -1;
  size_t interpSeeds = 0;             // seeds answered by the interp tier
  size_t nativeSeeds = 0;             // seeds answered by the native tier
  size_t workersUsed = 1;
  // Contained per-seed failures, in seed (spec) order. A campaign never
  // aborts because one seed hung or crashed: the failed seed is recorded
  // here, excluded from the coverage/diagnostic merge, and every surviving
  // seed's contribution is bit-identical to a fault-free campaign over the
  // survivors — for any worker count and any lane width.
  std::vector<RunFailure> failures;
  // The optimization pipeline runs once per campaign (not per seed);
  // ran == false when SimOptions::optimize was off.
  OptStats optStats;

  // A cooperative interrupt (SIGINT/SIGTERM → sim/interrupt.h) stopped the
  // campaign early. perSeed/failures/merges then cover exactly the specs
  // that finished — always a contiguous prefix of the batch, because
  // workers claim chunks from a monotonic counter and complete every chunk
  // they claim — and every reported row is bit-identical to the same row
  // of an uninterrupted campaign. The CLI flushes these partial results
  // and exits with its documented interrupt code (docs/ROBUSTNESS.md).
  bool interrupted = false;
};

// Runs `opt.maxSteps` steps per seed for each seed in `seeds`, using
// `baseTests` for the port ranges/sequences (the seed field is overridden).
// Only the instrumented engines (SSE, AccMoS) are supported; throws
// ModelError otherwise or when coverage is disabled.
CampaignResult runCampaign(const FlatModel& fm, const SimOptions& opt,
                           const TestCaseSpec& baseTests,
                           const std::vector<uint64_t>& seeds);

// Runs a *heterogeneous* batch as a campaign: each spec carries its own
// ranges/sequences and seed (the workload the coverage-guided generator
// produces, where candidates are mutants of many base specs, not seeds of
// one). The model is optimized once, every spec runs for opt.maxSteps over
// the worker pool, and results are merged strictly in spec order — the
// outcome is bit-identical for any worker count. `perSeed` holds one row
// per spec, in spec order; its `seed` field is the spec's seed.
CampaignResult runCampaignSpecs(const FlatModel& fm, const SimOptions& opt,
                                const std::vector<TestCaseSpec>& specs);

class SpecEvaluator;

// The spec-order merge under every campaign entry point, callable on its
// own: given per-spec results for `specs` (result k describes spec k) and
// the count of completed leading specs (`completed` < specs.size() marks
// the campaign interrupted), folds the first `completed` results into a
// CampaignResult exactly as a sequential single-process run would —
// bitmap unions, diagnostic dedup, per-spec cumulative reports, contained
// failures, tier counters. The shard coordinator (src/dist) concatenates
// per-shard result vectors and calls this, which is what makes a sharded
// campaign bit-identical to a single-process one: both run the very same
// merge over the very same per-spec results in the very same order.
// Timing / one-off-cost fields (wallSeconds, compileSeconds, ...) are the
// caller's to fill; optStats is copied through.
CampaignResult mergeSpecResults(const FlatModel& model,
                                const std::vector<TestCaseSpec>& specs,
                                const std::vector<SimulationResult>& results,
                                size_t completed, const OptStats& optStats);

// The campaign loop over a CALLER-OWNED evaluator — the resident-service
// entry point. `model` must be the (already optimized, if desired) model
// the evaluator was constructed on, and `optStats` whatever the caller's
// one-time optimization pass reported. One-off cost fields of the result
// (generate/compile/load/compileWait seconds, enginesBuilt-derived
// compileCacheHit) are DELTAS across this call: with a fresh evaluator
// they equal the classic totals (runCampaignSpecs delegates here), while
// a pooled evaluator whose engines are already warm reports them as zero
// — the accmosd warm-hit guarantee made visible in the result itself.
// The run is cooperatively interruptible (see CampaignResult::interrupted).
// `wallStart` backdates wallSeconds/timeToFirstResult to include caller
// prelude work (flatten/optimize); omitted, the clock starts here.
CampaignResult runCampaignSpecsOn(
    const FlatModel& model, SpecEvaluator& evaluator, const SimOptions& opt,
    const std::vector<TestCaseSpec>& specs, const OptStats& optStats,
    std::optional<std::chrono::steady_clock::time_point> wallStart =
        std::nullopt);

// The batch-evaluation primitive under runCampaignSpecs, reusable across
// batches: the coverage-guided generator holds one evaluator for the whole
// search so compiled simulators persist between iterations.
//
// The model is used exactly as given — no optimization pass is applied
// here; callers that want the pipeline run it once up front (as
// runCampaignSpecs does). For Engine::SSE each worker keeps one persistent
// interpreter instance. For Engine::AccMoS one simulator is generated and
// compiled per distinct stimulus *shape* (TestCaseSpec::shapeKey — the
// seed is normalized out and passed as a runtime argument), cached for the
// evaluator's lifetime, and executed concurrently — in the default dlopen
// exec mode all workers call into the one loaded shared library (its
// accmos_run ABI is reentrant), in process mode each run is a child
// process; the content-addressed compile cache absorbs repeated shapes
// across evaluators and runs.
//
// Each AccMoS shape is fronted by a TieredEngine, so under
// SimOptions::tier == Auto the evaluator starts answering specs on the
// interpreter tier while the per-shape compiles proceed on the background
// pool, hot-swapping to the compiled simulator mid-batch (Tier::Native
// keeps the classic synchronous build).
class SpecEvaluator {
 public:
  // Throws ModelError unless `opt` names an instrumented engine (SSE or
  // AccMoS) with coverage enabled.
  SpecEvaluator(const FlatModel& fm, const SimOptions& opt);
  ~SpecEvaluator();

  SpecEvaluator(const SpecEvaluator&) = delete;
  SpecEvaluator& operator=(const SpecEvaluator&) = delete;

  // Validates and runs every spec for opt.maxSteps, fanning the batch over
  // opt.campaign.workers workers; out[k] is spec k's result regardless of
  // worker count or interleaving.
  //
  // When `done` is non-null the batch becomes cooperatively interruptible:
  // workers stop claiming new chunks once interruptRequested()
  // (sim/interrupt.h) reads true, finish every chunk already claimed, and
  // done->at(k) is set for exactly the completed specs — always a
  // contiguous prefix, because chunk claims come from a monotonic counter.
  // A null `done` (the default, and what the deterministic generator loop
  // uses) ignores the interrupt flag entirely.
  std::vector<SimulationResult> evaluate(const std::vector<TestCaseSpec>& specs,
                                         std::vector<uint8_t>* done = nullptr);

  // Re-targets the worker count for subsequent evaluate() calls. The
  // daemon's model-library pool keeps one evaluator per model and serves
  // requests with differing worker counts from it — legal because worker
  // count never changes observations, only scheduling.
  void setWorkers(size_t workers) { opt_.campaign.workers = workers; }

  // The per-shape compiled engine for `spec`, building (or async-enqueuing
  // under Tier::Auto) on first use. Exposed for the daemon's single-run
  // path, which answers `client run` straight off the pooled engine;
  // batch callers go through evaluate(). AccMoS only.
  class TieredEngine* engineFor(const TestCaseSpec& spec);

  // Approximate bytes held resident by the cached per-shape engines
  // (generated sources + loaded artifacts) — what the model-library pool
  // charges against its byte budget.
  size_t residentBytes() const;

  // AccMoS bookkeeping (all zero / true for SSE). Computed over the live
  // per-shape engines rather than snapshotted at construction, because
  // under Tier::Auto the compile cost only becomes known when the async
  // build finishes mid-batch.
  size_t enginesBuilt() const { return enginesBuilt_; }
  double generateSeconds() const;
  double compileSeconds() const;
  double loadSeconds() const;
  // Wall seconds workers actually blocked on the compiler (see
  // CampaignResult::compileWaitSeconds).
  double compileWaitSeconds() const;
  bool allCompileCacheHits() const;
  // Wall seconds from the start of the most recent evaluate() call until
  // its first spec result landed; negative before any evaluate() ran.
  // Per-call (not lifetime) so a pooled evaluator reports each request's
  // own cold/warm latency.
  double timeToFirstResultSeconds() const { return firstResultSeconds_; }

 private:
  const FlatModel& fm_;
  SimOptions opt_;
  std::map<std::string, std::unique_ptr<class TieredEngine>> engines_;
  std::vector<std::unique_ptr<class Interpreter>> interps_;  // per worker
  size_t enginesBuilt_ = 0;
  std::atomic<bool> firstResultSeen_{false};
  double firstResultSeconds_ = -1.0;
};

}  // namespace accmos
