// Simulation options shared by every engine (the AccMoS generated-code
// path, the SSE interpreter, and the two fast modes).
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "diag/custom.h"

namespace accmos {

enum class Engine : uint8_t {
  AccMoS,  // generate C++ -> compile -> execute (the paper's contribution)
  SSE,     // interpreting engine (baseline)
  SSEac,   // Accelerator-mode stand-in: bytecode + per-step host sync
  SSErac,  // Rapid-Accelerator-mode stand-in: fused closures, root-I/O sync
};

std::string_view engineName(Engine e);

// How the AccMoS engine executes the compiled simulator.
//   Dlopen  — compile -shared -fPIC, dlopen once, run in-process through the
//             binary result ABI (no subprocess, no text parsing per run).
//             Falls back to Process automatically when the library cannot
//             be built or loaded.
//   Process — compile an executable, fork/exec per run, parse the text
//             result protocol (the original backend; also the fallback).
enum class ExecMode : uint8_t { Dlopen, Process };

std::string_view execModeName(ExecMode m);

// Default for SimOptions::execMode: ACCMOS_EXEC_MODE=process selects the
// subprocess backend, anything else (including unset) selects dlopen.
inline ExecMode defaultExecMode() {
  const char* v = std::getenv("ACCMOS_EXEC_MODE");
  if (v != nullptr && std::string(v) == "process") return ExecMode::Process;
  return ExecMode::Dlopen;
}

// Multi-seed campaign execution knobs. The compiled AccMoS simulator is a
// self-contained process taking the stimulus seed as an argument, so a
// campaign fans seeds out across a worker pool: N concurrent executions of
// the one compiled binary (or one interpreter instance per worker for SSE).
// Results are merged deterministically in seed order, so campaign output is
// bit-identical regardless of worker count.
struct CampaignOptions {
  // Number of concurrent workers. 1 = sequential (the default);
  // 0 = one worker per hardware thread.
  size_t workers = 1;
};

// Default for SimOptions::optimize. The pre-engine optimization pipeline is
// on unless the environment says otherwise: ACCMOS_NO_OPT=1 disables it
// process-wide (the CI toggle that reruns the whole test suite
// unoptimized). The CLI exposes the same switch as --no-opt.
inline bool defaultOptimize() {
  const char* v = std::getenv("ACCMOS_NO_OPT");
  return v == nullptr || v[0] == '\0' || v[0] == '0';
}

struct SimOptions {
  Engine engine = Engine::SSE;

  // Stop conditions (whichever comes first).
  uint64_t maxSteps = 1000;
  double timeBudgetSec = 0.0;  // 0 = unlimited
  bool stopOnDiagnostic = false;

  // Instrumentation. The fast modes cannot collect coverage or diagnose
  // (paper §2) — the facade rejects these combinations.
  bool coverage = true;
  bool diagnosis = true;

  // Run the optimization pipeline (src/opt: constant folding, identity
  // simplification, dead-code elimination, schedule compaction) on the
  // flattened model before the engine sees it. Observation-equivalent by
  // construction: outputs, collected signals, coverage and diagnostics are
  // bit-identical with it on or off, for every engine.
  bool optimize = defaultOptimize();

  // Actor paths whose outputs are monitored (paper Fig. 3 outputCollect).
  // Scope/Display actors are always monitored.
  std::vector<std::string> collectList;

  // Custom signal diagnoses (§3.2.B).
  std::vector<CustomDiagnostic> customDiagnostics;

  // AccMoS codegen knobs.
  ExecMode execMode = defaultExecMode();  // see ExecMode above
  std::string optFlag = "-O3";   // compiler optimization level
  bool keepGeneratedCode = false;
  std::string workDir;           // empty = temp directory
  // Reuse compiled simulators across engine constructions via the
  // content-addressed cache (key: compiler + flags + generated source).
  // The cache lives under $ACCMOS_CACHE_DIR (default: <tmp>/accmos-cache).
  bool compileCache = true;

  // Multi-seed campaign execution (runCampaign only).
  CampaignOptions campaign;
};

}  // namespace accmos
