// Simulation options shared by every engine (the AccMoS generated-code
// path, the SSE interpreter, and the two fast modes).
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "diag/custom.h"

namespace accmos {

enum class Engine : uint8_t {
  AccMoS,  // generate C++ -> compile -> execute (the paper's contribution)
  SSE,     // interpreting engine (baseline)
  SSEac,   // Accelerator-mode stand-in: bytecode + per-step host sync
  SSErac,  // Rapid-Accelerator-mode stand-in: fused closures, root-I/O sync
};

std::string_view engineName(Engine e);

// How the AccMoS engine executes the compiled simulator.
//   Dlopen  — compile -shared -fPIC, dlopen once, run in-process through the
//             binary result ABI (no subprocess, no text parsing per run).
//             Falls back to Process automatically when the library cannot
//             be built or loaded.
//   Process — compile an executable, fork/exec per run, parse the text
//             result protocol (the original backend; also the fallback).
enum class ExecMode : uint8_t { Dlopen, Process };

std::string_view execModeName(ExecMode m);

// Default for SimOptions::execMode: ACCMOS_EXEC_MODE=process selects the
// subprocess backend, anything else (including unset) selects dlopen.
inline ExecMode defaultExecMode() {
  const char* v = std::getenv("ACCMOS_EXEC_MODE");
  if (v != nullptr && std::string(v) == "process") return ExecMode::Process;
  return ExecMode::Dlopen;
}

// Multi-seed campaign execution knobs. The compiled AccMoS simulator is a
// self-contained process taking the stimulus seed as an argument, so a
// campaign fans seeds out across a worker pool: N concurrent executions of
// the one compiled binary (or one interpreter instance per worker for SSE).
// Results are merged deterministically in seed order, so campaign output is
// bit-identical regardless of worker count.
struct CampaignOptions {
  // Number of concurrent workers. 1 = sequential (the default);
  // 0 = one worker per hardware thread.
  size_t workers = 1;
};

// execMode string reported by SimulationResult::execMode for runs that went
// through the fused batch kernel ("dlopen" and "process" come from
// execModeName; the batch kernel is a capability of the dlopen backend, not
// a third ExecMode, so it gets its own reporting string).
inline constexpr const char* kExecModeDlopenBatch = "dlopen-batch";

// Default for SimOptions::batchLanes: the ACCMOS_BATCH environment variable.
//   unset/empty/"on"  -> 8 lanes (batching on by default)
//   "0"/"off"/"no"    -> 0 (batching disabled; every run is scalar)
//   a number N        -> N lanes (clamped to 64)
// This is the CI toggle that reruns the whole test suite with batching
// forced on and forced off.
inline size_t defaultBatchLanes() {
  const char* v = std::getenv("ACCMOS_BATCH");
  if (v == nullptr || v[0] == '\0') return 8;
  const std::string s(v);
  if (s == "0" || s == "off" || s == "no") return 0;
  if (s == "on" || s == "yes") return 8;
  char* end = nullptr;
  unsigned long n = std::strtoul(v, &end, 10);
  if (end != v && *end == '\0' && n > 0) {
    return n < 64 ? static_cast<size_t>(n) : 64;
  }
  return 8;
}

// Tiered execution policy for the AccMoS engine (docs/EXECUTION.md,
// "Tiered execution").
//   Native — construct the compiled engine synchronously (the classic
//            behaviour; first run waits for generate + compile + load).
//   Auto   — browser-JIT style: answer runs on the SSE interpreter while
//            the optimizing compile proceeds on the background pool, then
//            hot-swap new runs/chunks onto the dlopen library once ready.
//            Observationally identical either way (all engines are
//            observation-equivalent), so only timing moves.
//   Interp — never compile; every run stays on the interpreter tier.
// Auto/Interp silently harden to Native when a run needs capabilities only
// the generated code has: cooperative deadlines (runTimeoutSec/stepBudget),
// Expression custom diagnostics, injected compiler/step-loop faults
// (ACCMOS_FAULT targets generated code and the compiler — tiering around
// the injection would dodge it), or a disabled compile cache (the async
// artifact hand-over rides on the cache).
enum class Tier : uint8_t { Native, Auto, Interp };

std::string_view tierName(Tier t);

// execMode string reported for runs answered by the interpreter tier.
inline constexpr const char* kExecModeInterp = "interp";

// Default for SimOptions::tier: ACCMOS_TIER=auto|interp|native (anything
// else, including unset, is Native — campaigns keep their classic
// synchronous-compile behaviour unless tiering is asked for). This is the
// CI toggle that reruns the whole suite on each tier.
inline Tier defaultTier() {
  const char* v = std::getenv("ACCMOS_TIER");
  if (v != nullptr) {
    const std::string s(v);
    if (s == "auto") return Tier::Auto;
    if (s == "interp") return Tier::Interp;
  }
  return Tier::Native;
}

// Default for SimOptions::optimize. The pre-engine optimization pipeline is
// on unless the environment says otherwise: ACCMOS_NO_OPT=1 disables it
// process-wide (the CI toggle that reruns the whole test suite
// unoptimized). The CLI exposes the same switch as --no-opt.
inline bool defaultOptimize() {
  const char* v = std::getenv("ACCMOS_NO_OPT");
  return v == nullptr || v[0] == '\0' || v[0] == '0';
}

struct SimOptions {
  Engine engine = Engine::SSE;

  // Stop conditions (whichever comes first).
  uint64_t maxSteps = 1000;
  double timeBudgetSec = 0.0;  // 0 = unlimited
  bool stopOnDiagnostic = false;

  // Fault-containment deadlines (0 = unlimited). Unlike timeBudgetSec —
  // a soft "stop collecting after N seconds" knob honoured mid-loop — these
  // mark the run as *timed out*: the generated code retires the run with
  // SimulationResult::timedOut set (ABI v3 deadlineSeconds / stepBudget),
  // and the subprocess backend additionally arms a host-side watchdog that
  // kills the child's process group if the cooperative check never fires.
  double runTimeoutSec = 0.0;
  uint64_t stepBudget = 0;

  // Instrumentation. The fast modes cannot collect coverage or diagnose
  // (paper §2) — the facade rejects these combinations.
  bool coverage = true;
  bool diagnosis = true;

  // Run the optimization pipeline (src/opt: constant folding, identity
  // simplification, dead-code elimination, schedule compaction) on the
  // flattened model before the engine sees it. Observation-equivalent by
  // construction: outputs, collected signals, coverage and diagnostics are
  // bit-identical with it on or off, for every engine.
  bool optimize = defaultOptimize();

  // Actor paths whose outputs are monitored (paper Fig. 3 outputCollect).
  // Scope/Display actors are always monitored.
  std::vector<std::string> collectList;

  // Custom signal diagnoses (§3.2.B).
  std::vector<CustomDiagnostic> customDiagnostics;

  // AccMoS codegen knobs.
  ExecMode execMode = defaultExecMode();  // see ExecMode above
  // Lane width of the fused batch kernel compiled into the shared library
  // (-DACCMOS_BATCH_LANES=N), used by multi-seed entry points
  // (AccMoSEngine::runBatch, campaigns, the generator's SpecEvaluator).
  // 0 disables batching entirely: the library is compiled without the
  // batch kernel and every run goes through scalar accmos_run(). Only
  // meaningful for the dlopen backend; the subprocess backend is always
  // scalar. Batched results are bit-identical to scalar ones by contract
  // (enforced by the differential suites), so this knob only moves
  // throughput, never observations.
  size_t batchLanes = defaultBatchLanes();
  // Tiered execution policy (see Tier above; CLI --tier=, env ACCMOS_TIER).
  Tier tier = defaultTier();
  std::string optFlag = "-O3";   // compiler optimization level
  bool keepGeneratedCode = false;
  std::string workDir;           // empty = temp directory
  // Reuse compiled simulators across engine constructions via the
  // content-addressed cache (key: compiler + flags + generated source).
  // The cache lives under $ACCMOS_CACHE_DIR (default: <tmp>/accmos-cache).
  bool compileCache = true;

  // Multi-seed campaign execution (runCampaign only).
  CampaignOptions campaign;
};

}  // namespace accmos
