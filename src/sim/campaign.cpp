#include "sim/campaign.h"

#include <map>
#include <tuple>

#include "actors/spec.h"
#include "codegen/accmos_engine.h"
#include "interp/interpreter.h"

namespace accmos {
namespace {

void mergeDiagnostics(std::map<std::tuple<int, DiagKind, std::string>,
                               DiagRecord>& merged,
                      const std::vector<DiagRecord>& records) {
  for (const auto& rec : records) {
    auto key = std::make_tuple(rec.actorId, rec.kind, rec.message);
    auto it = merged.find(key);
    if (it == merged.end()) {
      merged.emplace(key, rec);
    } else {
      it->second.count += rec.count;
      it->second.firstStep = std::min(it->second.firstStep, rec.firstStep);
    }
  }
}

}  // namespace

CampaignResult runCampaign(const FlatModel& fm, const SimOptions& opt,
                           const TestCaseSpec& baseTests,
                           const std::vector<uint64_t>& seeds) {
  if (opt.engine != Engine::SSE && opt.engine != Engine::AccMoS) {
    throw ModelError(
        "test campaigns need an instrumented engine (SSE or AccMoS)");
  }
  if (!opt.coverage) {
    throw ModelError("test campaigns accumulate coverage; enable it");
  }
  if (seeds.empty()) throw ModelError("test campaign needs at least one seed");

  CampaignResult out;
  CoveragePlan plan = CoveragePlan::build(
      fm, [](const FlatActor& fa) { return covTraitsFor(fa); });
  out.mergedBitmaps = CoverageRecorder(plan);
  std::map<std::tuple<int, DiagKind, std::string>, DiagRecord> merged;

  // Build each engine once; reuse per seed.
  std::unique_ptr<Interpreter> interp;
  std::unique_ptr<AccMoSEngine> engine;
  TestCaseSpec tests = baseTests;
  if (opt.engine == Engine::SSE) {
    interp = std::make_unique<Interpreter>(fm, opt);
  }

  for (uint64_t seed : seeds) {
    tests.seed = seed;
    SimulationResult res;
    if (opt.engine == Engine::SSE) {
      res = interp->run(tests);
    } else {
      // Generate + compile once; the generated program takes the stimulus
      // seed as a runtime argument, so the same binary serves every seed.
      if (!engine) {
        engine = std::make_unique<AccMoSEngine>(fm, opt, baseTests);
        out.generateSeconds = engine->generateSeconds();
        out.compileSeconds = engine->compileSeconds();
      }
      res = engine->run(0, -1.0, seed);
    }

    out.mergedBitmaps.merge(res.bitmaps);
    mergeDiagnostics(merged, res.diagnostics);
    out.totalExecSeconds += res.execSeconds;

    CampaignSeedResult sr;
    sr.seed = seed;
    sr.steps = res.stepsExecuted;
    sr.execSeconds = res.execSeconds;
    sr.coverage = res.coverage;
    sr.cumulative = makeReport(plan, out.mergedBitmaps);
    sr.diagnosticKinds = res.diagnostics.size();
    out.perSeed.push_back(std::move(sr));
  }

  out.cumulative = makeReport(plan, out.mergedBitmaps);
  for (const auto& [key, rec] : merged) out.diagnostics.push_back(rec);
  std::sort(out.diagnostics.begin(), out.diagnostics.end(),
            [](const DiagRecord& a, const DiagRecord& b) {
              return std::tie(a.firstStep, a.actorPath) <
                     std::tie(b.firstStep, b.actorPath);
            });
  return out;
}

}  // namespace accmos
