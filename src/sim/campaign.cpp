#include "sim/campaign.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>
#include <tuple>

#include "actors/spec.h"
#include "codegen/accmos_engine.h"
#include "codegen/compiler_driver.h"
#include "interp/interpreter.h"
#include "opt/pipeline.h"
#include "sim/interrupt.h"
#include "sim/tiered_engine.h"

namespace accmos {
namespace {

void mergeDiagnostics(std::map<std::tuple<int, DiagKind, std::string>,
                               DiagRecord>& merged,
                      const std::vector<DiagRecord>& records) {
  for (const auto& rec : records) {
    auto key = std::make_tuple(rec.actorId, rec.kind, rec.message);
    auto it = merged.find(key);
    if (it == merged.end()) {
      merged.emplace(key, rec);
    } else {
      it->second.count += rec.count;
      it->second.firstStep = std::min(it->second.firstStep, rec.firstStep);
    }
  }
}

size_t resolveWorkers(const SimOptions& opt, size_t numJobs) {
  size_t workers = opt.campaign.workers;
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  return std::min(workers, numJobs);
}

void checkInstrumentedEngine(const SimOptions& opt) {
  if (opt.engine != Engine::SSE && opt.engine != Engine::AccMoS) {
    throw ModelError(
        "test campaigns need an instrumented engine (SSE or AccMoS)");
  }
  if (!opt.coverage) {
    throw ModelError("test campaigns accumulate coverage; enable it");
  }
}

// Contained stand-in for a spec whose simulator never built: the whole
// shape failed to compile, so every spec of that shape gets this failure.
SimulationResult compileFailedResult(uint64_t seed, const std::string& msg) {
  SimulationResult r;
  r.failed = true;
  r.failure.kind = FailureKind::CompileError;
  r.failure.seed = seed;
  r.failure.backend = "compile";
  r.failure.message = msg;
  return r;
}

}  // namespace

SpecEvaluator::SpecEvaluator(const FlatModel& fm, const SimOptions& opt)
    : fm_(fm), opt_(opt) {
  checkInstrumentedEngine(opt_);
}

SpecEvaluator::~SpecEvaluator() = default;

TieredEngine* SpecEvaluator::engineFor(const TestCaseSpec& spec) {
  std::string key = spec.shapeKey();
  auto it = engines_.find(key);
  if (it != engines_.end()) return it->second.get();
  // Normalize the seed out of the generated source so seed-only variants
  // of a spec map to one compiled binary (the seed is a runtime argument).
  TestCaseSpec shape = spec;
  shape.seed = 1;
  auto engine = std::make_unique<TieredEngine>(fm_, opt_, shape);
  ++enginesBuilt_;
  return engines_.emplace(std::move(key), std::move(engine))
      .first->second.get();
}

double SpecEvaluator::generateSeconds() const {
  double s = 0.0;
  for (const auto& [key, e] : engines_) s += e->generateSeconds();
  return s;
}

double SpecEvaluator::compileSeconds() const {
  double s = 0.0;
  for (const auto& [key, e] : engines_) s += e->compileSeconds();
  return s;
}

double SpecEvaluator::loadSeconds() const {
  double s = 0.0;
  for (const auto& [key, e] : engines_) s += e->loadSeconds();
  return s;
}

double SpecEvaluator::compileWaitSeconds() const {
  double s = 0.0;
  for (const auto& [key, e] : engines_) s += e->compileWaitSeconds();
  return s;
}

bool SpecEvaluator::allCompileCacheHits() const {
  for (const auto& [key, e] : engines_) {
    if (!e->compileCacheHit()) return false;
  }
  return true;
}

size_t SpecEvaluator::residentBytes() const {
  size_t bytes = 0;
  for (const auto& [key, e] : engines_) bytes += e->residentBytes();
  return bytes;
}

// Runs every spec, storing the result at the spec's index. With more than
// one worker, specs are pulled from a shared counter by a pool of threads:
// the SSE engine gets one persistent interpreter instance per worker; the
// AccMoS engine's run()/runBatch() are thread-safe in both exec modes, so
// workers call the per-shape engines directly — concurrent calls into one
// loaded library (dlopen mode) or concurrent child processes each writing
// to their own pipe (process mode). The first exception thrown by any
// worker is rethrown on the caller.
//
// Batch scheduling: with the AccMoS engine and batching enabled, workers
// claim lane-width CHUNKS of consecutive spec indices from the counter,
// sub-group each chunk by compiled engine (a heterogeneous generator batch
// interleaves shapes; same-shapeKey() specs share an engine and hence a
// fused kernel call), and run each group through runBatch(). Result k
// still lands at out[k], and per-spec results are bit-identical to the
// scalar path, so the spec-order merge downstream is unchanged — campaign
// output stays deterministic for any worker count and any lane width.
std::vector<SimulationResult> SpecEvaluator::evaluate(
    const std::vector<TestCaseSpec>& specs, std::vector<uint8_t>* done) {
  if (specs.empty()) {
    throw ModelError("spec batch evaluation needs at least one test case");
  }
  for (const auto& spec : specs) spec.validate();
  if (done != nullptr) done->assign(specs.size(), 0);

  // Time-to-first-result is measured from here: the serial engine build
  // below is exactly the synchronous compile that Tier::Auto overlaps
  // away, so it must count against the metric. Reset per call so a pooled
  // evaluator reports each batch's own latency (callers never overlap
  // evaluate() calls on one evaluator; the pool serializes per entry).
  const auto evalStart = std::chrono::steady_clock::now();
  firstResultSeen_.store(false, std::memory_order_relaxed);
  auto markFirstResult = [&] {
    if (!firstResultSeen_.exchange(true, std::memory_order_relaxed)) {
      firstResultSeconds_ = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - evalStart)
                                .count();
    }
  };

  // AccMoS: build (or reuse) the per-shape engines serially before the
  // fan-out — compilation already parallelizes poorly and the serial order
  // keeps construction bookkeeping deterministic (under Tier::Auto the
  // construction only emits and enqueues, so this loop is cheap and the
  // compiles overlap the runs below). A shape whose simulator cannot be
  // compiled does not abort the batch: every spec of that shape is marked
  // with the compile failure (engineOf == nullptr) and reported as a
  // contained CompileError result; other shapes run normally.
  std::vector<TieredEngine*> engineOf;
  std::vector<std::string> buildError(specs.size());
  if (opt_.engine == Engine::AccMoS) {
    engineOf.reserve(specs.size());
    std::map<std::string, std::string> failedShapes;
    for (size_t k = 0; k < specs.size(); ++k) {
      const std::string key = specs[k].shapeKey();
      auto fit = failedShapes.find(key);
      if (fit != failedShapes.end()) {
        engineOf.push_back(nullptr);
        buildError[k] = fit->second;
        continue;
      }
      try {
        engineOf.push_back(engineFor(specs[k]));
      } catch (const CompileError& e) {
        failedShapes.emplace(key, e.what());
        engineOf.push_back(nullptr);
        buildError[k] = e.what();
      }
    }
  }

  size_t workers = resolveWorkers(opt_, specs.size());
  if (opt_.engine == Engine::SSE) {
    if (interps_.size() < workers) interps_.resize(workers);
  }

  const size_t chunk =
      opt_.engine == Engine::AccMoS ? std::max<size_t>(1, opt_.batchLanes) : 1;

  std::vector<SimulationResult> out(specs.size());
  auto runRange = [&](size_t worker, std::atomic<size_t>& next,
                      std::exception_ptr& error, std::mutex& errMutex) {
    for (;;) {
      // Interruptible batches stop CLAIMING here but always finish a
      // claimed chunk, so claims — handed out by the monotonic counter —
      // cover a prefix of the spec order and every claim completes: the
      // finished set is a contiguous prefix, which makes the partial
      // merge downstream well-defined.
      if (done != nullptr && interruptRequested()) break;
      size_t k0 = next.fetch_add(chunk);
      if (k0 >= specs.size()) break;
      size_t k1 = std::min(specs.size(), k0 + chunk);
      try {
        if (opt_.engine == Engine::SSE) {
          auto& interp = interps_[worker];
          if (!interp) interp = std::make_unique<Interpreter>(fm_, opt_);
          for (size_t k = k0; k < k1; ++k) {
            out[k] = interp->run(specs[k]);
            markFirstResult();
          }
        } else {
          // Group consecutive same-engine specs into one contained batch
          // call; the engine chunks further to its lane width and falls
          // back to scalar runs when the library cannot batch. Contained
          // execution never throws for per-run faults — a hung or crashed
          // seed comes back as a failed result and its neighbours are
          // unaffected.
          size_t g0 = k0;
          while (g0 < k1) {
            if (engineOf[g0] == nullptr) {
              out[g0] = compileFailedResult(specs[g0].seed, buildError[g0]);
              markFirstResult();
              ++g0;
              continue;
            }
            size_t g1 = g0 + 1;
            while (g1 < k1 && engineOf[g1] == engineOf[g0]) ++g1;
            std::vector<uint64_t> seeds;
            seeds.reserve(g1 - g0);
            for (size_t k = g0; k < g1; ++k) seeds.push_back(specs[k].seed);
            std::vector<SimulationResult> rs =
                engineOf[g0]->runBatchContained(seeds, worker);
            for (size_t k = g0; k < g1; ++k) out[k] = std::move(rs[k - g0]);
            markFirstResult();
            g0 = g1;
          }
        }
        if (done != nullptr) {
          for (size_t k = k0; k < k1; ++k) (*done)[k] = 1;
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(errMutex);
        if (!error) error = std::current_exception();
        return;
      }
    }
  };

  std::atomic<size_t> next{0};
  std::exception_ptr error;
  std::mutex errMutex;
  if (workers <= 1) {
    runRange(0, next, error, errMutex);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&, w] { runRange(w, next, error, errMutex); });
    }
    for (auto& t : pool) t.join();
  }
  if (error) std::rethrow_exception(error);
  return out;
}

// Merge strictly in spec order: coverage-bitmap unions, diagnostic
// deduplication and the per-spec cumulative reports are computed exactly
// as a sequential run would, so the campaign outcome is independent of the
// execution interleaving that produced `results` — worker pools, batch
// lanes, tier swaps, or shard processes (src/dist) all feed the same merge.
CampaignResult mergeSpecResults(const FlatModel& model,
                                const std::vector<TestCaseSpec>& specs,
                                const std::vector<SimulationResult>& results,
                                size_t completed, const OptStats& optStats) {
  CampaignResult out;
  out.optStats = optStats;

  CoveragePlan plan = CoveragePlan::build(
      model, [](const FlatActor& fa) { return covTraitsFor(fa); });
  out.mergedBitmaps = CoverageRecorder(plan);
  completed = std::min(completed, specs.size());
  out.interrupted = completed < specs.size();

  std::map<std::tuple<int, DiagKind, std::string>, DiagRecord> merged;
  out.perSeed.reserve(completed);
  for (size_t k = 0; k < completed; ++k) {
    const SimulationResult& res = results[k];
    if (res.failed) {
      // Contained failure: record it, contribute nothing to the merge.
      // Survivor contributions stay bit-identical to a fault-free
      // campaign over the survivors because the merge below is strictly
      // spec-ordered and a skipped seed leaves no trace in the bitmaps.
      RunFailure f = res.failure;
      f.seed = specs[k].seed;
      f.index = k;
      out.failures.push_back(std::move(f));
      CampaignSeedResult sr;
      sr.seed = specs[k].seed;
      sr.failed = true;
      sr.execMode = res.execMode;
      sr.cumulative = makeReport(plan, out.mergedBitmaps);
      out.perSeed.push_back(std::move(sr));
      continue;
    }
    out.mergedBitmaps.merge(res.bitmaps);
    mergeDiagnostics(merged, res.diagnostics);
    out.totalExecSeconds += res.execSeconds;

    CampaignSeedResult sr;
    sr.seed = specs[k].seed;
    sr.steps = res.stepsExecuted;
    sr.execSeconds = res.execSeconds;
    sr.coverage = res.coverage;
    sr.cumulative = makeReport(plan, out.mergedBitmaps);
    sr.diagnosticKinds = res.diagnostics.size();
    sr.execMode = res.execMode;
    if (res.execMode == kExecModeInterp) {
      ++out.interpSeeds;
    } else if (!res.execMode.empty()) {
      ++out.nativeSeeds;
    }
    out.perSeed.push_back(std::move(sr));
  }
  // Where the hot-swap landed, in merge order: only meaningful when both
  // tiers answered seeds.
  if (out.interpSeeds > 0 && out.nativeSeeds > 0) {
    for (size_t k = 0; k < out.perSeed.size(); ++k) {
      const CampaignSeedResult& sr = out.perSeed[k];
      if (!sr.failed && !sr.execMode.empty() &&
          sr.execMode != kExecModeInterp) {
        out.tierSwapIndex = static_cast<long long>(k);
        break;
      }
    }
  }

  out.cumulative = makeReport(plan, out.mergedBitmaps);
  for (const auto& [key, rec] : merged) out.diagnostics.push_back(rec);
  std::sort(out.diagnostics.begin(), out.diagnostics.end(),
            [](const DiagRecord& a, const DiagRecord& b) {
              return std::tie(a.firstStep, a.actorPath) <
                     std::tie(b.firstStep, b.actorPath);
            });
  return out;
}

CampaignResult runCampaignSpecsOn(
    const FlatModel& model, SpecEvaluator& evaluator, const SimOptions& opt,
    const std::vector<TestCaseSpec>& specs, const OptStats& optStats,
    std::optional<std::chrono::steady_clock::time_point> wallStart) {
  checkInstrumentedEngine(opt);
  if (specs.empty()) {
    throw ModelError("test campaign needs at least one test case");
  }

  const auto wall0 = wallStart.value_or(std::chrono::steady_clock::now());

  // One-off cost fields are reported as deltas across this call, so a
  // warm pooled evaluator (daemon repeat request) truthfully reports zero
  // generation/compile/load work; a fresh evaluator reports the classic
  // totals since every counter starts at zero.
  const size_t built0 = evaluator.enginesBuilt();
  const double generate0 = evaluator.generateSeconds();
  const double compile0 = evaluator.compileSeconds();
  const double load0 = evaluator.loadSeconds();
  const double wait0 = evaluator.compileWaitSeconds();

  const auto evalStart = std::chrono::steady_clock::now();
  std::vector<uint8_t> done;
  std::vector<SimulationResult> results = evaluator.evaluate(specs, &done);

  // A cooperative interrupt stops the batch after a prefix of the specs;
  // the merge then covers exactly that prefix (partial results are
  // flushed, and each prefix row matches the uninterrupted campaign's).
  size_t completed = 0;
  while (completed < specs.size() && done[completed] != 0) ++completed;

  CampaignResult out = mergeSpecResults(model, specs, results, completed,
                                        optStats);
  out.workersUsed = resolveWorkers(opt, specs.size());
  out.generateSeconds = evaluator.generateSeconds() - generate0;
  out.compileSeconds = evaluator.compileSeconds() - compile0;
  out.loadSeconds = evaluator.loadSeconds() - load0;
  out.compileWaitSeconds = evaluator.compileWaitSeconds() - wait0;
  out.compileCacheHit =
      evaluator.enginesBuilt() > built0 && evaluator.allCompileCacheHits();
  if (evaluator.timeToFirstResultSeconds() >= 0.0) {
    // Campaign-relative: the flatten/optimize prelude plus the evaluator's
    // own start-to-first-result span.
    out.timeToFirstResultSeconds =
        std::chrono::duration<double>(evalStart - wall0).count() +
        evaluator.timeToFirstResultSeconds();
  }
  auto wall1 = std::chrono::steady_clock::now();
  out.wallSeconds = std::chrono::duration<double>(wall1 - wall0).count();
  return out;
}

CampaignResult runCampaignSpecs(const FlatModel& fm, const SimOptions& opt,
                                const std::vector<TestCaseSpec>& specs) {
  checkInstrumentedEngine(opt);
  if (specs.empty()) {
    throw ModelError("test campaign needs at least one test case");
  }

  const auto wall0 = std::chrono::steady_clock::now();

  // Optimize once for the whole campaign; every spec runs the same model,
  // so the pipeline cost amortizes exactly like the one-off compiles.
  OptStats optStats;
  FlatModel optimized;
  const FlatModel* model = &fm;
  if (opt.optimize) {
    optimized = optimizeModel(fm, opt, &optStats);
    model = &optimized;
  }

  SpecEvaluator evaluator(*model, opt);
  return runCampaignSpecsOn(*model, evaluator, opt, specs, optStats, wall0);
}

CampaignResult runCampaign(const FlatModel& fm, const SimOptions& opt,
                           const TestCaseSpec& baseTests,
                           const std::vector<uint64_t>& seeds) {
  if (seeds.empty()) throw ModelError("test campaign needs at least one seed");
  std::vector<TestCaseSpec> specs(seeds.size(), baseTests);
  for (size_t k = 0; k < seeds.size(); ++k) specs[k].seed = seeds[k];
  return runCampaignSpecs(fm, opt, specs);
}

}  // namespace accmos
