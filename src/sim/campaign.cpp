#include "sim/campaign.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <map>
#include <mutex>
#include <thread>
#include <tuple>

#include "actors/spec.h"
#include "codegen/accmos_engine.h"
#include "interp/interpreter.h"
#include "opt/pipeline.h"

namespace accmos {
namespace {

void mergeDiagnostics(std::map<std::tuple<int, DiagKind, std::string>,
                               DiagRecord>& merged,
                      const std::vector<DiagRecord>& records) {
  for (const auto& rec : records) {
    auto key = std::make_tuple(rec.actorId, rec.kind, rec.message);
    auto it = merged.find(key);
    if (it == merged.end()) {
      merged.emplace(key, rec);
    } else {
      it->second.count += rec.count;
      it->second.firstStep = std::min(it->second.firstStep, rec.firstStep);
    }
  }
}

size_t resolveWorkers(const SimOptions& opt, size_t numSeeds) {
  size_t workers = opt.campaign.workers;
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  return std::min(workers, numSeeds);
}

// Runs every seed, storing the per-seed result at the seed's index. With
// more than one worker, seeds are pulled from a shared counter by a pool of
// threads: the SSE engine gets one interpreter instance per worker, the
// AccMoS engine launches concurrent executions of the one compiled binary
// (each child process writes its result stream to its own pipe). The first
// exception thrown by any worker is rethrown on the calling thread.
void executeSeeds(const FlatModel& fm, const SimOptions& opt,
                  const TestCaseSpec& baseTests,
                  const std::vector<uint64_t>& seeds, size_t workers,
                  AccMoSEngine* engine, std::vector<SimulationResult>& out) {
  auto runRange = [&](std::atomic<size_t>& next,
                      std::exception_ptr& error, std::mutex& errMutex) {
    std::unique_ptr<Interpreter> interp;
    TestCaseSpec tests = baseTests;
    for (;;) {
      size_t k = next.fetch_add(1);
      if (k >= seeds.size()) break;
      try {
        if (opt.engine == Engine::SSE) {
          if (!interp) interp = std::make_unique<Interpreter>(fm, opt);
          tests.seed = seeds[k];
          out[k] = interp->run(tests);
        } else {
          out[k] = engine->run(0, -1.0, seeds[k]);
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(errMutex);
        if (!error) error = std::current_exception();
        return;
      }
    }
  };

  std::atomic<size_t> next{0};
  std::exception_ptr error;
  std::mutex errMutex;
  if (workers <= 1) {
    runRange(next, error, errMutex);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&] { runRange(next, error, errMutex); });
    }
    for (auto& t : pool) t.join();
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace

CampaignResult runCampaign(const FlatModel& fm, const SimOptions& opt,
                           const TestCaseSpec& baseTests,
                           const std::vector<uint64_t>& seeds) {
  if (opt.engine != Engine::SSE && opt.engine != Engine::AccMoS) {
    throw ModelError(
        "test campaigns need an instrumented engine (SSE or AccMoS)");
  }
  if (!opt.coverage) {
    throw ModelError("test campaigns accumulate coverage; enable it");
  }
  if (seeds.empty()) throw ModelError("test campaign needs at least one seed");

  auto wall0 = std::chrono::steady_clock::now();
  CampaignResult out;

  // Optimize once for the whole campaign; every seed runs the same model,
  // so the pipeline cost amortizes exactly like the one-off compile below.
  FlatModel optimized;
  const FlatModel* model = &fm;
  if (opt.optimize) {
    optimized = optimizeModel(fm, opt, &out.optStats);
    model = &optimized;
  }

  CoveragePlan plan = CoveragePlan::build(
      *model, [](const FlatActor& fa) { return covTraitsFor(fa); });
  out.mergedBitmaps = CoverageRecorder(plan);
  out.workersUsed = resolveWorkers(opt, seeds.size());

  // Generate + compile once; the generated program takes the stimulus seed
  // as a runtime argument, so the same binary serves every seed (and every
  // worker — executions are separate processes).
  std::unique_ptr<AccMoSEngine> engine;
  if (opt.engine == Engine::AccMoS) {
    engine = std::make_unique<AccMoSEngine>(*model, opt, baseTests);
    out.generateSeconds = engine->generateSeconds();
    out.compileSeconds = engine->compileSeconds();
    out.compileCacheHit = engine->compileCacheHit();
  }

  std::vector<SimulationResult> results(seeds.size());
  executeSeeds(*model, opt, baseTests, seeds, out.workersUsed, engine.get(),
               results);

  // Merge strictly in seed order: coverage-bitmap unions, diagnostic
  // deduplication and the per-seed cumulative reports are computed exactly
  // as the sequential path would, so the campaign outcome is independent of
  // the execution interleaving above.
  std::map<std::tuple<int, DiagKind, std::string>, DiagRecord> merged;
  out.perSeed.reserve(seeds.size());
  for (size_t k = 0; k < seeds.size(); ++k) {
    const SimulationResult& res = results[k];
    out.mergedBitmaps.merge(res.bitmaps);
    mergeDiagnostics(merged, res.diagnostics);
    out.totalExecSeconds += res.execSeconds;

    CampaignSeedResult sr;
    sr.seed = seeds[k];
    sr.steps = res.stepsExecuted;
    sr.execSeconds = res.execSeconds;
    sr.coverage = res.coverage;
    sr.cumulative = makeReport(plan, out.mergedBitmaps);
    sr.diagnosticKinds = res.diagnostics.size();
    out.perSeed.push_back(std::move(sr));
  }

  out.cumulative = makeReport(plan, out.mergedBitmaps);
  for (const auto& [key, rec] : merged) out.diagnostics.push_back(rec);
  std::sort(out.diagnostics.begin(), out.diagnostics.end(),
            [](const DiagRecord& a, const DiagRecord& b) {
              return std::tie(a.firstStep, a.actorPath) <
                     std::tie(b.firstStep, b.actorPath);
            });
  auto wall1 = std::chrono::steady_clock::now();
  out.wallSeconds = std::chrono::duration<double>(wall1 - wall0).count();
  return out;
}

}  // namespace accmos
