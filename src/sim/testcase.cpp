#include "sim/testcase.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace accmos {
namespace {

// Shortest representation that parses back to the same double (%.17g is
// always exact; try the shorter forms first for readable files).
std::string fmtExact(double v) {
  char buf[40];
  for (int prec = 9; prec <= 17; prec += 4) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) return buf;
  }
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

void PortStimulus::validate(const std::string& what) const {
  if (sequence.empty()) {
    if (std::isnan(min) || std::isnan(max) || std::isinf(min) ||
        std::isinf(max)) {
      throw ModelError(what + ": range bounds must be finite (got [" +
                       fmtExact(min) + ", " + fmtExact(max) + "))");
    }
    if (min > max) {
      throw ModelError(what + ": range min " + fmtExact(min) +
                       " exceeds max " + fmtExact(max));
    }
  } else {
    for (size_t k = 0; k < sequence.size(); ++k) {
      if (!std::isfinite(sequence[k])) {
        throw ModelError(what + ": sequence element " + std::to_string(k) +
                         " is not finite");
      }
    }
  }
}

void TestCaseSpec::validate() const {
  for (size_t k = 0; k < ports.size(); ++k) {
    ports[k].validate("test-case port " + std::to_string(k + 1));
  }
  defaultPort.validate("test-case default port");
}

TestCaseSpec TestCaseSpec::fromCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ModelError("cannot open test-case CSV '" + path + "'");
  TestCaseSpec spec;
  std::string line;
  size_t columns = 0;
  size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string cell;
    size_t col = 0;
    while (std::getline(ls, cell, ',')) {
      if (col >= spec.ports.size()) spec.ports.emplace_back();
      spec.ports[col].sequence.push_back(std::strtod(cell.c_str(), nullptr));
      ++col;
    }
    if (columns == 0) columns = col;
    if (col != columns) {
      throw ModelError("test-case CSV '" + path + "' line " +
                       std::to_string(lineNo) + " has " +
                       std::to_string(col) + " column(s), expected " +
                       std::to_string(columns));
    }
  }
  if (spec.ports.empty()) {
    throw ModelError("test-case CSV '" + path + "' contains no data");
  }
  spec.validate();
  return spec;
}

std::string TestCaseSpec::toCsvString() const {
  if (ports.empty()) {
    throw ModelError("test-case CSV export needs at least one port");
  }
  size_t rows = 0;
  for (size_t k = 0; k < ports.size(); ++k) {
    if (ports[k].sequence.empty()) {
      throw ModelError("test-case CSV export: port " + std::to_string(k + 1) +
                       " has no explicit sequence (seeded ranges cannot be "
                       "written as CSV)");
    }
    if (k == 0) rows = ports[k].sequence.size();
    if (ports[k].sequence.size() != rows) {
      throw ModelError("test-case CSV export: port " + std::to_string(k + 1) +
                       " has " + std::to_string(ports[k].sequence.size()) +
                       " value(s), expected " + std::to_string(rows));
    }
  }
  std::ostringstream os;
  os << "# accmos test case: " << ports.size() << " port(s) x " << rows
     << " step(s)\n";
  for (size_t r = 0; r < rows; ++r) {
    for (size_t k = 0; k < ports.size(); ++k) {
      if (k > 0) os << ",";
      os << fmtExact(ports[k].sequence[r]);
    }
    os << "\n";
  }
  return os.str();
}

void TestCaseSpec::toCsv(const std::string& path) const {
  std::string body = toCsvString();
  std::ofstream out(path);
  if (!out) throw ModelError("cannot write test-case CSV '" + path + "'");
  out << body;
}

std::string TestCaseSpec::shapeKey() const {
  std::ostringstream os;
  auto port = [&os](const PortStimulus& p) {
    if (p.sequence.empty()) {
      os << "r " << fmtExact(p.min) << " " << fmtExact(p.max);
    } else {
      os << "s";
      for (double v : p.sequence) os << " " << fmtExact(v);
    }
    os << "\n";
  };
  os << "default ";
  port(defaultPort);
  for (size_t k = 0; k < ports.size(); ++k) {
    os << "port " << k << " ";
    port(ports[k]);
  }
  return os.str();
}

StimulusStream::StimulusStream(const TestCaseSpec& spec, const FlatModel& fm) {
  spec.validate();
  for (size_t k = 0; k < fm.rootInports.size(); ++k) {
    PortState ps;
    ps.signalId = fm.actor(fm.rootInports[k]).outputs[0];
    ps.stim = spec.port(static_cast<int>(k));
    ps.rng = SplitMix64(portSeed(spec.seed, static_cast<int>(k)));
    ports_.push_back(std::move(ps));
  }
}

void StimulusStream::fill(uint64_t step, std::vector<Value>& signals) {
  for (auto& ps : ports_) {
    Value& sig = signals[static_cast<size_t>(ps.signalId)];
    for (int i = 0; i < sig.width(); ++i) {
      double v;
      if (!ps.stim.sequence.empty()) {
        v = ps.stim.sequence[static_cast<size_t>(
            step % ps.stim.sequence.size())];
      } else {
        v = ps.rng.nextUniform(ps.stim.min, ps.stim.max);
      }
      sig.store(i, v);
    }
  }
}

}  // namespace accmos
