#include "sim/testcase.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace accmos {

TestCaseSpec TestCaseSpec::fromCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ModelError("cannot open test-case CSV '" + path + "'");
  TestCaseSpec spec;
  std::string line;
  size_t columns = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string cell;
    size_t col = 0;
    while (std::getline(ls, cell, ',')) {
      if (col >= spec.ports.size()) spec.ports.emplace_back();
      spec.ports[col].sequence.push_back(std::strtod(cell.c_str(), nullptr));
      ++col;
    }
    if (columns == 0) columns = col;
    if (col != columns) {
      throw ModelError("test-case CSV '" + path +
                       "' has ragged rows (expected " +
                       std::to_string(columns) + " columns)");
    }
  }
  if (spec.ports.empty()) {
    throw ModelError("test-case CSV '" + path + "' contains no data");
  }
  return spec;
}

StimulusStream::StimulusStream(const TestCaseSpec& spec, const FlatModel& fm) {
  for (size_t k = 0; k < fm.rootInports.size(); ++k) {
    PortState ps;
    ps.signalId = fm.actor(fm.rootInports[k]).outputs[0];
    ps.stim = spec.port(static_cast<int>(k));
    ps.rng = SplitMix64(portSeed(spec.seed, static_cast<int>(k)));
    ports_.push_back(std::move(ps));
  }
}

void StimulusStream::fill(uint64_t step, std::vector<Value>& signals) {
  for (auto& ps : ports_) {
    Value& sig = signals[static_cast<size_t>(ps.signalId)];
    for (int i = 0; i < sig.width(); ++i) {
      double v;
      if (!ps.stim.sequence.empty()) {
        v = ps.stim.sequence[static_cast<size_t>(
            step % ps.stim.sequence.size())];
      } else {
        v = ps.rng.nextUniform(ps.stim.min, ps.stim.max);
      }
      sig.store(i, v);
    }
  }
}

}  // namespace accmos
