// Simulation results: coverage, diagnostics, monitored signals, outputs,
// timing — the information AccMoS prints "at the conclusion of the
// simulation" (paper §3.2-3.3).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cov/coverage.h"
#include "diag/diagnosis.h"
#include "ir/value.h"
#include "opt/stats.h"
#include "sim/failure.h"

namespace accmos {

// Signal-monitor record (paper Fig. 3): last value plus occurrence count.
struct CollectedSignal {
  std::string path;  // producer actor path + ":" + port
  Value last;
  uint64_t count = 0;
};

struct SimulationResult {
  uint64_t stepsExecuted = 0;
  bool stoppedEarly = false;  // StopSimulation actor or stop-on-diagnostic

  // Run retired by its wall-clock deadline (SimOptions::runTimeoutSec) or
  // step budget (SimOptions::stepBudget) instead of reaching maxSteps.
  // Observations up to the retirement point are valid.
  bool timedOut = false;

  // Containment record: set by the fault-contained execution paths
  // (campaigns, the generator) instead of throwing, so one bad seed cannot
  // abort a whole campaign. When failed is true the rest of the result
  // carries no observations and `failure` says what happened.
  bool failed = false;
  RunFailure failure;

  // Wall-clock split. For in-process engines only execSeconds is set; the
  // AccMoS path also reports generation and compilation time, and — in
  // dlopen exec mode — the one-time shared-library load time.
  double execSeconds = 0.0;
  double generateSeconds = 0.0;
  double compileSeconds = 0.0;
  double loadSeconds = 0.0;
  double totalSeconds() const {
    return execSeconds + generateSeconds + compileSeconds + loadSeconds;
  }

  // Execution backend the AccMoS engine actually used ("dlopen" or
  // "process"; empty for the interpreting engines). May differ from
  // SimOptions::execMode when the dlopen backend fell back to a subprocess.
  std::string execMode;

  bool hasCoverage = false;
  CoverageReport coverage;
  CoverageRecorder bitmaps;

  std::vector<DiagRecord> diagnostics;  // sorted by first step
  std::optional<uint64_t> firstDiagStep() const {
    if (diagnostics.empty()) return std::nullopt;
    return diagnostics.front().firstStep;
  }
  const DiagRecord* findDiag(const std::string& pathSubstr,
                             DiagKind kind) const;

  std::vector<CollectedSignal> collected;

  // Final value of each root outport (ordered by port index).
  std::vector<Value> finalOutputs;

  // What the pre-engine optimization pipeline did (ran == false when
  // SimOptions::optimize was off).
  OptStats optStats;

  std::string summary() const;
};

}  // namespace accmos
