// Test-case import (paper §3.3: "the main function initializes them before
// simulation and acquires the corresponding values for each input port
// during the simulation loop").
//
// A TestCaseSpec is declarative so the same stimulus can be replayed by the
// in-process engines and baked into generated code: a seeded SplitMix64
// stream per port, or explicit cycled sequences, or a CSV file
// (materialized into sequences at load time).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/flat_model.h"
#include "ir/arith.h"
#include "ir/value.h"

namespace accmos {

struct PortStimulus {
  // Uniform random in [min, max) when `sequence` is empty; otherwise the
  // explicit sequence cycled over steps.
  double min = 0.0;
  double max = 1.0;
  std::vector<double> sequence;
};

struct TestCaseSpec {
  uint64_t seed = 1;
  // Per root-inport stimulus; ports beyond the list use `defaultPort`.
  std::vector<PortStimulus> ports;
  PortStimulus defaultPort;

  const PortStimulus& port(int idx) const {
    return idx < static_cast<int>(ports.size())
               ? ports[static_cast<size_t>(idx)]
               : defaultPort;
  }

  // Loads explicit sequences from a CSV file (one column per root inport,
  // '#' comments allowed). Throws ModelError on malformed input.
  static TestCaseSpec fromCsv(const std::string& path);
};

// The runtime generator all in-process engines use; the generated runtime
// preamble contains the byte-identical algorithm, so every engine sees the
// same stimulus for a given spec.
class StimulusStream {
 public:
  StimulusStream(const TestCaseSpec& spec, const FlatModel& fm);

  // Writes step `step`'s values into the root-inport output signals.
  void fill(uint64_t step, std::vector<Value>& signals);

 private:
  struct PortState {
    int signalId;
    PortStimulus stim;
    SplitMix64 rng{0};
  };
  std::vector<PortState> ports_;
};

}  // namespace accmos
