// Test-case import (paper §3.3: "the main function initializes them before
// simulation and acquires the corresponding values for each input port
// during the simulation loop").
//
// A TestCaseSpec is declarative so the same stimulus can be replayed by the
// in-process engines and baked into generated code: a seeded SplitMix64
// stream per port, or explicit cycled sequences, or a CSV file
// (materialized into sequences at load time).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/flat_model.h"
#include "ir/arith.h"
#include "ir/value.h"

namespace accmos {

struct PortStimulus {
  // Uniform random in [min, max) when `sequence` is empty; otherwise the
  // explicit sequence cycled over steps.
  double min = 0.0;
  double max = 1.0;
  std::vector<double> sequence;

  // Rejects stimulus that would generate garbage values: a reversed or
  // non-finite range when the range is what will be drawn from, or
  // non-finite sequence elements. `what` names the port in the ModelError.
  void validate(const std::string& what) const;
};

struct TestCaseSpec {
  uint64_t seed = 1;
  // Per root-inport stimulus; ports beyond the list use `defaultPort`.
  std::vector<PortStimulus> ports;
  PortStimulus defaultPort;

  const PortStimulus& port(int idx) const {
    return idx < static_cast<int>(ports.size())
               ? ports[static_cast<size_t>(idx)]
               : defaultPort;
  }

  // Validates every listed port plus the default — the engines call this
  // before a spec is first used, so malformed stimulus fails fast as a
  // ModelError instead of producing silent garbage values.
  void validate() const;

  // Loads explicit sequences from a CSV file (one column per root inport,
  // '#' comments allowed). Throws a line-numbered ModelError on malformed
  // input (ragged rows, unparsable cells, empty files).
  static TestCaseSpec fromCsv(const std::string& path);

  // Inverse of fromCsv: writes one column per port. Every port must carry
  // an explicit sequence and all sequences must have the same length (the
  // shape fromCsv produces); throws ModelError otherwise. Values are
  // written with enough precision to round-trip doubles exactly.
  void toCsv(const std::string& path) const;
  std::string toCsvString() const;

  // Canonical text form of the stimulus *shape* — ports, ranges and
  // sequences with the seed excluded. The campaign layer caches compiled
  // AccMoS simulators under this key: the generated code bakes the
  // stimulus but takes the seed as a runtime argument, so seed-only
  // variants of a spec share one compiled binary.
  std::string shapeKey() const;
};

// The runtime generator all in-process engines use; the generated runtime
// preamble contains the byte-identical algorithm, so every engine sees the
// same stimulus for a given spec.
class StimulusStream {
 public:
  StimulusStream(const TestCaseSpec& spec, const FlatModel& fm);

  // Writes step `step`'s values into the root-inport output signals.
  void fill(uint64_t step, std::vector<Value>& signals);

 private:
  struct PortState {
    int signalId;
    PortStimulus stim;
    SplitMix64 rng{0};
  };
  std::vector<PortState> ports_;
};

}  // namespace accmos
