#include "sim/tiered_engine.h"

#include <sys/stat.h>

#include <chrono>
#include <utility>

#include "codegen/fault.h"
#include "interp/interpreter.h"
#include "sim/failure.h"

namespace accmos {

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Capabilities only the generated code (or the real compiler) has; a run
// that needs one of these must not be answered by the interpreter tier.
bool mustForceNative(const SimOptions& opt) {
  // Cooperative deadlines / step budgets are an ABI v3 feature of the
  // generated code; the interpreter cannot retire a run as timed out.
  if (opt.runTimeoutSec > 0.0 || opt.stepBudget > 0) return true;
  // Expression customs pair a host callback with a C++ snippet; nothing
  // guarantees the two agree, so tiers could observably diverge.
  for (const auto& cd : opt.customDiagnostics) {
    if (cd.kind == CustomDiagnostic::Kind::Expression) return true;
  }
  // ACCMOS_FAULT plants hang/crash faults in the emitted step loop and
  // compile-fail in the compiler; serving runs from the interpreter would
  // dodge the injection the caller explicitly asked for.
  const FaultPlan plan = faultPlanFromEnv();
  if (plan.affectsEmit() || plan.compileFail) return true;
  return false;
}

}  // namespace

TieredEngine::TieredEngine(const FlatModel& fm, const SimOptions& opt,
                           const TestCaseSpec& tests)
    : fm_(fm), opt_(opt), tests_(tests) {
  policy_ = opt_.tier;
  if (policy_ != Tier::Native && mustForceNative(opt_)) policy_ = Tier::Native;
  // The async artifact hand-over rides on the compile cache: the pool job
  // publishes there and engine construction hits the entry. Without a
  // cache the adoption would re-compile synchronously mid-campaign.
  if (policy_ == Tier::Auto &&
      (!opt_.compileCache || CompilerDriver::cacheDisabledGlobally())) {
    policy_ = Tier::Native;
  }

  switch (policy_) {
    case Tier::Native: {
      nativeOwned_ = std::make_unique<AccMoSEngine>(fm_, opt_, tests_);
      generateSeconds_ = nativeOwned_->generateSeconds();
      compileWaitSeconds_ = nativeOwned_->compileSeconds();
      native_.store(nativeOwned_.get(), std::memory_order_release);
      break;
    }
    case Tier::Interp:
      nativeDead_.store(true, std::memory_order_release);
      break;
    case Tier::Auto: {
      gen_ = AccMoSEngine::generate(fm_, opt_, tests_);
      generateSeconds_ = gen_.generateSeconds;
      driver_ = std::make_unique<CompilerDriver>();
      driver_->setCacheEnabled(opt_.compileCache);
      std::string extraFlags;
      const ArtifactKind kind = AccMoSEngine::artifactPlan(opt_, &extraFlags);
      handle_ = driver_->compileAsync(gen_.source, "model_" + fm_.modelName,
                                      opt_.optFlag, kind, extraFlags);
      break;
    }
  }
}

TieredEngine::~TieredEngine() {
  // Withdraw interest in an unfinished compile: if no other waiter wants
  // it, the pool drops the job instead of burning a compiler invocation.
  handle_.cancel();
}

AccMoSEngine* TieredEngine::maybeNative() {
  AccMoSEngine* e = native_.load(std::memory_order_acquire);
  if (e != nullptr) return e;
  if (nativeDead_.load(std::memory_order_acquire)) return nullptr;
  if (!handle_.valid() || !handle_.ready()) return nullptr;

  std::lock_guard<std::mutex> lock(buildMutex_);
  e = native_.load(std::memory_order_acquire);
  if (e != nullptr || nativeDead_.load(std::memory_order_acquire)) return e;

  const auto t0 = Clock::now();
  try {
    CompileOutput compiled = handle_.get();
    compileSecondsAsync_ = compiled.seconds;
    cacheHitAsync_ = compiled.cacheHit;
    // Construct from the already-emitted model; the engine's own compile
    // is a cache hit on the artifact the pool just published, so this is
    // verify + dlopen, not a second compile.
    nativeOwned_ =
        std::make_unique<AccMoSEngine>(fm_, opt_, tests_, std::move(gen_));
    native_.store(nativeOwned_.get(), std::memory_order_release);
  } catch (const ModelError& ex) {
    // Graceful degradation: the campaign finishes all-interpreted. The
    // error is kept for callers that want to surface it.
    nativeError_ = ex.what();
    nativeDead_.store(true, std::memory_order_release);
  }
  compileWaitSeconds_ += secondsSince(t0);
  return native_.load(std::memory_order_acquire);
}

Interpreter* TieredEngine::interpFor(size_t worker) {
  std::lock_guard<std::mutex> lock(interpMutex_);
  if (interps_.size() <= worker) interps_.resize(worker + 1);
  if (!interps_[worker]) {
    interps_[worker] = std::make_unique<Interpreter>(fm_, opt_);
  }
  return interps_[worker].get();
}

SimulationResult TieredEngine::interpRun(uint64_t seed, size_t worker) {
  Interpreter* interp = interpFor(worker);
  TestCaseSpec spec = tests_;
  spec.seed = seed;
  SimulationResult r = interp->run(spec);
  r.execMode = kExecModeInterp;
  r.generateSeconds = generateSeconds_;
  interpRuns_.fetch_add(1, std::memory_order_relaxed);
  return r;
}

SimulationResult TieredEngine::run(std::optional<uint64_t> seedOverride,
                                   size_t worker) {
  if (AccMoSEngine* e = maybeNative()) {
    nativeRuns_.fetch_add(1, std::memory_order_relaxed);
    return e->run(0, -1.0, seedOverride);
  }
  if (policy_ != Tier::Interp && nativeFailed()) {
    // Single-run callers asked for native acceleration and the compile
    // failed; surface it like the synchronous constructor would.
    throw CompileError(nativeError_);
  }
  return interpRun(seedOverride.value_or(tests_.seed), worker);
}

SimulationResult TieredEngine::runContained(
    std::optional<uint64_t> seedOverride, size_t worker) {
  if (AccMoSEngine* e = maybeNative()) {
    nativeRuns_.fetch_add(1, std::memory_order_relaxed);
    return e->runContained(0, -1.0, seedOverride);
  }
  return interpRun(seedOverride.value_or(tests_.seed), worker);
}

std::vector<SimulationResult> TieredEngine::runBatchContained(
    const std::vector<uint64_t>& seeds, size_t worker) {
  std::vector<SimulationResult> out;
  out.reserve(seeds.size());
  for (size_t i = 0; i < seeds.size(); ++i) {
    if (AccMoSEngine* e = maybeNative()) {
      const std::vector<uint64_t> rest(seeds.begin() +
                                           static_cast<ptrdiff_t>(i),
                                       seeds.end());
      std::vector<SimulationResult> rs = e->runBatchContained(rest);
      nativeRuns_.fetch_add(rs.size(), std::memory_order_relaxed);
      for (auto& r : rs) out.push_back(std::move(r));
      return out;
    }
    out.push_back(interpRun(seeds[i], worker));
  }
  return out;
}

double TieredEngine::generateSeconds() const { return generateSeconds_; }

double TieredEngine::compileSeconds() const {
  if (policy_ == Tier::Native) {
    return nativeOwned_ ? nativeOwned_->compileSeconds() : 0.0;
  }
  std::lock_guard<std::mutex> lock(buildMutex_);
  return compileSecondsAsync_;
}

double TieredEngine::loadSeconds() const {
  std::lock_guard<std::mutex> lock(buildMutex_);
  return nativeOwned_ ? nativeOwned_->loadSeconds() : 0.0;
}

double TieredEngine::compileWaitSeconds() const {
  std::lock_guard<std::mutex> lock(buildMutex_);
  return compileWaitSeconds_;
}

size_t TieredEngine::residentBytes() const {
  size_t bytes = gen_.source.size();
  std::lock_guard<std::mutex> lock(buildMutex_);
  if (nativeOwned_) {
    bytes += nativeOwned_->generatedSource().size();
    struct stat st {};
    if (::stat(nativeOwned_->exePath().c_str(), &st) == 0 && st.st_size > 0) {
      bytes += static_cast<size_t>(st.st_size);
    }
  }
  return bytes;
}

bool TieredEngine::compileCacheHit() const {
  if (policy_ == Tier::Native) {
    return nativeOwned_ ? nativeOwned_->compileCacheHit() : false;
  }
  std::lock_guard<std::mutex> lock(buildMutex_);
  return cacheHitAsync_;
}

const std::string& TieredEngine::nativeError() const {
  std::lock_guard<std::mutex> lock(buildMutex_);
  return nativeError_;
}

}  // namespace accmos
