// Process-wide cooperative interrupt flag (SIGINT/SIGTERM → finish the
// current unit of work, flush partial results, exit with a documented
// code instead of dying mid-campaign — docs/ROBUSTNESS.md).
//
// The flag is deliberately global and async-signal-safe to raise: the CLI
// and the accmosd daemon install handlers that call requestInterrupt(),
// and long-running loops (campaign chunk claims, the daemon accept loop)
// poll interruptRequested() at their natural boundaries. Because campaign
// workers claim spec chunks from a monotonic counter and always complete a
// claimed chunk, the set of finished specs at interrupt time is a prefix —
// which is what makes a partial merge well-defined (sim/campaign.h).
#pragma once

namespace accmos {

// Raise the flag. Async-signal-safe (a relaxed atomic store).
void requestInterrupt();

// Has anyone raised it since the last clear?
bool interruptRequested();

// Lower the flag (test isolation; a fresh CLI run never needs it).
void clearInterrupt();

}  // namespace accmos
