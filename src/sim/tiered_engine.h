// Tiered execution front-end for the AccMoS engine (docs/EXECUTION.md,
// "Tiered execution"): browser-JIT style cold-start elimination. Under
// Tier::Auto the model is emitted once, the optimizing compile is handed to
// the background compile pool (CompilerDriver::compileAsync), and runs are
// answered immediately on the resident SSE interpreter; the first run to
// observe the finished compile constructs the native engine (a compile-cache
// hit — the async job published the artifact) and atomically hot-swaps it
// in, so every later run and every remaining batch chunk goes native.
//
// Soundness: all engines are observation-equivalent (the differential
// suites prove it), so WHERE the swap lands moves only timings — outputs,
// coverage bitmaps, diagnostics and monitors are bit-identical per seed
// across tiers, and the campaign's seed-order merge stays deterministic for
// any worker count x lane width x swap point. SimulationResult::execMode
// truthfully reports the tier that ran each seed ("interp" vs "dlopen" /
// "dlopen-batch" / "process").
//
// Tier::Auto and Tier::Interp silently harden to Tier::Native when a run
// needs the generated code or the real compiler (see mustForceNative in
// the .cpp): cooperative deadlines, Expression custom diagnostics,
// ACCMOS_FAULT directives that target emitted code or the compiler, or
// (Auto only) a disabled compile cache — the async artifact hand-over
// rides on the cache.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "codegen/accmos_engine.h"
#include "codegen/compiler_driver.h"
#include "graph/flat_model.h"
#include "sim/options.h"
#include "sim/result.h"
#include "sim/testcase.h"

namespace accmos {

class Interpreter;

class TieredEngine {
 public:
  // Never blocks on the compiler unless the effective policy is Native.
  // Under Auto the constructor emits the source and enqueues the compile;
  // under Interp it does neither. `fm` must outlive the engine.
  TieredEngine(const FlatModel& fm, const SimOptions& opt,
               const TestCaseSpec& tests);
  ~TieredEngine();

  TieredEngine(const TieredEngine&) = delete;
  TieredEngine& operator=(const TieredEngine&) = delete;

  // One simulation (throwing variant, for single-run callers). `worker`
  // selects the per-worker interpreter instance for the interp tier —
  // Interpreter is stateful and NOT thread-safe, so concurrent callers
  // must pass distinct worker indices (the native tier ignores it;
  // AccMoSEngine::run is thread-safe).
  SimulationResult run(std::optional<uint64_t> seedOverride = std::nullopt,
                       size_t worker = 0);

  // Fault-contained single run (the campaign entry point): delegates to
  // AccMoSEngine::runContained on the native tier; the interp tier has no
  // generated code to contain.
  SimulationResult runContained(
      std::optional<uint64_t> seedOverride = std::nullopt, size_t worker = 0);

  // Fault-contained multi-seed run, in seed order. Checks for the finished
  // compile before every seed, so the hot-swap lands mid-chunk: seeds
  // before the swap run interpreted, the rest go through the native
  // engine's fused batch kernel. Bit-identical to any other split.
  std::vector<SimulationResult> runBatchContained(
      const std::vector<uint64_t>& seeds, size_t worker = 0);

  // The effective policy after hardening rules (see header comment).
  Tier policy() const { return policy_; }
  // Non-blocking: has the native engine been adopted (hot-swap happened /
  // Native policy)? After a failed compile this stays false forever and
  // every run degrades to the interpreter.
  bool nativeReady() const {
    return native_.load(std::memory_order_acquire) != nullptr;
  }
  bool nativeFailed() const {
    return !nativeReady() && nativeDead_.load(std::memory_order_acquire);
  }
  // The adopted native engine, or nullptr (does not trigger adoption).
  AccMoSEngine* native() { return native_.load(std::memory_order_acquire); }

  // Cost breakdown. compileWaitSeconds is wall time runs actually BLOCKED
  // on the compiler: the whole synchronous construction under Native, only
  // the post-ready adoption (cache-verify + dlopen) under Auto, zero under
  // Interp. compileSeconds under Auto is the async job's real compile time
  // (spent on the pool, overlapped with interpreted runs, NOT blocking).
  double generateSeconds() const;
  double compileSeconds() const;
  double loadSeconds() const;
  double compileWaitSeconds() const;
  bool compileCacheHit() const;
  const std::string& nativeError() const;  // empty unless nativeFailed()

  // Approximate bytes this engine keeps resident: the generated source it
  // holds plus the on-disk size of the adopted native artifact (the mapped
  // shared library / executable). The model-library pool (src/serve)
  // charges entries against its byte budget with this — an estimate is
  // fine, eviction only needs a consistent relative measure.
  size_t residentBytes() const;

  // Runs answered by each tier so far.
  uint64_t interpRuns() const {
    return interpRuns_.load(std::memory_order_relaxed);
  }
  uint64_t nativeRuns() const {
    return nativeRuns_.load(std::memory_order_relaxed);
  }

 private:
  // Non-blocking adoption: returns the native engine, constructing it
  // under buildMutex_ if the async compile just finished. Never waits for
  // an unfinished compile; a failed compile marks the native tier dead.
  AccMoSEngine* maybeNative();
  SimulationResult interpRun(uint64_t seed, size_t worker);
  Interpreter* interpFor(size_t worker);

  const FlatModel& fm_;
  SimOptions opt_;
  TestCaseSpec tests_;
  Tier policy_ = Tier::Native;

  // Auto: the emitted model awaiting its engine, and the async compile.
  GeneratedModel gen_;
  std::unique_ptr<CompilerDriver> driver_;
  CompileHandle handle_;

  std::unique_ptr<AccMoSEngine> nativeOwned_;
  std::atomic<AccMoSEngine*> native_{nullptr};
  std::atomic<bool> nativeDead_{false};

  mutable std::mutex buildMutex_;  // adoption + the stats it writes
  std::string nativeError_;
  double generateSeconds_ = 0.0;
  double compileSecondsAsync_ = 0.0;
  bool cacheHitAsync_ = false;
  double compileWaitSeconds_ = 0.0;

  std::atomic<uint64_t> interpRuns_{0};
  std::atomic<uint64_t> nativeRuns_{0};

  std::mutex interpMutex_;
  std::vector<std::unique_ptr<Interpreter>> interps_;  // index = worker
};

}  // namespace accmos
