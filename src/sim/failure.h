// The structured failure taxonomy of the fault-containment layer
// (docs/ROBUSTNESS.md has the narrative version).
//
// Containment turns "a generated model misbehaved" from a process-fatal
// event into data: campaigns and generation sessions record a RunFailure
// per affected seed and keep going, while single-run entry points
// (Simulator::run, the CLI) surface the same taxonomy as typed
// exceptions so callers can tell a hang from a crash from a compiler
// failure without string-matching messages.
#ifndef ACCMOS_SIM_FAILURE_H_
#define ACCMOS_SIM_FAILURE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "ir/model.h"

namespace accmos {

// Why a run produced no usable result. Timeout covers both cooperative
// retirement (deadline / step budget observed inside the generated step
// loop) and the host-side watchdog killing a wedged subprocess. Crash is
// death by signal (SIGSEGV/SIGBUS/SIGFPE/SIGILL in-process, or any fatal
// signal in a subprocess) or a nonzero exit of the generated program.
// CompileError is the compiler failing after retries. AbiMismatch is a
// loaded library rejecting the call or emitting an undecodable result.
enum class FailureKind : uint8_t {
  Timeout = 0,
  Crash = 1,
  CompileError = 2,
  AbiMismatch = 3,
};

const char* failureKindName(FailureKind kind);

// One contained per-run failure, recorded in seed order in
// CampaignResult::failures (and per-result in SimulationResult::failure).
struct RunFailure {
  FailureKind kind = FailureKind::Crash;
  uint64_t seed = 0;
  size_t index = 0;     // spec index within the campaign, when applicable
  int signal = 0;       // terminating signal, 0 when none applies
  int retries = 0;      // containment retries spent before giving up
  std::string backend;  // backend that produced the final verdict
  std::string message;  // human-readable detail (compiler stderr, ...)

  // "seed 1037: Timeout on process after 1 retry (...)" — the one-line
  // form the CLI prints and tests grep for.
  std::string summary() const;
};

// A run exceeded its wall-clock deadline or step budget.
class SimTimeoutError : public ModelError {
 public:
  explicit SimTimeoutError(const std::string& msg) : ModelError(msg) {}
};

// The generated model crashed (fatal signal or nonzero exit).
class SimCrashError : public ModelError {
 public:
  SimCrashError(const std::string& msg, int sig)
      : ModelError(msg), signal_(sig) {}
  int terminatingSignal() const { return signal_; }

 private:
  int signal_ = 0;
};

// The model file could not be loaded/parsed — distinct from compile and
// runtime failures so the CLI can exit with its own documented code.
class ModelLoadError : public ModelError {
 public:
  explicit ModelLoadError(const std::string& msg) : ModelError(msg) {}
};

}  // namespace accmos

#endif  // ACCMOS_SIM_FAILURE_H_
