#include "sim/interrupt.h"

#include <atomic>

namespace accmos {

namespace {
std::atomic<bool> g_interrupt{false};
}  // namespace

void requestInterrupt() { g_interrupt.store(true, std::memory_order_relaxed); }

bool interruptRequested() {
  return g_interrupt.load(std::memory_order_relaxed);
}

void clearInterrupt() { g_interrupt.store(false, std::memory_order_relaxed); }

}  // namespace accmos
