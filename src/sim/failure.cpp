#include "sim/failure.h"

#include <sstream>

namespace accmos {

const char* failureKindName(FailureKind kind) {
  switch (kind) {
    case FailureKind::Timeout:
      return "Timeout";
    case FailureKind::Crash:
      return "Crash";
    case FailureKind::CompileError:
      return "CompileError";
    case FailureKind::AbiMismatch:
      return "AbiMismatch";
  }
  return "Unknown";
}

std::string RunFailure::summary() const {
  std::ostringstream os;
  os << "seed " << seed << ": " << failureKindName(kind);
  if (signal != 0) os << " (signal " << signal << ")";
  if (!backend.empty()) os << " on " << backend;
  os << " after " << retries << (retries == 1 ? " retry" : " retries");
  if (!message.empty()) os << " — " << message;
  return os.str();
}

}  // namespace accmos
