// The user-facing simulation facade: pick an engine, provide test cases,
// get a SimulationResult. This is the API the examples and benches use.
#pragma once

#include <memory>

#include "graph/flat_model.h"
#include "ir/model.h"
#include "sim/options.h"
#include "sim/result.h"
#include "sim/testcase.h"

namespace accmos {

class Simulator {
 public:
  // Preprocesses (flattens, schedules, validates) the model once; the
  // Model must outlive the Simulator.
  explicit Simulator(const Model& model);

  const FlatModel& flatModel() const { return fm_; }

  // Runs one simulation. Throws ModelError when the options are invalid
  // for the chosen engine — the fast modes cannot collect coverage,
  // diagnose, monitor signals, or run custom diagnostics (paper §2).
  SimulationResult run(const SimOptions& opt, const TestCaseSpec& tests) const;

 private:
  FlatModel fm_;
};

// One-shot convenience.
SimulationResult simulate(const Model& model, const SimOptions& opt,
                          const TestCaseSpec& tests);

}  // namespace accmos
