// Shared definition of which signals the signal monitor records: the
// outputs of actors on the user's collect list plus the inputs of
// Scope/Display actors. Both the interpreter and the code generator use
// this, so a collected signal means the same thing in every engine.
#pragma once

#include <string>
#include <vector>

#include "graph/flat_model.h"

namespace accmos {

std::vector<int> monitoredSignals(const FlatModel& fm,
                                  const std::vector<std::string>& collectList);

}  // namespace accmos
