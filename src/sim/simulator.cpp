#include "sim/simulator.h"

#include "actors/spec.h"
#include "codegen/accmos_engine.h"
#include "graph/flatten.h"
#include "interp/compiled.h"
#include "interp/interpreter.h"
#include "opt/pipeline.h"
#include "sim/tiered_engine.h"

namespace accmos {
namespace {

SimulationResult dispatch(const FlatModel& fm, const SimOptions& opt,
                          const TestCaseSpec& tests) {
  switch (opt.engine) {
    case Engine::AccMoS:
      if (opt.tier != Tier::Native) {
        // Tiered single run: under Auto this answers on whichever tier is
        // ready first (a warm compile cache makes it native; a cold one
        // interpreted, withdrawing interest in the async compile on
        // return); under Interp it never compiles.
        TieredEngine tiered(fm, opt, tests);
        return tiered.run();
      }
      return runAccMoS(fm, opt, tests);
    case Engine::SSE:
      return runInterpreter(fm, opt, tests);
    case Engine::SSEac:
      return runAccelerator(fm, opt, tests);
    case Engine::SSErac:
      return runRapidAccelerator(fm, opt, tests);
  }
  throw ModelError("unknown engine");
}

}  // namespace

Simulator::Simulator(const Model& model)
    : fm_(flatten(model, Registry::instance())) {
  validateFlatModel(fm_);
}

SimulationResult Simulator::run(const SimOptions& opt,
                                const TestCaseSpec& tests) const {
  bool fastMode = opt.engine == Engine::SSEac || opt.engine == Engine::SSErac;
  if (fastMode) {
    if (opt.coverage || opt.diagnosis) {
      throw ModelError(std::string(engineName(opt.engine)) +
                       " cannot perform error diagnosis or coverage "
                       "collection; set coverage=false and diagnosis=false");
    }
    if (!opt.collectList.empty() || !opt.customDiagnostics.empty()) {
      throw ModelError(std::string(engineName(opt.engine)) +
                       " cannot monitor signals or run custom diagnoses");
    }
    if (opt.stopOnDiagnostic) {
      throw ModelError(std::string(engineName(opt.engine)) +
                       " cannot stop on diagnostics (none are produced)");
    }
  }
  if (opt.optimize) {
    OptStats st;
    FlatModel optimized = optimizeModel(fm_, opt, &st);
    SimulationResult res = dispatch(optimized, opt, tests);
    res.optStats = st;
    return res;
  }
  return dispatch(fm_, opt, tests);
}

SimulationResult simulate(const Model& model, const SimOptions& opt,
                          const TestCaseSpec& tests) {
  return Simulator(model).run(opt, tests);
}

}  // namespace accmos
