#include "sim/simulator.h"

#include "actors/spec.h"
#include "codegen/accmos_engine.h"
#include "graph/flatten.h"
#include "interp/compiled.h"
#include "interp/interpreter.h"

namespace accmos {

Simulator::Simulator(const Model& model)
    : fm_(flatten(model, Registry::instance())) {
  validateFlatModel(fm_);
}

SimulationResult Simulator::run(const SimOptions& opt,
                                const TestCaseSpec& tests) const {
  bool fastMode = opt.engine == Engine::SSEac || opt.engine == Engine::SSErac;
  if (fastMode) {
    if (opt.coverage || opt.diagnosis) {
      throw ModelError(std::string(engineName(opt.engine)) +
                       " cannot perform error diagnosis or coverage "
                       "collection; set coverage=false and diagnosis=false");
    }
    if (!opt.collectList.empty() || !opt.customDiagnostics.empty()) {
      throw ModelError(std::string(engineName(opt.engine)) +
                       " cannot monitor signals or run custom diagnoses");
    }
    if (opt.stopOnDiagnostic) {
      throw ModelError(std::string(engineName(opt.engine)) +
                       " cannot stop on diagnostics (none are produced)");
    }
  }
  switch (opt.engine) {
    case Engine::AccMoS:
      return runAccMoS(fm_, opt, tests);
    case Engine::SSE:
      return runInterpreter(fm_, opt, tests);
    case Engine::SSEac:
      return runAccelerator(fm_, opt, tests);
    case Engine::SSErac:
      return runRapidAccelerator(fm_, opt, tests);
  }
  throw ModelError("unknown engine");
}

SimulationResult simulate(const Model& model, const SimOptions& opt,
                          const TestCaseSpec& tests) {
  return Simulator(model).run(opt, tests);
}

}  // namespace accmos
