#include "sim/result.h"

#include <sstream>

#include "sim/options.h"

namespace accmos {

const DiagRecord* SimulationResult::findDiag(const std::string& pathSubstr,
                                             DiagKind kind) const {
  for (const auto& rec : diagnostics) {
    if (rec.kind == kind &&
        rec.actorPath.find(pathSubstr) != std::string::npos) {
      return &rec;
    }
  }
  return nullptr;
}

std::string SimulationResult::summary() const {
  std::ostringstream os;
  os << "steps=" << stepsExecuted << " exec=" << execSeconds << "s";
  if (generateSeconds > 0.0 || compileSeconds > 0.0) {
    os << " gen=" << generateSeconds << "s compile=" << compileSeconds << "s";
  }
  if (loadSeconds > 0.0) os << " load=" << loadSeconds << "s";
  if (!execMode.empty()) os << " mode=" << execMode;
  if (hasCoverage) os << "\ncoverage: " << coverage.toString();
  os << "\ndiagnostics: " << diagnostics.size() << " kind(s)";
  for (const auto& rec : diagnostics) {
    os << "\n  [" << diagKindName(rec.kind) << "] " << rec.actorPath
       << " first@" << rec.firstStep << " x" << rec.count;
    if (!rec.message.empty()) os << " (" << rec.message << ")";
  }
  return os.str();
}

std::string_view engineName(Engine e) {
  switch (e) {
    case Engine::AccMoS: return "AccMoS";
    case Engine::SSE: return "SSE";
    case Engine::SSEac: return "SSEac";
    case Engine::SSErac: return "SSErac";
  }
  return "?";
}

std::string_view execModeName(ExecMode m) {
  switch (m) {
    case ExecMode::Dlopen: return "dlopen";
    case ExecMode::Process: return "process";
  }
  return "?";
}

std::string_view tierName(Tier t) {
  switch (t) {
    case Tier::Native: return "native";
    case Tier::Auto: return "auto";
    case Tier::Interp: return "interp";
  }
  return "?";
}

}  // namespace accmos
