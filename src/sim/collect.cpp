#include "sim/collect.h"

#include <algorithm>

namespace accmos {

std::vector<int> monitoredSignals(
    const FlatModel& fm, const std::vector<std::string>& collectList) {
  std::vector<int> out;
  auto add = [&](int sig) {
    if (std::find(out.begin(), out.end(), sig) == out.end()) {
      out.push_back(sig);
    }
  };
  for (const auto& fa : fm.actors) {
    bool listed = std::find(collectList.begin(), collectList.end(), fa.path) !=
                  collectList.end();
    if (listed) {
      for (int sig : fa.outputs) add(sig);
    }
    if (fa.type() == "Scope" || fa.type() == "Display") {
      for (int sig : fa.inputs) add(sig);
    }
  }
  return out;
}

}  // namespace accmos
