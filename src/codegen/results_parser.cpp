#include "codegen/results_parser.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <tuple>

namespace accmos {
namespace {

[[noreturn]] void fail(size_t lineNo, const std::string& msg) {
  throw ResultParseError("result protocol line " + std::to_string(lineNo) +
                         ": " + msg);
}

CovMetric metricFromName(size_t lineNo, const std::string& name) {
  for (CovMetric m : kAllCovMetrics) {
    if (covMetricName(m) == name) return m;
  }
  fail(lineNo, "unknown coverage metric '" + name + "'");
}

Value parseValue(std::istringstream& is, DataType type, int width,
                 size_t lineNo) {
  Value v(type, width);
  for (int i = 0; i < width; ++i) {
    std::string tok;
    if (!(is >> tok)) {
      fail(lineNo, "truncated value vector: expected " +
                       std::to_string(width) + " elements, got " +
                       std::to_string(i));
    }
    if (isFloatType(type)) {
      v.setF(i, std::strtod(tok.c_str(), nullptr));
    } else if (type == DataType::U64) {
      v.setI(i, static_cast<int64_t>(
                    std::strtoull(tok.c_str(), nullptr, 10)));
    } else {
      v.setI(i, std::strtoll(tok.c_str(), nullptr, 10));
    }
  }
  return v;
}

// Reads one packed ABI element back into a Value slot; the exact inverse
// of the emitter's packExpr(), so the binary path lands on the same bits
// the text path's %.17g/strtod round-trip produces.
void unpackInto(Value& v, int i, DataType type, uint64_t u) {
  if (isFloatType(type)) {
    double d;
    std::memcpy(&d, &u, 8);
    v.setF(i, d);
  } else {
    v.setI(i, static_cast<int64_t>(u));
  }
}

// Empty result with the per-model geometry both decoders start from.
SimulationResult makeSkeleton(const FlatModel& fm,
                              const CoveragePlan* covPlan,
                              const std::vector<int>& collectSignals) {
  SimulationResult result;
  if (covPlan != nullptr) {
    result.bitmaps = CoverageRecorder(*covPlan);
  }
  result.finalOutputs.resize(fm.rootOutports.size());
  result.collected.resize(collectSignals.size());
  for (size_t k = 0; k < collectSignals.size(); ++k) {
    const SignalInfo& sig = fm.signal(collectSignals[k]);
    result.collected[k].path = sig.name;
    result.collected[k].last = Value(sig.type, sig.width);
  }
  return result;
}

// Shared final ordering — like DiagnosticSink::sorted(). Both decoders
// build their raw lists in the same (actor-major, kind) emission order, so
// this stable sort yields the identical permutation.
void sortDiags(std::vector<DiagRecord>& diags) {
  std::sort(diags.begin(), diags.end(),
            [](const DiagRecord& a, const DiagRecord& b) {
              return std::tie(a.firstStep, a.actorPath) <
                     std::tie(b.firstStep, b.actorPath);
            });
}

DiagRecord customRecord(const FlatModel& fm, const CustomDiagnostic& cd,
                        uint64_t first, uint64_t count) {
  const FlatActor* fa = fm.findByPath(cd.actorPath);
  DiagRecord rec;
  rec.actorId = fa != nullptr ? fa->id : -1;
  rec.actorPath = cd.actorPath;
  rec.kind = DiagKind::Custom;
  rec.message = cd.name;
  rec.firstStep = first;
  rec.count = count;
  return rec;
}

}  // namespace

SimulationResult parseResults(const std::string& output, const FlatModel& fm,
                              const CoveragePlan* covPlan,
                              const DiagnosisPlan* diagPlan,
                              const std::vector<int>& collectSignals,
                              const std::vector<CustomDiagnostic>& custom) {
  (void)diagPlan;
  SimulationResult result = makeSkeleton(fm, covPlan, collectSignals);
  std::vector<DiagRecord> rawDiags;

  std::istringstream in(output);
  std::string line;
  size_t lineNo = 0;
  bool began = false;
  bool ended = false;
  while (std::getline(in, line)) {
    ++lineNo;
    if (line == "ACCMOS_RESULT_BEGIN") {
      began = true;
      continue;
    }
    if (!began) continue;  // program may print diagnostics text first
    if (line == "ACCMOS_RESULT_END") {
      ended = true;
      break;
    }
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "STEPS") {
      if (!(ls >> result.stepsExecuted)) fail(lineNo, "malformed STEPS");
    } else if (tag == "STOPPED_EARLY") {
      int v = 0;
      if (!(ls >> v)) fail(lineNo, "malformed STOPPED_EARLY");
      result.stoppedEarly = v != 0;
    } else if (tag == "TIMED_OUT") {
      int v = 0;
      if (!(ls >> v)) fail(lineNo, "malformed TIMED_OUT");
      result.timedOut = v != 0;
    } else if (tag == "EXEC_NS") {
      uint64_t ns = 0;
      if (!(ls >> ns)) fail(lineNo, "malformed EXEC_NS");
      result.execSeconds = static_cast<double>(ns) * 1e-9;
    } else if (tag == "COVMAP") {
      std::string metric;
      std::string bits;
      if (!(ls >> metric)) fail(lineNo, "COVMAP missing metric name");
      ls >> bits;  // may legitimately be empty (zero instrumented slots)
      if (covPlan == nullptr) continue;
      CovMetric m = metricFromName(lineNo, metric);
      auto& bm = result.bitmaps.bits(m);
      if (bits.size() != bm.size()) {
        fail(lineNo, "coverage bitmap size mismatch for '" + metric +
                         "': got " + std::to_string(bits.size()) +
                         ", plan has " + std::to_string(bm.size()));
      }
      for (size_t k = 0; k < bits.size(); ++k) bm[k] = bits[k] == '1' ? 1 : 0;
      result.hasCoverage = true;
    } else if (tag == "DIAG") {
      int actorId = 0;
      int kind = 0;
      uint64_t first = 0;
      uint64_t count = 0;
      if (!(ls >> actorId >> kind >> first >> count)) {
        fail(lineNo, "malformed DIAG record");
      }
      if (actorId < 0 || actorId >= static_cast<int>(fm.actors.size())) {
        fail(lineNo, "diagnostic references bad actor id " +
                         std::to_string(actorId));
      }
      if (kind < 0 || kind >= kNumDiagKinds) {
        fail(lineNo, "diagnostic references bad kind " +
                         std::to_string(kind));
      }
      DiagRecord rec;
      rec.actorId = actorId;
      rec.actorPath = fm.actor(actorId).path;
      rec.kind = static_cast<DiagKind>(kind);
      rec.firstStep = first;
      rec.count = count;
      rawDiags.push_back(rec);
    } else if (tag == "CUSTOM") {
      size_t idx = 0;
      uint64_t first = 0;
      uint64_t count = 0;
      if (!(ls >> idx >> first >> count)) {
        fail(lineNo, "malformed CUSTOM record");
      }
      if (idx >= custom.size()) {
        fail(lineNo, "custom diagnostic index " + std::to_string(idx) +
                         " out of range (have " +
                         std::to_string(custom.size()) + ")");
      }
      rawDiags.push_back(customRecord(fm, custom[idx], first, count));
    } else if (tag == "COLLECT") {
      size_t idx = 0;
      uint64_t count = 0;
      int width = 0;
      if (!(ls >> idx >> count >> width)) {
        fail(lineNo, "malformed COLLECT record");
      }
      if (idx >= result.collected.size()) {
        fail(lineNo, "collect index " + std::to_string(idx) +
                         " out of range (have " +
                         std::to_string(result.collected.size()) + ")");
      }
      const SignalInfo& sig = fm.signal(collectSignals[idx]);
      if (width != sig.width) {
        fail(lineNo, "collect width mismatch: got " + std::to_string(width) +
                         ", signal has " + std::to_string(sig.width));
      }
      result.collected[idx].count = count;
      result.collected[idx].last = parseValue(ls, sig.type, width, lineNo);
    } else if (tag == "OUT") {
      size_t idx = 0;
      int width = 0;
      if (!(ls >> idx >> width)) fail(lineNo, "malformed OUT record");
      if (idx >= result.finalOutputs.size()) {
        fail(lineNo, "output index " + std::to_string(idx) +
                         " out of range (have " +
                         std::to_string(result.finalOutputs.size()) + ")");
      }
      const FlatActor& fa = fm.actor(fm.rootOutports[idx]);
      const SignalInfo& sig = fm.signal(fa.inputs[0]);
      if (width != sig.width) {
        fail(lineNo, "output width mismatch: got " + std::to_string(width) +
                         ", signal has " + std::to_string(sig.width));
      }
      result.finalOutputs[idx] = parseValue(ls, sig.type, width, lineNo);
    } else if (!tag.empty()) {
      fail(lineNo, "unknown result tag '" + tag + "'");
    }
  }
  if (!began || !ended) {
    fail(lineNo, std::string(!began ? "ACCMOS_RESULT_BEGIN"
                                    : "ACCMOS_RESULT_END") +
                     " never seen — truncated result block:\n" +
                     output.substr(0, 2000));
  }
  sortDiags(rawDiags);
  result.diagnostics = std::move(rawDiags);
  return result;
}

SimulationResult decodeBinaryResults(
    const AccmosRunResult& res, const FlatModel& fm,
    const CoveragePlan* covPlan, const DiagnosisPlan* diagPlan,
    const std::vector<int>& collectSignals,
    const std::vector<CustomDiagnostic>& custom) {
  (void)diagPlan;
  SimulationResult result = makeSkeleton(fm, covPlan, collectSignals);
  std::vector<DiagRecord> rawDiags;

  result.stepsExecuted = res.stepsExecuted;
  result.stoppedEarly = res.stoppedEarly != 0;
  result.timedOut = res.timedOut != 0;
  result.execSeconds = static_cast<double>(res.execNs) * 1e-9;

  if (covPlan != nullptr) {
    // ABI cov index order (run_abi.h: actor, condition, decision, MC/DC)
    // matches kAllCovMetrics.
    for (int m = 0; m < 4; ++m) {
      auto& bm = result.bitmaps.bits(kAllCovMetrics[m]);
      if (res.covLen[m] != bm.size()) {
        throw ResultParseError(
            "binary result: coverage bitmap size mismatch for '" +
            std::string(covMetricName(kAllCovMetrics[m])) + "': got " +
            std::to_string(res.covLen[m]) + ", plan has " +
            std::to_string(bm.size()));
      }
      for (size_t k = 0; k < bm.size(); ++k) {
        bm[k] = res.cov[m][k] != 0 ? 1 : 0;
      }
    }
    result.hasCoverage = true;
  }

  for (uint64_t i = 0; i < res.diagCount; ++i) {
    const AccmosDiagRec& d = res.diags[i];
    if (d.actorId < 0 || d.actorId >= static_cast<int>(fm.actors.size())) {
      throw ResultParseError("binary result: diagnostic references bad "
                             "actor id " + std::to_string(d.actorId));
    }
    DiagRecord rec;
    rec.actorId = d.actorId;
    rec.actorPath = fm.actor(d.actorId).path;
    rec.kind = static_cast<DiagKind>(d.kind);
    rec.firstStep = d.firstStep;
    rec.count = d.count;
    rawDiags.push_back(rec);
  }
  for (uint64_t i = 0; i < res.customCount; ++i) {
    const AccmosCustomRec& c = res.customs[i];
    if (c.index >= custom.size()) {
      throw ResultParseError("binary result: custom diagnostic index " +
                             std::to_string(c.index) + " out of range");
    }
    rawDiags.push_back(customRecord(fm, custom[static_cast<size_t>(c.index)],
                                    c.firstStep, c.count));
  }

  size_t off = 0;
  for (size_t k = 0; k < collectSignals.size(); ++k) {
    const SignalInfo& sig = fm.signal(collectSignals[k]);
    result.collected[k].count = res.collectCounts[k];
    for (int i = 0; i < sig.width; ++i) {
      unpackInto(result.collected[k].last, i, sig.type,
                 res.collectVals[off + static_cast<size_t>(i)]);
    }
    off += static_cast<size_t>(sig.width);
  }

  off = 0;
  for (size_t k = 0; k < fm.rootOutports.size(); ++k) {
    const FlatActor& fa = fm.actor(fm.rootOutports[k]);
    const SignalInfo& sig = fm.signal(fa.inputs[0]);
    // In-place retype instead of constructing a fresh Value: this decoder
    // sits on the per-run hot path of batched campaigns, where an extra
    // allocation per outport is measurable.
    result.finalOutputs[k].resize(sig.type, sig.width);
    for (int i = 0; i < sig.width; ++i) {
      unpackInto(result.finalOutputs[k], i, sig.type,
                 res.outVals[off + static_cast<size_t>(i)]);
    }
    off += static_cast<size_t>(sig.width);
  }

  sortDiags(rawDiags);
  result.diagnostics = std::move(rawDiags);
  return result;
}

}  // namespace accmos
