#include "codegen/results_parser.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <tuple>

namespace accmos {
namespace {

CovMetric metricFromName(const std::string& name) {
  for (CovMetric m : kAllCovMetrics) {
    if (covMetricName(m) == name) return m;
  }
  throw ResultParseError("unknown coverage metric '" + name + "'");
}

Value parseValue(std::istringstream& is, DataType type, int width) {
  Value v(type, width);
  for (int i = 0; i < width; ++i) {
    std::string tok;
    if (!(is >> tok)) {
      throw ResultParseError("truncated value vector in result protocol");
    }
    if (isFloatType(type)) {
      v.setF(i, std::strtod(tok.c_str(), nullptr));
    } else if (type == DataType::U64) {
      v.setI(i, static_cast<int64_t>(
                    std::strtoull(tok.c_str(), nullptr, 10)));
    } else {
      v.setI(i, std::strtoll(tok.c_str(), nullptr, 10));
    }
  }
  return v;
}

}  // namespace

SimulationResult parseResults(const std::string& output, const FlatModel& fm,
                              const CoveragePlan* covPlan,
                              const DiagnosisPlan* diagPlan,
                              const std::vector<int>& collectSignals,
                              const std::vector<CustomDiagnostic>& custom) {
  (void)diagPlan;
  SimulationResult result;
  std::vector<DiagRecord> rawDiags;
  if (covPlan != nullptr) {
    result.bitmaps = CoverageRecorder(*covPlan);
  }
  result.finalOutputs.resize(fm.rootOutports.size());
  result.collected.resize(collectSignals.size());
  for (size_t k = 0; k < collectSignals.size(); ++k) {
    const SignalInfo& sig = fm.signal(collectSignals[k]);
    result.collected[k].path = sig.name;
    result.collected[k].last = Value(sig.type, sig.width);
  }

  std::istringstream in(output);
  std::string line;
  bool began = false;
  bool ended = false;
  while (std::getline(in, line)) {
    if (line == "ACCMOS_RESULT_BEGIN") {
      began = true;
      continue;
    }
    if (!began) continue;  // program may print diagnostics text first
    if (line == "ACCMOS_RESULT_END") {
      ended = true;
      break;
    }
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "STEPS") {
      ls >> result.stepsExecuted;
    } else if (tag == "STOPPED_EARLY") {
      int v = 0;
      ls >> v;
      result.stoppedEarly = v != 0;
    } else if (tag == "EXEC_NS") {
      uint64_t ns = 0;
      ls >> ns;
      result.execSeconds = static_cast<double>(ns) * 1e-9;
    } else if (tag == "COVMAP") {
      if (covPlan == nullptr) continue;
      std::string metric;
      std::string bits;
      ls >> metric >> bits;
      CovMetric m = metricFromName(metric);
      auto& bm = result.bitmaps.bits(m);
      if (bits.size() != bm.size()) {
        throw ResultParseError("coverage bitmap size mismatch for '" +
                               metric + "': got " +
                               std::to_string(bits.size()) + ", plan has " +
                               std::to_string(bm.size()));
      }
      for (size_t k = 0; k < bits.size(); ++k) bm[k] = bits[k] == '1' ? 1 : 0;
      result.hasCoverage = true;
    } else if (tag == "DIAG") {
      int actorId = 0;
      int kind = 0;
      uint64_t first = 0;
      uint64_t count = 0;
      ls >> actorId >> kind >> first >> count;
      if (actorId < 0 || actorId >= static_cast<int>(fm.actors.size())) {
        throw ResultParseError("diagnostic references bad actor id " +
                               std::to_string(actorId));
      }
      DiagRecord rec;
      rec.actorId = actorId;
      rec.actorPath = fm.actor(actorId).path;
      rec.kind = static_cast<DiagKind>(kind);
      rec.firstStep = first;
      rec.count = count;
      rawDiags.push_back(rec);
    } else if (tag == "CUSTOM") {
      size_t idx = 0;
      uint64_t first = 0;
      uint64_t count = 0;
      ls >> idx >> first >> count;
      if (idx >= custom.size()) {
        throw ResultParseError("custom diagnostic index out of range");
      }
      const FlatActor* fa = fm.findByPath(custom[idx].actorPath);
      DiagRecord rec;
      rec.actorId = fa != nullptr ? fa->id : -1;
      rec.actorPath = custom[idx].actorPath;
      rec.kind = DiagKind::Custom;
      rec.message = custom[idx].name;
      rec.firstStep = first;
      rec.count = count;
      rawDiags.push_back(rec);
    } else if (tag == "COLLECT") {
      size_t idx = 0;
      uint64_t count = 0;
      int width = 0;
      ls >> idx >> count >> width;
      if (idx >= result.collected.size()) {
        throw ResultParseError("collect index out of range");
      }
      result.collected[idx].count = count;
      result.collected[idx].last =
          parseValue(ls, fm.signal(collectSignals[idx]).type, width);
    } else if (tag == "OUT") {
      size_t idx = 0;
      int width = 0;
      ls >> idx >> width;
      if (idx >= result.finalOutputs.size()) {
        throw ResultParseError("output index out of range");
      }
      const FlatActor& fa = fm.actor(fm.rootOutports[idx]);
      result.finalOutputs[idx] =
          parseValue(ls, fm.signal(fa.inputs[0]).type, width);
    }
  }
  if (!began || !ended) {
    throw ResultParseError(
        "generated binary did not produce a complete result block:\n" +
        output.substr(0, 2000));
  }
  // Sort diagnostics like DiagnosticSink::sorted().
  std::sort(rawDiags.begin(), rawDiags.end(),
            [](const DiagRecord& a, const DiagRecord& b) {
              return std::tie(a.firstStep, a.actorPath) <
                     std::tie(b.firstStep, b.actorPath);
            });
  result.diagnostics = std::move(rawDiags);
  return result;
}

}  // namespace accmos
