#include "codegen/emitter.h"

#include <cctype>

#include "actors/common.h"
#include "codegen/runtime_preamble.h"
#include "sim/collect.h"

namespace accmos {
namespace {

std::string cpp(DataType t) { return std::string(dataTypeCpp(t)); }

// Packs one element for the binary result ABI: float-typed signals cross
// the boundary as IEEE-754 double bits, integer-typed ones as
// two's-complement int64 — pre-widened exactly like the text protocol, so
// the binary decoder reproduces the text parser bit for bit.
std::string packExpr(DataType t, const std::string& elem) {
  if (isFloatType(t)) return "accmos_pack_f((double)" + elem + ")";
  if (t == DataType::U64) return "(uint64_t)" + elem;
  return "(uint64_t)(int64_t)" + elem;
}

// printf conversion for one element of a signal of type t.
std::string printfFor(DataType t, const std::string& elem) {
  if (isFloatType(t)) return "printf(\" %.17g\", (double)" + elem + ");";
  if (t == DataType::U64) {
    return "printf(\" %llu\", (unsigned long long)" + elem + ");";
  }
  return "printf(\" %lld\", (long long)" + elem + ");";
}

// Reads one element widened to double (u64 goes through unsigned).
std::string asDoubleExpr(DataType t, const std::string& elem) {
  if (t == DataType::U64) return "(double)(uint64_t)" + elem;
  return "(double)" + elem;
}

}  // namespace

Emitter::Emitter(const FlatModel& fm, const SimOptions& opt,
                 const TestCaseSpec& tests, const CoveragePlan* covPlan,
                 const DiagnosisPlan* diagPlan)
    : fm_(fm),
      opt_(opt),
      tests_(tests),
      covPlan_(covPlan),
      diagPlan_(diagPlan) {
  collectSignals_ = monitoredSignals(fm_, opt_.collectList);
}

std::string Emitter::sanitize(const std::string& name) {
  return sanitizeIdent(name);
}

// ---- EmitSink -------------------------------------------------------------

void Emitter::line(const std::string& stmt) { body_.push_back(stmt); }

void Emitter::updateLine(const std::string& stmt) { upd_.push_back(stmt); }

void Emitter::updateLinePre(const std::string& stmt) {
  updPre_.push_back(stmt);
}

bool Emitter::diagOn(DiagKind kind) const {
  return diagPlan_ != nullptr && current_ != nullptr &&
         diagPlan_->enabled(current_->id, kind);
}

std::string Emitter::freshVar(const std::string& hint) {
  return hint + std::to_string(varCounter_++);
}

std::string Emitter::makeDiagFunction(
    const std::vector<std::pair<DiagKind, std::string>>& flags) {
  // One generated diagnostic function per actor (paper Fig. 4/Fig. 5:
  // "the instrumented code involves the function calls at specific
  // locations, while the actual implementation is defined elsewhere").
  std::string fname =
      "diagnose_" + sanitize(current_->path) + "_" +
      std::to_string(current_->id) + "_" + std::to_string(varCounter_++);
  std::ostringstream def;
  def << "void " << fname << "(uint64_t step";
  for (size_t k = 0; k < flags.size(); ++k) def << ", int f" << k;
  def << ") {\n";
  for (size_t k = 0; k < flags.size(); ++k) {
    def << "  if (f" << k << ") accmos_diag(" << current_->id << ", "
        << static_cast<int>(flags[k].first) << ", step);  // "
        << diagKindName(flags[k].first) << "\n";
  }
  def << "}\n";
  diagFuncs_.push_back(def.str());
  std::string call = fname + "(step";
  for (const auto& [kind, expr] : flags) call += ", " + expr;
  call += ");";
  return call;
}

void Emitter::diagCall(
    const std::vector<std::pair<DiagKind, std::string>>& flags) {
  if (flags.empty() || diagPlan_ == nullptr) return;
  body_.push_back(makeDiagFunction(flags));
}

void Emitter::diagCallInUpdate(
    const std::vector<std::pair<DiagKind, std::string>>& flags) {
  if (flags.empty() || diagPlan_ == nullptr) return;
  upd_.push_back(makeDiagFunction(flags));
}

std::string Emitter::covDecisionStmt(const std::string& outcomeExpr) {
  if (covPlan_ == nullptr) return ";";
  const ActorCovInfo& info = covPlan_->info(current_->id);
  if (info.decisionBase < 0) return ";";
  return "accmos_cov_dec[" + std::to_string(info.decisionBase) + " + (" +
         outcomeExpr + ")] = 1;";
}

std::string Emitter::covConditionStmt(int condIdx,
                                      const std::string& boolExpr) {
  if (covPlan_ == nullptr) return ";";
  const ActorCovInfo& info = covPlan_->info(current_->id);
  if (info.conditionBase < 0) return ";";
  return "accmos_cov_cond[" +
         std::to_string(info.conditionBase + 2 * condIdx) + " + ((" +
         boolExpr + ") ? 0 : 1)] = 1;";
}

std::string Emitter::covMcdcStmt(int condIdx, const std::string& valExpr) {
  if (covPlan_ == nullptr) return "";
  const ActorCovInfo& info = covPlan_->info(current_->id);
  if (info.mcdcBase < 0) return "";
  return "accmos_cov_mcdc[" + std::to_string(info.mcdcBase + 2 * condIdx) +
         " + ((" + valExpr + ") ? 0 : 1)] = 1;";
}

// ---- sections --------------------------------------------------------------

void Emitter::emitConstTables(std::ostringstream& os) {
  // Explicit stimulus sequences are immutable, so they stay at file scope,
  // shared by every model-state instance.
  bool any = false;
  for (size_t k = 0; k < fm_.rootInports.size(); ++k) {
    const PortStimulus& stim = tests_.port(static_cast<int>(k));
    if (stim.sequence.empty()) continue;
    os << "static const double tc_seq_" << k << "[" << stim.sequence.size()
       << "] = {";
    for (size_t i = 0; i < stim.sequence.size(); ++i) {
      if (i > 0) os << ", ";
      os << fmtD(stim.sequence[i]);
    }
    os << "};\n";
    any = true;
  }
  if (any) os << "\n";
}

void Emitter::emitDeclarations(std::ostringstream& os) {
  os << "  // ---- model data --------------------------------------------\n";
  for (const auto& sig : fm_.signals) {
    os << "  " << cpp(sig.type) << " s" << (&sig - fm_.signals.data())
       << "[" << sig.width << "];  // " << sig.name << "\n";
  }
  const Registry& reg = Registry::instance();
  for (const auto& fa : fm_.actors) {
    auto st = reg.get(fa).state(fm_, fa);
    if (st) {
      os << "  " << cpp(st->type) << " st" << fa.id << "[" << st->width
         << "];  // state of " << fa.path << "\n";
    }
  }
  for (size_t d = 0; d < fm_.dataStores.size(); ++d) {
    const auto& ds = fm_.dataStores[d];
    os << "  " << cpp(ds.type) << " "
       << dataStoreSymbol(static_cast<int>(d), ds.name) << "[" << ds.width
       << "];  // data store '" << ds.name << "'\n";
  }
  // Random test-case stream states (sequence-driven ports read the shared
  // const tables instead).
  for (size_t k = 0; k < fm_.rootInports.size(); ++k) {
    if (tests_.port(static_cast<int>(k)).sequence.empty()) {
      os << "  uint64_t tc_state_" << k << ";\n";
    }
  }
  // Coverage bitmaps.
  if (covPlan_ != nullptr) {
    os << "  uint8_t accmos_cov_actor["
       << std::max(1, covPlan_->totalSlots(CovMetric::Actor)) << "];\n";
    os << "  uint8_t accmos_cov_cond["
       << std::max(1, covPlan_->totalSlots(CovMetric::Condition)) << "];\n";
    os << "  uint8_t accmos_cov_dec["
       << std::max(1, covPlan_->totalSlots(CovMetric::Decision)) << "];\n";
    os << "  uint8_t accmos_cov_mcdc["
       << std::max(1, covPlan_->totalSlots(CovMetric::MCDC)) << "];\n";
  }
  // Signal monitor buffers (paper Fig. 3 outputCollect repository).
  for (size_t k = 0; k < collectSignals_.size(); ++k) {
    const SignalInfo& sig =
        fm_.signal(collectSignals_[k]);
    os << "  " << cpp(sig.type) << " col" << k << "[" << sig.width
       << "]; uint64_t colcnt" << k << ";\n";
  }
  // Custom diagnosis slots.
  for (size_t k = 0; k < opt_.customDiagnostics.size(); ++k) {
    os << "  double cd_prev_" << k << "; int cd_has_" << k
       << "; uint64_t cd_first_" << k << "; uint64_t cd_count_" << k
       << ";\n";
  }
  os << "  int accmos_stop;\n";
  os << "  int accmos_diag_fired;\n";
  os << "\n";
}

void Emitter::emitDiagRuntime(std::ostringstream& os) {
  os << "  uint64_t accmos_diag_first[" << fm_.actors.size() << " * "
     << kNumDiagKinds << "];\n";
  os << "  uint64_t accmos_diag_count[" << fm_.actors.size() << " * "
     << kNumDiagKinds << "];\n";
  os << "  void accmos_diag(int actor, int kind, uint64_t step) {\n"
     << "    int idx = actor * " << kNumDiagKinds << " + kind;\n"
     << "    if (accmos_diag_count[idx] == 0) accmos_diag_first[idx] = "
        "step;\n"
     << "    accmos_diag_count[idx] += 1;\n"
     << "    accmos_diag_fired = 1;\n"
     << "  }\n\n";
}

void Emitter::emitFillInputs(std::ostringstream& os) {
  os << "void accmos_fill_inputs(uint64_t step) {\n";
  if (fm_.rootInports.empty()) os << "  (void)step;\n";
  for (size_t k = 0; k < fm_.rootInports.size(); ++k) {
    const FlatActor& fa = fm_.actor(fm_.rootInports[k]);
    const SignalInfo& sig = fm_.signal(fa.outputs[0]);
    const PortStimulus& stim = tests_.port(static_cast<int>(k));
    os << "  // Inport " << fa.path << "\n";
    os << "  for (int i = 0; i < " << sig.width << "; ++i) {\n";
    if (stim.sequence.empty()) {
      os << "    double v = " << fmtD(stim.min) << " + accmos_sm64_unit(&tc_state_"
         << k << ") * (" << fmtD(stim.max) << " - " << fmtD(stim.min)
         << ");\n";
    } else {
      os << "    double v = tc_seq_" << k << "[step % "
         << stim.sequence.size() << "ULL];\n";
    }
    os << "    " << storeFromDouble(sig.type,
                                    "s" + std::to_string(fa.outputs[0]) +
                                        "[i]",
                                    "v")
       << "\n";
    os << "  }\n";
  }
  os << "}\n\n";
}

std::string Emitter::storeFromDouble(DataType t, const std::string& dst,
                                     const std::string& expr) const {
  if (t == DataType::F64) return dst + " = (" + expr + ");";
  if (t == DataType::F32) return dst + " = (float)(" + expr + ");";
  return dst + " = (" + cpp(t) + ")accmos_store_" +
         std::string(dataTypeName(t)) + "((double)(" + expr + ")).value;";
}

void Emitter::emitModelInit(std::ostringstream& os) {
  const Registry& reg = Registry::instance();
  os << "void Model_Init(uint64_t accmos_seed) {\n";
  os << "  (void)accmos_seed;\n";
  for (const auto& fa : fm_.actors) {
    auto st = reg.get(fa).state(fm_, fa);
    if (!st) continue;
    for (int i = 0; i < st->width; ++i) {
      double init =
          st->initial.empty()
              ? 0.0
              : st->initial[std::min(st->initial.size() - 1,
                                     static_cast<size_t>(i))];
      os << "  "
         << storeFromDouble(st->type,
                            "st" + std::to_string(fa.id) + "[" +
                                std::to_string(i) + "]",
                            fmtD(init))
         << "\n";
    }
  }
  for (size_t d = 0; d < fm_.dataStores.size(); ++d) {
    const auto& ds = fm_.dataStores[d];
    os << "  for (int i = 0; i < " << ds.width << "; ++i) "
       << storeFromDouble(
              ds.type,
              dataStoreSymbol(static_cast<int>(d), ds.name) + "[i]",
              fmtD(ds.initial))
       << "\n";
  }
  for (size_t k = 0; k < fm_.rootInports.size(); ++k) {
    if (tests_.port(static_cast<int>(k)).sequence.empty()) {
      os << "  tc_state_" << k << " = accmos_portseed(accmos_seed, "
         << k << ");\n";
    }
  }
  os << "}\n\n";
}

void Emitter::emitModelExe(std::ostringstream& os) {
  os << "void Model_Exe(uint64_t step) {\n";
  os << "  (void)step;\n";
  os << evalSection_.str();
  os << "  // ---- state update phase ----\n";
  os << updateSection_.str();
  // Signal monitor (paper Fig. 3).
  for (size_t k = 0; k < collectSignals_.size(); ++k) {
    os << "  memcpy(col" << k << ", s" << collectSignals_[k] << ", sizeof(col"
       << k << ")); colcnt" << k << " += 1;\n";
  }
  // Custom signal diagnoses (paper §3.2.B).
  for (size_t k = 0; k < opt_.customDiagnostics.size(); ++k) {
    const CustomDiagnostic& cd = opt_.customDiagnostics[k];
    const FlatActor* fa = fm_.findByPath(cd.actorPath);
    if (fa == nullptr || fa->outputs.empty()) continue;
    const SignalInfo& sig = fm_.signal(fa->outputs[0]);
    os << "  { double cur = "
       << asDoubleExpr(sig.type, "s" + std::to_string(fa->outputs[0]) + "[0]")
       << ";\n    double prev = cd_has_" << k << " ? cd_prev_" << k
       << " : 0.0; (void)prev;\n    int fire = 0;\n";
    switch (cd.kind) {
      case CustomDiagnostic::Kind::Range:
        os << "    fire = (cur < " << fmtD(cd.minValue) << " || cur > "
           << fmtD(cd.maxValue) << ");\n";
        break;
      case CustomDiagnostic::Kind::SuddenChange:
        os << "    fire = cd_has_" << k << " && fabs(cur - prev) > "
           << fmtD(cd.maxDelta) << ";\n";
        break;
      case CustomDiagnostic::Kind::Expression:
        if (!cd.cppCondition.empty()) {
          os << "    fire = (" << cd.cppCondition << ");\n";
        }
        break;
    }
    os << "    if (fire) { if (cd_count_" << k << " == 0) cd_first_" << k
       << " = step; cd_count_" << k << " += 1; accmos_diag_fired = 1; }\n"
       << "    cd_prev_" << k << " = cur; cd_has_" << k << " = 1; }\n";
  }
  os << "}\n\n";
}

void Emitter::emitSimLoop(std::ostringstream& os) {
  os << "  // One full simulation on this state instance. Returns the steps\n"
     << "  // executed; the loop's wall time lands in *execNs.\n"
     << "  uint64_t accmos_sim_run(uint64_t maxSteps, double budget,\n"
     << "                          uint64_t seed, int* stoppedEarly,\n"
     << "                          unsigned long long* execNs) {\n"
     << "    Model_Init(seed);\n"
     << "    int stopped = 0;\n"
     << "    auto t0 = std::chrono::steady_clock::now();\n"
     << "    uint64_t step = 0;\n"
     << "    for (; step < maxSteps; ++step) {\n"
     << "      accmos_fill_inputs(step);\n"
     << "      Model_Exe(step);\n"
     << "      if (accmos_stop) { ++step; stopped = 1; break; }\n";
  if (opt_.stopOnDiagnostic) {
    os << "      if (accmos_diag_fired) { ++step; stopped = 1; break; }\n";
  }
  os << "      if (budget > 0.0 && (step & 1023) == 1023 &&\n"
     << "          std::chrono::duration<double>(std::chrono::steady_clock"
        "::now() - t0).count() >= budget) { ++step; break; }\n"
     << "    }\n"
     << "    auto t1 = std::chrono::steady_clock::now();\n"
     << "    *execNs = (unsigned long long)\n"
     << "        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - "
        "t0).count();\n"
     << "    *stoppedEarly = stopped;\n"
     << "    return step;\n"
     << "  }\n";
}

void Emitter::emitAbi(std::ostringstream& os) {
  const int covLen[4] = {
      covPlan_ != nullptr ? covPlan_->totalSlots(CovMetric::Actor) : 0,
      covPlan_ != nullptr ? covPlan_->totalSlots(CovMetric::Condition) : 0,
      covPlan_ != nullptr ? covPlan_->totalSlots(CovMetric::Decision) : 0,
      covPlan_ != nullptr ? covPlan_->totalSlots(CovMetric::MCDC) : 0};
  const char* covArr[4] = {"accmos_cov_actor", "accmos_cov_cond",
                           "accmos_cov_dec", "accmos_cov_mcdc"};
  size_t collectValsLen = 0;
  for (int sid : collectSignals_) {
    collectValsLen += static_cast<size_t>(fm_.signal(sid).width);
  }
  size_t outValsLen = 0;
  for (int oid : fm_.rootOutports) {
    outValsLen +=
        static_cast<size_t>(fm_.signal(fm_.actor(oid).inputs[0]).width);
  }
  const size_t numActors = fm_.actors.size();
  const size_t numCustom = opt_.customDiagnostics.size();

  os << "// ---- in-process execution ABI (see run_abi.h) -----------------\n"
     << "extern \"C\" int accmos_model_info(AccmosModelInfo* info) {\n"
     << "  if (!info || info->structSize != "
        "(uint32_t)sizeof(AccmosModelInfo)) return ACCMOS_ABI_EARG;\n"
     << "  info->abiVersion = ACCMOS_ABI_VERSION;\n";
  for (int m = 0; m < 4; ++m) {
    os << "  info->covLen[" << m << "] = " << covLen[m] << "ULL;\n";
  }
  os << "  info->numActors = " << numActors << "ULL;\n"
     << "  info->numDiagKinds = " << kNumDiagKinds << "ULL;\n"
     << "  info->numCustom = " << numCustom << "ULL;\n"
     << "  info->numCollect = " << collectSignals_.size() << "ULL;\n"
     << "  info->collectValsLen = " << collectValsLen << "ULL;\n"
     << "  info->outValsLen = " << outValsLen << "ULL;\n"
     << "  return ACCMOS_ABI_OK;\n"
     << "}\n\n";

  os << "extern \"C\" int accmos_run(const AccmosRunArgs* args, "
        "AccmosRunResult* res) {\n"
     << "  if (!args || !res ||\n"
     << "      args->structSize != (uint32_t)sizeof(AccmosRunArgs) ||\n"
     << "      res->structSize != (uint32_t)sizeof(AccmosRunResult)) "
        "return ACCMOS_ABI_EARG;\n"
     << "  if (args->abiVersion != ACCMOS_ABI_VERSION ||\n"
     << "      res->abiVersion != ACCMOS_ABI_VERSION) "
        "return ACCMOS_ABI_EVERSION;\n";
  for (int m = 0; m < 4; ++m) {
    os << "  if (res->covLen[" << m << "] != " << covLen[m] << "ULL";
    if (covLen[m] > 0) os << " || res->cov[" << m << "] == 0";
    os << ") return ACCMOS_ABI_EBUFFER;\n";
  }
  if (diagPlan_ != nullptr) {
    os << "  if (res->diagCap < " << numActors * kNumDiagKinds
       << "ULL || res->diags == 0) return ACCMOS_ABI_EBUFFER;\n";
  }
  if (numCustom > 0) {
    os << "  if (res->customCap < " << numCustom
       << "ULL || res->customs == 0) return ACCMOS_ABI_EBUFFER;\n";
  }
  os << "  if (res->numCollect != " << collectSignals_.size()
     << "ULL || res->collectValsLen != " << collectValsLen
     << "ULL || res->outValsLen != " << outValsLen
     << "ULL) return ACCMOS_ABI_EBUFFER;\n";
  if (!collectSignals_.empty()) {
    os << "  if (res->collectCounts == 0 || res->collectVals == 0) "
          "return ACCMOS_ABI_EBUFFER;\n";
  }
  if (outValsLen > 0) {
    os << "  if (res->outVals == 0) return ACCMOS_ABI_EBUFFER;\n";
  }
  os << "  accmos_model* M = new (std::nothrow) accmos_model();\n"
     << "  if (!M) return ACCMOS_ABI_EALLOC;\n"
     << "  int stopped = 0;\n"
     << "  unsigned long long ns = 0;\n"
     << "  res->stepsExecuted = M->accmos_sim_run(args->maxSteps, "
        "args->timeBudgetSec,\n"
     << "                                         args->seed, &stopped, "
        "&ns);\n"
     << "  res->stoppedEarly = (uint32_t)stopped;\n"
     << "  res->execNs = ns;\n";
  for (int m = 0; m < 4; ++m) {
    if (covLen[m] > 0) {
      os << "  memcpy(res->cov[" << m << "], M->" << covArr[m] << ", "
         << covLen[m] << ");\n";
    }
  }
  if (diagPlan_ != nullptr) {
    os << "  uint64_t nd = 0;\n"
       << "  for (int a = 0; a < " << numActors << "; ++a)\n"
       << "    for (int k = 0; k < " << kNumDiagKinds << "; ++k) {\n"
       << "      uint64_t c = M->accmos_diag_count[a * " << kNumDiagKinds
       << " + k];\n"
       << "      if (c) { res->diags[nd].actorId = a; "
          "res->diags[nd].kind = k;\n"
       << "        res->diags[nd].firstStep = M->accmos_diag_first[a * "
       << kNumDiagKinds << " + k];\n"
       << "        res->diags[nd].count = c; ++nd; }\n"
       << "    }\n"
       << "  res->diagCount = nd;\n";
  } else {
    os << "  res->diagCount = 0;\n";
  }
  if (numCustom > 0) {
    os << "  uint64_t nc = 0;\n";
    for (size_t k = 0; k < numCustom; ++k) {
      os << "  if (M->cd_count_" << k << ") { res->customs[nc].index = " << k
         << "ULL; res->customs[nc].firstStep = M->cd_first_" << k
         << "; res->customs[nc].count = M->cd_count_" << k << "; ++nc; }\n";
    }
    os << "  res->customCount = nc;\n";
  } else {
    os << "  res->customCount = 0;\n";
  }
  size_t off = 0;
  for (size_t k = 0; k < collectSignals_.size(); ++k) {
    const SignalInfo& sig = fm_.signal(collectSignals_[k]);
    os << "  res->collectCounts[" << k << "] = M->colcnt" << k << ";\n"
       << "  for (int i = 0; i < " << sig.width << "; ++i) res->collectVals["
       << off << " + i] = "
       << packExpr(sig.type, "M->col" + std::to_string(k) + "[i]") << ";\n";
    off += static_cast<size_t>(sig.width);
  }
  off = 0;
  for (size_t k = 0; k < fm_.rootOutports.size(); ++k) {
    const FlatActor& fa = fm_.actor(fm_.rootOutports[k]);
    const SignalInfo& sig = fm_.signal(fa.inputs[0]);
    os << "  for (int i = 0; i < " << sig.width << "; ++i) res->outVals["
       << off << " + i] = "
       << packExpr(sig.type, "M->s" + std::to_string(fa.inputs[0]) + "[i]")
       << ";\n";
    off += static_cast<size_t>(sig.width);
  }
  os << "  delete M;\n"
     << "  return ACCMOS_ABI_OK;\n"
     << "}\n\n";
}

void Emitter::emitMain(std::ostringstream& os) {
  os << "int main(int argc, char* argv[]) {\n"
     << "  uint64_t maxSteps = " << opt_.maxSteps << "ULL;\n"
     << "  double budget = " << fmtD(opt_.timeBudgetSec) << ";\n"
     << "  uint64_t seed = " << tests_.seed << "ULL;\n"
     << "  if (argc > 1) maxSteps = strtoull(argv[1], 0, 10);\n"
     << "  if (argc > 2) budget = atof(argv[2]);\n"
     << "  if (argc > 3) seed = strtoull(argv[3], 0, 10);\n"
     << "  accmos_model* Mp = new accmos_model();\n"
     << "  accmos_model& M = *Mp;\n"
     << "  int stoppedEarly = 0;\n"
     << "  unsigned long long ns = 0;\n"
     << "  uint64_t step = M.accmos_sim_run(maxSteps, budget, seed, "
        "&stoppedEarly, &ns);\n"
     << "  // ---- result protocol ----\n"
     << "  printf(\"ACCMOS_RESULT_BEGIN\\n\");\n"
     << "  printf(\"STEPS %llu\\n\", (unsigned long long)step);\n"
     << "  printf(\"STOPPED_EARLY %d\\n\", stoppedEarly);\n"
     << "  printf(\"EXEC_NS %llu\\n\", ns);\n";
  if (covPlan_ != nullptr) {
    struct MapInfo {
      const char* name;
      const char* arr;
      int total;
    };
    const MapInfo maps[] = {
        {"actor", "accmos_cov_actor", covPlan_->totalSlots(CovMetric::Actor)},
        {"condition", "accmos_cov_cond",
         covPlan_->totalSlots(CovMetric::Condition)},
        {"decision", "accmos_cov_dec",
         covPlan_->totalSlots(CovMetric::Decision)},
        {"mcdc", "accmos_cov_mcdc", covPlan_->totalSlots(CovMetric::MCDC)},
    };
    for (const auto& m : maps) {
      os << "  printf(\"COVMAP " << m.name << " \");\n"
         << "  for (int i = 0; i < " << m.total << "; ++i) putchar(M."
         << m.arr << "[i] ? '1' : '0');\n"
         << "  putchar('\\n');\n";
    }
  }
  if (diagPlan_ != nullptr) {
    os << "  for (int a = 0; a < " << fm_.actors.size() << "; ++a)\n"
       << "    for (int k = 0; k < " << kNumDiagKinds << "; ++k) {\n"
       << "      uint64_t c = M.accmos_diag_count[a * " << kNumDiagKinds
       << " + k];\n"
       << "      if (c) printf(\"DIAG %d %d %llu %llu\\n\", a, k,\n"
       << "                    (unsigned long long)M.accmos_diag_first[a * "
       << kNumDiagKinds << " + k], (unsigned long long)c);\n"
       << "    }\n";
  }
  for (size_t k = 0; k < opt_.customDiagnostics.size(); ++k) {
    os << "  if (M.cd_count_" << k << ") printf(\"CUSTOM " << k
       << " %llu %llu\\n\", (unsigned long long)M.cd_first_" << k
       << ", (unsigned long long)M.cd_count_" << k << ");\n";
  }
  for (size_t k = 0; k < collectSignals_.size(); ++k) {
    const SignalInfo& sig = fm_.signal(collectSignals_[k]);
    os << "  printf(\"COLLECT " << k << " %llu " << sig.width
       << "\", (unsigned long long)M.colcnt" << k << ");\n"
       << "  for (int i = 0; i < " << sig.width << "; ++i) "
       << printfFor(sig.type, "M.col" + std::to_string(k) + "[i]") << "\n"
       << "  putchar('\\n');\n";
  }
  for (size_t k = 0; k < fm_.rootOutports.size(); ++k) {
    const FlatActor& fa = fm_.actor(fm_.rootOutports[k]);
    const SignalInfo& sig = fm_.signal(fa.inputs[0]);
    os << "  printf(\"OUT " << k << " " << sig.width << "\");\n"
       << "  for (int i = 0; i < " << sig.width << "; ++i) "
       << printfFor(sig.type, "M.s" + std::to_string(fa.inputs[0]) + "[i]")
       << "\n"
       << "  putchar('\\n');\n";
  }
  os << "  printf(\"ACCMOS_RESULT_END\\n\");\n"
     << "  delete Mp;\n"
     << "  return 0;\n"
     << "}\n";
}

std::string Emitter::generate() {
  const Registry& reg = Registry::instance();

  // Pass 1: expand actor templates in execution order (Algorithm 1),
  // collecting eval/update code and diagnostic functions.
  for (int id : fm_.schedule) {
    const FlatActor& fa = fm_.actors[static_cast<size_t>(id)];
    current_ = &fa;
    body_.clear();
    upd_.clear();
    updPre_.clear();

    EmitContext ctx(fm_, fa, *this);
    reg.get(fa).emit(ctx);

    // Generic instrumentation appended by the pass: actor coverage
    // ("actorBitmap[actorID] = 1" in the paper).
    if (covPlan_ != nullptr && covPlan_->info(id).actorSlot >= 0) {
      body_.push_back("accmos_cov_actor[" +
                      std::to_string(covPlan_->info(id).actorSlot) +
                      "] = 1;");
    }

    std::string guard;
    if (fa.enableSignal >= 0) {
      guard = "if (s" + std::to_string(fa.enableSignal) + "[0] != 0) ";
    }
    evalSection_ << "  // -- " << fa.path << " (" << fa.type() << ")\n";
    if (!body_.empty()) {
      evalSection_ << "  " << guard << "{\n";
      for (const auto& l : body_) evalSection_ << "  " << l << "\n";
      evalSection_ << "  }\n";
    }
    if (!upd_.empty() || !updPre_.empty()) {
      updateSection_ << "  // -- update " << fa.path << "\n";
      updateSection_ << "  " << guard << "{\n";
      for (const auto& l : updPre_) updateSection_ << "  " << l << "\n";
      for (const auto& l : upd_) updateSection_ << "  " << l << "\n";
      updateSection_ << "  }\n";
    }
  }
  current_ = nullptr;

  // Pass 2: compose the program (paper Fig. 5). All mutable state and the
  // model functions sit inside `struct accmos_model`: unqualified member
  // references keep the emitted actor code textually identical to the old
  // file-scope form, while `new accmos_model()` gives every run — the
  // standalone main() or a concurrent accmos_run() ABI call — a private
  // zero-initialized state instance.
  std::ostringstream os;
  os << "// Generated by AccMoS for model '" << fm_.modelName << "'\n";
  os << runtimePreamble();
  os << runAbiText();
  emitConstTables(os);
  // The anonymous namespace is load-bearing: it gives the struct (and the
  // statics inside its inline member functions) internal linkage. Without
  // it the actor templates' function-local tables become STB_GNU_UNIQUE
  // symbols, and a process that dlopens several generated libraries would
  // silently resolve them all to the first library's data.
  os << "namespace {\n"
     << "struct accmos_model {\n";
  emitDiagRuntime(os);
  emitDeclarations(os);
  for (const auto& fn : diagFuncs_) os << fn << "\n";
  emitFillInputs(os);
  emitModelInit(os);
  emitModelExe(os);
  emitSimLoop(os);
  os << "};\n"
     << "}  // namespace\n\n";
  emitAbi(os);
  emitMain(os);
  return os.str();
}

}  // namespace accmos
