#include "codegen/emitter.h"

#include <cctype>
#include <cstdlib>

#include "actors/common.h"
#include "codegen/runtime_preamble.h"
#include "sim/collect.h"

namespace accmos {
namespace {

std::string cpp(DataType t) { return std::string(dataTypeCpp(t)); }

// Packs one element for the binary result ABI: float-typed signals cross
// the boundary as IEEE-754 double bits, integer-typed ones as
// two's-complement int64 — pre-widened exactly like the text protocol, so
// the binary decoder reproduces the text parser bit for bit.
std::string packExpr(DataType t, const std::string& elem) {
  if (isFloatType(t)) return "accmos_pack_f((double)" + elem + ")";
  if (t == DataType::U64) return "(uint64_t)" + elem;
  return "(uint64_t)(int64_t)" + elem;
}

// printf conversion for one element of a signal of type t.
std::string printfFor(DataType t, const std::string& elem) {
  if (isFloatType(t)) return "printf(\" %.17g\", (double)" + elem + ");";
  if (t == DataType::U64) {
    return "printf(\" %llu\", (unsigned long long)" + elem + ");";
  }
  return "printf(\" %lld\", (long long)" + elem + ");";
}

// Reads one element widened to double (u64 goes through unsigned).
std::string asDoubleExpr(DataType t, const std::string& elem) {
  if (t == DataType::U64) return "(double)(uint64_t)" + elem;
  return "(double)" + elem;
}

// Trigger condition of one injected step-loop fault: fires from `step`
// onward, optionally only for one seed (seedExpr is "seed" in the scalar
// loop, "seeds[l]" in the batch loop).
std::string faultCond(const FaultPlan::SiteFault& f,
                      const std::string& seedExpr) {
  std::string c = "step >= " + std::to_string(f.step) + "ULL";
  if (f.hasSeed) {
    c += " && " + seedExpr + " == " + std::to_string(f.seed) + "ULL";
  }
  return c;
}

}  // namespace

Emitter::Emitter(const FlatModel& fm, const SimOptions& opt,
                 const TestCaseSpec& tests, const CoveragePlan* covPlan,
                 const DiagnosisPlan* diagPlan)
    : fm_(fm),
      opt_(opt),
      tests_(tests),
      covPlan_(covPlan),
      diagPlan_(diagPlan),
      faults_(faultPlanFromEnv()) {
  collectSignals_ = monitoredSignals(fm_, opt_.collectList);
}

std::string Emitter::sanitize(const std::string& name) {
  return sanitizeIdent(name);
}

// ---- EmitSink -------------------------------------------------------------

void Emitter::line(const std::string& stmt) { body_.push_back(stmt); }

void Emitter::updateLine(const std::string& stmt) { upd_.push_back(stmt); }

void Emitter::updateLinePre(const std::string& stmt) {
  updPre_.push_back(stmt);
}

bool Emitter::diagOn(DiagKind kind) const {
  return diagPlan_ != nullptr && current_ != nullptr &&
         diagPlan_->enabled(current_->id, kind);
}

std::string Emitter::freshVar(const std::string& hint) {
  return hint + std::to_string(varCounter_++);
}

std::string Emitter::makeDiagFunction(
    const std::vector<std::pair<DiagKind, std::string>>& flags) {
  // One generated diagnostic function per actor (paper Fig. 4/Fig. 5:
  // "the instrumented code involves the function calls at specific
  // locations, while the actual implementation is defined elsewhere").
  std::string fname =
      "diagnose_" + sanitize(current_->path) + "_" +
      std::to_string(current_->id) + "_" + std::to_string(varCounter_++);
  std::ostringstream def;
  def << "void " << fname << "(uint64_t step";
  for (size_t k = 0; k < flags.size(); ++k) def << ", int f" << k;
  def << ") {\n";
  for (size_t k = 0; k < flags.size(); ++k) {
    def << "  if (f" << k << ") accmos_diag(" << current_->id << ", "
        << static_cast<int>(flags[k].first) << ", step);  // "
        << diagKindName(flags[k].first) << "\n";
  }
  def << "}\n";
  diagFuncs_.push_back(def.str());
  std::string call = fname + "(step";
  for (const auto& [kind, expr] : flags) call += ", " + expr;
  call += ");";
  return call;
}

void Emitter::diagCall(
    const std::vector<std::pair<DiagKind, std::string>>& flags) {
  if (flags.empty() || diagPlan_ == nullptr) return;
  body_.push_back(makeDiagFunction(flags));
}

void Emitter::diagCallInUpdate(
    const std::vector<std::pair<DiagKind, std::string>>& flags) {
  if (flags.empty() || diagPlan_ == nullptr) return;
  upd_.push_back(makeDiagFunction(flags));
}

std::string Emitter::covDecisionStmt(const std::string& outcomeExpr) {
  if (covPlan_ == nullptr) return ";";
  const ActorCovInfo& info = covPlan_->info(current_->id);
  if (info.decisionBase < 0) return ";";
  return "accmos_cov_dec[" + std::to_string(info.decisionBase) + " + (" +
         outcomeExpr + ")] = 1;";
}

std::string Emitter::covConditionStmt(int condIdx,
                                      const std::string& boolExpr) {
  if (covPlan_ == nullptr) return ";";
  const ActorCovInfo& info = covPlan_->info(current_->id);
  if (info.conditionBase < 0) return ";";
  return "accmos_cov_cond[" +
         std::to_string(info.conditionBase + 2 * condIdx) + " + ((" +
         boolExpr + ") ? 0 : 1)] = 1;";
}

std::string Emitter::covMcdcStmt(int condIdx, const std::string& valExpr) {
  if (covPlan_ == nullptr) return "";
  const ActorCovInfo& info = covPlan_->info(current_->id);
  if (info.mcdcBase < 0) return "";
  return "accmos_cov_mcdc[" + std::to_string(info.mcdcBase + 2 * condIdx) +
         " + ((" + valExpr + ") ? 0 : 1)] = 1;";
}

// ---- sections --------------------------------------------------------------

void Emitter::emitConstTables(std::ostringstream& os) {
  // Explicit stimulus sequences are immutable, so they stay at file scope,
  // shared by every model-state instance.
  bool any = false;
  for (size_t k = 0; k < fm_.rootInports.size(); ++k) {
    const PortStimulus& stim = tests_.port(static_cast<int>(k));
    if (stim.sequence.empty()) continue;
    os << "static const double tc_seq_" << k << "[" << stim.sequence.size()
       << "] = {";
    for (size_t i = 0; i < stim.sequence.size(); ++i) {
      if (i > 0) os << ", ";
      os << fmtD(stim.sequence[i]);
    }
    os << "};\n";
    any = true;
  }
  if (any) os << "\n";
}

std::vector<Emitter::StateMember> Emitter::stateMembers() const {
  std::vector<StateMember> mem;
  // Diagnostic aggregation tables (first/count per actor x kind).
  const std::string diagDim = "[" + std::to_string(fm_.actors.size()) +
                              " * " + std::to_string(kNumDiagKinds) + "]";
  mem.push_back({"uint64_t", "accmos_diag_first", diagDim, ""});
  mem.push_back({"uint64_t", "accmos_diag_count", diagDim, ""});
  // Signals.
  for (const auto& sig : fm_.signals) {
    mem.push_back({cpp(sig.type),
                   "s" + std::to_string(&sig - fm_.signals.data()),
                   "[" + std::to_string(sig.width) + "]", sig.name});
  }
  // Actor states.
  const Registry& reg = Registry::instance();
  for (const auto& fa : fm_.actors) {
    auto st = reg.get(fa).state(fm_, fa);
    if (st) {
      mem.push_back({cpp(st->type), "st" + std::to_string(fa.id),
                     "[" + std::to_string(st->width) + "]",
                     "state of " + fa.path});
    }
  }
  // Data stores.
  for (size_t d = 0; d < fm_.dataStores.size(); ++d) {
    const auto& ds = fm_.dataStores[d];
    mem.push_back({cpp(ds.type), dataStoreSymbol(static_cast<int>(d), ds.name),
                   "[" + std::to_string(ds.width) + "]",
                   "data store '" + ds.name + "'"});
  }
  // Random test-case stream states (sequence-driven ports read the shared
  // const tables instead).
  for (size_t k = 0; k < fm_.rootInports.size(); ++k) {
    if (tests_.port(static_cast<int>(k)).sequence.empty()) {
      mem.push_back({"uint64_t", "tc_state_" + std::to_string(k), "", ""});
    }
  }
  // Coverage bitmaps.
  if (covPlan_ != nullptr) {
    const std::pair<const char*, CovMetric> maps[] = {
        {"accmos_cov_actor", CovMetric::Actor},
        {"accmos_cov_cond", CovMetric::Condition},
        {"accmos_cov_dec", CovMetric::Decision},
        {"accmos_cov_mcdc", CovMetric::MCDC}};
    for (const auto& [name, metric] : maps) {
      mem.push_back(
          {"uint8_t", name,
           "[" + std::to_string(std::max(1, covPlan_->totalSlots(metric))) +
               "]",
           ""});
    }
  }
  // Signal monitor buffers (paper Fig. 3 outputCollect repository).
  for (size_t k = 0; k < collectSignals_.size(); ++k) {
    const SignalInfo& sig = fm_.signal(collectSignals_[k]);
    mem.push_back({cpp(sig.type), "col" + std::to_string(k),
                   "[" + std::to_string(sig.width) + "]", ""});
    mem.push_back({"uint64_t", "colcnt" + std::to_string(k), "", ""});
  }
  // Custom diagnosis slots.
  for (size_t k = 0; k < opt_.customDiagnostics.size(); ++k) {
    mem.push_back({"double", "cd_prev_" + std::to_string(k), "", ""});
    mem.push_back({"int", "cd_has_" + std::to_string(k), "", ""});
    mem.push_back({"uint64_t", "cd_first_" + std::to_string(k), "", ""});
    mem.push_back({"uint64_t", "cd_count_" + std::to_string(k), "", ""});
  }
  mem.push_back({"int", "accmos_stop", "", ""});
  mem.push_back({"int", "accmos_diag_fired", "", ""});
  return mem;
}

void Emitter::emitDeclarations(std::ostringstream& os) {
  os << "  // ---- model data --------------------------------------------\n";
  for (const auto& mem : stateMembers()) {
    os << "  " << mem.type << " " << mem.name << mem.dims << ";";
    if (!mem.comment.empty()) os << "  // " << mem.comment;
    os << "\n";
  }
  os << "\n";
}

void Emitter::emitDiagFn(std::ostringstream& os) {
  os << "  void accmos_diag(int actor, int kind, uint64_t step) {\n"
     << "    int idx = actor * " << kNumDiagKinds << " + kind;\n"
     << "    if (accmos_diag_count[idx] == 0) accmos_diag_first[idx] = "
        "step;\n"
     << "    accmos_diag_count[idx] += 1;\n"
     << "    accmos_diag_fired = 1;\n"
     << "  }\n\n";
}

void Emitter::emitFillInputs(std::ostringstream& os) {
  os << "void accmos_fill_inputs(uint64_t step) {\n";
  if (fm_.rootInports.empty()) os << "  (void)step;\n";
  for (size_t k = 0; k < fm_.rootInports.size(); ++k) {
    const FlatActor& fa = fm_.actor(fm_.rootInports[k]);
    const SignalInfo& sig = fm_.signal(fa.outputs[0]);
    const PortStimulus& stim = tests_.port(static_cast<int>(k));
    os << "  // Inport " << fa.path << "\n";
    os << "  for (int i = 0; i < " << sig.width << "; ++i) {\n";
    if (stim.sequence.empty()) {
      os << "    double v = " << fmtD(stim.min) << " + accmos_sm64_unit(&tc_state_"
         << k << ") * (" << fmtD(stim.max) << " - " << fmtD(stim.min)
         << ");\n";
    } else {
      os << "    double v = tc_seq_" << k << "[step % "
         << stim.sequence.size() << "ULL];\n";
    }
    os << "    " << storeFromDouble(sig.type,
                                    "s" + std::to_string(fa.outputs[0]) +
                                        "[i]",
                                    "v")
       << "\n";
    os << "  }\n";
  }
  os << "}\n\n";
}

std::string Emitter::storeFromDouble(DataType t, const std::string& dst,
                                     const std::string& expr) const {
  if (t == DataType::F64) return dst + " = (" + expr + ");";
  if (t == DataType::F32) return dst + " = (float)(" + expr + ");";
  return dst + " = (" + cpp(t) + ")accmos_store_" +
         std::string(dataTypeName(t)) + "((double)(" + expr + ")).value;";
}

void Emitter::emitModelInit(std::ostringstream& os) {
  const Registry& reg = Registry::instance();
  os << "void Model_Init(uint64_t accmos_seed) {\n";
  os << "  (void)accmos_seed;\n";
  for (const auto& fa : fm_.actors) {
    auto st = reg.get(fa).state(fm_, fa);
    if (!st) continue;
    for (int i = 0; i < st->width; ++i) {
      double init =
          st->initial.empty()
              ? 0.0
              : st->initial[std::min(st->initial.size() - 1,
                                     static_cast<size_t>(i))];
      os << "  "
         << storeFromDouble(st->type,
                            "st" + std::to_string(fa.id) + "[" +
                                std::to_string(i) + "]",
                            fmtD(init))
         << "\n";
    }
  }
  for (size_t d = 0; d < fm_.dataStores.size(); ++d) {
    const auto& ds = fm_.dataStores[d];
    os << "  for (int i = 0; i < " << ds.width << "; ++i) "
       << storeFromDouble(
              ds.type,
              dataStoreSymbol(static_cast<int>(d), ds.name) + "[i]",
              fmtD(ds.initial))
       << "\n";
  }
  for (size_t k = 0; k < fm_.rootInports.size(); ++k) {
    if (tests_.port(static_cast<int>(k)).sequence.empty()) {
      os << "  tc_state_" << k << " = accmos_portseed(accmos_seed, "
         << k << ");\n";
    }
  }
  os << "}\n\n";
}

void Emitter::emitModelExe(std::ostringstream& os) {
  os << "void Model_Exe(uint64_t step) {\n";
  os << "  (void)step;\n";
  os << evalSection_.str();
  os << "  // ---- state update phase ----\n";
  os << updateSection_.str();
  // Signal monitor (paper Fig. 3).
  for (size_t k = 0; k < collectSignals_.size(); ++k) {
    os << "  memcpy(col" << k << ", s" << collectSignals_[k] << ", sizeof(col"
       << k << ")); colcnt" << k << " += 1;\n";
  }
  // Custom signal diagnoses (paper §3.2.B).
  for (size_t k = 0; k < opt_.customDiagnostics.size(); ++k) {
    const CustomDiagnostic& cd = opt_.customDiagnostics[k];
    const FlatActor* fa = fm_.findByPath(cd.actorPath);
    if (fa == nullptr || fa->outputs.empty()) continue;
    const SignalInfo& sig = fm_.signal(fa->outputs[0]);
    os << "  { double cur = "
       << asDoubleExpr(sig.type, "s" + std::to_string(fa->outputs[0]) + "[0]")
       << ";\n    double prev = cd_has_" << k << " ? cd_prev_" << k
       << " : 0.0; (void)prev;\n    int fire = 0;\n";
    switch (cd.kind) {
      case CustomDiagnostic::Kind::Range:
        os << "    fire = (cur < " << fmtD(cd.minValue) << " || cur > "
           << fmtD(cd.maxValue) << ");\n";
        break;
      case CustomDiagnostic::Kind::SuddenChange:
        os << "    fire = cd_has_" << k << " && fabs(cur - prev) > "
           << fmtD(cd.maxDelta) << ";\n";
        break;
      case CustomDiagnostic::Kind::Expression:
        if (!cd.cppCondition.empty()) {
          os << "    fire = (" << cd.cppCondition << ");\n";
        }
        break;
    }
    os << "    if (fire) { if (cd_count_" << k << " == 0) cd_first_" << k
       << " = step; cd_count_" << k << " += 1; accmos_diag_fired = 1; }\n"
       << "    cd_prev_" << k << " = cur; cd_has_" << k << " = 1; }\n";
  }
  os << "}\n\n";
}

void Emitter::emitSimLoop(std::ostringstream& os) {
  os << "  // One full simulation on this state instance. Returns the steps\n"
     << "  // executed; the loop's wall time lands in *execNs. deadline is\n"
     << "  // an absolute accmos_now_s() point (0 = none) polled every 256\n"
     << "  // steps; stepBudget caps executed steps (0 = none). Either\n"
     << "  // tripping retires the run with *timedOut set — partial results\n"
     << "  // up to that point stay valid.\n"
     << "  uint64_t accmos_sim_run(uint64_t maxSteps, double budget,\n"
     << "                          uint64_t seed, double deadline,\n"
     << "                          uint64_t stepBudget, int* stoppedEarly,\n"
     << "                          unsigned long long* execNs,\n"
     << "                          int* timedOut) {\n"
     << "    Model_Init(seed);\n"
     << "    int stopped = 0;\n"
     << "    *timedOut = 0;\n"
     << "    auto t0 = std::chrono::steady_clock::now();\n"
     << "    uint64_t step = 0;\n"
     << "    for (; step < maxSteps; ++step) {\n";
  if (faults_.hang.armed) {
    os << "      // ACCMOS_FAULT hang: cooperative wedge — spins until the\n"
       << "      // deadline passes (or forever when none was set, which is\n"
       << "      // what the host watchdog exists for).\n"
       << "      if (" << faultCond(faults_.hang, "seed") << ") {\n"
       << "        while (!(deadline > 0.0 && accmos_now_s() >= deadline))\n"
       << "          accmos_pause_ms(1);\n"
       << "        *timedOut = 1; break;\n"
       << "      }\n";
  }
  if (faults_.crash.armed) {
    os << "      // ACCMOS_FAULT crash: a genuine fatal signal.\n"
       << "      if (" << faultCond(faults_.crash, "seed")
       << ") raise(SIGSEGV);\n";
  }
  os << "      accmos_fill_inputs(step);\n"
     << "      Model_Exe(step);\n"
     << "      if (accmos_stop) { ++step; stopped = 1; break; }\n";
  if (opt_.stopOnDiagnostic) {
    os << "      if (accmos_diag_fired) { ++step; stopped = 1; break; }\n";
  }
  os << "      if (budget > 0.0 && (step & 1023) == 1023 &&\n"
     << "          std::chrono::duration<double>(std::chrono::steady_clock"
        "::now() - t0).count() >= budget) { ++step; break; }\n"
     << "      if (stepBudget != 0 && step + 1 >= stepBudget &&\n"
     << "          step + 1 < maxSteps) { ++step; *timedOut = 1; break; }\n"
     << "      if (deadline > 0.0 && (step & 255) == 255 &&\n"
     << "          accmos_now_s() >= deadline) { ++step; *timedOut = 1; "
        "break; }\n"
     << "    }\n"
     << "    auto t1 = std::chrono::steady_clock::now();\n"
     << "    *execNs = (unsigned long long)\n"
     << "        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - "
        "t0).count();\n"
     << "    *stoppedEarly = stopped;\n"
     << "    return step;\n"
     << "  }\n";
}

Emitter::AbiGeom Emitter::abiGeom() const {
  AbiGeom g;
  g.covLen[0] = covPlan_ != nullptr ? covPlan_->totalSlots(CovMetric::Actor) : 0;
  g.covLen[1] =
      covPlan_ != nullptr ? covPlan_->totalSlots(CovMetric::Condition) : 0;
  g.covLen[2] =
      covPlan_ != nullptr ? covPlan_->totalSlots(CovMetric::Decision) : 0;
  g.covLen[3] = covPlan_ != nullptr ? covPlan_->totalSlots(CovMetric::MCDC) : 0;
  g.covArr[0] = "accmos_cov_actor";
  g.covArr[1] = "accmos_cov_cond";
  g.covArr[2] = "accmos_cov_dec";
  g.covArr[3] = "accmos_cov_mcdc";
  g.collectValsLen = 0;
  for (int sid : collectSignals_) {
    g.collectValsLen += static_cast<size_t>(fm_.signal(sid).width);
  }
  g.outValsLen = 0;
  for (int oid : fm_.rootOutports) {
    g.outValsLen +=
        static_cast<size_t>(fm_.signal(fm_.actor(oid).inputs[0]).width);
  }
  g.numActors = fm_.actors.size();
  g.numCustom = opt_.customDiagnostics.size();
  return g;
}

void Emitter::emitResultChecks(std::ostringstream& os, const std::string& ref,
                               const std::string& ind) {
  const AbiGeom g = abiGeom();
  for (int m = 0; m < 4; ++m) {
    os << ind << "if (" << ref << "covLen[" << m << "] != " << g.covLen[m]
       << "ULL";
    if (g.covLen[m] > 0) os << " || " << ref << "cov[" << m << "] == 0";
    os << ") return ACCMOS_ABI_EBUFFER;\n";
  }
  if (diagPlan_ != nullptr) {
    os << ind << "if (" << ref << "diagCap < " << g.numActors * kNumDiagKinds
       << "ULL || " << ref << "diags == 0) return ACCMOS_ABI_EBUFFER;\n";
  }
  if (g.numCustom > 0) {
    os << ind << "if (" << ref << "customCap < " << g.numCustom << "ULL || "
       << ref << "customs == 0) return ACCMOS_ABI_EBUFFER;\n";
  }
  os << ind << "if (" << ref << "numCollect != " << collectSignals_.size()
     << "ULL || " << ref << "collectValsLen != " << g.collectValsLen
     << "ULL || " << ref << "outValsLen != " << g.outValsLen
     << "ULL) return ACCMOS_ABI_EBUFFER;\n";
  if (!collectSignals_.empty()) {
    os << ind << "if (" << ref << "collectCounts == 0 || " << ref
       << "collectVals == 0) return ACCMOS_ABI_EBUFFER;\n";
  }
  if (g.outValsLen > 0) {
    os << ind << "if (" << ref << "outVals == 0) return ACCMOS_ABI_EBUFFER;\n";
  }
}

void Emitter::emitResultExtract(
    std::ostringstream& os, const std::string& ref,
    const std::function<std::string(const std::string&)>& acc,
    const std::string& ind) {
  const AbiGeom g = abiGeom();
  for (int m = 0; m < 4; ++m) {
    if (g.covLen[m] > 0) {
      os << ind << "memcpy(" << ref << "cov[" << m << "], " << acc(g.covArr[m])
         << ", " << g.covLen[m] << ");\n";
    }
  }
  if (diagPlan_ != nullptr) {
    os << ind << "{ uint64_t nd = 0;\n"
       << ind << "  for (int a = 0; a < " << g.numActors << "; ++a)\n"
       << ind << "    for (int k = 0; k < " << kNumDiagKinds << "; ++k) {\n"
       << ind << "      uint64_t c = " << acc("accmos_diag_count") << "[a * "
       << kNumDiagKinds << " + k];\n"
       << ind << "      if (c) { " << ref << "diags[nd].actorId = a; " << ref
       << "diags[nd].kind = k;\n"
       << ind << "        " << ref << "diags[nd].firstStep = "
       << acc("accmos_diag_first") << "[a * " << kNumDiagKinds << " + k];\n"
       << ind << "        " << ref << "diags[nd].count = c; ++nd; }\n"
       << ind << "    }\n"
       << ind << "  " << ref << "diagCount = nd; }\n";
  } else {
    os << ind << ref << "diagCount = 0;\n";
  }
  if (g.numCustom > 0) {
    os << ind << "{ uint64_t nc = 0;\n";
    for (size_t k = 0; k < g.numCustom; ++k) {
      std::string cnt = acc("cd_count_" + std::to_string(k));
      os << ind << "  if (" << cnt << ") { " << ref << "customs[nc].index = "
         << k << "ULL; " << ref << "customs[nc].firstStep = "
         << acc("cd_first_" + std::to_string(k)) << "; " << ref
         << "customs[nc].count = " << cnt << "; ++nc; }\n";
    }
    os << ind << "  " << ref << "customCount = nc; }\n";
  } else {
    os << ind << ref << "customCount = 0;\n";
  }
  size_t off = 0;
  for (size_t k = 0; k < collectSignals_.size(); ++k) {
    const SignalInfo& sig = fm_.signal(collectSignals_[k]);
    os << ind << ref << "collectCounts[" << k << "] = "
       << acc("colcnt" + std::to_string(k)) << ";\n"
       << ind << "for (int i = 0; i < " << sig.width << "; ++i) " << ref
       << "collectVals[" << off << " + i] = "
       << packExpr(sig.type, acc("col" + std::to_string(k)) + "[i]") << ";\n";
    off += static_cast<size_t>(sig.width);
  }
  off = 0;
  for (size_t k = 0; k < fm_.rootOutports.size(); ++k) {
    const FlatActor& fa = fm_.actor(fm_.rootOutports[k]);
    const SignalInfo& sig = fm_.signal(fa.inputs[0]);
    os << ind << "for (int i = 0; i < " << sig.width << "; ++i) " << ref
       << "outVals[" << off << " + i] = "
       << packExpr(sig.type, acc("s" + std::to_string(fa.inputs[0])) + "[i]")
       << ";\n";
    off += static_cast<size_t>(sig.width);
  }
}

void Emitter::emitAbi(std::ostringstream& os) {
  const AbiGeom g = abiGeom();

  os << "// ---- in-process execution ABI (see run_abi.h) -----------------\n"
     << "extern \"C\" int accmos_model_info(AccmosModelInfo* info) {\n"
     << "  if (!info || info->structSize != "
        "(uint32_t)sizeof(AccmosModelInfo)) return ACCMOS_ABI_EARG;\n"
     << "  info->abiVersion = ACCMOS_ABI_VERSION;\n";
  for (int m = 0; m < 4; ++m) {
    os << "  info->covLen[" << m << "] = " << g.covLen[m] << "ULL;\n";
  }
  os << "  info->numActors = " << g.numActors << "ULL;\n"
     << "  info->numDiagKinds = " << kNumDiagKinds << "ULL;\n"
     << "  info->numCustom = " << g.numCustom << "ULL;\n"
     << "  info->numCollect = " << collectSignals_.size() << "ULL;\n"
     << "  info->collectValsLen = " << g.collectValsLen << "ULL;\n"
     << "  info->outValsLen = " << g.outValsLen << "ULL;\n"
     << "#if ACCMOS_ABI_VERSION >= 2u\n"
     << "#ifdef ACCMOS_BATCH_LANES\n"
     << "  info->batchLanes = (uint64_t)(ACCMOS_BATCH_LANES);\n"
     << "#else\n"
     << "  info->batchLanes = 0ULL;\n"
     << "#endif\n"
     << "#endif\n"
     << "  return ACCMOS_ABI_OK;\n"
     << "}\n\n";

  os << "extern \"C\" int accmos_run(const AccmosRunArgs* args, "
        "AccmosRunResult* res) {\n"
     << "  if (!args || !res ||\n"
     << "      args->structSize != (uint32_t)sizeof(AccmosRunArgs) ||\n"
     << "      res->structSize != (uint32_t)sizeof(AccmosRunResult)) "
        "return ACCMOS_ABI_EARG;\n"
     << "  if (args->abiVersion != ACCMOS_ABI_VERSION ||\n"
     << "      res->abiVersion != ACCMOS_ABI_VERSION) "
        "return ACCMOS_ABI_EVERSION;\n";
  emitResultChecks(os, "res->", "  ");
  os << "  double deadline = 0.0;\n"
     << "  uint64_t stepBudget = 0;\n"
     << "#if ACCMOS_ABI_VERSION >= 3u\n"
     << "  deadline = args->deadlineSeconds;\n"
     << "  stepBudget = args->stepBudget;\n"
     << "#endif\n"
     << "  accmos_model* M = new (std::nothrow) accmos_model();\n"
     << "  if (!M) return ACCMOS_ABI_EALLOC;\n"
     << "  int stopped = 0;\n"
     << "  unsigned long long ns = 0;\n"
     << "  int timedOut = 0;\n"
     << "  res->stepsExecuted = M->accmos_sim_run(args->maxSteps, "
        "args->timeBudgetSec,\n"
     << "                                         args->seed, deadline, "
        "stepBudget,\n"
     << "                                         &stopped, &ns, "
        "&timedOut);\n"
     << "  res->stoppedEarly = (uint32_t)stopped;\n"
     << "  res->timedOut = (uint32_t)timedOut;\n"
     << "  res->execNs = ns;\n";
  emitResultExtract(
      os, "res->", [](const std::string& n) { return "M->" + n; }, "  ");
  os << "  delete M;\n"
     << "  return timedOut ? ACCMOS_ABI_ETIMEOUT : ACCMOS_ABI_OK;\n"
     << "}\n\n";
}

void Emitter::emitBatchSimLoop(std::ostringstream& os) {
  os << "  // One fused batch simulation: every live lane advances one step\n"
     << "  // per outer iteration, so the lane loop over independent SoA\n"
     << "  // state is what the compiler auto-vectorizes. A lane that stops\n"
     << "  // early is retired from the loop without touching any other\n"
     << "  // lane's state; per-lane step counts and early-stop flags land\n"
     << "  // in bl_steps_/bl_stopped_. The time budget (rarely used here)\n"
     << "  // applies to the whole batch.\n"
     << "  void accmos_batch_sim(uint64_t numLanes, const uint64_t* seeds,\n"
     << "                        uint64_t maxSteps, double budget,\n"
     << "                        double deadline, uint64_t stepBudget,\n"
     << "                        unsigned long long* execNs) {\n"
     << "    for (uint64_t l = 0; l < numLanes; ++l) {\n"
     << "      accmos_cur_lane_ = (int)l;\n"
     << "      Model_Init(seeds[l]);\n"
     << "    }\n"
     << "    auto t0 = std::chrono::steady_clock::now();\n"
     << "    uint64_t active = numLanes;\n"
     << "    for (uint64_t step = 0; step < maxSteps && active > 0; "
        "++step) {\n"
     << "      for (uint64_t l = 0; l < numLanes; ++l) {\n"
     << "        if (bl_done_[l]) continue;\n";
  if (faults_.hang.armed) {
    os << "        // ACCMOS_FAULT hang: the lane wedges — it stays active\n"
       << "        // but makes no more progress (the deadline sweep below,\n"
       << "        // or the post-loop spin, retires it as timedOut).\n"
       << "        if (bl_hung_[l]) continue;\n"
       << "        if (" << faultCond(faults_.hang, "seeds[l]")
       << ") { bl_hung_[l] = 1; continue; }\n";
  }
  if (faults_.crash.armed) {
    os << "        // ACCMOS_FAULT crash: takes the whole fused batch down\n"
       << "        // (one address space) — the host guard catches it and\n"
       << "        // re-runs the chunk's seeds in contained scalar mode.\n"
       << "        if (" << faultCond(faults_.crash, "seeds[l]")
       << ") raise(SIGSEGV);\n";
  }
  os << "        accmos_cur_lane_ = (int)l;\n"
     << "        accmos_fill_inputs(step);\n"
     << "        Model_Exe(step);\n"
     << "        bl_steps_[l] = step + 1;\n"
     << "        if (accmos_stop) { bl_done_[l] = 1; bl_stopped_[l] = 1; "
        "--active; continue; }\n";
  if (opt_.stopOnDiagnostic) {
    os << "        if (accmos_diag_fired) { bl_done_[l] = 1; bl_stopped_[l] "
          "= 1; --active; }\n";
  }
  os << "      }\n"
     << "      if (budget > 0.0 && (step & 1023) == 1023 &&\n"
     << "          std::chrono::duration<double>(std::chrono::steady_clock"
        "::now() - t0).count() >= budget) break;\n"
     << "      // Deadline / step budget: retire every unfinished lane as\n"
     << "      // timedOut; lanes already done keep their normal results.\n"
     << "      if ((stepBudget != 0 && step + 1 >= stepBudget &&\n"
     << "           step + 1 < maxSteps) ||\n"
     << "          (deadline > 0.0 && (step & 255) == 255 &&\n"
     << "           accmos_now_s() >= deadline)) {\n"
     << "        for (uint64_t l = 0; l < numLanes; ++l)\n"
     << "          if (!bl_done_[l]) { bl_done_[l] = 1; bl_timedout_[l] = 1; "
        "}\n"
     << "        active = 0;\n"
     << "      }\n"
     << "    }\n";
  if (faults_.hang.armed) {
    os << "    // Hung lanes surviving to the end of the loop mirror the\n"
       << "    // scalar semantics: spin until the deadline (forever when\n"
       << "    // none) and retire as timedOut.\n"
       << "    for (uint64_t l = 0; l < numLanes; ++l) {\n"
       << "      if (bl_done_[l] || !bl_hung_[l]) continue;\n"
       << "      while (!(deadline > 0.0 && accmos_now_s() >= deadline))\n"
       << "        accmos_pause_ms(1);\n"
       << "      bl_done_[l] = 1; bl_timedout_[l] = 1;\n"
       << "    }\n";
  }
  os << "    auto t1 = std::chrono::steady_clock::now();\n"
     << "    *execNs = (unsigned long long)\n"
     << "        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - "
        "t0).count();\n"
     << "  }\n";
}

void Emitter::emitBatchAbi(std::ostringstream& os) {
  os << "extern \"C\" int accmos_run_batch(const AccmosBatchRunArgs* args, "
        "AccmosBatchRunResult* res) {\n"
     << "  if (!args || !res ||\n"
     << "      args->structSize != (uint32_t)sizeof(AccmosBatchRunArgs) ||\n"
     << "      res->structSize != (uint32_t)sizeof(AccmosBatchRunResult)) "
        "return ACCMOS_ABI_EARG;\n"
     << "  if (args->abiVersion != ACCMOS_ABI_VERSION ||\n"
     << "      res->abiVersion != ACCMOS_ABI_VERSION) "
        "return ACCMOS_ABI_EVERSION;\n"
     << "  if (args->numLanes == 0 ||\n"
     << "      args->numLanes > (uint64_t)(ACCMOS_BATCH_LANES) ||\n"
     << "      args->seeds == 0 || res->numLanes != args->numLanes ||\n"
     << "      res->lanes == 0) return ACCMOS_ABI_EBATCH;\n"
     << "  for (uint64_t l = 0; l < args->numLanes; ++l) {\n"
     << "    AccmosRunResult* L = &res->lanes[l];\n"
     << "    if (L->structSize != (uint32_t)sizeof(AccmosRunResult)) "
        "return ACCMOS_ABI_EARG;\n"
     << "    if (L->abiVersion != ACCMOS_ABI_VERSION) "
        "return ACCMOS_ABI_EVERSION;\n";
  emitResultChecks(os, "L->", "    ");
  os << "  }\n"
     << "  double deadline = 0.0;\n"
     << "  uint64_t stepBudget = 0;\n"
     << "#if ACCMOS_ABI_VERSION >= 3u\n"
     << "  deadline = args->deadlineSeconds;\n"
     << "  stepBudget = args->stepBudget;\n"
     << "#endif\n"
     << "  accmos_batch* B = new (std::nothrow) accmos_batch();\n"
     << "  if (!B) return ACCMOS_ABI_EALLOC;\n"
     << "  unsigned long long ns = 0;\n"
     << "  B->accmos_batch_sim(args->numLanes, args->seeds, args->maxSteps,\n"
     << "                      args->timeBudgetSec, deadline, stepBudget, "
        "&ns);\n"
     << "  uint32_t anyTimedOut = 0;\n"
     << "  for (uint64_t l = 0; l < args->numLanes; ++l) {\n"
     << "    AccmosRunResult* L = &res->lanes[l];\n"
     << "    L->stepsExecuted = B->bl_steps_[l];\n"
     << "    L->stoppedEarly = B->bl_stopped_[l];\n"
     << "    L->timedOut = B->bl_timedout_[l];\n"
     << "    anyTimedOut |= B->bl_timedout_[l];\n"
     << "    // Lanes run fused, so per-lane wall time is not separable:\n"
     << "    // every lane reports the whole batch's loop time.\n"
     << "    L->execNs = ns;\n";
  emitResultExtract(
      os, "L->",
      [](const std::string& n) { return "B->bl_" + n + "[l]"; }, "    ");
  os << "  }\n"
     << "  delete B;\n"
     << "  return anyTimedOut ? ACCMOS_ABI_ETIMEOUT : ACCMOS_ABI_OK;\n"
     << "}\n";
}

void Emitter::emitBatch(std::ostringstream& os) {
  const auto members = stateMembers();
  os << "// ---- batched execution (ABI v2) -------------------------------\n"
     << "// Compiled in only under -DACCMOS_BATCH_LANES=N: the scalar model\n"
     << "// state is re-laid-out as structure-of-arrays with lane = seed,\n"
     << "// and the SAME model-function texts are compiled against it via\n"
     << "// lane-redirection macros (every unqualified state reference\n"
     << "// becomes bl_<name>[accmos_cur_lane_]). Each lane therefore\n"
     << "// executes arithmetic textually identical to the scalar path —\n"
     << "// that is the bit-identity argument the differential tests pin\n"
     << "// down. Instrumentation state (coverage bitmaps, diagnosis\n"
     << "// tables, monitors) is per-lane like everything else.\n"
     << "#if defined(ACCMOS_BATCH_LANES) && ACCMOS_ABI_VERSION >= 2u\n";
  for (const auto& mem : members) {
    os << "#define " << mem.name << " (bl_" << mem.name
       << "[accmos_cur_lane_])\n";
  }
  os << "namespace {\n"
     << "struct accmos_batch {\n"
     << "  int accmos_cur_lane_;\n"
     << "  uint8_t bl_done_[ACCMOS_BATCH_LANES];\n"
     << "  uint64_t bl_steps_[ACCMOS_BATCH_LANES];\n"
     << "  uint32_t bl_stopped_[ACCMOS_BATCH_LANES];\n"
     << "  uint32_t bl_timedout_[ACCMOS_BATCH_LANES];\n"
     << (faults_.hang.armed
             ? "  uint8_t bl_hung_[ACCMOS_BATCH_LANES];\n"
             : "")
     << "  // ---- model data, one slot per lane -------------------------\n";
  for (const auto& mem : members) {
    os << "  " << mem.type << " bl_" << mem.name << "[ACCMOS_BATCH_LANES]"
       << mem.dims << ";\n";
  }
  os << "\n";
  emitDiagFn(os);
  for (const auto& fn : diagFuncs_) os << fn << "\n";
  emitFillInputs(os);
  emitModelInit(os);
  emitModelExe(os);
  emitBatchSimLoop(os);
  os << "};\n"
     << "}  // namespace\n";
  for (const auto& mem : members) os << "#undef " << mem.name << "\n";
  os << "\n";
  emitBatchAbi(os);
  os << "#endif  // ACCMOS_BATCH_LANES && ACCMOS_ABI_VERSION >= 2\n\n";
}

void Emitter::emitMain(std::ostringstream& os) {
  os << "int main(int argc, char* argv[]) {\n"
     << "  uint64_t maxSteps = " << opt_.maxSteps << "ULL;\n"
     << "  double budget = " << fmtD(opt_.timeBudgetSec) << ";\n"
     << "  uint64_t seed = " << tests_.seed << "ULL;\n"
     << "  double timeoutSec = 0.0;\n"
     << "  uint64_t stepBudget = 0;\n"
     << "  if (argc > 1) maxSteps = strtoull(argv[1], 0, 10);\n"
     << "  if (argc > 2) budget = atof(argv[2]);\n"
     << "  if (argc > 3) seed = strtoull(argv[3], 0, 10);\n"
     << "  if (argc > 4) timeoutSec = atof(argv[4]);\n"
     << "  if (argc > 5) stepBudget = strtoull(argv[5], 0, 10);\n"
     << "  // The deadline crosses the process boundary as a RELATIVE\n"
     << "  // timeout (monotonic epochs differ between processes in\n"
     << "  // principle) and becomes absolute against our own clock here.\n"
     << "  double deadline = timeoutSec > 0.0 ? accmos_now_s() + timeoutSec "
        ": 0.0;\n"
     << "  accmos_model* Mp = new accmos_model();\n"
     << "  accmos_model& M = *Mp;\n"
     << "  int stoppedEarly = 0;\n"
     << "  unsigned long long ns = 0;\n"
     << "  int timedOut = 0;\n"
     << "  uint64_t step = M.accmos_sim_run(maxSteps, budget, seed, "
        "deadline,\n"
     << "                                   stepBudget, &stoppedEarly, &ns, "
        "&timedOut);\n"
     << "  // ---- result protocol ----\n"
     << "  printf(\"ACCMOS_RESULT_BEGIN\\n\");\n"
     << "  printf(\"STEPS %llu\\n\", (unsigned long long)step);\n"
     << "  printf(\"STOPPED_EARLY %d\\n\", stoppedEarly);\n"
     << "  printf(\"TIMED_OUT %d\\n\", timedOut);\n"
     << "  printf(\"EXEC_NS %llu\\n\", ns);\n";
  if (covPlan_ != nullptr) {
    struct MapInfo {
      const char* name;
      const char* arr;
      int total;
    };
    const MapInfo maps[] = {
        {"actor", "accmos_cov_actor", covPlan_->totalSlots(CovMetric::Actor)},
        {"condition", "accmos_cov_cond",
         covPlan_->totalSlots(CovMetric::Condition)},
        {"decision", "accmos_cov_dec",
         covPlan_->totalSlots(CovMetric::Decision)},
        {"mcdc", "accmos_cov_mcdc", covPlan_->totalSlots(CovMetric::MCDC)},
    };
    for (const auto& m : maps) {
      os << "  printf(\"COVMAP " << m.name << " \");\n"
         << "  for (int i = 0; i < " << m.total << "; ++i) putchar(M."
         << m.arr << "[i] ? '1' : '0');\n"
         << "  putchar('\\n');\n";
    }
  }
  if (diagPlan_ != nullptr) {
    os << "  for (int a = 0; a < " << fm_.actors.size() << "; ++a)\n"
       << "    for (int k = 0; k < " << kNumDiagKinds << "; ++k) {\n"
       << "      uint64_t c = M.accmos_diag_count[a * " << kNumDiagKinds
       << " + k];\n"
       << "      if (c) printf(\"DIAG %d %d %llu %llu\\n\", a, k,\n"
       << "                    (unsigned long long)M.accmos_diag_first[a * "
       << kNumDiagKinds << " + k], (unsigned long long)c);\n"
       << "    }\n";
  }
  for (size_t k = 0; k < opt_.customDiagnostics.size(); ++k) {
    os << "  if (M.cd_count_" << k << ") printf(\"CUSTOM " << k
       << " %llu %llu\\n\", (unsigned long long)M.cd_first_" << k
       << ", (unsigned long long)M.cd_count_" << k << ");\n";
  }
  for (size_t k = 0; k < collectSignals_.size(); ++k) {
    const SignalInfo& sig = fm_.signal(collectSignals_[k]);
    os << "  printf(\"COLLECT " << k << " %llu " << sig.width
       << "\", (unsigned long long)M.colcnt" << k << ");\n"
       << "  for (int i = 0; i < " << sig.width << "; ++i) "
       << printfFor(sig.type, "M.col" + std::to_string(k) + "[i]") << "\n"
       << "  putchar('\\n');\n";
  }
  for (size_t k = 0; k < fm_.rootOutports.size(); ++k) {
    const FlatActor& fa = fm_.actor(fm_.rootOutports[k]);
    const SignalInfo& sig = fm_.signal(fa.inputs[0]);
    os << "  printf(\"OUT " << k << " " << sig.width << "\");\n"
       << "  for (int i = 0; i < " << sig.width << "; ++i) "
       << printfFor(sig.type, "M.s" + std::to_string(fa.inputs[0]) + "[i]")
       << "\n"
       << "  putchar('\\n');\n";
  }
  os << "  printf(\"ACCMOS_RESULT_END\\n\");\n"
     << "  delete Mp;\n"
     << "  return 0;\n"
     << "}\n";
}

std::string Emitter::generate() {
  const Registry& reg = Registry::instance();

  // Pass 1: expand actor templates in execution order (Algorithm 1),
  // collecting eval/update code and diagnostic functions.
  for (int id : fm_.schedule) {
    const FlatActor& fa = fm_.actors[static_cast<size_t>(id)];
    current_ = &fa;
    body_.clear();
    upd_.clear();
    updPre_.clear();

    EmitContext ctx(fm_, fa, *this);
    reg.get(fa).emit(ctx);

    // Generic instrumentation appended by the pass: actor coverage
    // ("actorBitmap[actorID] = 1" in the paper).
    if (covPlan_ != nullptr && covPlan_->info(id).actorSlot >= 0) {
      body_.push_back("accmos_cov_actor[" +
                      std::to_string(covPlan_->info(id).actorSlot) +
                      "] = 1;");
    }

    std::string guard;
    if (fa.enableSignal >= 0) {
      guard = "if (s" + std::to_string(fa.enableSignal) + "[0] != 0) ";
    }
    evalSection_ << "  // -- " << fa.path << " (" << fa.type() << ")\n";
    if (!body_.empty()) {
      evalSection_ << "  " << guard << "{\n";
      for (const auto& l : body_) evalSection_ << "  " << l << "\n";
      evalSection_ << "  }\n";
    }
    if (!upd_.empty() || !updPre_.empty()) {
      updateSection_ << "  // -- update " << fa.path << "\n";
      updateSection_ << "  " << guard << "{\n";
      for (const auto& l : updPre_) updateSection_ << "  " << l << "\n";
      for (const auto& l : upd_) updateSection_ << "  " << l << "\n";
      updateSection_ << "  }\n";
    }
  }
  current_ = nullptr;

  // Pass 2: compose the program (paper Fig. 5). All mutable state and the
  // model functions sit inside `struct accmos_model`: unqualified member
  // references keep the emitted actor code textually identical to the old
  // file-scope form, while `new accmos_model()` gives every run — the
  // standalone main() or a concurrent accmos_run() ABI call — a private
  // zero-initialized state instance.
  std::ostringstream os;
  os << "// Generated by AccMoS for model '" << fm_.modelName << "'\n";
  // Test hook: ACCMOS_EMIT_ABI_V1 produces a bona fide ABI-version-1
  // library (88-byte info struct, no batch entry point) by flipping the
  // version switch inside the embedded run_abi.h text — the fallback tests
  // use it to prove a v2 host degrades cleanly on old artifacts.
  const char* v1 = std::getenv("ACCMOS_EMIT_ABI_V1");
  if (v1 != nullptr && v1[0] != '\0' && std::string(v1) != "0") {
    os << "#define ACCMOS_RUN_ABI_FORCE_V1 1\n";
  }
  os << runtimePreamble();
  os << runAbiText();
  emitConstTables(os);
  // The anonymous namespace is load-bearing: it gives the struct (and the
  // statics inside its inline member functions) internal linkage. Without
  // it the actor templates' function-local tables become STB_GNU_UNIQUE
  // symbols, and a process that dlopens several generated libraries would
  // silently resolve them all to the first library's data.
  os << "namespace {\n"
     << "struct accmos_model {\n";
  emitDeclarations(os);
  emitDiagFn(os);
  for (const auto& fn : diagFuncs_) os << fn << "\n";
  emitFillInputs(os);
  emitModelInit(os);
  emitModelExe(os);
  emitSimLoop(os);
  os << "};\n"
     << "}  // namespace\n\n";
  emitAbi(os);
  emitBatch(os);
  emitMain(os);
  return os.str();
}

}  // namespace accmos
