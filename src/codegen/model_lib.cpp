#include "codegen/model_lib.h"

#include <dlfcn.h>

#include <chrono>
#include <cstdlib>
#include <cstring>

namespace accmos {

namespace {

bool dlopenForcedToFail() {
  const char* v = std::getenv("ACCMOS_DLOPEN_FAIL");
  return v != nullptr && v[0] != '\0' && std::string(v) != "0";
}

std::string dlerrorText() {
  const char* e = ::dlerror();
  return e != nullptr ? e : "unknown dlopen error";
}

}  // namespace

ModelLib::ModelLib(const std::string& path) : path_(path) {
  auto t0 = std::chrono::steady_clock::now();
  if (dlopenForcedToFail()) {
    throw CompileError("dlopen of generated model library " + path +
                       " disabled by ACCMOS_DLOPEN_FAIL");
  }
  handle_ = ::dlopen(path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle_ == nullptr) {
    throw CompileError("dlopen of generated model library failed: " +
                       dlerrorText());
  }
  auto* infoFn = reinterpret_cast<AccmosModelInfoFn>(
      ::dlsym(handle_, ACCMOS_SYM_MODEL_INFO));
  run_ = reinterpret_cast<AccmosRunFn>(::dlsym(handle_, ACCMOS_SYM_RUN));
  if (infoFn == nullptr || run_ == nullptr) {
    std::string err = dlerrorText();
    ::dlclose(handle_);
    handle_ = nullptr;
    throw CompileError("generated model library " + path +
                       " is missing an ABI entry point: " + err);
  }
  std::memset(&info_, 0, sizeof(info_));
  info_.structSize = static_cast<uint32_t>(sizeof(AccmosModelInfo));
  int rc = infoFn(&info_);
  if (rc != ACCMOS_ABI_OK || info_.abiVersion != ACCMOS_ABI_VERSION) {
    uint32_t gotVersion = info_.abiVersion;
    ::dlclose(handle_);
    handle_ = nullptr;
    throw CompileError(
        "generated model library " + path + " reports incompatible ABI (rc=" +
        std::to_string(rc) + ", version=" + std::to_string(gotVersion) +
        ", host expects " + std::to_string(ACCMOS_ABI_VERSION) + ")");
  }
  auto t1 = std::chrono::steady_clock::now();
  loadSeconds_ = std::chrono::duration<double>(t1 - t0).count();
}

ModelLib::~ModelLib() {
  if (handle_ != nullptr) ::dlclose(handle_);
}

}  // namespace accmos
