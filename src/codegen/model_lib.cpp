#include "codegen/model_lib.h"

#include <dlfcn.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdlib>
#include <cstring>

#include "codegen/fault.h"

namespace accmos {

// The v1 negotiation depends on batchLanes being the first byte past the
// 88-byte v1 layout; this pins the constant to the real struct.
static_assert(offsetof(AccmosModelInfo, batchLanes) == ACCMOS_ABI_INFO_SIZE_V1,
              "ACCMOS_ABI_INFO_SIZE_V1 must equal the v1 AccmosModelInfo size");

namespace {

bool dlopenForcedToFail() { return faultPlanFromEnv().dlopenFail; }

std::string dlerrorText() {
  const char* e = ::dlerror();
  return e != nullptr ? e : "unknown dlopen error";
}

std::atomic<long> g_loadCount{0};

}  // namespace

long ModelLib::loadCount() {
  return g_loadCount.load(std::memory_order_relaxed);
}

ModelLib::ModelLib(const std::string& path) : path_(path) {
  auto t0 = std::chrono::steady_clock::now();
  if (dlopenForcedToFail()) {
    throw CompileError("dlopen of generated model library " + path +
                       " disabled by fault injection (ACCMOS_FAULT=" +
                       "dlopen-fail / ACCMOS_DLOPEN_FAIL)");
  }
  handle_ = ::dlopen(path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle_ == nullptr) {
    throw CompileError("dlopen of generated model library failed: " +
                       dlerrorText());
  }
  auto* infoFn = reinterpret_cast<AccmosModelInfoFn>(
      ::dlsym(handle_, ACCMOS_SYM_MODEL_INFO));
  run_ = reinterpret_cast<AccmosRunFn>(::dlsym(handle_, ACCMOS_SYM_RUN));
  if (infoFn == nullptr || run_ == nullptr) {
    std::string err = dlerrorText();
    ::dlclose(handle_);
    handle_ = nullptr;
    throw CompileError("generated model library " + path +
                       " is missing an ABI entry point: " + err);
  }
  // Version negotiation: query with the host's struct size first. A v1
  // library checks structSize against its own 88-byte AccmosModelInfo and
  // rejects the larger v2 size with EARG — retry with the v1 size, which
  // fills only the first 88 bytes and leaves batchLanes at the zero we
  // memset (the correct "no batch" capability answer).
  std::memset(&info_, 0, sizeof(info_));
  info_.structSize = static_cast<uint32_t>(sizeof(AccmosModelInfo));
  int rc = infoFn(&info_);
  if (rc == ACCMOS_ABI_EARG) {
    static_assert(sizeof(AccmosModelInfo) > ACCMOS_ABI_INFO_SIZE_V1,
                  "v2 info struct must extend the v1 layout");
    std::memset(&info_, 0, sizeof(info_));
    info_.structSize = ACCMOS_ABI_INFO_SIZE_V1;
    rc = infoFn(&info_);
    if (rc == ACCMOS_ABI_OK && info_.abiVersion != 1u) rc = ACCMOS_ABI_EVERSION;
  }
  if (rc != ACCMOS_ABI_OK ||
      (info_.abiVersion != ACCMOS_ABI_VERSION && info_.abiVersion != 1u)) {
    uint32_t gotVersion = info_.abiVersion;
    ::dlclose(handle_);
    handle_ = nullptr;
    throw CompileError(
        "generated model library " + path + " reports incompatible ABI (rc=" +
        std::to_string(rc) + ", version=" + std::to_string(gotVersion) +
        ", host expects " + std::to_string(ACCMOS_ABI_VERSION) + " or 1)");
  }
  // The batch entry point is optional: absent in v1 libraries and in v2
  // libraries compiled without -DACCMOS_BATCH_LANES. A null here plus
  // batchLanes == 0 in the info struct both independently report "no
  // batch"; batchLanes() requires agreement of the two.
  if (info_.abiVersion >= 2u) {
    runBatch_ = reinterpret_cast<AccmosRunBatchFn>(
        ::dlsym(handle_, ACCMOS_SYM_RUN_BATCH));
  }
  auto t1 = std::chrono::steady_clock::now();
  loadSeconds_ = std::chrono::duration<double>(t1 - t0).count();
  g_loadCount.fetch_add(1, std::memory_order_relaxed);
}

ModelLib::~ModelLib() {
  if (handle_ != nullptr) ::dlclose(handle_);
}

}  // namespace accmos
