// Simulation-oriented instrumentation and simulation code synthesis
// (paper §3.2-3.3, Algorithm 1, Figure 5).
//
// The Emitter walks the flattened model in execution order, expands each
// actor through its code template (ActorSpec::emit), weaves in the
// instrumentation the plans call for — actor/condition/decision/MC-DC
// coverage marks, per-actor diagnostic functions, signal-monitor calls,
// custom signal diagnoses — and composes the model system function, a
// Model_Init, and the main simulation loop with test-case import.
#pragma once

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "actors/spec.h"
#include "cov/coverage.h"
#include "diag/diagnosis.h"
#include "sim/options.h"
#include "sim/testcase.h"

namespace accmos {

class Emitter : public EmitSink {
 public:
  // Plans may be null to generate uninstrumented code (used by the ablation
  // benches; the paper's AccMoS always instruments).
  Emitter(const FlatModel& fm, const SimOptions& opt,
          const TestCaseSpec& tests, const CoveragePlan* covPlan,
          const DiagnosisPlan* diagPlan);

  // Returns the complete C++ source of the simulation program.
  std::string generate();

  // Monitored signals in emission order (the results parser needs it).
  const std::vector<int>& collectSignals() const { return collectSignals_; }

  // ---- EmitSink --------------------------------------------------------
  void line(const std::string& stmt) override;
  void updateLine(const std::string& stmt) override;
  void updateLinePre(const std::string& stmt) override;
  void diagCall(
      const std::vector<std::pair<DiagKind, std::string>>& flags) override;
  void diagCallInUpdate(
      const std::vector<std::pair<DiagKind, std::string>>& flags) override;
  std::string covDecisionStmt(const std::string& outcomeExpr) override;
  std::string covConditionStmt(int condIdx,
                               const std::string& boolExpr) override;
  std::string covMcdcStmt(int condIdx, const std::string& valExpr) override;
  bool covOn() const override { return covPlan_ != nullptr; }
  bool diagOn(DiagKind kind) const override;
  std::string freshVar(const std::string& hint) override;

 private:
  // Generated-program sections. All mutable simulation state lives in one
  // `struct accmos_model`; emitDeclarations/emitDiagRuntime/emitFillInputs/
  // emitModelInit/emitModelExe/emitSimLoop produce its members, so every
  // run — the standalone main() or an accmos_run() call through the shared
  // library ABI — executes against a private, zero-initialized instance.
  void emitConstTables(std::ostringstream& os);
  void emitDeclarations(std::ostringstream& os);
  void emitDiagRuntime(std::ostringstream& os);
  void emitFillInputs(std::ostringstream& os);
  void emitModelInit(std::ostringstream& os);
  void emitModelExe(std::ostringstream& os);
  void emitSimLoop(std::ostringstream& os);
  void emitAbi(std::ostringstream& os);
  void emitMain(std::ostringstream& os);

  std::string makeDiagFunction(
      const std::vector<std::pair<DiagKind, std::string>>& flags);
  std::string storeFromDouble(DataType t, const std::string& dst,
                              const std::string& expr) const;
  static std::string sanitize(const std::string& name);

  const FlatModel& fm_;
  SimOptions opt_;
  TestCaseSpec tests_;
  const CoveragePlan* covPlan_;
  const DiagnosisPlan* diagPlan_;

  // Per-actor emission state.
  const FlatActor* current_ = nullptr;
  std::vector<std::string> body_;        // eval-phase lines of current actor
  std::vector<std::string> updPre_;      // update-phase declarations
  std::vector<std::string> upd_;         // update-phase lines
  int varCounter_ = 0;

  // Accumulated across actors.
  std::ostringstream evalSection_;
  std::ostringstream updateSection_;
  std::vector<std::string> diagFuncs_;
  std::vector<int> collectSignals_;
};

}  // namespace accmos
