// Simulation-oriented instrumentation and simulation code synthesis
// (paper §3.2-3.3, Algorithm 1, Figure 5).
//
// The Emitter walks the flattened model in execution order, expands each
// actor through its code template (ActorSpec::emit), weaves in the
// instrumentation the plans call for — actor/condition/decision/MC-DC
// coverage marks, per-actor diagnostic functions, signal-monitor calls,
// custom signal diagnoses — and composes the model system function, a
// Model_Init, and the main simulation loop with test-case import.
#pragma once

#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "actors/spec.h"
#include "codegen/fault.h"
#include "cov/coverage.h"
#include "diag/diagnosis.h"
#include "sim/options.h"
#include "sim/testcase.h"

namespace accmos {

class Emitter : public EmitSink {
 public:
  // Plans may be null to generate uninstrumented code (used by the ablation
  // benches; the paper's AccMoS always instruments).
  Emitter(const FlatModel& fm, const SimOptions& opt,
          const TestCaseSpec& tests, const CoveragePlan* covPlan,
          const DiagnosisPlan* diagPlan);

  // Returns the complete C++ source of the simulation program.
  std::string generate();

  // Monitored signals in emission order (the results parser needs it).
  const std::vector<int>& collectSignals() const { return collectSignals_; }

  // ---- EmitSink --------------------------------------------------------
  void line(const std::string& stmt) override;
  void updateLine(const std::string& stmt) override;
  void updateLinePre(const std::string& stmt) override;
  void diagCall(
      const std::vector<std::pair<DiagKind, std::string>>& flags) override;
  void diagCallInUpdate(
      const std::vector<std::pair<DiagKind, std::string>>& flags) override;
  std::string covDecisionStmt(const std::string& outcomeExpr) override;
  std::string covConditionStmt(int condIdx,
                               const std::string& boolExpr) override;
  std::string covMcdcStmt(int condIdx, const std::string& valExpr) override;
  bool covOn() const override { return covPlan_ != nullptr; }
  bool diagOn(DiagKind kind) const override;
  std::string freshVar(const std::string& hint) override;

 private:
  // One mutable state member of the generated model. The list is built once
  // and drives three emissions that must agree name-for-name: the scalar
  // struct's declarations, the batch struct's structure-of-arrays
  // declarations (name -> bl_name[ACCMOS_BATCH_LANES]<dims>), and the lane
  // redirection macros that let the shared model-function texts compile
  // against either layout.
  struct StateMember {
    std::string type;     // C++ element type
    std::string name;     // unqualified member name
    std::string dims;     // array suffix, e.g. "[3]"; empty for scalars
    std::string comment;  // trailing comment; empty for none
  };
  std::vector<StateMember> stateMembers() const;

  // Static geometry the ABI functions (scalar and batch) validate against.
  struct AbiGeom {
    int covLen[4];
    const char* covArr[4];
    size_t collectValsLen;
    size_t outValsLen;
    size_t numActors;
    size_t numCustom;
  };
  AbiGeom abiGeom() const;

  // Generated-program sections. All mutable simulation state lives in one
  // `struct accmos_model`; emitDeclarations/emitDiagFn/emitFillInputs/
  // emitModelInit/emitModelExe/emitSimLoop produce its members, so every
  // run — the standalone main() or an accmos_run() call through the shared
  // library ABI — executes against a private, zero-initialized instance.
  // emitBatch re-emits the identical member-function texts inside a
  // structure-of-arrays `struct accmos_batch` (behind lane-redirection
  // macros) plus the fused per-step lane loop and the accmos_run_batch
  // ABI entry point; the whole block is preprocessor-gated on
  // ACCMOS_BATCH_LANES so one generated source serves both builds.
  void emitConstTables(std::ostringstream& os);
  void emitDeclarations(std::ostringstream& os);
  void emitDiagFn(std::ostringstream& os);
  void emitFillInputs(std::ostringstream& os);
  void emitModelInit(std::ostringstream& os);
  void emitModelExe(std::ostringstream& os);
  void emitSimLoop(std::ostringstream& os);
  void emitAbi(std::ostringstream& os);
  void emitBatch(std::ostringstream& os);
  void emitBatchSimLoop(std::ostringstream& os);
  void emitBatchAbi(std::ostringstream& os);
  void emitMain(std::ostringstream& os);

  // Shared between accmos_run and accmos_run_batch: buffer validation and
  // result extraction for one AccmosRunResult. `ref` prefixes the result
  // fields (e.g. "res->" / "L->"); `acc` maps a state-member name to its
  // access expression ("M->name" scalar, "B->bl_name[l]" batch).
  void emitResultChecks(std::ostringstream& os, const std::string& ref,
                        const std::string& ind);
  void emitResultExtract(
      std::ostringstream& os, const std::string& ref,
      const std::function<std::string(const std::string&)>& acc,
      const std::string& ind);

  std::string makeDiagFunction(
      const std::vector<std::pair<DiagKind, std::string>>& flags);
  std::string storeFromDouble(DataType t, const std::string& dst,
                              const std::string& expr) const;
  static std::string sanitize(const std::string& name);

  const FlatModel& fm_;
  SimOptions opt_;
  TestCaseSpec tests_;
  const CoveragePlan* covPlan_;
  const DiagnosisPlan* diagPlan_;
  // Deterministic fault injection (ACCMOS_FAULT): hang/crash directives
  // change the emitted source — and therefore the compile-cache key — so
  // a faulted build can never leak into a fault-free run. Captured at
  // construction so one Emitter is internally consistent.
  FaultPlan faults_;

  // Per-actor emission state.
  const FlatActor* current_ = nullptr;
  std::vector<std::string> body_;        // eval-phase lines of current actor
  std::vector<std::string> updPre_;      // update-phase declarations
  std::vector<std::string> upd_;         // update-phase lines
  int varCounter_ = 0;

  // Accumulated across actors.
  std::ostringstream evalSection_;
  std::ostringstream updateSection_;
  std::vector<std::string> diagFuncs_;
  std::vector<int> collectSignals_;
};

}  // namespace accmos
