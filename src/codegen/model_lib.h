// RAII wrapper around a dlopen()ed generated model library — the in-process
// execution backend. The library is loaded once per engine (RTLD_NOW |
// RTLD_LOCAL, absolute path); every simulation afterwards is a direct
// accmos_run() call writing into caller-owned binary buffers, with no
// subprocess and no text parsing on the hot path.
//
// Reentrancy contract: accmos_run() allocates a private model-state
// instance per call, so any number of threads may call run() on one
// ModelLib concurrently (campaign and test-generation workers share the
// loaded library).
#pragma once

#include <string>

#include "codegen/compiler_driver.h"
#include "codegen/run_abi.h"

namespace accmos {

class ModelLib {
 public:
  // Loads the shared library at `path` and resolves + validates the ABI
  // entry points. Version negotiation: the info query is issued with the
  // host's (v2) struct size first; a library that rejects it with
  // ACCMOS_ABI_EARG is retried with the 88-byte v1 size, and accepted when
  // it reports abiVersion 1 — it simply has no batch capability. Throws
  // CompileError (carrying the dlerror/description) when the library
  // cannot be loaded, a mandatory symbol is missing, or the library's ABI
  // version is neither the host's nor 1. The ACCMOS_FAULT=dlopen-fail
  // directive (or the legacy ACCMOS_DLOPEN_FAIL variable) forces the
  // constructor to throw — a test hook for the subprocess fallback path.
  explicit ModelLib(const std::string& path);
  ~ModelLib();

  ModelLib(const ModelLib&) = delete;
  ModelLib& operator=(const ModelLib&) = delete;

  // Model geometry reported by the library (buffer sizes for run()).
  const AccmosModelInfo& info() const { return info_; }

  // ABI version the library actually implements (1 or ACCMOS_ABI_VERSION).
  // Callers must stamp this — not their own compile-time constant — into
  // AccmosRunArgs/AccmosRunResult so a v1 library's version check passes.
  uint32_t abiVersion() const { return info_.abiVersion; }

  // structSize a caller must stamp into AccmosRunArgs / AccmosBatchRunArgs
  // for THIS library. v3 appended the deadline/stepBudget fields, so a v3
  // host talking to an older library must present the smaller pre-v3
  // layout (which the v1 and v2 size checks accept) — the deadline fields
  // simply do not travel, and the host-side watchdog is the only deadline
  // enforcement for such libraries.
  uint32_t runArgsSize() const {
    return info_.abiVersion >= 3u ? static_cast<uint32_t>(sizeof(AccmosRunArgs))
                                  : ACCMOS_ABI_RUN_ARGS_SIZE_V2;
  }
  uint32_t batchArgsSize() const {
    return info_.abiVersion >= 3u
               ? static_cast<uint32_t>(sizeof(AccmosBatchRunArgs))
               : ACCMOS_ABI_BATCH_ARGS_SIZE_V2;
  }

  // True when the library understands ABI v3 deadlines (deadlineSeconds /
  // stepBudget in the args structs, timedOut in the results). Callers that
  // need a hard deadline against an older library must route the run to
  // the subprocess backend, whose watchdog works for any library age.
  bool supportsDeadlines() const { return info_.abiVersion >= 3u; }

  // One simulation run; returns the ABI status code (ACCMOS_ABI_OK on
  // success). Thread-safe: see the reentrancy contract above.
  int run(const AccmosRunArgs& args, AccmosRunResult& res) const {
    return run_(&args, &res);
  }

  // Maximum lanes per accmos_run_batch call, or 0 when the library has no
  // batch support (v1 library, missing symbol, or compiled without
  // -DACCMOS_BATCH_LANES). The three "no" answers are deliberately
  // indistinguishable: callers only ever need "can I batch, and how wide".
  uint64_t batchLanes() const {
    return (info_.abiVersion >= 2u && runBatch_ != nullptr) ? info_.batchLanes
                                                            : 0;
  }

  // One fused batch run (batchLanes() must be > 0; numLanes within it).
  // Thread-safe for the same reason run() is: the batch state instance is
  // private to the call.
  int runBatch(const AccmosBatchRunArgs& args,
               AccmosBatchRunResult& res) const {
    return runBatch_(&args, &res);
  }

  // Wall time spent in dlopen + symbol resolution + info query.
  double loadSeconds() const { return loadSeconds_; }

  const std::string& path() const { return path_; }

  // Process-wide count of successful library loads — the "did this request
  // dlopen anything fresh" regression handle, mirroring
  // CompilerDriver::compilerInvocations(): the model-library pool's
  // warm-hit guarantee is `loadCount()` unchanged across the request.
  static long loadCount();

 private:
  std::string path_;
  void* handle_ = nullptr;
  AccmosRunFn run_ = nullptr;
  AccmosRunBatchFn runBatch_ = nullptr;
  AccmosModelInfo info_{};
  double loadSeconds_ = 0.0;
};

}  // namespace accmos
