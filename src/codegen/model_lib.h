// RAII wrapper around a dlopen()ed generated model library — the in-process
// execution backend. The library is loaded once per engine (RTLD_NOW |
// RTLD_LOCAL, absolute path); every simulation afterwards is a direct
// accmos_run() call writing into caller-owned binary buffers, with no
// subprocess and no text parsing on the hot path.
//
// Reentrancy contract: accmos_run() allocates a private model-state
// instance per call, so any number of threads may call run() on one
// ModelLib concurrently (campaign and test-generation workers share the
// loaded library).
#pragma once

#include <string>

#include "codegen/compiler_driver.h"
#include "codegen/run_abi.h"

namespace accmos {

class ModelLib {
 public:
  // Loads the shared library at `path` and resolves + validates the ABI
  // entry points. Throws CompileError (carrying the dlerror/description)
  // when the library cannot be loaded, a symbol is missing, or the
  // library's ABI version does not match the host's. The ACCMOS_DLOPEN_FAIL
  // environment variable (any non-empty value but "0") forces the
  // constructor to throw — a test hook for the subprocess fallback path.
  explicit ModelLib(const std::string& path);
  ~ModelLib();

  ModelLib(const ModelLib&) = delete;
  ModelLib& operator=(const ModelLib&) = delete;

  // Model geometry reported by the library (buffer sizes for run()).
  const AccmosModelInfo& info() const { return info_; }

  // One simulation run; returns the ABI status code (ACCMOS_ABI_OK on
  // success). Thread-safe: see the reentrancy contract above.
  int run(const AccmosRunArgs& args, AccmosRunResult& res) const {
    return run_(&args, &res);
  }

  // Wall time spent in dlopen + symbol resolution + info query.
  double loadSeconds() const { return loadSeconds_; }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  void* handle_ = nullptr;
  AccmosRunFn run_ = nullptr;
  AccmosModelInfo info_{};
  double loadSeconds_ = 0.0;
};

}  // namespace accmos
