// The AccMoS engine: the full pipeline of the paper — simulation-oriented
// instrumentation, simulation code synthesis, compilation, execution, and
// result recovery.
#pragma once

#include <memory>
#include <optional>

#include "cov/coverage.h"
#include "diag/diagnosis.h"
#include "graph/flat_model.h"
#include "sim/options.h"
#include "sim/result.h"
#include "sim/testcase.h"

namespace accmos {

class AccMoSEngine {
 public:
  // Builds the plans and generates + compiles the simulation program once;
  // run() can then execute it repeatedly (with step/budget overrides) —
  // mirroring how a generated simulator is reused across test campaigns.
  AccMoSEngine(const FlatModel& fm, const SimOptions& opt,
               const TestCaseSpec& tests);
  ~AccMoSEngine();

  AccMoSEngine(const AccMoSEngine&) = delete;
  AccMoSEngine& operator=(const AccMoSEngine&) = delete;

  // Executes the compiled simulation. maxSteps/timeBudget default to the
  // options used at construction; pass nonzero values to override. The
  // stimulus seed can be overridden per run — the generated program takes
  // it as an argument, so one compiled simulator serves a whole campaign.
  SimulationResult run(uint64_t maxStepsOverride = 0,
                       double timeBudgetOverride = -1.0,
                       std::optional<uint64_t> seedOverride = std::nullopt);

  const std::string& generatedSource() const { return source_; }
  double generateSeconds() const { return generateSeconds_; }
  double compileSeconds() const { return compileSeconds_; }
  // True when the compiled simulator came from the content-addressed cache
  // (compileSeconds is then the cache-verification time, near zero).
  bool compileCacheHit() const { return compileCacheHit_; }
  const std::string& exePath() const { return exePath_; }
  const CoveragePlan* coveragePlan() const {
    return opt_.coverage ? &covPlan_ : nullptr;
  }

 private:
  const FlatModel& fm_;
  SimOptions opt_;
  TestCaseSpec tests_;
  CoveragePlan covPlan_;
  DiagnosisPlan diagPlan_;
  std::vector<int> collectSignals_;
  std::string source_;
  std::string exePath_;
  double generateSeconds_ = 0.0;
  double compileSeconds_ = 0.0;
  bool compileCacheHit_ = false;
  std::unique_ptr<class CompilerDriver> driver_;
};

// One-shot convenience.
SimulationResult runAccMoS(const FlatModel& fm, const SimOptions& opt,
                           const TestCaseSpec& tests);

}  // namespace accmos
