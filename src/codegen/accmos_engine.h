// The AccMoS engine: the full pipeline of the paper — simulation-oriented
// instrumentation, simulation code synthesis, compilation, execution, and
// result recovery.
//
// Execution has two backends (SimOptions::execMode, docs/EXECUTION.md):
//   Dlopen  — the generated code is compiled -shared -fPIC, loaded once
//             with dlopen, and every run() is an in-process accmos_run()
//             call filling caller-owned binary buffers. Zero subprocess,
//             zero text parsing on the hot path. Falls back to Process
//             automatically if the library cannot be built or loaded.
//   Process — the generated code is compiled to an executable and each
//             run() forks it, parsing the text result protocol.
// Both backends produce bit-identical SimulationResults.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>

#include "cov/coverage.h"
#include "diag/diagnosis.h"
#include "graph/flat_model.h"
#include "sim/failure.h"
#include "sim/options.h"
#include "sim/result.h"
#include "sim/testcase.h"

namespace accmos {

enum class ArtifactKind : uint8_t;

// The emit phase of the pipeline, detached from compilation: everything
// AccMoSEngine derives from (model, options, stimulus) before the compiler
// runs. Produced by AccMoSEngine::generate() and movable into an engine
// later, so a caller (the tiered engine) can emit once, start the compile
// asynchronously, and construct the engine when the binary is ready
// without re-emitting.
struct GeneratedModel {
  CoveragePlan covPlan;
  DiagnosisPlan diagPlan;
  std::vector<int> collectSignals;
  std::string source;
  double generateSeconds = 0.0;
};

class AccMoSEngine {
 public:
  // Builds the plans and generates + compiles the simulation program once;
  // run() can then execute it repeatedly (with step/budget overrides) —
  // mirroring how a generated simulator is reused across test campaigns.
  AccMoSEngine(const FlatModel& fm, const SimOptions& opt,
               const TestCaseSpec& tests);

  // Same, from an already-emitted GeneratedModel (skips the emit phase).
  // `gen` must come from generate() with the same (fm, opt, tests).
  AccMoSEngine(const FlatModel& fm, const SimOptions& opt,
               const TestCaseSpec& tests, GeneratedModel&& gen);

  // Validates the model/spec/options and runs the emitter — the pure
  // front half of the constructor. Throws ModelError exactly where the
  // constructor would.
  static GeneratedModel generate(const FlatModel& fm, const SimOptions& opt,
                                 const TestCaseSpec& tests);

  // The artifact the constructor will ask the compiler for under `opt` —
  // kind plus extra flags (the batch-lane define). Exposed so an async
  // pre-compile (TieredEngine) addresses the exact cache entry the engine
  // construction will then hit; any drift here would make the hand-over a
  // silent recompile.
  static ArtifactKind artifactPlan(const SimOptions& opt,
                                   std::string* extraFlags);

  ~AccMoSEngine();

  AccMoSEngine(const AccMoSEngine&) = delete;
  AccMoSEngine& operator=(const AccMoSEngine&) = delete;

  // Executes the compiled simulation. maxSteps/timeBudget default to the
  // options used at construction; pass nonzero values to override. The
  // stimulus seed can be overridden per run — the generated program takes
  // it as an argument, so one compiled simulator serves a whole campaign.
  // Thread-safe in both exec modes: concurrent campaign/gen workers share
  // one engine (and, in dlopen mode, one loaded library).
  SimulationResult run(uint64_t maxStepsOverride = 0,
                       double timeBudgetOverride = -1.0,
                       std::optional<uint64_t> seedOverride = std::nullopt);

  // Executes one simulation per seed, fusing them through the library's
  // accmos_run_batch kernel in chunks of up to batchLanes() lanes.
  // Results are returned in seed order and are bit-identical to calling
  // run() once per seed — the batch kernel is a throughput optimization,
  // never an observable one (the differential suites enforce this).
  // Falls back to per-seed scalar run() — and therefore reports "dlopen"
  // or "process" in SimulationResult::execMode instead of "dlopen-batch" —
  // when the engine has no loaded library, the library has no batch
  // capability (v1 artifact, missing symbol, compiled batchless), batching
  // is disabled (SimOptions::batchLanes == 0), or the ACCMOS_BATCH_FAIL
  // test hook is set. Thread-safe like run().
  std::vector<SimulationResult> runBatch(
      const std::vector<uint64_t>& seeds, uint64_t maxStepsOverride = 0,
      double timeBudgetOverride = -1.0);

  // Fault-contained single run: never throws for per-run faults. The
  // degradation ladder (docs/ROBUSTNESS.md) is
  //   dlopen -> subprocess -> structured failure:
  // an in-process run that crashes (caught by the signal guard) or hangs
  // (retired by its ABI v3 deadline / step budget) earns the engine a
  // strike and is retried exactly once on the subprocess backend, whose
  // host-side watchdog can kill even an uncooperative child. If that
  // attempt also fails, the returned SimulationResult has failed == true
  // and a populated RunFailure instead of observations — campaigns and the
  // generator record it and move on. Results that timed out carry
  // wall-clock-dependent partial observations, so containment reports them
  // as FailureKind::Timeout rather than merging nondeterministic data.
  SimulationResult runContained(
      uint64_t maxStepsOverride = 0, double timeBudgetOverride = -1.0,
      std::optional<uint64_t> seedOverride = std::nullopt);

  // Fault-contained runBatch(): same ladder per seed. A crash inside the
  // fused kernel takes the whole chunk down (lanes share one state struct
  // instance lifetime), so the chunk degrades to per-seed runContained();
  // a lane retired by the shared batch deadline gets one solo scalar retry
  // with a fresh deadline — a seed that can finish within the deadline on
  // its own therefore produces bit-identical results for any lane count.
  std::vector<SimulationResult> runBatchContained(
      const std::vector<uint64_t>& seeds, uint64_t maxStepsOverride = 0,
      double timeBudgetOverride = -1.0);

  // Quarantine: after two strikes (in-process crash or hang) the engine
  // stops using the dlopen library for the rest of its lifetime and routes
  // every run through the subprocess backend, where the OS cleans up
  // whatever a fault leaves behind. Monotonic — there is no parole.
  int strikes() const { return strikes_.load(std::memory_order_relaxed); }
  bool quarantined() const { return strikes() >= 2; }

  // Lanes a runBatch() call will actually fuse per kernel invocation:
  // the loaded library's capability, or 0 when runBatch() would take the
  // scalar fallback (evaluated per call — the ACCMOS_BATCH_FAIL hook is
  // read here, not at construction).
  uint64_t batchLanes() const;

  const std::string& generatedSource() const { return source_; }
  double generateSeconds() const { return generateSeconds_; }
  double compileSeconds() const { return compileSeconds_; }
  // Wall time spent loading the shared library (0 in process mode).
  double loadSeconds() const { return loadSeconds_; }
  // True when the compiled simulator came from the content-addressed cache
  // (compileSeconds is then the cache-verification time, near zero).
  bool compileCacheHit() const { return compileCacheHit_; }
  const std::string& exePath() const { return exePath_; }
  // Backend actually in use — Process either by request or because the
  // dlopen backend fell back.
  ExecMode execModeUsed() const { return execModeUsed_; }
  const CoveragePlan* coveragePlan() const {
    return opt_.coverage ? &covPlan_ : nullptr;
  }

 private:
  SimulationResult runInProcess(uint64_t steps, double budget, uint64_t seed);
  SimulationResult runSubprocess(uint64_t steps, double budget,
                                 uint64_t seed);
  // One fused kernel call over n <= batchLanes() consecutive seeds,
  // appending n finished results to `out`. `contained` selects which
  // scalar path (run / runContained) absorbs kernel crashes and
  // deadline-retired lanes.
  void runBatchChunk(const uint64_t* seeds, size_t n, uint64_t steps,
                     double budget, bool contained,
                     std::vector<SimulationResult>& out);
  // Common result tail: coverage report + generate/compile/load timings.
  void finishResult(SimulationResult& r) const;

  // Subprocess fallback needs an *executable*; in dlopen mode the engine
  // only compiled a shared library, so the executable is built lazily on
  // first fallback (and cached — content-addressed — for the next one).
  const std::string& ensureExecutable();
  void strike() { strikes_.fetch_add(1, std::memory_order_relaxed); }
  // True when this engine's options ask for deadline enforcement.
  bool deadlineArmed() const {
    return opt_.runTimeoutSec > 0.0 || opt_.stepBudget > 0;
  }
  // Whether a run may use the loaded library right now (not quarantined,
  // and the library can honour a requested deadline cooperatively).
  bool libUsable() const;
  SimulationResult failedResult(FailureKind kind, uint64_t seed, int signal,
                                int retries, const char* backend,
                                std::string message) const;

  const FlatModel& fm_;
  SimOptions opt_;
  TestCaseSpec tests_;
  CoveragePlan covPlan_;
  DiagnosisPlan diagPlan_;
  std::vector<int> collectSignals_;
  std::string source_;
  std::string exePath_;
  double generateSeconds_ = 0.0;
  double compileSeconds_ = 0.0;
  double loadSeconds_ = 0.0;
  bool compileCacheHit_ = false;
  ExecMode execModeUsed_ = ExecMode::Process;
  std::unique_ptr<class CompilerDriver> driver_;
  std::unique_ptr<class ModelLib> lib_;  // set in dlopen mode only
  // Keeps a pool-compiled artifact's workspace alive for this engine's
  // lifetime when the binary could not be published to the cache
  // (CompileOutput::keepAlive).
  std::shared_ptr<void> artifactKeepAlive_;

  // Lazily-built executable for the subprocess fallback (see
  // ensureExecutable); equals exePath_ when the engine started in Process
  // mode. Guarded by exeMutex_ — campaign workers share the engine.
  std::string processExePath_;
  std::mutex exeMutex_;
  std::atomic<int> strikes_{0};
};

// One-shot convenience.
SimulationResult runAccMoS(const FlatModel& fm, const SimOptions& opt,
                           const TestCaseSpec& tests);

}  // namespace accmos
