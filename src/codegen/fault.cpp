#include "codegen/fault.h"

#include <csignal>
#include <cstdlib>
#include <mutex>
#include <string>
#include <vector>

#include "ir/model.h"

namespace accmos {
namespace {

std::vector<std::string> splitList(const std::string& s, const char* seps) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (std::string(seps).find(c) != std::string::npos) {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

uint64_t parseU64(const std::string& s, const std::string& directive) {
  if (s.empty()) throw ModelError("ACCMOS_FAULT: missing number in '" +
                                  directive + "'");
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9')
      throw ModelError("ACCMOS_FAULT: bad number '" + s + "' in '" +
                       directive + "'");
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  return v;
}

// One directive: name['@'step](':'qual['='val])*
void parseDirective(const std::string& d, FaultPlan& plan) {
  std::vector<std::string> parts = splitList(d, ":");
  if (parts.empty()) return;

  std::string head = parts[0];  // name[@step]
  std::string name = head;
  bool hasStep = false;
  uint64_t step = 0;
  if (auto at = head.find('@'); at != std::string::npos) {
    name = head.substr(0, at);
    step = parseU64(head.substr(at + 1), d);
    hasStep = true;
  }

  auto qualifiers = [&](size_t from) {
    std::vector<std::pair<std::string, std::string>> qs;
    for (size_t i = from; i < parts.size(); ++i) {
      auto eq = parts[i].find('=');
      if (eq == std::string::npos)
        qs.emplace_back(parts[i], "");
      else
        qs.emplace_back(parts[i].substr(0, eq), parts[i].substr(eq + 1));
    }
    return qs;
  };

  if (name == "hang" || name == "crash") {
    FaultPlan::SiteFault& f = name == "hang" ? plan.hang : plan.crash;
    f.armed = true;
    f.step = step;
    for (auto& [q, v] : qualifiers(1)) {
      if (q == "seed") {
        f.hasSeed = true;
        f.seed = parseU64(v, d);
      } else {
        throw ModelError("ACCMOS_FAULT: unknown qualifier '" + q + "' in '" +
                         d + "'");
      }
    }
  } else if (name == "compile-fail") {
    if (hasStep)
      throw ModelError("ACCMOS_FAULT: compile-fail takes no @step: '" + d +
                       "'");
    plan.compileFail = true;
    plan.compileFailSignal = SIGKILL;
    for (auto& [q, v] : qualifiers(1)) {
      if (q == "once") {
        plan.compileFailOnce = true;
      } else if (q == "sig") {
        plan.compileFailSignal = static_cast<int>(parseU64(v, d));
        plan.compileFailExit = 0;
        // Signal 0 is the kill(2) existence probe — it would inject
        // nothing, which is exactly the silent no-op this facility exists
        // to rule out.
        if (plan.compileFailSignal == 0)
          throw ModelError("ACCMOS_FAULT: sig must be a real signal: '" + d +
                           "'");
      } else if (q == "exit") {
        plan.compileFailExit = static_cast<int>(parseU64(v, d));
        plan.compileFailSignal = 0;
        if (plan.compileFailExit == 0)
          throw ModelError("ACCMOS_FAULT: exit must be nonzero: '" + d + "'");
      } else {
        throw ModelError("ACCMOS_FAULT: unknown qualifier '" + q + "' in '" +
                         d + "'");
      }
    }
  } else if (name == "slow-compile") {
    int ms = 0;
    for (auto& [q, v] : qualifiers(1)) {
      if (q == "ms")
        ms = static_cast<int>(parseU64(v, d));
      else if (v.empty())  // bare-number shorthand: slow-compile:250
        ms = static_cast<int>(parseU64(q, d));
      else
        throw ModelError("ACCMOS_FAULT: unknown qualifier '" + q + "' in '" +
                         d + "'");
    }
    if (ms <= 0)
      throw ModelError("ACCMOS_FAULT: slow-compile needs a positive ms: '" +
                       d + "'");
    plan.slowCompileMs = ms;
  } else if (name == "dlopen-fail") {
    plan.dlopenFail = true;
  } else if (name == "batch-fail") {
    plan.batchFail = true;
  } else {
    throw ModelError("ACCMOS_FAULT: unknown directive '" + d + "'");
  }
}

}  // namespace

FaultPlan faultPlanFromEnv() {
  FaultPlan plan;
  if (const char* v = std::getenv("ACCMOS_FAULT"); v != nullptr && *v) {
    for (const std::string& d : splitList(v, ";,")) parseDirective(d, plan);
  }
  // Legacy hooks, kept as aliases so pre-existing tests and workflows
  // keep working unchanged.
  if (const char* v = std::getenv("ACCMOS_DLOPEN_FAIL");
      v != nullptr && *v && std::string(v) != "0")
    plan.dlopenFail = true;
  if (const char* v = std::getenv("ACCMOS_BATCH_FAIL");
      v != nullptr && *v && std::string(v) != "0")
    plan.batchFail = true;
  return plan;
}

bool consumeCompileFault(const FaultPlan& plan) {
  if (!plan.compileFail) return false;
  if (!plan.compileFailOnce) return true;
  // :once re-arms whenever the env VALUE changes, so sequential tests in
  // one process each get their own single shot.
  static std::mutex mu;
  static std::string armedFor;
  static bool used = false;
  const char* env = std::getenv("ACCMOS_FAULT");
  std::string cur = env ? env : "";
  std::lock_guard<std::mutex> lock(mu);
  if (cur != armedFor) {
    armedFor = cur;
    used = false;
  }
  if (used) return false;
  used = true;
  return true;
}

}  // namespace accmos
