// In-process crash containment for dlopen'd generated code: an ABI call
// is wrapped in a sigsetjmp guard so a fatal signal raised inside the
// generated step loop (SIGSEGV/SIGBUS/SIGFPE/SIGILL) longjmps back to
// the host instead of killing the whole campaign/gen process.
//
// Honesty note (docs/ROBUSTNESS.md): recovering a C++ process after
// SIGSEGV is best-effort — the generated model's heap state is abandoned
// (leaked, by design) and nothing re-enters the faulted library call.
// The guard exists to buy ONE orderly retry on the subprocess backend
// and to trip the quarantine counter; a model that faults twice is
// demoted to Process mode where the OS provides real isolation.
#ifndef ACCMOS_CODEGEN_RUN_GUARD_H_
#define ACCMOS_CODEGEN_RUN_GUARD_H_

#include <functional>

namespace accmos {

struct GuardedCallResult {
  int rc = 0;          // fn's return value when !crashed
  bool crashed = false;
  int signal = 0;      // the fatal signal caught when crashed
};

// Runs fn() with the fatal-signal guard armed on this thread. Handlers
// are installed process-wide once (SA_NODEFER|SA_ONSTACK, per-thread
// sigaltstack); a guarded thread that faults longjmps out, an unguarded
// thread re-raises with the default disposition — behavior outside
// guarded regions is unchanged. Set ACCMOS_NO_RUN_GUARD=1 to disable
// (e.g. to let a debugger see the original fault).
GuardedCallResult runGuarded(const std::function<int()>& fn);

}  // namespace accmos

#endif  // ACCMOS_CODEGEN_RUN_GUARD_H_
