// Deterministic fault injection: one env-driven facility (ACCMOS_FAULT)
// that lets CI and tests exercise every containment path byte-for-byte —
// hangs and crashes planted in the GENERATED step loop, compiler
// failures staged in CompilerDriver, and the legacy dlopen/batch
// degradation hooks — without patching source or depending on luck.
//
// Grammar (directives separated by ';' or ','):
//
//   ACCMOS_FAULT=name[@STEP][:qual[=val]]...
//
//   hang[@STEP][:seed=S]      generated run spins at STEP (default 0):
//                             cooperatively polls its deadline, so a run
//                             WITH a deadline retires as Timeout and one
//                             WITHOUT hangs for real (exercising the
//                             subprocess watchdog). Optional seed filter.
//   crash[@STEP][:seed=S]     generated run raises SIGSEGV at STEP —
//                             caught by the in-process signal guard, a
//                             real signal death in a subprocess.
//   compile-fail[:once][:sig=N][:exit=N]
//                             compiler invocation dies. Default/sig=N: by
//                             signal N (default SIGKILL — a transient
//                             OOM-kill look-alike that the retry loop
//                             absorbs); exit=N: nonzero exit with stderr
//                             (non-transient). once: only the first
//                             invocation after the env value changes.
//   slow-compile:MS           compiler invocation sleeps MS milliseconds
//                             first (exercises the compile watchdog).
//   dlopen-fail               alias of the ACCMOS_DLOPEN_FAIL hook.
//   batch-fail                alias of the ACCMOS_BATCH_FAIL hook.
//
// The legacy single-purpose env vars keep working; faultPlanFromEnv()
// folds them in. hang/crash change the emitted source text, so they
// re-key the compile cache automatically — a faulted build can never be
// served to (or poison) a fault-free run.
#ifndef ACCMOS_CODEGEN_FAULT_H_
#define ACCMOS_CODEGEN_FAULT_H_

#include <cstdint>

namespace accmos {

struct FaultPlan {
  // A step-loop fault site (hang or crash): fires at the first step >=
  // `step` of any run whose seed matches (all seeds when !hasSeed).
  struct SiteFault {
    bool armed = false;
    uint64_t step = 0;
    bool hasSeed = false;
    uint64_t seed = 0;
  };

  SiteFault hang;
  SiteFault crash;

  bool compileFail = false;
  bool compileFailOnce = false;
  int compileFailSignal = 0;  // kill by this signal when > 0
  int compileFailExit = 0;    // else exit with this code when > 0
  int slowCompileMs = 0;

  bool dlopenFail = false;
  bool batchFail = false;

  bool any() const {
    return hang.armed || crash.armed || compileFail || slowCompileMs > 0 ||
           dlopenFail || batchFail;
  }
  // True when the emitter must plant fault code in the generated source.
  bool affectsEmit() const { return hang.armed || crash.armed; }
};

// Parses ACCMOS_FAULT (plus the legacy ACCMOS_DLOPEN_FAIL /
// ACCMOS_BATCH_FAIL variables) on every call, so tests can flip the env
// between runs. Malformed directives throw ModelError — a typo'd fault
// spec silently injecting nothing would make CI vacuously green.
FaultPlan faultPlanFromEnv();

// Arms/consumes the compile-fail directive: returns true when THIS
// compiler invocation should fail. With :once, only the first call after
// the ACCMOS_FAULT value changes returns true (process-global bookkeeping,
// thread-safe).
bool consumeCompileFault(const FaultPlan& plan);

}  // namespace accmos

#endif  // ACCMOS_CODEGEN_FAULT_H_
