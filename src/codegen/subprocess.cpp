#include "codegen/subprocess.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>

namespace accmos {

namespace {

using Clock = std::chrono::steady_clock;

void applyChildLimits(const SpawnLimits& limits) {
  // Runs between fork and exec: async-signal-safe calls only.
  if (limits.cpuSeconds > 0.0) {
    rlimit rl;
    rl.rlim_cur = static_cast<rlim_t>(std::ceil(limits.cpuSeconds));
    rl.rlim_max = rl.rlim_cur + 2;  // SIGXCPU first, hard SIGKILL shortly after
    ::setrlimit(RLIMIT_CPU, &rl);
  }
  if (limits.memoryBytes > 0) {
    rlimit rl;
    rl.rlim_cur = static_cast<rlim_t>(limits.memoryBytes);
    rl.rlim_max = rl.rlim_cur;
    ::setrlimit(RLIMIT_AS, &rl);
  }
  if (limits.fileSizeBytes > 0) {
    rlimit rl;
    rl.rlim_cur = static_cast<rlim_t>(limits.fileSizeBytes);
    rl.rlim_max = rl.rlim_cur;
    ::setrlimit(RLIMIT_FSIZE, &rl);
  }
}

}  // namespace

bool SpawnResult::exitedOk() const {
  return !launchFailed && !timedOut && WIFEXITED(status) &&
         WEXITSTATUS(status) == 0;
}

SpawnResult spawnAndCapture(const std::vector<std::string>& argv,
                            const SpawnLimits& limits) {
  SpawnResult res;
  if (argv.empty()) {
    res.launchFailed = true;
    res.launchErrno = EINVAL;
    return res;
  }

  int fds[2];
  if (::pipe(fds) != 0) {
    res.launchFailed = true;
    res.launchErrno = errno;
    return res;
  }

  pid_t pid = ::fork();
  if (pid < 0) {
    res.launchFailed = true;
    res.launchErrno = errno;
    ::close(fds[0]);
    ::close(fds[1]);
    return res;
  }

  if (pid == 0) {
    // Child. Own process group, so the watchdog's kill(-pgid) takes the
    // whole compiler pipeline (driver + cc1plus + as + ld) with it.
    ::setpgid(0, 0);
    applyChildLimits(limits);
    ::dup2(fds[1], STDOUT_FILENO);
    ::dup2(fds[1], STDERR_FILENO);
    ::close(fds[0]);
    ::close(fds[1]);
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const auto& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
    cargv.push_back(nullptr);
    ::execvp(cargv[0], cargv.data());
    // exec failed: report errno on the pipe-free channel available — the
    // exit status. 127 is the shell's "command not found" convention.
    _exit(errno == ENOENT ? 127 : 126);
  }

  // Parent. Mirror the setpgid (races with the child's own call are
  // harmless — one of the two wins and both set the same group).
  ::setpgid(pid, pid);
  ::close(fds[1]);

  const bool hasDeadline = limits.timeoutSec > 0.0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             hasDeadline ? limits.timeoutSec : 0.0));

  char buf[4096];
  bool open = true;
  while (open) {
    int waitMs = -1;
    if (hasDeadline && !res.timedOut) {
      auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      waitMs = static_cast<int>(left.count());
      if (waitMs < 0) waitMs = 0;
    }
    pollfd pfd{fds[0], POLLIN, 0};
    int pr = ::poll(&pfd, 1, waitMs);
    if (pr < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pr == 0) {
      // Watchdog fired: kill the whole group, then keep draining the pipe
      // until EOF so the child can never block on a full pipe during its
      // death and we never return with it still running.
      res.timedOut = true;
      ::kill(-pid, SIGKILL);
      continue;
    }
    ssize_t n = ::read(fds[0], buf, sizeof(buf));
    if (n > 0) {
      res.output.append(buf, static_cast<size_t>(n));
    } else if (n == 0 || errno != EINTR) {
      open = false;
    }
  }
  ::close(fds[0]);

  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  res.status = status;
  if (!res.timedOut && WIFEXITED(status) && WEXITSTATUS(status) == 127) {
    // execvp could not find/launch the program.
    res.launchFailed = true;
    res.launchErrno = ENOENT;
  }
  return res;
}

std::string describeWaitStatus(int status) {
  if (status == -1) {
    return std::string("could not be launched (") + std::strerror(errno) + ")";
  }
  if (WIFSIGNALED(status)) {
    int sig = WTERMSIG(status);
    const char* name = nullptr;
    switch (sig) {
      case SIGKILL: name = "SIGKILL"; break;
      case SIGSEGV: name = "SIGSEGV"; break;
      case SIGBUS: name = "SIGBUS"; break;
      case SIGFPE: name = "SIGFPE"; break;
      case SIGILL: name = "SIGILL"; break;
      case SIGABRT: name = "SIGABRT"; break;
      case SIGTERM: name = "SIGTERM"; break;
      case SIGXCPU: name = "SIGXCPU"; break;
      case SIGXFSZ: name = "SIGXFSZ"; break;
      default: break;
    }
    return "was killed by signal " + std::to_string(sig) +
           (name ? std::string(" (") + name + ")" : "");
  }
  if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
    return "exited with status " + std::to_string(WEXITSTATUS(status));
  }
  if (!WIFEXITED(status)) {
    return "stopped abnormally (wait status " + std::to_string(status) + ")";
  }
  return "";
}

bool statusKilledBy(int status, int sig) {
  return WIFSIGNALED(status) && WTERMSIG(status) == sig;
}

}  // namespace accmos
