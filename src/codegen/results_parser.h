// Decodes generated-simulator results back into the SimulationResult
// structure the in-process engines produce — what makes AccMoS-vs-SSE
// results directly comparable in the tests and in the Table 2/3 benches.
//
// Two decoders, one contract:
//   parseResults        — the text result protocol captured from a
//                         subprocess run (ExecMode::Process).
//   decodeBinaryResults — the packed buffers an in-process accmos_run()
//                         call filled (ExecMode::Dlopen).
// Both must produce bit-identical SimulationResults for the same
// simulation; the differential tests in tests/test_exec_modes.cpp hold
// them to it.
#pragma once

#include <string>
#include <vector>

#include "codegen/run_abi.h"
#include "cov/coverage.h"
#include "diag/diagnosis.h"
#include "graph/flat_model.h"
#include "ir/model.h"
#include "sim/options.h"
#include "sim/result.h"

namespace accmos {

// Malformed or truncated result data. A ModelError so pipeline-level
// handlers see it; the message always carries the offending protocol line
// number for the text decoder.
class ResultParseError : public ModelError {
 public:
  explicit ResultParseError(const std::string& what) : ModelError(what) {}
};

// `collectSignals` must be the emitter's monitored-signal list; plans may be
// null when the program was generated without the corresponding
// instrumentation. Throws ResultParseError (with the 1-based line number of
// the offending line in `output`) on any malformed, truncated, or
// out-of-range field — never returns a silent partial result.
SimulationResult parseResults(const std::string& output, const FlatModel& fm,
                              const CoveragePlan* covPlan,
                              const DiagnosisPlan* diagPlan,
                              const std::vector<int>& collectSignals,
                              const std::vector<CustomDiagnostic>& custom);

// Decodes the caller-owned buffers of a completed accmos_run() call. The
// AccmosRunResult must have been filled by a run returning ACCMOS_ABI_OK
// against buffers sized from the library's AccmosModelInfo.
SimulationResult decodeBinaryResults(
    const AccmosRunResult& res, const FlatModel& fm,
    const CoveragePlan* covPlan, const DiagnosisPlan* diagPlan,
    const std::vector<int>& collectSignals,
    const std::vector<CustomDiagnostic>& custom);

}  // namespace accmos
