// Parses the result protocol printed by a generated simulation binary back
// into the same SimulationResult structure the in-process engines produce —
// what makes AccMoS-vs-SSE results directly comparable in the tests and in
// the Table 2/3 benches.
#pragma once

#include <string>
#include <vector>

#include "cov/coverage.h"
#include "diag/diagnosis.h"
#include "graph/flat_model.h"
#include "sim/options.h"
#include "sim/result.h"

namespace accmos {

class ResultParseError : public std::runtime_error {
 public:
  explicit ResultParseError(const std::string& what)
      : std::runtime_error(what) {}
};

// `collectSignals` must be the emitter's monitored-signal list; plans may be
// null when the program was generated without the corresponding
// instrumentation.
SimulationResult parseResults(const std::string& output, const FlatModel& fm,
                              const CoveragePlan* covPlan,
                              const DiagnosisPlan* diagPlan,
                              const std::vector<int>& collectSignals,
                              const std::vector<CustomDiagnostic>& custom);

}  // namespace accmos
