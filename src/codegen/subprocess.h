// Watchdogged fork/exec with resource limits — the containment substrate
// under both CompilerDriver paths (compiler invocations and generated
// subprocess runs). Replaces std::system()/popen(): those give the host
// no handle to kill a wedged child, no way to cap its resources, and no
// distinction between "timed out and we killed it" and "died of SIGKILL
// on its own" (the OOM-killer signature the retry loop needs to see).
#ifndef ACCMOS_CODEGEN_SUBPROCESS_H_
#define ACCMOS_CODEGEN_SUBPROCESS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace accmos {

// Limits applied to the child. All default off (0). Wall-clock timeout is
// enforced by the parent: on expiry the whole child PROCESS GROUP gets
// SIGKILL (the child setpgid()s itself, so compiler driver scripts and
// cc1plus die with it). The rlimits are enforced by the kernel in the
// child before exec.
struct SpawnLimits {
  double timeoutSec = 0.0;     // wall-clock watchdog
  double cpuSeconds = 0.0;     // RLIMIT_CPU (rounded up to whole seconds)
  uint64_t memoryBytes = 0;    // RLIMIT_AS
  uint64_t fileSizeBytes = 0;  // RLIMIT_FSIZE
};

struct SpawnResult {
  bool launchFailed = false;  // fork/pipe failed; see launchErrno
  int launchErrno = 0;
  bool timedOut = false;  // watchdog fired; status reflects our SIGKILL
  int status = 0;         // raw waitpid status (WIFEXITED/WIFSIGNALED)
  std::string output;     // combined stdout+stderr, captured via a pipe

  bool exitedOk() const;
};

// Runs argv[0] with the given argv (no shell involved), capturing
// combined stdout+stderr. Never throws; every failure mode is in the
// returned struct. The child is always fully reaped before return — a
// deadline-exceeded run can never linger and block process exit.
SpawnResult spawnAndCapture(const std::vector<std::string>& argv,
                            const SpawnLimits& limits);

// "exited with status N" / "killed by signal N (SIGSEGV)" — shared by
// CompilerDriver diagnostics and the failure taxonomy.
std::string describeWaitStatus(int status);

// True when the wait status says "killed by exactly this signal".
bool statusKilledBy(int status, int sig);

}  // namespace accmos

#endif  // ACCMOS_CODEGEN_SUBPROCESS_H_
