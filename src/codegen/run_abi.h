// The in-process execution ABI between the host engine and a generated
// model compiled as a shared library.
//
// This header is the single source of truth for the contract: the host
// includes it directly, and the exact text of this file is embedded into
// every generated translation unit (see runAbiText(), produced by CMake
// from this file), so both sides of a dlopen boundary are compiled from
// the same definitions. The content-addressed compile cache keys on the
// full generated source, so editing this file automatically re-keys every
// cached shared library.
//
// Contract (docs/EXECUTION.md has the narrative version):
//  - The library exports two mandatory C symbols:
//      int accmos_model_info(AccmosModelInfo*);
//      int accmos_run(const AccmosRunArgs*, AccmosRunResult*);
//    and, when built with batch support (ABI v2, -DACCMOS_BATCH_LANES=N),
//    a third optional one:
//      int accmos_run_batch(const AccmosBatchRunArgs*, AccmosBatchRunResult*);
//  - All result buffers are CALLER-owned; the library never allocates
//    memory that outlives a call. The caller sizes them from
//    accmos_model_info (worst case for the diagnostic tables).
//  - accmos_run is REENTRANT: every call allocates a private model-state
//    instance, so any number of threads may call into one loaded library
//    concurrently (this is what lets campaign/gen workers share a single
//    dlopen'd simulator).
//  - Both sides check structSize and abiVersion; any mismatch fails the
//    call with a nonzero code instead of reading garbage.
//  - Values cross the boundary pre-widened exactly like the text protocol:
//    float-typed signals as IEEE-754 doubles (bit pattern in a uint64_t),
//    integer-typed signals as two's-complement int64_t — so a binary
//    decode is bit-identical to parsing the printed result block.
#ifndef ACCMOS_RUN_ABI_H_
#define ACCMOS_RUN_ABI_H_

#include <stdint.h>

/* Version 2 adds the batched entry point and the batchLanes capability
 * field appended to AccmosModelInfo. Version 3 appends a wall-clock
 * deadline and a max-step budget to the run-args structs (scalar and
 * batch) and defines the ETIMEOUT retirement status — AccmosModelInfo is
 * unchanged from v2. ACCMOS_RUN_ABI_FORCE_V1 is a test hook: defining it
 * before this header yields a genuine version-1 build (88-byte info
 * struct, no batch declarations), which is how the fallback tests
 * manufacture a real v1 library rather than simulating one. */
#ifdef ACCMOS_RUN_ABI_FORCE_V1
#define ACCMOS_ABI_VERSION 1u
#else
#define ACCMOS_ABI_VERSION 3u
#endif

/* sizeof(AccmosModelInfo) in a version-1 build: the negotiation handshake
 * retries accmos_model_info with this size when the full-size query is
 * rejected, so v3 hosts can still load v1 libraries. */
#define ACCMOS_ABI_INFO_SIZE_V1 88u

/* sizeof(AccmosRunArgs) / sizeof(AccmosBatchRunArgs) before v3 appended
 * the deadline fields. A library's accmos_run checks structSize against
 * ITS OWN sizeof, so a v3 host calling into an older library must stamp
 * the older, smaller size (the leading layout is unchanged — v3 only
 * appends). The v1 scalar args layout is identical to v2's. */
#define ACCMOS_ABI_RUN_ARGS_SIZE_V2 32u
#define ACCMOS_ABI_BATCH_ARGS_SIZE_V2 40u

/* accmos_run / accmos_model_info return codes. */
enum {
  ACCMOS_ABI_OK = 0,
  ACCMOS_ABI_EARG = 1,     /* null pointer or structSize mismatch */
  ACCMOS_ABI_EVERSION = 2, /* abiVersion mismatch */
  ACCMOS_ABI_EBUFFER = 3,  /* a caller buffer is missing or mis-sized */
  ACCMOS_ABI_EALLOC = 4,   /* model-state allocation failed */
  ACCMOS_ABI_EBATCH = 5,   /* bad batch geometry (lane count, lane array) */
  ACCMOS_ABI_ETIMEOUT = 6, /* run retired by deadline / step budget (v3);
                            * result fields up to the retirement point are
                            * valid and timedOut is set */
};

/* Coverage bitmap order, everywhere a [4] appears below. Matches the host's
 * CovMetric enum: actor, condition, decision, MC/DC. */
enum {
  ACCMOS_ABI_COV_ACTOR = 0,
  ACCMOS_ABI_COV_CONDITION = 1,
  ACCMOS_ABI_COV_DECISION = 2,
  ACCMOS_ABI_COV_MCDC = 3,
};

/* Static shape of the compiled model: everything the caller needs to size
 * result buffers. Filled by accmos_model_info; the host cross-checks it
 * against its own instrumentation plans before trusting a loaded library
 * (a stale or foreign artifact fails closed). */
typedef struct AccmosModelInfo {
  uint32_t structSize; /* in: sizeof(AccmosModelInfo) */
  uint32_t abiVersion; /* out: ACCMOS_ABI_VERSION of the library */
  uint64_t covLen[4];  /* coverage slots per metric (0 = uninstrumented) */
  uint64_t numActors;
  uint64_t numDiagKinds;   /* rows per actor in the diagnostic table */
  uint64_t numCustom;      /* custom signal diagnoses compiled in */
  uint64_t numCollect;     /* monitored signals, in emission order */
  uint64_t collectValsLen; /* sum of monitored-signal widths */
  uint64_t outValsLen;     /* sum of root-outport widths */
#if ACCMOS_ABI_VERSION >= 2u
  /* Batch capability: maximum lanes accmos_run_batch accepts per call, or
   * 0 when the library was compiled without batch support. A v1 library
   * writes only the first ACCMOS_ABI_INFO_SIZE_V1 bytes, so on the host
   * side this field reads 0 for v1 libraries (the host zero-fills the
   * struct before the query) — exactly the "no batch" answer wanted. */
  uint64_t batchLanes;
#endif
} AccmosModelInfo;

typedef struct AccmosRunArgs {
  uint32_t structSize; /* sizeof(AccmosRunArgs) */
  uint32_t abiVersion; /* ACCMOS_ABI_VERSION the caller was built against */
  uint64_t maxSteps;
  double timeBudgetSec; /* <= 0 = unlimited */
  uint64_t seed;
#if ACCMOS_ABI_VERSION >= 3u
  /* Fault-containment limits (v3). deadlineSeconds is an ABSOLUTE point
   * on the monotonic clock, expressed as seconds since its epoch
   * (std::chrono::steady_clock on the host; the generated code reads the
   * same clock) — 0 means no deadline. The step loop polls it every K
   * steps (amortized) and retires the run with ACCMOS_ABI_ETIMEOUT when
   * it passes. stepBudget caps total executed steps independently of
   * maxSteps (0 = no budget); exceeding it also retires with ETIMEOUT.
   * Unlike timeBudgetSec (a normal early-stop that yields a successful
   * result), these mark the result timedOut — a containment event. */
  double deadlineSeconds;
  uint64_t stepBudget;
#endif
} AccmosRunArgs;

/* One aggregated diagnostic event: mirrors a "DIAG actor kind first count"
 * line of the text protocol. */
typedef struct AccmosDiagRec {
  int32_t actorId;
  int32_t kind;
  uint64_t firstStep;
  uint64_t count;
} AccmosDiagRec;

/* One fired custom diagnosis: mirrors a "CUSTOM idx first count" line. */
typedef struct AccmosCustomRec {
  uint64_t index;
  uint64_t firstStep;
  uint64_t count;
} AccmosCustomRec;

typedef struct AccmosRunResult {
  uint32_t structSize; /* in: sizeof(AccmosRunResult) */
  uint32_t abiVersion; /* in: caller's ACCMOS_ABI_VERSION */

  /* ---- outputs ---- */
  uint64_t stepsExecuted;
  uint32_t stoppedEarly;
  uint32_t timedOut; /* run was retired by deadline/stepBudget (v3 sets
                      * this; pre-v3 libraries wrote 0 here — the field
                      * was reserved0, so the layout is unchanged) */
  uint64_t execNs;

  /* Coverage bitmaps, one raw 0/1 byte per slot. cov[m] may be null when
   * covLen[m] is 0. covLen is an input capacity and must equal the
   * library's own slot counts exactly. */
  uint8_t* cov[4];
  uint64_t covLen[4];

  /* Diagnostic records, appended in (actor-major, kind) order — the same
   * order the text protocol prints them. diagCap must be at least
   * numActors * numDiagKinds (the worst case). */
  AccmosDiagRec* diags;
  uint64_t diagCap;
  uint64_t diagCount; /* out */

  AccmosCustomRec* customs;
  uint64_t customCap;
  uint64_t customCount; /* out */

  /* Monitored signals: per-signal occurrence counts, then every element of
   * every signal packed in emission order, 8 bytes each (double bits for
   * float-typed signals, two's-complement int64 otherwise). */
  uint64_t* collectCounts;  /* numCollect entries */
  uint64_t numCollect;      /* in: capacity, must equal the library's */
  uint64_t* collectVals;    /* collectValsLen entries */
  uint64_t collectValsLen;  /* in: capacity, must equal the library's */

  /* Final root-outport values, packed the same way. */
  uint64_t* outVals;
  uint64_t outValsLen;
} AccmosRunResult;

#if ACCMOS_ABI_VERSION >= 2u
/* Arguments for one fused batch call: numLanes independent runs that share
 * a single structure-of-arrays state block and one fused step loop. Lane l
 * simulates seeds[l]; everything else (step/budget limits) is shared. */
typedef struct AccmosBatchRunArgs {
  uint32_t structSize; /* sizeof(AccmosBatchRunArgs) */
  uint32_t abiVersion; /* ACCMOS_ABI_VERSION the caller was built against */
  uint64_t numLanes;   /* 1 .. AccmosModelInfo.batchLanes */
  uint64_t maxSteps;
  double timeBudgetSec;  /* <= 0 = unlimited; applies to the whole batch */
  const uint64_t* seeds; /* numLanes entries */
#if ACCMOS_ABI_VERSION >= 3u
  /* Same semantics as the scalar fields (see AccmosRunArgs). The deadline
   * applies to the whole fused batch: when it passes, every lane not yet
   * retired is marked timedOut and the call returns ETIMEOUT (lanes that
   * already finished keep their normal results). */
  double deadlineSeconds;
  uint64_t stepBudget;
#endif
} AccmosBatchRunArgs;

/* Batch results are an array of per-lane scalar result blocks: lane l's
 * outputs land in lanes[l], which must be initialized exactly like a
 * scalar AccmosRunResult (structSize, abiVersion, every caller-owned
 * buffer). The host points the per-lane buffers into one strided arena so
 * a whole chunk costs one allocation set, but the library only sees the
 * per-lane views and never writes outside them. */
typedef struct AccmosBatchRunResult {
  uint32_t structSize; /* sizeof(AccmosBatchRunResult) */
  uint32_t abiVersion; /* caller's ACCMOS_ABI_VERSION */
  uint64_t numLanes;   /* must equal args->numLanes */
  AccmosRunResult* lanes;
} AccmosBatchRunResult;
#endif /* ACCMOS_ABI_VERSION >= 2u */

typedef int (*AccmosModelInfoFn)(AccmosModelInfo*);
typedef int (*AccmosRunFn)(const AccmosRunArgs*, AccmosRunResult*);
#if ACCMOS_ABI_VERSION >= 2u
typedef int (*AccmosRunBatchFn)(const AccmosBatchRunArgs*,
                                AccmosBatchRunResult*);
#endif

#define ACCMOS_SYM_MODEL_INFO "accmos_model_info"
#define ACCMOS_SYM_RUN "accmos_run"
#define ACCMOS_SYM_RUN_BATCH "accmos_run_batch"

#endif /* ACCMOS_RUN_ABI_H_ */
