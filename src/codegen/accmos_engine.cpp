#include "codegen/accmos_engine.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <vector>

#include "actors/spec.h"
#include "codegen/compiler_driver.h"
#include "codegen/emitter.h"
#include "codegen/model_lib.h"
#include "codegen/results_parser.h"

namespace accmos {

namespace {

// Test hook mirroring ACCMOS_DLOPEN_FAIL: forces runBatch() onto the
// per-seed scalar fallback so the fallback matrix can be exercised without
// manufacturing a defective library.
bool batchForcedToFail() {
  const char* v = std::getenv("ACCMOS_BATCH_FAIL");
  return v != nullptr && v[0] != '\0' && std::string(v) != "0";
}

}  // namespace

AccMoSEngine::AccMoSEngine(const FlatModel& fm, const SimOptions& opt,
                           const TestCaseSpec& tests)
    : fm_(fm), opt_(opt), tests_(tests) {
  validateFlatModel(fm_);
  tests_.validate();  // the emitter bakes the stimulus into generated code
  for (const auto& cd : opt_.customDiagnostics) {
    if (cd.kind == CustomDiagnostic::Kind::Expression &&
        cd.cppCondition.empty()) {
      throw ModelError(
          "custom diagnostic '" + cd.name +
          "': Expression diagnostics need a cppCondition for the AccMoS "
          "engine (callbacks cannot be compiled into generated code)");
    }
    if (fm_.findByPath(cd.actorPath) == nullptr) {
      throw ModelError("custom diagnostic '" + cd.name +
                       "' references unknown actor path '" + cd.actorPath +
                       "'");
    }
  }
  if (opt_.coverage) {
    covPlan_ = CoveragePlan::build(
        fm_, [](const FlatActor& fa) { return covTraitsFor(fa); });
  }
  if (opt_.diagnosis) {
    diagPlan_ = DiagnosisPlan::build(fm_, [&](const FlatActor& fa) {
      return diagKindsFor(fm_, fa);
    });
  }

  auto t0 = std::chrono::steady_clock::now();
  Emitter emitter(fm_, opt_, tests_, opt_.coverage ? &covPlan_ : nullptr,
                  opt_.diagnosis ? &diagPlan_ : nullptr);
  source_ = emitter.generate();
  collectSignals_ = emitter.collectSignals();
  auto t1 = std::chrono::steady_clock::now();
  generateSeconds_ = std::chrono::duration<double>(t1 - t0).count();

  driver_ = std::make_unique<CompilerDriver>(opt_.workDir);
  driver_->setKeep(opt_.keepGeneratedCode || !opt_.workDir.empty());
  driver_->setCacheEnabled(opt_.compileCache);

  if (opt_.execMode == ExecMode::Dlopen) {
    // Compile as a shared library and load it in-process. Any failure —
    // compiler without -shared/-fPIC support, a dlopen error, a library
    // with the wrong ABI — degrades to the subprocess backend rather than
    // failing the engine.
    //
    // The batch kernel is compiled in via -DACCMOS_BATCH_LANES=N, not by
    // changing the generated source, so the flag must be part of the
    // compile-cache identity (CompilerDriver::cacheKey hashes extraFlags):
    // a cached batchless artifact is never served to a batch-requesting
    // engine, and vice versa.
    std::string extraFlags;
    if (opt_.batchLanes > 0) {
      extraFlags =
          "-DACCMOS_BATCH_LANES=" + std::to_string(opt_.batchLanes);
    }
    try {
      auto compiled =
          driver_->compile(source_, "model_" + fm_.modelName, opt_.optFlag,
                           ArtifactKind::SharedLib, extraFlags);
      compileSeconds_ = compiled.seconds;
      compileCacheHit_ = compiled.cacheHit;
      // dlopen a private per-engine copy, never the shared cache entry
      // directly: the dynamic linker dedups loads by pathname and inode,
      // so dlopening a cache path that an earlier engine already mapped
      // would hand back the old library even after the entry was healed
      // or replaced. The copy lives in this engine's unique work dir and
      // is cleaned up with it.
      namespace fs = std::filesystem;
      fs::path libCopy =
          fs::path(driver_->dir()) / ("model_" + fm_.modelName + ".load.so");
      fs::copy_file(compiled.exePath, libCopy,
                    fs::copy_options::overwrite_existing);
      lib_ = std::make_unique<ModelLib>(libCopy.string());
      loadSeconds_ = lib_->loadSeconds();
      exePath_ = compiled.exePath;
      execModeUsed_ = ExecMode::Dlopen;

      // Cross-check the library's reported geometry against our plans — a
      // mismatch means we'd size buffers wrong, so fail closed (and fall
      // back) instead of trusting it.
      const AccmosModelInfo& info = lib_->info();
      uint64_t expectedCov[4] = {0, 0, 0, 0};
      if (opt_.coverage) {
        for (int m = 0; m < 4; ++m) {
          expectedCov[m] = static_cast<uint64_t>(
              covPlan_.totalSlots(kAllCovMetrics[m]));
        }
      }
      size_t collectValsLen = 0;
      for (int sid : collectSignals_) {
        collectValsLen += static_cast<size_t>(fm_.signal(sid).width);
      }
      size_t outValsLen = 0;
      for (int oid : fm_.rootOutports) {
        outValsLen +=
            static_cast<size_t>(fm_.signal(fm_.actor(oid).inputs[0]).width);
      }
      bool covOk = true;
      for (int m = 0; m < 4; ++m) covOk &= info.covLen[m] == expectedCov[m];
      if (!covOk || info.numActors != fm_.actors.size() ||
          info.numDiagKinds != static_cast<uint64_t>(kNumDiagKinds) ||
          info.numCustom != opt_.customDiagnostics.size() ||
          info.numCollect != collectSignals_.size() ||
          info.collectValsLen != collectValsLen ||
          info.outValsLen != outValsLen) {
        throw CompileError("generated model library " + exePath_ +
                           " reports a geometry that does not match the "
                           "host's instrumentation plans");
      }
      return;
    } catch (const CompileError&) {
      lib_.reset();
      loadSeconds_ = 0.0;
    } catch (const std::filesystem::filesystem_error&) {
      lib_.reset();
      loadSeconds_ = 0.0;
    }
  }

  auto compiled = driver_->compile(source_, "model_" + fm_.modelName,
                                   opt_.optFlag, ArtifactKind::Executable);
  compileSeconds_ += compiled.seconds;
  compileCacheHit_ = compiled.cacheHit;
  exePath_ = compiled.exePath;
  execModeUsed_ = ExecMode::Process;
}

AccMoSEngine::~AccMoSEngine() = default;

SimulationResult AccMoSEngine::runInProcess(uint64_t steps, double budget,
                                            uint64_t seed) {
  const AccmosModelInfo& info = lib_->info();

  // Caller-owned buffers, sized once from the library's geometry. All
  // locals — concurrent run() calls never share state.
  std::vector<uint8_t> cov[4];
  std::vector<AccmosDiagRec> diags(
      static_cast<size_t>(info.numActors * info.numDiagKinds));
  std::vector<AccmosCustomRec> customs(static_cast<size_t>(info.numCustom));
  std::vector<uint64_t> collectCounts(static_cast<size_t>(info.numCollect));
  std::vector<uint64_t> collectVals(static_cast<size_t>(info.collectValsLen));
  std::vector<uint64_t> outVals(static_cast<size_t>(info.outValsLen));

  AccmosRunArgs args;
  std::memset(&args, 0, sizeof(args));
  args.structSize = static_cast<uint32_t>(sizeof(AccmosRunArgs));
  // Stamp the version the LIBRARY implements, not our compile-time
  // constant: a v1 library checks args against version 1 (the scalar
  // arg/result layouts are identical across versions, so this is the only
  // difference that matters).
  args.abiVersion = lib_->abiVersion();
  args.maxSteps = steps;
  args.timeBudgetSec = budget;
  args.seed = seed;

  AccmosRunResult res;
  std::memset(&res, 0, sizeof(res));
  res.structSize = static_cast<uint32_t>(sizeof(AccmosRunResult));
  res.abiVersion = lib_->abiVersion();
  for (int m = 0; m < 4; ++m) {
    cov[m].resize(static_cast<size_t>(info.covLen[m]));
    res.cov[m] = cov[m].empty() ? nullptr : cov[m].data();
    res.covLen[m] = info.covLen[m];
  }
  res.diags = diags.empty() ? nullptr : diags.data();
  res.diagCap = diags.size();
  res.customs = customs.empty() ? nullptr : customs.data();
  res.customCap = customs.size();
  res.collectCounts = collectCounts.empty() ? nullptr : collectCounts.data();
  res.numCollect = collectCounts.size();
  res.collectVals = collectVals.empty() ? nullptr : collectVals.data();
  res.collectValsLen = collectVals.size();
  res.outVals = outVals.empty() ? nullptr : outVals.data();
  res.outValsLen = outVals.size();

  int rc = lib_->run(args, res);
  if (rc != ACCMOS_ABI_OK) {
    throw CompileError("in-process model run failed with ABI status " +
                       std::to_string(rc) + " (library " + lib_->path() +
                       ")");
  }
  SimulationResult result = decodeBinaryResults(
      res, fm_, opt_.coverage ? &covPlan_ : nullptr,
      opt_.diagnosis ? &diagPlan_ : nullptr, collectSignals_,
      opt_.customDiagnostics);
  result.execMode = std::string(execModeName(ExecMode::Dlopen));
  return result;
}

SimulationResult AccMoSEngine::runSubprocess(uint64_t steps, double budget,
                                             uint64_t seed) {
  std::string output = driver_->run(
      exePath_,
      {std::to_string(steps), std::to_string(budget), std::to_string(seed)});
  SimulationResult result = parseResults(
      output, fm_, opt_.coverage ? &covPlan_ : nullptr,
      opt_.diagnosis ? &diagPlan_ : nullptr, collectSignals_,
      opt_.customDiagnostics);
  result.execMode = std::string(execModeName(ExecMode::Process));
  return result;
}

void AccMoSEngine::finishResult(SimulationResult& r) const {
  if (opt_.coverage) {
    r.coverage = makeReport(covPlan_, r.bitmaps);
    r.hasCoverage = true;
  }
  r.generateSeconds = generateSeconds_;
  r.compileSeconds = compileSeconds_;
  r.loadSeconds = loadSeconds_;
}

SimulationResult AccMoSEngine::run(uint64_t maxStepsOverride,
                                   double timeBudgetOverride,
                                   std::optional<uint64_t> seedOverride) {
  uint64_t steps = maxStepsOverride != 0 ? maxStepsOverride : opt_.maxSteps;
  double budget =
      timeBudgetOverride >= 0.0 ? timeBudgetOverride : opt_.timeBudgetSec;
  uint64_t seed = seedOverride.value_or(tests_.seed);
  SimulationResult result = lib_ != nullptr
                                ? runInProcess(steps, budget, seed)
                                : runSubprocess(steps, budget, seed);
  finishResult(result);
  return result;
}

uint64_t AccMoSEngine::batchLanes() const {
  if (lib_ == nullptr || batchForcedToFail()) return 0;
  return lib_->batchLanes();
}

void AccMoSEngine::runBatchChunk(const uint64_t* seeds, size_t n,
                                 uint64_t steps, double budget,
                                 std::vector<SimulationResult>& out) {
  const AccmosModelInfo& info = lib_->info();
  const size_t diagStride =
      static_cast<size_t>(info.numActors * info.numDiagKinds);

  // One strided arena per buffer kind for the whole chunk — lane l's view
  // is [l * stride, (l+1) * stride). Against n scalar runs this replaces
  // ~10n allocations with ~10 and is a real part of the batch win on
  // short runs; the library only ever sees the per-lane views.
  std::vector<uint8_t> cov[4];
  for (int m = 0; m < 4; ++m) {
    cov[m].resize(static_cast<size_t>(info.covLen[m]) * n);
  }
  std::vector<AccmosDiagRec> diags(diagStride * n);
  std::vector<AccmosCustomRec> customs(static_cast<size_t>(info.numCustom) *
                                       n);
  std::vector<uint64_t> collectCounts(static_cast<size_t>(info.numCollect) *
                                      n);
  std::vector<uint64_t> collectVals(
      static_cast<size_t>(info.collectValsLen) * n);
  std::vector<uint64_t> outVals(static_cast<size_t>(info.outValsLen) * n);
  std::vector<AccmosRunResult> laneRes(n);

  for (size_t l = 0; l < n; ++l) {
    AccmosRunResult& r = laneRes[l];
    std::memset(&r, 0, sizeof(r));
    r.structSize = static_cast<uint32_t>(sizeof(AccmosRunResult));
    r.abiVersion = lib_->abiVersion();
    for (int m = 0; m < 4; ++m) {
      const size_t len = static_cast<size_t>(info.covLen[m]);
      r.cov[m] = len > 0 ? &cov[m][l * len] : nullptr;
      r.covLen[m] = info.covLen[m];
    }
    r.diags = diagStride > 0 ? &diags[l * diagStride] : nullptr;
    r.diagCap = diagStride;
    r.customs =
        info.numCustom > 0 ? &customs[l * info.numCustom] : nullptr;
    r.customCap = info.numCustom;
    r.collectCounts =
        info.numCollect > 0 ? &collectCounts[l * info.numCollect] : nullptr;
    r.numCollect = info.numCollect;
    r.collectVals = info.collectValsLen > 0
                        ? &collectVals[l * info.collectValsLen]
                        : nullptr;
    r.collectValsLen = info.collectValsLen;
    r.outVals = info.outValsLen > 0 ? &outVals[l * info.outValsLen] : nullptr;
    r.outValsLen = info.outValsLen;
  }

  AccmosBatchRunArgs args;
  std::memset(&args, 0, sizeof(args));
  args.structSize = static_cast<uint32_t>(sizeof(AccmosBatchRunArgs));
  args.abiVersion = lib_->abiVersion();
  args.numLanes = n;
  args.maxSteps = steps;
  args.timeBudgetSec = budget;
  args.seeds = seeds;

  AccmosBatchRunResult bres;
  std::memset(&bres, 0, sizeof(bres));
  bres.structSize = static_cast<uint32_t>(sizeof(AccmosBatchRunResult));
  bres.abiVersion = lib_->abiVersion();
  bres.numLanes = n;
  bres.lanes = laneRes.data();

  int rc = lib_->runBatch(args, bres);
  if (rc != ACCMOS_ABI_OK) {
    // Geometry was cross-checked at load, so this is unexpected — but the
    // contract is "batch never changes observations", so degrade to the
    // scalar path for this chunk instead of failing the campaign.
    for (size_t l = 0; l < n; ++l) {
      out.push_back(run(steps, budget, seeds[l]));
    }
    return;
  }
  for (size_t l = 0; l < n; ++l) {
    SimulationResult r = decodeBinaryResults(
        laneRes[l], fm_, opt_.coverage ? &covPlan_ : nullptr,
        opt_.diagnosis ? &diagPlan_ : nullptr, collectSignals_,
        opt_.customDiagnostics);
    r.execMode = kExecModeDlopenBatch;
    finishResult(r);
    out.push_back(std::move(r));
  }
}

std::vector<SimulationResult> AccMoSEngine::runBatch(
    const std::vector<uint64_t>& seeds, uint64_t maxStepsOverride,
    double timeBudgetOverride) {
  uint64_t steps = maxStepsOverride != 0 ? maxStepsOverride : opt_.maxSteps;
  double budget =
      timeBudgetOverride >= 0.0 ? timeBudgetOverride : opt_.timeBudgetSec;
  std::vector<SimulationResult> out;
  out.reserve(seeds.size());
  const uint64_t lanes = batchLanes();
  if (lanes == 0) {
    // Scalar fallback: no library (subprocess backend), a batchless or v1
    // library, batching disabled, or the ACCMOS_BATCH_FAIL hook. Each
    // result's execMode reports what actually ran.
    for (uint64_t seed : seeds) {
      out.push_back(run(steps, budget, seed));
    }
    return out;
  }
  for (size_t base = 0; base < seeds.size();
       base += static_cast<size_t>(lanes)) {
    const size_t n =
        std::min<size_t>(static_cast<size_t>(lanes), seeds.size() - base);
    runBatchChunk(&seeds[base], n, steps, budget, out);
  }
  return out;
}

SimulationResult runAccMoS(const FlatModel& fm, const SimOptions& opt,
                           const TestCaseSpec& tests) {
  AccMoSEngine engine(fm, opt, tests);
  return engine.run();
}

}  // namespace accmos
