#include "codegen/accmos_engine.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <vector>

#include "actors/spec.h"
#include "codegen/compiler_driver.h"
#include "codegen/emitter.h"
#include "codegen/fault.h"
#include "codegen/model_lib.h"
#include "codegen/results_parser.h"
#include "codegen/run_guard.h"

namespace accmos {

namespace {

// Test hook (ACCMOS_FAULT=batch-fail, legacy ACCMOS_BATCH_FAIL): forces
// runBatch() onto the per-seed scalar fallback so the fallback matrix can
// be exercised without manufacturing a defective library.
bool batchForcedToFail() { return faultPlanFromEnv().batchFail; }

// Seconds on the steady clock's epoch — the SAME clock the generated
// code's accmos_now_s() reads, so host-computed absolute deadlines compare
// directly inside the in-process step loop.
double steadyNowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

GeneratedModel AccMoSEngine::generate(const FlatModel& fm,
                                      const SimOptions& opt,
                                      const TestCaseSpec& tests) {
  validateFlatModel(fm);
  tests.validate();  // the emitter bakes the stimulus into generated code
  for (const auto& cd : opt.customDiagnostics) {
    if (cd.kind == CustomDiagnostic::Kind::Expression &&
        cd.cppCondition.empty()) {
      throw ModelError(
          "custom diagnostic '" + cd.name +
          "': Expression diagnostics need a cppCondition for the AccMoS "
          "engine (callbacks cannot be compiled into generated code)");
    }
    if (fm.findByPath(cd.actorPath) == nullptr) {
      throw ModelError("custom diagnostic '" + cd.name +
                       "' references unknown actor path '" + cd.actorPath +
                       "'");
    }
  }
  GeneratedModel gen;
  if (opt.coverage) {
    gen.covPlan = CoveragePlan::build(
        fm, [](const FlatActor& fa) { return covTraitsFor(fa); });
  }
  if (opt.diagnosis) {
    gen.diagPlan = DiagnosisPlan::build(
        fm, [&](const FlatActor& fa) { return diagKindsFor(fm, fa); });
  }

  auto t0 = std::chrono::steady_clock::now();
  Emitter emitter(fm, opt, tests, opt.coverage ? &gen.covPlan : nullptr,
                  opt.diagnosis ? &gen.diagPlan : nullptr);
  gen.source = emitter.generate();
  gen.collectSignals = emitter.collectSignals();
  auto t1 = std::chrono::steady_clock::now();
  gen.generateSeconds = std::chrono::duration<double>(t1 - t0).count();
  return gen;
}

ArtifactKind AccMoSEngine::artifactPlan(const SimOptions& opt,
                                        std::string* extraFlags) {
  if (extraFlags != nullptr) extraFlags->clear();
  if (opt.execMode == ExecMode::Dlopen) {
    // The batch kernel is compiled in via -DACCMOS_BATCH_LANES=N, not by
    // changing the generated source, so the flag must be part of the
    // compile-cache identity (CompilerDriver::cacheKey hashes extraFlags):
    // a cached batchless artifact is never served to a batch-requesting
    // engine, and vice versa.
    if (opt.batchLanes > 0 && extraFlags != nullptr) {
      *extraFlags = "-DACCMOS_BATCH_LANES=" + std::to_string(opt.batchLanes);
    }
    return ArtifactKind::SharedLib;
  }
  return ArtifactKind::Executable;
}

AccMoSEngine::AccMoSEngine(const FlatModel& fm, const SimOptions& opt,
                           const TestCaseSpec& tests)
    : AccMoSEngine(fm, opt, tests, generate(fm, opt, tests)) {}

AccMoSEngine::AccMoSEngine(const FlatModel& fm, const SimOptions& opt,
                           const TestCaseSpec& tests, GeneratedModel&& gen)
    : fm_(fm),
      opt_(opt),
      tests_(tests),
      covPlan_(std::move(gen.covPlan)),
      diagPlan_(std::move(gen.diagPlan)),
      collectSignals_(std::move(gen.collectSignals)),
      source_(std::move(gen.source)),
      generateSeconds_(gen.generateSeconds) {
  driver_ = std::make_unique<CompilerDriver>(opt_.workDir);
  driver_->setKeep(opt_.keepGeneratedCode || !opt_.workDir.empty());
  driver_->setCacheEnabled(opt_.compileCache);

  if (opt_.execMode == ExecMode::Dlopen) {
    // Compile as a shared library and load it in-process. Any failure —
    // compiler without -shared/-fPIC support, a dlopen error, a library
    // with the wrong ABI — degrades to the subprocess backend rather than
    // failing the engine. artifactPlan() decides kind + extra flags so an
    // async pre-compile (TieredEngine) targets the identical cache entry.
    std::string extraFlags;
    ArtifactKind kind = artifactPlan(opt_, &extraFlags);
    try {
      auto compiled = driver_->compile(source_, "model_" + fm_.modelName,
                                       opt_.optFlag, kind, extraFlags);
      compileSeconds_ = compiled.seconds;
      compileCacheHit_ = compiled.cacheHit;
      artifactKeepAlive_ = compiled.keepAlive;
      // dlopen a private per-engine copy, never the shared cache entry
      // directly: the dynamic linker dedups loads by pathname and inode,
      // so dlopening a cache path that an earlier engine already mapped
      // would hand back the old library even after the entry was healed
      // or replaced. The copy lives in this engine's unique work dir and
      // is cleaned up with it.
      namespace fs = std::filesystem;
      fs::path libCopy =
          fs::path(driver_->dir()) / ("model_" + fm_.modelName + ".load.so");
      fs::copy_file(compiled.exePath, libCopy,
                    fs::copy_options::overwrite_existing);
      lib_ = std::make_unique<ModelLib>(libCopy.string());
      loadSeconds_ = lib_->loadSeconds();
      exePath_ = compiled.exePath;
      execModeUsed_ = ExecMode::Dlopen;

      // Cross-check the library's reported geometry against our plans — a
      // mismatch means we'd size buffers wrong, so fail closed (and fall
      // back) instead of trusting it.
      const AccmosModelInfo& info = lib_->info();
      uint64_t expectedCov[4] = {0, 0, 0, 0};
      if (opt_.coverage) {
        for (int m = 0; m < 4; ++m) {
          expectedCov[m] = static_cast<uint64_t>(
              covPlan_.totalSlots(kAllCovMetrics[m]));
        }
      }
      size_t collectValsLen = 0;
      for (int sid : collectSignals_) {
        collectValsLen += static_cast<size_t>(fm_.signal(sid).width);
      }
      size_t outValsLen = 0;
      for (int oid : fm_.rootOutports) {
        outValsLen +=
            static_cast<size_t>(fm_.signal(fm_.actor(oid).inputs[0]).width);
      }
      bool covOk = true;
      for (int m = 0; m < 4; ++m) covOk &= info.covLen[m] == expectedCov[m];
      if (!covOk || info.numActors != fm_.actors.size() ||
          info.numDiagKinds != static_cast<uint64_t>(kNumDiagKinds) ||
          info.numCustom != opt_.customDiagnostics.size() ||
          info.numCollect != collectSignals_.size() ||
          info.collectValsLen != collectValsLen ||
          info.outValsLen != outValsLen) {
        throw CompileError("generated model library " + exePath_ +
                           " reports a geometry that does not match the "
                           "host's instrumentation plans");
      }
      return;
    } catch (const CompileError&) {
      lib_.reset();
      loadSeconds_ = 0.0;
    } catch (const std::filesystem::filesystem_error&) {
      lib_.reset();
      loadSeconds_ = 0.0;
    }
  }

  auto compiled = driver_->compile(source_, "model_" + fm_.modelName,
                                   opt_.optFlag, ArtifactKind::Executable);
  compileSeconds_ += compiled.seconds;
  compileCacheHit_ = compiled.cacheHit;
  artifactKeepAlive_ = compiled.keepAlive;
  exePath_ = compiled.exePath;
  processExePath_ = compiled.exePath;
  execModeUsed_ = ExecMode::Process;
}

const std::string& AccMoSEngine::ensureExecutable() {
  std::lock_guard<std::mutex> lock(exeMutex_);
  if (processExePath_.empty()) {
    // First subprocess fallback of a dlopen-mode engine: the shared
    // library cannot be exec'd, so build the executable form now. Usually
    // a cache hit in any campaign that fell back before.
    auto compiled = driver_->compile(source_, "model_" + fm_.modelName,
                                     opt_.optFlag, ArtifactKind::Executable);
    processExePath_ = compiled.exePath;
  }
  return processExePath_;
}

bool AccMoSEngine::libUsable() const {
  // A pre-v3 library has no cooperative deadline checks: an in-process
  // hang there would be uninterruptible (no watchdog can kill a thread of
  // our own process), so deadline-armed runs route around it.
  return lib_ != nullptr && !quarantined() &&
         (lib_->supportsDeadlines() || !deadlineArmed());
}

AccMoSEngine::~AccMoSEngine() = default;

SimulationResult AccMoSEngine::runInProcess(uint64_t steps, double budget,
                                            uint64_t seed) {
  const AccmosModelInfo& info = lib_->info();

  // Caller-owned buffers, sized once from the library's geometry. All
  // locals — concurrent run() calls never share state.
  std::vector<uint8_t> cov[4];
  std::vector<AccmosDiagRec> diags(
      static_cast<size_t>(info.numActors * info.numDiagKinds));
  std::vector<AccmosCustomRec> customs(static_cast<size_t>(info.numCustom));
  std::vector<uint64_t> collectCounts(static_cast<size_t>(info.numCollect));
  std::vector<uint64_t> collectVals(static_cast<size_t>(info.collectValsLen));
  std::vector<uint64_t> outVals(static_cast<size_t>(info.outValsLen));

  AccmosRunArgs args;
  std::memset(&args, 0, sizeof(args));
  // Stamp the version and struct size the LIBRARY implements, not our
  // compile-time constants: a v1 library checks args against version 1 and
  // the 32-byte pre-v3 layout (identical across v1/v2), so the v3
  // deadline fields must not be counted into structSize for it.
  args.structSize = lib_->runArgsSize();
  args.abiVersion = lib_->abiVersion();
  args.maxSteps = steps;
  args.timeBudgetSec = budget;
  args.seed = seed;
  if (lib_->supportsDeadlines()) {
    args.deadlineSeconds = opt_.runTimeoutSec > 0.0
                               ? steadyNowSeconds() + opt_.runTimeoutSec
                               : 0.0;
    args.stepBudget = opt_.stepBudget;
  }

  AccmosRunResult res;
  std::memset(&res, 0, sizeof(res));
  res.structSize = static_cast<uint32_t>(sizeof(AccmosRunResult));
  res.abiVersion = lib_->abiVersion();
  for (int m = 0; m < 4; ++m) {
    cov[m].resize(static_cast<size_t>(info.covLen[m]));
    res.cov[m] = cov[m].empty() ? nullptr : cov[m].data();
    res.covLen[m] = info.covLen[m];
  }
  res.diags = diags.empty() ? nullptr : diags.data();
  res.diagCap = diags.size();
  res.customs = customs.empty() ? nullptr : customs.data();
  res.customCap = customs.size();
  res.collectCounts = collectCounts.empty() ? nullptr : collectCounts.data();
  res.numCollect = collectCounts.size();
  res.collectVals = collectVals.empty() ? nullptr : collectVals.data();
  res.collectValsLen = collectVals.size();
  res.outVals = outVals.empty() ? nullptr : outVals.data();
  res.outValsLen = outVals.size();

  // The guard turns a fatal signal inside the generated code into a typed
  // exception (best effort — see run_guard.h); callers strike the engine
  // toward quarantine and retry on the subprocess backend.
  GuardedCallResult g = runGuarded([&]() { return lib_->run(args, res); });
  if (g.crashed) {
    throw SimCrashError("in-process model run crashed with signal " +
                            std::to_string(g.signal) + " (library " +
                            lib_->path() + ")",
                        g.signal);
  }
  int rc = g.rc;
  // ETIMEOUT is a *retired* run, not a broken one: the generated loop
  // observed its deadline or step budget, extraction still ran, and
  // res.timedOut is set — decode normally.
  if (rc != ACCMOS_ABI_OK && rc != ACCMOS_ABI_ETIMEOUT) {
    throw CompileError("in-process model run failed with ABI status " +
                       std::to_string(rc) + " (library " + lib_->path() +
                       ")");
  }
  SimulationResult result = decodeBinaryResults(
      res, fm_, opt_.coverage ? &covPlan_ : nullptr,
      opt_.diagnosis ? &diagPlan_ : nullptr, collectSignals_,
      opt_.customDiagnostics);
  result.execMode = std::string(execModeName(ExecMode::Dlopen));
  return result;
}

SimulationResult AccMoSEngine::runSubprocess(uint64_t steps, double budget,
                                             uint64_t seed) {
  const std::string& exe = ensureExecutable();
  std::vector<std::string> argv = {std::to_string(steps),
                                   std::to_string(budget),
                                   std::to_string(seed)};
  if (deadlineArmed()) {
    // The deadline crosses the process boundary as a RELATIVE timeout
    // (monotonic epochs differ between processes); the child computes its
    // own absolute deadline. The driver additionally arms its host-side
    // watchdog with the same timeout as a backstop for genuine hangs.
    argv.push_back(std::to_string(opt_.runTimeoutSec));
    argv.push_back(std::to_string(opt_.stepBudget));
  }
  std::string output = driver_->run(exe, argv, opt_.runTimeoutSec);
  SimulationResult result = parseResults(
      output, fm_, opt_.coverage ? &covPlan_ : nullptr,
      opt_.diagnosis ? &diagPlan_ : nullptr, collectSignals_,
      opt_.customDiagnostics);
  result.execMode = std::string(execModeName(ExecMode::Process));
  return result;
}

void AccMoSEngine::finishResult(SimulationResult& r) const {
  if (opt_.coverage) {
    r.coverage = makeReport(covPlan_, r.bitmaps);
    r.hasCoverage = true;
  }
  r.generateSeconds = generateSeconds_;
  r.compileSeconds = compileSeconds_;
  r.loadSeconds = loadSeconds_;
}

SimulationResult AccMoSEngine::run(uint64_t maxStepsOverride,
                                   double timeBudgetOverride,
                                   std::optional<uint64_t> seedOverride) {
  uint64_t steps = maxStepsOverride != 0 ? maxStepsOverride : opt_.maxSteps;
  double budget =
      timeBudgetOverride >= 0.0 ? timeBudgetOverride : opt_.timeBudgetSec;
  uint64_t seed = seedOverride.value_or(tests_.seed);
  SimulationResult result = libUsable() ? runInProcess(steps, budget, seed)
                                        : runSubprocess(steps, budget, seed);
  finishResult(result);
  return result;
}

SimulationResult AccMoSEngine::failedResult(FailureKind kind, uint64_t seed,
                                            int signal, int retries,
                                            const char* backend,
                                            std::string message) const {
  SimulationResult r;
  r.failed = true;
  r.timedOut = kind == FailureKind::Timeout;
  r.failure.kind = kind;
  r.failure.seed = seed;
  r.failure.signal = signal;
  r.failure.retries = retries;
  r.failure.backend = backend;
  r.failure.message = std::move(message);
  r.execMode = backend;
  return r;
}

SimulationResult AccMoSEngine::runContained(
    uint64_t maxStepsOverride, double timeBudgetOverride,
    std::optional<uint64_t> seedOverride) {
  const uint64_t steps =
      maxStepsOverride != 0 ? maxStepsOverride : opt_.maxSteps;
  const double budget =
      timeBudgetOverride >= 0.0 ? timeBudgetOverride : opt_.timeBudgetSec;
  const uint64_t seed = seedOverride.value_or(tests_.seed);

  int retries = 0;
  if (libUsable()) {
    try {
      SimulationResult r = runInProcess(steps, budget, seed);
      if (!r.timedOut) {
        finishResult(r);
        return r;
      }
      // Cooperative in-process hang: a timed-out run's partial
      // observations depend on wall-clock timing, so they are never
      // merged. Strike, then give the seed its one subprocess retry.
      strike();
    } catch (const SimCrashError&) {
      strike();
    } catch (const ModelError&) {
      // ABI status failure / undecodable result — retry out-of-process
      // without striking (nothing suggests in-process state damage).
    }
    retries = 1;
  }

  try {
    SimulationResult r = runSubprocess(steps, budget, seed);
    if (r.timedOut) {
      return failedResult(
          FailureKind::Timeout, seed, 0, retries, "process",
          "run retired at its wall-clock deadline / step budget");
    }
    finishResult(r);
    return r;
  } catch (const SimTimeoutError& e) {
    return failedResult(FailureKind::Timeout, seed, 0, retries, "process",
                        e.what());
  } catch (const SimCrashError& e) {
    return failedResult(FailureKind::Crash, seed, e.terminatingSignal(),
                        retries, "process", e.what());
  } catch (const CompileError& e) {
    return failedResult(FailureKind::CompileError, seed, 0, retries,
                        "process", e.what());
  } catch (const ModelError& e) {
    return failedResult(FailureKind::AbiMismatch, seed, 0, retries, "process",
                        e.what());
  }
}

uint64_t AccMoSEngine::batchLanes() const {
  if (!libUsable() || batchForcedToFail()) return 0;
  return lib_->batchLanes();
}

void AccMoSEngine::runBatchChunk(const uint64_t* seeds, size_t n,
                                 uint64_t steps, double budget,
                                 bool contained,
                                 std::vector<SimulationResult>& out) {
  const AccmosModelInfo& info = lib_->info();
  const size_t diagStride =
      static_cast<size_t>(info.numActors * info.numDiagKinds);

  // One strided arena per buffer kind for the whole chunk — lane l's view
  // is [l * stride, (l+1) * stride). Against n scalar runs this replaces
  // ~10n allocations with ~10 and is a real part of the batch win on
  // short runs; the library only ever sees the per-lane views.
  std::vector<uint8_t> cov[4];
  for (int m = 0; m < 4; ++m) {
    cov[m].resize(static_cast<size_t>(info.covLen[m]) * n);
  }
  std::vector<AccmosDiagRec> diags(diagStride * n);
  std::vector<AccmosCustomRec> customs(static_cast<size_t>(info.numCustom) *
                                       n);
  std::vector<uint64_t> collectCounts(static_cast<size_t>(info.numCollect) *
                                      n);
  std::vector<uint64_t> collectVals(
      static_cast<size_t>(info.collectValsLen) * n);
  std::vector<uint64_t> outVals(static_cast<size_t>(info.outValsLen) * n);
  std::vector<AccmosRunResult> laneRes(n);

  for (size_t l = 0; l < n; ++l) {
    AccmosRunResult& r = laneRes[l];
    std::memset(&r, 0, sizeof(r));
    r.structSize = static_cast<uint32_t>(sizeof(AccmosRunResult));
    r.abiVersion = lib_->abiVersion();
    for (int m = 0; m < 4; ++m) {
      const size_t len = static_cast<size_t>(info.covLen[m]);
      r.cov[m] = len > 0 ? &cov[m][l * len] : nullptr;
      r.covLen[m] = info.covLen[m];
    }
    r.diags = diagStride > 0 ? &diags[l * diagStride] : nullptr;
    r.diagCap = diagStride;
    r.customs =
        info.numCustom > 0 ? &customs[l * info.numCustom] : nullptr;
    r.customCap = info.numCustom;
    r.collectCounts =
        info.numCollect > 0 ? &collectCounts[l * info.numCollect] : nullptr;
    r.numCollect = info.numCollect;
    r.collectVals = info.collectValsLen > 0
                        ? &collectVals[l * info.collectValsLen]
                        : nullptr;
    r.collectValsLen = info.collectValsLen;
    r.outVals = info.outValsLen > 0 ? &outVals[l * info.outValsLen] : nullptr;
    r.outValsLen = info.outValsLen;
  }

  AccmosBatchRunArgs args;
  std::memset(&args, 0, sizeof(args));
  args.structSize = lib_->batchArgsSize();
  args.abiVersion = lib_->abiVersion();
  args.numLanes = n;
  args.maxSteps = steps;
  args.timeBudgetSec = budget;
  args.seeds = seeds;
  if (lib_->supportsDeadlines()) {
    args.deadlineSeconds = opt_.runTimeoutSec > 0.0
                               ? steadyNowSeconds() + opt_.runTimeoutSec
                               : 0.0;
    args.stepBudget = opt_.stepBudget;
  }

  AccmosBatchRunResult bres;
  std::memset(&bres, 0, sizeof(bres));
  bres.structSize = static_cast<uint32_t>(sizeof(AccmosBatchRunResult));
  bres.abiVersion = lib_->abiVersion();
  bres.numLanes = n;
  bres.lanes = laneRes.data();

  // A crash inside the fused kernel takes the whole chunk down (the guard
  // recovers control, but every lane's results are suspect): strike once —
  // it is one faulting kernel call — and degrade the chunk to the scalar
  // path, where the faulting seed is isolated from its chunk-mates.
  GuardedCallResult g =
      runGuarded([&]() { return lib_->runBatch(args, bres); });
  if (g.crashed) strike();
  int rc = g.crashed ? -1 : g.rc;
  if (rc != ACCMOS_ABI_OK && rc != ACCMOS_ABI_ETIMEOUT) {
    // Crash, or a geometry rejection that load-time cross-checks should
    // have caught — either way the contract is "batch never changes
    // observations", so degrade to the scalar path for this chunk instead
    // of failing the campaign.
    for (size_t l = 0; l < n; ++l) {
      out.push_back(contained ? runContained(steps, budget, seeds[l])
                              : run(steps, budget, seeds[l]));
    }
    return;
  }
  for (size_t l = 0; l < n; ++l) {
    SimulationResult r = decodeBinaryResults(
        laneRes[l], fm_, opt_.coverage ? &covPlan_ : nullptr,
        opt_.diagnosis ? &diagPlan_ : nullptr, collectSignals_,
        opt_.customDiagnostics);
    if (contained && r.timedOut) {
      // The batch deadline is shared: a lane may have been retired only
      // because a sibling hogged the fused loop. One solo scalar retry
      // with a fresh deadline makes survival a per-seed property — a seed
      // that finishes within the deadline on its own yields bit-identical
      // results at any lane count; one that cannot is a genuine Timeout.
      out.push_back(runContained(steps, budget, seeds[l]));
      continue;
    }
    r.execMode = kExecModeDlopenBatch;
    finishResult(r);
    out.push_back(std::move(r));
  }
}

std::vector<SimulationResult> AccMoSEngine::runBatch(
    const std::vector<uint64_t>& seeds, uint64_t maxStepsOverride,
    double timeBudgetOverride) {
  uint64_t steps = maxStepsOverride != 0 ? maxStepsOverride : opt_.maxSteps;
  double budget =
      timeBudgetOverride >= 0.0 ? timeBudgetOverride : opt_.timeBudgetSec;
  std::vector<SimulationResult> out;
  out.reserve(seeds.size());
  const uint64_t lanes = batchLanes();
  if (lanes == 0) {
    // Scalar fallback: no library (subprocess backend), a batchless or v1
    // library, batching disabled, or the ACCMOS_BATCH_FAIL hook. Each
    // result's execMode reports what actually ran.
    for (uint64_t seed : seeds) {
      out.push_back(run(steps, budget, seed));
    }
    return out;
  }
  for (size_t base = 0; base < seeds.size();
       base += static_cast<size_t>(lanes)) {
    const size_t n =
        std::min<size_t>(static_cast<size_t>(lanes), seeds.size() - base);
    runBatchChunk(&seeds[base], n, steps, budget, /*contained=*/false, out);
  }
  return out;
}

std::vector<SimulationResult> AccMoSEngine::runBatchContained(
    const std::vector<uint64_t>& seeds, uint64_t maxStepsOverride,
    double timeBudgetOverride) {
  uint64_t steps = maxStepsOverride != 0 ? maxStepsOverride : opt_.maxSteps;
  double budget =
      timeBudgetOverride >= 0.0 ? timeBudgetOverride : opt_.timeBudgetSec;
  std::vector<SimulationResult> out;
  out.reserve(seeds.size());
  for (size_t base = 0; base < seeds.size();) {
    const uint64_t lanes = batchLanes();  // re-read: quarantine may trip
    if (lanes == 0) {
      out.push_back(runContained(steps, budget, seeds[base]));
      ++base;
      continue;
    }
    const size_t n =
        std::min<size_t>(static_cast<size_t>(lanes), seeds.size() - base);
    runBatchChunk(&seeds[base], n, steps, budget, /*contained=*/true, out);
    base += n;
  }
  return out;
}

SimulationResult runAccMoS(const FlatModel& fm, const SimOptions& opt,
                           const TestCaseSpec& tests) {
  AccMoSEngine engine(fm, opt, tests);
  return engine.run();
}

}  // namespace accmos
