#include "codegen/accmos_engine.h"

#include <chrono>

#include "actors/spec.h"
#include "codegen/compiler_driver.h"
#include "codegen/emitter.h"
#include "codegen/results_parser.h"

namespace accmos {

AccMoSEngine::AccMoSEngine(const FlatModel& fm, const SimOptions& opt,
                           const TestCaseSpec& tests)
    : fm_(fm), opt_(opt), tests_(tests) {
  validateFlatModel(fm_);
  tests_.validate();  // the emitter bakes the stimulus into generated code
  for (const auto& cd : opt_.customDiagnostics) {
    if (cd.kind == CustomDiagnostic::Kind::Expression &&
        cd.cppCondition.empty()) {
      throw ModelError(
          "custom diagnostic '" + cd.name +
          "': Expression diagnostics need a cppCondition for the AccMoS "
          "engine (callbacks cannot be compiled into generated code)");
    }
    if (fm_.findByPath(cd.actorPath) == nullptr) {
      throw ModelError("custom diagnostic '" + cd.name +
                       "' references unknown actor path '" + cd.actorPath +
                       "'");
    }
  }
  if (opt_.coverage) {
    covPlan_ = CoveragePlan::build(
        fm_, [](const FlatActor& fa) { return covTraitsFor(fa); });
  }
  if (opt_.diagnosis) {
    diagPlan_ = DiagnosisPlan::build(fm_, [&](const FlatActor& fa) {
      return diagKindsFor(fm_, fa);
    });
  }

  auto t0 = std::chrono::steady_clock::now();
  Emitter emitter(fm_, opt_, tests_, opt_.coverage ? &covPlan_ : nullptr,
                  opt_.diagnosis ? &diagPlan_ : nullptr);
  source_ = emitter.generate();
  collectSignals_ = emitter.collectSignals();
  auto t1 = std::chrono::steady_clock::now();
  generateSeconds_ = std::chrono::duration<double>(t1 - t0).count();

  driver_ = std::make_unique<CompilerDriver>(opt_.workDir);
  driver_->setKeep(opt_.keepGeneratedCode || !opt_.workDir.empty());
  driver_->setCacheEnabled(opt_.compileCache);
  auto compiled = driver_->compile(source_, "model_" + fm_.modelName,
                                   opt_.optFlag);
  compileSeconds_ = compiled.seconds;
  compileCacheHit_ = compiled.cacheHit;
  exePath_ = compiled.exePath;
}

AccMoSEngine::~AccMoSEngine() = default;

SimulationResult AccMoSEngine::run(uint64_t maxStepsOverride,
                                   double timeBudgetOverride,
                                   std::optional<uint64_t> seedOverride) {
  uint64_t steps = maxStepsOverride != 0 ? maxStepsOverride : opt_.maxSteps;
  double budget =
      timeBudgetOverride >= 0.0 ? timeBudgetOverride : opt_.timeBudgetSec;
  uint64_t seed = seedOverride.value_or(tests_.seed);
  std::string output = driver_->run(
      exePath_,
      {std::to_string(steps), std::to_string(budget), std::to_string(seed)});
  SimulationResult result = parseResults(
      output, fm_, opt_.coverage ? &covPlan_ : nullptr,
      opt_.diagnosis ? &diagPlan_ : nullptr, collectSignals_,
      opt_.customDiagnostics);
  if (opt_.coverage) {
    result.coverage = makeReport(covPlan_, result.bitmaps);
    result.hasCoverage = true;
  }
  result.generateSeconds = generateSeconds_;
  result.compileSeconds = compileSeconds_;
  return result;
}

SimulationResult runAccMoS(const FlatModel& fm, const SimOptions& opt,
                           const TestCaseSpec& tests) {
  AccMoSEngine engine(fm, opt, tests);
  return engine.run();
}

}  // namespace accmos
