#include "codegen/accmos_engine.h"

#include <chrono>
#include <cstring>
#include <filesystem>
#include <vector>

#include "actors/spec.h"
#include "codegen/compiler_driver.h"
#include "codegen/emitter.h"
#include "codegen/model_lib.h"
#include "codegen/results_parser.h"

namespace accmos {

AccMoSEngine::AccMoSEngine(const FlatModel& fm, const SimOptions& opt,
                           const TestCaseSpec& tests)
    : fm_(fm), opt_(opt), tests_(tests) {
  validateFlatModel(fm_);
  tests_.validate();  // the emitter bakes the stimulus into generated code
  for (const auto& cd : opt_.customDiagnostics) {
    if (cd.kind == CustomDiagnostic::Kind::Expression &&
        cd.cppCondition.empty()) {
      throw ModelError(
          "custom diagnostic '" + cd.name +
          "': Expression diagnostics need a cppCondition for the AccMoS "
          "engine (callbacks cannot be compiled into generated code)");
    }
    if (fm_.findByPath(cd.actorPath) == nullptr) {
      throw ModelError("custom diagnostic '" + cd.name +
                       "' references unknown actor path '" + cd.actorPath +
                       "'");
    }
  }
  if (opt_.coverage) {
    covPlan_ = CoveragePlan::build(
        fm_, [](const FlatActor& fa) { return covTraitsFor(fa); });
  }
  if (opt_.diagnosis) {
    diagPlan_ = DiagnosisPlan::build(fm_, [&](const FlatActor& fa) {
      return diagKindsFor(fm_, fa);
    });
  }

  auto t0 = std::chrono::steady_clock::now();
  Emitter emitter(fm_, opt_, tests_, opt_.coverage ? &covPlan_ : nullptr,
                  opt_.diagnosis ? &diagPlan_ : nullptr);
  source_ = emitter.generate();
  collectSignals_ = emitter.collectSignals();
  auto t1 = std::chrono::steady_clock::now();
  generateSeconds_ = std::chrono::duration<double>(t1 - t0).count();

  driver_ = std::make_unique<CompilerDriver>(opt_.workDir);
  driver_->setKeep(opt_.keepGeneratedCode || !opt_.workDir.empty());
  driver_->setCacheEnabled(opt_.compileCache);

  if (opt_.execMode == ExecMode::Dlopen) {
    // Compile as a shared library and load it in-process. Any failure —
    // compiler without -shared/-fPIC support, a dlopen error, a library
    // with the wrong ABI — degrades to the subprocess backend rather than
    // failing the engine.
    try {
      auto compiled = driver_->compile(source_, "model_" + fm_.modelName,
                                       opt_.optFlag, ArtifactKind::SharedLib);
      compileSeconds_ = compiled.seconds;
      compileCacheHit_ = compiled.cacheHit;
      // dlopen a private per-engine copy, never the shared cache entry
      // directly: the dynamic linker dedups loads by pathname and inode,
      // so dlopening a cache path that an earlier engine already mapped
      // would hand back the old library even after the entry was healed
      // or replaced. The copy lives in this engine's unique work dir and
      // is cleaned up with it.
      namespace fs = std::filesystem;
      fs::path libCopy =
          fs::path(driver_->dir()) / ("model_" + fm_.modelName + ".load.so");
      fs::copy_file(compiled.exePath, libCopy,
                    fs::copy_options::overwrite_existing);
      lib_ = std::make_unique<ModelLib>(libCopy.string());
      loadSeconds_ = lib_->loadSeconds();
      exePath_ = compiled.exePath;
      execModeUsed_ = ExecMode::Dlopen;

      // Cross-check the library's reported geometry against our plans — a
      // mismatch means we'd size buffers wrong, so fail closed (and fall
      // back) instead of trusting it.
      const AccmosModelInfo& info = lib_->info();
      uint64_t expectedCov[4] = {0, 0, 0, 0};
      if (opt_.coverage) {
        for (int m = 0; m < 4; ++m) {
          expectedCov[m] = static_cast<uint64_t>(
              covPlan_.totalSlots(kAllCovMetrics[m]));
        }
      }
      size_t collectValsLen = 0;
      for (int sid : collectSignals_) {
        collectValsLen += static_cast<size_t>(fm_.signal(sid).width);
      }
      size_t outValsLen = 0;
      for (int oid : fm_.rootOutports) {
        outValsLen +=
            static_cast<size_t>(fm_.signal(fm_.actor(oid).inputs[0]).width);
      }
      bool covOk = true;
      for (int m = 0; m < 4; ++m) covOk &= info.covLen[m] == expectedCov[m];
      if (!covOk || info.numActors != fm_.actors.size() ||
          info.numDiagKinds != static_cast<uint64_t>(kNumDiagKinds) ||
          info.numCustom != opt_.customDiagnostics.size() ||
          info.numCollect != collectSignals_.size() ||
          info.collectValsLen != collectValsLen ||
          info.outValsLen != outValsLen) {
        throw CompileError("generated model library " + exePath_ +
                           " reports a geometry that does not match the "
                           "host's instrumentation plans");
      }
      return;
    } catch (const CompileError&) {
      lib_.reset();
      loadSeconds_ = 0.0;
    } catch (const std::filesystem::filesystem_error&) {
      lib_.reset();
      loadSeconds_ = 0.0;
    }
  }

  auto compiled = driver_->compile(source_, "model_" + fm_.modelName,
                                   opt_.optFlag, ArtifactKind::Executable);
  compileSeconds_ += compiled.seconds;
  compileCacheHit_ = compiled.cacheHit;
  exePath_ = compiled.exePath;
  execModeUsed_ = ExecMode::Process;
}

AccMoSEngine::~AccMoSEngine() = default;

SimulationResult AccMoSEngine::runInProcess(uint64_t steps, double budget,
                                            uint64_t seed) {
  const AccmosModelInfo& info = lib_->info();

  // Caller-owned buffers, sized once from the library's geometry. All
  // locals — concurrent run() calls never share state.
  std::vector<uint8_t> cov[4];
  std::vector<AccmosDiagRec> diags(
      static_cast<size_t>(info.numActors * info.numDiagKinds));
  std::vector<AccmosCustomRec> customs(static_cast<size_t>(info.numCustom));
  std::vector<uint64_t> collectCounts(static_cast<size_t>(info.numCollect));
  std::vector<uint64_t> collectVals(static_cast<size_t>(info.collectValsLen));
  std::vector<uint64_t> outVals(static_cast<size_t>(info.outValsLen));

  AccmosRunArgs args;
  std::memset(&args, 0, sizeof(args));
  args.structSize = static_cast<uint32_t>(sizeof(AccmosRunArgs));
  args.abiVersion = ACCMOS_ABI_VERSION;
  args.maxSteps = steps;
  args.timeBudgetSec = budget;
  args.seed = seed;

  AccmosRunResult res;
  std::memset(&res, 0, sizeof(res));
  res.structSize = static_cast<uint32_t>(sizeof(AccmosRunResult));
  res.abiVersion = ACCMOS_ABI_VERSION;
  for (int m = 0; m < 4; ++m) {
    cov[m].resize(static_cast<size_t>(info.covLen[m]));
    res.cov[m] = cov[m].empty() ? nullptr : cov[m].data();
    res.covLen[m] = info.covLen[m];
  }
  res.diags = diags.empty() ? nullptr : diags.data();
  res.diagCap = diags.size();
  res.customs = customs.empty() ? nullptr : customs.data();
  res.customCap = customs.size();
  res.collectCounts = collectCounts.empty() ? nullptr : collectCounts.data();
  res.numCollect = collectCounts.size();
  res.collectVals = collectVals.empty() ? nullptr : collectVals.data();
  res.collectValsLen = collectVals.size();
  res.outVals = outVals.empty() ? nullptr : outVals.data();
  res.outValsLen = outVals.size();

  int rc = lib_->run(args, res);
  if (rc != ACCMOS_ABI_OK) {
    throw CompileError("in-process model run failed with ABI status " +
                       std::to_string(rc) + " (library " + lib_->path() +
                       ")");
  }
  SimulationResult result = decodeBinaryResults(
      res, fm_, opt_.coverage ? &covPlan_ : nullptr,
      opt_.diagnosis ? &diagPlan_ : nullptr, collectSignals_,
      opt_.customDiagnostics);
  result.execMode = std::string(execModeName(ExecMode::Dlopen));
  return result;
}

SimulationResult AccMoSEngine::runSubprocess(uint64_t steps, double budget,
                                             uint64_t seed) {
  std::string output = driver_->run(
      exePath_,
      {std::to_string(steps), std::to_string(budget), std::to_string(seed)});
  SimulationResult result = parseResults(
      output, fm_, opt_.coverage ? &covPlan_ : nullptr,
      opt_.diagnosis ? &diagPlan_ : nullptr, collectSignals_,
      opt_.customDiagnostics);
  result.execMode = std::string(execModeName(ExecMode::Process));
  return result;
}

SimulationResult AccMoSEngine::run(uint64_t maxStepsOverride,
                                   double timeBudgetOverride,
                                   std::optional<uint64_t> seedOverride) {
  uint64_t steps = maxStepsOverride != 0 ? maxStepsOverride : opt_.maxSteps;
  double budget =
      timeBudgetOverride >= 0.0 ? timeBudgetOverride : opt_.timeBudgetSec;
  uint64_t seed = seedOverride.value_or(tests_.seed);
  SimulationResult result = lib_ != nullptr
                                ? runInProcess(steps, budget, seed)
                                : runSubprocess(steps, budget, seed);
  if (opt_.coverage) {
    result.coverage = makeReport(covPlan_, result.bitmaps);
    result.hasCoverage = true;
  }
  result.generateSeconds = generateSeconds_;
  result.compileSeconds = compileSeconds_;
  result.loadSeconds = loadSeconds_;
  return result;
}

SimulationResult runAccMoS(const FlatModel& fm, const SimOptions& opt,
                           const TestCaseSpec& tests) {
  AccMoSEngine engine(fm, opt, tests);
  return engine.run();
}

}  // namespace accmos
