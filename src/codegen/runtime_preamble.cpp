#include "codegen/runtime_preamble.h"

namespace accmos {

std::string_view runtimePreamble() {
  static constexpr std::string_view kPreamble = R"RT(
// ---- AccMoS generated simulation runtime ---------------------------------
// Behavioural mirror of the in-process engines' arithmetic core; do not
// edit by hand.
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <new>

struct accmos_wrapres { int64_t value; int wrapped; int prec; };
struct accmos_divres { int64_t value; int wrapped; int divzero; };

template <typename T>
struct accmos_uns { static const bool value = static_cast<T>(0) < static_cast<T>(-1); };

static inline int accmos_isfinite(double v) { return v - v == 0.0; }

static inline int64_t accmos_f2i(double v) {
  if (v != v) return 0;
  if (v >= 9223372036854775808.0) return INT64_MAX;
  if (v <= -9223372036854775808.0) return INT64_MIN;
  return (int64_t)v;
}

template <typename T>
static inline accmos_wrapres accmos_store_w(__int128 acc) {
  accmos_wrapres r;
  r.prec = 0;
  T t = (T)(uint64_t)(unsigned __int128)acc;
  r.value = (int64_t)t;
  __int128 back;
  if (accmos_uns<T>::value) back = (__int128)(uint64_t)t;
  else back = (__int128)(int64_t)t;
  r.wrapped = (back != acc);
  return r;
}

template <typename T>
static inline accmos_wrapres accmos_store_d(double v) {
  accmos_wrapres r;
  r.wrapped = 0;
  r.prec = 0;
  double rounded = nearbyint(v);
  if (rounded != v) r.prec = 1;
  int64_t wide;
  if (v != v) { wide = 0; r.prec = 1; }
  else if (rounded >= 9.2233720368547758e18) { wide = INT64_MAX; r.wrapped = 1; }
  else if (rounded <= -9.2233720368547758e18) { wide = INT64_MIN; r.wrapped = 1; }
  else wide = (int64_t)rounded;
  accmos_wrapres w = accmos_store_w<T>((__int128)wide);
  w.wrapped |= r.wrapped;
  w.prec |= r.prec;
  return w;
}

#define ACCMOS_STORE(NAME, T)                                                 \
  static inline accmos_wrapres accmos_store_##NAME(__int128 a) {              \
    return accmos_store_w<T>(a);                                              \
  }                                                                           \
  static inline accmos_wrapres accmos_store_##NAME(double v) {                \
    return accmos_store_d<T>(v);                                              \
  }
ACCMOS_STORE(bool, bool)
ACCMOS_STORE(i8, int8_t)
ACCMOS_STORE(i16, int16_t)
ACCMOS_STORE(i32, int32_t)
ACCMOS_STORE(i64, int64_t)
ACCMOS_STORE(u8, uint8_t)
ACCMOS_STORE(u16, uint16_t)
ACCMOS_STORE(u32, uint32_t)
ACCMOS_STORE(u64, uint64_t)
#undef ACCMOS_STORE

template <typename T>
static inline accmos_wrapres accmos_sat_w(__int128 acc) {
  accmos_wrapres r;
  r.prec = 0;
  r.wrapped = 0;
  __int128 lo, hi;
  if (accmos_uns<T>::value) {
    lo = 0;
    hi = (__int128)(T)~(T)0;
  } else {
    lo = -((__int128)1 << (sizeof(T) * 8 - 1));
    hi = ((__int128)1 << (sizeof(T) * 8 - 1)) - 1;
  }
  if (acc < lo) { acc = lo; r.wrapped = 1; }
  else if (acc > hi) { acc = hi; r.wrapped = 1; }
  accmos_wrapres w = accmos_store_w<T>(acc);
  r.value = w.value;
  return r;
}

template <typename T>
static inline accmos_wrapres accmos_sat_d(double v) {
  accmos_wrapres r;
  r.wrapped = 0;
  r.prec = 0;
  double rounded = nearbyint(v);
  if (rounded != v) r.prec = 1;
  __int128 wide;
  if (v != v) { wide = 0; r.prec = 1; }
  else if (rounded >= 1.7014118346046923e38) wide = (__int128)INT64_MAX;
  else if (rounded <= -1.7014118346046923e38) wide = -(__int128)INT64_MAX - 1;
  else wide = (__int128)rounded;
  accmos_wrapres w = accmos_sat_w<T>(wide);
  w.prec |= r.prec;
  return w;
}

#define ACCMOS_SAT(NAME, T)                                                   \
  static inline accmos_wrapres accmos_sat_##NAME(__int128 a) {                \
    return accmos_sat_w<T>(a);                                                \
  }                                                                           \
  static inline accmos_wrapres accmos_sat_##NAME(double v) {                  \
    return accmos_sat_d<T>(v);                                                \
  }
ACCMOS_SAT(i8, int8_t)
ACCMOS_SAT(i16, int16_t)
ACCMOS_SAT(i32, int32_t)
ACCMOS_SAT(i64, int64_t)
ACCMOS_SAT(u8, uint8_t)
ACCMOS_SAT(u16, uint16_t)
ACCMOS_SAT(u32, uint32_t)
ACCMOS_SAT(u64, uint64_t)
#undef ACCMOS_SAT

#define ACCMOS_DIV(NAME, T)                                                   \
  static inline accmos_divres accmos_div_##NAME(int64_t a, int64_t b) {       \
    accmos_divres r;                                                          \
    r.value = 0; r.wrapped = 0; r.divzero = 0;                                \
    if (b == 0) { r.divzero = 1; return r; }                                  \
    accmos_wrapres w = accmos_store_w<T>((__int128)a / b);                    \
    r.value = w.value; r.wrapped = w.wrapped;                                 \
    return r;                                                                 \
  }
ACCMOS_DIV(bool, bool)
ACCMOS_DIV(i8, int8_t)
ACCMOS_DIV(i16, int16_t)
ACCMOS_DIV(i32, int32_t)
ACCMOS_DIV(i64, int64_t)
ACCMOS_DIV(u8, uint8_t)
ACCMOS_DIV(u16, uint16_t)
ACCMOS_DIV(u32, uint32_t)
ACCMOS_DIV(u64, uint64_t)
#undef ACCMOS_DIV

// Floored modulo (Simulink "mod"); mirrors MathSpec::apply.
static inline double accmos_fmod_floor(double a, double b) {
  double m = fmod(a, b);
  if (m != 0.0 && ((m < 0.0) != (b < 0.0))) m += b;
  return m;
}

// 1-D table lookup with clipping; mirrors actors/lookup.cpp lut1().
static inline double accmos_lut1(const double* xs, const double* ys, int n,
                                 double v, int nearest, int* outcome) {
  if (v <= xs[0]) { *outcome = v < xs[0] ? 0 : 1; return ys[0]; }
  if (v >= xs[n - 1]) { *outcome = v > xs[n - 1] ? 2 : 1; return ys[n - 1]; }
  *outcome = 1;
  int k = 0;
  while (k + 2 < n && v >= xs[k + 1]) ++k;
  double x0 = xs[k], x1 = xs[k + 1], y0 = ys[k], y1 = ys[k + 1];
  if (nearest) return (v - x0 <= x1 - v) ? y0 : y1;
  return y0 + (y1 - y0) * (v - x0) / (x1 - x0);
}

// Clamping bilinear lookup; mirrors Lookup2DSpec::bilinear.
static inline double accmos_lut2(const double* xs, int nx, const double* ys,
                                 int ny, const double* zs, double u, double v,
                                 int* clipped) {
  if (u < xs[0]) { u = xs[0]; *clipped = 1; }
  if (u > xs[nx - 1]) { u = xs[nx - 1]; *clipped = 1; }
  if (v < ys[0]) { v = ys[0]; *clipped = 1; }
  if (v > ys[ny - 1]) { v = ys[ny - 1]; *clipped = 1; }
  int ix = 0;
  while (ix + 2 < nx && u >= xs[ix + 1]) ++ix;
  int iy = 0;
  while (iy + 2 < ny && v >= ys[iy + 1]) ++iy;
  double x0 = xs[ix], x1 = xs[ix + 1];
  double y0 = ys[iy], y1 = ys[iy + 1];
  double tx = (u - x0) / (x1 - x0);
  double ty = (v - y0) / (y1 - y0);
  double z00 = zs[ix * ny + iy], z01 = zs[ix * ny + iy + 1];
  double z10 = zs[(ix + 1) * ny + iy], z11 = zs[(ix + 1) * ny + iy + 1];
  double a = z00 + (z10 - z00) * tx;
  double b = z01 + (z11 - z01) * tx;
  return a + (b - a) * ty;
}

// SplitMix64 stimulus stream; mirrors ir/arith.h SplitMix64.
static inline uint64_t accmos_sm64_next(uint64_t* state) {
  *state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = *state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

static inline double accmos_sm64_unit(uint64_t* state) {
  return (double)(accmos_sm64_next(state) >> 11) * 0x1.0p-53;
}

// Per-port stream derivation; mirrors ir/arith.h portSeed().
static inline uint64_t accmos_portseed(uint64_t runSeed, int portIndex) {
  uint64_t state = runSeed ^ (0xA24BAED4963EE407ULL +
                              (uint64_t)portIndex * 0x9FB21C651E98DF25ULL);
  return accmos_sm64_next(&state);
}

// Deadline clock: absolute seconds on the SAME monotonic clock the host
// reads (std::chrono::steady_clock), so an AccmosRunArgs::deadlineSeconds
// computed host-side compares directly in the generated step loop.
static inline double accmos_now_s(void) {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Cooperative pause used by injected hangs (ACCMOS_FAULT=hang...): spin
// politely so a hung run burns ~no CPU while it waits for its deadline
// (or, with no deadline, for the host watchdog to kill it).
static inline void accmos_pause_ms(int ms) {
  struct timespec ts;
  ts.tv_sec = ms / 1000;
  ts.tv_nsec = (long)(ms % 1000) * 1000000L;
  nanosleep(&ts, 0);
}

// Binary-ABI value packing: floats travel as their IEEE-754 double bit
// pattern, so the host-side decoder reproduces the text protocol's
// %.17g/strtod round-trip bit for bit.
static inline uint64_t accmos_pack_f(double v) {
  uint64_t u;
  memcpy(&u, &v, 8);
  return u;
}

// accmos_stop / accmos_diag_fired live in the per-run model-state struct
// (accmos_model), so concurrent in-process runs cannot observe each other.
// ---- end of runtime ------------------------------------------------------
)RT";
  return kPreamble;
}

}  // namespace accmos
