// Compile-and-execute step of the AccMoS pipeline: writes the generated
// source, invokes the host C++ compiler (the paper uses GCC -O3), and runs
// the resulting simulation binary capturing its result protocol.
//
// Compilation is fronted by a content-addressed cache: the key is a hash of
// (compiler, common flags, optimization level, generated source), and
// compiled binaries are stored under $ACCMOS_CACHE_DIR (default
// <system-tmp>/accmos-cache). A second engine construction for the same
// model skips the dominant compile cost — "one compiled simulator serves a
// whole campaign" extends to "…and every later campaign on the same model".
// Cached entries carry a size + content hash sidecar and are verified on
// every hit; a corrupted or truncated entry falls back to a recompile.
#pragma once

#include <string>
#include <vector>

#include "ir/model.h"

namespace accmos {

// Thrown when the compiler or the generated binary fails; carries the
// captured compiler/binary output. A ModelError so callers handling model
// pipeline failures see compiler stderr, not a bare exit code.
class CompileError : public ModelError {
 public:
  explicit CompileError(const std::string& what) : ModelError(what) {}
};

// What the driver produces from the generated source. An Executable is run
// as a subprocess via run(); a SharedLib is built -shared -fPIC for the
// in-process dlopen backend. The two enter the compile cache under distinct
// keys — identical source compiled both ways must never collide.
enum class ArtifactKind : uint8_t { Executable, SharedLib };

struct CompileOutput {
  std::string exePath;  // executable or shared library, per ArtifactKind
  std::string sourcePath;
  double seconds = 0.0;
  bool cacheHit = false;  // binary came from the content-addressed cache
  int retries = 0;  // transient compiler failures absorbed (OOM-kill, EAGAIN)
};

class CompilerDriver {
 public:
  // workDir: where sources/binaries are placed; created if missing. When
  // empty a fresh directory under the system temp dir is used.
  explicit CompilerDriver(std::string workDir = "");
  ~CompilerDriver();

  CompilerDriver(const CompilerDriver&) = delete;
  CompilerDriver& operator=(const CompilerDriver&) = delete;

  // Writes `source` to <dir>/<name>.cpp and compiles it — or, when the
  // cache holds a verified binary for the same (compiler, flags, source),
  // returns that binary with cacheHit set and near-zero seconds.
  // `extraFlags` are appended verbatim to the compile command (e.g.
  // "-DACCMOS_BATCH_LANES=8" for a batch-capable library) and are part of
  // the cache identity — same source, different defines, distinct entries.
  CompileOutput compile(const std::string& source, const std::string& name,
                        const std::string& optFlag,
                        ArtifactKind kind = ArtifactKind::Executable,
                        const std::string& extraFlags = "");

  // Runs the binary with the given argv, returning captured output
  // (stdout+stderr). timeoutSec > 0 arms the host-side watchdog: on
  // expiry the child's process group is SIGKILLed and SimTimeoutError is
  // thrown. Death by signal throws SimCrashError (carrying the signal),
  // a nonzero exit throws SimCrashError with signal 0, and a launch
  // failure throws CompileError — the same taxonomy campaigns record.
  std::string run(const std::string& exePath,
                  const std::vector<std::string>& args,
                  double timeoutSec = 0.0) const;

  const std::string& dir() const { return dir_; }
  // Keep the working directory on destruction (for debugging / the
  // keepGeneratedCode option).
  void setKeep(bool keep) { keep_ = keep; }
  // Disable the compile cache for this driver (SimOptions::compileCache).
  // The ACCMOS_CACHE_DISABLE environment variable disables it globally.
  void setCacheEnabled(bool enabled) { cacheEnabled_ = enabled; }
  // Wall-clock watchdog for one compiler invocation (seconds; 0 = off).
  // Initialized from $ACCMOS_COMPILE_TIMEOUT, default 300.
  void setCompileTimeout(double sec) { compileTimeoutSec_ = sec; }
  double compileTimeout() const { return compileTimeoutSec_; }

  // The compiler command used ($CXX, else c++).
  static std::string compilerPath();
  // Resolved cache directory: $ACCMOS_CACHE_DIR, else <tmp>/accmos-cache.
  static std::string cacheDir();
  // Content-address of a compilation: stable across processes. The artifact
  // kind (and its -shared -fPIC flags) is part of the address, so an
  // executable and a shared library of the same source get distinct keys.
  // Extra flags are part of the address for the same reason: a source
  // compiled with -DACCMOS_BATCH_LANES=N produces a different binary than
  // the flagless compile of the identical source, and a batch-requesting
  // engine must never be served a cached batchless artifact.
  static uint64_t cacheKey(const std::string& source,
                           const std::string& optFlag,
                           ArtifactKind kind = ArtifactKind::Executable,
                           const std::string& extraFlags = "");

  // Default compile watchdog: $ACCMOS_COMPILE_TIMEOUT seconds, else 300
  // (a backstop against a wedged compiler, far above any real compile).
  static double defaultCompileTimeout();

 private:
  std::string dir_;
  bool owned_ = false;  // we created it -> we may remove it
  bool keep_ = false;
  bool cacheEnabled_ = true;
  double compileTimeoutSec_ = defaultCompileTimeout();
};

}  // namespace accmos
