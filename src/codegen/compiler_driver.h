// Compile-and-execute step of the AccMoS pipeline: writes the generated
// source, invokes the host C++ compiler (the paper uses GCC -O3), and runs
// the resulting simulation binary capturing its result protocol.
//
// Compilation is fronted by a content-addressed cache: the key is a hash of
// (compiler, common flags, optimization level, generated source), and
// compiled binaries are stored under $ACCMOS_CACHE_DIR (default
// <system-tmp>/accmos-cache). A second engine construction for the same
// model skips the dominant compile cost — "one compiled simulator serves a
// whole campaign" extends to "…and every later campaign on the same model".
// Cached entries carry a size + content hash sidecar and are verified on
// every hit; a corrupted or truncated entry falls back to a recompile.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/model.h"

namespace accmos {

// Thrown when the compiler or the generated binary fails; carries the
// captured compiler/binary output. A ModelError so callers handling model
// pipeline failures see compiler stderr, not a bare exit code.
class CompileError : public ModelError {
 public:
  explicit CompileError(const std::string& what) : ModelError(what) {}
};

// Thrown from CompileHandle::get() when an async compile was cancelled by
// every interested party before a worker started it — the job completes
// with this instead of a binary. A CompileError so existing containment
// (SpecEvaluator's per-shape catch, the tiered engine's degradation path)
// handles it without new cases.
class CompileCancelled : public CompileError {
 public:
  explicit CompileCancelled(const std::string& what) : CompileError(what) {}
};

// What the driver produces from the generated source. An Executable is run
// as a subprocess via run(); a SharedLib is built -shared -fPIC for the
// in-process dlopen backend. The two enter the compile cache under distinct
// keys — identical source compiled both ways must never collide.
enum class ArtifactKind : uint8_t { Executable, SharedLib };

struct CompileOutput {
  std::string exePath;  // executable or shared library, per ArtifactKind
  std::string sourcePath;
  double seconds = 0.0;
  bool cacheHit = false;  // binary came from the content-addressed cache
  int retries = 0;  // transient compiler failures absorbed (OOM-kill, EAGAIN)
  // Process-wide ordinal (1-based) of the real compiler invocation that
  // produced this binary; 0 when the cache served it without running the
  // compiler. Requests that joined an in-flight single-flight compile share
  // the producer's ordinal — two equal ordinals mean one compiler run.
  uint64_t invocation = 0;
  // Keeps a pool-owned workspace alive while this output is held: a
  // background compile whose binary could not be published to the cache
  // leaves exePath pointing into its temporary workspace, which lives
  // exactly as long as some CompileOutput still references it.
  std::shared_ptr<void> keepAlive;
};

namespace detail {
class CompileJob;
}

// A future for one asynchronous compilation. Move-only; dropping or
// cancelling the handle withdraws this caller's interest — a job every
// interested party abandoned before a pool worker picked it up is never
// compiled (its future completes with CompileCancelled). A job already
// running is not interrupted: the compile finishes and (cache permitting)
// publishes, so the work benefits the next request for the same key.
class CompileHandle {
 public:
  CompileHandle() = default;
  CompileHandle(CompileHandle&& other) noexcept;
  CompileHandle& operator=(CompileHandle&& other) noexcept;
  CompileHandle(const CompileHandle&) = delete;
  CompileHandle& operator=(const CompileHandle&) = delete;
  ~CompileHandle();

  bool valid() const { return job_ != nullptr; }
  // Non-blocking: has the compile finished (successfully or not)?
  bool ready() const;
  // Blocks until finished, then returns the output or rethrows the
  // compile's failure (CompileError, CompileCancelled, ...). May be called
  // repeatedly and even after cancel() — the result is shared.
  CompileOutput get() const;
  // Blocks until finished without consuming the result.
  void wait() const;
  // Withdraws this handle's interest (idempotent). See class comment.
  void cancel();

 private:
  friend class CompilerDriver;
  explicit CompileHandle(std::shared_ptr<detail::CompileJob> job);

  std::shared_ptr<detail::CompileJob> job_;
  bool released_ = false;  // interest already withdrawn (cancel/move-out)
};

class CompilerDriver {
 public:
  // workDir: where sources/binaries are placed; created if missing. When
  // empty a fresh directory under the system temp dir is used.
  explicit CompilerDriver(std::string workDir = "");
  ~CompilerDriver();

  CompilerDriver(const CompilerDriver&) = delete;
  CompilerDriver& operator=(const CompilerDriver&) = delete;

  // Writes `source` to <dir>/<name>.cpp and compiles it — or, when the
  // cache holds a verified binary for the same (compiler, flags, source),
  // returns that binary with cacheHit set and near-zero seconds.
  // `extraFlags` are appended verbatim to the compile command (e.g.
  // "-DACCMOS_BATCH_LANES=8" for a batch-capable library) and are part of
  // the cache identity — same source, different defines, distinct entries.
  CompileOutput compile(const std::string& source, const std::string& name,
                        const std::string& optFlag,
                        ArtifactKind kind = ArtifactKind::Executable,
                        const std::string& extraFlags = "");

  // Starts the same compilation on the background compile pool and returns
  // immediately. A verified cache entry yields an already-ready handle (no
  // pool round trip), so a warm model "compiles" before the caller's first
  // run. Requests are de-duplicated in flight per cache key (single-flight):
  // N engines racing on one cold model enqueue exactly one compile, and all
  // handles resolve to the producer's output. The job compiles in its own
  // temporary workspace and publishes through the usual crash-safe cache
  // path; it captures this driver's timeout/cache settings at call time and
  // does not reference the driver afterwards — destroying the driver while
  // the job runs is safe. With the cache unusable (setCacheEnabled(false)
  // or ACCMOS_CACHE_DISABLE) the compile still runs on the pool but cannot
  // be de-duplicated or served to other drivers; the workspace then lives
  // as long as the returned output (CompileOutput::keepAlive).
  //
  // This is the async primitive the tiered engine swaps on and the future
  // accmosd daemon schedules with (ROADMAP).
  CompileHandle compileAsync(const std::string& source,
                             const std::string& name,
                             const std::string& optFlag,
                             ArtifactKind kind = ArtifactKind::Executable,
                             const std::string& extraFlags = "");

  // Runs the binary with the given argv, returning captured output
  // (stdout+stderr). timeoutSec > 0 arms the host-side watchdog: on
  // expiry the child's process group is SIGKILLed and SimTimeoutError is
  // thrown. Death by signal throws SimCrashError (carrying the signal),
  // a nonzero exit throws SimCrashError with signal 0, and a launch
  // failure throws CompileError — the same taxonomy campaigns record.
  std::string run(const std::string& exePath,
                  const std::vector<std::string>& args,
                  double timeoutSec = 0.0) const;

  const std::string& dir() const { return dir_; }
  // Keep the working directory on destruction (for debugging / the
  // keepGeneratedCode option).
  void setKeep(bool keep) { keep_ = keep; }
  // Disable the compile cache for this driver (SimOptions::compileCache).
  // The ACCMOS_CACHE_DISABLE environment variable disables it globally.
  void setCacheEnabled(bool enabled) { cacheEnabled_ = enabled; }
  // Wall-clock watchdog for one compiler invocation (seconds; 0 = off).
  // Initialized from $ACCMOS_COMPILE_TIMEOUT, default 300.
  void setCompileTimeout(double sec) { compileTimeoutSec_ = sec; }
  double compileTimeout() const { return compileTimeoutSec_; }

  // The compiler command used ($CXX, else c++).
  static std::string compilerPath();
  // Resolved cache directory: $ACCMOS_CACHE_DIR, else <tmp>/accmos-cache.
  static std::string cacheDir();
  // Content-address of a compilation: stable across processes. The artifact
  // kind (and its -shared -fPIC flags) is part of the address, so an
  // executable and a shared library of the same source get distinct keys.
  // Extra flags are part of the address for the same reason: a source
  // compiled with -DACCMOS_BATCH_LANES=N produces a different binary than
  // the flagless compile of the identical source, and a batch-requesting
  // engine must never be served a cached batchless artifact.
  static uint64_t cacheKey(const std::string& source,
                           const std::string& optFlag,
                           ArtifactKind kind = ArtifactKind::Executable,
                           const std::string& extraFlags = "");

  // Default compile watchdog: $ACCMOS_COMPILE_TIMEOUT seconds, else 300
  // (a backstop against a wedged compiler, far above any real compile).
  static double defaultCompileTimeout();

  // Total real compiler invocations this process has made (cache hits and
  // joined single-flight requests do not count). The regression handle for
  // "N racing engines, one compile".
  static uint64_t compilerInvocations();

  // True when ACCMOS_CACHE_DISABLE turns the compile cache off process-wide
  // (re-read per call). The tiered engine checks this: async hand-over of
  // the compiled artifact rides on the cache.
  static bool cacheDisabledGlobally();

  // Background compile pool width: $ACCMOS_COMPILE_POOL, default 2,
  // clamped to [1, 16].
  static int compilePoolSize();

 private:
  std::string dir_;
  bool owned_ = false;  // we created it -> we may remove it
  bool keep_ = false;
  bool cacheEnabled_ = true;
  double compileTimeoutSec_ = defaultCompileTimeout();
};

}  // namespace accmos
