// Compile-and-execute step of the AccMoS pipeline: writes the generated
// source, invokes the host C++ compiler (the paper uses GCC -O3), and runs
// the resulting simulation binary capturing its result protocol.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

namespace accmos {

// Thrown when the compiler or the generated binary fails; carries the
// captured log.
class CompileError : public std::runtime_error {
 public:
  explicit CompileError(const std::string& what) : std::runtime_error(what) {}
};

struct CompileOutput {
  std::string exePath;
  std::string sourcePath;
  double seconds = 0.0;
};

class CompilerDriver {
 public:
  // workDir: where sources/binaries are placed; created if missing. When
  // empty a fresh directory under the system temp dir is used.
  explicit CompilerDriver(std::string workDir = "");
  ~CompilerDriver();

  CompilerDriver(const CompilerDriver&) = delete;
  CompilerDriver& operator=(const CompilerDriver&) = delete;

  // Writes `source` to <dir>/<name>.cpp and compiles it.
  CompileOutput compile(const std::string& source, const std::string& name,
                        const std::string& optFlag);

  // Runs the binary with the given argv, returning captured stdout.
  // Throws CompileError on non-zero exit.
  std::string run(const std::string& exePath,
                  const std::vector<std::string>& args) const;

  const std::string& dir() const { return dir_; }
  // Keep the working directory on destruction (for debugging / the
  // keepGeneratedCode option).
  void setKeep(bool keep) { keep_ = keep; }

  // The compiler command used ($CXX, else c++).
  static std::string compilerPath();

 private:
  std::string dir_;
  bool owned_ = false;  // we created it -> we may remove it
  bool keep_ = false;
};

}  // namespace accmos
