#include "codegen/compiler_driver.h"

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <unordered_map>

namespace accmos {
namespace fs = std::filesystem;

namespace {

std::atomic<int> g_dirCounter{0};

std::string readFile(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string shellQuote(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out.push_back(c);
    }
  }
  out += "'";
  return out;
}

// Turns a wait()-style status (std::system, pclose) into a human-readable
// description; returns the empty string for a clean exit.
std::string describeStatus(int status) {
  if (status == -1) {
    return std::string("could not be launched (") + std::strerror(errno) + ")";
  }
  if (WIFSIGNALED(status)) {
    return "was killed by signal " + std::to_string(WTERMSIG(status));
  }
  if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
    return "exited with status " + std::to_string(WEXITSTATUS(status));
  }
  if (!WIFEXITED(status)) {
    return "stopped abnormally (wait status " + std::to_string(status) + ")";
  }
  return "";
}

uint64_t fnv1a64(const std::string& data, uint64_t h = 0xcbf29ce484222325ull) {
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string hex16(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

// Extra flags for ArtifactKind::SharedLib; part of the cache identity.
constexpr const char* kSharedLibFlags = "-shared -fPIC";

bool cacheDisabledByEnv() {
  const char* v = std::getenv("ACCMOS_CACHE_DISABLE");
  return v != nullptr && v[0] != '\0' && std::string(v) != "0";
}

// In-process index of cache entries this process has verified or produced.
// Hits are still re-verified against the on-disk content (size + hash), so
// external corruption — or a cleaned temp dir — degrades to a recompile,
// never to executing a damaged binary.
std::mutex g_cacheMutex;
std::unordered_map<uint64_t, std::string> g_cacheIndex;

struct CacheEntry {
  fs::path bin;
  fs::path meta;
};

CacheEntry cachePaths(uint64_t key) {
  fs::path dir(CompilerDriver::cacheDir());
  return {dir / (hex16(key) + ".bin"), dir / (hex16(key) + ".meta")};
}

// A cache entry is valid when the sidecar's recorded size and content hash
// match the binary on disk (catches truncation and bit rot).
bool verifyEntry(const CacheEntry& e) {
  std::error_code ec;
  if (!fs::is_regular_file(e.bin, ec) || !fs::is_regular_file(e.meta, ec)) {
    return false;
  }
  std::ifstream meta(e.meta);
  uint64_t size = 0;
  std::string hash;
  if (!(meta >> size >> hash)) return false;
  if (fs::file_size(e.bin, ec) != size || ec) return false;
  return hex16(fnv1a64(readFile(e.bin))) == hash;
}

// Atomically publishes `exePath` under the cache key: copy to a temp name
// in the cache dir, then rename (binary first, sidecar last — readers
// require a valid sidecar, so a torn write is just a miss). Best effort:
// any filesystem error leaves the cache unused, not the build broken.
bool storeEntry(uint64_t key, const fs::path& exePath) {
  try {
    CacheEntry e = cachePaths(key);
    fs::create_directories(e.bin.parent_path());
    std::string tag = "." + std::to_string(::getpid()) + ".tmp";
    fs::path binTmp = e.bin.string() + tag;
    fs::path metaTmp = e.meta.string() + tag;
    fs::copy_file(exePath, binTmp, fs::copy_options::overwrite_existing);
    std::string content = readFile(binTmp);
    {
      std::ofstream meta(metaTmp);
      meta << content.size() << " " << hex16(fnv1a64(content)) << "\n";
      if (!meta) return false;
    }
    fs::rename(binTmp, e.bin);
    fs::rename(metaTmp, e.meta);
    return true;
  } catch (const fs::filesystem_error&) {
    return false;
  }
}

}  // namespace

CompilerDriver::CompilerDriver(std::string workDir) {
  if (workDir.empty()) {
    fs::path base = fs::temp_directory_path() /
                    ("accmos_" + std::to_string(::getpid()) + "_" +
                     std::to_string(g_dirCounter.fetch_add(1)));
    fs::create_directories(base);
    dir_ = base.string();
    owned_ = true;
  } else {
    fs::create_directories(workDir);
    dir_ = workDir;
  }
}

CompilerDriver::~CompilerDriver() {
  if (owned_ && !keep_) {
    std::error_code ec;
    fs::remove_all(dir_, ec);  // best effort
  }
}

std::string CompilerDriver::compilerPath() {
  const char* cxx = std::getenv("CXX");
  if (cxx != nullptr && cxx[0] != '\0') return cxx;
  return "c++";
}

std::string CompilerDriver::cacheDir() {
  const char* env = std::getenv("ACCMOS_CACHE_DIR");
  if (env != nullptr && env[0] != '\0') return env;
  return (fs::temp_directory_path() / "accmos-cache").string();
}

uint64_t CompilerDriver::cacheKey(const std::string& source,
                                  const std::string& optFlag,
                                  ArtifactKind kind,
                                  const std::string& extraFlags) {
  uint64_t h = fnv1a64(compilerPath());
  h = fnv1a64(std::string(" -std=c++17 "), h);
  h = fnv1a64(optFlag, h);
  if (kind == ArtifactKind::SharedLib) {
    h = fnv1a64(std::string(kSharedLibFlags), h);
  }
  if (!extraFlags.empty()) {
    h = fnv1a64(std::string("\x1f"), h);  // separator: flag fields
    h = fnv1a64(extraFlags, h);
  }
  h = fnv1a64(std::string("\x1f"), h);  // separator: flags vs source
  return fnv1a64(source, h);
}

CompileOutput CompilerDriver::compile(const std::string& source,
                                      const std::string& name,
                                      const std::string& optFlag,
                                      ArtifactKind kind,
                                      const std::string& extraFlags) {
  const bool shared = kind == ArtifactKind::SharedLib;
  CompileOutput out;
  fs::path src = fs::path(dir_) / (name + ".cpp");
  fs::path exe = fs::path(dir_) / (shared ? name + ".so" : name);
  fs::path log = fs::path(dir_) / (name + ".log");
  {
    std::ofstream f(src);
    if (!f) throw CompileError("cannot write " + src.string());
    f << source;
  }
  out.sourcePath = src.string();

  bool useCache = cacheEnabled_ && !cacheDisabledByEnv();
  uint64_t key = 0;
  if (useCache) {
    key = cacheKey(source, optFlag, kind, extraFlags);
    auto t0 = std::chrono::steady_clock::now();
    CacheEntry e = cachePaths(key);
    if (verifyEntry(e)) {
      {
        std::lock_guard<std::mutex> lock(g_cacheMutex);
        g_cacheIndex[key] = e.bin.string();
      }
      auto t1 = std::chrono::steady_clock::now();
      out.seconds = std::chrono::duration<double>(t1 - t0).count();
      out.exePath = e.bin.string();
      out.cacheHit = true;
      return out;
    }
    {
      // An entry this process produced earlier no longer verifies
      // (truncated, corrupted, or cleaned up): drop it and recompile.
      std::lock_guard<std::mutex> lock(g_cacheMutex);
      g_cacheIndex.erase(key);
    }
  }

  std::ostringstream cmd;
  cmd << compilerPath() << " -std=c++17 " << optFlag;
  if (shared) cmd << " " << kSharedLibFlags;
  if (!extraFlags.empty()) cmd << " " << extraFlags;
  cmd << " -o " << shellQuote(exe.string()) << " " << shellQuote(src.string())
      << " > " << shellQuote(log.string()) << " 2>&1";
  auto t0 = std::chrono::steady_clock::now();
  int rc = std::system(cmd.str().c_str());
  auto t1 = std::chrono::steady_clock::now();
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  std::string failure = describeStatus(rc);
  if (!failure.empty()) {
    throw CompileError("compilation of generated simulation code failed: " +
                       compilerPath() + " " + failure +
                       "\ncompiler output:\n" + readFile(log));
  }
  out.exePath = exe.string();
  if (useCache && storeEntry(key, exe)) {
    CacheEntry e = cachePaths(key);
    out.exePath = e.bin.string();
    std::lock_guard<std::mutex> lock(g_cacheMutex);
    g_cacheIndex[key] = e.bin.string();
  }
  return out;
}

std::string CompilerDriver::run(const std::string& exePath,
                                const std::vector<std::string>& args) const {
  std::ostringstream cmd;
  cmd << shellQuote(exePath);
  for (const auto& a : args) cmd << " " << shellQuote(a);
  FILE* pipe = ::popen(cmd.str().c_str(), "r");
  if (pipe == nullptr) {
    throw CompileError(
        std::string("failed to launch generated simulation binary: ") +
        std::strerror(errno));
  }
  std::string output;
  char buf[4096];
  size_t n;
  while ((n = ::fread(buf, 1, sizeof(buf), pipe)) > 0) {
    output.append(buf, n);
  }
  bool readError = ::ferror(pipe) != 0;
  int rc = ::pclose(pipe);
  if (readError) {
    throw CompileError(
        "error reading output of generated simulation binary " + exePath);
  }
  std::string failure = describeStatus(rc);
  if (!failure.empty()) {
    throw CompileError("generated simulation binary " + failure + "\n" +
                       output);
  }
  return output;
}

}  // namespace accmos
