#include "codegen/compiler_driver.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <future>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "codegen/fault.h"
#include "codegen/subprocess.h"
#include "sim/failure.h"

namespace accmos {
namespace fs = std::filesystem;

namespace {

std::atomic<int> g_dirCounter{0};
std::atomic<int> g_tmpCounter{0};
std::atomic<uint64_t> g_invocations{0};

std::string readFile(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string shellQuote(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out.push_back(c);
    }
  }
  out += "'";
  return out;
}

uint64_t fnv1a64(const std::string& data, uint64_t h = 0xcbf29ce484222325ull) {
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string hex16(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

// Extra flags for ArtifactKind::SharedLib; part of the cache identity.
constexpr const char* kSharedLibFlags = "-shared -fPIC";

bool cacheDisabledByEnv() {
  const char* v = std::getenv("ACCMOS_CACHE_DISABLE");
  return v != nullptr && v[0] != '\0' && std::string(v) != "0";
}

// In-process index of cache entries this process has verified or produced.
// Hits are still re-verified against the on-disk content (size + hash), so
// external corruption — or a cleaned temp dir — degrades to a recompile,
// never to executing a damaged binary.
std::mutex g_cacheMutex;
std::unordered_map<uint64_t, std::string> g_cacheIndex;

struct CacheEntry {
  fs::path bin;
  fs::path meta;
};

CacheEntry cachePaths(uint64_t key) {
  fs::path dir(CompilerDriver::cacheDir());
  return {dir / (hex16(key) + ".bin"), dir / (hex16(key) + ".meta")};
}

// A cache entry is valid when the sidecar's recorded size and content hash
// match the binary on disk (catches truncation and bit rot).
bool verifyEntry(const CacheEntry& e) {
  std::error_code ec;
  if (!fs::is_regular_file(e.bin, ec) || !fs::is_regular_file(e.meta, ec)) {
    return false;
  }
  std::ifstream meta(e.meta);
  uint64_t size = 0;
  std::string hash;
  if (!(meta >> size >> hash)) return false;
  if (fs::file_size(e.bin, ec) != size || ec) return false;
  return hex16(fnv1a64(readFile(e.bin))) == hash;
}

// Flushes a file's data to stable storage before it is renamed into
// place: a crash between rename and writeback must not be able to
// publish a hole-filled binary under a valid-looking name.
bool fsyncPath(const fs::path& p) {
  int fd = ::open(p.c_str(), O_RDONLY);
  if (fd < 0) return false;
  bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

// Best-effort sweep of abandoned temp files (a writer killed between
// copy and rename leaves its *.tmp behind forever otherwise). Only
// clearly-stale files go: anything older than an hour can't belong to a
// live writer. Runs once per process — the dir scan is not free.
void sweepStaleTemps(const fs::path& dir) {
  static std::once_flag once;
  std::call_once(once, [&dir] {
    std::error_code ec;
    auto now = fs::file_time_type::clock::now();
    for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
         it.increment(ec)) {
      const fs::path& p = it->path();
      if (p.extension() != ".tmp") continue;
      auto mtime = fs::last_write_time(p, ec);
      if (ec) continue;
      if (now - mtime > std::chrono::hours(1)) fs::remove(p, ec);
    }
  });
}

// Atomically publishes `exePath` under the cache key: copy to a temp name
// in the cache dir, fsync, then rename (binary first, sidecar last —
// readers require a valid sidecar, so a torn write is just a miss). The
// temp tag is pid + a process-wide counter, so concurrent writers in one
// process (campaign workers compiling different shapes) can never race on
// the same temp name. Best effort: any filesystem error leaves the cache
// unused, not the build broken.
bool storeEntry(uint64_t key, const fs::path& exePath) {
  try {
    CacheEntry e = cachePaths(key);
    fs::create_directories(e.bin.parent_path());
    sweepStaleTemps(e.bin.parent_path());
    std::string tag = "." + std::to_string(::getpid()) + "." +
                      std::to_string(g_tmpCounter.fetch_add(1)) + ".tmp";
    fs::path binTmp = e.bin.string() + tag;
    fs::path metaTmp = e.meta.string() + tag;
    fs::copy_file(exePath, binTmp, fs::copy_options::overwrite_existing);
    std::string content = readFile(binTmp);
    {
      std::ofstream meta(metaTmp);
      meta << content.size() << " " << hex16(fnv1a64(content)) << "\n";
      if (!meta) return false;
    }
    if (!fsyncPath(binTmp) || !fsyncPath(metaTmp)) {
      std::error_code ec;
      fs::remove(binTmp, ec);
      fs::remove(metaTmp, ec);
      return false;
    }
    fs::rename(binTmp, e.bin);
    fs::rename(metaTmp, e.meta);
    return true;
  } catch (const fs::filesystem_error&) {
    return false;
  }
}

// ---- Cross-process single-flight ---------------------------------------
// The in-process single-flight map (g_inFlight, below) cannot see other
// processes; shard workers (src/dist) and concurrent CLI invocations
// pointed at one shared cache directory would each pay the cold compile.
// A claim file `<key>.lock` in the cache dir — created with O_EXCL, pid
// inside — extends single-flight across the fleet: exactly one process
// compiles a cold key, the losers poll until the winner's crash-safe
// publication appears and load it. The lock is an OPTIMIZATION, never a
// correctness dependency: a claimant that cannot acquire within a bounded
// budget compiles anyway (the duplicate store is harmless — publication is
// atomic and content-addressed), and a lock whose holder died is broken by
// the next contender, so a crashed compiler never wedges the fleet.

class CacheKeyLock {
 public:
  ~CacheKeyLock() { release(); }

  bool tryAcquire(uint64_t key) {
    path_ = cachePaths(key).bin;
    path_ += ".lock";
    std::error_code ec;
    fs::create_directories(path_.parent_path(), ec);
    int fd = ::open(path_.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd < 0) return false;
    std::string pid = std::to_string(::getpid()) + "\n";
    ssize_t ignored = ::write(fd, pid.data(), pid.size());
    (void)ignored;
    ::close(fd);
    held_ = true;
    return true;
  }

  // Breaks the lock when its recorded holder is provably gone (dead pid on
  // this host) or the file has outlived any plausible compile (`maxAgeSec`).
  // Best effort and racy by design: the worst case is a duplicate compile,
  // which atomic publication absorbs.
  void breakIfStale(double maxAgeSec) const {
    std::error_code ec;
    std::ifstream f(path_);
    long pid = 0;
    if (f >> pid && pid > 0) {
      if (::kill(static_cast<pid_t>(pid), 0) != 0 && errno == ESRCH) {
        fs::remove(path_, ec);
        return;
      }
    }
    auto mtime = fs::last_write_time(path_, ec);
    if (ec) return;
    auto age = fs::file_time_type::clock::now() - mtime;
    if (std::chrono::duration<double>(age).count() > maxAgeSec) {
      fs::remove(path_, ec);
    }
  }

  void release() {
    if (!held_) return;
    std::error_code ec;
    fs::remove(path_, ec);
    held_ = false;
  }

 private:
  fs::path path_;
  bool held_ = false;
};

// One fully-specified compilation, independent of any CompilerDriver
// instance: jobs capture these by value so they can outlive their creator
// (the driver may be destroyed while a pool worker compiles).
struct CompileParams {
  std::string source;
  std::string name;
  std::string optFlag;
  std::string extraFlags;
  ArtifactKind kind = ArtifactKind::Executable;
  double timeoutSec = 0.0;
  bool publish = false;  // cache usable: publish + single-flight by key
  uint64_t key = 0;
};

// Re-verifies and returns the cache entry for `key`, or nullopt on a miss
// (dropping any stale in-process index entry).
std::optional<CompileOutput> tryCacheHit(uint64_t key) {
  auto t0 = std::chrono::steady_clock::now();
  CacheEntry e = cachePaths(key);
  if (!verifyEntry(e)) {
    std::lock_guard<std::mutex> lock(g_cacheMutex);
    g_cacheIndex.erase(key);
    return std::nullopt;
  }
  {
    std::lock_guard<std::mutex> lock(g_cacheMutex);
    g_cacheIndex[key] = e.bin.string();
  }
  auto t1 = std::chrono::steady_clock::now();
  CompileOutput out;
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  out.exePath = e.bin.string();
  out.cacheHit = true;
  return out;
}

// Runs one real compilation in `dirStr`: writes the source, invokes the
// compiler under the watchdog/rlimits with the transient-failure retry
// loop, and publishes to the cache when the params ask for it. This is the
// single code path under both the synchronous and the asynchronous front
// ends, so fault injection, retries and crash-safe publication behave
// identically either way.
CompileOutput compileNow(const CompileParams& p, const std::string& dirStr) {
  const bool shared = p.kind == ArtifactKind::SharedLib;
  CompileOutput out;
  fs::path src = fs::path(dirStr) / (p.name + ".cpp");
  fs::path exe = fs::path(dirStr) / (shared ? p.name + ".so" : p.name);
  fs::path log = fs::path(dirStr) / (p.name + ".log");
  {
    std::ofstream f(src);
    if (!f) throw CompileError("cannot write " + src.string());
    f << p.source;
  }
  out.sourcePath = src.string();

  // Another process may have published this key since our caller's cache
  // probe; claiming the hit here saves the compile.
  if (p.publish) {
    if (auto hit = tryCacheHit(p.key)) {
      hit->sourcePath = out.sourcePath;
      return *hit;
    }
  }

  // Cross-process single-flight (see CacheKeyLock): claim the key, or poll
  // for the winner's publication. Whatever happens below — cache hit,
  // successful publish, compile failure, exception — the claim's RAII
  // release unblocks the other processes.
  CacheKeyLock claim;
  if (p.publish) {
    const double budget =
        std::max(60.0, p.timeoutSec > 0.0 ? p.timeoutSec * 2.0 : 600.0);
    const auto waitStart = std::chrono::steady_clock::now();
    for (;;) {
      if (claim.tryAcquire(p.key)) {
        // The previous holder may have published between our probe above
        // and this acquire; one more probe avoids a duplicate compile.
        if (auto hit = tryCacheHit(p.key)) {
          hit->sourcePath = out.sourcePath;
          return *hit;
        }
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      if (auto hit = tryCacheHit(p.key)) {
        hit->sourcePath = out.sourcePath;
        return *hit;
      }
      claim.breakIfStale(budget);
      const double waited = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - waitStart)
                                .count();
      if (waited > budget) break;  // claim-less compile: still correct
    }
  }

  std::ostringstream cmd;
  cmd << CompilerDriver::compilerPath() << " -std=c++17 " << p.optFlag;
  if (shared) cmd << " " << kSharedLibFlags;
  if (!p.extraFlags.empty()) cmd << " " << p.extraFlags;
  cmd << " -o " << shellQuote(exe.string()) << " " << shellQuote(src.string());

  // The watchdog + rlimits containing ONE compiler invocation. The CPU
  // limit shadows the wall-clock one (a compiler spinning on one core hits
  // both); AS is deliberately left unlimited — modern compilers and
  // sanitizer builds legitimately reserve huge address ranges.
  SpawnLimits limits;
  limits.timeoutSec = p.timeoutSec;
  limits.cpuSeconds = p.timeoutSec > 0.0 ? p.timeoutSec * 2.0 : 0.0;
  limits.fileSizeBytes = 4ull << 30;

  const FaultPlan faults = faultPlanFromEnv();
  constexpr int kMaxAttempts = 3;
  out.invocation = g_invocations.fetch_add(1) + 1;
  auto t0 = std::chrono::steady_clock::now();
  SpawnResult r;
  int attempt = 0;
  for (;;) {
    std::string shellCmd = cmd.str();
    // Deterministic fault injection (ACCMOS_FAULT): stage a compiler
    // death or a slow compile instead of / before the real invocation.
    if (consumeCompileFault(faults)) {
      if (faults.compileFailExit > 0) {
        shellCmd = "echo 'accmos: injected compiler failure' >&2; exit " +
                   std::to_string(faults.compileFailExit);
      } else {
        shellCmd = "kill -" + std::to_string(faults.compileFailSignal) + " $$";
      }
    } else if (faults.slowCompileMs > 0) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "sleep %.3f; ",
                    faults.slowCompileMs / 1000.0);
      shellCmd = buf + shellCmd;
    }
    r = spawnAndCapture({"/bin/sh", "-c", shellCmd}, limits);
    if (r.exitedOk()) break;

    // Transient failures — the OOM killer's SIGKILL or a fork-time EAGAIN
    // — are retried with bounded exponential backoff. A watchdog kill is
    // NOT transient: what timed out once will time out again.
    bool transient = !r.timedOut && ((r.launchFailed &&
                                      r.launchErrno == EAGAIN) ||
                                     statusKilledBy(r.status, SIGKILL));
    if (!transient || attempt + 1 >= kMaxAttempts) {
      std::string failure;
      if (r.timedOut) {
        failure = "timed out after " + std::to_string(p.timeoutSec) +
                  "s (watchdog killed the compiler process group)";
      } else if (r.launchFailed) {
        failure = std::string("could not be launched (") +
                  std::strerror(r.launchErrno) + ")";
      } else {
        failure = describeWaitStatus(r.status);
      }
      if (attempt > 0) {
        failure += " after " + std::to_string(attempt) + " retr" +
                   (attempt == 1 ? "y" : "ies");
      }
      throw CompileError("compilation of generated simulation code failed: " +
                         CompilerDriver::compilerPath() + " " + failure +
                         "\ncompiler output:\n" + r.output);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(25 << attempt));
    ++attempt;
  }
  auto t1 = std::chrono::steady_clock::now();
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  out.retries = attempt;
  {
    // Keep the on-disk log for debugging sessions with keepGeneratedCode.
    std::ofstream f(log);
    f << r.output;
  }
  out.exePath = exe.string();
  if (p.publish && storeEntry(p.key, exe)) {
    CacheEntry e = cachePaths(p.key);
    out.exePath = e.bin.string();
    std::lock_guard<std::mutex> lock(g_cacheMutex);
    g_cacheIndex[p.key] = e.bin.string();
  }
  return out;
}

// Self-owned scratch directory for pool-executed jobs (a pool worker has
// no driver directory to compile in). Removed when the last reference —
// possibly a CompileOutput::keepAlive — goes away.
struct JobWorkspace {
  std::string dir;
  JobWorkspace() {
    fs::path base = fs::temp_directory_path() /
                    ("accmos_async_" + std::to_string(::getpid()) + "_" +
                     std::to_string(g_dirCounter.fetch_add(1)));
    fs::create_directories(base);
    dir = base.string();
  }
  ~JobWorkspace() {
    std::error_code ec;
    fs::remove_all(dir, ec);  // best effort
  }
};

}  // namespace

namespace detail {

// One in-flight compilation shared by every requester of the same cache
// key. The promise/shared_future pair carries the result to all of them;
// `claimed` makes execution single-shot (whoever flips it runs the
// compile — a synchronous caller inline, or a pool worker); `interest`
// counts live handles for cooperative cancellation.
class CompileJob {
 public:
  explicit CompileJob(CompileParams p) : params(std::move(p)) {
    future = promise.get_future().share();
  }

  CompileParams params;
  std::promise<CompileOutput> promise;
  std::shared_future<CompileOutput> future;
  std::atomic<bool> claimed{false};
  std::atomic<int> interest{0};
  bool mapped = false;  // registered in the single-flight map
};

}  // namespace detail

namespace {

using detail::CompileJob;

// Single-flight map: cache key -> the job currently compiling it. Entries
// are removed the moment the job completes, so a later request re-probes
// the (now warm) cache instead of holding completed jobs alive.
std::mutex g_flightMutex;
std::unordered_map<uint64_t, std::shared_ptr<CompileJob>> g_inFlight;

void unregisterJob(const std::shared_ptr<CompileJob>& job) {
  if (!job->mapped) return;
  std::lock_guard<std::mutex> lock(g_flightMutex);
  auto it = g_inFlight.find(job->params.key);
  if (it != g_inFlight.end() && it->second == job) g_inFlight.erase(it);
}

// Joins the in-flight job for `p.key` or registers a fresh one.
// Returns {job, true-if-fresh}.
std::pair<std::shared_ptr<CompileJob>, bool> acquireJob(
    const CompileParams& p) {
  std::lock_guard<std::mutex> lock(g_flightMutex);
  auto it = g_inFlight.find(p.key);
  if (it != g_inFlight.end()) return {it->second, false};
  auto job = std::make_shared<CompileJob>(p);
  job->mapped = true;
  g_inFlight[p.key] = job;
  return {job, true};
}

// Claims and executes `job` on the calling thread unless someone already
// did. With an empty dirHint the job compiles in its own workspace (the
// pool path); otherwise in the caller's driver directory (the inline
// path). Always completes the promise — value or exception.
bool runJobIfUnclaimed(const std::shared_ptr<CompileJob>& job,
                       const std::string& dirHint) {
  if (job->claimed.exchange(true)) return false;
  try {
    std::shared_ptr<JobWorkspace> ws;
    std::string dir = dirHint;
    if (dir.empty()) {
      ws = std::make_shared<JobWorkspace>();
      dir = ws->dir;
    }
    CompileOutput out = compileNow(job->params, dir);
    // Only an artifact still inside the workspace (publication failed or
    // the cache is off) needs the workspace kept alive with the output.
    if (ws && out.exePath.rfind(ws->dir, 0) == 0) out.keepAlive = ws;
    job->promise.set_value(std::move(out));
  } catch (...) {
    job->promise.set_exception(std::current_exception());
  }
  unregisterJob(job);
  return true;
}

// The background compile pool: a lazily-started set of worker threads
// (ACCMOS_COMPILE_POOL, default 2) draining a FIFO of jobs. A job whose
// every handle was cancelled before a worker reached it is completed with
// CompileCancelled instead of being compiled; a job a synchronous caller
// already claimed inline is skipped. Function-local static: constructed on
// first use, joined at process exit.
class CompilePool {
 public:
  static CompilePool& instance() {
    static CompilePool pool;
    return pool;
  }

  void enqueue(std::shared_ptr<CompileJob> job) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(job));
      size_t want = static_cast<size_t>(CompilerDriver::compilePoolSize());
      while (workers_.size() < want) {
        workers_.emplace_back([this] { workerLoop(); });
      }
    }
    cv_.notify_one();
  }

  ~CompilePool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : workers_) t.join();
  }

 private:
  void workerLoop() {
    for (;;) {
      std::shared_ptr<CompileJob> job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (stop_) return;
        job = std::move(queue_.front());
        queue_.pop_front();
      }
      if (job->interest.load() <= 0) {
        // Cooperative cancellation: nobody wants the result anymore and
        // work has not started — complete without compiling.
        if (!job->claimed.exchange(true)) {
          job->promise.set_exception(std::make_exception_ptr(CompileCancelled(
              "asynchronous compilation of " + job->params.name +
              " cancelled before it started")));
          unregisterJob(job);
        }
        continue;
      }
      runJobIfUnclaimed(job, "");
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<CompileJob>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

// An already-resolved job for the cache-hit fast path of compileAsync().
std::shared_ptr<CompileJob> makeReadyJob(CompileOutput out) {
  auto job = std::make_shared<CompileJob>(CompileParams{});
  job->claimed.store(true);
  job->promise.set_value(std::move(out));
  return job;
}

}  // namespace

CompileHandle::CompileHandle(std::shared_ptr<detail::CompileJob> job)
    : job_(std::move(job)) {
  if (job_) job_->interest.fetch_add(1);
}

CompileHandle::CompileHandle(CompileHandle&& other) noexcept
    : job_(std::move(other.job_)), released_(other.released_) {
  other.job_.reset();
  other.released_ = true;
}

CompileHandle& CompileHandle::operator=(CompileHandle&& other) noexcept {
  if (this != &other) {
    cancel();
    job_ = std::move(other.job_);
    released_ = other.released_;
    other.job_.reset();
    other.released_ = true;
  }
  return *this;
}

CompileHandle::~CompileHandle() { cancel(); }

bool CompileHandle::ready() const {
  return job_ != nullptr &&
         job_->future.wait_for(std::chrono::seconds(0)) ==
             std::future_status::ready;
}

CompileOutput CompileHandle::get() const {
  if (!job_) throw CompileError("get() on an empty CompileHandle");
  return job_->future.get();
}

void CompileHandle::wait() const {
  if (job_) job_->future.wait();
}

void CompileHandle::cancel() {
  if (job_ && !released_) {
    job_->interest.fetch_sub(1);
    released_ = true;
  }
}

CompilerDriver::CompilerDriver(std::string workDir) {
  if (workDir.empty()) {
    fs::path base = fs::temp_directory_path() /
                    ("accmos_" + std::to_string(::getpid()) + "_" +
                     std::to_string(g_dirCounter.fetch_add(1)));
    fs::create_directories(base);
    dir_ = base.string();
    owned_ = true;
  } else {
    fs::create_directories(workDir);
    dir_ = workDir;
  }
}

CompilerDriver::~CompilerDriver() {
  if (owned_ && !keep_) {
    std::error_code ec;
    fs::remove_all(dir_, ec);  // best effort
  }
}

std::string CompilerDriver::compilerPath() {
  const char* cxx = std::getenv("CXX");
  if (cxx != nullptr && cxx[0] != '\0') return cxx;
  return "c++";
}

std::string CompilerDriver::cacheDir() {
  const char* env = std::getenv("ACCMOS_CACHE_DIR");
  if (env != nullptr && env[0] != '\0') return env;
  return (fs::temp_directory_path() / "accmos-cache").string();
}

double CompilerDriver::defaultCompileTimeout() {
  if (const char* env = std::getenv("ACCMOS_COMPILE_TIMEOUT");
      env != nullptr && env[0] != '\0') {
    char* end = nullptr;
    double v = std::strtod(env, &end);
    if (end != env && v >= 0.0) return v;
  }
  return 300.0;
}

uint64_t CompilerDriver::cacheKey(const std::string& source,
                                  const std::string& optFlag,
                                  ArtifactKind kind,
                                  const std::string& extraFlags) {
  uint64_t h = fnv1a64(compilerPath());
  h = fnv1a64(std::string(" -std=c++17 "), h);
  h = fnv1a64(optFlag, h);
  if (kind == ArtifactKind::SharedLib) {
    h = fnv1a64(std::string(kSharedLibFlags), h);
  }
  if (!extraFlags.empty()) {
    h = fnv1a64(std::string("\x1f"), h);  // separator: flag fields
    h = fnv1a64(extraFlags, h);
  }
  h = fnv1a64(std::string("\x1f"), h);  // separator: flags vs source
  return fnv1a64(source, h);
}

uint64_t CompilerDriver::compilerInvocations() { return g_invocations.load(); }

bool CompilerDriver::cacheDisabledGlobally() { return cacheDisabledByEnv(); }

int CompilerDriver::compilePoolSize() {
  if (const char* env = std::getenv("ACCMOS_COMPILE_POOL");
      env != nullptr && env[0] != '\0') {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && v >= 1) return static_cast<int>(v < 16 ? v : 16);
  }
  return 2;
}

CompileOutput CompilerDriver::compile(const std::string& source,
                                      const std::string& name,
                                      const std::string& optFlag,
                                      ArtifactKind kind,
                                      const std::string& extraFlags) {
  CompileParams p;
  p.source = source;
  p.name = name;
  p.optFlag = optFlag;
  p.extraFlags = extraFlags;
  p.kind = kind;
  p.timeoutSec = compileTimeoutSec_;
  p.publish = cacheEnabled_ && !cacheDisabledByEnv();

  // The caller's source copy always lands in this driver's directory (the
  // keepGeneratedCode contract), whichever thread ends up compiling.
  fs::path src = fs::path(dir_) / (name + ".cpp");
  {
    std::ofstream f(src);
    if (!f) throw CompileError("cannot write " + src.string());
    f << source;
  }

  if (!p.publish) {
    // No cache, no sharing: compile privately in this driver's directory.
    CompileOutput out = compileNow(p, dir_);
    out.sourcePath = src.string();
    return out;
  }

  p.key = cacheKey(source, optFlag, kind, extraFlags);
  if (auto hit = tryCacheHit(p.key)) {
    hit->sourcePath = src.string();
    return *hit;
  }

  // Single-flight: join the in-flight compile for this key or register a
  // fresh one — and in either case try to claim execution inline, so the
  // synchronous path never waits on pool scheduling. Exactly one claimant
  // compiles; everyone else blocks on the shared future.
  auto acquired = acquireJob(p);
  std::shared_ptr<CompileJob> job = acquired.first;
  job->interest.fetch_add(1);
  runJobIfUnclaimed(job, dir_);
  CompileOutput out;
  try {
    out = job->future.get();
  } catch (...) {
    job->interest.fetch_sub(1);
    throw;
  }
  job->interest.fetch_sub(1);
  out.sourcePath = src.string();

  // A joined result normally lives in the cache (published) or carries its
  // workspace via keepAlive. The residual corner — another driver compiled
  // it in its own directory and publication failed — would hand us a path
  // whose lifetime we don't control; rebuild locally instead.
  bool local = out.exePath.rfind(dir_, 0) == 0;
  bool cached = out.exePath.rfind(cacheDir(), 0) == 0;
  if (!local && !cached && !out.keepAlive) {
    out = compileNow(p, dir_);
    out.sourcePath = src.string();
  }
  return out;
}

CompileHandle CompilerDriver::compileAsync(const std::string& source,
                                           const std::string& name,
                                           const std::string& optFlag,
                                           ArtifactKind kind,
                                           const std::string& extraFlags) {
  CompileParams p;
  p.source = source;
  p.name = name;
  p.optFlag = optFlag;
  p.extraFlags = extraFlags;
  p.kind = kind;
  p.timeoutSec = compileTimeoutSec_;
  p.publish = cacheEnabled_ && !cacheDisabledByEnv();

  if (p.publish) {
    p.key = cacheKey(source, optFlag, kind, extraFlags);
    if (auto hit = tryCacheHit(p.key)) {
      // Warm model: the handle is ready before the caller's first poll.
      return CompileHandle(makeReadyJob(std::move(*hit)));
    }
    auto acquired = acquireJob(p);
    CompileHandle h(acquired.first);  // register interest before enqueueing
    if (acquired.second) CompilePool::instance().enqueue(acquired.first);
    return h;
  }

  // Cache off: still async, but private — no key to share under.
  auto job = std::make_shared<CompileJob>(std::move(p));
  CompileHandle h(job);
  CompilePool::instance().enqueue(std::move(job));
  return h;
}

std::string CompilerDriver::run(const std::string& exePath,
                                const std::vector<std::string>& args,
                                double timeoutSec) const {
  std::vector<std::string> argv;
  argv.reserve(args.size() + 1);
  argv.push_back(exePath);
  for (const auto& a : args) argv.push_back(a);

  // The generated program normally retires itself cooperatively before
  // its deadline; the watchdog is the backstop for a genuine hang, so it
  // fires a little later than the cooperative deadline would.
  SpawnLimits limits;
  limits.timeoutSec = timeoutSec > 0.0 ? timeoutSec * 1.5 + 1.0 : 0.0;
  limits.cpuSeconds = timeoutSec > 0.0 ? timeoutSec * 2.0 + 5.0 : 0.0;
  limits.fileSizeBytes = 1ull << 30;

  SpawnResult r = spawnAndCapture(argv, limits);
  if (r.launchFailed) {
    throw CompileError(
        std::string("failed to launch generated simulation binary: ") +
        std::strerror(r.launchErrno));
  }
  if (r.timedOut) {
    throw SimTimeoutError("generated simulation binary exceeded the " +
                          std::to_string(limits.timeoutSec) +
                          "s watchdog deadline; its process group was killed");
  }
  if (WIFSIGNALED(r.status)) {
    throw SimCrashError("generated simulation binary " +
                            describeWaitStatus(r.status) + "\n" + r.output,
                        WTERMSIG(r.status));
  }
  std::string failure = describeWaitStatus(r.status);
  if (!failure.empty()) {
    throw SimCrashError("generated simulation binary " + failure + "\n" +
                            r.output,
                        0);
  }
  return r.output;
}

}  // namespace accmos
