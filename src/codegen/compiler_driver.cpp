#include "codegen/compiler_driver.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace accmos {
namespace fs = std::filesystem;

namespace {

std::atomic<int> g_dirCounter{0};

std::string readFile(const fs::path& p) {
  std::ifstream in(p);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string shellQuote(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out.push_back(c);
    }
  }
  out += "'";
  return out;
}

}  // namespace

CompilerDriver::CompilerDriver(std::string workDir) {
  if (workDir.empty()) {
    fs::path base = fs::temp_directory_path() /
                    ("accmos_" + std::to_string(::getpid()) + "_" +
                     std::to_string(g_dirCounter.fetch_add(1)));
    fs::create_directories(base);
    dir_ = base.string();
    owned_ = true;
  } else {
    fs::create_directories(workDir);
    dir_ = workDir;
  }
}

CompilerDriver::~CompilerDriver() {
  if (owned_ && !keep_) {
    std::error_code ec;
    fs::remove_all(dir_, ec);  // best effort
  }
}

std::string CompilerDriver::compilerPath() {
  const char* cxx = std::getenv("CXX");
  if (cxx != nullptr && cxx[0] != '\0') return cxx;
  return "c++";
}

CompileOutput CompilerDriver::compile(const std::string& source,
                                      const std::string& name,
                                      const std::string& optFlag) {
  CompileOutput out;
  fs::path src = fs::path(dir_) / (name + ".cpp");
  fs::path exe = fs::path(dir_) / name;
  fs::path log = fs::path(dir_) / (name + ".log");
  {
    std::ofstream f(src);
    if (!f) throw CompileError("cannot write " + src.string());
    f << source;
  }
  std::ostringstream cmd;
  cmd << compilerPath() << " -std=c++17 " << optFlag << " -o "
      << shellQuote(exe.string()) << " " << shellQuote(src.string()) << " > "
      << shellQuote(log.string()) << " 2>&1";
  auto t0 = std::chrono::steady_clock::now();
  int rc = std::system(cmd.str().c_str());
  auto t1 = std::chrono::steady_clock::now();
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  if (rc != 0) {
    throw CompileError("compilation of generated simulation code failed:\n" +
                       readFile(log));
  }
  out.exePath = exe.string();
  out.sourcePath = src.string();
  return out;
}

std::string CompilerDriver::run(const std::string& exePath,
                                const std::vector<std::string>& args) const {
  std::ostringstream cmd;
  cmd << shellQuote(exePath);
  for (const auto& a : args) cmd << " " << shellQuote(a);
  FILE* pipe = ::popen(cmd.str().c_str(), "r");
  if (pipe == nullptr) {
    throw CompileError("failed to launch generated simulation binary");
  }
  std::string output;
  char buf[4096];
  size_t n;
  while ((n = ::fread(buf, 1, sizeof(buf), pipe)) > 0) {
    output.append(buf, n);
  }
  int rc = ::pclose(pipe);
  if (rc != 0) {
    throw CompileError("generated simulation binary exited with status " +
                       std::to_string(rc) + "\n" + output);
  }
  return output;
}

}  // namespace accmos
