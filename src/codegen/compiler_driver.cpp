#include "codegen/compiler_driver.h"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "codegen/fault.h"
#include "codegen/subprocess.h"
#include "sim/failure.h"

namespace accmos {
namespace fs = std::filesystem;

namespace {

std::atomic<int> g_dirCounter{0};
std::atomic<int> g_tmpCounter{0};

std::string readFile(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string shellQuote(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out.push_back(c);
    }
  }
  out += "'";
  return out;
}

uint64_t fnv1a64(const std::string& data, uint64_t h = 0xcbf29ce484222325ull) {
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string hex16(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

// Extra flags for ArtifactKind::SharedLib; part of the cache identity.
constexpr const char* kSharedLibFlags = "-shared -fPIC";

bool cacheDisabledByEnv() {
  const char* v = std::getenv("ACCMOS_CACHE_DISABLE");
  return v != nullptr && v[0] != '\0' && std::string(v) != "0";
}

// In-process index of cache entries this process has verified or produced.
// Hits are still re-verified against the on-disk content (size + hash), so
// external corruption — or a cleaned temp dir — degrades to a recompile,
// never to executing a damaged binary.
std::mutex g_cacheMutex;
std::unordered_map<uint64_t, std::string> g_cacheIndex;

struct CacheEntry {
  fs::path bin;
  fs::path meta;
};

CacheEntry cachePaths(uint64_t key) {
  fs::path dir(CompilerDriver::cacheDir());
  return {dir / (hex16(key) + ".bin"), dir / (hex16(key) + ".meta")};
}

// A cache entry is valid when the sidecar's recorded size and content hash
// match the binary on disk (catches truncation and bit rot).
bool verifyEntry(const CacheEntry& e) {
  std::error_code ec;
  if (!fs::is_regular_file(e.bin, ec) || !fs::is_regular_file(e.meta, ec)) {
    return false;
  }
  std::ifstream meta(e.meta);
  uint64_t size = 0;
  std::string hash;
  if (!(meta >> size >> hash)) return false;
  if (fs::file_size(e.bin, ec) != size || ec) return false;
  return hex16(fnv1a64(readFile(e.bin))) == hash;
}

// Flushes a file's data to stable storage before it is renamed into
// place: a crash between rename and writeback must not be able to
// publish a hole-filled binary under a valid-looking name.
bool fsyncPath(const fs::path& p) {
  int fd = ::open(p.c_str(), O_RDONLY);
  if (fd < 0) return false;
  bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

// Best-effort sweep of abandoned temp files (a writer killed between
// copy and rename leaves its *.tmp behind forever otherwise). Only
// clearly-stale files go: anything older than an hour can't belong to a
// live writer. Runs once per process — the dir scan is not free.
void sweepStaleTemps(const fs::path& dir) {
  static std::once_flag once;
  std::call_once(once, [&dir] {
    std::error_code ec;
    auto now = fs::file_time_type::clock::now();
    for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
         it.increment(ec)) {
      const fs::path& p = it->path();
      if (p.extension() != ".tmp") continue;
      auto mtime = fs::last_write_time(p, ec);
      if (ec) continue;
      if (now - mtime > std::chrono::hours(1)) fs::remove(p, ec);
    }
  });
}

// Atomically publishes `exePath` under the cache key: copy to a temp name
// in the cache dir, fsync, then rename (binary first, sidecar last —
// readers require a valid sidecar, so a torn write is just a miss). The
// temp tag is pid + a process-wide counter, so concurrent writers in one
// process (campaign workers compiling different shapes) can never race on
// the same temp name. Best effort: any filesystem error leaves the cache
// unused, not the build broken.
bool storeEntry(uint64_t key, const fs::path& exePath) {
  try {
    CacheEntry e = cachePaths(key);
    fs::create_directories(e.bin.parent_path());
    sweepStaleTemps(e.bin.parent_path());
    std::string tag = "." + std::to_string(::getpid()) + "." +
                      std::to_string(g_tmpCounter.fetch_add(1)) + ".tmp";
    fs::path binTmp = e.bin.string() + tag;
    fs::path metaTmp = e.meta.string() + tag;
    fs::copy_file(exePath, binTmp, fs::copy_options::overwrite_existing);
    std::string content = readFile(binTmp);
    {
      std::ofstream meta(metaTmp);
      meta << content.size() << " " << hex16(fnv1a64(content)) << "\n";
      if (!meta) return false;
    }
    if (!fsyncPath(binTmp) || !fsyncPath(metaTmp)) {
      std::error_code ec;
      fs::remove(binTmp, ec);
      fs::remove(metaTmp, ec);
      return false;
    }
    fs::rename(binTmp, e.bin);
    fs::rename(metaTmp, e.meta);
    return true;
  } catch (const fs::filesystem_error&) {
    return false;
  }
}

}  // namespace

CompilerDriver::CompilerDriver(std::string workDir) {
  if (workDir.empty()) {
    fs::path base = fs::temp_directory_path() /
                    ("accmos_" + std::to_string(::getpid()) + "_" +
                     std::to_string(g_dirCounter.fetch_add(1)));
    fs::create_directories(base);
    dir_ = base.string();
    owned_ = true;
  } else {
    fs::create_directories(workDir);
    dir_ = workDir;
  }
}

CompilerDriver::~CompilerDriver() {
  if (owned_ && !keep_) {
    std::error_code ec;
    fs::remove_all(dir_, ec);  // best effort
  }
}

std::string CompilerDriver::compilerPath() {
  const char* cxx = std::getenv("CXX");
  if (cxx != nullptr && cxx[0] != '\0') return cxx;
  return "c++";
}

std::string CompilerDriver::cacheDir() {
  const char* env = std::getenv("ACCMOS_CACHE_DIR");
  if (env != nullptr && env[0] != '\0') return env;
  return (fs::temp_directory_path() / "accmos-cache").string();
}

double CompilerDriver::defaultCompileTimeout() {
  if (const char* env = std::getenv("ACCMOS_COMPILE_TIMEOUT");
      env != nullptr && env[0] != '\0') {
    char* end = nullptr;
    double v = std::strtod(env, &end);
    if (end != env && v >= 0.0) return v;
  }
  return 300.0;
}

uint64_t CompilerDriver::cacheKey(const std::string& source,
                                  const std::string& optFlag,
                                  ArtifactKind kind,
                                  const std::string& extraFlags) {
  uint64_t h = fnv1a64(compilerPath());
  h = fnv1a64(std::string(" -std=c++17 "), h);
  h = fnv1a64(optFlag, h);
  if (kind == ArtifactKind::SharedLib) {
    h = fnv1a64(std::string(kSharedLibFlags), h);
  }
  if (!extraFlags.empty()) {
    h = fnv1a64(std::string("\x1f"), h);  // separator: flag fields
    h = fnv1a64(extraFlags, h);
  }
  h = fnv1a64(std::string("\x1f"), h);  // separator: flags vs source
  return fnv1a64(source, h);
}

CompileOutput CompilerDriver::compile(const std::string& source,
                                      const std::string& name,
                                      const std::string& optFlag,
                                      ArtifactKind kind,
                                      const std::string& extraFlags) {
  const bool shared = kind == ArtifactKind::SharedLib;
  CompileOutput out;
  fs::path src = fs::path(dir_) / (name + ".cpp");
  fs::path exe = fs::path(dir_) / (shared ? name + ".so" : name);
  fs::path log = fs::path(dir_) / (name + ".log");
  {
    std::ofstream f(src);
    if (!f) throw CompileError("cannot write " + src.string());
    f << source;
  }
  out.sourcePath = src.string();

  bool useCache = cacheEnabled_ && !cacheDisabledByEnv();
  uint64_t key = 0;
  if (useCache) {
    key = cacheKey(source, optFlag, kind, extraFlags);
    auto t0 = std::chrono::steady_clock::now();
    CacheEntry e = cachePaths(key);
    if (verifyEntry(e)) {
      {
        std::lock_guard<std::mutex> lock(g_cacheMutex);
        g_cacheIndex[key] = e.bin.string();
      }
      auto t1 = std::chrono::steady_clock::now();
      out.seconds = std::chrono::duration<double>(t1 - t0).count();
      out.exePath = e.bin.string();
      out.cacheHit = true;
      return out;
    }
    {
      // An entry this process produced earlier no longer verifies
      // (truncated, corrupted, or cleaned up): drop it and recompile.
      std::lock_guard<std::mutex> lock(g_cacheMutex);
      g_cacheIndex.erase(key);
    }
  }

  std::ostringstream cmd;
  cmd << compilerPath() << " -std=c++17 " << optFlag;
  if (shared) cmd << " " << kSharedLibFlags;
  if (!extraFlags.empty()) cmd << " " << extraFlags;
  cmd << " -o " << shellQuote(exe.string()) << " " << shellQuote(src.string());

  // The watchdog + rlimits containing ONE compiler invocation. The CPU
  // limit shadows the wall-clock one (a compiler spinning on one core hits
  // both); AS is deliberately left unlimited — modern compilers and
  // sanitizer builds legitimately reserve huge address ranges.
  SpawnLimits limits;
  limits.timeoutSec = compileTimeoutSec_;
  limits.cpuSeconds = compileTimeoutSec_ > 0.0 ? compileTimeoutSec_ * 2.0 : 0.0;
  limits.fileSizeBytes = 4ull << 30;

  const FaultPlan faults = faultPlanFromEnv();
  constexpr int kMaxAttempts = 3;
  auto t0 = std::chrono::steady_clock::now();
  SpawnResult r;
  int attempt = 0;
  for (;;) {
    std::string shellCmd = cmd.str();
    // Deterministic fault injection (ACCMOS_FAULT): stage a compiler
    // death or a slow compile instead of / before the real invocation.
    if (consumeCompileFault(faults)) {
      if (faults.compileFailExit > 0) {
        shellCmd = "echo 'accmos: injected compiler failure' >&2; exit " +
                   std::to_string(faults.compileFailExit);
      } else {
        shellCmd = "kill -" + std::to_string(faults.compileFailSignal) + " $$";
      }
    } else if (faults.slowCompileMs > 0) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "sleep %.3f; ",
                    faults.slowCompileMs / 1000.0);
      shellCmd = buf + shellCmd;
    }
    r = spawnAndCapture({"/bin/sh", "-c", shellCmd}, limits);
    if (r.exitedOk()) break;

    // Transient failures — the OOM killer's SIGKILL or a fork-time EAGAIN
    // — are retried with bounded exponential backoff. A watchdog kill is
    // NOT transient: what timed out once will time out again.
    bool transient = !r.timedOut && ((r.launchFailed &&
                                      r.launchErrno == EAGAIN) ||
                                     statusKilledBy(r.status, SIGKILL));
    if (!transient || attempt + 1 >= kMaxAttempts) {
      std::string failure;
      if (r.timedOut) {
        failure = "timed out after " + std::to_string(compileTimeoutSec_) +
                  "s (watchdog killed the compiler process group)";
      } else if (r.launchFailed) {
        failure = std::string("could not be launched (") +
                  std::strerror(r.launchErrno) + ")";
      } else {
        failure = describeWaitStatus(r.status);
      }
      if (attempt > 0) {
        failure += " after " + std::to_string(attempt) + " retr" +
                   (attempt == 1 ? "y" : "ies");
      }
      throw CompileError("compilation of generated simulation code failed: " +
                         compilerPath() + " " + failure +
                         "\ncompiler output:\n" + r.output);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(25 << attempt));
    ++attempt;
  }
  auto t1 = std::chrono::steady_clock::now();
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  out.retries = attempt;
  {
    // Keep the on-disk log for debugging sessions with keepGeneratedCode.
    std::ofstream f(log);
    f << r.output;
  }
  out.exePath = exe.string();
  if (useCache && storeEntry(key, exe)) {
    CacheEntry e = cachePaths(key);
    out.exePath = e.bin.string();
    std::lock_guard<std::mutex> lock(g_cacheMutex);
    g_cacheIndex[key] = e.bin.string();
  }
  return out;
}

std::string CompilerDriver::run(const std::string& exePath,
                                const std::vector<std::string>& args,
                                double timeoutSec) const {
  std::vector<std::string> argv;
  argv.reserve(args.size() + 1);
  argv.push_back(exePath);
  for (const auto& a : args) argv.push_back(a);

  // The generated program normally retires itself cooperatively before
  // its deadline; the watchdog is the backstop for a genuine hang, so it
  // fires a little later than the cooperative deadline would.
  SpawnLimits limits;
  limits.timeoutSec = timeoutSec > 0.0 ? timeoutSec * 1.5 + 1.0 : 0.0;
  limits.cpuSeconds = timeoutSec > 0.0 ? timeoutSec * 2.0 + 5.0 : 0.0;
  limits.fileSizeBytes = 1ull << 30;

  SpawnResult r = spawnAndCapture(argv, limits);
  if (r.launchFailed) {
    throw CompileError(
        std::string("failed to launch generated simulation binary: ") +
        std::strerror(r.launchErrno));
  }
  if (r.timedOut) {
    throw SimTimeoutError("generated simulation binary exceeded the " +
                          std::to_string(limits.timeoutSec) +
                          "s watchdog deadline; its process group was killed");
  }
  if (WIFSIGNALED(r.status)) {
    throw SimCrashError("generated simulation binary " +
                            describeWaitStatus(r.status) + "\n" + r.output,
                        WTERMSIG(r.status));
  }
  std::string failure = describeWaitStatus(r.status);
  if (!failure.empty()) {
    throw SimCrashError("generated simulation binary " + failure + "\n" +
                            r.output,
                        0);
  }
  return r.output;
}

}  // namespace accmos
