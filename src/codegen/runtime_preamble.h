// The runtime support code embedded at the top of every generated
// simulation program: wrap-exact store helpers, division, lookup tables,
// the SplitMix64 stimulus generator, coverage bitmaps, the diagnostic
// aggregator, and the signal monitor (paper Fig. 3's outputCollect).
//
// Every function here mirrors a helper in src/ir/arith.h or
// src/ir/value.cpp byte-for-byte in behaviour; the cross-engine
// differential tests depend on that.
#pragma once

#include <string_view>

namespace accmos {

std::string_view runtimePreamble();

// The exact text of src/codegen/run_abi.h (embedded at build time), pasted
// into generated sources after the preamble so the shared-library entry
// points are compiled against the same ABI structs the host uses.
std::string_view runAbiText();

}  // namespace accmos
