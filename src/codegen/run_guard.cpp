#include "codegen/run_guard.h"

#include <setjmp.h>
#include <signal.h>

#include <algorithm>
#include <cstdlib>
#include <mutex>
#include <string>
#include <vector>

namespace accmos {
namespace {

thread_local sigjmp_buf g_jmpBuf;
thread_local volatile sig_atomic_t g_guardActive = 0;
thread_local volatile sig_atomic_t g_caughtSignal = 0;

constexpr int kGuardedSignals[] = {SIGSEGV, SIGBUS, SIGFPE, SIGILL};

void guardHandler(int sig) {
  if (g_guardActive) {
    g_caughtSignal = sig;
    g_guardActive = 0;
    siglongjmp(g_jmpBuf, 1);
  }
  // Fault outside any guarded region: restore the default disposition and
  // re-raise so the process dies exactly as it would have without us.
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

void installHandlersOnce() {
  static std::once_flag once;
  std::call_once(once, [] {
    struct sigaction sa;
    sa.sa_handler = guardHandler;
    sigemptyset(&sa.sa_mask);
    // SA_NODEFER: the signal stays unblocked after the longjmp skips the
    // normal handler return. SA_ONSTACK: a stack-overflow SIGSEGV needs
    // the alternate stack to run the handler at all.
    sa.sa_flags = SA_NODEFER | SA_ONSTACK;
    for (int sig : kGuardedSignals) ::sigaction(sig, &sa, nullptr);
  });
}

// Per-thread alternate signal stack, installed lazily on first guarded
// call and torn down when the thread exits.
struct AltStack {
  std::vector<char> mem;
  AltStack() : mem(std::max<size_t>(static_cast<size_t>(SIGSTKSZ), 64 << 10)) {
    stack_t ss{};
    ss.ss_sp = mem.data();
    ss.ss_size = mem.size();
    ::sigaltstack(&ss, nullptr);
  }
  ~AltStack() {
    stack_t ss{};
    ss.ss_flags = SS_DISABLE;
    ::sigaltstack(&ss, nullptr);
  }
};

bool guardDisabled() {
  const char* v = std::getenv("ACCMOS_NO_RUN_GUARD");
  return v != nullptr && *v != '\0' && std::string(v) != "0";
}

}  // namespace

GuardedCallResult runGuarded(const std::function<int()>& fn) {
  GuardedCallResult out;
  if (guardDisabled()) {
    out.rc = fn();
    return out;
  }
  installHandlersOnce();
  thread_local AltStack altStack;
  g_caughtSignal = 0;
  // savemask=1: siglongjmp restores the pre-call signal mask, leaving the
  // thread able to catch the next fault.
  if (sigsetjmp(g_jmpBuf, 1) == 0) {
    g_guardActive = 1;
    out.rc = fn();
    g_guardActive = 0;
  } else {
    out.crashed = true;
    out.signal = static_cast<int>(g_caughtSignal);
  }
  return out;
}

}  // namespace accmos
