// Model coverage: the four Simulink metrics the paper instruments (§3.2.A):
// actor, condition, decision, and modified condition/decision (MC/DC).
//
// A CoveragePlan statically enumerates every coverage point of a flattened
// model and assigns it a bitmap slot. All engines (the interpreter and
// AccMoS-generated code) record into bitmaps indexed by the same slots, so
// percentages are directly comparable across engines — the property Table 3
// of the paper relies on.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "graph/flat_model.h"

namespace accmos {

enum class CovMetric : uint8_t { Actor, Condition, Decision, MCDC };

inline constexpr CovMetric kAllCovMetrics[] = {
    CovMetric::Actor, CovMetric::Condition, CovMetric::Decision,
    CovMetric::MCDC};

std::string_view covMetricName(CovMetric m);
std::optional<CovMetric> covMetricFromName(std::string_view name);

// Per-actor coverage point layout. Slot ranges index into the per-metric
// bitmaps of a CoverageRecorder.
struct ActorCovInfo {
  int actorSlot = -1;      // actor-coverage slot; -1 if not counted
  int decisionBase = -1;   // decision slots [base, base+decisionOutcomes)
  int decisionOutcomes = 0;
  int conditionBase = -1;  // condition i: true slot base+2i, false base+2i+1
  int numConditions = 0;
  int mcdcBase = -1;       // condition i: shown-true base+2i, shown-false +1
  int numMcdcConditions = 0;
};

// Traits the actor template library supplies per flat actor.
struct CovTraits {
  bool countsForActorCoverage = true;
  int decisionOutcomes = 0;   // 0 when not a decision point
  int numConditions = 0;      // boolean conditions feeding the actor
  bool mcdc = false;          // multi-input combination condition
};

class CoveragePlan {
 public:
  CoveragePlan() = default;

  static CoveragePlan build(
      const FlatModel& fm,
      const std::function<CovTraits(const FlatActor&)>& traits);

  const ActorCovInfo& info(int actorId) const {
    return perActor_[static_cast<size_t>(actorId)];
  }
  int totalSlots(CovMetric m) const {
    return totals_[static_cast<size_t>(m)];
  }
  // Denominator for the metric's percentage (conditions and MC/DC count
  // condition *pairs*, decisions count outcomes, actor counts actors).
  int totalPoints(CovMetric m) const;

  size_t numActors() const { return perActor_.size(); }

 private:
  std::vector<ActorCovInfo> perActor_;
  int totals_[4] = {0, 0, 0, 0};
};

// Runtime bitmaps for one simulation run.
class CoverageRecorder {
 public:
  CoverageRecorder() = default;
  explicit CoverageRecorder(const CoveragePlan& plan);

  void markActor(const ActorCovInfo& info) {
    if (info.actorSlot >= 0) bits(CovMetric::Actor)[info.actorSlot] = 1;
  }
  // All marks are no-ops when the plan assigned the actor no points of the
  // metric (e.g. a single-input NOT carries conditions but no MC/DC).
  void markDecision(const ActorCovInfo& info, int outcome) {
    if (info.decisionBase < 0) return;
    bits(CovMetric::Decision)[info.decisionBase + outcome] = 1;
  }
  void markCondition(const ActorCovInfo& info, int condition, bool value) {
    if (info.conditionBase < 0) return;
    bits(CovMetric::Condition)[info.conditionBase + 2 * condition +
                               (value ? 0 : 1)] = 1;
  }
  // Marks that condition `condition` demonstrated independent effect while
  // evaluating to `value` (masking MC/DC).
  void markMcdc(const ActorCovInfo& info, int condition, bool value) {
    if (info.mcdcBase < 0) return;
    bits(CovMetric::MCDC)[info.mcdcBase + 2 * condition + (value ? 0 : 1)] = 1;
  }

  std::vector<uint8_t>& bits(CovMetric m) {
    return bitmaps_[static_cast<size_t>(m)];
  }
  const std::vector<uint8_t>& bits(CovMetric m) const {
    return bitmaps_[static_cast<size_t>(m)];
  }

  // ORs another recorder (e.g. accumulating across runs).
  void merge(const CoverageRecorder& other);

  // Covered points for the metric's percentage numerator. For MC/DC a
  // condition counts only when independence is shown both ways; for
  // Condition a condition outcome counts per direction.
  int coveredPoints(const CoveragePlan& plan, CovMetric m) const;

 private:
  std::vector<uint8_t> bitmaps_[4];
};

// Percentages for presentation (Table 3 rows).
struct CoverageReport {
  struct Entry {
    int covered = 0;
    int total = 0;
    double percent() const {
      return total == 0 ? 100.0 : 100.0 * covered / total;
    }
  };
  Entry entries[4];

  const Entry& of(CovMetric m) const {
    return entries[static_cast<size_t>(m)];
  }
  std::string toString() const;
};

CoverageReport makeReport(const CoveragePlan& plan,
                          const CoverageRecorder& rec);

// One unset bitmap slot resolved to its actor and outcome — what a test
// campaign has not reached yet. The coverage-guided generator (src/gen)
// treats the listing as its target set; the CLI prints it under
// --show-uncovered.
struct UncoveredPoint {
  int actorId = -1;
  std::string actorPath;
  CovMetric metric = CovMetric::Actor;
  int slot = -1;        // index into the metric's bitmap
  std::string outcome;  // human-readable, e.g. "decision outcome 2/3"
};

// Enumerates every unset slot of `rec` under `plan` in actor-id order. A
// default-constructed (empty) recorder yields every point of the plan.
// MC/DC entries are per independence direction — two slots per condition —
// so their count is 2*points-based-deficit at most, not the report deficit.
std::vector<UncoveredPoint> listUncovered(const FlatModel& fm,
                                          const CoveragePlan& plan,
                                          const CoverageRecorder& rec);

}  // namespace accmos
