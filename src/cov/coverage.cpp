#include "cov/coverage.h"

#include <sstream>

namespace accmos {

std::string_view covMetricName(CovMetric m) {
  switch (m) {
    case CovMetric::Actor: return "actor";
    case CovMetric::Condition: return "condition";
    case CovMetric::Decision: return "decision";
    case CovMetric::MCDC: return "mcdc";
  }
  return "?";
}

std::optional<CovMetric> covMetricFromName(std::string_view name) {
  for (CovMetric m : kAllCovMetrics) {
    if (name == covMetricName(m)) return m;
  }
  return std::nullopt;
}

CoveragePlan CoveragePlan::build(
    const FlatModel& fm,
    const std::function<CovTraits(const FlatActor&)>& traits) {
  CoveragePlan plan;
  plan.perActor_.resize(fm.actors.size());
  int actorSlots = 0;
  int decisionSlots = 0;
  int conditionSlots = 0;
  int mcdcSlots = 0;
  for (const auto& fa : fm.actors) {
    CovTraits t = traits(fa);
    ActorCovInfo& info = plan.perActor_[static_cast<size_t>(fa.id)];
    if (t.countsForActorCoverage) info.actorSlot = actorSlots++;
    if (t.decisionOutcomes > 0) {
      info.decisionBase = decisionSlots;
      info.decisionOutcomes = t.decisionOutcomes;
      decisionSlots += t.decisionOutcomes;
    }
    if (t.numConditions > 0) {
      info.conditionBase = conditionSlots;
      info.numConditions = t.numConditions;
      conditionSlots += 2 * t.numConditions;
    }
    if (t.mcdc && t.numConditions > 0) {
      info.mcdcBase = mcdcSlots;
      info.numMcdcConditions = t.numConditions;
      mcdcSlots += 2 * t.numConditions;
    }
  }
  plan.totals_[static_cast<size_t>(CovMetric::Actor)] = actorSlots;
  plan.totals_[static_cast<size_t>(CovMetric::Decision)] = decisionSlots;
  plan.totals_[static_cast<size_t>(CovMetric::Condition)] = conditionSlots;
  plan.totals_[static_cast<size_t>(CovMetric::MCDC)] = mcdcSlots;
  return plan;
}

int CoveragePlan::totalPoints(CovMetric m) const {
  switch (m) {
    case CovMetric::Actor:
    case CovMetric::Decision:
    case CovMetric::Condition:
      return totalSlots(m);
    case CovMetric::MCDC:
      // A condition is one MC/DC point; it has two slots.
      return totalSlots(m) / 2;
  }
  return 0;
}

CoverageRecorder::CoverageRecorder(const CoveragePlan& plan) {
  for (CovMetric m : kAllCovMetrics) {
    bitmaps_[static_cast<size_t>(m)].assign(
        static_cast<size_t>(plan.totalSlots(m)), 0);
  }
}

void CoverageRecorder::merge(const CoverageRecorder& other) {
  for (CovMetric m : kAllCovMetrics) {
    auto& mine = bits(m);
    const auto& theirs = other.bits(m);
    for (size_t k = 0; k < mine.size() && k < theirs.size(); ++k) {
      mine[k] = mine[k] != 0 || theirs[k] != 0 ? 1 : 0;
    }
  }
}

int CoverageRecorder::coveredPoints(const CoveragePlan& plan,
                                    CovMetric m) const {
  const auto& b = bits(m);
  if (m != CovMetric::MCDC) {
    int covered = 0;
    for (uint8_t bit : b) covered += bit != 0 ? 1 : 0;
    return covered;
  }
  // MC/DC: both independence directions required per condition.
  int covered = 0;
  for (size_t a = 0; a < plan.numActors(); ++a) {
    const ActorCovInfo& info = plan.info(static_cast<int>(a));
    for (int c = 0; c < info.numMcdcConditions; ++c) {
      size_t base = static_cast<size_t>(info.mcdcBase + 2 * c);
      if (b[base] != 0 && b[base + 1] != 0) ++covered;
    }
  }
  return covered;
}

CoverageReport makeReport(const CoveragePlan& plan,
                          const CoverageRecorder& rec) {
  CoverageReport report;
  for (CovMetric m : kAllCovMetrics) {
    auto& e = report.entries[static_cast<size_t>(m)];
    e.total = plan.totalPoints(m);
    e.covered = rec.coveredPoints(plan, m);
  }
  return report;
}

std::vector<UncoveredPoint> listUncovered(const FlatModel& fm,
                                          const CoveragePlan& plan,
                                          const CoverageRecorder& rec) {
  // An empty recorder (no run yet) reads as all-unset.
  auto unset = [&rec](CovMetric m, int slot) {
    const auto& b = rec.bits(m);
    return static_cast<size_t>(slot) >= b.size() || b[static_cast<size_t>(slot)] == 0;
  };
  std::vector<UncoveredPoint> out;
  auto push = [&out, &fm](int actorId, CovMetric m, int slot,
                          std::string outcome) {
    UncoveredPoint p;
    p.actorId = actorId;
    p.actorPath = fm.actor(actorId).path;
    p.metric = m;
    p.slot = slot;
    p.outcome = std::move(outcome);
    out.push_back(std::move(p));
  };
  for (size_t a = 0; a < plan.numActors() && a < fm.actors.size(); ++a) {
    int id = static_cast<int>(a);
    const ActorCovInfo& info = plan.info(id);
    if (info.actorSlot >= 0 && unset(CovMetric::Actor, info.actorSlot)) {
      push(id, CovMetric::Actor, info.actorSlot, "never executed");
    }
    for (int d = 0; d < info.decisionOutcomes; ++d) {
      if (unset(CovMetric::Decision, info.decisionBase + d)) {
        push(id, CovMetric::Decision, info.decisionBase + d,
             "decision outcome " + std::to_string(d + 1) + "/" +
                 std::to_string(info.decisionOutcomes));
      }
    }
    for (int c = 0; c < info.numConditions; ++c) {
      for (int dir = 0; dir < 2; ++dir) {
        int slot = info.conditionBase + 2 * c + dir;
        if (unset(CovMetric::Condition, slot)) {
          push(id, CovMetric::Condition, slot,
               "condition " + std::to_string(c + 1) +
                   (dir == 0 ? " never true" : " never false"));
        }
      }
    }
    for (int c = 0; c < info.numMcdcConditions; ++c) {
      for (int dir = 0; dir < 2; ++dir) {
        int slot = info.mcdcBase + 2 * c + dir;
        if (unset(CovMetric::MCDC, slot)) {
          push(id, CovMetric::MCDC, slot,
               "condition " + std::to_string(c + 1) +
                   " independence not shown while " +
                   (dir == 0 ? "true" : "false"));
        }
      }
    }
  }
  return out;
}

std::string CoverageReport::toString() const {
  std::ostringstream os;
  os.precision(1);
  os << std::fixed;
  for (CovMetric m : kAllCovMetrics) {
    const Entry& e = of(m);
    os << covMetricName(m) << ": " << e.covered << "/" << e.total << " ("
       << e.percent() << "%)  ";
  }
  return os.str();
}

}  // namespace accmos
