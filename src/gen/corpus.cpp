#include "gen/corpus.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "ir/arith.h"

namespace accmos::gen {
namespace {

// Shortest form that parses back to the same double (see testcase.cpp).
std::string fmtExact(double v) {
  char buf[40];
  for (int prec = 9; prec <= 17; prec += 4) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) return buf;
  }
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void writePort(std::ostringstream& os, const std::string& head,
               const PortStimulus& p) {
  os << head;
  if (p.sequence.empty()) {
    os << " range " << fmtExact(p.min) << " " << fmtExact(p.max);
  } else {
    os << " seq";
    for (double v : p.sequence) os << " " << fmtExact(v);
  }
  os << "\n";
}

PortStimulus parsePort(std::istringstream& ls, const std::string& context) {
  PortStimulus p;
  std::string kind;
  ls >> kind;
  if (kind == "range") {
    if (!(ls >> p.min >> p.max)) {
      throw ModelError(context + ": malformed range");
    }
  } else if (kind == "seq") {
    double v;
    while (ls >> v) p.sequence.push_back(v);
    if (p.sequence.empty()) {
      throw ModelError(context + ": empty sequence");
    }
  } else {
    throw ModelError(context + ": unknown stimulus kind '" + kind + "'");
  }
  return p;
}

}  // namespace

std::string specToText(const TestCaseSpec& spec) {
  std::ostringstream os;
  os << "# accmos test-case spec\n";
  os << "seed " << spec.seed << "\n";
  writePort(os, "default", spec.defaultPort);
  for (size_t k = 0; k < spec.ports.size(); ++k) {
    writePort(os, "port " + std::to_string(k), spec.ports[k]);
  }
  return os.str();
}

TestCaseSpec specFromText(const std::string& text) {
  TestCaseSpec spec;
  std::istringstream in(text);
  std::string line;
  size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    std::string context = "test-case spec line " + std::to_string(lineNo);
    if (key == "seed") {
      if (!(ls >> spec.seed)) throw ModelError(context + ": malformed seed");
    } else if (key == "default") {
      spec.defaultPort = parsePort(ls, context);
    } else if (key == "port") {
      size_t idx = 0;
      if (!(ls >> idx)) throw ModelError(context + ": malformed port index");
      while (spec.ports.size() <= idx) spec.ports.push_back(spec.defaultPort);
      spec.ports[idx] = parsePort(ls, context);
    } else {
      throw ModelError(context + ": unknown key '" + key + "'");
    }
  }
  spec.validate();
  return spec;
}

uint64_t corpusFingerprint(const Corpus& corpus) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  auto mix = [&h](const std::string& s) {
    for (char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ULL;
    }
  };
  for (const auto& e : corpus.entries()) {
    mix(specToText(e.spec));
    mix(e.mutation);
    mix(std::to_string(e.parent == kNoParent ? ~uint64_t{0} : e.parent));
    mix(std::to_string(e.iteration));
  }
  return h;
}

TestCaseSpec materializeSpec(const TestCaseSpec& spec, size_t numPorts,
                             uint64_t steps) {
  if (steps == 0) {
    throw ModelError("cannot materialize a test case over zero steps");
  }
  spec.validate();
  TestCaseSpec out;
  out.seed = spec.seed;
  out.ports.resize(std::max<size_t>(numPorts, 1));
  for (size_t k = 0; k < out.ports.size(); ++k) {
    const PortStimulus& src = spec.port(static_cast<int>(k));
    PortStimulus& dst = out.ports[k];
    if (!src.sequence.empty()) {
      dst.sequence.reserve(steps);
      for (uint64_t s = 0; s < steps; ++s) {
        dst.sequence.push_back(src.sequence[s % src.sequence.size()]);
      }
    } else {
      SplitMix64 rng(portSeed(spec.seed, static_cast<int>(k)));
      dst.sequence.reserve(steps);
      for (uint64_t s = 0; s < steps; ++s) {
        dst.sequence.push_back(rng.nextUniform(src.min, src.max));
      }
    }
  }
  return out;
}

void writeCorpusDir(const Corpus& corpus, const std::string& dir,
                    size_t numPorts, uint64_t steps, bool scalarPorts) {
  std::filesystem::create_directories(dir);
  std::ofstream manifest(dir + "/MANIFEST.tsv");
  if (!manifest) {
    throw ModelError("cannot write corpus manifest under '" + dir + "'");
  }
  manifest << "id\tparent\tmutation\titeration\tnew_bits\tnew_diag_kinds\t"
              "seed\tfiles\n";
  for (const auto& e : corpus.entries()) {
    char name[32];
    std::snprintf(name, sizeof(name), "entry_%04zu", e.id);
    std::string base = dir + "/" + name;
    {
      std::ofstream f(base + ".spec");
      if (!f) throw ModelError("cannot write '" + base + ".spec'");
      f << specToText(e.spec);
    }
    std::string files = std::string(name) + ".spec";
    if (scalarPorts) {
      materializeSpec(e.spec, numPorts, steps).toCsv(base + ".csv");
      files += std::string(",") + name + ".csv";
    }
    manifest << e.id << "\t"
             << (e.parent == kNoParent ? std::string("-")
                                       : std::to_string(e.parent))
             << "\t" << e.mutation << "\t" << e.iteration << "\t" << e.newBits
             << "\t" << e.newDiagKinds << "\t" << e.spec.seed << "\t" << files
             << "\n";
  }
}

}  // namespace accmos::gen
