// Deterministic mutation engine over TestCaseSpecs.
//
// Every mutator is a pure function of (parent spec, corpus, rng state): the
// same corpus, parent choice and SplitMix64 state produce the same mutant,
// which is what makes a whole generation run reproducible from one
// generator seed. Mutators always emit a spec that passes
// TestCaseSpec::validate() — ranges stay finite and ordered, sequences stay
// finite and non-empty.
#pragma once

#include <string>
#include <vector>

#include "gen/corpus.h"
#include "ir/arith.h"

namespace accmos::gen {

// Model-shape facts the mutators respect.
struct MutationContext {
  size_t numPorts = 1;       // root inports of the model under test
  uint64_t stepsPerRun = 0;  // simulation horizon; bounds sequence growth
};

struct Mutant {
  TestCaseSpec spec;
  std::string mutation;   // mutator name, e.g. "range-widen"
  size_t parent = kNoParent;
};

// Every mutator name, for documentation and tests.
const std::vector<std::string>& mutatorNames();

// Applies one rng-chosen mutator to `corpus.entry(parent)`. Range mutators
// apply to ports still driven by a seeded range, sequence mutators
// (havoc/insert/delete/splice) to ports carrying explicit sequences;
// seed perturbation and per-port crossover apply everywhere.
Mutant mutate(const Corpus& corpus, size_t parent, const MutationContext& ctx,
              SplitMix64& rng);

}  // namespace accmos::gen
