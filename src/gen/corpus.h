// Corpus of a coverage-guided generation run (the feedback side the paper's
// coverage collection motivates: once per-metric bitmaps exist and AccMoS
// makes per-case runs cheap, coverage can steer the *search* for test
// cases, not just validate them).
//
// Entries are append-only with dense ids and full provenance: which corpus
// entry a case was mutated from, by which mutator, in which iteration, and
// what it contributed (newly set bitmap slots, new diagnostic kinds).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cov/coverage.h"
#include "sim/testcase.h"

namespace accmos::gen {

inline constexpr size_t kNoParent = static_cast<size_t>(-1);

struct CorpusEntry {
  size_t id = 0;
  size_t parent = kNoParent;  // kNoParent for bootstrap entries
  std::string mutation;       // mutator name; "bootstrap" for round 0
  size_t iteration = 0;       // iteration the entry was accepted in
  TestCaseSpec spec;
  CoverageReport coverage;    // this entry's own single-run coverage
  size_t newBits = 0;         // bitmap slots this entry set first
  size_t newDiagKinds = 0;    // new distinct (actor, diag kind) pairs
};

class Corpus {
 public:
  size_t add(CorpusEntry e) {
    e.id = entries_.size();
    entries_.push_back(std::move(e));
    return entries_.back().id;
  }
  const CorpusEntry& entry(size_t k) const { return entries_[k]; }
  const std::vector<CorpusEntry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

 private:
  std::vector<CorpusEntry> entries_;
};

// Exact text round-trip for corpus artifacts: seed, per-port ranges and
// sequences, doubles written so they parse back bit-identically.
std::string specToText(const TestCaseSpec& spec);
TestCaseSpec specFromText(const std::string& text);  // throws ModelError

// FNV-1a over every entry's text form plus its provenance — the
// reproducibility fingerprint tests and benches compare across worker
// counts and reruns.
uint64_t corpusFingerprint(const Corpus& corpus);

// Explicit-sequence equivalent of `spec` over `steps` steps for a model
// with `numPorts` *scalar* root inports: draws the same per-port SplitMix64
// streams the engines would, so replaying the result is bit-identical to
// replaying the seeded spec for up to `steps` steps. Throws ModelError for
// steps == 0. (Vector inports draw one value per element and cannot be
// represented as one CSV column — callers gate on scalar-ports models.)
TestCaseSpec materializeSpec(const TestCaseSpec& spec, size_t numPorts,
                             uint64_t steps);

// Writes the corpus as replayable artifacts under `dir` (created if
// needed): entry_NNNN.spec (native text, always exact) and — when
// `scalarPorts` — entry_NNNN.csv materialized over `steps` steps for
// `accmos run --tests=...`, plus a MANIFEST.tsv with provenance.
void writeCorpusDir(const Corpus& corpus, const std::string& dir,
                    size_t numPorts, uint64_t steps, bool scalarPorts);

}  // namespace accmos::gen
