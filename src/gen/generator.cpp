#include "gen/generator.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <utility>

#include "actors/spec.h"
#include "gen/mutate.h"
#include "opt/pipeline.h"

namespace accmos::gen {
namespace {

// Bitmap slots of `cand` set for the first time relative to `global`, over
// the enabled metrics only. This is the greedy acceptance signal: > 0 means
// the candidate reached somewhere no accepted case has.
size_t countNewBits(const CoverageRecorder& cand,
                    const CoverageRecorder& global,
                    const std::vector<CovMetric>& metrics) {
  size_t n = 0;
  for (CovMetric m : metrics) {
    const auto& c = cand.bits(m);
    const auto& g = global.bits(m);
    for (size_t k = 0; k < c.size(); ++k) {
      if (c[k] && (k >= g.size() || !g[k])) ++n;
    }
  }
  return n;
}

bool allCovered(const CoveragePlan& plan, const CoverageRecorder& global,
                const std::vector<CovMetric>& metrics) {
  for (CovMetric m : metrics) {
    const auto& g = global.bits(m);
    if (static_cast<int>(g.size()) < plan.totalSlots(m)) return false;
    for (int k = 0; k < plan.totalSlots(m); ++k) {
      if (!g[static_cast<size_t>(k)]) return false;
    }
  }
  return true;
}

}  // namespace

GenResult runGeneration(const FlatModel& fm, const SimOptions& opt,
                        const GenOptions& gopt) {
  if (gopt.budget == 0) {
    throw ModelError("test-case generation needs a non-zero budget");
  }
  if (gopt.batch == 0) {
    throw ModelError("test-case generation needs a non-zero batch size");
  }
  gopt.base.validate();

  auto wall0 = std::chrono::steady_clock::now();
  GenResult out;

  // Optimize once up front, like a campaign: every candidate evaluates the
  // same model, so the pipeline cost amortizes across the whole search.
  FlatModel optimized;
  const FlatModel* model = &fm;
  if (opt.optimize) {
    optimized = optimizeModel(fm, opt, &out.optStats);
    model = &optimized;
  }

  CoveragePlan plan = CoveragePlan::build(
      *model, [](const FlatActor& fa) { return covTraitsFor(fa); });
  out.mergedBitmaps = CoverageRecorder(plan);

  std::vector<CovMetric> metrics;
  if (gopt.targetMetric) {
    metrics.push_back(*gopt.targetMetric);
  } else {
    metrics.assign(std::begin(kAllCovMetrics), std::end(kAllCovMetrics));
  }

  // The evaluator (and its per-shape compiled simulators / per-worker
  // interpreters) persists across iterations, so only genuinely new
  // stimulus shapes pay generation + compilation.
  SpecEvaluator evaluator(*model, opt);

  MutationContext ctx;
  ctx.numPorts = std::max<size_t>(model->rootInports.size(), 1);
  ctx.stepsPerRun = opt.maxSteps;

  SplitMix64 rng(gopt.genSeed);
  std::set<std::pair<int, DiagKind>> diagSeen;

  size_t iteration = 0;
  bool saturated = allCovered(plan, out.mergedBitmaps, metrics);
  while (!saturated && out.evaluations < gopt.budget) {
    size_t room = gopt.budget - out.evaluations;
    std::vector<Mutant> cands;
    if (iteration == 0 || out.corpus.empty()) {
      // Bootstrap (or re-bootstrap if nothing has been accepted yet): the
      // base spec plus seed-rerolled variants of it.
      size_t n = std::min(std::max<size_t>(gopt.bootstrap, 1), room);
      for (size_t k = 0; k < n; ++k) {
        Mutant m;
        m.spec = gopt.base;
        m.mutation = "bootstrap";
        if (k > 0 || iteration > 0) m.spec.seed = rng.next();
        cands.push_back(std::move(m));
      }
    } else {
      size_t n = std::min(gopt.batch, room);
      for (size_t k = 0; k < n; ++k) {
        // Parent selection biased toward recent entries: newer corpus
        // members tend to sit closer to the coverage frontier.
        size_t a = rng.next() % out.corpus.size();
        size_t b = rng.next() % out.corpus.size();
        cands.push_back(mutate(out.corpus, std::max(a, b), ctx, rng));
      }
    }

    std::vector<TestCaseSpec> specs;
    specs.reserve(cands.size());
    for (const auto& c : cands) specs.push_back(c.spec);
    std::vector<SimulationResult> results = evaluator.evaluate(specs);
    out.evaluations += specs.size();

    // Acceptance is judged strictly in candidate order against the global
    // state, and only ACCEPTED candidates update it — both are load-bearing
    // for the determinism contract (worker count must not matter) and for
    // the invariant that replaying the corpus reproduces mergedBitmaps.
    size_t accepted = 0;
    size_t failed = 0;
    for (size_t k = 0; k < cands.size(); ++k) {
      const SimulationResult& res = results[k];
      if (res.failed) {
        // Contained failure: record and reject. The candidate's bitmaps
        // are empty, so this branch only makes the rejection explicit
        // (and bookkept) rather than accidental.
        RunFailure f = res.failure;
        f.seed = specs[k].seed;
        f.index = out.evaluations - specs.size() + k;
        out.failures.push_back(std::move(f));
        ++failed;
        continue;
      }
      size_t newBits = countNewBits(res.bitmaps, out.mergedBitmaps, metrics);
      std::vector<std::pair<int, DiagKind>> newPairs;
      if (gopt.keepDiagFinders) {
        for (const auto& d : res.diagnostics) {
          std::pair<int, DiagKind> key{d.actorId, d.kind};
          if (!diagSeen.count(key) &&
              std::find(newPairs.begin(), newPairs.end(), key) ==
                  newPairs.end()) {
            newPairs.push_back(key);
          }
        }
      }
      if (newBits == 0 && newPairs.empty()) continue;

      out.mergedBitmaps.merge(res.bitmaps);
      diagSeen.insert(newPairs.begin(), newPairs.end());
      CorpusEntry e;
      e.parent = cands[k].parent;
      e.mutation = cands[k].mutation;
      e.iteration = iteration;
      e.spec = cands[k].spec;
      e.coverage = res.coverage;
      e.newBits = newBits;
      e.newDiagKinds = newPairs.size();
      out.corpus.add(std::move(e));
      ++accepted;
    }

    GenIteration it;
    it.iteration = iteration;
    it.evaluated = specs.size();
    it.accepted = accepted;
    it.failed = failed;
    it.corpusSize = out.corpus.size();
    it.diagKinds = diagSeen.size();
    it.cumulative = makeReport(plan, out.mergedBitmaps);
    out.trajectory.push_back(std::move(it));

    saturated = allCovered(plan, out.mergedBitmaps, metrics);
    ++iteration;
  }

  out.saturated = saturated;
  out.finalCoverage = makeReport(plan, out.mergedBitmaps);
  out.uncovered = listUncovered(*model, plan, out.mergedBitmaps);
  out.diagKinds = diagSeen.size();
  out.enginesBuilt = evaluator.enginesBuilt();
  out.compileWaitSeconds = evaluator.compileWaitSeconds();

  if (!gopt.corpusDir.empty()) {
    bool scalarPorts = true;
    for (int id : model->rootInports) {
      const FlatActor& fa = model->actor(id);
      if (fa.outputs.empty() ||
          model->signal(fa.outputs[0]).width != 1) {
        scalarPorts = false;
        break;
      }
    }
    writeCorpusDir(out.corpus, gopt.corpusDir, model->rootInports.size(),
                   opt.maxSteps, scalarPorts);
  }

  auto wall1 = std::chrono::steady_clock::now();
  out.wallSeconds = std::chrono::duration<double>(wall1 - wall0).count();
  return out;
}

}  // namespace accmos::gen
