// Coverage-guided test-case generation: the greedy feedback loop that
// closes the circle from coverage bitmaps back to stimulus search.
//
// The paper motivates coverage collection as the way to "validate that
// test cases are comprehensive enough to cover different parts of models"
// (§3.2.A); with AccMoS making per-case runs nearly free (one compiled
// binary re-executed per candidate) the bitmaps can *drive* the search:
// mutate corpus specs, batch-evaluate candidates through the campaign
// worker pool, keep any candidate that sets a previously-unset bitmap slot
// in an enabled metric — or, optionally, triggers a new distinct
// (actor, diagnostic kind) event.
//
// Determinism contract: a fixed generator seed (plus fixed budget, batch
// size, base spec and model) reproduces the whole search bit-exactly —
// final corpus, per-iteration trajectory and merged bitmaps — for ANY
// worker count. Candidates are derived from one SplitMix64 stream on the
// driving thread, every engine is deterministic per spec, and acceptance
// is judged strictly in candidate order.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "gen/corpus.h"
#include "opt/stats.h"
#include "sim/campaign.h"

namespace accmos::gen {

struct GenOptions {
  uint64_t genSeed = 1;
  size_t budget = 128;    // total candidate evaluations, bootstrap included
  size_t batch = 8;       // candidates per iteration (one evaluator batch)
  size_t bootstrap = 4;   // round-0 seed variants of `base`
  // When set, acceptance judges only this metric's bitmap (the CLI's
  // --target-metric); otherwise any enabled metric counts.
  std::optional<CovMetric> targetMetric;
  // Treat a new distinct (actor, diagnostic kind) pair as interesting even
  // without new coverage — the generator then also hunts error states.
  bool keepDiagFinders = true;
  TestCaseSpec base;      // starting stimulus (e.g. the model's embedded one)
  std::string corpusDir;  // when set, export the final corpus here
};

struct GenIteration {
  size_t iteration = 0;   // 0 = bootstrap round
  size_t evaluated = 0;   // candidates evaluated in this iteration
  size_t accepted = 0;
  size_t failed = 0;      // candidates whose run was contained as a failure
  size_t corpusSize = 0;  // after this iteration
  size_t diagKinds = 0;   // distinct (actor, kind) pairs after this iteration
  CoverageReport cumulative;
};

struct GenResult {
  Corpus corpus;
  std::vector<GenIteration> trajectory;
  CoverageReport finalCoverage;
  // Union over accepted corpus entries — replaying the corpus reproduces
  // exactly these bitmaps (rejected candidates by definition contributed
  // no new target-metric bits).
  CoverageRecorder mergedBitmaps;
  std::vector<UncoveredPoint> uncovered;  // what remains, as a target list
  size_t evaluations = 0;
  size_t diagKinds = 0;
  bool saturated = false;  // every enabled point covered before the budget
  double wallSeconds = 0.0;
  OptStats optStats;
  size_t enginesBuilt = 0;  // AccMoS: distinct stimulus shapes compiled
  // Wall seconds the search actually blocked on the compiler (see
  // CampaignResult::compileWaitSeconds — near zero under Tier::Auto,
  // where candidate evaluation overlaps the background compiles).
  double compileWaitSeconds = 0.0;
  // Contained per-candidate failures (timeouts, crashes, compile
  // failures), in evaluation order; RunFailure::index is the global
  // candidate index. A faulting candidate is simply never accepted — the
  // search carries on, and the determinism contract still holds as long
  // as the faults themselves are deterministic (which injected ones are).
  std::vector<RunFailure> failures;
};

// Runs the feedback loop on `fm` for gopt.budget candidate evaluations of
// opt.maxSteps steps each. Requires an instrumented engine (SSE or AccMoS)
// with coverage enabled; the optimization pipeline runs once up front when
// opt.optimize is set. opt.campaign.workers fans each candidate batch over
// the worker pool.
GenResult runGeneration(const FlatModel& fm, const SimOptions& opt,
                        const GenOptions& gopt);

}  // namespace accmos::gen
