#include "gen/mutate.h"

#include <algorithm>
#include <cmath>

namespace accmos::gen {
namespace {

// Boundary magnets: type edges, comparison-threshold neighborhoods and
// overflow triggers — the values guarded/decision-heavy regions branch on.
constexpr double kInteresting[] = {
    0.0,    1.0,     -1.0,     0.5,     2.0,     -2.0,    10.0,
    127.0,  128.0,   -128.0,   255.0,   256.0,   1000.0,  32767.0,
    32768.0, -32768.0, 65535.0, 65536.0, 1.0e6,  -1.0e6,  1.0e9,
};
constexpr size_t kNumInteresting = sizeof(kInteresting) / sizeof(double);
constexpr double kRangeLimit = 1.0e12;   // keep mutated bounds finite
constexpr size_t kMaxSequence = 4096;    // cap sequence growth

double pickInteresting(SplitMix64& rng) {
  return kInteresting[rng.next() % kNumInteresting];
}

double clampFinite(double v) {
  if (std::isnan(v)) return 0.0;
  return std::min(kRangeLimit, std::max(-kRangeLimit, v));
}

// Re-establishes the validate() invariants after arithmetic on a port.
void sanitize(PortStimulus& p) {
  if (p.sequence.empty()) {
    p.min = clampFinite(p.min);
    p.max = clampFinite(p.max);
    if (p.min > p.max) std::swap(p.min, p.max);
  } else {
    for (double& v : p.sequence) v = clampFinite(v);
  }
}

PortStimulus& portAt(TestCaseSpec& spec, size_t p) {
  while (spec.ports.size() <= p) spec.ports.push_back(spec.defaultPort);
  return spec.ports[p];
}

double width(const PortStimulus& p) {
  double w = p.max - p.min;
  return (std::isfinite(w) && w > 0.0) ? w : 1.0;
}

// ---- mutators --------------------------------------------------------------

void seedReroll(TestCaseSpec& spec, SplitMix64& rng) {
  spec.seed = rng.next();
}

void seedStep(TestCaseSpec& spec, SplitMix64& rng) {
  spec.seed += 1 + (rng.next() & 0xF);
}

void rangeWiden(PortStimulus& p, SplitMix64& rng) {
  double f = 1.5 + rng.nextUnit() * 2.5;
  double c = (p.min + p.max) / 2.0;
  double half = width(p) / 2.0 * f;
  p.min = c - half;
  p.max = c + half;
}

void rangeNarrow(PortStimulus& p, SplitMix64& rng) {
  double w = width(p);
  double center = p.min + rng.nextUnit() * w;
  double half = w * (0.05 + rng.nextUnit() * 0.2);
  p.min = center - half;
  p.max = center + half;
}

void rangeShift(PortStimulus& p, SplitMix64& rng) {
  double d = (rng.nextUnit() * 2.0 - 1.0) * width(p);
  p.min += d;
  p.max += d;
}

// Straddles an interesting value so threshold comparisons see both sides.
void rangeBoundary(PortStimulus& p, SplitMix64& rng) {
  double v = pickInteresting(rng);
  p.min = v - 1.0 - rng.nextUnit();
  p.max = v + 1.0 + rng.nextUnit();
}

// Turns a seeded range into a short explicit sequence drawn from it, the
// entry point for the sequence mutators below.
void seqSeed(PortStimulus& p, SplitMix64& rng) {
  size_t len = 4 + rng.next() % 13;
  p.sequence.clear();
  for (size_t k = 0; k < len; ++k) {
    p.sequence.push_back(rng.nextUniform(p.min, p.max));
  }
}

void seqHavoc(PortStimulus& p, SplitMix64& rng) {
  size_t n = std::max<size_t>(1, p.sequence.size() / 4);
  size_t hits = 1 + rng.next() % n;
  for (size_t k = 0; k < hits; ++k) {
    double& v = p.sequence[rng.next() % p.sequence.size()];
    switch (rng.next() % 5) {
      case 0: v = -v; break;
      case 1: v = 0.0; break;
      case 2: v *= std::ldexp(1.0, static_cast<int>(rng.next() % 9) - 4); break;
      case 3: v = pickInteresting(rng); break;
      default: v += (rng.nextUnit() * 2.0 - 1.0); break;
    }
  }
}

void seqInsert(PortStimulus& p, SplitMix64& rng) {
  size_t n = 1 + rng.next() % 8;
  size_t pos = rng.next() % (p.sequence.size() + 1);
  std::vector<double> ins;
  for (size_t k = 0; k < n; ++k) {
    ins.push_back(rng.next() % 2 == 0 ? pickInteresting(rng)
                                      : rng.nextUniform(-2.0, 2.0));
  }
  p.sequence.insert(p.sequence.begin() + static_cast<long>(pos), ins.begin(),
                    ins.end());
  if (p.sequence.size() > kMaxSequence) p.sequence.resize(kMaxSequence);
}

void seqDelete(PortStimulus& p, SplitMix64& rng) {
  if (p.sequence.size() <= 1) return;
  size_t n = 1 + rng.next() % (p.sequence.size() / 2 + 1);
  n = std::min(n, p.sequence.size() - 1);
  size_t pos = rng.next() % (p.sequence.size() - n + 1);
  p.sequence.erase(p.sequence.begin() + static_cast<long>(pos),
                   p.sequence.begin() + static_cast<long>(pos + n));
}

// Splices a segment of another corpus entry's same-port sequence into this
// one (sequence crossover).
void seqSplice(PortStimulus& p, const PortStimulus& other, SplitMix64& rng) {
  if (other.sequence.empty()) {
    seqHavoc(p, rng);
    return;
  }
  size_t n = 1 + rng.next() % other.sequence.size();
  size_t from = rng.next() % (other.sequence.size() - n + 1);
  size_t pos = rng.next() % (p.sequence.size() + 1);
  p.sequence.insert(p.sequence.begin() + static_cast<long>(pos),
                    other.sequence.begin() + static_cast<long>(from),
                    other.sequence.begin() + static_cast<long>(from + n));
  if (p.sequence.size() > kMaxSequence) p.sequence.resize(kMaxSequence);
}

}  // namespace

const std::vector<std::string>& mutatorNames() {
  static const std::vector<std::string> names = {
      "seed-reroll",  "seed-step",   "port-crossover", "range-widen",
      "range-narrow", "range-shift", "range-boundary", "seq-seed",
      "seq-havoc",    "seq-insert",  "seq-delete",     "seq-splice",
      "seq-clear",
  };
  return names;
}

Mutant mutate(const Corpus& corpus, size_t parent, const MutationContext& ctx,
              SplitMix64& rng) {
  Mutant m;
  m.parent = parent;
  m.spec = corpus.entry(parent).spec;
  size_t numPorts = std::max<size_t>(ctx.numPorts, 1);
  size_t p = rng.next() % numPorts;
  bool hasSeq = !m.spec.port(static_cast<int>(p)).sequence.empty();

  // Applicable mutators for the chosen port's current mode, plus the
  // spec-global ones. The list layout is fixed, so the rng draw below is
  // reproducible.
  std::vector<std::string> applicable = {"seed-reroll", "seed-step"};
  if (corpus.size() > 1) applicable.push_back("port-crossover");
  if (!hasSeq) {
    applicable.insert(applicable.end(),
                      {"range-widen", "range-narrow", "range-shift",
                       "range-boundary", "seq-seed"});
  } else {
    applicable.insert(applicable.end(),
                      {"seq-havoc", "seq-insert", "seq-delete", "seq-clear"});
    if (corpus.size() > 1) applicable.push_back("seq-splice");
  }
  m.mutation = applicable[rng.next() % applicable.size()];

  if (m.mutation == "seed-reroll") {
    seedReroll(m.spec, rng);
    return m;
  }
  if (m.mutation == "seed-step") {
    seedStep(m.spec, rng);
    return m;
  }

  PortStimulus& port = portAt(m.spec, p);
  if (m.mutation == "port-crossover") {
    size_t other = rng.next() % corpus.size();
    port = corpus.entry(other).spec.port(static_cast<int>(p));
  } else if (m.mutation == "range-widen") {
    rangeWiden(port, rng);
  } else if (m.mutation == "range-narrow") {
    rangeNarrow(port, rng);
  } else if (m.mutation == "range-shift") {
    rangeShift(port, rng);
  } else if (m.mutation == "range-boundary") {
    rangeBoundary(port, rng);
  } else if (m.mutation == "seq-seed") {
    seqSeed(port, rng);
  } else if (m.mutation == "seq-havoc") {
    seqHavoc(port, rng);
  } else if (m.mutation == "seq-insert") {
    seqInsert(port, rng);
  } else if (m.mutation == "seq-delete") {
    seqDelete(port, rng);
  } else if (m.mutation == "seq-clear") {
    port.sequence.clear();
  } else if (m.mutation == "seq-splice") {
    size_t other = rng.next() % corpus.size();
    seqSplice(port, corpus.entry(other).spec.port(static_cast<int>(p)), rng);
  }
  sanitize(port);
  return m;
}

}  // namespace accmos::gen
