#include "xml/xml.h"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace accmos::xml {

void Element::setAttr(const std::string& key, std::string value) {
  for (auto& [k, v] : attrs_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  attrs_.emplace_back(key, std::move(value));
}

bool Element::hasAttr(const std::string& key) const {
  for (const auto& [k, v] : attrs_) {
    if (k == key) return true;
  }
  return false;
}

std::string Element::attr(const std::string& key,
                          const std::string& def) const {
  for (const auto& [k, v] : attrs_) {
    if (k == key) return v;
  }
  return def;
}

int64_t Element::attrInt(const std::string& key, int64_t def) const {
  if (!hasAttr(key)) return def;
  return std::strtoll(attr(key).c_str(), nullptr, 10);
}

double Element::attrDouble(const std::string& key, double def) const {
  if (!hasAttr(key)) return def;
  return std::strtod(attr(key).c_str(), nullptr);
}

Element& Element::addChild(const std::string& name) {
  children_.push_back(std::make_unique<Element>(name));
  return *children_.back();
}

Element& Element::addChildOwned(std::unique_ptr<Element> child) {
  children_.push_back(std::move(child));
  return *children_.back();
}

const Element* Element::child(const std::string& name) const {
  for (const auto& c : children_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

std::vector<const Element*> Element::childrenNamed(
    const std::string& name) const {
  std::vector<const Element*> out;
  for (const auto& c : children_) {
    if (c->name() == name) out.push_back(c.get());
  }
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view input) : in_(input) {}

  std::unique_ptr<Element> parseDocument() {
    skipProlog();
    auto root = parseElement();
    skipMisc();
    if (pos_ < in_.size()) fail("trailing content after root element");
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError(msg, line_, column());
  }

  int column() const {
    int col = 1;
    for (size_t p = lineStart_; p < pos_ && p < in_.size(); ++p) ++col;
    return col;
  }

  char peek() const { return pos_ < in_.size() ? in_[pos_] : '\0'; }

  char get() {
    if (pos_ >= in_.size()) fail("unexpected end of input");
    char c = in_[pos_++];
    if (c == '\n') {
      ++line_;
      lineStart_ = pos_;
    }
    return c;
  }

  bool startsWith(std::string_view s) const {
    return in_.substr(pos_, s.size()) == s;
  }

  void expect(std::string_view s) {
    if (!startsWith(s)) fail("expected '" + std::string(s) + "'");
    for (size_t k = 0; k < s.size(); ++k) get();
  }

  void skipWs() {
    while (pos_ < in_.size() &&
           std::isspace(static_cast<unsigned char>(in_[pos_]))) {
      get();
    }
  }

  void skipComment() {
    expect("<!--");
    while (!startsWith("-->")) {
      if (pos_ >= in_.size()) fail("unterminated comment");
      get();
    }
    expect("-->");
  }

  void skipProlog() {
    skipWs();
    if (startsWith("<?xml")) {
      while (!startsWith("?>")) {
        if (pos_ >= in_.size()) fail("unterminated XML declaration");
        get();
      }
      expect("?>");
    }
    skipMisc();
  }

  void skipMisc() {
    for (;;) {
      skipWs();
      if (startsWith("<!--")) {
        skipComment();
      } else {
        return;
      }
    }
  }

  static bool isNameStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  }
  static bool isNameChar(char c) {
    return isNameStart(c) || std::isdigit(static_cast<unsigned char>(c)) ||
           c == '-' || c == '.';
  }

  std::string parseName() {
    if (!isNameStart(peek())) fail("expected a name");
    std::string name;
    while (pos_ < in_.size() && isNameChar(peek())) name.push_back(get());
    return name;
  }

  std::string decodeEntity() {
    expect("&");
    std::string ent;
    while (peek() != ';') {
      if (pos_ >= in_.size() || ent.size() > 8) fail("bad entity reference");
      ent.push_back(get());
    }
    expect(";");
    if (ent == "amp") return "&";
    if (ent == "lt") return "<";
    if (ent == "gt") return ">";
    if (ent == "quot") return "\"";
    if (ent == "apos") return "'";
    if (!ent.empty() && ent[0] == '#') {
      long code = ent[1] == 'x' ? std::strtol(ent.c_str() + 2, nullptr, 16)
                                : std::strtol(ent.c_str() + 1, nullptr, 10);
      if (code <= 0 || code > 0x10FFFF) fail("bad character reference");
      // Encode as UTF-8.
      std::string out;
      unsigned cp = static_cast<unsigned>(code);
      if (cp < 0x80) {
        out.push_back(static_cast<char>(cp));
      } else if (cp < 0x800) {
        out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
        out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
      } else if (cp < 0x10000) {
        out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
        out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
      } else {
        out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
        out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
      }
      return out;
    }
    fail("unknown entity '&" + ent + ";'");
  }

  std::string parseAttrValue() {
    char quote = get();
    if (quote != '"' && quote != '\'') fail("expected quoted attribute value");
    std::string value;
    while (peek() != quote) {
      if (pos_ >= in_.size()) fail("unterminated attribute value");
      if (peek() == '&') {
        value += decodeEntity();
      } else if (peek() == '<') {
        fail("'<' in attribute value");
      } else {
        value.push_back(get());
      }
    }
    get();  // closing quote
    return value;
  }

  std::unique_ptr<Element> parseElement() {
    expect("<");
    auto elem = std::make_unique<Element>(parseName());
    // Attributes.
    for (;;) {
      skipWs();
      if (startsWith("/>")) {
        expect("/>");
        return elem;
      }
      if (peek() == '>') {
        get();
        break;
      }
      std::string key = parseName();
      skipWs();
      expect("=");
      skipWs();
      if (elem->hasAttr(key)) fail("duplicate attribute '" + key + "'");
      elem->setAttr(key, parseAttrValue());
    }
    // Content.
    std::string text;
    for (;;) {
      if (pos_ >= in_.size()) {
        fail("unterminated element '" + elem->name() + "'");
      }
      if (startsWith("</")) {
        expect("</");
        std::string closing = parseName();
        if (closing != elem->name()) {
          fail("mismatched closing tag '" + closing + "' for '" +
               elem->name() + "'");
        }
        skipWs();
        expect(">");
        elem->setText(std::move(text));
        return elem;
      }
      if (startsWith("<!--")) {
        skipComment();
      } else if (peek() == '<') {
        elem->addChildOwned(parseElement());
      } else if (peek() == '&') {
        text += decodeEntity();
      } else {
        text.push_back(get());
      }
    }
  }

  std::string_view in_;
  size_t pos_ = 0;
  int line_ = 1;
  size_t lineStart_ = 0;
};

void writeIndent(std::ostringstream& os, int depth) {
  for (int k = 0; k < depth; ++k) os << "  ";
}

bool textIsBlank(const std::string& s) {
  for (char c : s) {
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

void serializeInto(const Element& e, std::ostringstream& os, int depth) {
  writeIndent(os, depth);
  os << '<' << e.name();
  for (const auto& [k, v] : e.attrs()) {
    os << ' ' << k << "=\"" << escape(v) << '"';
  }
  bool hasText = !textIsBlank(e.text());
  if (e.children().empty() && !hasText) {
    os << "/>\n";
    return;
  }
  os << '>';
  if (hasText) os << escape(e.text());
  if (!e.children().empty()) {
    os << '\n';
    for (const auto& c : e.children()) serializeInto(*c, os, depth + 1);
    writeIndent(os, depth);
  }
  os << "</" << e.name() << ">\n";
}

}  // namespace

std::unique_ptr<Element> parse(std::string_view input) {
  return Parser(input).parseDocument();
}

std::string serialize(const Element& root) {
  std::ostringstream os;
  os << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  serializeInto(root, os, 0);
  return os.str();
}

std::string escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

}  // namespace accmos::xml
